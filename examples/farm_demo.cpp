// Farm demo (DESIGN.md §11): a 50-job Fig. 1-style sweep pushed through
// the multi-tenant batch service.
//
//   $ ./examples/farm_demo
//
// Submits 50 jobs — a BE-load sweep at three priority classes, plus a
// few hosted-FPGA jobs with a faulty bus — to a 2-worker SimFarm,
// prints the per-job results as they come back from the completion
// feed, and writes:
//   farm_metrics.json   — farm.* admission/queue/worker counters plus
//                         the per-worker utilization gauges
//   farm_timeline.json  — chrome://tracing view of the per-worker job
//                         slices and preemption instants
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "farm/farm.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"

int main() {
  using namespace tmsim;
  using farm::JobSpec;
  using farm::Priority;

  obs::MetricsRegistry metrics;
  obs::ChromeTrace timeline;

  farm::FarmOptions opt;
  opt.num_workers = 2;
  opt.queue_capacity = 64;
  opt.preempt_quantum = 256;
  opt.metrics = &metrics;
  opt.timeline = &timeline;
  farm::SimFarm farm(opt);

  // --- Submit the sweep -----------------------------------------------------
  // 45 core-traffic points: BE load 0.00..0.28 on a 4x4 mesh with the
  // Fig. 1 GT population. Batch/normal points go in first; a wave of
  // interactive points lands while they are mid-flight, so the workers
  // checkpoint the batch jobs and serve the urgent ones first.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 45; ++i) {
    if (i == 30) {
      // Stagger the interactive wave so the background jobs are already
      // mid-flight when it arrives (otherwise the whole burst queues
      // before the workers wake and strict priority alone orders it).
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    JobSpec spec;
    spec.name = "sweep-be" + std::to_string(i);
    spec.net.width = 4;
    spec.net.height = 4;
    spec.net.topology = noc::Topology::kMesh;
    spec.workload.fig1_gt = true;
    spec.workload.gt_period = 600;
    spec.workload.be_load = 0.02 * (i % 15);
    // First 30 submissions are background classes; the last 15 are the
    // interactive wave that preempts them.
    spec.priority = i < 30 ? (i % 2 ? Priority::kNormal : Priority::kBatch)
                           : Priority::kInteractive;
    spec.seed = 1000 + i;
    spec.cycles = 2000;
    const auto out = farm.submit(spec);
    if (!out.accepted) {
      std::printf("reject %-12s: %s\n", spec.name.c_str(), out.detail.c_str());
      continue;
    }
    ids.push_back(out.job_id);
  }
  // 5 hosted-FPGA jobs, one with bus faults, exercising the full §5
  // ARM/bus/FPGA stack as a farm tenant.
  for (int i = 0; i < 5; ++i) {
    JobSpec spec;
    spec.name = "hosted-" + std::to_string(i);
    spec.kind = farm::JobKind::kHostedFpga;
    spec.net.width = 4;
    spec.net.height = 4;
    spec.workload.be_load = 0.05;
    spec.priority = Priority::kBatch;
    spec.seed = 77 + i;
    spec.cycles = 1500;
    if (i == 4) {
      spec.faults.read_flip = 1e-3;  // one faulty-bus tenant
    }
    const auto out = farm.submit(spec);
    if (out.accepted) {
      ids.push_back(out.job_id);
    }
  }
  std::printf("submitted %zu jobs to %zu workers; draining...\n\n", ids.size(),
              opt.num_workers);
  farm.drain();

  // --- Results --------------------------------------------------------------
  std::printf("%-12s %5s %9s %9s %7s %7s %8s\n", "job", "prio", "gt.mean",
              "be.mean", "slices", "preempt", "digest");
  for (const std::uint64_t id : ids) {
    const farm::JobResult r = farm.results().get(id).value();
    std::printf("%-12s %5llu %9.2f %9.2f %7zu %7zu %08llx\n", r.name.c_str(),
                static_cast<unsigned long long>(id), r.gt.total.mean(),
                r.be.total.mean(), r.slices, r.preemptions,
                static_cast<unsigned long long>(r.state_digest & 0xffffffff));
  }
  farm.shutdown();  // publishes the utilization gauges

  // --- Artefacts ------------------------------------------------------------
  {
    std::ofstream os("farm_metrics.json");
    metrics.write_json(os, {{"example", "farm_demo"}});
  }
  {
    std::ofstream os("farm_timeline.json");
    timeline.write_json(os);
  }
  std::printf("\nfarm counters:\n");
  for (const char* name :
       {"farm.admission.submitted", "farm.admission.accepted",
        "farm.admission.rejected", "farm.jobs.completed", "farm.jobs.failed",
        "farm.preemptions", "farm.checkpoints", "farm.resumes"}) {
    std::printf("  %-26s %10llu\n", name,
                static_cast<unsigned long long>(metrics.counter_value(name)));
  }
  std::printf("\nwrote farm_metrics.json (%zu metrics), farm_timeline.json "
              "(%zu events)\n",
              metrics.size(), timeline.size());
  std::printf("load farm_timeline.json at chrome://tracing to see the "
              "per-worker slice tracks\n");
  return 0;
}
