// Heterogeneous SoC example — §7.1: "Heterogeneous systems can be
// supported as well, as long as the required extra combinatorial logic
// fits in the FPGA. [...] The registers can be mapped in the same memory
// space."
//
// A small producer/accelerator/checker pipeline with *mixed* boundary
// kinds, simulated sequentially by the dynamic engine:
//
//   [producer] --registered--> [dsp] --combinational--> [checker]
//        ^                                                  |
//        +---------------- combinational feedback ----------+
//
//   - producer: emits a sample counter value each cycle (its output is a
//     pipeline register);
//   - dsp: a 3-tap moving-sum accelerator whose output is unregistered
//     combinational logic over its shift registers — the §4.2 case;
//   - checker: compares against its own reference model and raises a
//     combinational error flag the producer observes the same cycle.
//
// Three different block types, three different state widths, one state
// memory — the heterogeneous layout of Fig. 2b. The engine's HBR
// machinery handles the combinational half, the double-banked links the
// registered half, in the same system cycle.
//
//   $ ./examples/heterogeneous_soc
#include <cstdio>
#include <memory>

#include "core/sequential_simulator.h"

namespace {

using namespace tmsim;
using namespace tmsim::core;

/// Emits t, t+3, t+6, ... while the error flag is low; freezes when the
/// checker flags a mismatch (same-cycle combinational reaction).
class Producer : public SimBlock {
 public:
  std::size_t state_width() const override { return 16; }
  std::size_t num_inputs() const override { return 1; }   // error flag
  std::size_t input_width(std::size_t) const override { return 1; }
  std::size_t num_outputs() const override { return 1; }  // sample (reg)
  std::size_t output_width(std::size_t) const override { return 16; }
  BitVector reset_state() const override { return BitVector(16); }

  void evaluate(const BitVector& old_state, std::span<const BitVector> in,
                BitVector& new_state,
                std::span<BitVector> out) const override {
    const std::uint64_t t = old_state.get_field(0, 16);
    const bool error = in[0].get_field(0, 1) != 0;
    out[0].set_field(0, 16, t);  // drives the pipeline register's D input
    new_state.set_field(0, 16, error ? t : ((t + 3) & 0xffff));
  }
  std::string type_name() const override { return "producer"; }
};

/// 3-tap moving sum with a combinational output over its shift register.
class MovingSumDsp : public SimBlock {
 public:
  std::size_t state_width() const override { return 3 * 16; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return 16; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return 18; }
  BitVector reset_state() const override { return BitVector(48); }

  void evaluate(const BitVector& old_state, std::span<const BitVector> in,
                BitVector& new_state,
                std::span<BitVector> out) const override {
    const std::uint64_t s0 = old_state.get_field(0, 16);
    const std::uint64_t s1 = old_state.get_field(16, 16);
    const std::uint64_t s2 = old_state.get_field(32, 16);
    // G: combinational sum of the registered taps (state-only → the
    // dynamic schedule settles in ≤ 2 evaluations per block).
    out[0].set_field(0, 18, (s0 + s1 + s2) & 0x3ffff);
    // F: shift in the new sample.
    new_state.set_field(0, 16, in[0].get_field(0, 16));
    new_state.set_field(16, 16, s0);
    new_state.set_field(32, 16, s1);
  }
  std::string type_name() const override { return "moving_sum_dsp"; }
};

/// Recomputes the expected moving sum and flags divergence
/// combinationally; counts good samples in its state.
class Checker : public SimBlock {
 public:
  std::size_t state_width() const override { return 48 + 32; }
  std::size_t num_inputs() const override { return 2; }  // dsp out, sample
  std::size_t input_width(std::size_t p) const override {
    return p == 0 ? 18 : 16;
  }
  std::size_t num_outputs() const override { return 1; }  // error flag
  std::size_t output_width(std::size_t) const override { return 1; }
  BitVector reset_state() const override { return BitVector(80); }

  void evaluate(const BitVector& old_state, std::span<const BitVector> in,
                BitVector& new_state,
                std::span<BitVector> out) const override {
    const std::uint64_t r0 = old_state.get_field(0, 16);
    const std::uint64_t r1 = old_state.get_field(16, 16);
    const std::uint64_t r2 = old_state.get_field(32, 16);
    const std::uint64_t good = old_state.get_field(48, 32);
    const std::uint64_t dsp = in[0].get_field(0, 18);
    const std::uint64_t expect = (r0 + r1 + r2) & 0x3ffff;
    const bool mismatch = dsp != expect;
    out[0].set_field(0, 1, mismatch ? 1 : 0);
    new_state.set_field(0, 16, in[1].get_field(0, 16));
    new_state.set_field(16, 16, r0);
    new_state.set_field(32, 16, r1);
    new_state.set_field(48, 32, mismatch ? good : (good + 1) & 0xffffffff);
  }
  std::string type_name() const override { return "checker"; }
};

}  // namespace

int main() {
  SystemModel m;
  const BlockId producer = m.add_block(std::make_shared<Producer>(), "cpu");
  const BlockId dsp = m.add_block(std::make_shared<MovingSumDsp>(), "dsp");
  const BlockId checker = m.add_block(std::make_shared<Checker>(), "chk");

  // Registered pipeline stage between producer and DSP; the checker taps
  // the same register (registered links allow fan-out).
  const LinkId sample = m.add_link("sample", 16, LinkKind::kRegistered);
  m.bind_output(producer, 0, sample);
  m.bind_input(dsp, 0, sample);
  m.bind_input(checker, 1, sample);
  // Unbuffered wires: DSP result and the error flag (combinational
  // boundaries — the §4.2 machinery).
  const LinkId dsp_out = m.add_link("dsp_out", 18, LinkKind::kCombinational);
  m.bind_output(dsp, 0, dsp_out);
  m.bind_input(checker, 0, dsp_out);
  const LinkId error = m.add_link("error", 1, LinkKind::kCombinational);
  m.bind_output(checker, 0, error);
  m.bind_input(producer, 0, error);
  m.finalize();

  SequentialSimulator sim(m, SchedulePolicy::kDynamic);
  DeltaCycle deltas = 0;
  for (int t = 0; t < 200; ++t) {
    deltas += sim.step().delta_cycles;
  }

  const std::uint64_t produced = sim.block_state(producer).get_field(0, 16);
  const std::uint64_t good = sim.block_state(checker).get_field(48, 32);
  const bool error_flag = sim.link_value(error).get_field(0, 1) != 0;
  std::printf("heterogeneous SoC: 3 block types in one state memory\n");
  std::printf("  state widths      : producer 16, dsp 48, checker 80 bits\n");
  std::printf("  after 200 cycles  : producer at %llu, %llu samples "
              "verified, error=%d\n",
              (unsigned long long)produced, (unsigned long long)good,
              error_flag ? 1 : 0);
  std::printf("  delta cycles      : %llu total (%.2f per cycle; min 3)\n",
              (unsigned long long)deltas, deltas / 200.0);
  if (error_flag || good < 190) {
    std::printf("  FAILED: checker flagged a divergence\n");
    return 1;
  }
  std::printf("  checker and DSP agreed every cycle — the mixed\n"
              "  registered/combinational system simulates correctly.\n");
  return 0;
}
