// Remote farm demo (DESIGN.md §16): the networked front-end end to end.
//
//   $ ./examples/farm_remote_demo
//
// Starts a tmsim-farmd (in-process, ephemeral port), then forks two real
// client *processes*. Each client connects with FarmClient, subscribes,
// submits a 12-point BE-load sweep tagged with its own client-side trace
// context, and streams the results back as they complete, printing one
// line per result. The parent then shuts the daemon down and prints:
//   - the daemon's ingress ledger (accepted/spilled/streamed counters),
//   - the merged server-side trace: every sampled job's span tree, with
//     the `link.client_trace` argument showing which *client process*
//     trace each server trace belongs to — one distributed trace across
//     the process boundary.
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "farm/farm.h"
#include "farmd/server.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

constexpr std::size_t kJobsPerClient = 12;

/// One forked client process: sweep BE load, stream results, exit.
[[noreturn]] void client_main(int index, std::uint16_t port) {
  using namespace tmsim;
  const std::string name = "demo-client-" + std::to_string(index);
  try {
    net::FarmClient client(port, name);
    client.subscribe();

    std::vector<std::uint64_t> remote_ids;
    for (std::size_t i = 0; i < kJobsPerClient; ++i) {
      farm::JobSpec spec;
      spec.name = "remote-be" + std::to_string(index) + "-" +
                  std::to_string(i);
      spec.net.width = 4;
      spec.net.height = 4;
      spec.net.topology = noc::Topology::kMesh;
      spec.workload.be_load = 0.02 * static_cast<double>(i);
      spec.priority = static_cast<farm::Priority>(i % 3);
      spec.seed = 0xd300 + static_cast<std::uint64_t>(index) * 100 + i;
      spec.cycles = 2000;
      // The client-side trace context: farmd links its server-side job
      // trace to this id, so one distributed trace spans both processes.
      obs::TraceContext trace;
      trace.trace_id = 0xc11e000 + static_cast<std::uint64_t>(index) * 0x100;
      trace.span_id = i + 1;
      const auto reply = client.submit(spec, &trace);
      if (!reply.accepted) {
        std::fprintf(stderr, "[%s] submit rejected: %s\n", name.c_str(),
                     reply.detail.c_str());
        ::_exit(1);
      }
      remote_ids.push_back(reply.remote_id);
      std::printf("[%s] submitted %-14s -> remote job %llu%s\n", name.c_str(),
                  spec.name.c_str(),
                  static_cast<unsigned long long>(reply.remote_id),
                  reply.spilled ? " (spilled)" : "");
    }

    // Stream the sweep back — results arrive as the farm finishes them,
    // not in submit order.
    std::size_t received = 0;
    while (received < remote_ids.size()) {
      const auto res = client.next_result(std::chrono::seconds(60));
      if (!res) {
        std::fprintf(stderr, "[%s] stream stalled\n", name.c_str());
        ::_exit(1);
      }
      ++received;
      std::printf("[%s] result  job %-4llu status=%-9s %6zu flits "
                  "delivered  digest %016llx\n",
                  name.c_str(),
                  static_cast<unsigned long long>(res->result.job_id),
                  farm::job_status_name(res->result.status),
                  res->result.flits_delivered,
                  static_cast<unsigned long long>(res->result.state_digest));
    }
    client.close();
    ::_exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[%s] %s\n", name.c_str(), e.what());
    ::_exit(1);
  }
}

}  // namespace

int main() {
  using namespace tmsim;

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;  // sample_every=1: trace every remote job

  const std::string spill_dir = "farmd_demo_spill";
  std::filesystem::remove_all(spill_dir);

  farmd::FarmdOptions opt;
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = 8;  // small: the sweep bursts through spill
  opt.farm.metrics = &metrics;
  opt.farm.tracer = &tracer;
  opt.spill_dir = spill_dir;

  // Fork the clients while still single-threaded (before the daemon's
  // threads exist); they connect as soon as the port note arrives.
  int port_pipes[2][2];
  pid_t pids[2];
  for (int c = 0; c < 2; ++c) {
    if (::pipe(port_pipes[c]) != 0) {
      std::perror("pipe");
      return 1;
    }
    pids[c] = ::fork();
    if (pids[c] < 0) {
      std::perror("fork");
      return 1;
    }
    if (pids[c] == 0) {
      ::close(port_pipes[c][1]);
      std::uint16_t port = 0;
      if (::read(port_pipes[c][0], &port, sizeof port) !=
          static_cast<ssize_t>(sizeof port)) {
        ::_exit(1);
      }
      ::close(port_pipes[c][0]);
      client_main(c, port);
    }
    ::close(port_pipes[c][0]);
  }

  std::printf("=== tmsim-farmd: two client processes, one farm ===\n\n");
  {
    farmd::FarmdServer server(std::move(opt));
    const std::uint16_t port = server.port();
    std::printf("daemon listening on 127.0.0.1:%u\n\n", port);
    for (int c = 0; c < 2; ++c) {
      ::write(port_pipes[c][1], &port, sizeof port);
      ::close(port_pipes[c][1]);
    }
    for (int c = 0; c < 2; ++c) {
      int status = 0;
      ::waitpid(pids[c], &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "client %d failed\n", c);
        return 1;
      }
    }
    std::printf("\n--- daemon ingress ledger ---\n%s\n",
                server.ingress_json().c_str());
    server.shutdown();
  }
  std::filesystem::remove_all(spill_dir);

  // The merged trace: group the server-side spans by trace, and show
  // which client process each trace is linked from.
  std::printf("\n--- merged distributed trace (%llu traces, %llu spans) ---\n",
              static_cast<unsigned long long>(tracer.traces_started()),
              static_cast<unsigned long long>(tracer.spans_recorded()));
  std::map<std::uint64_t, std::vector<obs::SpanRecord>> by_trace;
  for (auto& span : tracer.snapshot()) {
    by_trace[span.trace_id].push_back(std::move(span));
  }
  std::size_t shown = 0;
  for (const auto& [trace_id, spans] : by_trace) {
    if (++shown > 4) {
      std::printf("... and %zu more traces\n", by_trace.size() - 4);
      break;
    }
    std::string client_link = "(not a remote submit)";
    for (const auto& span : spans) {
      const std::string key = "\"link.client_trace\": \"";
      const std::size_t at = span.args_json.find(key);
      if (at != std::string::npos) {
        const std::size_t begin = at + key.size();
        const std::size_t end = span.args_json.find('"', begin);
        client_link = "<- client-process trace " +
                      span.args_json.substr(begin, end - begin);
      }
    }
    std::printf("trace %016llx  %zu spans  %s\n",
                static_cast<unsigned long long>(trace_id), spans.size(),
                client_link.c_str());
    for (const auto& span : spans) {
      std::printf("  %-10s attempt %u  tid %3u  %8.1fus .. %8.1fus\n",
                  span.name.c_str(), span.attempt, span.tid, span.start_us,
                  span.end_us);
    }
  }
  std::printf("\ndone: every job crossed the wire, ran once, and streamed "
              "back bit-accurate.\n");
  return 0;
}
