// Quickstart: simulate a 4×4 NoC with the paper's time-multiplexed
// method, check it bit-exactly against the golden reference, and print
// latency plus delta-cycle statistics.
//
//   $ ./examples/quickstart
//
// Walk-through of the pieces:
//   1. NetworkConfig       — topology and router parameters
//   2. SeqNocSimulation    — the §4.2 dynamic-schedule sequential engine
//   3. LockstepNocSimulation — optional cross-checking harness
//   4. TrafficHarness      — software traffic generation & measurement
#include <cstdio>
#include <memory>

#include "core/noc_block.h"
#include "noc/lockstep.h"
#include "traffic/harness.h"

int main() {
  using namespace tmsim;

  // A 4×4 mesh with the paper's router: 4 VCs, 4-flit queues.
  noc::NetworkConfig net;
  net.width = 4;
  net.height = 4;
  net.topology = noc::Topology::kMesh;
  net.router.num_vcs = 4;
  net.router.queue_depth = 4;

  // Run the paper's engine in lockstep with the golden reference: any
  // diverging register bit or link value throws immediately.
  std::vector<std::unique_ptr<noc::NocSimulation>> engines;
  engines.push_back(std::make_unique<noc::DirectNocSimulation>(net));
  engines.push_back(std::make_unique<core::SeqNocSimulation>(net));
  noc::LockstepNocSimulation sim(std::move(engines));

  // Uniform random best-effort traffic at 10 % of channel capacity,
  // with every delivered flit checked against what was sent.
  traffic::TrafficHarness::Options opts;
  opts.seed = 2026;
  opts.verify_payload = true;
  traffic::TrafficHarness harness(sim, opts);
  harness.set_be_load(0.10);

  std::printf("simulating 5000 cycles of a 4x4 mesh (two engines in "
              "lockstep)...\n");
  harness.run(5000);
  harness.set_be_load(0.0);
  harness.run(500);  // drain

  const auto be = harness.summarize(traffic::PacketClass::kBestEffort);
  std::printf("\npackets delivered : %zu\n", be.delivered);
  std::printf("network latency   : mean %.1f, min %.0f, max %.0f cycles\n",
              be.network.mean(), be.network.min(), be.network.max());
  std::printf("access delay      : mean %.1f cycles\n", be.access.mean());
  std::printf("flits in == out   : %s (%zu flits)\n",
              harness.flits_injected() == harness.flits_delivered() ? "yes"
                                                                    : "NO",
              harness.flits_delivered());

  const auto& engine =
      static_cast<core::SeqNocSimulation&>(sim.engine(1)).engine();
  const double dpc = static_cast<double>(engine.total_delta_cycles()) /
                     static_cast<double>(engine.cycle());
  std::printf("\nsequential engine : %.2f delta cycles per system cycle\n",
              dpc);
  std::printf("                    (minimum %zu = one per router, §6)\n",
              net.num_routers());
  std::printf("\nbit-exact lockstep held for %llu cycles — \"without\n"
              "compromising the cycle and bit level accuracy\" (§8).\n",
              static_cast<unsigned long long>(sim.cycle()));
  return 0;
}
