// Latency sweep: the design-space-exploration loop the paper's authors
// wanted to run ("redo the simulation of Figure 1 with different buffer
// sizes", §3) — parameterized from the command line, CSV to stdout.
//
//   usage: latency_sweep [width height queue_depth topology cycles]
//     topology: torus | mesh        (default mesh — see DESIGN.md §7 on
//                                    torus wormhole deadlock)
//   example: ./examples/latency_sweep 6 6 4 mesh 8000
//
// Output: one CSV row per (queue_depth ∈ {1,2,4,8} × BE load) point, so
// the buffer-size/performance trade-off the authors were after is one
// plot away.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/noc_block.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

int main(int argc, char** argv) {
  using namespace tmsim;
  std::size_t width = 6, height = 6;
  std::size_t fixed_depth = 0;  // 0 = sweep {1,2,4,8}
  noc::Topology topo = noc::Topology::kMesh;
  std::size_t cycles = 6000;
  if (argc >= 3) {
    width = std::strtoul(argv[1], nullptr, 10);
    height = std::strtoul(argv[2], nullptr, 10);
  }
  if (argc >= 4) {
    fixed_depth = std::strtoul(argv[3], nullptr, 10);
  }
  if (argc >= 5) {
    topo = std::strcmp(argv[4], "torus") == 0 ? noc::Topology::kTorus
                                              : noc::Topology::kMesh;
  }
  if (argc >= 6) {
    cycles = std::strtoul(argv[5], nullptr, 10);
  }

  std::printf("# %zux%zu %s, %zu cycles per point\n", width, height,
              topo == noc::Topology::kTorus ? "torus" : "mesh", cycles);
  std::printf("queue_depth,be_load,be_mean,be_max,be_access_mean,"
              "gt_mean,gt_max,delivered,delta_per_cycle,overloaded\n");

  const std::size_t depths[] = {1, 2, 4, 8};
  for (std::size_t depth : depths) {
    if (fixed_depth != 0 && depth != fixed_depth) {
      continue;
    }
    for (double load : {0.02, 0.06, 0.10, 0.14}) {
      noc::NetworkConfig net;
      net.width = width;
      net.height = height;
      net.topology = topo;
      net.router.queue_depth = depth;

      core::SeqNocSimulation sim(net);
      traffic::TrafficHarness::Options opts;
      opts.seed = 11;
      opts.warmup_cycles = cycles / 5;
      traffic::TrafficHarness h(sim, opts);
      if (width >= 4) {
        for (const auto& s : traffic::fig1_gt_streams(net, 1290)) {
          h.add_gt_stream(s);
        }
      }
      h.set_be_load(load);
      h.run(cycles);

      const auto be = h.summarize(traffic::PacketClass::kBestEffort);
      const auto gt =
          h.summarize(traffic::PacketClass::kGuaranteedThroughput);
      const double dpc =
          static_cast<double>(sim.engine().total_delta_cycles()) /
          static_cast<double>(sim.cycle());
      std::printf("%zu,%.2f,%.1f,%.0f,%.1f,%.1f,%.0f,%zu,%.2f,%d\n", depth,
                  load, be.network.mean(), be.network.max(),
                  be.access.mean(), gt.network.mean(), gt.network.max(),
                  be.delivered + gt.delivered, dpc, h.overloaded() ? 1 : 0);
    }
  }
  return 0;
}
