// Observability demo (DESIGN.md §10): one run, three artefacts.
//
//   $ ./examples/observability_demo
//
// writes into the current directory:
//   obs_metrics.json   — the full metric registry: host.* phase profile
//                        (Table 4), fpga.* monitor ledgers, engine.*
//                        delta-cycle counters
//   obs_trace.vcd      — GTKWave-viewable waveform of the r0.* router
//                        links plus the sim.delta_cycles bookkeeping
//   obs_timeline.json  — chrome://tracing timeline: the ARM host's
//                        five-phase loop and per-worker superstep spans
#include <cstdio>
#include <fstream>

#include "core/noc_block.h"
#include "fpga/arm_host.h"
#include "obs/chrome_trace.h"
#include "obs/engine_sinks.h"
#include "obs/metrics.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

int main() {
  using namespace tmsim;

  obs::MetricsRegistry registry;
  obs::ChromeTrace timeline;

  // --- Part 1: the §5 ARM/FPGA platform, instrumented ----------------------
  // attach_metrics() wires the monitor buffers and cycle ledgers;
  // set_timeline() records every phase of the host loop as a span.
  fpga::FpgaBuildConfig build;
  fpga::FpgaDesign design(build);
  design.attach_metrics(&registry);

  fpga::ArmHost::Workload wl;
  wl.be_load = 0.08;
  traffic::GtStream stream;
  stream.src = 0;
  stream.dst = 14;
  stream.vc = 0;
  stream.period = 700;
  wl.gt_streams.push_back(stream);

  fpga::ArmHost host(design, wl);
  host.set_timeline(&timeline);
  host.configure_network(4, 4, noc::Topology::kMesh);
  std::printf("running 3000 system cycles through the ARM/FPGA loop...\n");
  host.run(3000);

  const fpga::TimingModel model;
  host.export_metrics(registry, model);

  // --- Part 2: the sharded engine, traced -----------------------------------
  // Two worker shards over a 3x3 mesh; the VCD tracer streams router 0's
  // links, the timeline sink records each worker's supersteps.
  noc::NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = 2;
  core::EngineOptions eopts;
  eopts.num_shards = 2;
  core::SeqNocSimulation sim(net, eopts);

  obs::EngineMetricsSink engine_metrics(registry);
  obs::TimelineSink superstep_sink(timeline);
  std::ofstream vcd_os("obs_trace.vcd");
  obs::VcdTracerOptions vopts;
  vopts.link_glob = "r0.*";
  obs::VcdTracer tracer(sim.engine().model(), vcd_os, vopts);
  obs::MultiObserver fan;
  fan.add(&engine_metrics);
  fan.add(&superstep_sink);
  fan.add(&tracer);
  sim.set_observer(&fan);

  traffic::TrafficHarness::Options topts;
  topts.seed = 7;
  traffic::TrafficHarness harness(sim, topts);
  harness.set_be_load(0.12);
  std::printf("running 256 sharded cycles with VCD tracing on r0.*...\n");
  harness.run(256);
  vcd_os.close();

  // --- Artefacts -------------------------------------------------------------
  {
    std::ofstream os("obs_metrics.json");
    registry.write_json(os, {{"example", "observability_demo"}});
  }
  {
    std::ofstream os("obs_timeline.json");
    timeline.write_json(os);
  }

  std::printf("\nwrote obs_metrics.json (%zu metrics), obs_trace.vcd "
              "(%zu signals), obs_timeline.json (%zu events)\n",
              registry.size(), tracer.num_signals(), timeline.size());
  std::printf("\nTable 4 profile from the registry:\n");
  for (const char* phase :
       {"generate", "load", "simulate", "retrieve", "analyze"}) {
    std::printf("  %-9s %5.1f%%\n", phase,
                100.0 * registry.gauge_value(std::string("host.share.") +
                                             phase));
  }
  std::printf("\nopen obs_trace.vcd in GTKWave; load obs_timeline.json at "
              "chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
