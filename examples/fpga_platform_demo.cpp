// FPGA platform demo: the full §5 stack — ARM software driving the FPGA
// design through the memory-mapped interface, five-phase loop, monitor
// buffers, and the timing model turning counted events into the paper's
// platform numbers.
//
//   $ ./examples/fpga_platform_demo
#include <cstdio>

#include "fpga/arm_host.h"
#include "fpga/resource_model.h"
#include "traffic/workloads.h"

int main() {
  using namespace tmsim;

  // The "bitstream": router microarchitecture and buffer provisioning
  // are synthesis-time parameters.
  fpga::FpgaBuildConfig build;
  fpga::FpgaDesign design(build);

  // Software workload: BE traffic plus one GT connection, randomness
  // from the FPGA's LFSR register (§5.3).
  fpga::ArmHost::Workload wl;
  wl.be_load = 0.08;
  traffic::GtStream stream;
  stream.src = 0;
  stream.dst = 14;
  stream.vc = 0;
  stream.period = 700;
  wl.gt_streams.push_back(stream);

  fpga::ArmHost host(design, wl);
  // Network size & topology are runtime registers (§7.1).
  host.configure_network(4, 4, noc::Topology::kMesh);

  std::printf("running 3000 system cycles through the ARM/FPGA loop...\n");
  host.run(3000);

  std::printf("\nsimulated cycles   : %llu\n",
              static_cast<unsigned long long>(design.cycles_simulated()));
  std::printf("delta cycles       : %llu (%.2f per system cycle)\n",
              static_cast<unsigned long long>(design.delta_cycles()),
              static_cast<double>(design.delta_cycles()) /
                  static_cast<double>(design.cycles_simulated()));
  std::printf("FPGA clock cycles  : %llu\n",
              static_cast<unsigned long long>(design.fpga_clock_cycles()));
  std::printf("bus traffic        : %llu reads, %llu writes\n",
              static_cast<unsigned long long>(design.bus_stats().reads),
              static_cast<unsigned long long>(design.bus_stats().writes));
  std::printf("packets delivered  : %llu\n",
              static_cast<unsigned long long>(host.packets_delivered()));
  const auto& be = host.latency(traffic::PacketClass::kBestEffort);
  const auto& gt = host.latency(traffic::PacketClass::kGuaranteedThroughput);
  std::printf("BE latency         : mean %.1f max %.0f cycles\n", be.mean(),
              be.max());
  std::printf("GT latency         : mean %.1f max %.0f cycles\n", gt.mean(),
              gt.max());
  std::printf("access delay (mon) : mean %.1f max %.0f cycles\n",
              host.access_delay().mean(), host.access_delay().max());

  // What this run would have cost on the paper's hardware.
  const fpga::TimingModel model;
  const fpga::PhaseTimes t = model.evaluate(host.counts());
  std::printf("\non the paper's platform (6.6 MHz FPGA, 86 MHz ARM):\n");
  std::printf("  wall time        : %.1f ms → %.1f kHz simulated\n",
              t.wall * 1e3, t.cycles_per_second / 1e3);
  std::printf("  profile          : gen %.0f%%, load %.0f%%, sim %.0f%%, "
              "retrieve %.0f%%, analyze %.0f%%\n",
              100 * t.share_generate(), 100 * t.share_load(),
              100 * t.share_simulate(), 100 * t.share_retrieve(),
              100 * t.share_analyze());

  // And what it costs in FPGA resources.
  const fpga::ResourceModel res;
  const auto rep = res.simulator_usage(build);
  std::printf("  resources        : %zu slices (%.0f%%), %zu BRAMs (%.0f%%) "
              "on a Virtex-II 8000\n",
              rep.total_slices, 100 * rep.slice_fraction, rep.total_brams,
              100 * rep.bram_fraction);
  return 0;
}
