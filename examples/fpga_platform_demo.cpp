// FPGA platform demo: the full §5 stack — ARM software driving the FPGA
// design through the memory-mapped interface, five-phase loop, monitor
// buffers, and the timing model turning counted events into the paper's
// platform numbers.
//
//   $ ./examples/fpga_platform_demo
#include <cstdio>

#include "fpga/arm_host.h"
#include "fpga/faulty_bus.h"
#include "fpga/resource_model.h"
#include "traffic/workloads.h"

int main() {
  using namespace tmsim;

  // The "bitstream": router microarchitecture and buffer provisioning
  // are synthesis-time parameters.
  fpga::FpgaBuildConfig build;
  fpga::FpgaDesign design(build);

  // Software workload: BE traffic plus one GT connection, randomness
  // from the FPGA's LFSR register (§5.3).
  fpga::ArmHost::Workload wl;
  wl.be_load = 0.08;
  traffic::GtStream stream;
  stream.src = 0;
  stream.dst = 14;
  stream.vc = 0;
  stream.period = 700;
  wl.gt_streams.push_back(stream);

  fpga::ArmHost host(design, wl);
  // Network size & topology are runtime registers (§7.1).
  host.configure_network(4, 4, noc::Topology::kMesh);

  std::printf("running 3000 system cycles through the ARM/FPGA loop...\n");
  host.run(3000);

  std::printf("\nsimulated cycles   : %llu\n",
              static_cast<unsigned long long>(design.cycles_simulated()));
  std::printf("delta cycles       : %llu (%.2f per system cycle)\n",
              static_cast<unsigned long long>(design.delta_cycles()),
              static_cast<double>(design.delta_cycles()) /
                  static_cast<double>(design.cycles_simulated()));
  std::printf("FPGA clock cycles  : %llu\n",
              static_cast<unsigned long long>(design.fpga_clock_cycles()));
  std::printf("bus traffic        : %llu reads, %llu writes\n",
              static_cast<unsigned long long>(design.bus_stats().reads),
              static_cast<unsigned long long>(design.bus_stats().writes));
  std::printf("packets delivered  : %llu\n",
              static_cast<unsigned long long>(host.packets_delivered()));
  const auto& be = host.latency(traffic::PacketClass::kBestEffort);
  const auto& gt = host.latency(traffic::PacketClass::kGuaranteedThroughput);
  std::printf("BE latency         : mean %.1f max %.0f cycles\n", be.mean(),
              be.max());
  std::printf("GT latency         : mean %.1f max %.0f cycles\n", gt.mean(),
              gt.max());
  std::printf("access delay (mon) : mean %.1f max %.0f cycles\n",
              host.access_delay().mean(), host.access_delay().max());

  // What this run would have cost on the paper's hardware.
  const fpga::TimingModel model;
  const fpga::PhaseTimes t = model.evaluate(host.counts());
  std::printf("\non the paper's platform (6.6 MHz FPGA, 86 MHz ARM):\n");
  std::printf("  wall time        : %.1f ms → %.1f kHz simulated\n",
              t.wall * 1e3, t.cycles_per_second / 1e3);
  std::printf("  profile          : gen %.0f%%, load %.0f%%, sim %.0f%%, "
              "retrieve %.0f%%, analyze %.0f%%\n",
              100 * t.share_generate(), 100 * t.share_load(),
              100 * t.share_simulate(), 100 * t.share_retrieve(),
              100 * t.share_analyze());

  // And what it costs in FPGA resources.
  const fpga::ResourceModel res;
  const auto rep = res.simulator_usage(build);
  std::printf("  resources        : %zu slices (%.0f%%), %zu BRAMs (%.0f%%) "
              "on a Virtex-II 8000\n",
              rep.total_slices, 100 * rep.slice_fraction, rep.total_brams,
              100 * rep.bram_fraction);

  // Same workload again, but through a bus that corrupts one access in a
  // thousand: the hardened host must detect and recover every fault and
  // land on the exact same statistics (DESIGN.md, "Robustness").
  std::printf("\nre-running with a faulty bus (1e-3 faults per access)...\n");
  fpga::FpgaDesign design2(build);
  fpga::FaultyBus bus(design2, fpga::FaultRates::uniform(1e-3), 0xfa1151de);
  fpga::ArmHost host2(bus, design2.build(), wl);
  host2.configure_network(4, 4, noc::Topology::kMesh);
  host2.run(3000);
  const auto& inj = bus.injected();
  std::printf("injected           : %llu faults (%llu read flips, %llu "
              "write flips, %llu dropped writes)\n",
              static_cast<unsigned long long>(inj.total()),
              static_cast<unsigned long long>(inj.read_flips),
              static_cast<unsigned long long>(inj.write_flips),
              static_cast<unsigned long long>(inj.dropped_writes));
  std::printf("host fault report  : %s\n",
              host2.fault_report().to_string().c_str());
  const auto& be2 = host2.latency(traffic::PacketClass::kBestEffort);
  const bool identical = !host2.aborted() &&
                         host2.packets_delivered() ==
                             host.packets_delivered() &&
                         be2.sum() == be.sum() &&
                         host2.access_delay().sum() ==
                             host.access_delay().sum();
  std::printf("statistics         : %s the fault-free run\n",
              identical ? "bit-identical to" : "DIVERGED from");
  return identical ? 0 : 1;
}
