// Systolic array example — §7.1: "The same technique used for the NoC
// simulator can also be used for testing other parallel systems on an
// FPGA. In particular systolic algorithms with many equal parts with a
// small state space."
//
// An N×N output-stationary matrix-multiply array: A values flow east, B
// values flow south, every PE accumulates a·b. All boundaries are
// registered (the classic systolic discipline), so the §4.1 STATIC
// schedule applies: exactly N² delta cycles per system cycle, any order.
//
// The example builds the array from one shared PE implementation (the
// paper's F'_{i,j}: one circuit, many state words), streams two random
// matrices through it, and checks every accumulator against a plain
// matrix product.
//
//   $ ./examples/systolic_array [N]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/sequential_simulator.h"

namespace {

using namespace tmsim;
using namespace tmsim::core;

/// One processing element: acc += a_in * b_in; a and b pass through one
/// register stage. State = the 32-bit accumulator.
class MacPe : public SimBlock {
 public:
  std::size_t state_width() const override { return 32; }
  std::size_t num_inputs() const override { return 2; }   // a, b
  std::size_t input_width(std::size_t) const override { return 16; }
  std::size_t num_outputs() const override { return 2; }  // a, b
  std::size_t output_width(std::size_t) const override { return 16; }
  BitVector reset_state() const override { return BitVector(32); }

  void evaluate(const BitVector& old_state, std::span<const BitVector> in,
                BitVector& new_state,
                std::span<BitVector> out) const override {
    const std::uint64_t a = in[0].get_field(0, 16);
    const std::uint64_t b = in[1].get_field(0, 16);
    const std::uint64_t acc = old_state.get_field(0, 32);
    new_state.set_field(0, 32, (acc + a * b) & 0xffffffffull);
    out[0].set_field(0, 16, a);  // registered pass-through
    out[1].set_field(0, 16, b);
  }
  std::string type_name() const override { return "mac_pe"; }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc >= 2 ? std::strtoul(argv[1], nullptr, 10) : 4;
  if (n < 2 || n > 16) {
    std::fprintf(stderr, "N must be 2..16\n");
    return 1;
  }

  // Build the array: one logic instance, N² blocks, 2N(N+1)-ish links.
  SystemModel model;
  auto pe = std::make_shared<MacPe>();
  std::vector<BlockId> blocks(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      blocks[i * n + j] = model.add_block(
          pe, "pe" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  // a-links: row i has N+1 links (external feed + N-1 internal + east
  // spill); likewise b-links per column.
  std::vector<LinkId> a_feed(n), b_feed(n);
  for (std::size_t i = 0; i < n; ++i) {
    LinkId prev = model.add_link("a_in" + std::to_string(i), 16,
                                 LinkKind::kRegistered);
    a_feed[i] = prev;
    for (std::size_t j = 0; j < n; ++j) {
      model.bind_input(blocks[i * n + j], 0, prev);
      prev = model.add_link(
          "a" + std::to_string(i) + "_" + std::to_string(j), 16,
          LinkKind::kRegistered);
      model.bind_output(blocks[i * n + j], 0, prev);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    LinkId prev = model.add_link("b_in" + std::to_string(j), 16,
                                 LinkKind::kRegistered);
    b_feed[j] = prev;
    for (std::size_t i = 0; i < n; ++i) {
      model.bind_input(blocks[i * n + j], 1, prev);
      prev = model.add_link(
          "b" + std::to_string(i) + "_" + std::to_string(j), 16,
          LinkKind::kRegistered);
      model.bind_output(blocks[i * n + j], 1, prev);
    }
  }
  model.finalize();
  SequentialSimulator sim(model, SchedulePolicy::kStatic);

  // Random input matrices (small values so products stay in 32 bits).
  SplitMix64 rng(123);
  std::vector<std::vector<std::uint64_t>> A(n, std::vector<std::uint64_t>(n));
  std::vector<std::vector<std::uint64_t>> B(n, std::vector<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      A[i][j] = rng.next_below(256);
      B[i][j] = rng.next_below(256);
    }
  }

  // Staggered feed: A[i][k] enters row i before step k+i, B[k][j] enters
  // column j before step k+j; zeros otherwise (harmless: 0·x == 0).
  const std::size_t total_cycles = 3 * n + 2;
  for (std::size_t t = 0; t < total_cycles; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t a = (t >= i && t - i < n) ? A[i][t - i] : 0;
      sim.set_external_input(a_feed[i], make_bit_vector(16, a));
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t b = (t >= j && t - j < n) ? B[t - j][j] : 0;
      sim.set_external_input(b_feed[j], make_bit_vector(16, b));
    }
    const StepStats st = sim.step();
    TMSIM_CHECK_MSG(st.delta_cycles == n * n,
                    "static schedule must cost exactly N^2 deltas");
  }

  // Check every accumulator against the plain product.
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::uint64_t ref = 0;
      for (std::size_t k = 0; k < n; ++k) {
        ref += A[i][k] * B[k][j];
      }
      const std::uint64_t got =
          sim.block_state(blocks[i * n + j]).get_field(0, 32);
      if (got != ref) {
        ++wrong;
        std::printf("MISMATCH C[%zu][%zu]: got %llu want %llu\n", i, j,
                    (unsigned long long)got, (unsigned long long)ref);
      }
    }
  }
  std::printf("%zux%zu systolic matrix multiply: %zu PEs, %llu delta "
              "cycles over %zu system cycles — %s\n",
              n, n, n * n,
              static_cast<unsigned long long>(sim.total_delta_cycles()),
              total_cycles,
              wrong == 0 ? "all accumulators match the reference product"
                         : "FAILED");
  return wrong == 0 ? 0 : 1;
}
