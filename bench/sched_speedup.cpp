// Worklist-scheduler speedup (DESIGN.md §12): event-driven worklist vs
// the paper's dense §4.2 round-robin sweep, on both host engines.
//
// The dense sweep pays one evaluation per block per system cycle even
// when the network is completely idle ("it is guaranteed that all
// routers are evaluated at least once") plus an O(num_blocks) scan to
// find the non-stable ones. The worklist scheduler replaces the scan
// with a dedup'd FIFO fed by link-change events and skips quiescent
// blocks outright (the state-fixed-point fast path), so its per-cycle
// cost tracks *activity*, not network size. The differential suite
// (tests/integration/sched_equivalence_test.cpp) proves the results
// bit-identical; this bench prices the difference:
//
//   idle      — no traffic at all: the fast path's best case
//   sparse    — 2% injection: the regime the scheduler targets
//   saturated — 50% injection: everything active, the fast path's
//               worst case (must not be materially slower than dense)
//
// Rows for the sequential engine and the 4-shard bulk-synchronous
// engine; per-cycle evaluation/skip counts come from the engine.sched.*
// registry rows so the speedup can be read against the work elided.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/example_blocks.h"
#include "core/noc_block.h"
#include "core/sequential_simulator.h"
#include "core/system_model.h"
#include "obs/engine_sinks.h"
#include "traffic/harness.h"

namespace {

using namespace tmsim;

struct Row {
  double cps = 0;                ///< wall-clock simulated cycles per second
  double evals_per_cycle = 0;    ///< delta evaluations per system cycle
  double skipped_per_cycle = 0;  ///< quiescence-fast-path skips per cycle
};

Row measure(const noc::NetworkConfig& net, std::size_t shards,
            core::SchedulerKind sched, double load, std::size_t cycles) {
  core::EngineOptions opts;
  opts.num_shards = shards;
  opts.scheduler = sched;
  core::SeqNocSimulation sim(net, opts);
  obs::MetricsRegistry registry;
  obs::EngineMetricsSink sink(registry);
  traffic::TrafficHarness::Options topts;
  topts.seed = 21;
  traffic::TrafficHarness h(sim, topts);
  h.set_be_load(load);
  h.run(cycles / 10 + 20);  // warmup: reset transients, queues fill
  sim.set_observer(&sink);
  const double secs = bench::time_run([&] { h.run(cycles); });
  sim.set_observer(nullptr);
  Row r;
  r.cps = static_cast<double>(cycles) / secs;
  const double n = static_cast<double>(cycles);
  r.evals_per_cycle =
      static_cast<double>(
          registry.counter("engine.sched.delta_evals").value()) / n;
  r.skipped_per_cycle =
      static_cast<double>(
          registry.counter("engine.sched.skipped_blocks").value()) / n;
  return r;
}

// ---------------------------------------------------------------------------
// Compiled static-schedule sweep (DESIGN.md §17).
//
// The acyclic-region-dominated adversary: an XOR chain whose block ids
// run *against* the dataflow, with every block also fed by its own
// changing external input. Each cycle the event-driven worklist seeds
// all n blocks in id order — the wrong order — so the change wavefront
// crosses the FIFO against the dataflow and the fixed point costs
// ~n²/2 evaluations per cycle. The compiled schedule evaluates the
// same chain in topological order: exactly n evaluations, every cycle.
// ---------------------------------------------------------------------------

/// b[i] (XOR) reads its own external link and b[i+1]'s output; b[n-1]
/// is the head. Ids are anti-topological on purpose.
struct ChainModel {
  explicit ChainModel(std::size_t n) {
    using core::LinkKind;
    using core::examples::Xor2Block;
    std::vector<core::BlockId> b(n);
    std::vector<core::LinkId> chain(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = model.add_block(std::make_shared<Xor2Block>(16, 0x1d + i),
                             "b" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      ext.push_back(model.add_link("ext" + std::to_string(i), 16,
                                   LinkKind::kCombinational));
      chain[i] = model.add_link("c" + std::to_string(i), 16,
                                LinkKind::kCombinational);
      dangle.push_back(model.add_link("d" + std::to_string(i), 16,
                                      LinkKind::kCombinational));
    }
    const core::LinkId head_in =
        model.add_link("head_in", 16, LinkKind::kCombinational);
    ext.push_back(head_in);
    // chain[i+1] feeds b[i].in1, so chain values flow head -> tail
    // while ids (and the worklist's seed order) run tail -> head.
    for (std::size_t i = 0; i < n; ++i) {
      model.bind_input(b[i], 0, ext[i]);
      model.bind_input(b[i], 1, i + 1 < n ? chain[i + 1] : head_in);
      model.bind_output(b[i], 0, chain[i]);
      model.bind_output(b[i], 1, dangle[i]);
    }
    model.finalize();
  }
  core::SystemModel model;
  std::vector<core::LinkId> ext;
  std::vector<core::LinkId> dangle;
};

Row measure_chain(const core::SystemModel& model,
                  const std::vector<core::LinkId>& ext,
                  core::SchedulerKind sched, std::size_t cycles) {
  core::SequentialSimulator sim(model, core::SchedulePolicy::kDynamic, 256, 1,
                                sched);
  SplitMix64 rng(0x5eed);
  BitVector v(16);
  std::uint64_t evals = 0;
  const double secs = bench::time_run([&] {
    for (std::size_t c = 0; c < cycles; ++c) {
      for (const core::LinkId l : ext) {
        v.set_field(0, 16, rng.next() & 0xffff);
        sim.set_external_input(l, v);
      }
      evals += sim.step().delta_cycles;
    }
  });
  Row r;
  r.cps = static_cast<double>(cycles) / secs;
  r.evals_per_cycle =
      static_cast<double>(evals) / static_cast<double>(cycles);
  return r;
}

}  // namespace

int main() {
  bench::print_header("Worklist scheduler",
                      "event-driven worklist vs dense round-robin sweep");
  std::vector<bench::BenchMetric> metrics;
  const std::size_t scale = bench::quick_mode() ? 4 : 1;

  noc::NetworkConfig net;
  net.width = 12;
  net.height = 12;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = 4;
  std::printf("network: %zux%zu mesh (%zu routers), queue depth %zu\n",
              net.width, net.height, net.num_routers(),
              net.router.queue_depth);

  const struct {
    const char* name;
    double load;
  } kLoads[] = {{"idle", 0.0}, {"sparse", 0.02}, {"saturated", 0.5}};

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const char* eng = shards == 1 ? "seq" : "sharded";
    std::printf("\n%s engine (shards=%zu):\n", eng, shards);
    std::printf("  %-10s %12s %12s %8s %11s %11s\n", "load", "rr cyc/s",
                "wl cyc/s", "speedup", "wl evals/c", "wl skips/c");
    for (const auto& l : kLoads) {
      const std::size_t cycles = (l.load >= 0.5 ? 400 : 1200) / scale;
      const Row rr = measure(net, shards, core::SchedulerKind::kRoundRobin,
                             l.load, cycles);
      const Row wl = measure(net, shards, core::SchedulerKind::kWorklist,
                             l.load, cycles);
      const double speedup = wl.cps / rr.cps;
      std::printf("  %-10s %12.0f %12.0f %7.2fx %11.1f %11.1f\n", l.name,
                  rr.cps, wl.cps, speedup, wl.evals_per_cycle,
                  wl.skipped_per_cycle);
      const std::string tag = std::string(eng) + "." + l.name;
      metrics.push_back({"sched.speedup." + tag, speedup, "ratio"});
      metrics.push_back({"sched.wl_evals_per_cycle." + tag,
                         wl.evals_per_cycle, "count"});
      metrics.push_back({"sched.wl_skips_per_cycle." + tag,
                         wl.skipped_per_cycle, "count"});
      metrics.push_back({"sched.rr_evals_per_cycle." + tag,
                         rr.evals_per_cycle, "count"});
      if (shards == 1 && l.load > 0.0 && l.load <= 0.1) {
        // The headline acceptance metric: worklist vs round-robin on a
        // sparse (≤10% injection) workload, sequential engine.
        metrics.push_back({"sched.speedup.sparse", speedup, "ratio"});
      }
    }
  }
  std::printf("\n");

  bench::emit_bench_json(
      "sched_speedup",
      {{"quick", bench::quick_mode() ? "1" : "0"},
       {"net", "12x12 mesh"},
       {"sparse_load", "0.02"}},
      metrics);

  // ------------------------------------------------------------------
  // Compiled static-schedule sweep: BENCH_compiled_speedup.json.
  // ------------------------------------------------------------------
  bench::print_header("Compiled schedule",
                      "build-time static schedule vs run-time worklist");
  std::vector<bench::BenchMetric> cmetrics;
  const std::size_t chain_n = bench::quick_mode() ? 48 : 96;
  const std::size_t chain_cycles = bench::quick_mode() ? 60 : 200;
  ChainModel chain(chain_n);
  std::printf(
      "anti-topological XOR chain: %zu blocks, per-block stimulus, "
      "%zu cycles\n", chain_n, chain_cycles);
  const Row crr = measure_chain(chain.model, chain.ext,
                                core::SchedulerKind::kRoundRobin,
                                chain_cycles);
  const Row cwl = measure_chain(chain.model, chain.ext,
                                core::SchedulerKind::kWorklist, chain_cycles);
  const Row ccp = measure_chain(chain.model, chain.ext,
                                core::SchedulerKind::kCompiled, chain_cycles);
  std::printf("  %-12s %12s %12s\n", "scheduler", "cyc/s", "evals/cyc");
  std::printf("  %-12s %12.0f %12.1f\n", "round_robin", crr.cps,
              crr.evals_per_cycle);
  std::printf("  %-12s %12.0f %12.1f\n", "worklist", cwl.cps,
              cwl.evals_per_cycle);
  std::printf("  %-12s %12.0f %12.1f\n", "compiled", ccp.cps,
              ccp.evals_per_cycle);
  std::printf("  compiled vs worklist: %.2fx cyc/s, %.1fx fewer evals\n",
              ccp.cps / cwl.cps, cwl.evals_per_cycle / ccp.evals_per_cycle);
  cmetrics.push_back(
      {"compiled.table3_cps.round_robin", crr.cps, "cycles/s"});
  cmetrics.push_back({"compiled.table3_cps.worklist", cwl.cps, "cycles/s"});
  cmetrics.push_back({"compiled.table3_cps.compiled", ccp.cps, "cycles/s"});
  // The headline acceptance metric: compiled over worklist cycle rate on
  // the acyclic-region-dominated config (bench_schema_test pins >= 3x).
  cmetrics.push_back(
      {"compiled.speedup.table3_cps", ccp.cps / cwl.cps, "ratio"});
  cmetrics.push_back({"compiled.evals_per_cycle.worklist",
                      cwl.evals_per_cycle, "count"});
  cmetrics.push_back({"compiled.evals_per_cycle.compiled",
                      ccp.evals_per_cycle, "count"});

  // NoC rows: the mesh's link graph is acyclic after dependency pruning,
  // so the compiled schedule must hold its own against the worklist's
  // quiescence fast path on real router workloads too.
  std::printf("\nNoC (seq engine):\n");
  std::printf("  %-10s %12s %12s %8s\n", "load", "wl cyc/s", "cp cyc/s",
              "cp/wl");
  for (const auto& l : kLoads) {
    const std::size_t cycles = (l.load >= 0.5 ? 400 : 1200) / scale;
    const Row wl =
        measure(net, 1, core::SchedulerKind::kWorklist, l.load, cycles);
    const Row cp =
        measure(net, 1, core::SchedulerKind::kCompiled, l.load, cycles);
    std::printf("  %-10s %12.0f %12.0f %7.2fx\n", l.name, wl.cps, cp.cps,
                cp.cps / wl.cps);
    cmetrics.push_back({"compiled.noc_cps.worklist." + std::string(l.name),
                        wl.cps, "cycles/s"});
    cmetrics.push_back({"compiled.noc_cps.compiled." + std::string(l.name),
                        cp.cps, "cycles/s"});
    cmetrics.push_back({"compiled.noc_evals_per_cycle." + std::string(l.name),
                        cp.evals_per_cycle, "count"});
  }
  std::printf("\n");

  bench::emit_bench_json(
      "compiled_speedup",
      {{"quick", bench::quick_mode() ? "1" : "0"},
       {"chain_blocks", std::to_string(chain_n)},
       {"chain_cycles", std::to_string(chain_cycles)},
       {"net", "12x12 mesh"}},
      cmetrics);
  return 0;
}
