// Worklist-scheduler speedup (DESIGN.md §12): event-driven worklist vs
// the paper's dense §4.2 round-robin sweep, on both host engines.
//
// The dense sweep pays one evaluation per block per system cycle even
// when the network is completely idle ("it is guaranteed that all
// routers are evaluated at least once") plus an O(num_blocks) scan to
// find the non-stable ones. The worklist scheduler replaces the scan
// with a dedup'd FIFO fed by link-change events and skips quiescent
// blocks outright (the state-fixed-point fast path), so its per-cycle
// cost tracks *activity*, not network size. The differential suite
// (tests/integration/sched_equivalence_test.cpp) proves the results
// bit-identical; this bench prices the difference:
//
//   idle      — no traffic at all: the fast path's best case
//   sparse    — 2% injection: the regime the scheduler targets
//   saturated — 50% injection: everything active, the fast path's
//               worst case (must not be materially slower than dense)
//
// Rows for the sequential engine and the 4-shard bulk-synchronous
// engine; per-cycle evaluation/skip counts come from the engine.sched.*
// registry rows so the speedup can be read against the work elided.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "obs/engine_sinks.h"
#include "traffic/harness.h"

namespace {

using namespace tmsim;

struct Row {
  double cps = 0;                ///< wall-clock simulated cycles per second
  double evals_per_cycle = 0;    ///< delta evaluations per system cycle
  double skipped_per_cycle = 0;  ///< quiescence-fast-path skips per cycle
};

Row measure(const noc::NetworkConfig& net, std::size_t shards,
            core::SchedulerKind sched, double load, std::size_t cycles) {
  core::EngineOptions opts;
  opts.num_shards = shards;
  opts.scheduler = sched;
  core::SeqNocSimulation sim(net, opts);
  obs::MetricsRegistry registry;
  obs::EngineMetricsSink sink(registry);
  traffic::TrafficHarness::Options topts;
  topts.seed = 21;
  traffic::TrafficHarness h(sim, topts);
  h.set_be_load(load);
  h.run(cycles / 10 + 20);  // warmup: reset transients, queues fill
  sim.set_observer(&sink);
  const double secs = bench::time_run([&] { h.run(cycles); });
  sim.set_observer(nullptr);
  Row r;
  r.cps = static_cast<double>(cycles) / secs;
  const double n = static_cast<double>(cycles);
  r.evals_per_cycle =
      static_cast<double>(
          registry.counter("engine.sched.delta_evals").value()) / n;
  r.skipped_per_cycle =
      static_cast<double>(
          registry.counter("engine.sched.skipped_blocks").value()) / n;
  return r;
}

}  // namespace

int main() {
  bench::print_header("Worklist scheduler",
                      "event-driven worklist vs dense round-robin sweep");
  std::vector<bench::BenchMetric> metrics;
  const std::size_t scale = bench::quick_mode() ? 4 : 1;

  noc::NetworkConfig net;
  net.width = 12;
  net.height = 12;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = 4;
  std::printf("network: %zux%zu mesh (%zu routers), queue depth %zu\n",
              net.width, net.height, net.num_routers(),
              net.router.queue_depth);

  const struct {
    const char* name;
    double load;
  } kLoads[] = {{"idle", 0.0}, {"sparse", 0.02}, {"saturated", 0.5}};

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const char* eng = shards == 1 ? "seq" : "sharded";
    std::printf("\n%s engine (shards=%zu):\n", eng, shards);
    std::printf("  %-10s %12s %12s %8s %11s %11s\n", "load", "rr cyc/s",
                "wl cyc/s", "speedup", "wl evals/c", "wl skips/c");
    for (const auto& l : kLoads) {
      const std::size_t cycles = (l.load >= 0.5 ? 400 : 1200) / scale;
      const Row rr = measure(net, shards, core::SchedulerKind::kRoundRobin,
                             l.load, cycles);
      const Row wl = measure(net, shards, core::SchedulerKind::kWorklist,
                             l.load, cycles);
      const double speedup = wl.cps / rr.cps;
      std::printf("  %-10s %12.0f %12.0f %7.2fx %11.1f %11.1f\n", l.name,
                  rr.cps, wl.cps, speedup, wl.evals_per_cycle,
                  wl.skipped_per_cycle);
      const std::string tag = std::string(eng) + "." + l.name;
      metrics.push_back({"sched.speedup." + tag, speedup, "ratio"});
      metrics.push_back({"sched.wl_evals_per_cycle." + tag,
                         wl.evals_per_cycle, "count"});
      metrics.push_back({"sched.wl_skips_per_cycle." + tag,
                         wl.skipped_per_cycle, "count"});
      metrics.push_back({"sched.rr_evals_per_cycle." + tag,
                         rr.evals_per_cycle, "count"});
      if (shards == 1 && l.load > 0.0 && l.load <= 0.1) {
        // The headline acceptance metric: worklist vs round-robin on a
        // sparse (≤10% injection) workload, sequential engine.
        metrics.push_back({"sched.speedup.sparse", speedup, "ratio"});
      }
    }
  }
  std::printf("\n");

  bench::emit_bench_json(
      "sched_speedup",
      {{"quick", bench::quick_mode() ? "1" : "0"},
       {"net", "12x12 mesh"},
       {"sparse_load", "0.02"}},
      metrics);
  return 0;
}
