// Farm robustness bench: what fault tolerance costs. Runs the same job
// mix twice —
//   healthy: 4 workers, no interference;
//   chaos:   4 workers, every 5th job's first attempt dies with an
//            injected transient fault (retried from scratch, DESIGN.md
//            §13), and one of the four workers is killed mid-run; the
//            supervisor reclaims its in-flight job and respawns the
//            slot.
// The headline number is the throughput ratio chaos/healthy — the farm
// must sustain > 0.8x its healthy throughput through retries and a
// worker loss — plus the recovery latency: wall time from the kill to
// the supervisor having reclaimed the orphaned job.
//
// Output: a human table plus BENCH_farm_robustness.json with healthy
// and chaos jobs/sec, p99 turnaround, the retry rate, the recovery
// latency, and the ratio.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "obs/metrics.h"

namespace {

using tmsim::farm::ChaosAction;
using tmsim::farm::ChaosEvent;
using tmsim::farm::FarmOptions;
using tmsim::farm::JobResult;
using tmsim::farm::JobSpec;
using tmsim::farm::JobStatus;
using tmsim::farm::Priority;
using tmsim::farm::SimFarm;
using tmsim::farm::SubmitOutcome;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

JobSpec make_job(std::size_t i, tmsim::SystemCycle cycles) {
  JobSpec spec;
  spec.name = "robust-" + std::to_string(i);
  spec.net.width = 4;
  spec.net.height = 4;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  spec.workload.fig1_gt = true;
  spec.workload.gt_period = 600;
  spec.workload.be_load = 0.02 * static_cast<double>(i % 10);
  spec.priority = static_cast<Priority>(i % 3);
  spec.seed = 0x10b5 + i;
  spec.cycles = cycles;
  spec.max_retries = 2;
  return spec;
}

struct RunResult {
  std::size_t jobs_done = 0;
  double wall_s = 0.0;
  double p99_s = 0.0;
  double retries = 0.0;
  double recovery_s = 0.0;  ///< kill → orphan reclaimed (chaos run only)
};

RunResult run_mix(std::size_t num_jobs, tmsim::SystemCycle cycles,
                  bool chaos) {
  RunResult res;
  tmsim::obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 4;
  opt.queue_capacity = num_jobs;
  opt.preempt_quantum = 128;  // several slice boundaries even in quick mode
  opt.metrics = &metrics;
  if (chaos) {
    opt.chaos = [](const ChaosEvent& ev) {
      // Every 5th job's first attempt dies one slice in; the retry (from
      // scratch, back of its class, seeded backoff) runs clean.
      return (ev.job_id % 5 == 0 && ev.attempt == 1 && ev.slice == 1)
                 ? ChaosAction::kThrowTransient
                 : ChaosAction::kNone;
    };
    opt.supervisor_interval_ms = 2.0;  // reclaim cadence under test
  }
  SimFarm farm(opt);

  std::vector<std::uint64_t> ids;
  ids.reserve(num_jobs);
  res.wall_s = tmsim::bench::time_run([&] {
    for (std::size_t i = 0; i < num_jobs; ++i) {
      const SubmitOutcome out = farm.submit(make_job(i, cycles));
      if (out.accepted) {
        ids.push_back(out.job_id);
      }
      if (chaos && i == num_jobs / 4) {
        // A quarter into the load, worker 1 dies at its next slice
        // boundary. Recovery latency = kill-request → the supervisor has
        // joined the corpse, requeued its in-flight job, and respawned.
        const auto t0 = std::chrono::steady_clock::now();
        farm.kill_worker(1);
        while (farm.jobs_reclaimed() == 0 &&
               std::chrono::steady_clock::now() - t0 <
                   std::chrono::seconds(5)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        res.recovery_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
      }
    }
    farm.drain();
  });

  std::vector<double> turnaround;
  turnaround.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    const JobResult r = farm.results().get(id).value();
    if (r.status == JobStatus::kDone) {
      ++res.jobs_done;
      turnaround.push_back(r.turnaround_seconds);
    } else {
      std::fprintf(stderr, "job %llu not done: %s\n",
                   static_cast<unsigned long long>(id), r.error.c_str());
    }
  }
  res.p99_s = quantile(turnaround, 0.99);
  farm.shutdown();
  res.retries =
      static_cast<double>(metrics.counter_value("farm.retries.scheduled"));
  return res;
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  const std::size_t num_jobs = quick ? 24 : 120;
  const tmsim::SystemCycle cycles = quick ? 400 : 1500;

  tmsim::bench::print_header(
      "farm_robustness",
      "fault-tolerance overhead: chaos (retries + a worker kill) vs healthy");
  std::printf(
      "%zu jobs x %llu cycles, 4x4 mesh, 4 workers; chaos = every 5th job "
      "retried once + worker 1 killed mid-run\n\n",
      num_jobs, static_cast<unsigned long long>(cycles));

  const RunResult healthy = run_mix(num_jobs, cycles, /*chaos=*/false);
  const RunResult chaos = run_mix(num_jobs, cycles, /*chaos=*/true);

  const double healthy_jps =
      static_cast<double>(healthy.jobs_done) / healthy.wall_s;
  const double chaos_jps = static_cast<double>(chaos.jobs_done) / chaos.wall_s;
  const double ratio = chaos_jps / healthy_jps;
  const double retry_rate = chaos.retries / static_cast<double>(num_jobs);

  std::printf("%10s %10s %9s %10s %9s %12s\n", "run", "jobs/sec", "wall(s)",
              "p99(ms)", "retries", "recovery(ms)");
  std::printf("%10s %10.1f %9.3f %10.3f %9.0f %12s\n", "healthy", healthy_jps,
              healthy.wall_s, healthy.p99_s * 1e3, healthy.retries, "-");
  std::printf("%10s %10.1f %9.3f %10.3f %9.0f %12.3f\n", "chaos", chaos_jps,
              chaos.wall_s, chaos.p99_s * 1e3, chaos.retries,
              chaos.recovery_s * 1e3);
  std::printf("\nthroughput ratio chaos/healthy: %.3f (target > 0.8: %s)\n",
              ratio, ratio > 0.8 ? "PASS" : "FAIL");

  tmsim::bench::emit_bench_json(
      "farm_robustness",
      {{"num_jobs", std::to_string(num_jobs)},
       {"cycles_per_job", std::to_string(cycles)},
       {"network", "4x4 mesh"},
       {"workers", "4"},
       {"quick", quick ? "1" : "0"}},
      {{"healthy_jobs_per_sec", healthy_jps, "jobs/s"},
       {"chaos_jobs_per_sec", chaos_jps, "jobs/s"},
       {"throughput_ratio", ratio, "ratio"},
       {"healthy_p99_latency", healthy.p99_s, "seconds"},
       {"chaos_p99_latency", chaos.p99_s, "seconds"},
       {"retry_rate", retry_rate, "retries/job"},
       {"recovery_latency", chaos.recovery_s, "seconds"}});
  return 0;
}
