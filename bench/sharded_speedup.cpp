// Sharded-engine speedup: measured host scaling + modeled FPGA scaling.
//
// The sharded bulk-synchronous engine partitions the block graph over N
// worker threads and synchronizes cut links at delta-cycle barriers
// (DESIGN.md §9). Two questions, answered separately and honestly:
//
//   1. What does it do on *this host*? Measured wall-clock cycles per
//      second for shards ∈ {1, 2, 4, 8} on a 4×4 and an 8×8 mesh, per
//      partition policy. Thread-level speedup needs hardware threads:
//      on a single-core host the barrier protocol is pure overhead and
//      every sharded row will be *slower* than sequential — the bench
//      prints the host's hardware_concurrency so that reading is
//      unambiguous.
//
//   2. What would it do on the paper's platform? N copies of the §5.2
//      evaluation pipeline each walk ~1/N of the delta work between
//      barrier rounds; TimingModel::sharded_simulate_estimate prices
//      that with the measured supersteps/cycle and partition imbalance
//      from the same runs, at the paper's 6.6 MHz logic clock.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "core/partition.h"
#include "core/sharded_simulator.h"
#include "fpga/arm_host.h"
#include "fpga/fpga_design.h"
#include "fpga/timing_model.h"
#include "traffic/harness.h"

namespace {

using namespace tmsim;

struct Measured {
  double cps = 0;            ///< wall-clock simulated cycles per second
  double supersteps = 0;     ///< barrier rounds per system cycle
  std::size_t cut_links = 0; ///< mailbox slots (0 for the sequential row)
};

Measured measure(const noc::NetworkConfig& net, const core::EngineOptions& opts,
                 std::size_t cycles) {
  core::SeqNocSimulation sim(net, opts);
  traffic::TrafficHarness::Options topts;
  topts.seed = 21;
  traffic::TrafficHarness h(sim, topts);
  h.set_be_load(0.10);
  const double secs = bench::time_run([&] { h.run(cycles); });
  Measured m;
  m.cps = static_cast<double>(cycles) / secs;
  if (const auto* sh =
          dynamic_cast<const core::ShardedSimulator*>(&sim.engine())) {
    m.supersteps = static_cast<double>(sh->total_supersteps()) /
                   static_cast<double>(sim.cycle());
    m.cut_links = sh->num_boundary_links();
  }
  return m;
}

/// Max-over-min shard population: the model's `imbalance` knob.
double imbalance_of(const core::SystemModel& model, std::size_t shards,
                    core::PartitionPolicy pol) {
  const core::Partition p = core::partition_blocks(model, shards, pol);
  std::size_t lo = model.num_blocks(), hi = 0;
  for (const auto& s : p.shards) {
    lo = std::min(lo, s.size());
    hi = std::max(hi, s.size());
  }
  return lo == 0 ? 1.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

}  // namespace

int main() {
  bench::print_header("Sharded engine", "measured host scaling + modeled FPGA scaling");
  std::vector<bench::BenchMetric> metrics;
  const std::size_t scale = bench::quick_mode() ? 4 : 1;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u%s\n", hw,
              hw <= 1 ? "  (single core: sharded rows measure pure "
                        "synchronization overhead, not speedup)"
                      : "");

  const core::PartitionPolicy policies[] = {
      core::PartitionPolicy::kRoundRobin, core::PartitionPolicy::kContiguous,
      core::PartitionPolicy::kMinCutGreedy};
  const std::size_t shard_counts[] = {2, 4, 8};

  for (const std::size_t side : {std::size_t{4}, std::size_t{8}}) {
    noc::NetworkConfig net;
    net.width = side;
    net.height = side;
    net.topology = noc::Topology::kMesh;
    net.router.queue_depth = 4;
    const std::size_t cycles = (side == 4 ? 2000 : 600) / scale;

    const Measured seq = measure(net, core::EngineOptions{}, cycles);
    metrics.push_back({"seq.cps." + std::to_string(side) + "x" +
                           std::to_string(side),
                       seq.cps, "cycles/s"});
    std::printf("\n%zux%zu mesh, %zu cycles — sequential: %.0f cycles/s\n",
                side, side, cycles, seq.cps);
    std::printf("  %-14s %6s %10s %9s %8s %11s\n", "partition", "shards",
                "cycles/s", "vs seq", "cut", "steps/cyc");
    for (const core::PartitionPolicy pol : policies) {
      for (const std::size_t k : shard_counts) {
        core::EngineOptions opts;
        opts.num_shards = k;
        opts.partition = pol;
        const Measured m = measure(net, opts, cycles);
        metrics.push_back({std::string("speedup.") +
                               core::partition_policy_name(pol) + "." +
                               std::to_string(side) + "x" +
                               std::to_string(side) + ".shards=" +
                               std::to_string(k),
                           m.cps / seq.cps, "ratio"});
        std::printf("  %-14s %6zu %10.0f %8.2fx %8zu %11.2f\n",
                    core::partition_policy_name(pol), k, m.cps, m.cps / seq.cps,
                    m.cut_links, m.supersteps);
      }
    }
  }

  // Modeled FPGA scaling: counts from a hardened ArmHost run on the 8×8
  // mesh, supersteps/cycle and imbalance measured from the matching
  // min-cut-greedy sharded runs above (re-derived here cheaply).
  std::printf("\nmodeled parallel FPGA engine (8x8 mesh, paper clocks):\n");
  fpga::FpgaDesign design{fpga::FpgaBuildConfig{}};
  fpga::ArmHost::Workload wl;
  wl.be_load = 0.10;
  fpga::ArmHost host(design, wl);
  host.configure_network(8, 8, noc::Topology::kMesh);
  host.run(600 / scale);
  const fpga::TimingModel model;
  const fpga::PhaseTimes seq_times = model.evaluate(host.counts());
  std::printf("  sequential: simulate %.3fs, %.0f cycles/s\n",
              seq_times.simulate_raw, seq_times.cycles_per_second);

  noc::NetworkConfig net8;
  net8.width = 8;
  net8.height = 8;
  net8.topology = noc::Topology::kMesh;
  net8.router.queue_depth = 4;
  std::printf("  %6s %12s %9s %12s\n", "shards", "simulate(s)", "speedup",
              "cycles/s");
  for (const std::size_t k : shard_counts) {
    // Supersteps/cycle from a short real sharded run of the same mesh;
    // imbalance from the partition itself.
    core::EngineOptions opts;
    opts.num_shards = k;
    const Measured m = measure(net8, opts, 120 / scale + 30);
    core::SeqNocSimulation probe(net8, opts);
    const double imb = imbalance_of(
        dynamic_cast<const core::ShardedSimulator&>(probe.engine()).model(), k,
        core::PartitionPolicy::kMinCutGreedy);
    const fpga::ShardedEstimate est = model.sharded_simulate_estimate(
        host.counts(), k, imb, 4.0, std::max(m.supersteps, 1.0));
    std::printf("  %6zu %12.3f %8.2fx %12.0f\n", k, est.simulate_raw,
                est.speedup, est.cycles_per_second);
    metrics.push_back({"modeled.speedup.shards=" + std::to_string(k),
                       est.speedup, "ratio"});
  }
  std::printf("\n");

  bench::emit_bench_json(
      "sharded_speedup",
      {{"quick", bench::quick_mode() ? "1" : "0"},
       {"hw_threads", std::to_string(std::thread::hardware_concurrency())}},
      metrics);
  return 0;
}
