// Figure 1: "Delay of the GT and BE packets vs. BE load for 6-by-6
// network (queue size 2 flits)".
//
// Reproduction: a 6×6 torus, 2-flit queues; a fixed population of 36
// two-hop GT streams (256-byte packets, one 129-flit packet per stream
// per 1290 cycles ≈ 10 % of a channel, link/VC-disjoint so the §2.1
// guarantee applies); uniform-random BE traffic (10-byte packets) on the
// remaining two VCs, swept from 0 to 0.14 of channel capacity per PE —
// the figure's x-axis.
//
// Shape to reproduce (the paper's absolute cycle counts depend on their
// exact router RTL, ours on this reproduction's):
//   - BE mean latency below GT mean at low load (BE packets are 10 bytes
//     vs 256 bytes);
//   - GT mean and max rise with BE load;
//   - GT max never exceeds the analytic guarantee at any load;
//   - BE latency grows steeply toward the right edge (saturation).
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

int main() {
  using namespace tmsim;
  bench::print_header("Figure 1", "GT/BE packet latency vs offered BE load");

  const noc::NetworkConfig net = bench::paper_network(/*queue_depth=*/2);
  const SystemCycle gt_period = 1290;  // 129 flits / 1290 cycles = 10 %
  const std::size_t cycles = bench::quick_mode() ? 3000 : 12000;
  const std::size_t warmup = bench::quick_mode() ? 500 : 2000;

  const auto streams = traffic::fig1_gt_streams(net, gt_period);
  const std::size_t hops = traffic::max_stream_hops(net, streams);
  const std::size_t gt_flits =
      traffic::payload_flits_for_bytes(traffic::kGtPacketBytes) + 1;
  const std::size_t guarantee =
      traffic::gt_latency_guarantee(net.router, gt_flits, hops);

  std::printf("network: 6x6 torus, queue depth 2, 4 VCs\n");
  std::printf("GT: %zu streams, %zu hops, %zu-flit packets, period %llu "
              "(10%% channel load), VCs 0/1\n",
              streams.size(), hops, gt_flits,
              static_cast<unsigned long long>(gt_period));
  std::printf("BE: 6-flit packets, uniform destinations, VCs 2/3\n");
  std::printf("analytic GT guarantee: %zu cycles "
              "(num_vcs*flits + (num_vcs+1)*hops)\n\n",
              guarantee);

  analysis::TablePrinter table({"BE load", "BE mean", "BE max", "GT mean",
                                "GT max", "guarantee", "GT ok", "BE pkts",
                                "GT pkts", "delta/cyc"});
  bool guarantee_held = true;
  double gt_mean_low = 0, gt_mean_high = 0, be_mean_low = 0;
  std::vector<bench::BenchMetric> metrics;

  const std::vector<double> loads = {0.0,  0.02, 0.04, 0.06,
                                     0.08, 0.10, 0.12, 0.14};
  for (double load : loads) {
    core::SeqNocSimulation sim(net);
    traffic::TrafficHarness::Options opts;
    opts.seed = 4242 + static_cast<std::uint64_t>(load * 1000);
    opts.warmup_cycles = warmup;
    traffic::TrafficHarness h(sim, opts);
    for (const auto& s : streams) {
      h.add_gt_stream(s);
    }
    if (load > 0) {
      h.set_be_load(load);
    }
    h.run(cycles);

    const auto gt = h.summarize(traffic::PacketClass::kGuaranteedThroughput);
    const auto be = h.summarize(traffic::PacketClass::kBestEffort);
    const bool ok = gt.network.max() <= static_cast<double>(guarantee);
    guarantee_held = guarantee_held && ok;
    const double dpc =
        static_cast<double>(sim.engine().total_delta_cycles()) /
        static_cast<double>(sim.cycle());
    if (load == 0.0) {
      gt_mean_low = gt.network.mean();
    }
    if (load == loads.back()) {
      gt_mean_high = gt.network.mean();
    }
    if (load == 0.02) {
      be_mean_low = be.network.mean();
    }
    table.add_row({analysis::fmt("%.2f", load),
                   analysis::fmt("%.1f", be.network.mean()),
                   analysis::fmt("%.0f", be.network.max()),
                   analysis::fmt("%.1f", gt.network.mean()),
                   analysis::fmt("%.0f", gt.network.max()),
                   std::to_string(guarantee), ok ? "yes" : "NO",
                   std::to_string(be.delivered), std::to_string(gt.delivered),
                   analysis::fmt("%.2f", dpc)});
    const std::string tag = analysis::fmt("be=%.2f", load);
    metrics.push_back({"be_mean_latency." + tag, be.network.mean(), "cycles"});
    metrics.push_back({"gt_mean_latency." + tag, gt.network.mean(), "cycles"});
    metrics.push_back({"gt_max_latency." + tag, gt.network.max(), "cycles"});
  }
  table.print();

  std::printf("\nclaims:\n");
  std::printf("  GT max <= guarantee at every load: %s\n",
              guarantee_held ? "HOLDS" : "VIOLATED");
  std::printf("  BE mean (%.1f) below GT mean (%.1f) at low load: %s\n",
              be_mean_low, gt_mean_low,
              be_mean_low < gt_mean_low ? "HOLDS" : "VIOLATED");
  std::printf("  GT mean rises with BE load (%.1f -> %.1f): %s\n",
              gt_mean_low, gt_mean_high,
              gt_mean_high > gt_mean_low ? "HOLDS" : "VIOLATED");

  metrics.push_back({"gt_guarantee", static_cast<double>(guarantee),
                     "cycles"});
  metrics.push_back({"gt_guarantee_held", guarantee_held ? 1.0 : 0.0,
                     "bool"});
  bench::emit_bench_json("fig1_latency_vs_load",
                         {{"cycles", std::to_string(cycles)},
                          {"warmup", std::to_string(warmup)},
                          {"network", "6x6 torus, queue depth 2"}},
                         metrics);
  return guarantee_held ? 0 : 1;
}
