// Farm throughput bench: jobs/second and job-latency quantiles of the
// SimFarm batch service as a function of worker-pool size and admission
// queue depth. The paper's platform simulates one SoC at a time; the
// farm layer (DESIGN.md §11) amortizes one host across many queued
// simulation requests, so the capacity question becomes "how many
// Fig. 1-style sweep points per second does a pool of N workers
// clear?" — which is what this bench measures.
//
// Output: a human table plus BENCH_farm_throughput.json with, per
// (workers, queue_capacity) point: jobs/sec, p50/p99 turnaround
// latency, and the backpressure reject count when the submitter
// outruns admission.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "obs/metrics.h"

namespace {

using tmsim::farm::FarmOptions;
using tmsim::farm::JobResult;
using tmsim::farm::JobSpec;
using tmsim::farm::JobStatus;
using tmsim::farm::Priority;
using tmsim::farm::SimFarm;
using tmsim::farm::SubmitOutcome;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

JobSpec make_job(std::size_t i, tmsim::SystemCycle cycles) {
  JobSpec spec;
  spec.name = "sweep-" + std::to_string(i);
  spec.net.width = 4;
  spec.net.height = 4;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  // A Fig. 1-style point: GT background plus a BE load that scales with
  // the job index, so the pool sees heterogeneous work.
  spec.workload.fig1_gt = true;
  spec.workload.gt_period = 600;
  spec.workload.be_load = 0.02 * static_cast<double>(i % 10);
  spec.priority = static_cast<Priority>(i % 3);
  spec.seed = 0x9001 + i;
  spec.cycles = cycles;
  return spec;
}

struct Point {
  std::size_t workers;
  std::size_t queue_capacity;
  std::size_t jobs_done = 0;
  std::size_t rejected = 0;
  double wall_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

Point run_point(std::size_t workers, std::size_t queue_capacity,
                std::size_t num_jobs, tmsim::SystemCycle cycles) {
  Point pt{workers, queue_capacity};
  tmsim::obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = workers;
  opt.queue_capacity = queue_capacity;
  opt.preempt_quantum = 512;
  opt.metrics = &metrics;
  SimFarm farm(opt);

  std::vector<std::uint64_t> ids;
  ids.reserve(num_jobs);
  pt.wall_s = tmsim::bench::time_run([&] {
    std::size_t waited = 0;
    for (std::size_t i = 0; i < num_jobs; ++i) {
      // Submit-until-accepted: on kQueueFull backpressure, service the
      // queue by waiting for the oldest outstanding result — the
      // structured reject means the submitter, not the farm, decides
      // how to shed or defer load.
      for (;;) {
        const SubmitOutcome out = farm.submit(make_job(i, cycles));
        if (out.accepted) {
          ids.push_back(out.job_id);
          break;
        }
        ++pt.rejected;
        if (waited < ids.size()) {
          farm.wait(ids[waited++]);
        }
      }
    }
    farm.drain();
  });

  std::vector<double> turnaround;
  turnaround.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    const JobResult r = farm.results().get(id).value();
    if (r.status == JobStatus::kDone) {
      ++pt.jobs_done;
      turnaround.push_back(r.turnaround_seconds);
    }
  }
  pt.p50_s = quantile(turnaround, 0.50);
  pt.p99_s = quantile(turnaround, 0.99);
  return pt;
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  const std::size_t num_jobs = quick ? 24 : 120;
  const tmsim::SystemCycle cycles = quick ? 300 : 1500;

  tmsim::bench::print_header(
      "farm_throughput",
      "batch-service capacity: jobs/sec vs worker pool and queue depth");
  std::printf("%zu jobs x %llu cycles each, 4x4 mesh, mixed priorities\n\n",
              num_jobs, static_cast<unsigned long long>(cycles));
  std::printf("%8s %9s %10s %9s %10s %10s %9s\n", "workers", "queue",
              "jobs/sec", "wall(s)", "p50(ms)", "p99(ms)", "rejects");

  std::vector<Point> points;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t qcap : {4u, 64u}) {
      const Point pt = run_point(workers, qcap, num_jobs, cycles);
      std::printf("%8zu %9zu %10.1f %9.3f %10.3f %10.3f %9zu\n", pt.workers,
                  pt.queue_capacity,
                  static_cast<double>(pt.jobs_done) / pt.wall_s, pt.wall_s,
                  pt.p50_s * 1e3, pt.p99_s * 1e3, pt.rejected);
      points.push_back(pt);
    }
  }

  std::vector<tmsim::bench::BenchMetric> metrics;
  for (const Point& pt : points) {
    const std::string tag = "w" + std::to_string(pt.workers) + "_q" +
                            std::to_string(pt.queue_capacity);
    metrics.push_back({"jobs_per_sec_" + tag,
                       static_cast<double>(pt.jobs_done) / pt.wall_s,
                       "jobs/s"});
    metrics.push_back({"p50_latency_" + tag, pt.p50_s, "seconds"});
    metrics.push_back({"p99_latency_" + tag, pt.p99_s, "seconds"});
    metrics.push_back(
        {"rejects_" + tag, static_cast<double>(pt.rejected), "count"});
  }
  tmsim::bench::emit_bench_json(
      "farm_throughput",
      {{"num_jobs", std::to_string(num_jobs)},
       {"cycles_per_job", std::to_string(cycles)},
       {"network", "4x4 mesh"},
       {"quick", quick ? "1" : "0"}},
      metrics);
  return 0;
}
