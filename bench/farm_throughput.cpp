// Farm throughput bench: jobs/second and job-latency quantiles of the
// SimFarm batch service as a function of worker-pool size and admission
// queue depth. The paper's platform simulates one SoC at a time; the
// farm layer (DESIGN.md §11) amortizes one host across many queued
// simulation requests, so the capacity question becomes "how many
// Fig. 1-style sweep points per second does a pool of N workers
// clear?" — which is what this bench measures.
//
// Four sweeps (DESIGN.md §14):
//   1. CPU-bound capacity vs (workers, queue depth). The job count
//      scales with the worker count so every pool runs saturated —
//      a fixed count under-saturates large pools and mismeasures them.
//      Each point also emits its pipeline-stage breakdown (queue-wait /
//      attach / run / publish µs summed across workers) so a scaling
//      regression names the stage that serialized.
//   2. Paced scaling: jobs that sleep a fixed wall interval per slice,
//      so throughput scales with workers iff the farm hot path is
//      concurrent — even on a single-core host, where CPU-bound w4
//      can never beat w1. `paced_scaling_w4_over_w1` is the headline
//      number; ≥ 2.0 is the wall the `scale` test suite enforces.
//   3. Memoization: a duplicate-heavy stream (the sweep-grid use case:
//      many submitters asking for overlapping points) with the
//      spec-fingerprint memo off vs on.
//
// Output: human tables plus BENCH_farm_throughput.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "obs/metrics.h"

namespace {

using tmsim::farm::ChaosAction;
using tmsim::farm::ChaosEvent;
using tmsim::farm::FarmOptions;
using tmsim::farm::JobResult;
using tmsim::farm::JobSpec;
using tmsim::farm::JobStatus;
using tmsim::farm::Priority;
using tmsim::farm::SimFarm;
using tmsim::farm::SubmitOutcome;

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

JobSpec make_job(std::size_t i, tmsim::SystemCycle cycles) {
  JobSpec spec;
  spec.name = "sweep-" + std::to_string(i);
  spec.net.width = 4;
  spec.net.height = 4;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  // A Fig. 1-style point: GT background plus a BE load that scales with
  // the job index, so the pool sees heterogeneous work.
  spec.workload.fig1_gt = true;
  spec.workload.gt_period = 600;
  spec.workload.be_load = 0.02 * static_cast<double>(i % 10);
  spec.priority = static_cast<Priority>(i % 3);
  spec.seed = 0x9001 + i;
  spec.cycles = cycles;
  return spec;
}

struct Point {
  std::size_t workers;
  std::size_t queue_capacity;
  std::size_t num_jobs = 0;
  std::size_t jobs_done = 0;
  std::size_t rejected = 0;
  double wall_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  // Pipeline-stage breakdown, µs summed across workers (farm.stage.*).
  double queue_wait_us = 0.0;
  double attach_us = 0.0;
  double run_us = 0.0;
  double publish_us = 0.0;
};

Point run_point(std::size_t workers, std::size_t queue_capacity,
                std::size_t num_jobs, tmsim::SystemCycle cycles) {
  Point pt{workers, queue_capacity};
  pt.num_jobs = num_jobs;
  tmsim::obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = workers;
  opt.queue_capacity = queue_capacity;
  opt.preempt_quantum = 512;
  opt.metrics = &metrics;
  SimFarm farm(opt);

  std::vector<std::uint64_t> ids;
  ids.reserve(num_jobs);
  pt.wall_s = tmsim::bench::time_run([&] {
    std::size_t waited = 0;
    for (std::size_t i = 0; i < num_jobs; ++i) {
      // Submit-until-accepted: on kQueueFull backpressure, service the
      // queue by waiting for the oldest outstanding result — the
      // structured reject means the submitter, not the farm, decides
      // how to shed or defer load.
      for (;;) {
        const SubmitOutcome out = farm.submit(make_job(i, cycles));
        if (out.accepted) {
          ids.push_back(out.job_id);
          break;
        }
        ++pt.rejected;
        if (waited < ids.size()) {
          farm.wait(ids[waited++]);
        }
      }
    }
    farm.drain();
  });

  std::vector<double> turnaround;
  turnaround.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    const JobResult r = farm.results().get(id).value();
    if (r.status == JobStatus::kDone) {
      ++pt.jobs_done;
      turnaround.push_back(r.turnaround_seconds);
    }
  }
  pt.p50_s = quantile(turnaround, 0.50);
  pt.p99_s = quantile(turnaround, 0.99);
  // Stage instruments are published at end-of-life; shut down, then sum
  // the per-worker rows.
  farm.shutdown();
  for (std::size_t w = 0; w < workers; ++w) {
    const std::string label = "worker=" + std::to_string(w);
    pt.queue_wait_us += static_cast<double>(
        metrics.counter_value("farm.stage.queue_wait_us", label));
    pt.attach_us += static_cast<double>(
        metrics.counter_value("farm.stage.attach_us", label));
    pt.run_us +=
        static_cast<double>(metrics.counter_value("farm.stage.run_us", label));
    pt.publish_us += static_cast<double>(
        metrics.counter_value("farm.stage.publish_us", label));
  }
  return pt;
}

/// Paced run: every slice sleeps a fixed wall interval via the chaos
/// hook (kNone — the job itself is untouched), so the workload is
/// concurrency-bound, not CPU-bound. Returns jobs per wall second.
double run_paced(std::size_t workers, std::size_t num_jobs) {
  FarmOptions opt;
  opt.num_workers = workers;
  opt.queue_capacity = num_jobs;
  opt.preempt_quantum = 256;
  opt.supervisor_interval_ms = 0.0;
  // 8ms per slice so pacing dominates the job's own CPU even on a
  // single-core host (see tests/farm/farm_scaling_test.cpp).
  opt.chaos = [](const ChaosEvent&) {
    std::this_thread::sleep_for(std::chrono::microseconds(8000));
    return ChaosAction::kNone;
  };
  SimFarm farm(opt);
  const double wall = tmsim::bench::time_run([&] {
    for (std::size_t i = 0; i < num_jobs; ++i) {
      JobSpec spec;
      spec.name = "paced-" + std::to_string(i);
      spec.net.width = 2;
      spec.net.height = 2;
      spec.net.topology = tmsim::noc::Topology::kMesh;
      spec.seed = 0xbea7 + i;
      spec.cycles = 2 * opt.preempt_quantum;  // 2 slices = 2 paced sleeps
      spec.workload.be_load = 0.05;
      farm.submit(spec);
    }
    farm.drain();
  });
  farm.shutdown();
  return static_cast<double>(num_jobs) / wall;
}

struct MemoRun {
  double jobs_per_sec = 0.0;
  std::uint64_t hits = 0;
};

/// Duplicate-heavy stream: `num_jobs` submissions cycling over
/// `distinct` unique specs — the sweep-grid overlap case the memo is
/// built for.
MemoRun run_memo(std::size_t memo_capacity, std::size_t num_jobs,
                 std::size_t distinct, tmsim::SystemCycle cycles) {
  tmsim::obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.queue_capacity = num_jobs;
  opt.memo_capacity = memo_capacity;
  opt.metrics = &metrics;
  SimFarm farm(opt);
  MemoRun out;
  const double wall = tmsim::bench::time_run([&] {
    for (std::size_t i = 0; i < num_jobs; ++i) {
      farm.submit(make_job(i % distinct, cycles));
    }
    farm.drain();
  });
  farm.shutdown();
  out.jobs_per_sec = static_cast<double>(num_jobs) / wall;
  out.hits = metrics.counter_value("farm.memo.hits");
  return out;
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  // Saturation fix: the job count scales with the pool so w4 does not
  // idle on a workload sized for w1.
  const std::size_t jobs_per_worker = quick ? 12 : 50;
  const tmsim::SystemCycle cycles = quick ? 300 : 1500;

  tmsim::bench::print_header(
      "farm_throughput",
      "batch-service capacity: jobs/sec vs worker pool and queue depth");
  std::printf(
      "%zu jobs/worker x %llu cycles each, 4x4 mesh, mixed priorities\n\n",
      jobs_per_worker, static_cast<unsigned long long>(cycles));
  std::printf("%8s %9s %6s %10s %9s %10s %10s %9s\n", "workers", "queue",
              "jobs", "jobs/sec", "wall(s)", "p50(ms)", "p99(ms)", "rejects");

  std::vector<Point> points;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t qcap : {4u, 64u}) {
      const Point pt =
          run_point(workers, qcap, jobs_per_worker * workers, cycles);
      std::printf("%8zu %9zu %6zu %10.1f %9.3f %10.3f %10.3f %9zu\n",
                  pt.workers, pt.queue_capacity, pt.num_jobs,
                  static_cast<double>(pt.jobs_done) / pt.wall_s, pt.wall_s,
                  pt.p50_s * 1e3, pt.p99_s * 1e3, pt.rejected);
      points.push_back(pt);
    }
  }

  std::printf("\npipeline-stage breakdown (us summed across workers):\n");
  std::printf("%8s %9s %12s %10s %12s %11s\n", "workers", "queue",
              "queue_wait", "attach", "run", "publish");
  for (const Point& pt : points) {
    std::printf("%8zu %9zu %12.0f %10.0f %12.0f %11.0f\n", pt.workers,
                pt.queue_capacity, pt.queue_wait_us, pt.attach_us, pt.run_us,
                pt.publish_us);
  }

  // Paced scaling: the farm-internal concurrency proof (see header).
  const std::size_t paced_jobs_per_worker = quick ? 16 : 48;
  std::printf("\npaced scaling (8ms slice pacing, %zu jobs/worker):\n",
              paced_jobs_per_worker);
  std::printf("%8s %10s\n", "workers", "jobs/sec");
  std::vector<std::pair<std::size_t, double>> paced;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const double jps = run_paced(workers, paced_jobs_per_worker * workers);
    std::printf("%8zu %10.1f\n", workers, jps);
    paced.emplace_back(workers, jps);
  }
  const double paced_ratio = paced.back().second / paced.front().second;
  std::printf("w4/w1 scaling: %.2fx (ideal 4.0, wall >= 2.0)\n", paced_ratio);

  // Memoization: duplicate-heavy stream, memo off vs on.
  const std::size_t memo_jobs = quick ? 48 : 240;
  const std::size_t memo_distinct = 8;
  const MemoRun memo_off = run_memo(0, memo_jobs, memo_distinct, cycles);
  const MemoRun memo_on = run_memo(64, memo_jobs, memo_distinct, cycles);
  std::printf(
      "\nmemoization (%zu jobs over %zu distinct specs, 2 workers):\n",
      memo_jobs, memo_distinct);
  std::printf("  memo off: %8.1f jobs/sec\n", memo_off.jobs_per_sec);
  std::printf("  memo on:  %8.1f jobs/sec (%llu hits, %.2fx speedup)\n",
              memo_on.jobs_per_sec,
              static_cast<unsigned long long>(memo_on.hits),
              memo_on.jobs_per_sec / memo_off.jobs_per_sec);

  std::vector<tmsim::bench::BenchMetric> metrics;
  for (const Point& pt : points) {
    const std::string tag = "w" + std::to_string(pt.workers) + "_q" +
                            std::to_string(pt.queue_capacity);
    metrics.push_back({"jobs_per_sec_" + tag,
                       static_cast<double>(pt.jobs_done) / pt.wall_s,
                       "jobs/s"});
    metrics.push_back({"p50_latency_" + tag, pt.p50_s, "seconds"});
    metrics.push_back({"p99_latency_" + tag, pt.p99_s, "seconds"});
    metrics.push_back(
        {"rejects_" + tag, static_cast<double>(pt.rejected), "count"});
    metrics.push_back({"stage_queue_wait_us_" + tag, pt.queue_wait_us, "us"});
    metrics.push_back({"stage_attach_us_" + tag, pt.attach_us, "us"});
    metrics.push_back({"stage_run_us_" + tag, pt.run_us, "us"});
    metrics.push_back({"stage_publish_us_" + tag, pt.publish_us, "us"});
  }
  for (const auto& [workers, jps] : paced) {
    metrics.push_back(
        {"paced_jobs_per_sec_w" + std::to_string(workers), jps, "jobs/s"});
  }
  metrics.push_back({"paced_scaling_w4_over_w1", paced_ratio, "ratio"});
  metrics.push_back({"memo_off_jobs_per_sec", memo_off.jobs_per_sec, "jobs/s"});
  metrics.push_back({"memo_on_jobs_per_sec", memo_on.jobs_per_sec, "jobs/s"});
  metrics.push_back({"memo_speedup",
                     memo_on.jobs_per_sec / memo_off.jobs_per_sec, "ratio"});
  metrics.push_back(
      {"memo_hits", static_cast<double>(memo_on.hits), "count"});
  tmsim::bench::emit_bench_json(
      "farm_throughput",
      {{"jobs_per_worker", std::to_string(jobs_per_worker)},
       {"cycles_per_job", std::to_string(cycles)},
       {"network", "4x4 mesh"},
       {"paced_jobs_per_worker", std::to_string(paced_jobs_per_worker)},
       {"memo_jobs", std::to_string(memo_jobs)},
       {"memo_distinct", std::to_string(memo_distinct)},
       {"quick", quick ? "1" : "0"}},
      metrics);
  return 0;
}
