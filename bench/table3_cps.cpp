// Table 3: "Simulated clock cycles per second" for a 6×6 NoC.
//
// Paper (2007, Pentium 4 host / Virtex-II + ARM9 platform):
//   VHDL          10–17 Hz
//   SystemC       215 Hz
//   FPGA average  22 kHz
//   FPGA fastest  61.6 kHz
//   → FPGA / SystemC speedup 80–300×, SystemC / VHDL ≈ 13–21×
//
// Reproduction on this host:
//   - the three software rows are *measured* wall-clock rates of our
//     engines (signal-level rtlsim = the VHDL stand-in, coarse sysc =
//     the SystemC stand-in, plus the sequential method run directly on
//     the host — §7 notes the method works on any sequential processor);
//   - the FPGA rows are *modeled*: the same simulation's counted delta
//     cycles, bus transfers and software operations evaluated at the
//     paper's clock rates (6.6 MHz logic / 86 MHz ARM) — the documented
//     substitution for hardware we do not have.
//
// Absolute numbers shift with the host (a 2026 machine is ~100× a 2007
// Pentium 4); the claims under test are the orderings and the modeled
// FPGA-vs-SystemC-class gap.
#include <cstdio>
#include <memory>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "fpga/arm_host.h"
#include "noc/network.h"
#include "rtlsim/rtl_noc.h"
#include "sysc/sysc_noc.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

namespace {

using namespace tmsim;

double measure_cps(noc::NocSimulation& sim, std::size_t cycles) {
  traffic::TrafficHarness::Options opts;
  opts.seed = 7;
  traffic::TrafficHarness h(sim, opts);
  h.set_be_load(0.10);
  const double secs = bench::time_run([&] { h.run(cycles); });
  return static_cast<double>(cycles) / secs;
}

/// Modeled FPGA rate for a given workload intensity.
double modeled_fpga_cps(double be_load, double analysis_complexity,
                        std::size_t cycles) {
  fpga::FpgaDesign design{fpga::FpgaBuildConfig{}};
  fpga::ArmHost::Workload wl;
  wl.be_load = be_load;
  fpga::ArmHost host(design, wl);
  host.configure_network(6, 6, noc::Topology::kMesh);
  host.run(cycles);
  fpga::TimingModel model;
  model.costs().analysis_complexity = analysis_complexity;
  return model.evaluate(host.counts()).cycles_per_second;
}

}  // namespace

int main() {
  bench::print_header("Table 3", "simulated clock cycles per second (6x6)");
  const std::size_t scale = bench::quick_mode() ? 5 : 1;
  const noc::NetworkConfig net = bench::paper_network(/*queue_depth=*/4);

  double vhdl_cps, sysc_cps, seq_cps, direct_cps;
  {
    rtlsim::RtlNocSimulation sim(net);
    vhdl_cps = measure_cps(sim, 600 / scale);
  }
  {
    sysc::SyscNocSimulation sim(net);
    sysc_cps = measure_cps(sim, 2000 / scale);
  }
  {
    core::SeqNocSimulation sim(net);
    seq_cps = measure_cps(sim, 6000 / scale);
  }
  {
    noc::DirectNocSimulation sim(net);
    direct_cps = measure_cps(sim, 20000 / scale);
  }
  const double fpga_avg =
      modeled_fpga_cps(0.10, /*analysis=*/3.0, 4000 / scale);
  const double fpga_fast =
      modeled_fpga_cps(0.04, /*analysis=*/1.0, 4000 / scale);

  analysis::TablePrinter table({"Block", "paper CPS", "ours CPS", "kind"});
  table.add_row({"VHDL (signal-level, 9-value)", "10-17 Hz",
                 analysis::fmt("%.0f Hz", vhdl_cps), "measured (host)"});
  table.add_row({"SystemC (coarse RT-level)", "215 Hz",
                 analysis::fmt("%.0f Hz", sysc_cps), "measured (host)"});
  table.add_row({"sequential method on host", "-",
                 analysis::fmt("%.0f Hz", seq_cps), "measured (host)"});
  table.add_row({"two-phase struct-state on host", "-",
                 analysis::fmt("%.0f Hz", direct_cps), "measured (host)"});
  table.add_row({"FPGA average", "22 kHz",
                 analysis::fmt("%.1f kHz", fpga_avg / 1e3),
                 "modeled (paper clocks)"});
  table.add_row({"FPGA fastest", "61.6 kHz",
                 analysis::fmt("%.1f kHz", fpga_fast / 1e3),
                 "modeled (paper clocks)"});
  table.print();

  const double max_hz = fpga::TimingModel().max_simulation_hz(36);
  std::printf("\ntheoretical FPGA ceiling for 6x6 (§6): 3.3e6/36 = %.1f kHz "
              "(paper: 91.6 kHz)\n", max_hz / 1e3);
  std::printf("\nclaims:\n");
  std::printf("  granularity ordering VHDL < SystemC < sequential method: "
              "%s\n    (%.0f < %.0f < %.0f Hz)\n",
              (vhdl_cps < sysc_cps && sysc_cps < seq_cps) ? "HOLDS"
                                                          : "VIOLATED",
              vhdl_cps, sysc_cps, seq_cps);
  std::printf("  modeled FPGA / measured SystemC-substitute: %.0fx\n",
              fpga_avg / sysc_cps);
  std::printf("  paper's FPGA/SystemC: 80-300x (22-61.6 kHz vs 215 Hz);\n"
              "  the host ratio differs because the 2026 host is far\n"
              "  faster than a 2007 Pentium 4 while the modeled FPGA rate\n"
              "  is pinned at the paper's 6.6 MHz — the modeled FPGA rows\n"
              "  themselves land on the paper's 22 / 61.6 kHz.\n");

  bench::emit_bench_json(
      "table3_cps",
      {{"network", "6x6, queue depth 4"},
       {"quick", bench::quick_mode() ? "1" : "0"}},
      {{"vhdl_cps", vhdl_cps, "cycles/s"},
       {"systemc_cps", sysc_cps, "cycles/s"},
       {"sequential_cps", seq_cps, "cycles/s"},
       {"direct_cps", direct_cps, "cycles/s"},
       {"fpga_avg_cps", fpga_avg, "cycles/s"},
       {"fpga_fastest_cps", fpga_fast, "cycles/s"},
       {"fpga_ceiling_cps", max_hz, "cycles/s"}});
  return 0;
}
