// Ablation (not in the paper): the §4.2 dynamic HBR schedule against a
// design-specific two-phase oracle.
//
// The case-study router's outputs depend on registered state only, so a
// two-pass static schedule (publish all outputs, then recompute all next
// states) is always correct at exactly 2N delta cycles per system cycle.
// The paper's dynamic schedule instead pays N + (re-evaluations where a
// link actually changed). This bench quantifies the win: at realistic
// loads the dynamic schedule needs far fewer delta cycles — i.e. the HBR
// machinery earns its status bits — and both schedules stay bit-exact.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "traffic/harness.h"

int main() {
  using namespace tmsim;
  bench::print_header("Ablation", "dynamic HBR schedule vs two-phase oracle");

  const noc::NetworkConfig net = bench::paper_network(/*queue_depth=*/4);
  const std::size_t n = net.num_routers();
  const std::size_t cycles = bench::quick_mode() ? 1000 : 4000;

  analysis::TablePrinter table({"load", "dynamic delta/cyc",
                                "oracle delta/cyc", "saved", "dyn host cps",
                                "oracle host cps"});
  std::vector<bench::BenchMetric> metrics;
  for (double load : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    double dpc[2], cps[2];
    for (int mode = 0; mode < 2; ++mode) {
      core::SeqNocSimulation sim(net, mode == 0
                                          ? core::SchedulePolicy::kDynamic
                                          : core::SchedulePolicy::kTwoPhaseOracle);
      traffic::TrafficHarness::Options opts;
      opts.seed = 5;
      traffic::TrafficHarness h(sim, opts);
      if (load > 0) {
        h.set_be_load(load, {0, 1, 2, 3});
      }
      const double secs = bench::time_run([&] { h.run(cycles); });
      dpc[mode] = static_cast<double>(sim.engine().total_delta_cycles()) /
                  static_cast<double>(sim.cycle());
      cps[mode] = static_cast<double>(cycles) / secs;
    }
    table.add_row({analysis::fmt("%.2f", load), analysis::fmt("%.2f", dpc[0]),
                   analysis::fmt("%.2f", dpc[1]),
                   analysis::fmt("%.0f%%", 100 * (1 - dpc[0] / dpc[1])),
                   analysis::fmt("%.0f", cps[0]),
                   analysis::fmt("%.0f", cps[1])});
    const std::string tag = analysis::fmt("load=%.2f", load);
    metrics.push_back({"dynamic.delta_per_cycle." + tag, dpc[0],
                       "delta_cycles/cycle"});
    metrics.push_back({"oracle.delta_per_cycle." + tag, dpc[1],
                       "delta_cycles/cycle"});
  }
  table.print();

  std::printf("\nnotes:\n");
  std::printf("  oracle is pinned at 2N = %zu delta cycles/cycle; the "
              "dynamic\n  schedule pays N = %zu plus only the links that "
              "actually changed,\n  so its FPGA-time advantage equals the "
              "idleness of the traffic.\n", 2 * n, n);
  std::printf("  the oracle is legal ONLY because this router's G(x) reads\n"
              "  registered state alone; the HBR schedule needs no such "
              "proof\n  and works for any partitioning (§4.2) — that is "
              "the paper's point.\n");

  bench::emit_bench_json("ablation_schedules",
                         {{"cycles", std::to_string(cycles)},
                          {"network", "6x6 mesh, queue depth 4"}},
                         metrics);
  return 0;
}
