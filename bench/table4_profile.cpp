// Table 4: "Profile information" — share of wall time per simulation
// step, reported as ranges because it depends on the workload (§6):
//
//   Generate stimuli (ARM)        45–65 %
//   Load stimuli (ARM/FPGA)       10–20 %
//   Simulation (FPGA)              0–2 %
//   Retrieve results (ARM/FPGA)    5–15 %
//   Analyze results (ARM)          5–40 %
//
// Reproduction: the five-phase ArmHost loop is run over a spread of
// workloads (light → heavy traffic, simple → complex analysis); each
// produces one profile column, and the min–max over workloads is the
// range to compare against the paper's.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "fpga/arm_host.h"
#include "obs/metrics.h"

int main() {
  using namespace tmsim;
  bench::print_header("Table 4", "time profile of the simulation steps");
  const std::size_t cycles = bench::quick_mode() ? 1000 : 4000;

  struct Case {
    const char* name;
    double be_load;
    double analysis;
  };
  const std::vector<Case> cases = {
      {"light traffic, simple analysis", 0.04, 1.0},
      {"typical traffic, simple analysis", 0.10, 1.0},
      {"typical traffic, complex analysis", 0.10, 5.0},
      {"heavy traffic, moderate analysis", 0.16, 2.0},
  };

  struct Shares {
    double gen, load, sim, ret, ana;
  };
  std::vector<Shares> results;
  for (const Case& c : cases) {
    fpga::FpgaDesign design{fpga::FpgaBuildConfig{}};
    fpga::ArmHost::Workload wl;
    wl.be_load = c.be_load;
    fpga::ArmHost host(design, wl);
    host.configure_network(6, 6, noc::Topology::kMesh);
    host.run(cycles);
    fpga::TimingModel model;
    model.costs().analysis_complexity = c.analysis;
    // The shares come from the metrics registry (DESIGN.md §10), not
    // from a private PhaseTimes evaluation — the bench reads exactly
    // what any other observability consumer would.
    obs::MetricsRegistry reg;
    host.export_metrics(reg, model);
    results.push_back({reg.gauge_value("host.share.generate"),
                       reg.gauge_value("host.share.load"),
                       reg.gauge_value("host.share.simulate"),
                       reg.gauge_value("host.share.retrieve"),
                       reg.gauge_value("host.share.analyze")});
  }

  analysis::TablePrinter table({"Simulation step", "paper", "ours (range)",
                                "per-workload"});
  auto range = [&](auto get, const char* paper, const char* name) {
    double lo = 1e9, hi = -1e9;
    std::string cols;
    for (const Shares& s : results) {
      const double v = get(s) * 100;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      cols += analysis::fmt("%.0f%% ", v);
    }
    table.add_row({name, paper,
                   analysis::fmt("%.0f", lo) + "-" +
                       analysis::fmt("%.0f %%", hi),
                   cols});
  };
  range([](const Shares& s) { return s.gen; }, "45-65 %",
        "Generate stimuli (ARM)");
  range([](const Shares& s) { return s.load; }, "10-20 %",
        "Load stimuli (ARM / FPGA)");
  range([](const Shares& s) { return s.sim; }, "0-2 %", "Simulation (FPGA)");
  range([](const Shares& s) { return s.ret; }, "5-15 %",
        "Retrieve results (ARM / FPGA)");
  range([](const Shares& s) { return s.ana; }, "5-40 %",
        "Analyze results (ARM)");
  table.print();

  std::printf("\nclaims:\n");
  std::printf("  the FPGA simulation itself is almost free (it overlaps "
              "with the\n  ARM software through the cyclic buffers, Fig. 8); "
              "generation\n  dominates; complex analysis pushes the analyze "
              "share toward 40%%.\n");
  std::printf("  \"Those two functions [generation, analysis] could be "
              "optimized in\n  software and there is no reason to increase "
              "the FPGAs delta cycle\n  frequency.\" (§6)\n");

  std::vector<bench::BenchMetric> metrics;
  auto minmax = [&](auto get, const char* name) {
    double lo = 1e9, hi = -1e9;
    for (const Shares& s : results) {
      lo = std::min(lo, get(s));
      hi = std::max(hi, get(s));
    }
    metrics.push_back({std::string("share.") + name + ".min", lo, "ratio"});
    metrics.push_back({std::string("share.") + name + ".max", hi, "ratio"});
  };
  minmax([](const Shares& s) { return s.gen; }, "generate");
  minmax([](const Shares& s) { return s.load; }, "load");
  minmax([](const Shares& s) { return s.sim; }, "simulate");
  minmax([](const Shares& s) { return s.ret; }, "retrieve");
  minmax([](const Shares& s) { return s.ana; }, "analyze");
  bench::emit_bench_json(
      "table4_profile",
      {{"cycles", std::to_string(cycles)},
       {"network", "6x6 mesh"},
       {"workloads", std::to_string(cases.size())}},
      metrics);
  return 0;
}
