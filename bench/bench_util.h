// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the paper's reported numbers, (b) ours, and (c)
// the derived comparison the paper's claim rests on — so the output of
// `for b in build/bench/*; do $b; done` is the whole evaluation section.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "noc/config.h"

namespace tmsim::bench {

/// The paper's case-study network: a 6×6 grid (Fig. 1 used 2-flit
/// queues). Traffic-carrying benches run the MESH topology: XY routing
/// with packet-fixed VCs is wormhole-deadlock-free on a mesh but not on
/// a torus (wrap-around links close channel-dependency cycles; the
/// Kavaldjiev scheme keeps a packet's VC fixed end-to-end, so dateline VC
/// switching is unavailable). DESIGN.md §7 and the torus-deadlock
/// regression test document this; the paper does not specify which
/// topology produced Fig. 1.
inline noc::NetworkConfig paper_network(std::size_t queue_depth = 2) {
  noc::NetworkConfig net;
  net.width = 6;
  net.height = 6;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = queue_depth;
  return net;
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_run(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Benches honour TMSIM_QUICK=1 (shorter runs for smoke testing).
inline bool quick_mode() {
  const char* v = std::getenv("TMSIM_QUICK");
  return v != nullptr && v[0] == '1';
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

}  // namespace tmsim::bench
