// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the paper's reported numbers, (b) ours, and (c)
// the derived comparison the paper's claim rests on — so the output of
// `for b in build/bench/*; do $b; done` is the whole evaluation section.
// Besides the human-readable tables, every bench also drops a
// machine-readable BENCH_<name>.json record (emit_bench_json) so CI can
// track the reproduced numbers over time.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "noc/config.h"
#include "obs/metrics.h"

namespace tmsim::bench {

/// The paper's case-study network: a 6×6 grid (Fig. 1 used 2-flit
/// queues). Traffic-carrying benches run the MESH topology: XY routing
/// with packet-fixed VCs is wormhole-deadlock-free on a mesh but not on
/// a torus (wrap-around links close channel-dependency cycles; the
/// Kavaldjiev scheme keeps a packet's VC fixed end-to-end, so dateline VC
/// switching is unavailable). DESIGN.md §7 and the torus-deadlock
/// regression test document this; the paper does not specify which
/// topology produced Fig. 1.
inline noc::NetworkConfig paper_network(std::size_t queue_depth = 2) {
  noc::NetworkConfig net;
  net.width = 6;
  net.height = 6;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = queue_depth;
  return net;
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_run(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Benches honour TMSIM_QUICK=1 (shorter runs for smoke testing).
inline bool quick_mode() {
  const char* v = std::getenv("TMSIM_QUICK");
  return v != nullptr && v[0] == '1';
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// One measured number in a BENCH_<name>.json record.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;  // "seconds", "cycles/s", "ratio", "count", ...
};

/// Commit the numbers were measured at: TMSIM_GIT_SHA if CI exported it,
/// else `git rev-parse`, else "unknown".
inline std::string git_sha() {
  if (const char* env = std::getenv("TMSIM_GIT_SHA")) {
    return env;
  }
#if !defined(_WIN32)
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, p);
    const int rc = ::pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (rc == 0 && !sha.empty()) {
      return sha;
    }
  }
#endif
  return "unknown";
}

/// Writes BENCH_<name>.json in the working directory: {bench, git_sha,
/// config{...}, metrics[{name, value, unit}]}. CI greps these instead of
/// parsing the human tables.
inline void emit_bench_json(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::vector<BenchMetric>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"" << obs::json_escape(name) << "\",\n";
  os << "  \"git_sha\": \"" << obs::json_escape(git_sha()) << "\",\n";
  os << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config) {
    os << (first ? "\n" : ",\n") << "    \"" << obs::json_escape(k)
       << "\": \"" << obs::json_escape(v) << "\"";
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"metrics\": [";
  first = true;
  char num[40];
  for (const BenchMetric& m : metrics) {
    std::snprintf(num, sizeof num, "%.17g", m.value);
    os << (first ? "\n" : ",\n") << "    {\"name\": \""
       << obs::json_escape(m.name) << "\", \"value\": " << num
       << ", \"unit\": \"" << obs::json_escape(m.unit) << "\"}";
    first = false;
  }
  os << (first ? "]\n}\n" : "\n  ]\n}\n");
  std::printf("[bench] wrote %s (%zu metrics)\n", path.c_str(),
              metrics.size());
}

}  // namespace tmsim::bench
