// Network load generator for tmsim-farmd (DESIGN.md §16): real separate
// client *processes* — not threads — feed one daemon over TCP, the
// deployment shape the wire protocol exists for. The parent forks the
// clients first (while still single-threaded, so fork is safe), then
// starts an in-process FarmdServer on an ephemeral port and hands the
// port to each child over a pipe. Each child runs a FarmClient:
// subscribe, pipeline every submit (submit_async), then stream results
// on a consumer thread, timestamping submit→result end-to-end latency
// per job. Children report their latency samples back over a pipe; the
// parent aggregates, cross-checks the daemon's net.* ledger (accepted +
// spilled == jobs, zero rejects, zero outbox drops), and emits
// BENCH_farm_netgen.json with sustained submit/result throughput and
// e2e latency quantiles.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "farmd/server.h"
#include "net/client.h"
#include "obs/metrics.h"

namespace {

using tmsim::farm::JobSpec;
using tmsim::farm::Priority;

constexpr std::size_t kDistinct = 64;

JobSpec tiny_job(std::size_t distinct_index) {
  JobSpec spec;
  spec.name = "netgen-" + std::to_string(distinct_index);
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  spec.workload.be_load = 0.02 * static_cast<double>(distinct_index % 8);
  spec.priority = static_cast<Priority>(distinct_index % 3);
  spec.seed = 0x4e47 + distinct_index;
  spec.cycles = 60;
  return spec;
}

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

/// Full-buffer pipe I/O (pipes deliver short reads/writes freely).
bool write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Child → parent report header, followed by `jobs` e2e latency doubles.
/// Sized so the whole blob fits a default 64 KiB pipe buffer — the
/// parent may read the children sequentially without deadlock.
struct ChildReport {
  std::uint64_t jobs = 0;
  std::uint64_t spilled = 0;
  std::uint64_t duplicates = 0;
  double submit_wall = 0.0;
  double total_wall = 0.0;
  std::int32_t failed = 0;
};

/// One client process: pipeline all submits, stream every result on a
/// consumer thread, report per-job e2e latency. Never returns.
[[noreturn]] void child_main(std::size_t child_index, std::size_t jobs,
                             int port_fd, int report_fd) {
  using Clock = std::chrono::steady_clock;
  ChildReport rep;
  std::vector<double> e2e;
  try {
    std::uint16_t port = 0;
    if (!read_all(port_fd, &port, sizeof port)) {
      throw std::runtime_error("netgen child: no port from parent");
    }
    ::close(port_fd);

    tmsim::net::FarmClient client(
        port, "netgen-" + std::to_string(child_index));
    client.subscribe();

    // Consumer thread: timestamp every streamed result on arrival.
    std::mutex mu;
    std::map<std::uint64_t, Clock::time_point> t_recv;
    std::atomic<std::uint64_t> received{0};
    std::atomic<bool> submits_done{false};
    std::uint64_t dup = 0;
    std::thread consumer([&] {
      while (true) {
        const auto res = client.next_result(std::chrono::milliseconds(250));
        if (res) {
          std::lock_guard<std::mutex> lock(mu);
          if (t_recv.emplace(res->result.job_id, Clock::now()).second) {
            received.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++dup;  // at-least-once redelivery; harmless, counted
          }
        } else if (submits_done.load(std::memory_order_acquire) &&
                   received.load(std::memory_order_acquire) >= rep.jobs) {
          return;
        }
      }
    });

    const auto t0 = Clock::now();
    std::vector<std::pair<std::uint64_t, Clock::time_point>> reqs;
    reqs.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
      const JobSpec spec =
          tiny_job((child_index * 7919 + i) % kDistinct);
      reqs.emplace_back(client.submit_async(spec), Clock::now());
    }
    std::map<std::uint64_t, Clock::time_point> t_submit;
    for (const auto& [req_id, t] : reqs) {
      const auto reply = client.wait_submit_reply(req_id);
      if (!reply.accepted) {
        throw std::runtime_error("netgen child: submit rejected: " +
                                 reply.detail);
      }
      rep.spilled += reply.spilled ? 1 : 0;
      t_submit.emplace(reply.remote_id, t);
    }
    rep.jobs = t_submit.size();
    rep.submit_wall = std::chrono::duration<double>(Clock::now() - t0).count();
    submits_done.store(true, std::memory_order_release);

    consumer.join();
    rep.total_wall = std::chrono::duration<double>(Clock::now() - t0).count();
    rep.duplicates = dup;

    e2e.reserve(rep.jobs);
    for (const auto& [remote_id, t_sub] : t_submit) {
      const auto it = t_recv.find(remote_id);
      if (it == t_recv.end()) {
        throw std::runtime_error("netgen child: job never streamed back");
      }
      e2e.push_back(std::chrono::duration<double>(it->second - t_sub).count());
    }
    client.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[netgen child %zu] %s\n", child_index, e.what());
    rep.failed = 1;
    rep.jobs = 0;
    e2e.clear();
  }
  write_all(report_fd, &rep, sizeof rep);
  if (!e2e.empty()) {
    write_all(report_fd, e2e.data(), e2e.size() * sizeof(double));
  }
  ::close(report_fd);
  ::_exit(rep.failed ? 1 : 0);
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  const std::size_t kClients = quick ? 2 : 3;
  const std::size_t jobs_per_client = quick ? 300 : 2000;
  const std::size_t total_jobs = kClients * jobs_per_client;

  tmsim::bench::print_header(
      "farm_netgen",
      "multi-process ingest: client processes vs one tmsim-farmd socket");
  std::printf("%zu client processes x %zu jobs, memo on, 2 workers\n\n",
              kClients, jobs_per_client);

  const std::string spill_dir = "farmd_netgen_spill";
  std::filesystem::remove_all(spill_dir);

  // Fork every client before the server exists: the parent is still
  // single-threaded here, so fork() cannot duplicate a held lock.
  std::fflush(nullptr);
  struct Child {
    pid_t pid = -1;
    int port_wr = -1;   // parent → child: the daemon's port
    int report_rd = -1; // child → parent: ChildReport + latencies
  };
  std::vector<Child> children(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    int port_pipe[2];
    int report_pipe[2];
    if (::pipe(port_pipe) != 0 || ::pipe(report_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(port_pipe[1]);
      ::close(report_pipe[0]);
      for (std::size_t prev = 0; prev < c; ++prev) {
        ::close(children[prev].port_wr);
        ::close(children[prev].report_rd);
      }
      child_main(c, jobs_per_client, port_pipe[0], report_pipe[1]);
    }
    ::close(port_pipe[0]);
    ::close(report_pipe[1]);
    children[c] = {pid, port_pipe[1], report_pipe[0]};
  }

  tmsim::obs::MetricsRegistry metrics;
  tmsim::farmd::FarmdOptions opt;
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = 256;  // small enough that bursts spill
  opt.farm.memo_capacity = 2 * kDistinct;
  opt.farm.completion_feed_depth = 4096;
  opt.farm.metrics = &metrics;
  opt.spill_dir = spill_dir;
  opt.outbox_capacity = total_jobs + 64;

  std::vector<ChildReport> reports(kClients);
  std::vector<double> e2e;
  e2e.reserve(total_jobs);
  {
    tmsim::farmd::FarmdServer server(std::move(opt));
    const std::uint16_t port = server.port();
    for (Child& child : children) {
      write_all(child.port_wr, &port, sizeof port);
      ::close(child.port_wr);
    }
    for (std::size_t c = 0; c < kClients; ++c) {
      ChildReport& rep = reports[c];
      if (!read_all(children[c].report_rd, &rep, sizeof rep)) {
        std::fprintf(stderr, "child %zu: report pipe broke\n", c);
        rep.failed = 1;
      }
      std::vector<double> lat(rep.jobs);
      if (rep.jobs > 0 &&
          !read_all(children[c].report_rd, lat.data(),
                    lat.size() * sizeof(double))) {
        std::fprintf(stderr, "child %zu: latency blob truncated\n", c);
        rep.failed = 1;
      }
      ::close(children[c].report_rd);
      e2e.insert(e2e.end(), lat.begin(), lat.end());
    }
    for (const Child& child : children) {
      int status = 0;
      ::waitpid(child.pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "a netgen child failed (status %d)\n", status);
      }
    }
    server.shutdown();
  }
  std::filesystem::remove_all(spill_dir);

  std::uint64_t jobs_ok = 0;
  std::uint64_t spilled_client = 0;
  std::uint64_t duplicates = 0;
  double max_submit_wall = 0.0;
  double max_total_wall = 0.0;
  bool any_failed = false;
  for (const ChildReport& rep : reports) {
    jobs_ok += rep.jobs;
    spilled_client += rep.spilled;
    duplicates += rep.duplicates;
    max_submit_wall = std::max(max_submit_wall, rep.submit_wall);
    max_total_wall = std::max(max_total_wall, rep.total_wall);
    any_failed = any_failed || rep.failed != 0;
  }

  // The daemon's own ledger must agree with the clients' books.
  const auto accepted = metrics.counter_value("net.submits.accepted");
  const auto spilled = metrics.counter_value("net.submits.spilled");
  const auto rejected = metrics.counter_value("net.submits.rejected");
  const auto streamed = metrics.counter_value("net.results.streamed");
  const auto dropped = metrics.counter_value("net.outbox.dropped");
  const bool ledger_ok = !any_failed && jobs_ok == total_jobs &&
                         accepted + spilled == total_jobs && rejected == 0 &&
                         dropped == 0 && streamed >= total_jobs;

  const double submits_per_sec =
      max_submit_wall > 0.0 ? static_cast<double>(jobs_ok) / max_submit_wall
                            : 0.0;
  const double results_per_sec =
      max_total_wall > 0.0 ? static_cast<double>(jobs_ok) / max_total_wall
                           : 0.0;
  const double p50 = quantile(e2e, 0.50);
  const double p99 = quantile(e2e, 0.99);

  std::printf("submitted:   %llu jobs across %zu processes in %.3fs "
              "(%.0f submits/sec over the wire)\n",
              static_cast<unsigned long long>(jobs_ok), kClients,
              max_submit_wall, submits_per_sec);
  std::printf("streamed:    %llu results in %.3fs (%.0f results/sec e2e)\n",
              static_cast<unsigned long long>(streamed), max_total_wall,
              results_per_sec);
  std::printf("e2e latency: p50 %.1fms  p99 %.1fms\n", p50 * 1e3, p99 * 1e3);
  std::printf("daemon:      accepted %llu + spilled %llu, rejected %llu, "
              "outbox drops %llu, dup redeliveries %llu\n",
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(spilled),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(duplicates));
  std::printf("ledger:      %s\n", ledger_ok ? "consistent" : "MISMATCH");

  tmsim::bench::emit_bench_json(
      "farm_netgen",
      {{"clients", std::to_string(kClients)},
       {"jobs_per_client", std::to_string(jobs_per_client)},
       {"distinct_specs", std::to_string(kDistinct)},
       {"queue_capacity", "256"},
       {"workers", "2"},
       {"quick", quick ? "1" : "0"}},
      {{"submits_per_sec", submits_per_sec, "jobs/s"},
       {"results_per_sec", results_per_sec, "jobs/s"},
       {"p50_e2e", p50, "seconds"},
       {"p99_e2e", p99, "seconds"},
       {"jobs", static_cast<double>(jobs_ok), "count"},
       {"clients", static_cast<double>(kClients), "count"},
       {"spilled", static_cast<double>(spilled), "count"},
       {"rejects", static_cast<double>(rejected), "count"},
       {"outbox_dropped", static_cast<double>(dropped), "count"},
       {"ledger_ok", ledger_ok ? 1.0 : 0.0, "bool"}});
  return ledger_ok ? 0 : 1;
}
