// Farm load generator: the scaling-wall stress the sharded hot path was
// built for (DESIGN.md §14). Four submitter threads blast a
// duplicate-heavy stream of tiny specs at a farm whose admission queue
// is provisioned for 50k fresh jobs, so the backlog genuinely reaches
// tens of thousands of queued specs — the regime where the old
// single-mutex queue and global farm lock collapsed into a convoy.
//
// The stream cycles over a small set of distinct specs (a sweep grid
// being refined by many clients at once), so with the spec-fingerprint
// memo enabled the farm simulates each distinct point once and serves
// the rest from cache — the drain phase then measures the pure
// scheduling hot path: pop → memo-serve → publish.
//
// Output: human summary plus BENCH_farm_loadgen.json with sustained
// jobs/sec, submit-side throughput, peak queue depth (from the
// backpressure context every SubmitOutcome carries), turnaround
// quantiles, and memo accounting.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "obs/metrics.h"

namespace {

using tmsim::farm::FarmOptions;
using tmsim::farm::JobResult;
using tmsim::farm::JobSpec;
using tmsim::farm::JobStatus;
using tmsim::farm::Priority;
using tmsim::farm::SimFarm;
using tmsim::farm::SubmitOutcome;

JobSpec tiny_job(std::size_t distinct_index) {
  JobSpec spec;
  spec.name = "load-" + std::to_string(distinct_index);
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  spec.workload.be_load = 0.02 * static_cast<double>(distinct_index % 8);
  spec.priority = static_cast<Priority>(distinct_index % 3);
  spec.seed = 0x10ad + distinct_index;
  spec.cycles = 100;
  return spec;
}

double quantile(std::vector<double> v, double q) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kDistinct = 128;
  const std::size_t num_jobs = quick ? 10'000 : 40'000;

  tmsim::bench::print_header(
      "farm_loadgen",
      "sustained overload: 4 submitter threads vs a 50k-deep admission "
      "queue");
  std::printf("%zu jobs over %zu distinct specs, memo on, 4 workers\n\n",
              num_jobs, kDistinct);

  tmsim::obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 4;
  opt.queue_capacity = 50'000;
  opt.memo_capacity = 2 * kDistinct;
  opt.metrics = &metrics;
  SimFarm farm(opt);

  std::atomic<std::size_t> peak_depth{0};
  std::atomic<std::size_t> rejects{0};
  std::vector<std::vector<std::uint64_t>> ids(kSubmitters);
  double submit_wall = 0.0;
  const double total_wall = tmsim::bench::time_run([&] {
    submit_wall = tmsim::bench::time_run([&] {
      std::vector<std::thread> submitters;
      for (std::size_t t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
          ids[t].reserve(num_jobs / kSubmitters);
          for (std::size_t i = t; i < num_jobs; i += kSubmitters) {
            for (;;) {
              const SubmitOutcome out = farm.submit(tiny_job(i % kDistinct));
              if (out.accepted) {
                ids[t].push_back(out.job_id);
                // The outcome's backpressure context doubles as a free
                // depth probe — no extra lock on the hot path.
                std::size_t seen = peak_depth.load(std::memory_order_relaxed);
                while (out.queue_depth > seen &&
                       !peak_depth.compare_exchange_weak(
                           seen, out.queue_depth, std::memory_order_relaxed)) {
                }
                break;
              }
              rejects.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
            }
          }
        });
      }
      for (auto& t : submitters) {
        t.join();
      }
    });
    farm.drain();
  });

  std::vector<double> turnaround;
  turnaround.reserve(num_jobs);
  std::size_t done = 0;
  for (const auto& mine : ids) {
    for (const std::uint64_t id : mine) {
      const JobResult r = farm.results().get(id).value();
      if (r.status == JobStatus::kDone) {
        ++done;
        turnaround.push_back(r.turnaround_seconds);
      }
    }
  }
  farm.shutdown();

  const double jobs_per_sec = static_cast<double>(done) / total_wall;
  const double submit_per_sec = static_cast<double>(num_jobs) / submit_wall;
  const double p50 = quantile(turnaround, 0.50);
  const double p99 = quantile(turnaround, 0.99);
  const auto memo_hits = metrics.counter_value("farm.memo.hits");

  std::printf("submitted:        %zu jobs in %.3fs (%.0f submits/sec)\n",
              num_jobs, submit_wall, submit_per_sec);
  std::printf("completed:        %zu jobs in %.3fs (%.0f jobs/sec)\n", done,
              total_wall, jobs_per_sec);
  std::printf("peak queue depth: %zu (capacity %zu)\n", peak_depth.load(),
              opt.queue_capacity);
  std::printf("turnaround:       p50 %.1fms  p99 %.1fms\n", p50 * 1e3,
              p99 * 1e3);
  std::printf("memo:             %llu hits / %zu jobs, %zu rejects\n",
              static_cast<unsigned long long>(memo_hits), num_jobs,
              rejects.load());

  tmsim::bench::emit_bench_json(
      "farm_loadgen",
      {{"num_jobs", std::to_string(num_jobs)},
       {"distinct_specs", std::to_string(kDistinct)},
       {"submitters", std::to_string(kSubmitters)},
       {"queue_capacity", std::to_string(opt.queue_capacity)},
       {"memo_capacity", std::to_string(opt.memo_capacity)},
       {"quick", quick ? "1" : "0"}},
      {{"jobs_per_sec", jobs_per_sec, "jobs/s"},
       {"submits_per_sec", submit_per_sec, "jobs/s"},
       {"peak_queue_depth", static_cast<double>(peak_depth.load()), "jobs"},
       {"p50_turnaround", p50, "seconds"},
       {"p99_turnaround", p99, "seconds"},
       {"memo_hits", static_cast<double>(memo_hits), "count"},
       {"rejects", static_cast<double>(rejects.load()), "count"}});
  return 0;
}
