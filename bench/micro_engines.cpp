// Micro-benchmarks (google-benchmark) of the primitives whose costs drive
// every number in Tables 3/4: one router evaluation, the state-word
// codec, the memory banks, and whole-engine steps across network sizes.
// Besides the console table, the run drops BENCH_micro_engines.json with
// one metric per benchmark (adjusted real time).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "core/sequential_simulator.h"
#include "noc/network.h"
#include "noc/router_logic.h"
#include "noc/router_state.h"
#include "rtlsim/rtl_noc.h"
#include "sysc/sysc_noc.h"
#include "traffic/harness.h"

namespace {

using namespace tmsim;

noc::NetworkConfig net_of(std::size_t w, std::size_t h) {
  noc::NetworkConfig net;
  net.width = w;
  net.height = h;
  return net;
}

void BM_RouterEvaluate(benchmark::State& state) {
  const noc::NetworkConfig net = net_of(6, 6);
  noc::RouterEnv env{&net, noc::Coord{2, 2}};
  noc::RouterState s(net.router);
  s.queues[0].fifo.push(
      noc::Flit{noc::FlitType::kHead, noc::make_head_payload(4, 2, 0, 1)});
  noc::RouterState next(net.router);
  noc::RouterInputs in;
  for (auto _ : state) {
    const noc::Grants g = compute_grants(s, env);
    benchmark::DoNotOptimize(compute_outputs(s, g, env));
    compute_next_state_into(s, g, in, env, next);
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK(BM_RouterEvaluate);

void BM_StateWordSerialize(benchmark::State& state) {
  const noc::RouterConfig cfg;
  const noc::RouterStateCodec codec(cfg);
  noc::RouterState s(cfg);
  BitVector word(codec.state_bits());
  for (auto _ : state) {
    codec.serialize_into(s, word);
    benchmark::DoNotOptimize(word);
  }
  state.SetBytesProcessed(state.iterations() * codec.state_bits() / 8);
}
BENCHMARK(BM_StateWordSerialize);

void BM_StateWordDeserialize(benchmark::State& state) {
  const noc::RouterConfig cfg;
  const noc::RouterStateCodec codec(cfg);
  const BitVector word = codec.reset_word();
  noc::RouterState s(cfg);
  for (auto _ : state) {
    codec.deserialize_into(word, s);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() * codec.state_bits() / 8);
}
BENCHMARK(BM_StateWordDeserialize);

void BM_StateMemoryRoundTrip(benchmark::State& state) {
  core::StateMemory mem(std::vector<std::size_t>(36, 2000));
  const BitVector word(2000);
  for (auto _ : state) {
    for (std::size_t b = 0; b < 36; ++b) {
      benchmark::DoNotOptimize(mem.read_old(b));
      mem.write_new(b, word);
    }
    mem.swap_banks();
  }
  state.SetItemsProcessed(state.iterations() * 36);
}
BENCHMARK(BM_StateMemoryRoundTrip);

/// One idle system cycle per engine and network size: the floor cost.
template <typename Sim>
void BM_EngineIdleStep(benchmark::State& state) {
  Sim sim(net_of(state.range(0), state.range(0)));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_EngineIdleStep, noc::DirectNocSimulation)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_TEMPLATE(BM_EngineIdleStep, core::SeqNocSimulation)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK_TEMPLATE(BM_EngineIdleStep, sysc::SyscNocSimulation)
    ->Arg(2)->Arg(4)->Arg(6);
BENCHMARK_TEMPLATE(BM_EngineIdleStep, rtlsim::RtlNocSimulation)
    ->Arg(2)->Arg(4)->Arg(6);

/// Loaded step (BE traffic at 10 %): the realistic per-cycle cost.
template <typename Sim>
void BM_EngineLoadedStep(benchmark::State& state) {
  Sim sim(net_of(6, 6));
  traffic::TrafficHarness::Options opts;
  opts.seed = 3;
  traffic::TrafficHarness h(sim, opts);
  h.set_be_load(0.10);
  for (auto _ : state) {
    h.run(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_EngineLoadedStep, noc::DirectNocSimulation);
BENCHMARK_TEMPLATE(BM_EngineLoadedStep, core::SeqNocSimulation);
BENCHMARK_TEMPLATE(BM_EngineLoadedStep, sysc::SyscNocSimulation);
BENCHMARK_TEMPLATE(BM_EngineLoadedStep, rtlsim::RtlNocSimulation);

/// Console output as usual, plus one BenchMetric per finished run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      collected.push_back({r.benchmark_name(), r.GetAdjustedRealTime(), "ns"});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<tmsim::bench::BenchMetric> collected;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  tmsim::bench::emit_bench_json("micro_engines", {}, reporter.collected);
  return 0;
}
