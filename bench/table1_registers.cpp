// Table 1: "Required registers per router" — regenerated from the
// implementation's register layout, not quoted.
//
// Paper's numbers (4 VCs, 4-flit queues, 18-bit flits):
//   Input queues                    1440 bits
//   Router control and arbitration   292 bits
//   Links                            200 bits
//   Stimuli interfaces               180 bits
//   Total                           2112 bits
//
// Ours come from StateLayout (every field named and counted), the link
// memory bits adjacent to one router, and the stimuli-interface state the
// FPGA design keeps per router. Where our encoding differs from the
// authors' (their router RTL predates the paper and is not public), the
// table shows the difference instead of hiding it.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "noc/router_state.h"

int main() {
  using namespace tmsim;
  bench::print_header("Table 1", "required registers per router");

  const noc::RouterConfig cfg;  // 4 VCs, 4-deep queues — the FPGA build
  const noc::RouterStateCodec codec(cfg);
  const auto by_cat = codec.layout().bits_by_category();

  const std::size_t queues = by_cat.at("input queues");
  const std::size_t control = by_cat.at("control and arbitration");
  // Link state adjacent to one router: 5 forward groups (21 bits) and 5
  // credit groups (num_vcs bits) it reads, each with one HBR bit (§4.2).
  const std::size_t links =
      noc::kPorts * (noc::kForwardBits + 1) + noc::kPorts * (cfg.num_vcs + 1);
  // Stimuli interface per router: per-VC injection credit counters, the
  // round-robin pick pointer, buffer read/write/fill pointers per VC
  // stimuli buffer and for the output buffer, and the entry staging
  // registers (timestamp + data).
  const std::size_t ptr = 5;  // log2(buffer depth 16) + fill bit
  const std::size_t stimuli = cfg.num_vcs * cfg.credit_bits() + 2 +
                              cfg.num_vcs * 3 * ptr + 3 * ptr +
                              (32 + 24) * 2;
  const std::size_t total = queues + control + links + stimuli;

  analysis::TablePrinter table({"State", "paper [bits]", "ours [bits]"});
  table.add_row({"Input queues", "1440", std::to_string(queues)});
  table.add_row({"Router control and arbitration", "292",
                 std::to_string(control)});
  table.add_row({"Links", "200", std::to_string(links)});
  table.add_row({"Stimuli interfaces", "180", std::to_string(stimuli)});
  table.add_row({"Total", "2112", std::to_string(total)});
  table.print();

  std::printf("\nper-field breakdown of the state word (first 12 fields):\n");
  for (std::size_t i = 0; i < 12 && i < codec.layout().fields().size(); ++i) {
    const auto& f = codec.layout().field(i);
    std::printf("  [%4zu +%2zu] %-28s (%s)\n", f.offset, f.width,
                f.name.c_str(), f.category.c_str());
  }
  std::printf("  ... %zu fields, %zu bits total in the state word\n",
              codec.layout().fields().size(), codec.state_bits());

  std::printf("\nnotes:\n");
  std::printf("  - input queues match exactly: 20 queues x %zu flits x 18 "
              "bits\n", cfg.queue_depth);
  std::printf("  - control differs because the authors' register encoding "
              "is not\n    public; ours spends full/locked flags and "
              "binary-coded pointers\n    (every field is listed by "
              "StateLayout above)\n");
  std::printf("  - claim preserved: total state ~2 kbit/router, so 256 "
              "routers need\n    ~%zu kbit of state memory (double-banked) "
              "— BRAM-bound, not\n    logic-bound\n",
              2 * 256 * total / 1024);

  bench::emit_bench_json(
      "table1_registers",
      {{"num_vcs", std::to_string(cfg.num_vcs)},
       {"queue_depth", std::to_string(cfg.queue_depth)}},
      {{"bits.input_queues", static_cast<double>(queues), "bits"},
       {"bits.control", static_cast<double>(control), "bits"},
       {"bits.links", static_cast<double>(links), "bits"},
       {"bits.stimuli", static_cast<double>(stimuli), "bits"},
       {"bits.total", static_cast<double>(total), "bits"}});
  return 0;
}
