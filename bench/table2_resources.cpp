// Table 2: "FPGA resource usage (256 routers)" on a Virtex-II 8000, plus
// §4's fully-parallel synthesis limit (~24 routers with a 6-bit
// datapath).
//
// Paper's Table 2:
//   Block                     CLB    RAM
//   Router                    1762    61
//   Stimuli interface          540    62
//   Network                   2103    16
//   Random number generator   2021     0
//   Global control             627     0
//   Total                     7053(15%) 139(82%)
//
// BRAM counts are computed from the bit-accurate layouts; slice counts
// come from the calibrated per-primitive coefficients (resource_model.h
// documents which is which).
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "fpga/resource_model.h"

int main() {
  using namespace tmsim;
  bench::print_header("Table 2", "FPGA resource usage (256 routers)");

  const fpga::ResourceModel model;
  const fpga::FpgaBuildConfig build;  // 4 VCs, depth 4, 256 routers
  const fpga::ResourceReport rep = model.simulator_usage(build);

  const char* paper_clb[] = {"1762", "540", "2103", "2021", "627"};
  const char* paper_ram[] = {"61", "62", "16", "0", "0"};

  analysis::TablePrinter table(
      {"Block", "paper CLB", "ours CLB", "paper RAM", "ours RAM"});
  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    table.add_row({rep.rows[i].block, paper_clb[i],
                   std::to_string(rep.rows[i].slices), paper_ram[i],
                   std::to_string(rep.rows[i].brams)});
  }
  table.add_row({"Total", "7053 (15%)", std::to_string(rep.total_slices),
                 "139 (82%)", std::to_string(rep.total_brams)});
  table.print();
  std::printf("\nutilization: %zu/%zu slices (%.0f%%), %zu/%zu BRAMs "
              "(%.0f%%)\n",
              rep.total_slices, model.budget().slices,
              100 * rep.slice_fraction, rep.total_brams,
              model.budget().block_rams, 100 * rep.bram_fraction);
  std::printf("claim preserved: \"the limiting factor of the design is the "
              "number of\nRAM-blocks\" — RAM utilization %.0f%% vs logic "
              "%.0f%%: %s\n",
              100 * rep.bram_fraction, 100 * rep.slice_fraction,
              rep.bram_fraction > 2 * rep.slice_fraction ? "HOLDS"
                                                         : "VIOLATED");

  bench::print_header("§4", "fully parallel instantiation limit");
  noc::RouterConfig rc;
  analysis::TablePrinter par({"datapath", "slices/router", "max routers"});
  for (std::size_t bits : {6u, 16u}) {
    const auto u = model.parallel_router(rc, bits);
    par.add_row({std::to_string(bits) + "-bit", std::to_string(u.slices),
                 std::to_string(model.max_parallel_routers(rc, bits))});
  }
  par.print();
  std::printf("\npaper: \"initial synthesis tests showed a size limitation "
              "of\napproximately 24 routers\" (6-bit datapath, no network "
              "interfaces);\nthe time-multiplexed simulator handles 256 — "
              "a %.0fx capacity gain.\n",
              256.0 / static_cast<double>(model.max_parallel_routers(rc, 6)));

  bench::emit_bench_json(
      "table2_resources", {{"routers", "256"}, {"device", "XC2V8000"}},
      {{"slices.total", static_cast<double>(rep.total_slices), "slices"},
       {"brams.total", static_cast<double>(rep.total_brams), "brams"},
       {"slice_fraction", rep.slice_fraction, "ratio"},
       {"bram_fraction", rep.bram_fraction, "ratio"},
       {"max_parallel_routers_6bit",
        static_cast<double>(model.max_parallel_routers(rc, 6)), "count"}});
  return 0;
}
