// Observability overhead: what does the DESIGN.md §15 stack (tracer +
// flight recorder + introspection) cost on the farm's scheduling hot
// path? Same shape as farm_loadgen — submitter threads blasting tiny
// specs at a 4-worker farm — but with the memo OFF so every job runs a
// real simulation and every dispatch exercises the instrumented path.
//
// Three configurations of the identical workload:
//   off      — no tracer, no recorder (the default farm);
//   sampled  — 1-in-64 head sampling + flight recorder + introspection,
//              the configuration meant for always-on production use;
//   full     — every job traced (sample_every = 1), recorder and
//              introspection armed: the debugging ceiling.
//
// Each mode runs twice and keeps the faster run, damping scheduler
// noise; the headline claim pinned by bench_schema_test is that the
// sampled configuration costs < 5% of loadgen throughput.
//
// Output: human summary plus BENCH_obs_overhead.json with per-mode
// jobs/sec, the derived overhead percentages, and the span/trace
// accounting that proves the lit runs actually traced.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "farm/farm.h"
#include "obs/trace.h"

namespace {

using tmsim::farm::FarmOptions;
using tmsim::farm::JobSpec;
using tmsim::farm::Priority;
using tmsim::farm::SimFarm;
using tmsim::farm::SubmitOutcome;

JobSpec tiny_job(std::size_t distinct_index) {
  JobSpec spec;
  spec.name = "obs-" + std::to_string(distinct_index);
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = tmsim::noc::Topology::kMesh;
  spec.workload.be_load = 0.02 * static_cast<double>(distinct_index % 8);
  spec.priority = static_cast<Priority>(distinct_index % 3);
  spec.seed = 0x0b5e + distinct_index;
  spec.cycles = 100;
  return spec;
}

struct ModeResult {
  double jobs_per_sec = 0.0;
  std::uint64_t traces = 0;
  std::uint64_t spans = 0;
  std::uint64_t spans_dropped = 0;
};

/// One full submit→drain pass; `tracer` may be null (the off mode).
ModeResult run_mode(std::size_t num_jobs, std::size_t num_submitters,
                    tmsim::obs::Tracer* tracer, bool recorder,
                    bool introspect) {
  FarmOptions opt;
  opt.num_workers = 4;
  opt.queue_capacity = num_jobs;
  opt.memo_capacity = 0;  // every job simulates: the honest hot path
  opt.tracer = tracer;
  opt.flight_recorder_depth = recorder ? 256 : 0;
  if (introspect) {
    opt.introspect_interval_ms = 5.0;
    opt.introspect_path = "farm_introspect.json";
  }
  SimFarm farm(opt);

  const double wall = tmsim::bench::time_run([&] {
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < num_submitters; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t i = t; i < num_jobs; i += num_submitters) {
          for (;;) {
            const SubmitOutcome out = farm.submit(tiny_job(i));
            if (out.accepted) {
              break;
            }
            std::this_thread::yield();
          }
        }
      });
    }
    for (auto& th : submitters) {
      th.join();
    }
    farm.drain();
  });
  farm.shutdown();

  ModeResult r;
  r.jobs_per_sec = static_cast<double>(num_jobs) / wall;
  if (tracer != nullptr) {
    r.traces = tracer->traces_started();
    r.spans = tracer->spans_recorded();
    r.spans_dropped = tracer->spans_dropped();
  }
  return r;
}

}  // namespace

int main() {
  const bool quick = tmsim::bench::quick_mode();
  constexpr std::size_t kSubmitters = 4;
  constexpr int kReps = 2;  // best-of-N damps scheduler noise
  const std::size_t num_jobs = quick ? 1'500 : 6'000;

  tmsim::bench::print_header(
      "obs_overhead",
      "tracing + flight recorder + introspection cost on the farm hot "
      "path");
  std::printf("%zu distinct jobs, memo off, 4 workers, best of %d runs\n\n",
              num_jobs, kReps);

  // Mode table: {label, sample_every (0 = no tracer)}.
  struct Mode {
    const char* label;
    std::uint64_t sample_every;
  };
  const Mode modes[] = {{"off", 0}, {"sampled", 64}, {"full", 1}};

  // Warm the allocator / thread pool before anyone is timed.
  run_mode(num_jobs / 4, kSubmitters, nullptr, false, false);

  ModeResult best[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      tmsim::obs::Tracer tracer(
          {.sample_every = modes[m].sample_every,
           .max_spans = std::size_t{32} * num_jobs});
      const bool lit = modes[m].sample_every != 0;
      const ModeResult r = run_mode(num_jobs, kSubmitters,
                                    lit ? &tracer : nullptr, lit, lit);
      if (r.jobs_per_sec > best[m].jobs_per_sec) {
        best[m] = r;
      }
    }
  }

  const double off = best[0].jobs_per_sec;
  const double overhead_sampled_pct =
      100.0 * (off - best[1].jobs_per_sec) / off;
  const double overhead_full_pct = 100.0 * (off - best[2].jobs_per_sec) / off;

  for (int m = 0; m < 3; ++m) {
    std::printf("%-8s %8.0f jobs/sec", modes[m].label, best[m].jobs_per_sec);
    if (m > 0) {
      std::printf("  (%+.2f%% vs off, %llu traces, %llu spans)",
                  100.0 * (off - best[m].jobs_per_sec) / off,
                  static_cast<unsigned long long>(best[m].traces),
                  static_cast<unsigned long long>(best[m].spans));
    }
    std::printf("\n");
  }
  std::printf("\nclaim: 1-in-64 sampling costs < 5%% → measured %+.2f%%\n",
              overhead_sampled_pct);

  tmsim::bench::emit_bench_json(
      "obs_overhead",
      {{"num_jobs", std::to_string(num_jobs)},
       {"submitters", std::to_string(kSubmitters)},
       {"workers", "4"},
       {"memo", "off"},
       {"reps", std::to_string(kReps)},
       {"quick", quick ? "1" : "0"}},
      {{"jobs_per_sec_off", best[0].jobs_per_sec, "jobs/s"},
       {"jobs_per_sec_sampled", best[1].jobs_per_sec, "jobs/s"},
       {"jobs_per_sec_full", best[2].jobs_per_sec, "jobs/s"},
       {"overhead_sampled_pct", overhead_sampled_pct, "percent"},
       {"overhead_full_pct", overhead_full_pct, "percent"},
       {"traces_sampled", static_cast<double>(best[1].traces), "count"},
       {"traces_full", static_cast<double>(best[2].traces), "count"},
       {"spans_full", static_cast<double>(best[2].spans), "count"},
       {"spans_dropped_full", static_cast<double>(best[2].spans_dropped),
        "count"}});
  std::remove("farm_introspect.json");
  return 0;
}
