// §6's delta-cycle overhead claim:
//
//   "The minimum number of delta cycles per system cycle is equal to the
//    number of routers of the NoC. [...] The extra number of delta cycles
//    mainly depends on the load that is offered to the network. The
//    percentage of extra delta cycles is between 1.5 and 2 times the
//    input load."
//
// Reproduction on the Fig. 1 workload (fixed GT population at 10 % per
// stream plus swept BE traffic, 6×6): per point we report the extra delta
// cycles as a percentage of the minimum, and that percentage divided by
// the *total* offered load percentage (GT + BE) — the paper's 1.5–2×
// factor. The constant depends on the traffic's hop count and on how
// many link groups toggle per flit (our link encoding carries separate
// credit wires; the authors' is not public), so both topologies are
// shown: the torus (shorter average paths) sits in the paper's band, the
// mesh slightly above it.
#include <cstdio>
#include <vector>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "core/noc_block.h"
#include "obs/engine_sinks.h"
#include "obs/metrics.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

namespace {

using namespace tmsim;

struct Point {
  double delta_per_cycle;
  double extra_frac;
  double ratio;
};

Point run_point(noc::Topology topo, double be_load, std::size_t cycles) {
  noc::NetworkConfig net = bench::paper_network(/*queue_depth=*/4);
  net.topology = topo;
  core::SeqNocSimulation sim(net);
  // Counting goes through the observability registry (DESIGN.md §10):
  // an EngineMetricsSink observes every committed cycle, and the bench
  // reads the engine.cycles / engine.delta_cycles counters back.
  obs::MetricsRegistry reg;
  obs::EngineMetricsSink sink(reg);
  sim.set_observer(&sink);
  traffic::TrafficHarness::Options opts;
  opts.seed = 99;
  traffic::TrafficHarness h(sim, opts);
  const auto streams = traffic::fig1_gt_streams(net, 1290);
  for (const auto& s : streams) {
    h.add_gt_stream(s);
  }
  if (be_load > 0) {
    h.set_be_load(be_load);
  }
  h.run(cycles);
  const double n = static_cast<double>(net.num_routers());
  const double dpc =
      static_cast<double>(reg.counter_value("engine.delta_cycles")) /
      static_cast<double>(reg.counter_value("engine.cycles"));
  const double gt_load = 129.0 / 1290.0;  // one 129-flit packet per 1290
  const double total_load = gt_load + be_load;
  const double extra = dpc / n - 1.0;
  return Point{dpc, extra, extra / total_load};
}

}  // namespace

int main() {
  bench::print_header("§6", "delta-cycle overhead vs offered load");
  const std::size_t cycles = bench::quick_mode() ? 1500 : 6000;

  std::printf("workload: Fig. 1 GT population (10%% per node) + swept BE;\n"
              "ratio = extra-delta-%% / total-offered-load-%%; paper: "
              "1.5-2\n\n");
  analysis::TablePrinter table({"BE load", "total load", "torus delta/cyc",
                                "torus ratio", "mesh delta/cyc",
                                "mesh ratio"});
  std::size_t in_band = 0, points = 0;
  bool min_holds = true;
  std::vector<bench::BenchMetric> metrics;
  for (double be : {0.0, 0.04, 0.08, 0.12, 0.14}) {
    const Point t = run_point(noc::Topology::kTorus, be, cycles);
    const Point m = run_point(noc::Topology::kMesh, be, cycles);
    const std::string tag = analysis::fmt("be=%.2f", be);
    metrics.push_back({"torus.delta_per_cycle." + tag, t.delta_per_cycle,
                       "delta_cycles/cycle"});
    metrics.push_back({"torus.ratio." + tag, t.ratio, "ratio"});
    metrics.push_back({"mesh.delta_per_cycle." + tag, m.delta_per_cycle,
                       "delta_cycles/cycle"});
    metrics.push_back({"mesh.ratio." + tag, m.ratio, "ratio"});
    min_holds = min_holds && t.delta_per_cycle >= 36.0 - 1e-9 &&
                m.delta_per_cycle >= 36.0 - 1e-9;
    ++points;
    if (t.ratio >= 1.25 && t.ratio <= 2.5) {
      ++in_band;
    }
    table.add_row({analysis::fmt("%.2f", be),
                   analysis::fmt("%.2f", 0.1 + be),
                   analysis::fmt("%.2f", t.delta_per_cycle),
                   analysis::fmt("%.2f", t.ratio),
                   analysis::fmt("%.2f", m.delta_per_cycle),
                   analysis::fmt("%.2f", m.ratio)});
  }
  table.print();

  std::printf("\nclaims:\n");
  std::printf("  minimum delta cycles == number of routers (36): %s\n",
              min_holds ? "HOLDS" : "VIOLATED");
  std::printf("  torus ratio inside the paper's (slightly widened) "
              "1.25-2.5 band:\n  %zu/%zu points — the overhead tracks "
              "offered load linearly, as §6 says\n",
              in_band, points);

  metrics.push_back({"torus.points_in_band", static_cast<double>(in_band),
                     "count"});
  metrics.push_back({"points", static_cast<double>(points), "count"});
  metrics.push_back({"min_delta_equals_routers", min_holds ? 1.0 : 0.0,
                     "bool"});
  bench::emit_bench_json("delta_overhead",
                         {{"cycles", std::to_string(cycles)},
                          {"network", "6x6"},
                          {"gt_load", "0.10"}},
                         metrics);
  return min_holds ? 0 : 1;
}
