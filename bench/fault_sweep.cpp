// Fault-rate sweep: how much bus corruption the hardened ARM host
// absorbs before a run stops being recoverable, and what the recovery
// machinery costs (DESIGN.md, "Robustness").
//
// For each per-access fault rate, the same workload runs through a
// FaultyBus and is compared against the fault-free baseline:
//   - "identical" — final statistics bit-identical to the clean run,
//   - injected / recovered — fault-layer vs host ledgers,
//   - verify share — hardening bus overhead on the paper's platform,
//   - outcome — completed, diverged, or graceful abort (never a hang).
//
// The bit-identical-or-abort guarantee is scoped to the 1e-3 envelope
// (ISSUE acceptance bar): the 2-bit checksums detect every single-bit
// fault, but at rates 10-100x beyond the envelope colluding multi-bit
// faults can forge a valid word, so the tail rows chart where the
// guards run out — divergence there is detected by this bench, not by
// the host.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fpga/arm_host.h"
#include "fpga/faulty_bus.h"

namespace {

struct SweepResult {
  bool aborted = false;
  std::string reason;
  std::uint64_t packets = 0;
  double lat_sum = 0;
  double access_sum = 0;
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t hw_rejected = 0;
  double verify_share = 0;
  double cps = 0;
};

SweepResult run_one(double rate, std::uint64_t seed) {
  using namespace tmsim;
  fpga::FpgaDesign design{fpga::FpgaBuildConfig{}};
  fpga::FaultyBus bus(design, fpga::FaultRates::uniform(rate), seed);
  fpga::ArmHost::Workload wl;
  wl.be_load = 0.10;
  fpga::ArmHost host(bus, design.build(), wl);
  SweepResult r;
  try {
    host.configure_network(6, 6, noc::Topology::kMesh);
    host.run(4000);
  } catch (const Error& e) {
    // Configuration that never converges (or, at extreme rates, a design
    // rejecting desynchronized traffic) surfaces as a thrown Error.
    r.aborted = true;
    r.reason = e.what();
  }
  if (host.aborted()) {
    r.aborted = true;
    r.reason = host.fault_report().abort_reason;
  }
  r.packets = host.packets_delivered();
  r.lat_sum = host.latency(traffic::PacketClass::kBestEffort).sum();
  r.access_sum = host.access_delay().sum();
  r.injected = bus.injected().total();
  r.recovered = host.fault_report().total_recovered();
  r.hw_rejected = host.fault_report().hw_rejected_words;
  const fpga::TimingModel model;
  const fpga::PhaseTimes t = model.evaluate(host.counts());
  r.verify_share = t.share_verify();
  r.cps = t.cycles_per_second;
  return r;
}

}  // namespace

int main() {
  const double rates[] = {0.0,  1e-5, 1e-4, 3e-4, 1e-3,
                          3e-3, 1e-2, 3e-2, 1e-1};
  std::printf("fault sweep: 6x6 mesh, BE load 0.10, 4000 cycles/run\n");
  std::printf("%9s %9s %10s %9s %7s %8s %10s  %s\n", "rate", "injected",
              "recovered", "rejected", "verify", "kcps", "identical",
              "outcome");
  const SweepResult clean = run_one(0.0, 1);
  bool envelope_holds = true;
  std::vector<tmsim::bench::BenchMetric> metrics;
  for (const double rate : rates) {
    const SweepResult r = run_one(rate, 12345);
    const bool identical = !r.aborted && r.packets == clean.packets &&
                           r.lat_sum == clean.lat_sum &&
                           r.access_sum == clean.access_sum;
    char tag[32];
    std::snprintf(tag, sizeof tag, "rate=%.0e", rate);
    metrics.push_back({std::string("recovered.") + tag,
                       static_cast<double>(r.recovered), "count"});
    metrics.push_back({std::string("identical.") + tag, identical ? 1.0 : 0.0,
                       "bool"});
    metrics.push_back({std::string("verify_share.") + tag, r.verify_share,
                       "ratio"});
    const std::string outcome = r.aborted  ? "abort: " + r.reason
                                : identical ? "completed"
                                            : "completed but DIVERGED";
    std::printf("%9.0e %9llu %10llu %9llu %6.1f%% %8.1f %10s  %s\n", rate,
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.recovered),
                static_cast<unsigned long long>(r.hw_rejected),
                100 * r.verify_share, r.cps / 1e3,
                identical ? "yes" : "NO", outcome.c_str());
    if (rate <= 1e-3 && !identical) {
      envelope_holds = false;
    }
  }
  std::printf(
      "\nWithin the 1e-3 envelope every row reproduces the clean statistics\n"
      "bit-exactly: %s. Beyond it the 2-bit guards can be forged by\n"
      "colluding faults, so rows diverge or abort — but never hang.\n",
      envelope_holds ? "PASS" : "FAIL");

  metrics.push_back({"envelope_holds", envelope_holds ? 1.0 : 0.0, "bool"});
  tmsim::bench::emit_bench_json(
      "fault_sweep",
      {{"cycles", "4000"}, {"be_load", "0.10"}, {"network", "6x6 mesh"}},
      metrics);
  return envelope_holds ? 0 : 1;
}
