// Figures 3 and 5: the schedule traces of the two sequential-simulation
// methods, regenerated from the engine's trace hook on the paper's
// three-block example systems.
//
// Fig. 3 (static): a registered-boundary ring needs exactly one delta
// cycle per block per system cycle, in arbitrary order.
//
// Fig. 5 (dynamic): a combinational-boundary ring starts every system
// cycle with all HBR bits cleared; changed link writes re-destabilize
// readers, so some blocks are evaluated twice. The trace shows which
// delta cycle (c,d) evaluated which block, like the paper's figure.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/sequential_simulator.h"
#include "core/example_blocks.h"

namespace {

using namespace tmsim;
using namespace tmsim::core;

struct TraceTotals {
  std::uint64_t delta_cycles = 0;
  std::uint64_t re_evaluations = 0;
};

TraceTotals trace_run(SequentialSimulator& sim, std::size_t cycles) {
  struct Event {
    SystemCycle c;
    DeltaCycle d;
    BlockId b;
  };
  std::vector<Event> events;
  sim.set_trace_hook([&](SystemCycle c, DeltaCycle d, BlockId b) {
    events.push_back({c, d, b});
  });
  std::vector<StepStats> stats;
  for (std::size_t i = 0; i < cycles; ++i) {
    stats.push_back(sim.step());
  }
  for (std::size_t c = 0; c < cycles; ++c) {
    std::printf("  system cycle %zu: ", c);
    for (const Event& e : events) {
      if (e.c == c) {
        std::printf("(%zu,%llu)=F'%zu  ", c,
                    static_cast<unsigned long long>(e.d), e.b + 1);
      }
    }
    std::printf("| %llu delta cycles, %llu re-evaluations\n",
                static_cast<unsigned long long>(stats[c].delta_cycles),
                static_cast<unsigned long long>(stats[c].re_evaluations));
  }
  TraceTotals totals;
  for (const StepStats& s : stats) {
    totals.delta_cycles += s.delta_cycles;
    totals.re_evaluations += s.re_evaluations;
  }
  return totals;
}

}  // namespace

int main() {
  TraceTotals static_totals, dynamic_totals;
  bench::print_header("Figure 3", "static schedule on a registered ring");
  {
    // Fig. 2a: three circuits F1..F3 separated by registers R1..R3.
    SystemModel m;
    std::vector<BlockId> blocks;
    for (int i = 0; i < 3; ++i) {
      blocks.push_back(m.add_block(
          std::make_shared<examples::RegAdderBlock>(16, i + 1),
          "F" + std::to_string(i + 1)));
    }
    std::vector<LinkId> regs;
    for (int i = 0; i < 3; ++i) {
      regs.push_back(
          m.add_link("R" + std::to_string(i + 1), 16, LinkKind::kRegistered));
    }
    for (int i = 0; i < 3; ++i) {
      m.bind_output(blocks[i], 0, regs[i]);
      m.bind_input(blocks[(i + 1) % 3], 0, regs[i]);
    }
    m.finalize();
    SequentialSimulator sim(m, SchedulePolicy::kStatic);
    std::printf("each (cycle,delta)=block entry is one evaluation; the\n"
                "static method needs exactly num_blocks deltas per cycle:\n");
    static_totals = trace_run(sim, 3);
    std::printf("  register values after 3 cycles: R1=%llu R2=%llu R3=%llu\n",
                (unsigned long long)sim.link_value(regs[0]).get_field(0, 16),
                (unsigned long long)sim.link_value(regs[1]).get_field(0, 16),
                (unsigned long long)sim.link_value(regs[2]).get_field(0, 16));
  }

  bench::print_header("Figure 5",
                      "dynamic (HBR) schedule on a combinational ring");
  {
    // Fig. 4a: three router-like blocks whose outputs are unbuffered
    // wires; state changes make link values change, forcing
    // re-evaluations exactly as in the paper's walkthrough.
    SystemModel m;
    std::vector<BlockId> blocks;
    std::vector<LinkId> links;
    for (int i = 0; i < 3; ++i) {
      blocks.push_back(m.add_block(
          std::make_shared<examples::PipeBlock>(16, 1, 10 * (i + 1)),
          "R" + std::to_string(i)));
      links.push_back(m.add_link("link" + std::to_string(i), 16,
                                 LinkKind::kCombinational));
    }
    for (int i = 0; i < 3; ++i) {
      m.bind_output(blocks[i], 0, links[i]);
      m.bind_input(blocks[(i + 1) % 3], 0, links[i]);
    }
    m.finalize();
    SequentialSimulator sim(m, SchedulePolicy::kDynamic);
    std::printf("every cycle starts with all HBR bits cleared (all blocks\n"
                "evaluated at least once); a changed link value clears its\n"
                "HBR bit and re-destabilizes the reader:\n");
    dynamic_totals = trace_run(sim, 3);
  }

  std::printf("\nclaims:\n");
  std::printf("  static schedule: exactly N delta cycles per system cycle\n");
  std::printf("  dynamic schedule: N..2N delta cycles, re-evaluations only\n"
              "  where link values actually changed (§4.2)\n");

  bench::emit_bench_json(
      "fig3_fig5_schedules", {{"cycles", "3"}, {"blocks", "3"}},
      {{"static.delta_cycles", static_cast<double>(static_totals.delta_cycles),
        "count"},
       {"static.re_evaluations",
        static_cast<double>(static_totals.re_evaluations), "count"},
       {"dynamic.delta_cycles",
        static_cast<double>(dynamic_totals.delta_cycles), "count"},
       {"dynamic.re_evaluations",
        static_cast<double>(dynamic_totals.re_evaluations), "count"}});
  return 0;
}
