// §5.3 / §8 ablation: random number generation on the FPGA vs C rand().
//
//   "Reading a 32 bit random number from the FPGA is noticeably faster
//    compared to the standard rand() function in C." (§5.3)
//   "A simple improvement by offloading the random number generation to
//    the FPGA gave an extra 50% simulation speed." (§8)
//
// Both modes run the bit-identical workload (the software LFSR mirrors
// the FPGA register); only the cost of obtaining each random word
// differs. Reported: modeled CPS in each mode and the speedup.
#include <cstdio>

#include "analysis/table.h"
#include "bench/bench_util.h"
#include "fpga/arm_host.h"

int main() {
  using namespace tmsim;
  bench::print_header("§8 ablation", "RNG on FPGA vs software rand()");
  const std::size_t cycles = bench::quick_mode() ? 1000 : 4000;

  analysis::TablePrinter table({"BE load", "CPS (FPGA RNG)",
                                "CPS (sw rand)", "speedup", "randoms"});
  double typical_speedup = 0;
  std::vector<bench::BenchMetric> metrics;
  for (double load : {0.05, 0.10, 0.15}) {
    fpga::PhaseCounts c[2];
    std::uint64_t delivered[2];
    for (int mode = 0; mode < 2; ++mode) {
      fpga::FpgaDesign design{fpga::FpgaBuildConfig{}};
      fpga::ArmHost::Workload wl;
      wl.be_load = load;
      wl.rng_on_fpga = (mode == 0);
      fpga::ArmHost host(design, wl);
      host.configure_network(6, 6, noc::Topology::kMesh);
      host.run(cycles);
      c[mode] = host.counts();
      delivered[mode] = host.packets_delivered();
    }
    TMSIM_CHECK_MSG(delivered[0] == delivered[1],
                    "modes diverged — ablation must hold traffic fixed");
    const fpga::TimingModel model;
    const double cps_hw = model.evaluate(c[0]).cycles_per_second;
    const double cps_sw = model.evaluate(c[1]).cycles_per_second;
    const double speedup = cps_hw / cps_sw;
    if (load == 0.10) {
      typical_speedup = speedup;
    }
    table.add_row({analysis::fmt("%.2f", load),
                   analysis::fmt("%.1f kHz", cps_hw / 1e3),
                   analysis::fmt("%.1f kHz", cps_sw / 1e3),
                   analysis::fmt("%.2fx", speedup),
                   std::to_string(c[0].randoms_drawn)});
    metrics.push_back(
        {"speedup." + analysis::fmt("be=%.2f", load), speedup, "ratio"});
  }
  table.print();

  std::printf("\nclaims:\n");
  std::printf("  paper: offload gives \"an extra 50%% simulation speed\" "
              "(1.5x);\n  ours at the typical load: %.2fx — %s the paper's "
              "ballpark\n",
              typical_speedup,
              (typical_speedup > 1.2 && typical_speedup < 2.2) ? "inside"
                                                               : "OUTSIDE");
  std::printf("  both modes simulated identical traffic (verified per "
              "load point)\n");

  metrics.push_back({"typical_speedup", typical_speedup, "ratio"});
  bench::emit_bench_json("ablation_rng",
                         {{"cycles", std::to_string(cycles)},
                          {"network", "6x6 mesh"}},
                         metrics);
  return 0;
}
