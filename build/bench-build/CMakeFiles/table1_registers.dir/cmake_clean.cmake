file(REMOVE_RECURSE
  "../bench/table1_registers"
  "../bench/table1_registers.pdb"
  "CMakeFiles/table1_registers.dir/table1_registers.cpp.o"
  "CMakeFiles/table1_registers.dir/table1_registers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
