# Empty dependencies file for table1_registers.
# This may be replaced when dependencies are built.
