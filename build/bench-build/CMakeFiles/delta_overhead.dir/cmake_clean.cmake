file(REMOVE_RECURSE
  "../bench/delta_overhead"
  "../bench/delta_overhead.pdb"
  "CMakeFiles/delta_overhead.dir/delta_overhead.cpp.o"
  "CMakeFiles/delta_overhead.dir/delta_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
