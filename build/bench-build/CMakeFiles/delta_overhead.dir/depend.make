# Empty dependencies file for delta_overhead.
# This may be replaced when dependencies are built.
