file(REMOVE_RECURSE
  "../bench/table3_cps"
  "../bench/table3_cps.pdb"
  "CMakeFiles/table3_cps.dir/table3_cps.cpp.o"
  "CMakeFiles/table3_cps.dir/table3_cps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
