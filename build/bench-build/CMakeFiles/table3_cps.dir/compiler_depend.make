# Empty compiler generated dependencies file for table3_cps.
# This may be replaced when dependencies are built.
