file(REMOVE_RECURSE
  "../bench/ablation_schedules"
  "../bench/ablation_schedules.pdb"
  "CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o"
  "CMakeFiles/ablation_schedules.dir/ablation_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
