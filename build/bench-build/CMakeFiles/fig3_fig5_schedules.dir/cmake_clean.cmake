file(REMOVE_RECURSE
  "../bench/fig3_fig5_schedules"
  "../bench/fig3_fig5_schedules.pdb"
  "CMakeFiles/fig3_fig5_schedules.dir/fig3_fig5_schedules.cpp.o"
  "CMakeFiles/fig3_fig5_schedules.dir/fig3_fig5_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig5_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
