# Empty dependencies file for fig3_fig5_schedules.
# This may be replaced when dependencies are built.
