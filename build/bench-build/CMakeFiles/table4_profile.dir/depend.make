# Empty dependencies file for table4_profile.
# This may be replaced when dependencies are built.
