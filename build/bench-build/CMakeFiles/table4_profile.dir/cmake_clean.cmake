file(REMOVE_RECURSE
  "../bench/table4_profile"
  "../bench/table4_profile.pdb"
  "CMakeFiles/table4_profile.dir/table4_profile.cpp.o"
  "CMakeFiles/table4_profile.dir/table4_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
