file(REMOVE_RECURSE
  "../bench/fig1_latency_vs_load"
  "../bench/fig1_latency_vs_load.pdb"
  "CMakeFiles/fig1_latency_vs_load.dir/fig1_latency_vs_load.cpp.o"
  "CMakeFiles/fig1_latency_vs_load.dir/fig1_latency_vs_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_latency_vs_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
