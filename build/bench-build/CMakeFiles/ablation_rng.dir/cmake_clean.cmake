file(REMOVE_RECURSE
  "../bench/ablation_rng"
  "../bench/ablation_rng.pdb"
  "CMakeFiles/ablation_rng.dir/ablation_rng.cpp.o"
  "CMakeFiles/ablation_rng.dir/ablation_rng.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
