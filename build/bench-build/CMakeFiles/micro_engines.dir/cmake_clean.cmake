file(REMOVE_RECURSE
  "../bench/micro_engines"
  "../bench/micro_engines.pdb"
  "CMakeFiles/micro_engines.dir/micro_engines.cpp.o"
  "CMakeFiles/micro_engines.dir/micro_engines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
