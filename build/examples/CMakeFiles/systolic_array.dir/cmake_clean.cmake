file(REMOVE_RECURSE
  "CMakeFiles/systolic_array.dir/systolic_array.cpp.o"
  "CMakeFiles/systolic_array.dir/systolic_array.cpp.o.d"
  "systolic_array"
  "systolic_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
