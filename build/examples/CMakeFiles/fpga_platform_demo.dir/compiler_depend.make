# Empty compiler generated dependencies file for fpga_platform_demo.
# This may be replaced when dependencies are built.
