file(REMOVE_RECURSE
  "CMakeFiles/fpga_platform_demo.dir/fpga_platform_demo.cpp.o"
  "CMakeFiles/fpga_platform_demo.dir/fpga_platform_demo.cpp.o.d"
  "fpga_platform_demo"
  "fpga_platform_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_platform_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
