
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/engine_property_test.cpp" "tests/CMakeFiles/core_test.dir/core/engine_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/engine_property_test.cpp.o.d"
  "/root/repo/tests/core/link_memory_test.cpp" "tests/CMakeFiles/core_test.dir/core/link_memory_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/link_memory_test.cpp.o.d"
  "/root/repo/tests/core/sequential_simulator_test.cpp" "tests/CMakeFiles/core_test.dir/core/sequential_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sequential_simulator_test.cpp.o.d"
  "/root/repo/tests/core/state_memory_test.cpp" "tests/CMakeFiles/core_test.dir/core/state_memory_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/state_memory_test.cpp.o.d"
  "/root/repo/tests/core/system_model_test.cpp" "tests/CMakeFiles/core_test.dir/core/system_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/system_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tmsim_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
