file(REMOVE_RECURSE
  "CMakeFiles/equivalence_test.dir/integration/baseline_engines_test.cpp.o"
  "CMakeFiles/equivalence_test.dir/integration/baseline_engines_test.cpp.o.d"
  "CMakeFiles/equivalence_test.dir/integration/deadlock_test.cpp.o"
  "CMakeFiles/equivalence_test.dir/integration/deadlock_test.cpp.o.d"
  "CMakeFiles/equivalence_test.dir/integration/engines_equivalence_test.cpp.o"
  "CMakeFiles/equivalence_test.dir/integration/engines_equivalence_test.cpp.o.d"
  "CMakeFiles/equivalence_test.dir/integration/seq_equivalence_test.cpp.o"
  "CMakeFiles/equivalence_test.dir/integration/seq_equivalence_test.cpp.o.d"
  "equivalence_test"
  "equivalence_test.pdb"
  "equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
