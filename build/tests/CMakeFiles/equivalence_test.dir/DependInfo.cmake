
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/baseline_engines_test.cpp" "tests/CMakeFiles/equivalence_test.dir/integration/baseline_engines_test.cpp.o" "gcc" "tests/CMakeFiles/equivalence_test.dir/integration/baseline_engines_test.cpp.o.d"
  "/root/repo/tests/integration/deadlock_test.cpp" "tests/CMakeFiles/equivalence_test.dir/integration/deadlock_test.cpp.o" "gcc" "tests/CMakeFiles/equivalence_test.dir/integration/deadlock_test.cpp.o.d"
  "/root/repo/tests/integration/engines_equivalence_test.cpp" "tests/CMakeFiles/equivalence_test.dir/integration/engines_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/equivalence_test.dir/integration/engines_equivalence_test.cpp.o.d"
  "/root/repo/tests/integration/seq_equivalence_test.cpp" "tests/CMakeFiles/equivalence_test.dir/integration/seq_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/equivalence_test.dir/integration/seq_equivalence_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tmsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/tmsim_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlsim/CMakeFiles/tmsim_rtlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/tmsim_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
