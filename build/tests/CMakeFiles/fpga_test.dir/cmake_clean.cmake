file(REMOVE_RECURSE
  "CMakeFiles/fpga_test.dir/fpga/address_map_test.cpp.o"
  "CMakeFiles/fpga_test.dir/fpga/address_map_test.cpp.o.d"
  "CMakeFiles/fpga_test.dir/fpga/arm_host_test.cpp.o"
  "CMakeFiles/fpga_test.dir/fpga/arm_host_test.cpp.o.d"
  "CMakeFiles/fpga_test.dir/fpga/cyclic_buffer_test.cpp.o"
  "CMakeFiles/fpga_test.dir/fpga/cyclic_buffer_test.cpp.o.d"
  "CMakeFiles/fpga_test.dir/fpga/fpga_design_test.cpp.o"
  "CMakeFiles/fpga_test.dir/fpga/fpga_design_test.cpp.o.d"
  "fpga_test"
  "fpga_test.pdb"
  "fpga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
