
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fpga/address_map_test.cpp" "tests/CMakeFiles/fpga_test.dir/fpga/address_map_test.cpp.o" "gcc" "tests/CMakeFiles/fpga_test.dir/fpga/address_map_test.cpp.o.d"
  "/root/repo/tests/fpga/arm_host_test.cpp" "tests/CMakeFiles/fpga_test.dir/fpga/arm_host_test.cpp.o" "gcc" "tests/CMakeFiles/fpga_test.dir/fpga/arm_host_test.cpp.o.d"
  "/root/repo/tests/fpga/cyclic_buffer_test.cpp" "tests/CMakeFiles/fpga_test.dir/fpga/cyclic_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/fpga_test.dir/fpga/cyclic_buffer_test.cpp.o.d"
  "/root/repo/tests/fpga/fpga_design_test.cpp" "tests/CMakeFiles/fpga_test.dir/fpga/fpga_design_test.cpp.o" "gcc" "tests/CMakeFiles/fpga_test.dir/fpga/fpga_design_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tmsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/tmsim_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
