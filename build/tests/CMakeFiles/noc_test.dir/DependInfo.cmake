
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/flit_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/flit_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/flit_test.cpp.o.d"
  "/root/repo/tests/noc/network_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/network_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/network_test.cpp.o.d"
  "/root/repo/tests/noc/router_config_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/router_config_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/router_config_test.cpp.o.d"
  "/root/repo/tests/noc/router_logic_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/router_logic_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/router_logic_test.cpp.o.d"
  "/root/repo/tests/noc/router_state_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/router_state_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/router_state_test.cpp.o.d"
  "/root/repo/tests/noc/topology_test.cpp" "tests/CMakeFiles/noc_test.dir/noc/topology_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tmsim_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
