file(REMOVE_RECURSE
  "CMakeFiles/tmsim_rtlsim.dir/rtl_noc.cpp.o"
  "CMakeFiles/tmsim_rtlsim.dir/rtl_noc.cpp.o.d"
  "CMakeFiles/tmsim_rtlsim.dir/std_logic.cpp.o"
  "CMakeFiles/tmsim_rtlsim.dir/std_logic.cpp.o.d"
  "libtmsim_rtlsim.a"
  "libtmsim_rtlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_rtlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
