file(REMOVE_RECURSE
  "libtmsim_rtlsim.a"
)
