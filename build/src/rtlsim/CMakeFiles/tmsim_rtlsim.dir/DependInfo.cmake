
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtlsim/rtl_noc.cpp" "src/rtlsim/CMakeFiles/tmsim_rtlsim.dir/rtl_noc.cpp.o" "gcc" "src/rtlsim/CMakeFiles/tmsim_rtlsim.dir/rtl_noc.cpp.o.d"
  "/root/repo/src/rtlsim/std_logic.cpp" "src/rtlsim/CMakeFiles/tmsim_rtlsim.dir/std_logic.cpp.o" "gcc" "src/rtlsim/CMakeFiles/tmsim_rtlsim.dir/std_logic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/tmsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
