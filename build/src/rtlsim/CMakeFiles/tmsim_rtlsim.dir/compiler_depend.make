# Empty compiler generated dependencies file for tmsim_rtlsim.
# This may be replaced when dependencies are built.
