file(REMOVE_RECURSE
  "CMakeFiles/tmsim_noc.dir/network.cpp.o"
  "CMakeFiles/tmsim_noc.dir/network.cpp.o.d"
  "CMakeFiles/tmsim_noc.dir/router_logic.cpp.o"
  "CMakeFiles/tmsim_noc.dir/router_logic.cpp.o.d"
  "CMakeFiles/tmsim_noc.dir/router_state.cpp.o"
  "CMakeFiles/tmsim_noc.dir/router_state.cpp.o.d"
  "CMakeFiles/tmsim_noc.dir/topology.cpp.o"
  "CMakeFiles/tmsim_noc.dir/topology.cpp.o.d"
  "libtmsim_noc.a"
  "libtmsim_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
