# Empty dependencies file for tmsim_noc.
# This may be replaced when dependencies are built.
