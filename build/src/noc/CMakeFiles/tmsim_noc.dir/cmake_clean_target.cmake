file(REMOVE_RECURSE
  "libtmsim_noc.a"
)
