file(REMOVE_RECURSE
  "CMakeFiles/tmsim_traffic.dir/harness.cpp.o"
  "CMakeFiles/tmsim_traffic.dir/harness.cpp.o.d"
  "CMakeFiles/tmsim_traffic.dir/packet.cpp.o"
  "CMakeFiles/tmsim_traffic.dir/packet.cpp.o.d"
  "CMakeFiles/tmsim_traffic.dir/workloads.cpp.o"
  "CMakeFiles/tmsim_traffic.dir/workloads.cpp.o.d"
  "libtmsim_traffic.a"
  "libtmsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
