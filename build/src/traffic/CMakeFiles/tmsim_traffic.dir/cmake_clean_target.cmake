file(REMOVE_RECURSE
  "libtmsim_traffic.a"
)
