# Empty dependencies file for tmsim_traffic.
# This may be replaced when dependencies are built.
