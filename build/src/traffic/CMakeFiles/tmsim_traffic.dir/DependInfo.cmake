
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/harness.cpp" "src/traffic/CMakeFiles/tmsim_traffic.dir/harness.cpp.o" "gcc" "src/traffic/CMakeFiles/tmsim_traffic.dir/harness.cpp.o.d"
  "/root/repo/src/traffic/packet.cpp" "src/traffic/CMakeFiles/tmsim_traffic.dir/packet.cpp.o" "gcc" "src/traffic/CMakeFiles/tmsim_traffic.dir/packet.cpp.o.d"
  "/root/repo/src/traffic/workloads.cpp" "src/traffic/CMakeFiles/tmsim_traffic.dir/workloads.cpp.o" "gcc" "src/traffic/CMakeFiles/tmsim_traffic.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
