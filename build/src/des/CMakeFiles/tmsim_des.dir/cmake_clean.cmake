file(REMOVE_RECURSE
  "CMakeFiles/tmsim_des.dir/kernel.cpp.o"
  "CMakeFiles/tmsim_des.dir/kernel.cpp.o.d"
  "libtmsim_des.a"
  "libtmsim_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
