# Empty compiler generated dependencies file for tmsim_des.
# This may be replaced when dependencies are built.
