file(REMOVE_RECURSE
  "libtmsim_des.a"
)
