file(REMOVE_RECURSE
  "CMakeFiles/tmsim_fpga.dir/arm_host.cpp.o"
  "CMakeFiles/tmsim_fpga.dir/arm_host.cpp.o.d"
  "CMakeFiles/tmsim_fpga.dir/fpga_design.cpp.o"
  "CMakeFiles/tmsim_fpga.dir/fpga_design.cpp.o.d"
  "CMakeFiles/tmsim_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/tmsim_fpga.dir/resource_model.cpp.o.d"
  "CMakeFiles/tmsim_fpga.dir/timing_model.cpp.o"
  "CMakeFiles/tmsim_fpga.dir/timing_model.cpp.o.d"
  "libtmsim_fpga.a"
  "libtmsim_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
