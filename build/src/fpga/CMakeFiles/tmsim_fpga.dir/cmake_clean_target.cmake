file(REMOVE_RECURSE
  "libtmsim_fpga.a"
)
