
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/arm_host.cpp" "src/fpga/CMakeFiles/tmsim_fpga.dir/arm_host.cpp.o" "gcc" "src/fpga/CMakeFiles/tmsim_fpga.dir/arm_host.cpp.o.d"
  "/root/repo/src/fpga/fpga_design.cpp" "src/fpga/CMakeFiles/tmsim_fpga.dir/fpga_design.cpp.o" "gcc" "src/fpga/CMakeFiles/tmsim_fpga.dir/fpga_design.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/fpga/CMakeFiles/tmsim_fpga.dir/resource_model.cpp.o" "gcc" "src/fpga/CMakeFiles/tmsim_fpga.dir/resource_model.cpp.o.d"
  "/root/repo/src/fpga/timing_model.cpp" "src/fpga/CMakeFiles/tmsim_fpga.dir/timing_model.cpp.o" "gcc" "src/fpga/CMakeFiles/tmsim_fpga.dir/timing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tmsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
