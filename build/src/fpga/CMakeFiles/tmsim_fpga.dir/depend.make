# Empty dependencies file for tmsim_fpga.
# This may be replaced when dependencies are built.
