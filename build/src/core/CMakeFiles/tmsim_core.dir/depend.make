# Empty dependencies file for tmsim_core.
# This may be replaced when dependencies are built.
