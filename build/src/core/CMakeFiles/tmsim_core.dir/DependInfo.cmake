
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/link_memory.cpp" "src/core/CMakeFiles/tmsim_core.dir/link_memory.cpp.o" "gcc" "src/core/CMakeFiles/tmsim_core.dir/link_memory.cpp.o.d"
  "/root/repo/src/core/noc_block.cpp" "src/core/CMakeFiles/tmsim_core.dir/noc_block.cpp.o" "gcc" "src/core/CMakeFiles/tmsim_core.dir/noc_block.cpp.o.d"
  "/root/repo/src/core/sequential_simulator.cpp" "src/core/CMakeFiles/tmsim_core.dir/sequential_simulator.cpp.o" "gcc" "src/core/CMakeFiles/tmsim_core.dir/sequential_simulator.cpp.o.d"
  "/root/repo/src/core/state_memory.cpp" "src/core/CMakeFiles/tmsim_core.dir/state_memory.cpp.o" "gcc" "src/core/CMakeFiles/tmsim_core.dir/state_memory.cpp.o.d"
  "/root/repo/src/core/system_model.cpp" "src/core/CMakeFiles/tmsim_core.dir/system_model.cpp.o" "gcc" "src/core/CMakeFiles/tmsim_core.dir/system_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tmsim_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
