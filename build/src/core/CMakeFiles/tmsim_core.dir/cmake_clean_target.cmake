file(REMOVE_RECURSE
  "libtmsim_core.a"
)
