file(REMOVE_RECURSE
  "CMakeFiles/tmsim_core.dir/link_memory.cpp.o"
  "CMakeFiles/tmsim_core.dir/link_memory.cpp.o.d"
  "CMakeFiles/tmsim_core.dir/noc_block.cpp.o"
  "CMakeFiles/tmsim_core.dir/noc_block.cpp.o.d"
  "CMakeFiles/tmsim_core.dir/sequential_simulator.cpp.o"
  "CMakeFiles/tmsim_core.dir/sequential_simulator.cpp.o.d"
  "CMakeFiles/tmsim_core.dir/state_memory.cpp.o"
  "CMakeFiles/tmsim_core.dir/state_memory.cpp.o.d"
  "CMakeFiles/tmsim_core.dir/system_model.cpp.o"
  "CMakeFiles/tmsim_core.dir/system_model.cpp.o.d"
  "libtmsim_core.a"
  "libtmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
