# Empty compiler generated dependencies file for tmsim_common.
# This may be replaced when dependencies are built.
