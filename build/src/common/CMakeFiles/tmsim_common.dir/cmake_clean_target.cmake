file(REMOVE_RECURSE
  "libtmsim_common.a"
)
