file(REMOVE_RECURSE
  "CMakeFiles/tmsim_common.dir/bit_vector.cpp.o"
  "CMakeFiles/tmsim_common.dir/bit_vector.cpp.o.d"
  "CMakeFiles/tmsim_common.dir/error.cpp.o"
  "CMakeFiles/tmsim_common.dir/error.cpp.o.d"
  "libtmsim_common.a"
  "libtmsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
