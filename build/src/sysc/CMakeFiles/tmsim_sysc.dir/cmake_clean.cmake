file(REMOVE_RECURSE
  "CMakeFiles/tmsim_sysc.dir/sysc_noc.cpp.o"
  "CMakeFiles/tmsim_sysc.dir/sysc_noc.cpp.o.d"
  "libtmsim_sysc.a"
  "libtmsim_sysc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_sysc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
