file(REMOVE_RECURSE
  "libtmsim_sysc.a"
)
