# Empty dependencies file for tmsim_sysc.
# This may be replaced when dependencies are built.
