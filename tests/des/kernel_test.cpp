#include "des/kernel.h"

#include <gtest/gtest.h>

namespace tmsim::des {
namespace {

TEST(Kernel, SignalHoldsInitialValue) {
  Kernel k;
  Signal<int> s(k, "s", 42);
  EXPECT_EQ(s.read(), 42);
}

TEST(Kernel, WriteCommitsOnlyInUpdatePhase) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  s.write(7);
  EXPECT_EQ(s.read(), 0);  // not yet committed
  k.settle();
  EXPECT_EQ(s.read(), 7);
}

TEST(Kernel, LastWriteWinsWithinADelta) {
  Kernel k;
  Signal<int> s(k, "s", 0);
  s.write(1);
  s.write(2);
  k.settle();
  EXPECT_EQ(s.read(), 2);
}

TEST(Kernel, SensitiveProcessRunsOnChangeOnly) {
  Kernel k;
  Signal<int> in(k, "in", 0);
  int runs = 0;
  const auto pid = k.add_process([&] { ++runs; }, "watch");
  k.make_sensitive(pid, in);
  k.initialize();
  EXPECT_EQ(runs, 1);  // time-zero evaluation
  in.write(0);         // no value change
  k.settle();
  EXPECT_EQ(runs, 1);
  in.write(5);
  k.settle();
  EXPECT_EQ(runs, 2);
}

TEST(Kernel, CombChainPropagatesThroughDeltas) {
  Kernel k;
  Signal<int> a(k, "a", 0);
  Signal<int> b(k, "b", 0);
  Signal<int> c(k, "c", 0);
  const auto p1 = k.add_process([&] { b.write(a.read() + 1); }, "p1");
  k.make_sensitive(p1, a);
  const auto p2 = k.add_process([&] { c.write(b.read() * 2); }, "p2");
  k.make_sensitive(p2, b);
  k.initialize();
  a.write(10);
  k.settle();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 22);
}

TEST(Kernel, ClockedProcessesSeePreEdgeValues) {
  // Two registers swapping values through each other must exchange, not
  // duplicate — the classic two-flop test of evaluate/update semantics.
  Kernel k;
  Signal<int> x(k, "x", 1);
  Signal<int> y(k, "y", 2);
  k.add_clocked_process([&] { x.write(y.read()); }, "fx");
  k.add_clocked_process([&] { y.write(x.read()); }, "fy");
  k.initialize();
  k.tick();
  EXPECT_EQ(x.read(), 2);
  EXPECT_EQ(y.read(), 1);
  k.tick();
  EXPECT_EQ(x.read(), 1);
  EXPECT_EQ(y.read(), 2);
}

TEST(Kernel, ClockedProcessesDontRunAtInitialize) {
  Kernel k;
  Signal<int> count(k, "count", 0);
  k.add_clocked_process([&] { count.write(count.read() + 1); }, "ctr");
  k.initialize();
  EXPECT_EQ(count.read(), 0);
  k.tick();
  EXPECT_EQ(count.read(), 1);
}

TEST(Kernel, CombFollowsClockedWithinOneTick) {
  // Register → combinational doubling: after a tick the comb output must
  // reflect the new register value (the settle loop inside tick()).
  Kernel k;
  Signal<int> reg(k, "reg", 3);
  Signal<int> twice(k, "twice", 0);
  const auto comb = k.add_process([&] { twice.write(2 * reg.read()); }, "x2");
  k.make_sensitive(comb, reg);
  k.add_clocked_process([&] { reg.write(reg.read() + 1); }, "inc");
  k.initialize();
  EXPECT_EQ(twice.read(), 6);
  k.tick();
  EXPECT_EQ(reg.read(), 4);
  EXPECT_EQ(twice.read(), 8);
}

TEST(Kernel, OscillatingFeedbackDetected) {
  Kernel k;
  Signal<int> a(k, "a", 0);
  const auto p = k.add_process([&] { a.write(1 - a.read()); }, "osc");
  k.make_sensitive(p, a);
  k.set_max_deltas_per_tick(32);
  EXPECT_THROW(k.initialize(), Error);
}

TEST(Kernel, StatsCountActivity) {
  Kernel k;
  Signal<int> a(k, "a", 0);
  Signal<int> b(k, "b", 0);
  const auto p = k.add_process([&] { b.write(a.read() + 1); }, "p");
  k.make_sensitive(p, a);
  k.add_clocked_process([&] { a.write(a.read() + 1); }, "inc");
  k.initialize();
  const auto after_init = k.stats();
  EXPECT_GE(after_init.process_activations, 1u);
  for (int i = 0; i < 5; ++i) {
    k.tick();
  }
  const auto& st = k.stats();
  EXPECT_EQ(st.ticks, 5u);
  EXPECT_GT(st.process_activations, after_init.process_activations);
  EXPECT_GT(st.signal_commits, 0u);
  EXPECT_GT(st.delta_cycles, 5u);  // ≥ 2 deltas per tick here
}

}  // namespace
}  // namespace tmsim::des
