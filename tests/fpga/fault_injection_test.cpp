// Integration tests for the fault-injection bus layer and the hardened
// host (ctest label: faults). The headline property from DESIGN.md,
// "Robustness": with bounded per-access fault rates, a run either
// completes with statistics bit-identical to a fault-free run, or aborts
// with a structured diagnostic — it never silently diverges or hangs.
#include "fpga/faulty_bus.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fpga/arm_host.h"
#include "fpga/fpga_design.h"

namespace tmsim::fpga {
namespace {

struct RunResult {
  bool aborted = false;
  bool overloaded = false;
  std::uint64_t packets = 0;
  double lat_sum = 0, lat_min = 0, lat_max = 0;
  std::uint64_t lat_count = 0;
  double access_sum = 0;
  std::uint64_t access_count = 0;
  std::uint64_t cycles = 0;
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t hw_rejected = 0;
  std::string abort_reason;
};

RunResult run_with_rates(const FaultRates& rates, std::uint64_t seed,
                         std::size_t cycles = 2000,
                         std::size_t num_shards = 1) {
  FpgaBuildConfig build;
  build.num_shards = num_shards;
  FpgaDesign fpga{build};
  FaultyBus bus(fpga, rates, seed);
  ArmHost::Workload wl;
  wl.be_load = 0.10;
  ArmHost host(bus, fpga.build(), wl);
  RunResult r;
  try {
    host.configure_network(4, 4, noc::Topology::kMesh);
    host.run(cycles);
  } catch (const Error& e) {
    // A bus so broken that even verified configuration never converges
    // surfaces as a structured error before run() starts.
    r.aborted = true;
    r.abort_reason = e.what();
  }
  const auto& lat = host.latency(traffic::PacketClass::kBestEffort);
  r.aborted = r.aborted || host.aborted();
  r.overloaded = host.overloaded();
  r.packets = host.packets_delivered();
  r.lat_sum = lat.sum();
  r.lat_count = lat.count();
  if (lat.count() > 0) {
    r.lat_min = lat.min();
    r.lat_max = lat.max();
  }
  r.access_sum = host.access_delay().sum();
  r.access_count = host.access_delay().count();
  r.cycles = host.cycles_simulated();
  r.injected = bus.injected().total();
  r.recovered = host.fault_report().total_recovered();
  r.hw_rejected = host.fault_report().hw_rejected_words;
  if (!host.fault_report().abort_reason.empty()) {
    r.abort_reason = host.fault_report().abort_reason;
  }
  return r;
}

TEST(FaultInjection, StatisticsBitIdenticalUnderBoundedFaultRates) {
  // The ISSUE acceptance bar: fault rates up to 1e-3 per access must
  // yield the exact statistics of a fault-free run — every fault
  // detected and recovered, none absorbed into the results.
  const RunResult clean = run_with_rates(FaultRates{}, 1);
  ASSERT_FALSE(clean.aborted);
  ASSERT_GT(clean.packets, 20u);

  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const RunResult faulty = run_with_rates(FaultRates::uniform(1e-3), seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_FALSE(faulty.aborted) << faulty.abort_reason;
    EXPECT_GT(faulty.injected, 0u);     // the layer really fired
    EXPECT_GT(faulty.recovered, 0u);    // and the host really worked
    // Bit-identical statistics (double compares are exact here).
    EXPECT_EQ(faulty.packets, clean.packets);
    EXPECT_EQ(faulty.lat_sum, clean.lat_sum);
    EXPECT_EQ(faulty.lat_count, clean.lat_count);
    EXPECT_EQ(faulty.lat_min, clean.lat_min);
    EXPECT_EQ(faulty.lat_max, clean.lat_max);
    EXPECT_EQ(faulty.access_sum, clean.access_sum);
    EXPECT_EQ(faulty.access_count, clean.access_count);
    EXPECT_EQ(faulty.cycles, clean.cycles);
  }
}

TEST(FaultInjection, ShardedEngineBitIdenticalUnderFaults) {
  // The sharded simulation engine composed with the fault-injection
  // layer: a fault-free sequential run is the golden reference; sharded
  // runs — clean and faulty — must reproduce its statistics bit for bit.
  const RunResult clean = run_with_rates(FaultRates{}, 1);
  ASSERT_FALSE(clean.aborted);
  ASSERT_GT(clean.packets, 20u);

  for (const std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards " + std::to_string(shards));
    for (const auto& [rates, seed] :
         {std::pair{FaultRates{}, std::uint64_t{1}},
          std::pair{FaultRates::uniform(1e-3), std::uint64_t{404}}}) {
      const RunResult r = run_with_rates(rates, seed, 2000, shards);
      ASSERT_FALSE(r.aborted) << r.abort_reason;
      EXPECT_EQ(r.packets, clean.packets);
      EXPECT_EQ(r.lat_sum, clean.lat_sum);
      EXPECT_EQ(r.lat_count, clean.lat_count);
      EXPECT_EQ(r.lat_min, clean.lat_min);
      EXPECT_EQ(r.lat_max, clean.lat_max);
      EXPECT_EQ(r.access_sum, clean.access_sum);
      EXPECT_EQ(r.access_count, clean.access_count);
      EXPECT_EQ(r.cycles, clean.cycles);
    }
  }
}

TEST(FaultInjection, WatchdogAbortsInsteadOfHanging) {
  FaultRates rates;
  rates.stuck_busy = 1.0;  // every status poll reads busy, forever
  rates.stuck_busy_reads = 1u << 20;
  const RunResult r = run_with_rates(rates, 7);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("watchdog"), std::string::npos)
      << r.abort_reason;
  EXPECT_EQ(r.cycles, 0u);  // no period ever verified as completed
}

TEST(FaultInjection, InjectionIsDeterministicPerSeed) {
  const RunResult a = run_with_rates(FaultRates::uniform(1e-3), 42);
  const RunResult b = run_with_rates(FaultRates::uniform(1e-3), 42);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.hw_rejected, b.hw_rejected);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.lat_sum, b.lat_sum);
}

TEST(FaultInjection, GuardedPushRejectsCorruptedWordsWithoutCommitting) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  fpga.write32(kRegNetWidth, 2);
  fpga.write32(kRegNetHeight, 2);
  fpga.write32(kRegTopology, 1);
  fpga.write32(kRegConfigure, 1);
  fpga.write32(kRegGuard, 1);

  const Addr ts_addr = stimuli_port(0, 0, kPortPushTs);
  const Addr data_addr = stimuli_port(0, 0, kPortPushData);
  const Addr commits_addr = stimuli_port(0, 0, kPortCommits);
  const std::uint32_t payload = 0x1abcdu;

  // A well-formed guarded word commits.
  fpga.write32(ts_addr, 5);
  fpga.write32(data_addr, guard_stimulus(payload, 5, 0));
  EXPECT_EQ(fpga.read32(commits_addr), 1u);
  EXPECT_EQ(fpga.read32(kRegFaults), 0u);

  // Wrong checksum (stale timestamp): rejected, not committed, sticky
  // load-fault flagged.
  fpga.write32(ts_addr, 9);
  fpga.write32(data_addr, guard_stimulus(payload, 8, 1));
  EXPECT_EQ(fpga.read32(commits_addr), 1u);
  EXPECT_EQ(fpga.read32(kRegFaults), 1u);
  EXPECT_TRUE(fpga.read32(kRegStatus) & kStatusLoadFault);

  // Wrong sequence number: rejected too.
  fpga.write32(ts_addr, 9);
  fpga.write32(data_addr, guard_stimulus(payload, 9, 7));
  EXPECT_EQ(fpga.read32(commits_addr), 1u);
  EXPECT_EQ(fpga.read32(kRegFaults), 2u);

  // Missing timestamp write: rejected (the previous staged value was
  // consumed, so the checksum cannot match a stale one silently).
  fpga.write32(data_addr, guard_stimulus(payload, 9, 1));
  EXPECT_EQ(fpga.read32(commits_addr), 1u);
  EXPECT_EQ(fpga.read32(kRegFaults), 3u);

  // W1C clears the sticky flag; the next valid word still commits with
  // the unchanged sequence number.
  fpga.write32(kRegStatus, kStatusLoadFault);
  EXPECT_FALSE(fpga.read32(kRegStatus) & kStatusLoadFault);
  fpga.write32(ts_addr, 9);
  fpga.write32(data_addr, guard_stimulus(payload, 9, 1));
  EXPECT_EQ(fpga.read32(commits_addr), 2u);
  EXPECT_EQ(fpga.read32(kRegFaults), 3u);
}

TEST(FaultInjection, RecoveredOverrunDoesNotPoisonLaterPeriods) {
  // Satellite (f): kRegStatus overrun is sticky until cleared by a W1C
  // write, and once cleared a drained design keeps running clean.
  FpgaBuildConfig build;
  build.stimuli_buffer_depth = 4;
  build.output_buffer_depth = 4;
  FpgaDesign fpga(build);
  fpga.write32(kRegNetWidth, 2);
  fpga.write32(kRegNetHeight, 2);
  fpga.write32(kRegTopology, 0);
  fpga.write32(kRegConfigure, 1);
  fpga.write32(kRegSimCycles, 4);

  // A 3-flit packet from router 0 to router 1 (one torus hop).
  auto push_packet = [&](std::size_t when) {
    const unsigned vc = 0;
    const noc::Flit head{noc::FlitType::kHead,
                         noc::make_head_payload(1, 0, vc, 0)};
    const noc::Flit body{noc::FlitType::kBody, 0x11};
    const noc::Flit tail{noc::FlitType::kTail, 0x22};
    std::size_t ts = when;
    for (const noc::Flit& f : {head, body, tail}) {
      fpga.write32(stimuli_port(0, vc, kPortPushTs),
                   static_cast<std::uint32_t>(ts++));
      fpga.write32(stimuli_port(0, vc, kPortPushData),
                   encode_forward(noc::LinkForward{true, 0, f}));
    }
  };
  auto run_period = [&] { fpga.write32(kRegCtrl, 1); };
  auto drain_outputs = [&](std::size_t router) {
    std::uint32_t fill = fpga.read32(output_port(router, kPortFill));
    std::uint32_t drained = 0;
    while (fill-- > 0) {
      (void)fpga.read32(output_port(router, kPortPopTs));
      (void)fpga.read32(output_port(router, kPortPopData));
      ++drained;
    }
    return drained;
  };

  // Two packets (6 output words) never drained: the 4-deep output buffer
  // of router 1 must overrun.
  push_packet(0);
  run_period();
  push_packet(4);
  for (int i = 0; i < 4; ++i) {
    run_period();
  }
  ASSERT_TRUE(fpga.read32(kRegStatus) & kStatusOverrun);
  EXPECT_TRUE(fpga.output_overrun());

  // Recover: drain what fit, clear the sticky bit (W1C).
  EXPECT_EQ(drain_outputs(1), 4u);
  fpga.write32(kRegStatus, kStatusOverrun);
  EXPECT_FALSE(fpga.read32(kRegStatus) & kStatusOverrun);

  // Later periods with prompt draining run clean: the recovered overrun
  // left no residue.
  const std::uint32_t cycle = fpga.read32(kRegCycleLo);
  push_packet(cycle);
  std::uint32_t delivered = 0;
  for (int i = 0; i < 4; ++i) {
    run_period();
    delivered += drain_outputs(1);
    ASSERT_FALSE(fpga.read32(kRegStatus) & kStatusOverrun);
  }
  EXPECT_EQ(delivered, 3u);  // the whole third packet, nothing stale
}

TEST(FaultInjection, AbortReportsAreStructuredNotSilent) {
  // Saturating drop rates must end in a graceful abort with a reason —
  // never a hang, never silently wrong results.
  FaultRates rates;
  rates.dropped_write = 1.0;  // nothing the host writes ever lands
  const RunResult r = run_with_rates(rates, 3, 200);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.abort_reason.empty());
  EXPECT_EQ(r.packets, 0u);
}

}  // namespace
}  // namespace tmsim::fpga
