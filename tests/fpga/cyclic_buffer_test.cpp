#include "fpga/cyclic_buffer.h"

#include <gtest/gtest.h>

#include "fpga/arm_host.h"
#include "fpga/fpga_design.h"
#include "traffic/harness.h"

namespace tmsim::fpga {
namespace {

TEST(CyclicBuffer, FifoWithTimestamps) {
  CyclicBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.free_space(), 4u);
  buf.push(TimedWord{10, 0xa});
  buf.push(TimedWord{11, 0xb});
  EXPECT_EQ(buf.fill(), 2u);
  EXPECT_EQ(buf.front().timestamp, 10u);
  EXPECT_EQ(buf.pop().data, 0xau);
  EXPECT_EQ(buf.pop().data, 0xbu);
  EXPECT_TRUE(buf.empty());
}

TEST(CyclicBuffer, PopIfDueRespectsTimestamps) {
  CyclicBuffer buf(4);
  buf.push(TimedWord{5, 1});
  buf.push(TimedWord{9, 2});
  EXPECT_FALSE(buf.pop_if_due(4).has_value());
  const auto w = buf.pop_if_due(5);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->data, 1u);
  // The next entry is not due yet, even though the buffer is non-empty.
  EXPECT_FALSE(buf.pop_if_due(8).has_value());
  EXPECT_TRUE(buf.pop_if_due(20).has_value());
}

TEST(CyclicBuffer, OverrunAndUnderrunThrow) {
  CyclicBuffer buf(2);
  EXPECT_THROW(buf.pop(), Error);
  buf.push(TimedWord{0, 0});
  buf.push(TimedWord{0, 1});
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(TimedWord{0, 2}), Error);
}

TEST(CyclicBuffer, DiscardAllEmptiesViaReadPointer) {
  CyclicBuffer buf(4);
  buf.push(TimedWord{1, 1});
  buf.push(TimedWord{2, 2});
  buf.discard_all();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.free_space(), 4u);
}

TEST(CyclicBuffer, StorageBitsAccountTimestamps) {
  CyclicBuffer buf(16);
  EXPECT_EQ(buf.storage_bits(), 16u * (32 + CyclicBuffer::kTimestampBits));
}

TEST(CyclicBuffer, WrapsAtExactlyDepth) {
  // Fill to exactly the depth, drain to empty, and repeat: the pointers
  // must wrap modulo the depth without losing order or capacity.
  CyclicBuffer buf(4);
  std::uint32_t next = 0;
  std::uint32_t expect = 0;
  for (int round = 0; round < 3; ++round) {
    while (!buf.full()) {
      buf.push(TimedWord{next, next});
      ++next;
    }
    EXPECT_EQ(buf.fill(), 4u);
    EXPECT_EQ(buf.free_space(), 0u);
    while (!buf.empty()) {
      EXPECT_EQ(buf.pop().data, expect);
      ++expect;
    }
    EXPECT_EQ(buf.free_space(), 4u);
  }
  EXPECT_EQ(next, 12u);
}

TEST(CyclicBuffer, InterleavedWrapKeepsOrderAroundTheSeam) {
  // Walk the read pointer to every possible offset, then cross the
  // depth boundary with the write pointer while entries are in flight.
  CyclicBuffer buf(3);
  std::uint32_t next = 0;
  std::uint32_t expect = 0;
  for (int step = 0; step < 9; ++step) {
    buf.push(TimedWord{next, next});
    ++next;
    buf.push(TimedWord{next, next});
    ++next;
    EXPECT_EQ(buf.pop().data, expect++);
    EXPECT_EQ(buf.pop().data, expect++);
  }
  EXPECT_TRUE(buf.empty());
}

TEST(CyclicBuffer, FullToEmptyTransitionRestoresCapacity) {
  CyclicBuffer buf(2);
  buf.push(TimedWord{0, 1});
  buf.push(TimedWord{0, 2});
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(TimedWord{0, 3}), Error);
  buf.pop();
  buf.pop();
  EXPECT_TRUE(buf.empty());
  EXPECT_THROW(buf.pop(), Error);
  // The failed push/pop above must not have corrupted the pointers.
  buf.push(TimedWord{7, 9});
  EXPECT_EQ(buf.fill(), 1u);
  EXPECT_EQ(buf.front().timestamp, 7u);
  EXPECT_EQ(buf.pop().data, 9u);
}

TEST(CyclicBuffer, MonitorBuffersDropWhenFullInsteadOfStalling) {
  // "These two buffers cannot influence the traffic in the NoC" (§5.2):
  // with a tiny monitor buffer and much more traffic than it can hold,
  // the run must complete normally and count the dropped samples.
  FpgaBuildConfig build;
  build.monitor_buffer_depth = 2;
  FpgaDesign fpga(build);
  ArmHost::Workload wl;
  wl.be_load = 0.30;
  ArmHost host(fpga, wl);
  host.configure_network(3, 3, noc::Topology::kTorus);
  host.run(400);
  EXPECT_FALSE(host.aborted());
  EXPECT_GT(host.counts().packets_analyzed, 0u);
  EXPECT_GT(fpga.monitor_drops(), 0u);
  // Samples that did fit were still delivered.
  EXPECT_GT(host.access_delay().count(), 0u);
}

}  // namespace
}  // namespace tmsim::fpga
