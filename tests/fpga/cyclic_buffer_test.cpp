#include "fpga/cyclic_buffer.h"

#include <gtest/gtest.h>

namespace tmsim::fpga {
namespace {

TEST(CyclicBuffer, FifoWithTimestamps) {
  CyclicBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.free_space(), 4u);
  buf.push(TimedWord{10, 0xa});
  buf.push(TimedWord{11, 0xb});
  EXPECT_EQ(buf.fill(), 2u);
  EXPECT_EQ(buf.front().timestamp, 10u);
  EXPECT_EQ(buf.pop().data, 0xau);
  EXPECT_EQ(buf.pop().data, 0xbu);
  EXPECT_TRUE(buf.empty());
}

TEST(CyclicBuffer, PopIfDueRespectsTimestamps) {
  CyclicBuffer buf(4);
  buf.push(TimedWord{5, 1});
  buf.push(TimedWord{9, 2});
  EXPECT_FALSE(buf.pop_if_due(4).has_value());
  const auto w = buf.pop_if_due(5);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->data, 1u);
  // The next entry is not due yet, even though the buffer is non-empty.
  EXPECT_FALSE(buf.pop_if_due(8).has_value());
  EXPECT_TRUE(buf.pop_if_due(20).has_value());
}

TEST(CyclicBuffer, OverrunAndUnderrunThrow) {
  CyclicBuffer buf(2);
  EXPECT_THROW(buf.pop(), Error);
  buf.push(TimedWord{0, 0});
  buf.push(TimedWord{0, 1});
  EXPECT_TRUE(buf.full());
  EXPECT_THROW(buf.push(TimedWord{0, 2}), Error);
}

TEST(CyclicBuffer, DiscardAllEmptiesViaReadPointer) {
  CyclicBuffer buf(4);
  buf.push(TimedWord{1, 1});
  buf.push(TimedWord{2, 2});
  buf.discard_all();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.free_space(), 4u);
}

TEST(CyclicBuffer, StorageBitsAccountTimestamps) {
  CyclicBuffer buf(16);
  EXPECT_EQ(buf.storage_bits(), 16u * (32 + CyclicBuffer::kTimestampBits));
}

}  // namespace
}  // namespace tmsim::fpga
