#include "fpga/fpga_design.h"

#include <gtest/gtest.h>

#include "noc/network.h"

namespace tmsim::fpga {
namespace {

using noc::Flit;
using noc::FlitType;
using noc::LinkForward;

std::unique_ptr<FpgaDesign> make_configured(std::size_t w = 3,
                                            std::size_t h = 3,
                                            std::uint32_t topo = 0) {
  auto fpga = std::make_unique<FpgaDesign>(FpgaBuildConfig{});
  fpga->write32(kRegNetWidth, static_cast<std::uint32_t>(w));
  fpga->write32(kRegNetHeight, static_cast<std::uint32_t>(h));
  fpga->write32(kRegTopology, topo);
  fpga->write32(kRegConfigure, 1);
  return fpga;
}

/// Pushes a flit into the stimuli buffer of (router, vc) via the bus.
void push_stimulus(FpgaDesign& fpga, std::size_t r, unsigned vc,
                   SystemCycle ts, const Flit& flit) {
  const LinkForward f{true, static_cast<std::uint8_t>(vc), flit};
  fpga.write32(stimuli_port(r, vc, kPortPushTs),
               static_cast<std::uint32_t>(ts));
  fpga.write32(stimuli_port(r, vc, kPortPushData), encode_forward(f));
}

TEST(FpgaDesign, ConfigurationThroughRegisters) {
  auto fpga_p = make_configured(4, 3, 1);
  FpgaDesign& fpga = *fpga_p;
  EXPECT_TRUE(fpga.configured());
  EXPECT_EQ(fpga.network().width, 4u);
  EXPECT_EQ(fpga.network().height, 3u);
  EXPECT_EQ(fpga.network().topology, noc::Topology::kMesh);
}

TEST(FpgaDesign, RejectsRunBeforeConfigure) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  fpga.write32(kRegSimCycles, 8);
  EXPECT_THROW(fpga.write32(kRegCtrl, 1), Error);
}

TEST(FpgaDesign, RejectsOversizedNetwork) {
  FpgaBuildConfig build;
  build.max_routers = 16;
  FpgaDesign fpga{build};
  fpga.write32(kRegNetWidth, 6);
  fpga.write32(kRegNetHeight, 6);
  EXPECT_THROW(fpga.write32(kRegConfigure, 1), Error);
}

TEST(FpgaDesign, RngRegisterIsTheLfsr) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  fpga.write32(kRegRngSeed, 0xabcd1234u);
  Lfsr32 ref(0xabcd1234u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fpga.read32(kRegRandom), ref.next());
  }
}

TEST(FpgaDesign, PeriodBoundedByStimuliDepth) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  fpga.write32(kRegSimCycles,
               static_cast<std::uint32_t>(fpga.build().stimuli_buffer_depth + 1));
  EXPECT_THROW(fpga.write32(kRegCtrl, 1), Error);
}

TEST(FpgaDesign, PacketTraversesAndLandsInOutputBuffer) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  // Packet 0 → 1 (east, 1 hop) on VC 2, injected from cycle 0.
  push_stimulus(fpga, 0, 2, 0,
                Flit{FlitType::kHead, noc::make_head_payload(1, 0, 2, 7)});
  push_stimulus(fpga, 0, 2, 1, Flit{FlitType::kBody, 0x1234});
  push_stimulus(fpga, 0, 2, 2, Flit{FlitType::kTail, 0x5678});

  fpga.write32(kRegSimCycles, 16);
  fpga.write32(kRegCtrl, 1);
  EXPECT_EQ(fpga.cycles_simulated(), 16u);

  // Nothing at other routers.
  EXPECT_EQ(fpga.read32(output_port(4, kPortFill)), 0u);
  // Three flits at router 1 with consecutive timestamps.
  ASSERT_EQ(fpga.read32(output_port(1, kPortFill)), 3u);
  const auto ts0 = fpga.read32(output_port(1, kPortPopTs));
  const auto d0 = fpga.read32(output_port(1, kPortPopData));
  const LinkForward f0 = noc::decode_forward(d0);
  EXPECT_EQ(f0.flit.type, FlitType::kHead);
  EXPECT_EQ(f0.vc, 2u);
  const auto ts1 = fpga.read32(output_port(1, kPortPopTs));
  (void)fpga.read32(output_port(1, kPortPopData));
  EXPECT_EQ(ts1, ts0 + 1);
  (void)fpga.read32(output_port(1, kPortPopTs));
  const LinkForward f2 =
      noc::decode_forward(fpga.read32(output_port(1, kPortPopData)));
  EXPECT_EQ(f2.flit.type, FlitType::kTail);
  EXPECT_EQ(f2.flit.payload, 0x5678u);
}

TEST(FpgaDesign, MatchesDirectSimulationTimestamps) {
  // The FPGA platform's delivery timestamps must match the golden
  // reference driven with the identical injection schedule.
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  noc::DirectNocSimulation ref(fpga.network());

  const std::vector<Flit> pkt{
      Flit{FlitType::kHead, noc::make_head_payload(2, 2, 0, 3)},
      Flit{FlitType::kBody, 0xaaaa},
      Flit{FlitType::kBody, 0xbbbb},
      Flit{FlitType::kTail, 0xcccc},
  };
  for (std::size_t i = 0; i < pkt.size(); ++i) {
    push_stimulus(fpga, 4, 0, i, pkt[i]);
  }
  fpga.write32(kRegSimCycles, 16);
  fpga.write32(kRegCtrl, 1);

  // Drive the reference identically (credits cannot stall: empty net).
  std::vector<std::pair<SystemCycle, std::uint32_t>> ref_deliveries;
  for (SystemCycle c = 0; c < 16; ++c) {
    if (c < pkt.size()) {
      ref.set_local_input(4, LinkForward{true, 0, pkt[c]});
    }
    ref.step();
    const LinkForward out = ref.local_output(8);
    if (out.valid) {
      ref_deliveries.emplace_back(c, encode_forward(out));
    }
  }
  ASSERT_EQ(fpga.read32(output_port(8, kPortFill)), ref_deliveries.size());
  for (const auto& [ts, data] : ref_deliveries) {
    EXPECT_EQ(fpga.read32(output_port(8, kPortPopTs)), ts);
    EXPECT_EQ(fpga.read32(output_port(8, kPortPopData)), data);
  }
}

TEST(FpgaDesign, DeltaAndClockCountersAdvance) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  fpga.write32(kRegSimCycles, 8);
  fpga.write32(kRegCtrl, 1);
  // Idle 3×3 network: exactly 9 delta cycles per system cycle.
  EXPECT_EQ(fpga.delta_cycles(), 8u * 9);
  EXPECT_EQ(fpga.fpga_clock_cycles(), 2u * 8 * 9 + 8);
  EXPECT_EQ(fpga.read32(kRegDeltaLo), 8u * 9);
  EXPECT_EQ(fpga.read32(kRegCycleLo), 8u);
}

TEST(FpgaDesign, AccessDelayMonitorLogsLateInjection) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  // Two heads on the same VC back-to-back: the second packet's head must
  // wait for credits while the first drains.
  std::size_t t = 0;
  for (int p = 0; p < 2; ++p) {
    push_stimulus(fpga, 0, 1, t++,
                  Flit{FlitType::kHead, noc::make_head_payload(1, 0, 1,
                                                               (unsigned)p)});
    for (int b = 0; b < 5; ++b) {
      push_stimulus(fpga, 0, 1, t++,
                    Flit{b == 4 ? FlitType::kTail : FlitType::kBody,
                         static_cast<std::uint16_t>(b)});
    }
  }
  fpga.write32(kRegSimCycles, 16);
  fpga.write32(kRegCtrl, 1);
  fpga.write32(kRegCtrl, 1);
  const auto fill = fpga.read32(kAccessMonitorBase + kPortFill);
  EXPECT_EQ(fill, 2u);  // one sample per HEAD
  (void)fpga.read32(kAccessMonitorBase + kPortPopTs);
  const auto delay0 = fpga.read32(kAccessMonitorBase + kPortPopData);
  EXPECT_EQ(delay0, 0u);  // first head injected on time
}

TEST(FpgaDesign, UnmappedAccessThrows) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  EXPECT_THROW(fpga.read32(0x30), Error);
  EXPECT_THROW(fpga.write32(0x1ffff, 1), Error);
  EXPECT_THROW(fpga.read32(1u << 17), Error);
}

TEST(FpgaDesign, BusStatsCountTraffic) {
  auto fpga_p = make_configured();
  FpgaDesign& fpga = *fpga_p;
  const auto before = fpga.bus_stats();
  (void)fpga.read32(kRegStatus);
  fpga.write32(kRegSimCycles, 4);
  EXPECT_EQ(fpga.bus_stats().reads, before.reads + 1);
  EXPECT_EQ(fpga.bus_stats().writes, before.writes + 1);
}

}  // namespace
}  // namespace tmsim::fpga
