// §5.2 monitor buffers vs the observability registry: the link-probe and
// access-delay buffers drop when full instead of stalling, and with a
// MetricsRegistry attached every push and every drop is counted under
// fpga.monitor.*. A known 2×2 mesh workload pins the ledgers together.
#include <gtest/gtest.h>

#include "fpga/arm_host.h"
#include "fpga/fpga_design.h"
#include "obs/metrics.h"

namespace tmsim::fpga {
namespace {

struct MonitorCounts {
  std::uint64_t link_samples, link_drops, access_samples, access_drops;
};

MonitorCounts counts_of(const obs::MetricsRegistry& reg) {
  return MonitorCounts{
      reg.counter_value("fpga.monitor.link_probe.samples"),
      reg.counter_value("fpga.monitor.link_probe.drops"),
      reg.counter_value("fpga.monitor.access_delay.samples"),
      reg.counter_value("fpga.monitor.access_delay.drops")};
}

TEST(MonitorBuffers, RegistryMatchesDesignLedgersOn2x2Workload) {
  FpgaBuildConfig build;
  FpgaDesign design{build};
  obs::MetricsRegistry reg;
  design.attach_metrics(&reg);

  ArmHost::Workload wl;
  wl.be_load = 0.15;
  ArmHost host(design, wl);
  host.configure_network(2, 2, noc::Topology::kMesh);
  host.run(600);
  ASSERT_FALSE(host.aborted());

  const MonitorCounts c = counts_of(reg);
  // Traffic flowed, so the access-delay monitor sampled.
  EXPECT_GT(c.access_samples, 0u);
  // Every dropped sample in either buffer is in the design's aggregate
  // drop ledger, and nowhere else.
  EXPECT_EQ(c.link_drops + c.access_drops, design.monitor_drops());
  // The host drains the access-delay buffer every period, so everything
  // the monitor accepted reached the host's accumulator.
  EXPECT_EQ(c.access_samples, host.access_delay().count());
  // Cycle bookkeeping flows through the same registry.
  EXPECT_EQ(reg.counter_value("fpga.system_cycles"),
            design.cycles_simulated());
  EXPECT_EQ(reg.counter_value("fpga.delta_cycles"), design.delta_cycles());
  EXPECT_EQ(reg.counter_value("fpga.clock_cycles"),
            design.fpga_clock_cycles());
  EXPECT_EQ(reg.counter_value("fpga.stimuli.rejects"),
            design.stimuli_rejects());
}

TEST(MonitorBuffers, TinyBufferDropsAreCountedNotStalled) {
  // A 2-entry monitor buffer under the same workload must overflow; the
  // §5.2 contract is that overflow drops samples without influencing
  // the traffic, so the run completes and the drops are counted.
  FpgaBuildConfig build;
  build.monitor_buffer_depth = 2;
  FpgaDesign design{build};
  obs::MetricsRegistry reg;
  design.attach_metrics(&reg);

  ArmHost::Workload wl;
  wl.be_load = 0.15;
  ArmHost host(design, wl);
  host.configure_network(2, 2, noc::Topology::kMesh);
  host.run(600);
  ASSERT_FALSE(host.aborted());

  const MonitorCounts c = counts_of(reg);
  EXPECT_EQ(c.link_drops + c.access_drops, design.monitor_drops());
  // Retrieved samples can never exceed accepted pushes.
  EXPECT_GE(c.access_samples, host.access_delay().count());
  // And the dropped samples really are missing from the host's view:
  // accepted == retrieved here because the host drains every period.
  EXPECT_EQ(c.access_samples, host.access_delay().count());
}

TEST(MonitorBuffers, DetachRestoresZeroOverheadPath) {
  FpgaBuildConfig build;
  FpgaDesign design{build};
  obs::MetricsRegistry reg;
  design.attach_metrics(&reg);
  design.attach_metrics(nullptr);  // detach before any traffic

  ArmHost::Workload wl;
  wl.be_load = 0.10;
  ArmHost host(design, wl);
  host.configure_network(2, 2, noc::Topology::kMesh);
  host.run(200);
  ASSERT_FALSE(host.aborted());

  // The instruments were registered at attach time but never advanced.
  EXPECT_EQ(reg.counter_value("fpga.system_cycles"), 0u);
  EXPECT_EQ(reg.counter_value("fpga.monitor.access_delay.samples"), 0u);
  EXPECT_GT(design.cycles_simulated(), 0u);
}

TEST(MonitorBuffers, TwoDesignsSameWorkloadAgreeOnCounters) {
  // Determinism: the same seed and workload on two design instances
  // produce identical monitor ledgers — the counters are a function of
  // the simulated traffic, not of wall-clock accidents.
  auto run = [](obs::MetricsRegistry& reg) {
    FpgaBuildConfig build;
    FpgaDesign design{build};
    design.attach_metrics(&reg);
    ArmHost::Workload wl;
    wl.be_load = 0.15;
    ArmHost host(design, wl);
    host.configure_network(2, 2, noc::Topology::kMesh);
    host.run(400);
  };
  obs::MetricsRegistry a, b;
  run(a);
  run(b);
  EXPECT_EQ(a.counter_value("fpga.monitor.access_delay.samples"),
            b.counter_value("fpga.monitor.access_delay.samples"));
  EXPECT_EQ(a.counter_value("fpga.monitor.link_probe.samples"),
            b.counter_value("fpga.monitor.link_probe.samples"));
  EXPECT_EQ(a.counter_value("fpga.delta_cycles"),
            b.counter_value("fpga.delta_cycles"));
}

}  // namespace
}  // namespace tmsim::fpga
