// Address-map robustness: the memory interface is the FPGA design's only
// attack surface; every address in the 17-bit space must either behave
// as documented or throw tmsim::Error — never corrupt state or crash.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "fpga/fpga_design.h"

namespace tmsim::fpga {
namespace {

std::unique_ptr<FpgaDesign> configured(std::size_t w = 4, std::size_t h = 4) {
  auto fpga = std::make_unique<FpgaDesign>(FpgaBuildConfig{});
  fpga->write32(kRegNetWidth, static_cast<std::uint32_t>(w));
  fpga->write32(kRegNetHeight, static_cast<std::uint32_t>(h));
  fpga->write32(kRegTopology, 1);  // mesh
  fpga->write32(kRegConfigure, 1);
  return fpga;
}

TEST(AddressMap, PortHelpers) {
  EXPECT_EQ(stimuli_port(0, 0, kPortFree), kStimuliBase);
  EXPECT_EQ(stimuli_port(0, 1, kPortPushTs), kStimuliBase + 5u);
  EXPECT_EQ(stimuli_port(2, 3, kPortPushData), kStimuliBase + 2 * 16 + 12 + 2);
  EXPECT_EQ(output_port(0, kPortFill), kOutputBase);
  EXPECT_EQ(output_port(255, kPortPopData), kOutputBase + 255 * 8 + 2);
  EXPECT_EQ(output_port(7, kPortTag), kOutputBase + 7 * 8 + 4);
  // Regions must not overlap.
  EXPECT_LT(stimuli_port(255, 3, 3), kOutputBase);
  EXPECT_LT(output_port(255, kPortAck), kLinkMonitorBase);
  EXPECT_LT(kLinkMonitorBase + kPortAck, kAccessMonitorBase);
  EXPECT_LT(kAccessMonitorBase + kPortAck, kAddrSpaceWords);
}

TEST(AddressMap, RandomAccessesNeverCrash) {
  // Fuzz the bus: every (read|write, addr) either succeeds or throws
  // tmsim::Error. The design must stay usable afterwards.
  auto fpga = configured();
  SplitMix64 rng(2211);
  std::size_t ok = 0, rejected = 0;
  for (int i = 0; i < 20000; ++i) {
    const Addr addr = static_cast<Addr>(rng.next_below(kAddrSpaceWords + 64));
    const bool write = rng.next_below(2) == 0;
    // Avoid the two registers with global side effects that would make
    // the fuzz loop degenerate (reconfigure wipes buffers; ctrl needs a
    // loaded design) — they are exercised by dedicated tests.
    if (write && (addr == kRegConfigure || addr == kRegCtrl)) {
      continue;
    }
    try {
      if (write) {
        fpga->write32(addr, static_cast<std::uint32_t>(rng.next()));
      } else {
        (void)fpga->read32(addr);
      }
      ++ok;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(rejected, 0u);
  // Still functional: reconfigure (clearing the garbage the fuzzer may
  // have pushed into stimuli buffers) and run a period.
  fpga->write32(kRegConfigure, 1);
  fpga->write32(kRegSimCycles, 8);
  fpga->write32(kRegCtrl, 1);
  EXPECT_GE(fpga->cycles_simulated(), 8u);
}

TEST(AddressMap, StimuliPortsAreIndependentPerVc) {
  auto fpga = configured();
  fpga->write32(stimuli_port(1, 0, kPortPushTs), 0);
  fpga->write32(stimuli_port(1, 0, kPortPushData),
                noc::encode_forward(noc::LinkForward{
                    true, 0, noc::Flit{noc::FlitType::kHead,
                                       noc::make_head_payload(2, 0, 0, 0)}}));
  const std::size_t depth = fpga->build().stimuli_buffer_depth;
  EXPECT_EQ(fpga->read32(stimuli_port(1, 0, kPortFree)), depth - 1);
  EXPECT_EQ(fpga->read32(stimuli_port(1, 1, kPortFree)), depth);
  EXPECT_EQ(fpga->read32(stimuli_port(2, 0, kPortFree)), depth);
}

TEST(AddressMap, StimuliOverrunRejected) {
  auto fpga = configured();
  const std::size_t depth = fpga->build().stimuli_buffer_depth;
  const std::uint32_t data = noc::encode_forward(noc::LinkForward{
      true, 2, noc::Flit{noc::FlitType::kHead,
                         noc::make_head_payload(1, 0, 2, 0)}});
  for (std::size_t i = 0; i < depth; ++i) {
    fpga->write32(stimuli_port(0, 2, kPortPushTs),
                  static_cast<std::uint32_t>(i));
    fpga->write32(stimuli_port(0, 2, kPortPushData), data);
  }
  EXPECT_EQ(fpga->read32(stimuli_port(0, 2, kPortFree)), 0u);
  fpga->write32(stimuli_port(0, 2, kPortPushTs), depth);
  EXPECT_THROW(fpga->write32(stimuli_port(0, 2, kPortPushData), data),
               Error);
}

TEST(AddressMap, OutputPortUnderrunRejected) {
  auto fpga = configured();
  EXPECT_EQ(fpga->read32(output_port(0, kPortFill)), 0u);
  EXPECT_THROW(fpga->read32(output_port(0, kPortPopTs)), Error);
  EXPECT_THROW(fpga->read32(output_port(0, kPortPopData)), Error);
}

TEST(AddressMap, OutOfRangeRouterRejected) {
  auto fpga = configured(3, 3);  // 9 routers
  EXPECT_THROW(fpga->read32(stimuli_port(9, 0, kPortFree)), Error);
  EXPECT_THROW(fpga->read32(output_port(9, kPortFill)), Error);
}

TEST(Reconfiguration, ResizeResetsStateAndCounters) {
  auto fpga = configured(4, 4);
  fpga->write32(kRegSimCycles, 8);
  fpga->write32(kRegCtrl, 1);
  EXPECT_GT(fpga->delta_cycles(), 0u);
  // Software reconfigures to a different size (§7.1): counters reset,
  // new geometry takes effect.
  fpga->write32(kRegNetWidth, 2);
  fpga->write32(kRegNetHeight, 3);
  fpga->write32(kRegConfigure, 1);
  EXPECT_EQ(fpga->cycles_simulated(), 0u);
  EXPECT_EQ(fpga->delta_cycles(), 0u);
  EXPECT_EQ(fpga->network().num_routers(), 6u);
  fpga->write32(kRegCtrl, 1);
  EXPECT_EQ(fpga->delta_cycles(), 8u * 6);  // idle minimum, new size
}

TEST(Reconfiguration, TopologyIsARegister) {
  auto fpga = configured();
  fpga->write32(kRegTopology, 0);
  fpga->write32(kRegConfigure, 1);
  EXPECT_EQ(fpga->network().topology, noc::Topology::kTorus);
  fpga->write32(kRegTopology, 1);
  fpga->write32(kRegConfigure, 1);
  EXPECT_EQ(fpga->network().topology, noc::Topology::kMesh);
}

TEST(Monitors, LinkProbeRecordsLocalDeliveries) {
  auto fpga = configured();
  fpga->write32(kRegLinkProbe, (5u << 8) | 0u);  // router 5, local port
  // One packet to router 5.
  const auto pkt_head = noc::LinkForward{
      true, 0,
      noc::Flit{noc::FlitType::kHead, noc::make_head_payload(1, 1, 0, 9)}};
  const auto pkt_tail = noc::LinkForward{
      true, 0, noc::Flit{noc::FlitType::kTail, 0xabcd}};
  fpga->write32(stimuli_port(0, 0, kPortPushTs), 0);
  fpga->write32(stimuli_port(0, 0, kPortPushData), noc::encode_forward(pkt_head));
  fpga->write32(stimuli_port(0, 0, kPortPushTs), 1);
  fpga->write32(stimuli_port(0, 0, kPortPushData), noc::encode_forward(pkt_tail));
  fpga->write32(kRegSimCycles, 16);
  fpga->write32(kRegCtrl, 1);
  const auto fill = fpga->read32(kLinkMonitorBase + kPortFill);
  EXPECT_EQ(fill, 2u);  // both flits of the packet crossed the probe
  (void)fpga->read32(kLinkMonitorBase + kPortPopTs);
  const auto first = fpga->read32(kLinkMonitorBase + kPortPopData);
  EXPECT_EQ(noc::decode_forward(first).flit.type, noc::FlitType::kHead);
}

}  // namespace
}  // namespace tmsim::fpga
