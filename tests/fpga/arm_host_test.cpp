#include "fpga/arm_host.h"

#include <gtest/gtest.h>

#include "fpga/resource_model.h"
#include "traffic/workloads.h"

namespace tmsim::fpga {
namespace {

TEST(ArmHost, EndToEndBeWorkloadDeliversPackets) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  ArmHost::Workload wl;
  wl.be_load = 0.08;
  ArmHost host(fpga, wl);
  host.configure_network(4, 4, noc::Topology::kMesh);
  host.run(2000);
  EXPECT_FALSE(host.overloaded());
  EXPECT_GE(fpga.cycles_simulated(), 2000u);
  EXPECT_GT(host.packets_delivered(), 20u);
  const auto& lat = host.latency(traffic::PacketClass::kBestEffort);
  EXPECT_GT(lat.count(), 20u);
  EXPECT_GT(lat.mean(), 5.0);   // at least serialization + a hop
  EXPECT_LT(lat.mean(), 500.0);
  // Counts populated for the timing model.
  const PhaseCounts& c = host.counts();
  EXPECT_GT(c.flits_generated, 100u);
  EXPECT_GT(c.load_bus_writes, 2 * c.flits_generated - 10);
  EXPECT_GT(c.retrieve_bus_reads, c.flits_analyzed);
  EXPECT_GT(c.randoms_drawn, 0u);
  EXPECT_GT(c.periods, 10u);
  EXPECT_EQ(c.fpga_clock_cycles, fpga.fpga_clock_cycles());
}

TEST(ArmHost, GtStreamsDeliverWithBoundedLatency) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  noc::NetworkConfig net;
  net.width = 4;
  net.height = 4;
  ArmHost::Workload wl;
  traffic::GtStream s;
  s.src = 0;
  s.dst = 2;
  s.vc = 0;
  s.period = 300;
  wl.gt_streams.push_back(s);
  ArmHost host(fpga, wl);
  host.configure_network(4, 4, noc::Topology::kMesh);
  host.run(1500);
  const auto& lat = host.latency(traffic::PacketClass::kGuaranteedThroughput);
  EXPECT_GE(lat.count(), 3u);
  // 129 flits, 2 hops, empty network, creation == intended injection:
  // latency close to pure serialization.
  EXPECT_GE(lat.min(), 129.0);
  EXPECT_LT(lat.max(), 250.0);
  // Access delays observed by the monitor are small on an empty network.
  EXPECT_LT(host.access_delay().max(), 32.0);
}

TEST(ArmHost, FpgaAndSoftwareRngSimulateIdenticalTraffic) {
  // §8's RNG-offload ablation compares *speed*, not behaviour: both modes
  // must deliver the exact same packets.
  auto run = [](bool on_fpga) {
    FpgaDesign fpga{FpgaBuildConfig{}};
    ArmHost::Workload wl;
    wl.be_load = 0.10;
    wl.rng_on_fpga = on_fpga;
    ArmHost host(fpga, wl);
    host.configure_network(3, 3, noc::Topology::kMesh);
    host.run(800);
    return std::tuple(host.packets_delivered(),
                      host.latency(traffic::PacketClass::kBestEffort).sum(),
                      host.counts().randoms_drawn,
                      host.counts().generate_bus_reads);
  };
  const auto [pkts_hw, lat_hw, rnd_hw, busr_hw] = run(true);
  const auto [pkts_sw, lat_sw, rnd_sw, busr_sw] = run(false);
  EXPECT_EQ(pkts_hw, pkts_sw);
  EXPECT_EQ(lat_hw, lat_sw);
  EXPECT_EQ(rnd_hw, rnd_sw);
  EXPECT_GT(busr_hw, busr_sw);  // hardware mode reads the RNG register
}

TEST(ArmHost, OverloadDetectedAndStopped) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  ArmHost::Workload wl;
  wl.be_load = 0.9;
  wl.be_vcs = {0, 1, 2, 3};
  wl.overload_periods = 10;
  ArmHost host(fpga, wl);
  host.configure_network(3, 3, noc::Topology::kMesh);
  host.run(60000);
  EXPECT_TRUE(host.overloaded());
  EXPECT_LT(fpga.cycles_simulated(), 60000u);
}

// Forwards to a real design but forces one stimuli port's free-space
// register to read 0 during chosen periods — a congested VC from the
// host's point of view, without faults.
class PortBlockerBus final : public BusInterface {
 public:
  PortBlockerBus(FpgaDesign& inner, Addr blocked_free_addr)
      : inner_(inner), blocked_(blocked_free_addr) {}

  std::uint32_t read32(Addr addr) override {
    ++stats_.reads;
    if (addr == blocked_ && blocked_now()) {
      return 0;
    }
    return inner_.read32(addr);
  }
  void write32(Addr addr, std::uint32_t value) override {
    ++stats_.writes;
    if (addr == kRegCtrl) {
      ++periods_;  // one run command per period
    }
    inner_.write32(addr, value);
  }
  const BusStats& bus_stats() const override { return stats_; }

  /// When true, every period is blocked; otherwise 4-blocked/1-open
  /// bursts, always below a 5-period overload threshold.
  void set_always_blocked(bool v) { always_ = v; }

 private:
  bool blocked_now() const { return always_ || periods_ % 5 != 4; }

  FpgaDesign& inner_;
  Addr blocked_;
  BusStats stats_;
  std::uint64_t periods_ = 0;
  bool always_ = false;
};

TEST(ArmHost, BriefCongestionBurstsDoNotFlagOverload) {
  // Regression for the overload accounting: the stall counter must reset
  // whenever the port accepts *any* pending word, so repeated
  // sub-threshold congestion bursts never accumulate into a false
  // overload stop.
  auto run = [](bool always_blocked) {
    FpgaDesign fpga{FpgaBuildConfig{}};
    PortBlockerBus bus(fpga, stimuli_port(0, 0, kPortFree));
    bus.set_always_blocked(always_blocked);
    ArmHost::Workload wl;
    traffic::GtStream s;  // keeps port (0, 0) backlogged every period
    s.src = 0;
    s.dst = 5;
    s.vc = 0;
    s.period = 40;
    wl.gt_streams.push_back(s);
    wl.overload_periods = 5;
    ArmHost host(bus, fpga.build(), wl);
    host.configure_network(3, 3, noc::Topology::kMesh);
    host.run(always_blocked ? 60000 : 1600);
    return std::tuple(host.overloaded(), host.aborted(),
                      host.cycles_simulated());
  };
  // 4-blocked/1-open bursts stay below the 5-period threshold forever.
  const auto [overloaded, aborted, cycles] = run(false);
  EXPECT_FALSE(overloaded);
  EXPECT_FALSE(aborted);
  EXPECT_EQ(cycles, 1600u);
  // Control: permanently blocked must still trip the overload stop.
  const auto [overloaded2, aborted2, cycles2] = run(true);
  EXPECT_TRUE(overloaded2);
  EXPECT_FALSE(aborted2);
  EXPECT_LT(cycles2, 60000u);
}

TEST(TimingModel, RepresentativeWorkloadLandsInPaperRanges) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  ArmHost::Workload wl;
  wl.be_load = 0.10;
  ArmHost host(fpga, wl);
  host.configure_network(6, 6, noc::Topology::kMesh);
  host.run(4000);
  ASSERT_FALSE(host.overloaded());

  const TimingModel model;
  const PhaseTimes t = model.evaluate(host.counts());
  // Table 4 shapes: generation dominates, simulation is hidden by the
  // Fig. 8 overlap, every share within (loosened) paper ranges.
  EXPECT_GT(t.share_generate(), 0.35);
  EXPECT_LT(t.share_generate(), 0.75);
  EXPECT_GT(t.share_load(), 0.04);
  EXPECT_LT(t.share_load(), 0.30);
  EXPECT_LT(t.share_simulate(), 0.05);
  EXPECT_GT(t.share_retrieve(), 0.02);
  EXPECT_LT(t.share_retrieve(), 0.25);
  EXPECT_LT(t.share_analyze(), 0.45);
  // Table 3 magnitude: tens of kHz.
  EXPECT_GT(t.cycles_per_second, 5e3);
  EXPECT_LT(t.cycles_per_second, 2e5);
  // §6's theoretical ceiling for 6×6.
  EXPECT_NEAR(model.max_simulation_hz(36), 91.6e3, 1e3);
}

TEST(TimingModel, ShardedEstimateScalesAndChargesSyncCost) {
  FpgaDesign fpga{FpgaBuildConfig{}};
  ArmHost::Workload wl;
  wl.be_load = 0.10;
  ArmHost host(fpga, wl);
  host.configure_network(6, 6, noc::Topology::kMesh);
  host.run(2000);

  const TimingModel model;
  const PhaseTimes seq = model.evaluate(host.counts());
  const ShardedEstimate one =
      model.sharded_simulate_estimate(host.counts(), 1, /*imbalance=*/1.0,
                                      /*sync_fpga_cycles=*/0.0);
  // One shard with no barrier cost is exactly the sequential engine.
  EXPECT_NEAR(one.simulate_raw, seq.simulate_raw, 1e-12);
  EXPECT_NEAR(one.speedup, 1.0, 1e-9);

  const ShardedEstimate two = model.sharded_simulate_estimate(host.counts(), 2);
  const ShardedEstimate four =
      model.sharded_simulate_estimate(host.counts(), 4);
  // More shards shorten the simulate phase, sublinearly (imbalance and
  // per-superstep barrier cost are charged).
  EXPECT_LT(two.simulate_raw, seq.simulate_raw);
  EXPECT_LT(four.simulate_raw, two.simulate_raw);
  EXPECT_GT(two.speedup, 1.0);
  EXPECT_GT(four.speedup, two.speedup);
  EXPECT_LT(four.speedup, 4.0);
  // The headline rate obeys the Fig. 8 overlap: ARM-bound workloads see
  // no wall-clock gain from a faster simulate phase.
  EXPECT_GE(four.cycles_per_second, seq.cycles_per_second - 1e-9);
  // Barrier rounds cost: charging more supersteps per cycle must slow
  // the estimate.
  const ShardedEstimate chatty = model.sharded_simulate_estimate(
      host.counts(), 4, 1.1, 4.0, /*supersteps_per_cycle=*/8.0);
  EXPECT_GT(chatty.simulate_raw, four.simulate_raw);
}

TEST(TimingModel, SoftwareRandSlowsGenerationLikeThePaperSays) {
  // §8: offloading random numbers to the FPGA "gave an extra 50%
  // simulation speed" — i.e. software rand() costs roughly half of the
  // total again.
  auto counts = [](bool on_fpga) {
    FpgaDesign fpga{FpgaBuildConfig{}};
    ArmHost::Workload wl;
    wl.be_load = 0.10;
    wl.rng_on_fpga = on_fpga;
    ArmHost host(fpga, wl);
    host.configure_network(6, 6, noc::Topology::kMesh);
    host.run(2000);
    return host.counts();
  };
  const TimingModel model;
  const double cps_hw = model.evaluate(counts(true)).cycles_per_second;
  const double cps_sw = model.evaluate(counts(false)).cycles_per_second;
  EXPECT_GT(cps_hw / cps_sw, 1.2);
  EXPECT_LT(cps_hw / cps_sw, 2.2);
}

TEST(ResourceModel, BramIsTheBindingConstraint) {
  const ResourceModel model;
  const ResourceReport rep = model.simulator_usage(FpgaBuildConfig{});
  EXPECT_LE(rep.total_brams, model.budget().block_rams);
  EXPECT_LE(rep.total_slices, model.budget().slices);
  // Table 2's conclusion: RAM utilization far above logic utilization.
  EXPECT_GT(rep.bram_fraction, 0.6);
  EXPECT_LT(rep.bram_fraction, 1.0);
  EXPECT_LT(rep.slice_fraction, 0.35);
  EXPECT_GT(rep.bram_fraction, 2 * rep.slice_fraction);
  ASSERT_EQ(rep.rows.size(), 5u);
  // Router state memory and stimuli buffers dominate the BRAM budget.
  EXPECT_GT(rep.rows[0].brams, 30u);
  EXPECT_GT(rep.rows[1].brams, 30u);
  EXPECT_EQ(rep.rows[3].brams, 0u);  // RNG
  EXPECT_EQ(rep.rows[4].brams, 0u);  // control
}

TEST(ResourceModel, ParallelInstantiationLimitNearPaper) {
  const ResourceModel model;
  noc::RouterConfig rc;  // 4 VCs, 4-deep queues
  const std::size_t limit = model.max_parallel_routers(rc, 6);
  // §4: "approximately 24 routers in a Virtex-II 8000" with a 6-bit
  // datapath. Model tolerance: same dozens-not-hundreds magnitude.
  EXPECT_GE(limit, 12u);
  EXPECT_LE(limit, 48u);
  // The full 16-bit datapath fits even fewer.
  EXPECT_LT(model.max_parallel_routers(rc, 16), limit);
  // Either way, nowhere near the 256 routers the sequential simulator
  // handles — the point of the paper.
  EXPECT_LT(limit, 64u);
}

TEST(ResourceModel, BramsForGeometry) {
  EXPECT_EQ(ResourceModel::brams_for(512, 36), 1u);
  EXPECT_EQ(ResourceModel::brams_for(512, 37), 2u);
  EXPECT_EQ(ResourceModel::brams_for(256, 1), 1u);
  EXPECT_THROW(ResourceModel::brams_for(1024, 8), Error);
}

}  // namespace
}  // namespace tmsim::fpga
