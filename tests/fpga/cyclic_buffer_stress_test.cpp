// Property/stress tests for fpga::CyclicBuffer — the ARM↔FPGA decoupling
// buffer of §5.2 and the farm's completion-feed substrate
// (farm::ResultStore). Three angles:
//   1. randomized differential test against a std::deque reference model
//      across thousands of mixed push/pop/pop_if_due/discard ops, with
//      full/empty/fill checked after every step (wrap-around coverage far
//      past capacity);
//   2. explicit full/empty disambiguation at every fill level, including
//      the capacity boundary where head == tail both ways;
//   3. a mutex-guarded concurrent producer/consumer pair, which is what
//      `ctest -L farm` runs under ThreadSanitizer via the tsan preset —
//      the same external-locking discipline ResultStore uses.
#include "fpga/cyclic_buffer.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tmsim::fpga {
namespace {

TEST(CyclicBufferStress, RandomizedOpsMatchDequeReference) {
  // Small capacities maximize wrap-around events per operation.
  for (std::size_t capacity : {1u, 2u, 3u, 7u, 16u}) {
    CyclicBuffer buf(capacity);
    std::deque<TimedWord> ref;
    SplitMix64 rng(0x5eedull * capacity + 1);
    SystemCycle now = 0;

    for (int op = 0; op < 5000; ++op) {
      switch (rng.next_below(8)) {
        case 0:
        case 1:
        case 2: {  // push (respecting flow control, as §5.3 requires)
          if (buf.free_space() > 0) {
            const TimedWord w{now + rng.next_below(4),
                              static_cast<std::uint32_t>(rng.next())};
            buf.push(w);
            ref.push_back(w);
          } else {
            EXPECT_TRUE(buf.full());
          }
          break;
        }
        case 3:
        case 4: {  // pop
          if (!buf.empty()) {
            ASSERT_FALSE(ref.empty());
            EXPECT_EQ(buf.front(), ref.front());
            EXPECT_EQ(buf.pop(), ref.front());
            ref.pop_front();
          }
          break;
        }
        case 5:
        case 6: {  // pop_if_due — timestamp-gated consumption
          const auto got = buf.pop_if_due(now);
          if (!ref.empty() && ref.front().timestamp <= now) {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, ref.front());
            ref.pop_front();
          } else {
            EXPECT_FALSE(got.has_value());
          }
          now += rng.next_below(3);
          break;
        }
        default: {  // rare discard_all (§5.3 step 4)
          if (rng.next_below(64) == 0) {
            buf.discard_all();
            ref.clear();
          }
          break;
        }
      }
      ASSERT_EQ(buf.fill(), ref.size());
      ASSERT_EQ(buf.empty(), ref.empty());
      ASSERT_EQ(buf.full(), ref.size() == capacity);
      ASSERT_EQ(buf.free_space(), capacity - ref.size());
    }
  }
}

TEST(CyclicBufferStress, FullAndEmptyDisambiguatedAtEveryFillLevel) {
  constexpr std::size_t kCap = 5;
  CyclicBuffer buf(kCap);
  // Rotate the internal head through several laps so the full/empty
  // check happens at every head position, not just head == 0.
  for (std::uint32_t lap = 0; lap < 3 * kCap; ++lap) {
    ASSERT_TRUE(buf.empty());
    ASSERT_FALSE(buf.full());
    for (std::size_t i = 0; i < kCap; ++i) {
      ASSERT_EQ(buf.fill(), i);
      buf.push({lap, static_cast<std::uint32_t>(i)});
      ASSERT_FALSE(buf.empty());
      ASSERT_EQ(buf.full(), i + 1 == kCap);
    }
    EXPECT_THROW(buf.push({lap, 999}), std::exception);  // overrun guarded
    for (std::size_t i = 0; i < kCap; ++i) {
      ASSERT_EQ(buf.pop().data, i);
    }
    // Stagger the head by one for the next lap.
    buf.push({lap, 0});
    buf.pop();
  }
}

TEST(CyclicBufferStress, ConcurrentProducerConsumerUnderLock) {
  // The ResultStore completion feed shares one buffer between publisher
  // threads and a draining reader, serialized by an external mutex —
  // this reproduces that discipline so TSan can vet it.
  constexpr std::uint32_t kWords = 20000;
  CyclicBuffer buf(8);
  std::mutex mu;
  std::vector<std::uint32_t> consumed;
  consumed.reserve(kWords);

  std::thread producer([&] {
    std::uint32_t next = 0;
    while (next < kWords) {
      std::lock_guard<std::mutex> lk(mu);
      while (next < kWords && !buf.full()) {
        buf.push({next, next});
        ++next;
      }
    }
  });
  std::thread consumer([&] {
    while (consumed.size() < kWords) {
      std::lock_guard<std::mutex> lk(mu);
      while (!buf.empty()) {
        consumed.push_back(buf.pop().data);
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(consumed.size(), kWords);
  for (std::uint32_t i = 0; i < kWords; ++i) {
    ASSERT_EQ(consumed[i], i) << "FIFO order violated at " << i;
  }
}

}  // namespace
}  // namespace tmsim::fpga
