#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tmsim::obs {
namespace {

TEST(MetricsRegistry, CounterRegistrationReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("engine.cycles");
  a.add(3);
  // Re-registering the same (name, labels) yields the same instrument.
  Counter& b = reg.counter("engine.cycles");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // A different label is a different instrument.
  Counter& c = reg.counter("engine.cycles", "shard=1");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry reg;
  reg.gauge("host.share.generate").set(0.55);
  EXPECT_DOUBLE_EQ(reg.gauge_value("host.share.generate"), 0.55);
  HistogramMetric& h = reg.histogram("engine.deltas_per_cycle", 1.0, 16);
  h.observe(3.0);
  h.observe(3.0);
  EXPECT_EQ(reg.find_histogram("engine.deltas_per_cycle")
                ->histogram()
                .count(),
            2u);
  // Re-finding ignores the bucket arguments.
  EXPECT_EQ(&reg.histogram("engine.deltas_per_cycle", 99.0, 1), &h);
}

TEST(MetricsRegistry, LookupsWithoutRegistration) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("nope", "", -1.0), -1.0);
  EXPECT_EQ(reg.size(), 0u);  // find_* never registers
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormedAndOrdered) {
  MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist", 2.0, 4).observe(3.0);
  std::ostringstream os;
  reg.write_json(os, {{"git_sha", "abc\"123"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"a.count\""), std::string::npos);
  EXPECT_NE(out.find("abc\\\"123"), std::string::npos);  // escaped extra
  // Registration order is preserved.
  EXPECT_LT(out.find("a.count"), out.find("b.gauge"));
  EXPECT_LT(out.find("b.gauge"), out.find("c.hist"));
}

TEST(MetricsRegistry, TableSnapshotMentionsEveryRow) {
  MetricsRegistry reg;
  reg.counter("x.one").add(1);
  reg.gauge("y.two").set(2.0);
  std::ostringstream os;
  reg.write_table(os);
  EXPECT_NE(os.str().find("x.one"), std::string::npos);
  EXPECT_NE(os.str().find("y.two"), std::string::npos);
}

TEST(MetricsRegistry, NamesMatchingGlob) {
  MetricsRegistry reg;
  reg.counter("engine.cycles");
  reg.counter("engine.delta_cycles");
  reg.counter("host.periods");
  EXPECT_EQ(reg.names_matching("engine.*").size(), 2u);
  EXPECT_EQ(reg.names_matching("*").size(), 3u);
  EXPECT_EQ(reg.names_matching("fpga.*").size(), 0u);
}

TEST(GlobMatch, StarQuestionAndLiterals) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("r0.*", "r0.fwd.north"));
  EXPECT_FALSE(glob_match("r0.*", "r1.fwd.north"));
  EXPECT_TRUE(glob_match("r?.credit.*", "r3.credit.local"));
  EXPECT_FALSE(glob_match("r?.credit.*", "r12.credit.local"));
  EXPECT_TRUE(glob_match("*.north", "r5.fwd.north"));
  EXPECT_FALSE(glob_match("*.north", "r5.fwd.south"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace tmsim::obs
