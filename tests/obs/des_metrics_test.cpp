// des.* metrics export: KernelStats published through the same registry
// as the engine.* counters, so the §6 DES-overhead comparison reads off
// one metrics surface.
#include "obs/des_sink.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tmsim::obs {
namespace {

TEST(DesSink, ExportsAllFourCounters) {
  des::KernelStats stats;
  stats.ticks = 11;
  stats.delta_cycles = 22;
  stats.process_activations = 33;
  stats.signal_commits = 44;

  MetricsRegistry registry;
  export_kernel_stats(stats, registry);
  EXPECT_EQ(registry.counter_value("des.ticks"), 11u);
  EXPECT_EQ(registry.counter_value("des.delta_cycles"), 22u);
  EXPECT_EQ(registry.counter_value("des.process_activations"), 33u);
  EXPECT_EQ(registry.counter_value("des.signal_commits"), 44u);
}

TEST(DesSink, RefreshOverwritesAndLabelsSeparateKernels) {
  MetricsRegistry registry;
  des::KernelStats stats;
  stats.ticks = 5;
  export_kernel_stats(stats, registry, "kernel=a");
  stats.ticks = 9;  // cumulative source: re-export refreshes, not adds
  export_kernel_stats(stats, registry, "kernel=a");
  EXPECT_EQ(registry.counter_value("des.ticks", "kernel=a"), 9u);

  des::KernelStats other;
  other.ticks = 2;
  export_kernel_stats(other, registry, "kernel=b");
  EXPECT_EQ(registry.counter_value("des.ticks", "kernel=a"), 9u);
  EXPECT_EQ(registry.counter_value("des.ticks", "kernel=b"), 2u);
}

}  // namespace
}  // namespace tmsim::obs
