// The zero-overhead-when-disabled contract (DESIGN.md §10): a run with
// no observer attached must be bit-identical to the seed behaviour, and
// attaching the full sink stack must not perturb simulation results —
// observability reads state, never writes it.
#include <gtest/gtest.h>

#include <sstream>

#include "core/noc_block.h"
#include "obs/chrome_trace.h"
#include "obs/engine_sinks.h"
#include "obs/metrics.h"
#include "traffic/harness.h"

namespace tmsim {
namespace {

noc::NetworkConfig small_net() {
  noc::NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = noc::Topology::kMesh;
  net.router.queue_depth = 2;
  return net;
}

struct RunResult {
  std::uint64_t delivered = 0;
  double latency_sum = 0.0;
  std::uint64_t cycles = 0;
};

/// Runs the workload, optionally under the full observer stack, and
/// returns the statistics plus a hash-free snapshot via the caller's
/// engine inspection lambda.
RunResult run_workload(core::SeqNocSimulation& sim, std::size_t cycles) {
  traffic::TrafficHarness::Options opts;
  opts.seed = 77;
  traffic::TrafficHarness h(sim, opts);
  h.set_be_load(0.12);
  h.run(cycles);
  const auto be = h.summarize(traffic::PacketClass::kBestEffort);
  RunResult r;
  r.delivered = be.delivered;
  r.latency_sum = be.network.sum();
  r.cycles = sim.cycle();
  return r;
}

void expect_same_final_state(const core::Engine& a, const core::Engine& b) {
  ASSERT_EQ(a.model().num_links(), b.model().num_links());
  for (core::LinkId l = 0; l < a.model().num_links(); ++l) {
    ASSERT_TRUE(a.link_value(l) == b.link_value(l))
        << "link " << a.model().link(l).name << " diverged";
  }
  for (core::BlockId blk = 0; blk < a.model().num_blocks(); ++blk) {
    ASSERT_TRUE(a.block_state(blk) == b.block_state(blk))
        << "block " << a.model().block(blk).name << " diverged";
  }
}

TEST(ObsOff, SequentialRunIsBitIdenticalWithAndWithoutObservers) {
  const noc::NetworkConfig net = small_net();
  const std::size_t cycles = 400;

  core::SeqNocSimulation plain(net);
  const RunResult r_plain = run_workload(plain, cycles);

  core::SeqNocSimulation observed(net);
  obs::MetricsRegistry reg;
  obs::EngineMetricsSink metrics(reg);
  obs::ChromeTrace trace;
  obs::TimelineSink timeline(trace);
  std::ostringstream vcd_os;
  obs::VcdTracerOptions vopts;
  vopts.ring_cycles = 16;
  obs::VcdTracer tracer(observed.engine().model(), vcd_os, vopts);
  obs::MultiObserver fan;
  fan.add(&metrics);
  fan.add(&timeline);
  fan.add(&tracer);
  observed.set_observer(&fan);
  const RunResult r_obs = run_workload(observed, cycles);

  EXPECT_EQ(r_plain.delivered, r_obs.delivered);
  EXPECT_DOUBLE_EQ(r_plain.latency_sum, r_obs.latency_sum);
  EXPECT_EQ(r_plain.cycles, r_obs.cycles);
  expect_same_final_state(plain.engine(), observed.engine());

  // Not vacuous: the sinks really saw the run.
  EXPECT_EQ(reg.counter_value("engine.cycles"), cycles);
  EXPECT_GE(reg.counter_value("engine.delta_cycles"), cycles * 9);
}

TEST(ObsOff, ShardedRunIsBitIdenticalWithAndWithoutObservers) {
  const noc::NetworkConfig net = small_net();
  const std::size_t cycles = 200;
  core::EngineOptions eopts;
  eopts.num_shards = 2;

  core::SeqNocSimulation plain(net, eopts);
  const RunResult r_plain = run_workload(plain, cycles);

  core::SeqNocSimulation observed(net, eopts);
  obs::MetricsRegistry reg;
  obs::EngineMetricsSink metrics(reg);
  obs::ChromeTrace trace;
  obs::TimelineSink timeline(trace);
  obs::MultiObserver fan;
  fan.add(&metrics);
  fan.add(&timeline);
  observed.set_observer(&fan);
  const RunResult r_obs = run_workload(observed, cycles);

  EXPECT_EQ(r_plain.delivered, r_obs.delivered);
  EXPECT_DOUBLE_EQ(r_plain.latency_sum, r_obs.latency_sum);
  expect_same_final_state(plain.engine(), observed.engine());

  // Superstep instrumentation flowed from the worker threads.
  EXPECT_EQ(reg.counter_value("engine.cycles"), cycles);
  EXPECT_GT(reg.counter_value("engine.shard.supersteps", "shard=0"), 0u);
  EXPECT_GT(reg.counter_value("engine.shard.supersteps", "shard=1"), 0u);
  EXPECT_GT(trace.size(), 0u);
}

TEST(ObsOff, DetachingMidRunRestoresTheUnobservedPath) {
  const noc::NetworkConfig net = small_net();
  core::SeqNocSimulation sim(net);
  obs::MetricsRegistry reg;
  obs::EngineMetricsSink metrics(reg);
  sim.set_observer(&metrics);
  traffic::TrafficHarness::Options opts;
  opts.seed = 77;
  traffic::TrafficHarness h(sim, opts);
  h.set_be_load(0.12);
  h.run(50);
  const std::uint64_t seen = reg.counter_value("engine.cycles");
  EXPECT_EQ(seen, 50u);
  sim.set_observer(nullptr);
  h.run(50);
  EXPECT_EQ(reg.counter_value("engine.cycles"), seen);  // no more updates
  EXPECT_EQ(sim.cycle(), 100u);
}

}  // namespace
}  // namespace tmsim
