#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tmsim::obs {
namespace {

TEST(ChromeTrace, SpansInstantsAndMetadataRender) {
  ChromeTrace trace;
  trace.name_thread(0, "host");
  trace.span("host.generate", 10.0, 5.5, 0, {{"period", "3"}});
  trace.instant("fault.ctrl_retry", 12.0, 0);
  EXPECT_EQ(trace.size(), 3u);

  std::ostringstream os;
  trace.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // Complete event with duration.
  EXPECT_NE(out.find("\"host.generate\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\": 5.500"), std::string::npos);
  EXPECT_NE(out.find("\"period\": \"3\""), std::string::npos);
  // Instant event carries a scope.
  EXPECT_NE(out.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(out.find("\"s\": \"t\""), std::string::npos);
  // Thread metadata names track 0.
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"host\""), std::string::npos);
}

TEST(ChromeTrace, NowUsIsMonotonic) {
  ChromeTrace trace;
  const double a = trace.now_us();
  const double b = trace.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(ChromeTrace, EscapesNamesAndArgs) {
  ChromeTrace trace;
  trace.span("weird \"name\"", 0.0, 1.0, 7, {{"k\"", "v\\"}});
  std::ostringstream os;
  trace.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("weird \\\"name\\\""), std::string::npos);
  EXPECT_NE(out.find("\"k\\\"\""), std::string::npos);
  EXPECT_NE(out.find("v\\\\"), std::string::npos);
  EXPECT_NE(out.find("\"tid\": 7"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValidJson) {
  ChromeTrace trace;
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_NE(os.str().find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(os.str().find("]"), std::string::npos);
}

}  // namespace
}  // namespace tmsim::obs
