// Tracer + trace_validate unit tests: sampling arithmetic, the no-op
// guarantee for unsampled contexts, the span-storage bound, the JSONL
// export format, the validator's accept/reject matrix (the trace
// sibling of vcd_validate's), and the Chrome flow/async export.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "obs/chrome_trace.h"

namespace tmsim::obs {
namespace {

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Tracer, HeadSamplingIsOneInN) {
  Tracer::Options opt;
  opt.sample_every = 4;
  Tracer tracer(opt);
  std::size_t sampled = 0;
  for (int i = 0; i < 16; ++i) {
    if (tracer.should_sample()) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 4u);
  EXPECT_EQ(tracer.samples_seen(), 16u);
}

TEST(Tracer, SampleEveryZeroTracesNothing) {
  Tracer::Options opt;
  opt.sample_every = 0;
  Tracer tracer(opt);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(tracer.should_sample());
  }
}

TEST(Tracer, StartTraceDerivesDistinctNonzeroIds) {
  Tracer tracer;
  const TraceContext a = tracer.start_trace(0x1234);
  const TraceContext b = tracer.start_trace(0x1234);  // same key, new nonce
  EXPECT_TRUE(a.sampled());
  EXPECT_TRUE(b.sampled());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_EQ(tracer.traces_started(), 2u);
}

TEST(Tracer, UnsampledContextIsANoOp) {
  Tracer tracer;
  const TraceContext unsampled;  // trace_id 0
  tracer.span(unsampled, 1, 0, "ghost", 0, 0, 0.0, 1.0);
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, MaxSpansBoundsStorageAndCountsDrops) {
  Tracer::Options opt;
  opt.max_spans = 2;
  Tracer tracer(opt);
  const TraceContext ctx = tracer.start_trace(7);
  for (int i = 0; i < 5; ++i) {
    tracer.span(ctx, tracer.alloc_span_id(), ctx.span_id, "s", 0, 0,
                static_cast<double>(i), static_cast<double>(i + 1));
  }
  EXPECT_EQ(tracer.spans_recorded(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 3u);
  EXPECT_EQ(tracer.snapshot().size(), 2u);
}

TEST(Tracer, WriteJsonlRoundTripsThroughValidator) {
  Tracer tracer;
  const TraceContext ctx = tracer.start_trace(42);
  const std::uint64_t exec = tracer.alloc_span_id();
  tracer.span(ctx, exec, ctx.span_id, "farm.exec", 1, 100, 10.0, 20.0,
              {{"outcome", "done"}});
  tracer.span(ctx, tracer.alloc_span_id(), exec, "farm.slice", 1, 100, 11.0,
              19.0);
  tracer.span(ctx, ctx.span_id, 0, "farm.job", 0, 90, 0.0, 21.0,
              {{"name", "j"}});
  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string out = os.str();
  EXPECT_EQ(count_of(out, "\n"), 3u);
  EXPECT_NE(out.find("\"name\": \"farm.exec\""), std::string::npos);
  EXPECT_NE(out.find("\"args\": {\"outcome\": \"done\"}"), std::string::npos);
  std::istringstream is(out);
  EXPECT_EQ(trace_validate(is), std::nullopt);
}

// The validator's reject matrix, each case a minimal literal log.
TEST(TraceValidate, AcceptsAnEmptyLog) {
  std::istringstream is("");
  EXPECT_EQ(trace_validate(is), std::nullopt);
}

TEST(TraceValidate, RejectsMissingField) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"attempt\": 0, "
      "\"ts\": 0.0, \"dur\": 1.0}\n");  // no name
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("missing required field"), std::string::npos);
}

TEST(TraceValidate, RejectsUnclosedSpan) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 5.0, \"dur\": -1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("not closed"), std::string::npos);
}

TEST(TraceValidate, RejectsSpanIdZero) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 0, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("span id 0"), std::string::npos);
}

TEST(TraceValidate, RejectsDuplicateSpanIds) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 1, \"name\": \"c\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("duplicate span id"), std::string::npos);
}

TEST(TraceValidate, RejectsTwoRoots) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 2, \"parent\": 0, \"name\": \"r2\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("second root"), std::string::npos);
}

TEST(TraceValidate, RejectsMissingParent) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 2, \"parent\": 7, \"name\": \"c\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("parent span 7 missing"), std::string::npos);
}

TEST(TraceValidate, RejectsChildStartingBeforeItsParent) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 5.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 2, \"parent\": 1, \"name\": \"c\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("before its parent"), std::string::npos);
}

TEST(TraceValidate, RejectsCrossAttemptParenting) {
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 2, \"parent\": 1, \"name\": \"e1\", "
      "\"attempt\": 1, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n"
      "{\"trace\": \"0a\", \"span\": 3, \"parent\": 2, \"name\": \"e2\", "
      "\"attempt\": 2, \"tid\": 0, \"ts\": 2.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("attempt 2 span parented to attempt 1"),
            std::string::npos);
}

TEST(TraceValidate, RejectsDisconnectedSpans) {
  // Two spans forming their own cycle-free island under the same trace:
  // both have parents, neither is reachable from the root.
  std::istringstream is(
      "{\"trace\": \"0a\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"0a\", \"span\": 2, \"parent\": 3, \"name\": \"a\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n"
      "{\"trace\": \"0a\", \"span\": 3, \"parent\": 2, \"name\": \"b\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 1.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("disconnected"), std::string::npos);
}

TEST(TraceValidate, TracesAreValidatedIndependently) {
  // A valid trace next to a rootless one: the bad one is named.
  std::istringstream is(
      "{\"trace\": \"aa\", \"span\": 1, \"parent\": 0, \"name\": \"r\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 9.0}\n"
      "{\"trace\": \"bb\", \"span\": 2, \"parent\": 2, \"name\": \"x\", "
      "\"attempt\": 0, \"tid\": 0, \"ts\": 0.0, \"dur\": 1.0}\n");
  const auto err = trace_validate(is);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("bb"), std::string::npos);
  EXPECT_NE(err->find("no root"), std::string::npos);
}

TEST(ChromeTrace, AsyncAndFlowEventsRender) {
  ChromeTrace trace;
  trace.async_begin("farm.job", "trace", 0xabcd, 1.0, 90);
  trace.async_end("farm.job", "trace", 0xabcd, 9.0, 90);
  trace.flow('s', "farm.submit", 0xabcd, 1.0, 90);
  trace.flow('t', "farm.exec", 0xabcd, 3.0, 100);
  trace.flow('f', "farm.publish", 0xabcd, 8.0, 101);
  std::ostringstream os;
  trace.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"trace\""), std::string::npos);
  EXPECT_NE(out.find("\"id\": \"abcd\""), std::string::npos);
  // Flow steps bind to the *enclosing* slice end (Chrome's bp: "e").
  EXPECT_EQ(count_of(out, "\"bp\": \"e\""), 3u);
  EXPECT_EQ(count_of(out, "{"), count_of(out, "}"));
}

TEST(Tracer, ExportChromeDrawsOneLanePerTrace) {
  Tracer tracer;
  const TraceContext a = tracer.start_trace(1);
  const TraceContext b = tracer.start_trace(2);
  tracer.span(a, a.span_id, 0, "farm.job", 0, 90, 0.0, 10.0);
  tracer.span(a, tracer.alloc_span_id(), a.span_id, "farm.exec", 1, 100, 1.0,
              9.0);
  tracer.span(b, b.span_id, 0, "farm.job", 0, 90, 2.0, 5.0);
  ChromeTrace trace;
  tracer.export_chrome(trace);
  std::ostringstream os;
  trace.write_json(os);
  const std::string out = os.str();
  // One async bracket per trace, a flow chain across each trace's spans.
  EXPECT_EQ(count_of(out, "\"ph\": \"b\""), 2u);
  EXPECT_EQ(count_of(out, "\"ph\": \"e\""), 2u);
  EXPECT_EQ(count_of(out, "\"ph\": \"s\""), 2u);
  EXPECT_EQ(count_of(out, "\"ph\": \"f\""), 1u);  // trace b has one span
  EXPECT_EQ(count_of(out, "{"), count_of(out, "}"));
}

}  // namespace
}  // namespace tmsim::obs
