// FlightRecorder unit tests: ring wrap-around (oldest events lost,
// counted), per-ring isolation, the JSONL dump and its job filter.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>

namespace tmsim::obs {
namespace {

FlightEvent event(double ts, std::uint64_t job, FlightEventKind kind) {
  FlightEvent e;
  e.ts_us = ts;
  e.job_id = job;
  e.kind = kind;
  return e;
}

TEST(FlightRecorder, RingWrapsOverwritingOldest) {
  FlightRecorder rec(1, 3);
  for (int i = 0; i < 5; ++i) {
    rec.record(0, event(static_cast<double>(i), 1, FlightEventKind::kSlice));
  }
  const auto events = rec.snapshot(0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().ts_us, 2.0);  // oldest surviving
  EXPECT_EQ(events.back().ts_us, 4.0);
  EXPECT_EQ(rec.events_recorded(), 5u);
  EXPECT_EQ(rec.events_overwritten(), 2u);
}

TEST(FlightRecorder, RingsAreIndependent) {
  FlightRecorder rec(2, 4);
  rec.record(0, event(1.0, 10, FlightEventKind::kDispatch));
  rec.record(1, event(2.0, 20, FlightEventKind::kDispatch));
  EXPECT_EQ(rec.snapshot(0).size(), 1u);
  EXPECT_EQ(rec.snapshot(1).size(), 1u);
  EXPECT_EQ(rec.snapshot(0)[0].job_id, 10u);
  EXPECT_EQ(rec.snapshot(1)[0].job_id, 20u);
}

TEST(FlightRecorder, DumpJsonlFiltersByJob) {
  FlightRecorder rec(1, 8);
  rec.record(0, event(1.0, 7, FlightEventKind::kDispatch));
  rec.record(0, event(2.0, 9, FlightEventKind::kDispatch));
  rec.record(0, event(3.0, 7, FlightEventKind::kPublish));
  rec.record(0, event(4.0, 0, FlightEventKind::kMetric));  // ring-wide
  const std::string all = rec.dump_jsonl(0);
  EXPECT_NE(all.find("\"job\": 9"), std::string::npos);
  const std::string mine = rec.dump_jsonl(0, 7);
  EXPECT_NE(mine.find("\"event\": \"dispatch\""), std::string::npos);
  EXPECT_NE(mine.find("\"event\": \"publish\""), std::string::npos);
  // Other jobs' events are filtered out; ring-wide (job 0) markers stay.
  EXPECT_EQ(mine.find("\"job\": 9"), std::string::npos);
  EXPECT_NE(mine.find("\"event\": \"metric\""), std::string::npos);
}

TEST(FlightRecorder, DegenerateSizesClampToOne) {
  // The farm never constructs a zero-depth/zero-ring recorder (0 depth
  // disables it entirely), but the class itself stays safe.
  FlightRecorder rec(0, 0);
  EXPECT_EQ(rec.num_rings(), 1u);
  EXPECT_EQ(rec.depth(), 1u);
  rec.record(5, event(1.0, 1, FlightEventKind::kSlice));  // clamped ring
  EXPECT_EQ(rec.snapshot(0).size(), 1u);
}

}  // namespace
}  // namespace tmsim::obs
