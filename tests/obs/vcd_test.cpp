#include "obs/vcd.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/example_blocks.h"
#include "core/sequential_simulator.h"
#include "obs/engine_sinks.h"

namespace tmsim::obs {
namespace {

BitVector val(std::size_t width, std::uint64_t v) {
  BitVector b(width);
  b.set_field(0, width, v);
  return b;
}

std::string tiny_dump() {
  std::ostringstream os;
  VcdWriter w(os);
  const auto a = w.add_signal("bus a", 8);  // space must become '_'
  const auto b = w.add_signal("clk", 1);
  w.write_header();
  w.begin_time(0);
  w.change(a, val(8, 0x42));
  w.change_u64(b, 1);
  w.begin_time(1);
  w.change(a, val(8, 0x42));  // unchanged: must not be re-emitted
  w.change_u64(b, 0);
  return os.str();
}

TEST(VcdWriter, ProducesValidatableOutput) {
  const std::string dump = tiny_dump();
  EXPECT_NE(dump.find("$timescale"), std::string::npos);
  EXPECT_NE(dump.find("bus_a"), std::string::npos);  // whitespace replaced
  EXPECT_NE(dump.find("$dumpvars"), std::string::npos);
  std::istringstream is(dump);
  const auto err = vcd_validate(is);
  EXPECT_FALSE(err.has_value()) << *err;
}

TEST(VcdWriter, DeduplicatesUnchangedValues) {
  const std::string dump = tiny_dump();
  // The 8-bit vector 0x42 appears once in $dumpvars-adjacent init is x,
  // then exactly once as a change at #0 — not again at #1.
  std::size_t n = 0;
  for (std::size_t pos = dump.find("b01000010");
       pos != std::string::npos; pos = dump.find("b01000010", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
}

TEST(VcdValidate, RejectsMalformedStreams) {
  {
    std::istringstream is("this is not a vcd file");
    EXPECT_TRUE(vcd_validate(is).has_value());
  }
  {
    // Value change for an undeclared identifier code.
    std::istringstream is(
        "$timescale 1 ns $end\n$scope module top $end\n"
        "$var wire 1 ! clk $end\n$upscope $end\n$enddefinitions $end\n"
        "#0\n1@\n");
    EXPECT_TRUE(vcd_validate(is).has_value());
  }
  {
    // Non-increasing timesteps.
    std::istringstream is(
        "$timescale 1 ns $end\n$scope module top $end\n"
        "$var wire 1 ! clk $end\n$upscope $end\n$enddefinitions $end\n"
        "#5\n1!\n#5\n0!\n");
    EXPECT_TRUE(vcd_validate(is).has_value());
  }
}

TEST(VcdDiff, IdenticalStreamsDoNotDiverge) {
  const std::string dump = tiny_dump();
  std::istringstream a(dump), b(dump);
  const VcdDivergence d = vcd_diff(a, b);
  EXPECT_FALSE(d.diverged);
  EXPECT_TRUE(d.only_in_a.empty());
  EXPECT_TRUE(d.only_in_b.empty());
}

TEST(VcdDiff, NamesFirstDivergentSignalAndTime) {
  std::ostringstream osa, osb;
  for (std::ostringstream* os : {&osa, &osb}) {
    VcdWriter w(*os);
    const auto s = w.add_signal("data", 4);
    const auto t = w.add_signal("flag", 1);
    w.write_header();
    w.begin_time(0);
    w.change(s, val(4, 1));
    w.change_u64(t, 0);
    w.begin_time(3);
    // The two dumps part ways at time 3 on `data` only.
    w.change(s, val(4, os == &osa ? 5 : 9));
    w.change_u64(t, 1);
  }
  std::istringstream a(osa.str()), b(osb.str());
  const VcdDivergence d = vcd_diff(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.time, 3u);
  EXPECT_EQ(d.signal, "data");
  EXPECT_NE(d.value_a, d.value_b);
  EXPECT_NE(d.summary().find("data"), std::string::npos);
}

TEST(VcdDiff, ReportsSignalSetMismatch) {
  std::ostringstream osa, osb;
  {
    VcdWriter w(osa);
    const auto s = w.add_signal("common", 1);
    w.add_signal("extra_a", 1);
    w.write_header();
    w.begin_time(0);
    w.change_u64(s, 1);
  }
  {
    VcdWriter w(osb);
    const auto s = w.add_signal("common", 1);
    w.write_header();
    w.begin_time(0);
    w.change_u64(s, 1);
  }
  std::istringstream a(osa.str()), b(osb.str());
  const VcdDivergence d = vcd_diff(a, b);
  EXPECT_FALSE(d.diverged);  // the intersection agrees
  ASSERT_EQ(d.only_in_a.size(), 1u);
  EXPECT_EQ(d.only_in_a[0], "extra_a");
  EXPECT_TRUE(d.only_in_b.empty());
}

// --- VcdTracer against a real engine ---------------------------------------

/// Fig. 2-style registered ring: deterministic, converges every cycle.
struct RegRing {
  RegRing() {
    for (int i = 0; i < 3; ++i) {
      blocks.push_back(model.add_block(
          std::make_shared<core::examples::RegAdderBlock>(16, i + 1),
          "F" + std::to_string(i + 1)));
      links.push_back(model.add_link("R" + std::to_string(i + 1), 16,
                                     core::LinkKind::kRegistered));
    }
    for (int i = 0; i < 3; ++i) {
      model.bind_output(blocks[i], 0, links[i]);
      model.bind_input(blocks[(i + 1) % 3], 0, links[i]);
    }
    model.finalize();
  }
  core::SystemModel model;
  std::vector<core::BlockId> blocks;
  std::vector<core::LinkId> links;
};

TEST(VcdTracer, StreamingDumpIsValidAndCoversEveryCycle) {
  RegRing ring;
  core::SequentialSimulator sim(ring.model, core::SchedulePolicy::kStatic);
  std::ostringstream os;
  VcdTracerOptions opts;
  opts.link_glob = "R*";
  VcdTracer tracer(ring.model, os, opts);
  EXPECT_EQ(tracer.num_signals(), 3u);
  sim.set_observer(&tracer);
  for (int i = 0; i < 5; ++i) {
    sim.step();
  }
  const std::string dump = os.str();
  std::istringstream is(dump);
  const auto err = vcd_validate(is);
  EXPECT_FALSE(err.has_value()) << *err;
  for (const char* t : {"#0", "#1", "#2", "#3", "#4"}) {
    EXPECT_NE(dump.find(std::string(t) + "\n"), std::string::npos) << t;
  }
  // The bookkeeping signals ride along.
  EXPECT_NE(dump.find("sim.delta_cycles"), std::string::npos);
  EXPECT_NE(dump.find("sim.settle_rounds"), std::string::npos);
}

TEST(VcdTracer, GlobSelectsSubsetOfSignals) {
  {
    // Stateless blocks never yield .state signals, whatever the glob.
    RegRing ring;
    std::ostringstream os;
    VcdTracerOptions opts;
    opts.link_glob = "R1";
    opts.block_glob = "F*";
    VcdTracer tracer(ring.model, os, opts);
    EXPECT_EQ(tracer.num_signals(), 1u);  // just the one link
  }
  {
    // Stateful blocks (PipeBlock) are selectable by block_glob.
    core::SystemModel m;
    std::vector<core::LinkId> links;
    for (int i = 0; i < 2; ++i) {
      links.push_back(m.add_link("L" + std::to_string(i), 8,
                                 core::LinkKind::kRegistered));
    }
    for (int i = 0; i < 2; ++i) {
      const core::BlockId b = m.add_block(
          std::make_shared<core::examples::PipeBlock>(8, i + 1),
          "P" + std::to_string(i));
      m.bind_output(b, 0, links[i]);
      m.bind_input(b, 0, links[(i + 1) % 2]);
    }
    m.finalize();
    std::ostringstream os;
    VcdTracerOptions opts;
    opts.link_glob = "L0";
    opts.block_glob = "P*";
    VcdTracer tracer(m, os, opts);
    EXPECT_EQ(tracer.num_signals(), 1u + 2u);  // one link, two block states
  }
}

TEST(VcdTracer, RingModeDumpsLastCyclesOnConvergenceFailure) {
  // Oscillating combinational NOT-ring: the dynamic schedule gives up
  // and the tracer must flush its ring — the last N cycles plus the
  // final unsettled sample — automatically.
  core::SystemModel m;
  std::vector<core::BlockId> blocks;
  std::vector<core::LinkId> links;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(m.add_block(
        std::make_shared<core::examples::NotBlock>(),
        "n" + std::to_string(i)));
    links.push_back(m.add_link("l" + std::to_string(i), 1,
                               core::LinkKind::kCombinational));
  }
  for (int i = 0; i < 3; ++i) {
    m.bind_output(blocks[i], 0, links[i]);
    m.bind_input(blocks[(i + 1) % 3], 0, links[i]);
  }
  m.finalize();
  core::SequentialSimulator sim(m, core::SchedulePolicy::kDynamic,
                                /*max_evals=*/16);
  std::ostringstream os;
  VcdTracerOptions opts;
  opts.ring_cycles = 4;
  VcdTracer tracer(m, os, opts);
  sim.set_observer(&tracer);
  EXPECT_TRUE(os.str().empty());  // ring mode: nothing until flush
  EXPECT_THROW(sim.step(), core::ConvergenceError);
  const std::string dump = os.str();
  ASSERT_FALSE(dump.empty());  // auto-flushed by the failure hook
  std::istringstream is(dump);
  const auto err = vcd_validate(is);
  EXPECT_FALSE(err.has_value()) << *err;
  // The failing cycle (0) appears as the final sample.
  EXPECT_NE(dump.find("#0\n"), std::string::npos);
  // Flushing again must not duplicate the dump.
  tracer.flush();
  EXPECT_EQ(os.str(), dump);
}

TEST(VcdTracer, RingModeKeepsOnlyLastNCycles) {
  RegRing ring;
  core::SequentialSimulator sim(ring.model, core::SchedulePolicy::kStatic);
  std::ostringstream os;
  VcdTracerOptions opts;
  opts.ring_cycles = 3;
  VcdTracer tracer(ring.model, os, opts);
  sim.set_observer(&tracer);
  for (int i = 0; i < 10; ++i) {
    sim.step();
  }
  EXPECT_EQ(tracer.ring_size(), 3u);
  tracer.flush();
  const std::string dump = os.str();
  std::istringstream is(dump);
  EXPECT_FALSE(vcd_validate(is).has_value());
  // Only cycles 7, 8, 9 survive.
  EXPECT_EQ(dump.find("#0\n"), std::string::npos);
  EXPECT_EQ(dump.find("#6\n"), std::string::npos);
  EXPECT_NE(dump.find("#7\n"), std::string::npos);
  EXPECT_NE(dump.find("#9\n"), std::string::npos);
}

TEST(VcdDiff, TracerDumpsFromTwoEnginesOverSameModelAreIdentical) {
  // The differential-harness use case: static and dynamic schedules on
  // the same registered model must produce byte-identical waveforms.
  RegRing r1, r2;
  std::ostringstream os1, os2;
  VcdTracer t1(r1.model, os1), t2(r2.model, os2);
  core::SequentialSimulator s1(r1.model, core::SchedulePolicy::kStatic);
  core::SequentialSimulator s2(r2.model, core::SchedulePolicy::kDynamic);
  s1.set_observer(&t1);
  s2.set_observer(&t2);
  for (int i = 0; i < 8; ++i) {
    s1.step();
    s2.step();
  }
  std::istringstream a(os1.str()), b(os2.str());
  const VcdDivergence d = vcd_diff(a, b);
  EXPECT_FALSE(d.diverged) << d.summary();
}

}  // namespace
}  // namespace tmsim::obs
