// Unit tests for the static-schedule analysis pass (DESIGN.md §17):
// SCC condensation on hand-built link graphs, the Eval/Drive/Settle op
// mix, determinism, and the include-filter semantics the sharded engine
// relies on. These pin the *structure* of the emitted schedule; the
// engines' bit-identity over these shapes is proved by
// tests/integration/compiled_equivalence_test.cpp.
#include "analysis/static_schedule.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/example_blocks.h"
#include "core/system_model.h"

namespace tmsim::analysis {
namespace {

using core::BlockId;
using core::LinkId;
using core::LinkKind;
using core::SystemModel;
using core::examples::CombAdderBlock;
using core::examples::NotBlock;
using core::examples::Or2Block;
using core::examples::PipeBlock;

std::size_t count_ops(const CompiledSchedule& s, CompiledOpKind kind) {
  std::size_t n = 0;
  for (const CompiledOp& op : s.ops) {
    if (op.kind == kind) ++n;
  }
  return n;
}

/// Position of block b's kEval in the op list (npos if settled away).
std::size_t eval_position(const CompiledSchedule& s, BlockId b) {
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    if (s.ops[i].kind == CompiledOpKind::kEval && s.ops[i].block == b) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

TEST(StaticSchedule, SelfLoopBecomesASingleSettledScc) {
  SystemModel model;
  const BlockId a = model.add_block(std::make_shared<NotBlock>(), "a");
  const LinkId aa = model.add_link("aa", 1, LinkKind::kCombinational);
  model.bind_output(a, 0, aa);
  model.bind_input(a, 0, aa);
  model.finalize();

  const CompiledSchedule s = build_compiled_schedule(model);
  EXPECT_FALSE(s.acyclic());
  ASSERT_EQ(s.sccs.size(), 1u);
  EXPECT_EQ(s.sccs[0].blocks, std::vector<BlockId>{a});
  EXPECT_EQ(s.sccs[0].links, std::vector<LinkId>{aa});
  // a's only tracked input is the SCC link itself, so the settle commits
  // it: the whole schedule is one kSettle op, no kEval at all.
  EXPECT_EQ(s.sccs[0].committed_blocks, std::vector<BlockId>{a});
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].kind, CompiledOpKind::kSettle);
  EXPECT_EQ(s.ops[0].scc, 0u);
  EXPECT_EQ(s.num_evals, 0u);
  EXPECT_EQ(s.num_drives, 0u);
  EXPECT_EQ(s.scc_of_link[aa], 1u);
}

TEST(StaticSchedule, TwoBlockCycleCondensesToOneScc) {
  SystemModel model;
  const BlockId a = model.add_block(std::make_shared<NotBlock>(), "a");
  const BlockId b = model.add_block(std::make_shared<NotBlock>(), "b");
  const LinkId ab = model.add_link("ab", 1, LinkKind::kCombinational);
  const LinkId ba = model.add_link("ba", 1, LinkKind::kCombinational);
  model.bind_output(a, 0, ab);
  model.bind_input(b, 0, ab);
  model.bind_output(b, 0, ba);
  model.bind_input(a, 0, ba);
  model.finalize();

  const CompiledSchedule s = build_compiled_schedule(model);
  ASSERT_EQ(s.sccs.size(), 1u);
  EXPECT_EQ(s.sccs[0].blocks, (std::vector<BlockId>{a, b}));
  EXPECT_EQ(s.sccs[0].links, (std::vector<LinkId>{ab, ba}));
  EXPECT_EQ(s.sccs[0].committed_blocks, (std::vector<BlockId>{a, b}));
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].kind, CompiledOpKind::kSettle);
  EXPECT_EQ(s.scc_of_link[ab], 1u);
  EXPECT_EQ(s.scc_of_link[ba], 1u);
}

/// Diamond fan-in: a feeds c0 and c1, which rejoin at d. Acyclic, so the
/// schedule is pure kEval in topological order.
struct Diamond {
  Diamond() {
    a = model.add_block(std::make_shared<Or2Block>(8), "a");
    c0 = model.add_block(std::make_shared<CombAdderBlock>(8, 1), "c0");
    c1 = model.add_block(std::make_shared<CombAdderBlock>(8, 2), "c1");
    d = model.add_block(std::make_shared<Or2Block>(8), "d");
    const LinkId e0 = model.add_link("e0", 8, LinkKind::kCombinational);
    const LinkId e1 = model.add_link("e1", 8, LinkKind::kCombinational);
    const LinkId a0 = model.add_link("a0", 8, LinkKind::kCombinational);
    const LinkId a1 = model.add_link("a1", 8, LinkKind::kCombinational);
    const LinkId m0 = model.add_link("m0", 8, LinkKind::kCombinational);
    const LinkId m1 = model.add_link("m1", 8, LinkKind::kCombinational);
    const LinkId d0 = model.add_link("d0", 8, LinkKind::kCombinational);
    const LinkId d1 = model.add_link("d1", 8, LinkKind::kCombinational);
    model.bind_input(a, 0, e0);
    model.bind_input(a, 1, e1);
    model.bind_output(a, 0, a0);
    model.bind_output(a, 1, a1);
    model.bind_input(c0, 0, a0);
    model.bind_output(c0, 0, m0);
    model.bind_input(c1, 0, a1);
    model.bind_output(c1, 0, m1);
    model.bind_input(d, 0, m0);
    model.bind_input(d, 1, m1);
    model.bind_output(d, 0, d0);
    model.bind_output(d, 1, d1);
    model.finalize();
  }
  SystemModel model;
  BlockId a = 0, c0 = 0, c1 = 0, d = 0;
};

TEST(StaticSchedule, DiamondFanInIsPureEvalsInTopologicalOrder) {
  Diamond dia;
  const CompiledSchedule s = build_compiled_schedule(dia.model);
  EXPECT_TRUE(s.acyclic());
  EXPECT_EQ(s.num_blocks, 4u);
  EXPECT_EQ(s.num_evals, 4u);
  EXPECT_EQ(s.num_drives, 0u);
  ASSERT_EQ(s.ops.size(), 4u);
  const std::size_t pa = eval_position(s, dia.a);
  const std::size_t pc0 = eval_position(s, dia.c0);
  const std::size_t pc1 = eval_position(s, dia.c1);
  const std::size_t pd = eval_position(s, dia.d);
  EXPECT_LT(pa, pc0);
  EXPECT_LT(pa, pc1);
  EXPECT_LT(pc0, pd);
  EXPECT_LT(pc1, pd);
}

TEST(StaticSchedule, SameModelBuildsByteIdenticalSchedules) {
  Diamond dia;
  const CompiledSchedule s1 = build_compiled_schedule(dia.model);
  const CompiledSchedule s2 = build_compiled_schedule(dia.model);
  ASSERT_EQ(s1.ops.size(), s2.ops.size());
  for (std::size_t i = 0; i < s1.ops.size(); ++i) {
    EXPECT_EQ(s1.ops[i].kind, s2.ops[i].kind);
    EXPECT_EQ(s1.ops[i].block, s2.ops[i].block);
    EXPECT_EQ(s1.ops[i].scc, s2.ops[i].scc);
  }
  EXPECT_EQ(s1.scc_of_link, s2.scc_of_link);
}

TEST(StaticSchedule, PipeRingNeedsExactlyOneDrive) {
  // Four PipeBlocks in a combinational ring. output_depends_on_input is
  // false for every (out, in) pair, so the *link* graph is edge-free —
  // acyclic — yet no block is initially ready (each reads a tracked,
  // not-yet-final link). The drive plan breaks the stalemate with one
  // early evaluation; the other three then run as plain kEvals plus the
  // driver's own committing kEval.
  SystemModel model;
  std::vector<BlockId> p;
  std::vector<LinkId> l;
  for (int i = 0; i < 4; ++i) {
    p.push_back(model.add_block(
        std::make_shared<PipeBlock>(8, static_cast<std::uint64_t>(i + 1)),
        "p" + std::to_string(i)));
    l.push_back(model.add_link("l" + std::to_string(i), 8,
                               LinkKind::kCombinational));
  }
  for (int i = 0; i < 4; ++i) {
    model.bind_output(p[i], 0, l[i]);
    model.bind_input(p[(i + 1) % 4], 0, l[i]);
  }
  model.finalize();

  const CompiledSchedule s = build_compiled_schedule(model);
  EXPECT_TRUE(s.acyclic());
  EXPECT_EQ(s.num_evals, 4u);
  EXPECT_EQ(s.num_drives, 1u);
  ASSERT_EQ(s.ops.size(), 5u);
  EXPECT_EQ(s.ops[0].kind, CompiledOpKind::kDrive);
  // The drive finalizes its block's output, so that block's committing
  // kEval must come after its downstream neighbour became ready.
  EXPECT_EQ(count_ops(s, CompiledOpKind::kEval), 4u);
}

TEST(StaticSchedule, TopologicalOrderBeatsBlockIdOrder) {
  // Ids run *against* the dataflow: b0 reads b1's output, b1 reads
  // b2's. The schedule must order by topology (b2, b1, b0), not by id.
  SystemModel model;
  const BlockId b0 =
      model.add_block(std::make_shared<CombAdderBlock>(8, 1), "b0");
  const BlockId b1 =
      model.add_block(std::make_shared<CombAdderBlock>(8, 2), "b1");
  const BlockId b2 =
      model.add_block(std::make_shared<CombAdderBlock>(8, 3), "b2");
  const LinkId ext = model.add_link("ext", 8, LinkKind::kCombinational);
  const LinkId l2 = model.add_link("l2", 8, LinkKind::kCombinational);
  const LinkId l1 = model.add_link("l1", 8, LinkKind::kCombinational);
  const LinkId out = model.add_link("out", 8, LinkKind::kCombinational);
  model.bind_input(b2, 0, ext);
  model.bind_output(b2, 0, l2);
  model.bind_input(b1, 0, l2);
  model.bind_output(b1, 0, l1);
  model.bind_input(b0, 0, l1);
  model.bind_output(b0, 0, out);
  model.finalize();

  const CompiledSchedule s = build_compiled_schedule(model);
  EXPECT_TRUE(s.acyclic());
  ASSERT_EQ(s.ops.size(), 3u);
  EXPECT_EQ(s.ops[0].block, b2);
  EXPECT_EQ(s.ops[1].block, b1);
  EXPECT_EQ(s.ops[2].block, b0);
}

TEST(StaticSchedule, IncludeFilterTreatsCutLinksAsRegistered) {
  // Chain a -> b -> c, scheduling only {b} (the sharded engine's view of
  // a one-block shard). Both of b's links cross the filter boundary, so
  // neither is tracked: b is immediately ready and the schedule is a
  // single kEval.
  SystemModel model;
  const BlockId a =
      model.add_block(std::make_shared<CombAdderBlock>(8, 1), "a");
  const BlockId b =
      model.add_block(std::make_shared<CombAdderBlock>(8, 2), "b");
  const BlockId c =
      model.add_block(std::make_shared<CombAdderBlock>(8, 3), "c");
  const LinkId ext = model.add_link("ext", 8, LinkKind::kCombinational);
  const LinkId ab = model.add_link("ab", 8, LinkKind::kCombinational);
  const LinkId bc = model.add_link("bc", 8, LinkKind::kCombinational);
  const LinkId out = model.add_link("out", 8, LinkKind::kCombinational);
  model.bind_input(a, 0, ext);
  model.bind_output(a, 0, ab);
  model.bind_input(b, 0, ab);
  model.bind_output(b, 0, bc);
  model.bind_input(c, 0, bc);
  model.bind_output(c, 0, out);
  model.finalize();

  std::vector<char> member(model.num_blocks(), 0);
  member[b] = 1;
  StaticScheduleOptions opt;
  opt.include_blocks = &member;
  const CompiledSchedule s = build_compiled_schedule(model, opt);
  EXPECT_TRUE(s.acyclic());
  EXPECT_EQ(s.num_blocks, 1u);
  EXPECT_EQ(s.num_evals, 1u);
  EXPECT_EQ(s.num_drives, 0u);
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].kind, CompiledOpKind::kEval);
  EXPECT_EQ(s.ops[0].block, b);
}

}  // namespace
}  // namespace tmsim::analysis
