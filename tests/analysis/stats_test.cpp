#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/table.h"

namespace tmsim::analysis {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StatAccumulator, MinMeanMax) {
  StatAccumulator s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator s;
  s.add(-2.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
}

TEST(Histogram, BinningAndOverflowClamp) {
  Histogram h(10.0, 4);  // [0,10) [10,20) [20,30) [30,inf→last]
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(35.0);
  h.add(1000.0);
  h.add(-5.0);  // clamps to bin 0
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bins()[0], 3u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.bins()[2], 0u);
  EXPECT_EQ(h.bins()[3], 2u);
}

TEST(Histogram, QuantileEstimate) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_EQ(Histogram(1.0, 4).quantile(0.5), 0.0);  // empty
}

TEST(Histogram, QuantileEmptySampleSet) {
  Histogram h(2.0, 8);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileSingleSample) {
  Histogram h(1.0, 10);
  h.add(3.5);  // bin 3 → upper edge 4.0
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileAllEqualSamples) {
  Histogram h(5.0, 4);
  for (int i = 0; i < 1000; ++i) {
    h.add(7.0);  // all in bin 1 → upper edge 10.0
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileClampsQ) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(2.5);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);  // upper edge of bin 2
}

TEST(Histogram, DegenerateShapeIsClamped) {
  Histogram zero_bins(1.0, 0);  // clamped to one bin
  zero_bins.add(100.0);
  EXPECT_EQ(zero_bins.count(), 1u);
  EXPECT_EQ(zero_bins.bins().size(), 1u);
  EXPECT_DOUBLE_EQ(zero_bins.quantile(0.5), 1.0);

  Histogram bad_width(0.0, 4);  // width clamped to 1.0
  bad_width.add(2.5);
  EXPECT_DOUBLE_EQ(bad_width.bin_width(), 1.0);
  EXPECT_EQ(bad_width.bins()[2], 1u);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.add_row({"xxxxxxx", "1"});
  t.add_row({"y", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxxx"), std::string::npos);
  // Rule line present between header and rows.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Fmt, FormatsDoubles) {
  EXPECT_EQ(fmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(fmt("%.0f%%", 42.4), "42%");
}

}  // namespace
}  // namespace tmsim::analysis
