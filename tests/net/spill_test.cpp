// SpillQueue units (DESIGN.md §16): the daemon's disk-backed admission
// overflow keeps per-class FIFO through the segment files, survives a
// close/reopen with every pending record recovered, truncates a torn
// tail instead of mis-parsing it, and shrinks a drained segment back to
// zero bytes.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "farmd/spill.h"

namespace tmsim::farmd {
namespace {

using namespace std::chrono_literals;

/// Fresh scratch dir per test (under the build-tree cwd).
std::string scratch(const std::string& name) {
  const std::string dir = "farmd_spill_scratch_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SpillRecord rec(std::uint64_t id, const std::string& client = "c0") {
  SpillRecord r;
  r.remote_id = id;
  r.client = client;
  r.trace_id = id * 3;
  r.span_id = id * 5;
  r.spec_text = "v=1 name=spec-" + std::to_string(id);
  return r;
}

TEST(Spill, FifoWithinClassAndPriorityAcrossClasses) {
  SpillQueue q(scratch("fifo"));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.max_recovered_remote_id(), 0u);  // nothing recovered
  q.append(farm::Priority::kNormal, rec(1));
  q.append(farm::Priority::kNormal, rec(2));
  q.append(farm::Priority::kInteractive, rec(3));
  q.append(farm::Priority::kBatch, rec(4));
  q.append(farm::Priority::kInteractive, rec(5));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(farm::Priority::kInteractive), 2u);
  EXPECT_EQ(q.pending(farm::Priority::kNormal), 2u);
  EXPECT_EQ(q.pending(farm::Priority::kBatch), 1u);

  // take_highest walks classes in priority order, FIFO within each.
  std::vector<std::uint64_t> order;
  while (auto r = q.take_highest()) {
    order.push_back(r->remote_id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 5, 1, 2, 4}));
  EXPECT_TRUE(q.empty());

  // Payload fields survive the disk round trip.
  q.append(farm::Priority::kNormal, rec(42, "client-x"));
  const auto r = q.take(farm::Priority::kNormal);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->remote_id, 42u);
  EXPECT_EQ(r->client, "client-x");
  EXPECT_EQ(r->trace_id, 126u);
  EXPECT_EQ(r->span_id, 210u);
  EXPECT_EQ(r->spec_text, "v=1 name=spec-42");
}

TEST(Spill, RecoversPendingRecordsAcrossReopen) {
  const std::string dir = scratch("recover");
  {
    SpillQueue q(dir);
    for (std::uint64_t i = 1; i <= 5; ++i) {
      q.append(farm::Priority::kNormal, rec(i));
    }
    // Take two; three remain on disk when the queue dies.
    EXPECT_EQ(q.take(farm::Priority::kNormal)->remote_id, 1u);
    EXPECT_EQ(q.take(farm::Priority::kNormal)->remote_id, 2u);
  }
  SpillQueue q2(dir);
  // Recovery is at-least-once from the segment start: the already-taken
  // records reappear (the daemon's remote-job table dedups them); order
  // is still the append order. The largest recovered remote id is
  // surfaced so the daemon can seed fresh ids above it.
  EXPECT_EQ(q2.pending(farm::Priority::kNormal), 5u);
  EXPECT_EQ(q2.max_recovered_remote_id(), 5u);
  std::vector<std::uint64_t> order;
  while (auto r = q2.take(farm::Priority::kNormal)) {
    order.push_back(r->remote_id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Spill, TornTailIsTruncatedNotMisparsed) {
  const std::string dir = scratch("torn");
  std::string path;
  {
    SpillQueue q(dir);
    q.append(farm::Priority::kNormal, rec(1));
    q.append(farm::Priority::kNormal, rec(2));
    path = dir + "/spill-" + farm::priority_name(farm::Priority::kNormal) +
           ".seg";
  }
  // Tear the last record: chop bytes off the file tail.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  SpillQueue q(dir);
  EXPECT_EQ(q.pending(farm::Priority::kNormal), 1u);
  EXPECT_EQ(q.max_recovered_remote_id(), 1u);  // the torn record's id is not
  EXPECT_EQ(q.take(farm::Priority::kNormal)->remote_id, 1u);
  EXPECT_FALSE(q.take(farm::Priority::kNormal).has_value());

  // Corrupt a record body (CRC intact length, flipped payload byte):
  // recovery stops at it.
  {
    SpillQueue q2(dir);
    q2.append(farm::Priority::kNormal, rec(7));
    q2.append(farm::Priority::kNormal, rec(8));
  }
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(12);  // somewhere inside the first record's payload
  char b = 0;
  f.seekg(12);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(12);
  f.write(&b, 1);
  f.close();
  SpillQueue q3(dir);
  EXPECT_EQ(q3.pending(farm::Priority::kNormal), 0u);
}

TEST(Spill, DrainedSegmentShrinksToZeroAndStatsTrack) {
  const std::string dir = scratch("drain");
  SpillQueue q(dir);
  const std::string path = dir + "/spill-" +
                           farm::priority_name(farm::Priority::kBatch) + ".seg";
  for (std::uint64_t wave = 0; wave < 3; ++wave) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      q.append(farm::Priority::kBatch, rec(wave * 4 + i));
    }
    EXPECT_GT(std::filesystem::file_size(path), 0u);
    const SpillQueue::Stats mid = q.stats();
    EXPECT_EQ(mid.pending, 4u);
    EXPECT_GT(mid.bytes, 0u);
    EXPECT_EQ(mid.segments, 1u);
    while (q.take(farm::Priority::kBatch).has_value()) {
    }
    // Truncate-on-drain: the file never grows across waves.
    EXPECT_EQ(std::filesystem::file_size(path), 0u);
  }
  const SpillQueue::Stats s = q.stats();
  EXPECT_EQ(s.pending, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.segments, 0u);
  EXPECT_EQ(s.appended, 12u);
  EXPECT_EQ(s.readmitted, 12u);
}

TEST(Spill, WaitPendingWakesOnAppendAndStop) {
  SpillQueue q(scratch("wait"));
  EXPECT_FALSE(q.wait_pending(1ms));  // times out empty
  q.append(farm::Priority::kNormal, rec(1));
  EXPECT_TRUE(q.wait_pending(1ms));  // immediate: pending
  q.take(farm::Priority::kNormal);
  q.stop();
  EXPECT_FALSE(q.wait_pending(10s));  // stop() wakes it, not the timeout
}

}  // namespace
}  // namespace tmsim::farmd
