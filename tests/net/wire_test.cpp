// Wire-protocol units (DESIGN.md §16): framing round-trips, the CRC /
// magic / version / length gates, message codec round-trips, the
// bit-exact JobResult codec (encode∘decode∘encode is a byte fixpoint —
// doubles travel as IEEE-754 bit patterns, so not even a NaN payload is
// disturbed), and a deterministic mutation fuzz that proves a corrupted
// or truncated frame always throws and never mis-decodes silently.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "farm/job_result.h"
#include "net/wire.h"

namespace tmsim::net {
namespace {

TEST(WireCrc, KnownVectorAndSeedChaining) {
  // The IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
  // Chaining halves equals one pass.
  const std::uint32_t half = crc32(s, 4);
  EXPECT_EQ(crc32(s + 4, 5, half), crc32(s, 9));
}

TEST(WireWriterReader, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.1);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("hello \0 wire");  // embedded NUL is cut by the char* ctor; fine
  w.str(std::string("bin\0ary", 7));

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireWriterReader, TruncationAndTrailingBytesThrow) {
  WireWriter w;
  w.u32(7);
  WireReader short_r(w.bytes().data(), 2);
  EXPECT_THROW(short_r.u32(), Error);

  WireWriter w2;
  w2.str("abc");
  std::vector<std::uint8_t> bytes = w2.take();
  bytes.resize(bytes.size() - 1);  // cut the last string byte
  WireReader r2(bytes);
  EXPECT_THROW(r2.str(), Error);

  WireWriter w3;
  w3.u8(1);
  w3.u8(2);
  WireReader r3(w3.bytes());
  r3.u8();
  EXPECT_THROW(r3.expect_end(), Error);
}

TEST(WireFrame, RoundTripAndHeaderPreParse) {
  WireWriter w;
  w.u64(42);
  w.str("payload");
  const std::vector<std::uint8_t> payload = w.take();
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kSubmit, payload);
  ASSERT_EQ(bytes.size(), kHeaderBytes + payload.size() + kCrcBytes);
  EXPECT_EQ(decode_header(bytes.data()), payload.size());

  const Frame f = decode_frame(bytes.data(), bytes.size());
  EXPECT_EQ(f.type, FrameType::kSubmit);
  EXPECT_EQ(f.payload, payload);
}

TEST(WireFrame, BadMagicVersionLengthAndCrcAllThrow) {
  WireWriter w;
  w.u64(7);
  const std::vector<std::uint8_t> good =
      encode_frame(FrameType::kCancel, w.take());

  auto mutate = [&](std::size_t off, std::uint8_t delta) {
    std::vector<std::uint8_t> bad = good;
    bad[off] ^= delta;
    return bad;
  };
  // Magic (offset 0), version (4), a payload bit (header+1), the CRC
  // itself (last byte) — every single-byte corruption is caught.
  for (const std::size_t off :
       {std::size_t{0}, std::size_t{4}, kHeaderBytes + 1, good.size() - 1}) {
    const std::vector<std::uint8_t> bad = mutate(off, 0x40);
    EXPECT_THROW(decode_frame(bad.data(), bad.size()), Error) << off;
  }
  // Oversized length field: the header gate must refuse before any
  // reader allocates kMaxPayload+ bytes.
  std::vector<std::uint8_t> huge = good;
  const std::uint32_t too_big = kMaxPayload + 1;
  std::memcpy(huge.data() + 8, &too_big, sizeof too_big);
  EXPECT_THROW(decode_header(huge.data()), Error);
  // Truncated frame.
  EXPECT_THROW(decode_frame(good.data(), good.size() - 1), Error);
}

TEST(WireMessages, RequestReplyRoundTrips) {
  {
    SubmitMsg m;
    m.req_id = 9;
    m.client_trace_id = 0x1111;
    m.client_span_id = 0x2222;
    m.spec_text = "v=1 name=x";
    const SubmitMsg d = SubmitMsg::decode(m.encode());
    EXPECT_EQ(d.req_id, 9u);
    EXPECT_EQ(d.client_trace_id, 0x1111u);
    EXPECT_EQ(d.client_span_id, 0x2222u);
    EXPECT_EQ(d.spec_text, "v=1 name=x");
  }
  {
    SubmitReplyMsg m;
    m.req_id = 10;
    m.accepted = 1;
    m.spilled = 1;
    m.remote_id = 77;
    m.reason = 0;
    m.queue_depth = 4;
    m.queue_capacity = 4;
    m.retry_after_us = 1250.5;
    m.server_trace_id = 0xfeed;
    const SubmitReplyMsg d = SubmitReplyMsg::decode(m.encode());
    EXPECT_EQ(d.req_id, 10u);
    EXPECT_EQ(d.accepted, 1);
    EXPECT_EQ(d.spilled, 1);
    EXPECT_EQ(d.remote_id, 77u);
    EXPECT_EQ(d.retry_after_us, 1250.5);
    EXPECT_EQ(d.server_trace_id, 0xfeedu);
  }
  {
    ErrorMsg m;
    m.req_id = 3;
    m.code = static_cast<std::uint8_t>(WireErrorCode::kMalformedFrame);
    m.detail = "bad payload";
    const ErrorMsg d = ErrorMsg::decode(m.encode());
    EXPECT_EQ(d.req_id, 3u);
    EXPECT_EQ(d.code, static_cast<std::uint8_t>(WireErrorCode::kMalformedFrame));
    EXPECT_EQ(d.detail, "bad payload");
  }
  {
    HelloMsg m;
    m.client_name = "loadgen-7";
    EXPECT_EQ(HelloMsg::decode(m.encode()).client_name, "loadgen-7");
  }
}

/// A JobResult with every field off its default — including doubles
/// whose decimal representation would not round-trip and a NaN — so the
/// codec has no field it can silently skip.
farm::JobResult full_result() {
  farm::JobResult r;
  r.job_id = 0x1234'5678'9abc'def0ull;
  r.spec_fingerprint = 0xcbf29ce484222325ull;
  r.name = "full \"quoted\" result";
  r.status = farm::JobStatus::kFailed;
  r.error = "engine said no";
  r.cycles_simulated = 123456;
  r.gt.delivered = 17;
  for (int i = 0; i < 5; ++i) {
    r.gt.network.add(0.1 * i + 0.0001);
    r.gt.access.add(1e-9 * i);
    r.gt.total.add(1e9 + i);
  }
  r.be.delivered = 3;
  r.be.network.add(std::numeric_limits<double>::denorm_min());
  r.flits_injected = 999;
  r.flits_delivered = 998;
  r.overloaded = true;
  r.fault_report.rng_mirror_fixes = 1;
  r.fault_report.config_retries = 2;
  r.fault_report.ctrl_retries = 3;
  r.fault_report.load_replays = 4;
  r.fault_report.load_words_resynced = 5;
  r.fault_report.hw_rejected_words = 6;
  r.fault_report.retrieve_retries = 7;
  r.fault_report.reacks = 8;
  r.fault_report.read_disagreements = 9;
  r.fault_report.spurious_overruns_ignored = 10;
  r.fault_report.status_clears = 11;
  r.fault_report.busy_polls = 12;
  r.fault_report.watchdog_trips = 13;
  r.fault_report.aborted = true;
  r.fault_report.abort_reason = "too many stuck-busy cycles";
  r.access_delay.add(2.5);
  r.access_delay.add(7.25);
  r.state_digest = 0xdeadbeefcafef00dull;
  r.failure.kind = farm::FailureKind::kEngineError;
  r.failure.message = "boom";
  r.failure.at_cycle = 77;
  r.failure.last_checkpoint_cycle = 64;
  r.failure.last_checkpoint_digest = 0x1111;
  r.failure.attempts = 2;
  r.failure.replay = "v=1 name=replay";
  r.failure.quarantined = true;
  r.failure.flight_recording = "{\"event\": \"publish\"}\n";
  r.cancel_cause = farm::CancelCause::kDeadline;
  r.memo_hit = true;
  r.preemptions = 4;
  r.slices = 9;
  r.last_worker = 3;
  r.queue_seconds = 0.1;
  r.exec_seconds = 1.0 / 3.0;
  r.turnaround_seconds = std::nextafter(0.5, 1.0);
  return r;
}

TEST(WireResultCodec, EncodeDecodeIsAByteFixpoint) {
  const farm::JobResult r = full_result();
  WireWriter w1;
  encode_result(w1, r);
  WireReader rd(w1.bytes());
  const farm::JobResult d = decode_result(rd);
  EXPECT_NO_THROW(rd.expect_end());

  // Equivalence surface AND scheduling record both survive.
  std::string why;
  EXPECT_TRUE(farm::results_equivalent(r, d, &why)) << why;
  EXPECT_EQ(d.job_id, r.job_id);
  EXPECT_EQ(d.memo_hit, r.memo_hit);
  EXPECT_EQ(d.preemptions, r.preemptions);
  EXPECT_EQ(d.slices, r.slices);
  EXPECT_EQ(d.last_worker, r.last_worker);
  EXPECT_EQ(d.exec_seconds, r.exec_seconds);
  EXPECT_EQ(d.turnaround_seconds, r.turnaround_seconds);
  EXPECT_EQ(d.failure.flight_recording, r.failure.flight_recording);

  // Byte fixpoint: re-encoding the decode reproduces the exact bytes —
  // the bit-identical guarantee, stated as strongly as possible.
  WireWriter w2;
  encode_result(w2, d);
  EXPECT_EQ(w2.bytes(), w1.bytes());
}

TEST(WireResultCodec, ResultMsgFrameRoundTrip) {
  ResultMsg m;
  m.remote_id = 4242;
  m.result = full_result();
  const std::vector<std::uint8_t> frame_bytes =
      encode_frame(FrameType::kResult, m.encode());
  const Frame f = decode_frame(frame_bytes.data(), frame_bytes.size());
  ASSERT_EQ(f.type, FrameType::kResult);
  const ResultMsg d = ResultMsg::decode(f.payload);
  EXPECT_EQ(d.remote_id, 4242u);
  std::string why;
  EXPECT_TRUE(farm::results_equivalent(m.result, d.result, &why)) << why;
}

TEST(WireFuzz, MutatedFramesNeverDecodeSilently) {
  // Deterministic mutation fuzz: every single-byte XOR of a valid frame
  // either throws (almost always: the CRC catches it) or — only when
  // the flipped byte is in the reserved flags field the CRC covers but
  // decode ignores... no: flags are CRC-covered too, so *every*
  // mutation must throw.
  ResultMsg m;
  m.remote_id = 7;
  m.result = full_result();
  const std::vector<std::uint8_t> good =
      encode_frame(FrameType::kResult, m.encode());

  SplitMix64 rng(0xf022);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bad = good;
    const std::size_t off = rng.next_below(bad.size());
    const auto delta = static_cast<std::uint8_t>(1 + rng.next_below(255));
    bad[off] ^= delta;
    EXPECT_THROW(
        {
          const Frame f = decode_frame(bad.data(), bad.size());
          ResultMsg::decode(f.payload);
        },
        Error)
        << "offset " << off << " delta " << int(delta);
  }
  // Random truncations of the valid frame never decode either.
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = rng.next_below(good.size());
    EXPECT_THROW(decode_frame(good.data(), len), Error) << len;
  }
  // And pure garbage never crashes the decoder — it throws.
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> junk(16 + rng.next_below(64));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    EXPECT_THROW(decode_frame(junk.data(), junk.size()), Error);
  }
}

}  // namespace
}  // namespace tmsim::net
