// The remote differential (DESIGN.md §16): a farm driven through
// tmsim-farmd's wire protocol produces results bit-identical to
// in-process standalone runs — across clean runs, chaos worker kills,
// a client that disconnects and reconnects mid-stream, and a
// queue-capacity-1 farm that admits ten thousand specs through the
// spill segment with zero losses. Runs under TSan via the `net` ctest
// label (tsan preset), which makes the daemon's reader/writer/pump/
// refill locking discipline a checked property.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "farm/farm.h"
#include "farm/session.h"
#include "farmd/server.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmsim::farmd {
namespace {

using namespace std::chrono_literals;

/// Same family as farm_chaos_test: 2x2..3x3 meshes, 60..200 cycles,
/// mixed BE/GT, ~1 in 4 hosted (some with recoverable fault rates).
farm::JobSpec random_spec(std::uint64_t index) {
  SplitMix64 rng(0xfa4bd5ull + index);
  farm::JobSpec spec;
  spec.name = "remote-" + std::to_string(index);
  spec.net.width = 2 + rng.next_below(2);
  spec.net.height = 2 + rng.next_below(2);
  spec.net.topology = noc::Topology::kMesh;
  spec.net.router.queue_depth = 2 + rng.next_below(2);
  spec.priority = static_cast<farm::Priority>(
      rng.next_below(farm::kNumPriorities));
  spec.seed = rng.next();
  spec.cycles = 60 + rng.next_below(141);
  spec.engine.num_shards = 1 + rng.next_below(2);
  spec.engine.scheduler =
      static_cast<core::SchedulerKind>(rng.next_below(3));
  spec.workload.be_load = 0.05 * static_cast<double>(rng.next_below(5));
  spec.max_retries = 2;
  if (rng.next_below(4) == 0) {
    spec.kind = farm::JobKind::kHostedFpga;
    if (rng.next_below(2) == 0) {
      spec.faults.read_flip = 1e-3;
      spec.faults.stuck_busy = 1e-3;
    }
  } else {
    spec.workload.verify_payload = rng.next_below(2) == 0;
  }
  const std::size_t routers = spec.net.width * spec.net.height;
  const std::uint64_t num_gt = rng.next_below(3);
  for (std::uint64_t g = 0; g < num_gt; ++g) {
    traffic::GtStream s;
    s.src = rng.next_below(routers);
    s.dst = (s.src + 1 + rng.next_below(routers - 1)) % routers;
    s.vc = static_cast<unsigned>(g);
    s.period = 40 + 10 * rng.next_below(4);
    s.phase = rng.next_below(20);
    spec.workload.gt_streams.push_back(s);
  }
  return spec;
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = "farmd_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Streams results until `want` distinct remote ids arrived (or the
/// deadline passes). Duplicates (possible across reconnect replays) are
/// collapsed; each id keeps its first-seen result.
void drain_results(net::FarmClient& client, std::size_t want,
                   std::map<std::uint64_t, farm::JobResult>& results,
                   std::chrono::seconds deadline_s = 120s) {
  const auto deadline = std::chrono::steady_clock::now() + deadline_s;
  while (results.size() < want &&
         std::chrono::steady_clock::now() < deadline) {
    std::optional<net::ResultMsg> msg = client.next_result(200ms);
    if (!msg.has_value()) {
      continue;
    }
    EXPECT_EQ(msg->result.job_id, msg->remote_id)
        << "results must carry the client-visible id";
    results.emplace(msg->remote_id, std::move(msg->result));
  }
}

TEST(FarmdRemote, HundredSpecDifferentialIsBitIdenticalOverTheSocket) {
  constexpr std::size_t kSpecs = 100;
  std::vector<farm::JobSpec> specs;
  specs.reserve(kSpecs);
  for (std::size_t i = 0; i < kSpecs; ++i) {
    specs.push_back(random_spec(i));
    ASSERT_NO_THROW(specs.back().validate()) << specs.back().serialize();
  }
  // The in-process truth: every spec, undisturbed, on this thread.
  std::vector<farm::JobResult> standalone;
  standalone.reserve(kSpecs);
  for (const farm::JobSpec& spec : specs) {
    standalone.push_back(farm::run_job_standalone(spec));
    ASSERT_EQ(standalone.back().status, farm::JobStatus::kDone)
        << spec.name << ": " << standalone.back().error;
  }

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  FarmdOptions opt;
  opt.spill_dir = scratch_dir("differential");
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = 16;  // small on purpose: some specs spill
  opt.farm.metrics = &metrics;
  opt.farm.tracer = &tracer;
  FarmdServer server(opt);

  net::FarmClient client(server.port(), "differential-client");
  EXPECT_FALSE(client.resumed_session());
  client.subscribe();

  // Pipelined submits with a client-side trace context on every spec:
  // the wire must carry it and the server must link it.
  std::map<std::uint64_t, std::size_t> remote_to_spec;
  std::vector<std::uint64_t> reqs;
  reqs.reserve(kSpecs);
  for (const farm::JobSpec& spec : specs) {
    obs::TraceContext ctx;
    ctx.trace_id = 0x1000 + reqs.size();
    ctx.span_id = 0x2000 + reqs.size();
    reqs.push_back(client.submit_async(spec, &ctx));
  }
  std::size_t spilled = 0;
  for (std::size_t i = 0; i < kSpecs; ++i) {
    const net::SubmitReplyMsg reply = client.wait_submit_reply(reqs[i]);
    ASSERT_TRUE(reply.accepted) << specs[i].name << ": " << reply.detail;
    ASSERT_NE(reply.remote_id, 0u);
    // Remote submissions are always sampled, so directly-admitted specs
    // report their server trace id in the reply. Spilled specs get
    // theirs at readmit time — the reply can only say 0.
    if (!reply.spilled) {
      EXPECT_NE(reply.server_trace_id, 0u) << specs[i].name;
    }
    spilled += reply.spilled;
    remote_to_spec.emplace(reply.remote_id, i);
  }
  ASSERT_EQ(remote_to_spec.size(), kSpecs);

  std::map<std::uint64_t, farm::JobResult> results;
  drain_results(client, kSpecs, results);
  ASSERT_EQ(results.size(), kSpecs) << "jobs left behind over the wire";
  for (const auto& [remote_id, result] : results) {
    const std::size_t i = remote_to_spec.at(remote_id);
    ASSERT_EQ(result.status, farm::JobStatus::kDone)
        << specs[i].name << ": " << result.error;
    std::string why;
    EXPECT_TRUE(farm::results_equivalent(standalone[i], result, &why))
        << specs[i].name << ": " << why << "\n" << specs[i].serialize();
  }

  // The daemon's ingress state rides on the same introspection snapshot
  // as the farm internals.
  const std::string snapshot = client.introspect();
  EXPECT_NE(snapshot.find("\"net\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"differential-client\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"spill\""), std::string::npos);

  client.close();
  server.shutdown();

  // The wire carried the client trace context: every submit span links
  // back to the client-side ids the SubmitMsg carried.
  std::ostringstream os;
  tracer.write_jsonl(os);
  EXPECT_NE(os.str().find("link.client_trace"), std::string::npos);
  EXPECT_EQ(metrics.counter_value("net.submits.accepted") +
                metrics.counter_value("net.submits.spilled"),
            kSpecs);
  EXPECT_EQ(metrics.counter_value("net.results.streamed"), kSpecs);
  EXPECT_EQ(metrics.counter_value("net.spill.readmitted"),
            metrics.counter_value("net.submits.spilled"));
  // queue_capacity 16 with 100 pipelined submits: the spill path really
  // ran in this differential.
  EXPECT_GT(spilled, 0u);
}

TEST(FarmdRemote, ChaosWorkerKillsStayBitIdenticalOverTheWire) {
  constexpr std::size_t kSpecs = 40;
  std::vector<farm::JobSpec> specs;
  std::vector<farm::JobResult> standalone;
  for (std::size_t i = 0; i < kSpecs; ++i) {
    specs.push_back(random_spec(1000 + i));
    standalone.push_back(farm::run_job_standalone(specs.back()));
    ASSERT_EQ(standalone.back().status, farm::JobStatus::kDone);
  }

  // Kill a worker once per victim job (graceful and hard flavors, keyed
  // by farm job id) — the supervisor reclaims/respawns, and the results
  // that cross the socket must still be bit-identical.
  std::vector<std::atomic<bool>> tripped(4 * kSpecs + 1);
  FarmdOptions opt;
  opt.spill_dir = scratch_dir("chaos");
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = kSpecs;
  opt.farm.preempt_quantum = 24;
  opt.farm.supervisor_interval_ms = 2.0;
  opt.farm.chaos = [&](const farm::ChaosEvent& ev) {
    if (ev.job_id % 3 == 0 && ev.slice == 1 &&
        ev.job_id < tripped.size() && !tripped[ev.job_id].exchange(true)) {
      return ev.job_id % 2 == 0 ? farm::ChaosAction::kKillWorker
                                : farm::ChaosAction::kKillWorkerLoseSession;
    }
    return farm::ChaosAction::kNone;
  };
  FarmdServer server(opt);

  net::FarmClient client(server.port(), "chaos-client");
  client.subscribe();
  std::map<std::uint64_t, std::size_t> remote_to_spec;
  for (std::size_t i = 0; i < kSpecs; ++i) {
    const net::SubmitReplyMsg reply = client.submit(specs[i]);
    ASSERT_TRUE(reply.accepted) << reply.detail;
    remote_to_spec.emplace(reply.remote_id, i);
  }
  std::map<std::uint64_t, farm::JobResult> results;
  drain_results(client, kSpecs, results);
  ASSERT_EQ(results.size(), kSpecs);
  for (const auto& [remote_id, result] : results) {
    const std::size_t i = remote_to_spec.at(remote_id);
    ASSERT_EQ(result.status, farm::JobStatus::kDone)
        << specs[i].name << ": " << result.error;
    std::string why;
    EXPECT_TRUE(farm::results_equivalent(standalone[i], result, &why))
        << specs[i].name << ": " << why;
  }
  EXPECT_GT(server.farm().jobs_reclaimed(), 0u)
      << "the chaos quietly stopped killing workers";
  client.close();
  server.shutdown();
}

TEST(FarmdRemote, DisconnectReconnectResumesStreamWithFetchFallback) {
  constexpr std::size_t kSpecs = 30;
  FarmdOptions opt;
  opt.spill_dir = scratch_dir("reconnect");
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = kSpecs;
  FarmdServer server(opt);

  std::set<std::uint64_t> submitted;
  std::map<std::uint64_t, farm::JobResult> merged;
  {
    net::FarmClient first(server.port(), "flaky-client");
    EXPECT_FALSE(first.resumed_session());
    first.subscribe();
    for (std::size_t i = 0; i < kSpecs; ++i) {
      const net::SubmitReplyMsg reply = first.submit(random_spec(2000 + i));
      ASSERT_TRUE(reply.accepted) << reply.detail;
      submitted.insert(reply.remote_id);
    }
    // Take delivery of part of the stream, then vanish mid-stream.
    drain_results(first, kSpecs / 3, merged);
    EXPECT_GE(merged.size(), kSpecs / 3);
    first.close();
  }

  // Same name, new connection: the session resumes — the server kept
  // the undelivered outbox and streams the rest to the new socket.
  net::FarmClient second(server.port(), "flaky-client");
  EXPECT_TRUE(second.resumed_session());
  second.subscribe();
  drain_results(second, kSpecs, merged, 60s);

  // Results already inside the dead socket's buffers are gone from the
  // *stream* — that's the documented disconnect loss model — but never
  // from the server: Fetch recovers them.
  for (const std::uint64_t id : submitted) {
    if (merged.count(id) != 0) {
      continue;
    }
    const net::FetchReplyMsg reply = second.fetch(id);
    ASSERT_EQ(reply.state,
              static_cast<std::uint8_t>(net::RemoteJobState::kTerminal))
        << "job " << id << " unrecoverable after reconnect";
    ASSERT_TRUE(reply.result.has_value());
    EXPECT_EQ(reply.result->job_id, id);
    merged.emplace(id, *reply.result);
  }
  ASSERT_EQ(merged.size(), kSpecs);
  for (const auto& [id, result] : merged) {
    EXPECT_EQ(result.status, farm::JobStatus::kDone) << result.error;
  }
  second.close();
  server.shutdown();
}

TEST(FarmdRemote, CapacityOneQueueAdmitsTenThousandSpecsThroughSpill) {
  // The headline spill guarantee: a farm whose admission queue holds
  // ONE fresh job still admits 10k pipelined remote submissions — the
  // segment file is the queue — and every single one resolves and
  // streams back. Zero losses, zero rejects.
  constexpr std::size_t kJobs = 10'000;
  constexpr std::size_t kDistinct = 32;

  obs::MetricsRegistry metrics;
  FarmdOptions opt;
  opt.spill_dir = scratch_dir("tenk");
  opt.outbox_capacity = kJobs + 64;
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = 1;
  opt.farm.memo_capacity = kDistinct * 2;  // repeats served from the memo
  opt.farm.completion_feed_depth = 4096;
  opt.farm.metrics = &metrics;
  FarmdServer server(opt);

  // A small family of tiny specs, cycled: the farm memoizes the repeats
  // so the test measures the admission/spill/stream machinery, not 10k
  // simulations.
  std::vector<farm::JobSpec> family;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    farm::JobSpec spec;
    spec.name = "tiny-" + std::to_string(i);
    spec.net.width = 2;
    spec.net.height = 2;
    spec.net.topology = noc::Topology::kMesh;
    spec.seed = 0x5eed + i;
    spec.cycles = 40;
    spec.workload.be_load = 0.1;
    family.push_back(spec);
  }

  net::FarmClient client(server.port(), "firehose");
  client.subscribe();
  std::vector<std::uint64_t> reqs;
  reqs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    reqs.push_back(client.submit_async(family[i % kDistinct]));
  }
  std::set<std::uint64_t> remote_ids;
  std::size_t spilled = 0;
  for (const std::uint64_t req : reqs) {
    const net::SubmitReplyMsg reply = client.wait_submit_reply(req);
    ASSERT_TRUE(reply.accepted) << reply.detail;
    spilled += reply.spilled;
    remote_ids.insert(reply.remote_id);
  }
  ASSERT_EQ(remote_ids.size(), kJobs) << "remote ids must be distinct";
  EXPECT_GT(spilled, kJobs / 2) << "capacity 1 must push the bulk to disk";

  std::map<std::uint64_t, farm::JobResult> results;
  drain_results(client, kJobs, results, 300s);
  ASSERT_EQ(results.size(), kJobs) << "spilled specs were lost";
  for (const auto& [id, result] : results) {
    ASSERT_NE(remote_ids.count(id), 0u);
    ASSERT_EQ(result.status, farm::JobStatus::kDone) << result.error;
  }
  client.close();
  server.shutdown();

  // The ledger: everything admitted (direct or via disk), nothing
  // rejected, nothing dropped from the outbox, the spill fully drained.
  EXPECT_EQ(metrics.counter_value("net.submits.accepted") +
                metrics.counter_value("net.submits.spilled"),
            kJobs);
  EXPECT_EQ(metrics.counter_value("net.submits.rejected"), 0u);
  EXPECT_EQ(metrics.counter_value("net.results.streamed"), kJobs);
  EXPECT_EQ(metrics.counter_value("net.outbox.dropped"), 0u);
  EXPECT_EQ(metrics.counter_value("net.spill.readmitted"),
            metrics.counter_value("net.submits.spilled"));
  EXPECT_TRUE(server.spill().empty());
}

TEST(FarmdRemote, RestartRecoveryReadmitsSpilledRecordsToTheirClient) {
  // A daemon that dies with spilled-but-unadmitted records must, on
  // restart, (a) run them and route their results to the client name
  // each record stores, and (b) never hand a recovered remote id to a
  // fresh submission — a collision would rewire the new job's result
  // to the recovered one's farm id. Simulate the crashed run by
  // writing records through SpillQueue directly into the daemon's
  // spill dir (graceful shutdown always drains, so only a crash leaves
  // records behind).
  const std::string dir = scratch_dir("restart");
  constexpr std::size_t kRecovered = 6;
  std::vector<farm::JobSpec> specs;
  std::vector<farm::JobResult> standalone;
  std::map<std::uint64_t, std::size_t> recovered_to_spec;
  std::uint64_t max_recovered = 0;
  {
    SpillQueue crashed(dir);
    for (std::size_t i = 0; i < kRecovered; ++i) {
      specs.push_back(random_spec(5000 + i));
      standalone.push_back(farm::run_job_standalone(specs.back()));
      ASSERT_EQ(standalone.back().status, farm::JobStatus::kDone);
      SpillRecord rec;
      rec.remote_id = 40 + 3 * i;  // the previous run's id space
      rec.client = "phoenix";
      rec.spec_text = specs.back().serialize();
      crashed.append(specs.back().priority, rec);
      recovered_to_spec.emplace(rec.remote_id, i);
      max_recovered = std::max(max_recovered, rec.remote_id);
    }
  }  // "crash": the records stay on disk

  obs::MetricsRegistry metrics;
  FarmdOptions opt;
  opt.spill_dir = dir;  // NOT scratched again: this is the restart
  opt.farm.num_workers = 2;
  opt.farm.queue_capacity = 16;
  opt.farm.metrics = &metrics;
  FarmdServer server(opt);

  net::FarmClient client(server.port(), "phoenix");
  client.subscribe();

  // Fresh remote ids are seeded above the recovered ones.
  const farm::JobSpec fresh_spec = random_spec(5100);
  const farm::JobResult fresh_standalone =
      farm::run_job_standalone(fresh_spec);
  const net::SubmitReplyMsg fresh = client.submit(fresh_spec);
  ASSERT_TRUE(fresh.accepted) << fresh.detail;
  EXPECT_GT(fresh.remote_id, max_recovered)
      << "a fresh submission collided with the recovered id space";

  std::map<std::uint64_t, farm::JobResult> results;
  drain_results(client, kRecovered + 1, results);
  ASSERT_EQ(results.size(), kRecovered + 1) << "recovered jobs were lost";
  for (const auto& [remote_id, i] : recovered_to_spec) {
    ASSERT_NE(results.count(remote_id), 0u)
        << "recovered job " << remote_id << " never streamed";
    const farm::JobResult& result = results.at(remote_id);
    ASSERT_EQ(result.status, farm::JobStatus::kDone)
        << specs[i].name << ": " << result.error;
    std::string why;
    EXPECT_TRUE(farm::results_equivalent(standalone[i], result, &why))
        << specs[i].name << ": " << why;
  }
  ASSERT_NE(results.count(fresh.remote_id), 0u);
  std::string why;
  EXPECT_TRUE(
      farm::results_equivalent(fresh_standalone, results.at(fresh.remote_id),
                               &why))
      << why;
  // At least the recovered records went through readmit (the fresh
  // submit may also have spilled behind them, per FIFO-through-spill).
  EXPECT_GE(metrics.counter_value("net.spill.readmitted"), kRecovered);
  client.close();
  server.shutdown();
  EXPECT_TRUE(server.spill().empty());
}

TEST(FarmdRemote, RejectsBackpressureAndProtocolErrors) {
  FarmdOptions opt;
  opt.spill_dir = scratch_dir("errors");
  opt.farm.num_workers = 1;
  opt.farm.queue_capacity = 4;
  opt.farm.max_job_cycles = 1000;
  FarmdServer server(opt);

  net::FarmClient client(server.port(), "edge-client");

  // Invalid spec: passes client-side serialization, fails server-side
  // validate() — a structured reject, not a dropped connection.
  farm::JobSpec invalid;
  invalid.name = "zero-mesh";
  invalid.net.width = 0;
  invalid.net.height = 0;
  invalid.cycles = 10;
  const net::SubmitReplyMsg bad = client.submit(invalid);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.reason,
            static_cast<std::uint8_t>(farm::RejectReason::kInvalidSpec));
  EXPECT_FALSE(bad.detail.empty());

  // Too-large cycle budget: rejected before it can ever reach the spill
  // segment (durably accepting it would be a lie).
  farm::JobSpec huge = random_spec(3000);
  huge.cycles = 2000;
  const net::SubmitReplyMsg big = client.submit(huge);
  EXPECT_FALSE(big.accepted);
  EXPECT_EQ(big.reason,
            static_cast<std::uint8_t>(farm::RejectReason::kTooLarge));

  // Unknown-job semantics.
  EXPECT_EQ(client.cancel(999999).outcome,
            static_cast<std::uint8_t>(farm::CancelResult::kUnknownJob));
  EXPECT_EQ(client.fetch(999999).state,
            static_cast<std::uint8_t>(net::RemoteJobState::kUnknown));

  // A valid submit still works on the same connection after rejects,
  // and Fetch polls it to terminal without a subscription.
  const net::SubmitReplyMsg ok = client.submit(random_spec(3001));
  ASSERT_TRUE(ok.accepted);
  for (;;) {
    const net::FetchReplyMsg f = client.fetch(ok.remote_id);
    if (f.state == static_cast<std::uint8_t>(net::RemoteJobState::kTerminal)) {
      ASSERT_TRUE(f.result.has_value());
      EXPECT_EQ(f.result->job_id, ok.remote_id);
      EXPECT_EQ(f.result->status, farm::JobStatus::kDone);
      break;
    }
    ASSERT_TRUE(
        f.state == static_cast<std::uint8_t>(net::RemoteJobState::kQueued) ||
        f.state == static_cast<std::uint8_t>(net::RemoteJobState::kSpilled));
    std::this_thread::sleep_for(1ms);
  }

  client.close();

  // Protocol gate on a raw socket: the first frame must be Hello.
  net::Socket raw = net::Socket::connect_local(server.port());
  net::SubscribeMsg sub;
  sub.req_id = 1;
  raw.send_frame(net::FrameType::kSubscribe, sub.encode());
  std::optional<net::Frame> reply = raw.recv_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::FrameType::kError);
  const net::ErrorMsg err = net::ErrorMsg::decode(reply->payload);
  EXPECT_EQ(err.code, static_cast<std::uint8_t>(net::WireErrorCode::kProtocol));
  raw.close();

  // A corrupt frame (bad CRC) kills the connection server-side: the
  // next read sees EOF, and the server survives to serve others.
  net::Socket raw2 = net::Socket::connect_local(server.port());
  net::HelloMsg hello;
  hello.client_name = "corrupt";
  raw2.send_frame(net::FrameType::kHello, hello.encode());
  ASSERT_TRUE(raw2.recv_frame().has_value());  // HelloAck
  std::vector<std::uint8_t> frame =
      net::encode_frame(net::FrameType::kIntrospect,
                        net::IntrospectMsg{7}.encode());
  frame[frame.size() - 1] ^= 0xff;  // break the CRC
  raw2.send_all(frame.data(), frame.size());
  EXPECT_FALSE(raw2.recv_frame().has_value());  // server hung up
  raw2.close();

  net::FarmClient survivor(server.port(), "survivor");
  EXPECT_NE(survivor.introspect().find("\"net\""), std::string::npos);
  survivor.close();
  server.shutdown();
}

}  // namespace
}  // namespace tmsim::farmd
