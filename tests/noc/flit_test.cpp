#include "noc/flit.h"

#include <gtest/gtest.h>

#include "noc/link.h"

namespace tmsim::noc {
namespace {

TEST(Flit, EncodeDecodeRoundTrip) {
  for (auto type : {FlitType::kIdle, FlitType::kHead, FlitType::kBody,
                    FlitType::kTail}) {
    for (std::uint16_t payload : {std::uint16_t{0}, std::uint16_t{0xffff},
                                  std::uint16_t{0x1234}}) {
      const Flit f{type, payload};
      EXPECT_EQ(decode_flit(encode_flit(f)), f);
    }
  }
}

TEST(Flit, EncodingIs18Bits) {
  const Flit f{FlitType::kTail, 0xffff};
  EXPECT_LT(encode_flit(f), 1u << kFlitBits);
  EXPECT_THROW(decode_flit(1u << kFlitBits), tmsim::Error);
}

TEST(Flit, HeadFieldsRoundTrip) {
  const auto payload = make_head_payload(15, 3, 2, 63);
  const HeadFields h = decode_head(payload);
  EXPECT_EQ(h.dest_x, 15u);
  EXPECT_EQ(h.dest_y, 3u);
  EXPECT_EQ(h.vc, 2u);
  EXPECT_EQ(h.seq, 63u);
}

TEST(Flit, HeadFieldRangeChecks) {
  EXPECT_THROW(make_head_payload(16, 0, 0, 0), tmsim::Error);
  EXPECT_THROW(make_head_payload(0, 16, 0, 0), tmsim::Error);
  EXPECT_THROW(make_head_payload(0, 0, 4, 0), tmsim::Error);
  EXPECT_THROW(make_head_payload(0, 0, 0, 64), tmsim::Error);
}

TEST(Link, ForwardEncodeDecodeRoundTrip) {
  const LinkForward f{true, 3, Flit{FlitType::kBody, 0xbeef}};
  EXPECT_EQ(decode_forward(encode_forward(f)), f);
  EXPECT_EQ(encode_forward(idle_forward()), 0u);
  EXPECT_EQ(decode_forward(0), idle_forward());
}

TEST(Link, InvalidForwardMustBeAllZero) {
  // The HBR mechanism compares raw bits; an "invalid but dirty" encoding
  // would make logically identical link values look different.
  LinkForward f;
  f.valid = false;
  f.vc = 1;
  EXPECT_THROW(encode_forward(f), tmsim::Error);
}

TEST(Link, CreditWires) {
  CreditWires c;
  EXPECT_EQ(encode_credit(c), 0u);
  c.set(0);
  c.set(3);
  EXPECT_TRUE(c.get(0));
  EXPECT_FALSE(c.get(1));
  EXPECT_TRUE(c.get(3));
  EXPECT_EQ(decode_credit(encode_credit(c), 4), c);
  EXPECT_THROW(decode_credit(0x4u, 2), tmsim::Error);
}

}  // namespace
}  // namespace tmsim::noc
