#include "noc/network.h"

#include <gtest/gtest.h>

namespace tmsim::noc {
namespace {

NetworkConfig small_net(Topology topo = Topology::kTorus) {
  NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = topo;
  return net;
}

TEST(UpstreamOf, TorusWiring) {
  const NetworkConfig net = small_net();
  // Router 4 = (1,1). Its west input is driven by (0,1) = router 3,
  // through that router's east output.
  const UpstreamPort up = upstream_of(net, 4, Port::kWest);
  EXPECT_TRUE(up.connected);
  EXPECT_EQ(up.router, 3u);
  EXPECT_EQ(up.port, Port::kEast);
}

TEST(UpstreamOf, MeshBoundary) {
  const NetworkConfig net = small_net(Topology::kMesh);
  EXPECT_FALSE(upstream_of(net, 0, Port::kNorth).connected);
  EXPECT_FALSE(upstream_of(net, 0, Port::kWest).connected);
  EXPECT_TRUE(upstream_of(net, 0, Port::kEast).connected);
}

/// Injects one packet and steps until it is delivered; returns the cycle
/// count and checks the payload sequence.
void expect_delivery(DirectNocSimulation& sim, std::size_t src,
                     std::size_t dst, unsigned vc,
                     const std::vector<Flit>& flits, std::size_t max_cycles) {
  std::size_t sent = 0;
  std::vector<Flit> received;
  for (std::size_t c = 0; c < max_cycles; ++c) {
    if (sent < flits.size()) {
      sim.set_local_input(src, LinkForward{true,
                                           static_cast<std::uint8_t>(vc),
                                           flits[sent]});
      ++sent;
    }
    sim.step();
    const LinkForward out = sim.local_output(dst);
    if (out.valid) {
      EXPECT_EQ(out.vc, vc);
      received.push_back(out.flit);
    }
    // Nothing may leak out of other nodes.
    for (std::size_t r = 0; r < sim.config().num_routers(); ++r) {
      if (r != dst) {
        ASSERT_FALSE(sim.local_output(r).valid)
            << "flit escaped at router " << r;
      }
    }
    if (received.size() == flits.size()) {
      EXPECT_EQ(received, flits);
      return;
    }
  }
  FAIL() << "packet not delivered within " << max_cycles << " cycles ("
         << received.size() << "/" << flits.size() << " flits)";
}

TEST(DirectNocSimulation, SingleHopPacketDelivery) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  const std::vector<Flit> pkt{
      Flit{FlitType::kHead, make_head_payload(1, 0, 0, 1)},
      Flit{FlitType::kBody, 0xaaaa},
      Flit{FlitType::kTail, 0x5555},
  };
  expect_delivery(sim, /*src=*/0, /*dst=*/1, /*vc=*/0, pkt, 50);
}

TEST(DirectNocSimulation, MultiHopWithXYTurn) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  // (0,0) → (2,2): torus shortest is 1 west-wrap? dx: 0→2 width 3: fwd 2,
  // bwd 1 → west wrap, then 1 north-wrap. 2 hops.
  const std::vector<Flit> pkt{
      Flit{FlitType::kHead, make_head_payload(2, 2, 1, 2)},
      Flit{FlitType::kTail, 0x1234},
  };
  expect_delivery(sim, 0, 8, 1, pkt, 50);
}

TEST(DirectNocSimulation, MeshCornerToCorner) {
  const NetworkConfig net = small_net(Topology::kMesh);
  DirectNocSimulation sim(net);
  const std::vector<Flit> pkt{
      Flit{FlitType::kHead, make_head_payload(2, 2, 3, 3)},
      Flit{FlitType::kBody, 1},
      Flit{FlitType::kBody, 2},
      Flit{FlitType::kTail, 3},
  };
  expect_delivery(sim, 0, 8, 3, pkt, 60);
}

TEST(DirectNocSimulation, MinimumLatencyIsOneCyclePerHop) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  sim.set_local_input(0, LinkForward{true, 0,
                                     Flit{FlitType::kHead,
                                          make_head_payload(1, 0, 0, 0)}});
  sim.step();  // cycle 0: head enters local queue of router 0
  EXPECT_FALSE(sim.local_output(1).valid);
  sim.step();  // cycle 1: router 0 forwards east; lands in router 1 queue
  EXPECT_FALSE(sim.local_output(1).valid);
  sim.step();  // cycle 2: router 1 ejects on its local port
  EXPECT_TRUE(sim.local_output(1).valid);
}

TEST(DirectNocSimulation, CreditsReturnedToNi) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  sim.set_local_input(0, LinkForward{true, 2,
                                     Flit{FlitType::kHead,
                                          make_head_payload(1, 0, 2, 0)}});
  sim.step();
  // Head sits in the local queue; next cycle it is forwarded and the
  // credit for the local input VC 2 comes back.
  sim.step();
  EXPECT_TRUE(sim.local_input_credits(0).get(2));
}

TEST(DirectNocSimulation, StateWordChangesOnActivity) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  const BitVector before = sim.router_state_word(0);
  sim.set_local_input(0, LinkForward{true, 0,
                                     Flit{FlitType::kHead,
                                          make_head_payload(1, 0, 0, 0)}});
  sim.step();
  EXPECT_NE(sim.router_state_word(0), before);
}

TEST(DirectNocSimulation, IdleNetworkStateIsStable) {
  const NetworkConfig net = small_net();
  DirectNocSimulation sim(net);
  const BitVector before = sim.router_state_word(4);
  for (int i = 0; i < 10; ++i) {
    sim.step();
  }
  EXPECT_EQ(sim.router_state_word(4), before);
  EXPECT_EQ(sim.cycle(), 10u);
}

}  // namespace
}  // namespace tmsim::noc
