#include "noc/topology.h"

#include <gtest/gtest.h>

namespace tmsim::noc {
namespace {

NetworkConfig torus(std::size_t w, std::size_t h) {
  NetworkConfig net;
  net.width = w;
  net.height = h;
  net.topology = Topology::kTorus;
  return net;
}

NetworkConfig mesh(std::size_t w, std::size_t h) {
  NetworkConfig net = torus(w, h);
  net.topology = Topology::kMesh;
  return net;
}

TEST(Topology, IndexCoordRoundTrip) {
  const NetworkConfig net = torus(6, 4);
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    EXPECT_EQ(router_index(net, router_coord(net, i)), i);
  }
  EXPECT_EQ(router_index(net, Coord{2, 3}), 3u * 6 + 2);
}

TEST(Topology, OppositePorts) {
  EXPECT_EQ(opposite(Port::kNorth), Port::kSouth);
  EXPECT_EQ(opposite(Port::kSouth), Port::kNorth);
  EXPECT_EQ(opposite(Port::kEast), Port::kWest);
  EXPECT_EQ(opposite(Port::kWest), Port::kEast);
  EXPECT_THROW(opposite(Port::kLocal), tmsim::Error);
}

TEST(Topology, TorusWrapsAround) {
  const NetworkConfig net = torus(4, 3);
  EXPECT_EQ(neighbour(net, Coord{0, 0}, Port::kWest), (Coord{3, 0}));
  EXPECT_EQ(neighbour(net, Coord{3, 2}, Port::kEast), (Coord{0, 2}));
  EXPECT_EQ(neighbour(net, Coord{1, 0}, Port::kNorth), (Coord{1, 2}));
  EXPECT_EQ(neighbour(net, Coord{1, 2}, Port::kSouth), (Coord{1, 0}));
}

TEST(Topology, MeshBoundariesUnconnected) {
  const NetworkConfig net = mesh(4, 3);
  EXPECT_FALSE(neighbour(net, Coord{0, 0}, Port::kWest).has_value());
  EXPECT_FALSE(neighbour(net, Coord{0, 0}, Port::kNorth).has_value());
  EXPECT_FALSE(neighbour(net, Coord{3, 2}, Port::kEast).has_value());
  EXPECT_FALSE(neighbour(net, Coord{3, 2}, Port::kSouth).has_value());
  EXPECT_EQ(neighbour(net, Coord{0, 0}, Port::kEast), (Coord{1, 0}));
}

TEST(Topology, NeighbourSymmetry) {
  // If B is A's neighbour through p, then A is B's neighbour through
  // opposite(p) — for both topologies.
  for (const NetworkConfig& net : {torus(5, 4), mesh(5, 4)}) {
    for (std::size_t i = 0; i < net.num_routers(); ++i) {
      const Coord a = router_coord(net, i);
      for (std::size_t p = 1; p < kPorts; ++p) {
        const auto b = neighbour(net, a, static_cast<Port>(p));
        if (b.has_value()) {
          EXPECT_EQ(neighbour(net, *b, opposite(static_cast<Port>(p))), a);
        }
      }
    }
  }
}

TEST(Topology, DegenerateSingleColumnTorus) {
  // A 1-wide torus dimension must not make a router its own neighbour.
  const NetworkConfig net = torus(1, 4);
  EXPECT_FALSE(neighbour(net, Coord{0, 1}, Port::kEast).has_value());
  EXPECT_FALSE(neighbour(net, Coord{0, 1}, Port::kWest).has_value());
  EXPECT_TRUE(neighbour(net, Coord{0, 1}, Port::kSouth).has_value());
}

TEST(Routing, SelfRoutesLocal) {
  const NetworkConfig net = torus(6, 6);
  EXPECT_EQ(route_xy(net, Coord{2, 3}, Coord{2, 3}), Port::kLocal);
}

TEST(Routing, XBeforeY) {
  const NetworkConfig net = mesh(6, 6);
  EXPECT_EQ(route_xy(net, Coord{1, 1}, Coord{3, 4}), Port::kEast);
  EXPECT_EQ(route_xy(net, Coord{3, 1}, Coord{3, 4}), Port::kSouth);
  EXPECT_EQ(route_xy(net, Coord{3, 4}, Coord{1, 1}), Port::kWest);
  EXPECT_EQ(route_xy(net, Coord{1, 4}, Coord{1, 1}), Port::kNorth);
}

TEST(Routing, TorusTakesShorterWrap) {
  const NetworkConfig net = torus(6, 6);
  EXPECT_EQ(route_xy(net, Coord{0, 0}, Coord{5, 0}), Port::kWest);  // 1 hop
  EXPECT_EQ(route_xy(net, Coord{0, 0}, Coord{2, 0}), Port::kEast);  // 2 hops
  // Exact tie (3 vs 3) goes to the positive (east) direction.
  EXPECT_EQ(route_xy(net, Coord{0, 0}, Coord{3, 0}), Port::kEast);
  EXPECT_EQ(route_xy(net, Coord{1, 0}, Coord{1, 5}), Port::kNorth);
}

TEST(Routing, EveryPairConvergesToDestination) {
  // Property: following route_xy hop by hop reaches the destination in
  // exactly route_hops steps, for both topologies.
  for (const NetworkConfig& net : {torus(5, 3), mesh(5, 3)}) {
    for (std::size_t s = 0; s < net.num_routers(); ++s) {
      for (std::size_t d = 0; d < net.num_routers(); ++d) {
        Coord here = router_coord(net, s);
        const Coord dest = router_coord(net, d);
        const std::size_t expected = route_hops(net, here, dest);
        std::size_t steps = 0;
        while (!(here == dest)) {
          const Port p = route_xy(net, here, dest);
          ASSERT_NE(p, Port::kLocal);
          const auto next = neighbour(net, here, p);
          ASSERT_TRUE(next.has_value()) << "route left the grid";
          here = *next;
          ASSERT_LE(++steps, net.num_routers()) << "routing loop";
        }
        EXPECT_EQ(steps, expected);
      }
    }
  }
}

}  // namespace
}  // namespace tmsim::noc
