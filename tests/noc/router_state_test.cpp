#include "noc/router_state.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tmsim::noc {
namespace {

RouterConfig default_cfg() { return RouterConfig{}; }

TEST(RouterState, ResetShape) {
  const RouterConfig cfg = default_cfg();
  RouterState s(cfg);
  EXPECT_EQ(s.queues.size(), 20u);
  EXPECT_EQ(s.out_vcs.size(), 20u);
  EXPECT_EQ(s.rr_ptr.size(), kPorts);
  for (const auto& ovc : s.out_vcs) {
    EXPECT_EQ(ovc.credits, cfg.queue_depth);
    EXPECT_FALSE(ovc.busy);
  }
}

TEST(RouterStateCodec, PaperTable1QueueBits) {
  // Table 1: "Input queues 1440 bits" for 20 queues × 4 flits × 18 bits.
  const RouterStateCodec codec(default_cfg());
  const auto by_cat = codec.layout().bits_by_category();
  EXPECT_EQ(by_cat.at("input queues"), 1440u);
}

TEST(RouterStateCodec, ResetRoundTrip) {
  const RouterStateCodec codec(default_cfg());
  const BitVector word = codec.reset_word();
  const RouterState s = codec.deserialize(word);
  EXPECT_EQ(codec.serialize(s), word);
}

TEST(RouterStateCodec, NonTrivialStateRoundTrip) {
  const RouterConfig cfg = default_cfg();
  const RouterStateCodec codec(cfg);
  RouterState s(cfg);
  // Exercise queue contents, pointers-after-wrap, locks and counters.
  s.queues[3].fifo.push(Flit{FlitType::kHead, 0x1234});
  s.queues[3].fifo.push(Flit{FlitType::kTail, 0x5678});
  s.queues[7].fifo.push(Flit{FlitType::kBody, 0xffff});
  s.queues[7].fifo.pop();
  s.queues[7].fifo.push(Flit{FlitType::kBody, 0xaaaa});
  s.queues[7].locked = true;
  s.queues[7].out_port = Port::kWest;
  s.out_vcs[5].busy = true;
  s.out_vcs[5].owner_port = 3;
  s.out_vcs[5].credits = 1;
  s.rr_ptr[2] = 13;

  const BitVector word = codec.serialize(s);
  const RouterState t = codec.deserialize(word);
  EXPECT_TRUE(states_equal(codec, s, t));
  EXPECT_EQ(t.queues[3].fifo.size(), 2u);
  EXPECT_EQ(t.queues[3].fifo.front(), (Flit{FlitType::kHead, 0x1234}));
  EXPECT_EQ(t.queues[7].fifo.size(), 1u);
  EXPECT_EQ(t.queues[7].fifo.front(), (Flit{FlitType::kBody, 0xaaaa}));
  EXPECT_TRUE(t.queues[7].locked);
  EXPECT_EQ(t.queues[7].out_port, Port::kWest);
  EXPECT_EQ(t.out_vcs[5].credits, 1u);
  EXPECT_EQ(t.rr_ptr[2], 13u);
}

TEST(RouterStateCodec, FullQueueRoundTrip) {
  const RouterConfig cfg = default_cfg();
  const RouterStateCodec codec(cfg);
  RouterState s(cfg);
  for (std::size_t i = 0; i < cfg.queue_depth; ++i) {
    s.queues[0].fifo.push(
        Flit{FlitType::kBody, static_cast<std::uint16_t>(i)});
  }
  const RouterState t = codec.deserialize(codec.serialize(s));
  EXPECT_TRUE(t.queues[0].fifo.full());
  EXPECT_TRUE(states_equal(codec, s, t));
}

TEST(RouterStateCodec, DepthAffectsWidths) {
  RouterConfig d2 = default_cfg();
  d2.queue_depth = 2;
  RouterConfig d8 = default_cfg();
  d8.queue_depth = 8;
  const RouterStateCodec c2(d2), c8(d8);
  EXPECT_LT(c2.state_bits(), c8.state_bits());
  EXPECT_EQ(c2.layout().bits_by_category().at("input queues"),
            20u * 2 * kFlitBits);
  EXPECT_EQ(c8.layout().bits_by_category().at("input queues"),
            20u * 8 * kFlitBits);
}

TEST(RouterStateCodec, RandomizedRoundTrip) {
  // Property: serialize∘deserialize is the identity on the serialized
  // form, for random reachable-ish states.
  const RouterConfig cfg = default_cfg();
  const RouterStateCodec codec(cfg);
  tmsim::SplitMix64 rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    RouterState s(cfg);
    for (auto& q : s.queues) {
      const std::size_t n = rng.next_below(cfg.queue_depth + 1);
      for (std::size_t i = 0; i < n; ++i) {
        q.fifo.push(Flit{static_cast<FlitType>(1 + rng.next_below(3)),
                         static_cast<std::uint16_t>(rng.next())});
      }
      q.locked = rng.next_below(2) == 1;
      q.out_port = static_cast<Port>(rng.next_below(kPorts));
    }
    for (auto& ovc : s.out_vcs) {
      ovc.busy = rng.next_below(2) == 1;
      ovc.owner_port = static_cast<std::uint8_t>(rng.next_below(kPorts));
      ovc.credits = static_cast<std::uint8_t>(
          rng.next_below(cfg.queue_depth + 1));
    }
    for (auto& rr : s.rr_ptr) {
      rr = static_cast<std::uint8_t>(rng.next_below(cfg.num_queues()));
    }
    const BitVector w1 = codec.serialize(s);
    const BitVector w2 = codec.serialize(codec.deserialize(w1));
    ASSERT_EQ(w1, w2);
  }
}

TEST(RouterStateCodec, RejectsWrongWidthWord) {
  const RouterStateCodec codec(default_cfg());
  EXPECT_THROW(codec.deserialize(BitVector(codec.state_bits() + 1)),
               tmsim::Error);
}

TEST(StateLayout, CategoriesAndOffsets) {
  StateLayout layout;
  const auto a = layout.add_field("cat1", "a", 5);
  const auto b = layout.add_field("cat2", "b", 7);
  const auto c = layout.add_field("cat1", "c", 64);
  EXPECT_EQ(layout.total_bits(), 76u);
  EXPECT_EQ(layout.field(b).offset, 5u);
  EXPECT_EQ(layout.field(c).offset, 12u);
  const auto by_cat = layout.bits_by_category();
  EXPECT_EQ(by_cat.at("cat1"), 69u);
  EXPECT_EQ(by_cat.at("cat2"), 7u);

  BitVector w(layout.total_bits());
  layout.write(w, a, 0x1f);
  layout.write(w, c, 0xffffffffffffffffull);
  EXPECT_EQ(layout.read(w, a), 0x1fu);
  EXPECT_EQ(layout.read(w, b), 0u);
  EXPECT_EQ(layout.read(w, c), 0xffffffffffffffffull);
}

}  // namespace
}  // namespace tmsim::noc
