// Parameterized sweeps over the router's synthesis parameters: the codec
// and logic must be bit-consistent for every (num_vcs, queue_depth) the
// FPGA build could be synthesized with.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "noc/network.h"
#include "noc/router_logic.h"
#include "noc/router_state.h"

namespace tmsim::noc {
namespace {

struct Params {
  std::size_t num_vcs;
  std::size_t queue_depth;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  return "vcs" + std::to_string(info.param.num_vcs) + "_depth" +
         std::to_string(info.param.queue_depth);
}

class RouterConfigSweep : public ::testing::TestWithParam<Params> {
 protected:
  RouterConfig cfg() const {
    RouterConfig c;
    c.num_vcs = GetParam().num_vcs;
    c.queue_depth = GetParam().queue_depth;
    return c;
  }
};

TEST_P(RouterConfigSweep, DerivedWidths) {
  const RouterConfig c = cfg();
  EXPECT_EQ(c.num_queues(), kPorts * c.num_vcs);
  EXPECT_EQ(std::size_t{1} << c.ptr_bits() >= c.queue_depth, true);
  EXPECT_GE((std::size_t{1} << c.credit_bits()), c.queue_depth + 1);
  EXPECT_GE((std::size_t{1} << c.rr_bits()), c.num_queues());
}

TEST_P(RouterConfigSweep, StateBitsScaleWithParameters) {
  const RouterConfig c = cfg();
  const RouterStateCodec codec(c);
  const auto by_cat = codec.layout().bits_by_category();
  EXPECT_EQ(by_cat.at("input queues"),
            c.num_queues() * c.queue_depth * kFlitBits);
  EXPECT_GT(by_cat.at("control and arbitration"), 0u);
  EXPECT_EQ(codec.state_bits(),
            by_cat.at("input queues") + by_cat.at("control and arbitration"));
}

TEST_P(RouterConfigSweep, RandomizedCodecRoundTrip) {
  const RouterConfig c = cfg();
  const RouterStateCodec codec(c);
  tmsim::SplitMix64 rng(c.num_vcs * 131 + c.queue_depth);
  for (int iter = 0; iter < 50; ++iter) {
    RouterState s(c);
    for (auto& q : s.queues) {
      const std::size_t n = rng.next_below(c.queue_depth + 1);
      for (std::size_t i = 0; i < n; ++i) {
        q.fifo.push(Flit{static_cast<FlitType>(1 + rng.next_below(3)),
                         static_cast<std::uint16_t>(rng.next())});
      }
      q.locked = rng.next_below(2) == 1;
      q.out_port = static_cast<Port>(rng.next_below(kPorts));
    }
    for (auto& ovc : s.out_vcs) {
      ovc.busy = rng.next_below(2) == 1;
      ovc.owner_port = static_cast<std::uint8_t>(rng.next_below(kPorts));
      ovc.credits =
          static_cast<std::uint8_t>(rng.next_below(c.queue_depth + 1));
    }
    const BitVector w = codec.serialize(s);
    ASSERT_EQ(codec.serialize(codec.deserialize(w)), w);
  }
}

TEST_P(RouterConfigSweep, SinglePacketCrossesTheNetwork) {
  NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = Topology::kMesh;
  net.router = cfg();
  DirectNocSimulation sim(net);
  const unsigned vc = static_cast<unsigned>(net.router.num_vcs - 1);
  const std::vector<Flit> pkt{
      Flit{FlitType::kHead, make_head_payload(2, 2, vc, 1)},
      Flit{FlitType::kTail, 0x7777},
  };
  std::size_t sent = 0;
  std::vector<Flit> got;
  for (int cycleno = 0; cycleno < 60 && got.size() < pkt.size(); ++cycleno) {
    if (sent < pkt.size()) {
      sim.set_local_input(0, LinkForward{true, static_cast<std::uint8_t>(vc),
                                         pkt[sent]});
      ++sent;
    }
    sim.step();
    const LinkForward out = sim.local_output(8);
    if (out.valid) {
      EXPECT_EQ(out.vc, vc);
      got.push_back(out.flit);
    }
  }
  EXPECT_EQ(got, pkt);
  check_credit_invariant(sim);
}

TEST_P(RouterConfigSweep, IdleRouterOutputsNothing) {
  NetworkConfig net;
  net.width = 2;
  net.height = 2;
  net.router = cfg();
  RouterEnv env{&net, Coord{0, 0}};
  RouterState s(net.router);
  const RouterOutputs out = compute_outputs(s, env);
  for (std::size_t o = 0; o < kPorts; ++o) {
    EXPECT_FALSE(out.fwd_out[o].valid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterConfigSweep,
    ::testing::Values(Params{1, 1}, Params{1, 4}, Params{2, 2}, Params{2, 8},
                      Params{3, 4}, Params{4, 1}, Params{4, 2}, Params{4, 4},
                      Params{4, 8}, Params{4, 15}),
    param_name);

TEST(RouterConfigValidation, RejectsOutOfRange) {
  RouterConfig c;
  c.num_vcs = 0;
  EXPECT_THROW(c.validate(), tmsim::Error);
  c.num_vcs = 5;
  EXPECT_THROW(c.validate(), tmsim::Error);
  c = RouterConfig{};
  c.queue_depth = 0;
  EXPECT_THROW(c.validate(), tmsim::Error);
  c.queue_depth = 16;
  EXPECT_THROW(c.validate(), tmsim::Error);
}

TEST(NetworkConfigValidation, PaperRange) {
  NetworkConfig net;
  net.width = 1;
  net.height = 1;  // 1 router < the paper's minimum of 2
  EXPECT_THROW(net.validate(), tmsim::Error);
  net.width = 16;
  net.height = 16;  // 256 routers: the paper's maximum — allowed
  net.validate();
  net.width = 17;
  EXPECT_THROW(net.validate(), tmsim::Error);
}

}  // namespace
}  // namespace tmsim::noc
