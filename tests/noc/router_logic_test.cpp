#include "noc/router_logic.h"

#include <gtest/gtest.h>

namespace tmsim::noc {
namespace {

// A 6×6 torus with the router under test at (2,2).
struct Fixture {
  Fixture() {
    net.width = 6;
    net.height = 6;
    net.topology = Topology::kTorus;
    env.net = &net;
    env.coord = Coord{2, 2};
  }

  /// Pushes a fresh packet head for destination (dx,dy) into queue
  /// (port, vc).
  void push_head(RouterState& s, Port port, unsigned vc, unsigned dx,
                 unsigned dy, unsigned seq = 0) {
    s.queues[RouterState::index(net.router, port, vc)].fifo.push(
        Flit{FlitType::kHead, make_head_payload(dx, dy, vc, seq)});
  }

  NetworkConfig net;
  RouterEnv env;
};

TEST(RouterLogic, EmptyRouterIsSilent) {
  Fixture fx;
  RouterState s(fx.net.router);
  const RouterOutputs out = compute_outputs(s, fx.env);
  for (std::size_t o = 0; o < kPorts; ++o) {
    EXPECT_FALSE(out.fwd_out[o].valid);
    EXPECT_EQ(out.credit_out[o].mask, 0u);
  }
  // Next state with idle inputs is bit-identical.
  const RouterStateCodec codec(fx.net.router);
  const RouterState next = compute_next_state(s, RouterInputs{}, fx.env);
  EXPECT_TRUE(states_equal(codec, s, next));
}

TEST(RouterLogic, HeadRoutesByXY) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 0, /*dx=*/4, /*dy=*/2);  // 2 east
  EXPECT_EQ(queue_request(s, RouterState::index(fx.net.router, Port::kLocal, 0),
                          fx.env),
            Port::kEast);
  const RouterOutputs out = compute_outputs(s, fx.env);
  EXPECT_TRUE(out.fwd_out[static_cast<std::size_t>(Port::kEast)].valid);
  EXPECT_EQ(out.fwd_out[static_cast<std::size_t>(Port::kEast)].vc, 0u);
  // The pop returns a credit on the local input port, VC 0.
  EXPECT_TRUE(out.credit_out[static_cast<std::size_t>(Port::kLocal)].get(0));
}

TEST(RouterLogic, DestinationHereRoutesLocal) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kWest, 1, 2, 2);  // dest == here
  const RouterOutputs out = compute_outputs(s, fx.env);
  EXPECT_TRUE(out.fwd_out[static_cast<std::size_t>(Port::kLocal)].valid);
  EXPECT_EQ(out.fwd_out[static_cast<std::size_t>(Port::kLocal)].vc, 1u);
}

TEST(RouterLogic, HeadGrantLocksRouteAndOutputVc) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 2, 4, 2);
  s.queues[RouterState::index(fx.net.router, Port::kLocal, 2)].fifo.push(
      Flit{FlitType::kTail, 0xbeef});

  const RouterState s1 = compute_next_state(s, RouterInputs{}, fx.env);
  const std::size_t q = RouterState::index(fx.net.router, Port::kLocal, 2);
  const std::size_t ovc = RouterState::index(fx.net.router, Port::kEast, 2);
  EXPECT_TRUE(s1.queues[q].locked);
  EXPECT_EQ(s1.queues[q].out_port, Port::kEast);
  EXPECT_TRUE(s1.out_vcs[ovc].busy);
  EXPECT_EQ(s1.out_vcs[ovc].owner_port,
            static_cast<std::uint8_t>(Port::kLocal));
  EXPECT_EQ(s1.out_vcs[ovc].credits, fx.net.router.queue_depth - 1);

  // Tail pass releases both locks.
  const RouterState s2 = compute_next_state(s1, RouterInputs{}, fx.env);
  EXPECT_FALSE(s2.queues[q].locked);
  EXPECT_FALSE(s2.out_vcs[ovc].busy);
  EXPECT_EQ(s2.out_vcs[ovc].credits, fx.net.router.queue_depth - 2);
}

TEST(RouterLogic, NoCreditsBlocksQueue) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 0, 4, 2);
  s.out_vcs[RouterState::index(fx.net.router, Port::kEast, 0)].credits = 0;
  EXPECT_FALSE(queue_eligible(
      s, RouterState::index(fx.net.router, Port::kLocal, 0), fx.env));
  const RouterOutputs out = compute_outputs(s, fx.env);
  EXPECT_FALSE(out.fwd_out[static_cast<std::size_t>(Port::kEast)].valid);
}

TEST(RouterLogic, BusyOutputVcBlocksNewHead) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 0, 4, 2);
  auto& ovc = s.out_vcs[RouterState::index(fx.net.router, Port::kEast, 0)];
  ovc.busy = true;
  ovc.owner_port = static_cast<std::uint8_t>(Port::kNorth);
  EXPECT_FALSE(queue_eligible(
      s, RouterState::index(fx.net.router, Port::kLocal, 0), fx.env));
}

TEST(RouterLogic, MidPacketRequiresOwnership) {
  Fixture fx;
  RouterState s(fx.net.router);
  const std::size_t q = RouterState::index(fx.net.router, Port::kNorth, 1);
  s.queues[q].fifo.push(Flit{FlitType::kBody, 0x1111});
  s.queues[q].locked = true;
  s.queues[q].out_port = Port::kSouth;
  auto& ovc = s.out_vcs[RouterState::index(fx.net.router, Port::kSouth, 1)];
  // VC owned by someone else: blocked.
  ovc.busy = true;
  ovc.owner_port = static_cast<std::uint8_t>(Port::kEast);
  EXPECT_FALSE(queue_eligible(s, q, fx.env));
  // Owned by us: flows.
  ovc.owner_port = static_cast<std::uint8_t>(Port::kNorth);
  EXPECT_TRUE(queue_eligible(s, q, fx.env));
}

TEST(RouterLogic, RoundRobinRotatesAmongCompetitors) {
  Fixture fx;
  RouterState s(fx.net.router);
  // Two single-flit... two competing heads for the east port on different
  // VCs from different input ports.
  fx.push_head(s, Port::kLocal, 0, 4, 2, 1);
  fx.push_head(s, Port::kNorth, 1, 4, 2, 2);
  const std::size_t q_local = RouterState::index(fx.net.router, Port::kLocal, 0);
  const std::size_t q_north = RouterState::index(fx.net.router, Port::kNorth, 1);

  // rr pointer at 0: lowest eligible from 0 is q_local (index 0).
  EXPECT_EQ(arbiter_grant(s, Port::kEast, fx.env),
            static_cast<int>(q_local));
  // After the grant the pointer moves past q_local; next cycle the north
  // queue wins even though the local queue still has flits.
  RouterState s1 = compute_next_state(s, RouterInputs{}, fx.env);
  // Refill local queue head (it popped its only flit: push body for lock).
  EXPECT_EQ(arbiter_grant(s1, Port::kEast, fx.env),
            static_cast<int>(q_north));
}

TEST(RouterLogic, OneGrantPerOutputPerCycle) {
  Fixture fx;
  RouterState s(fx.net.router);
  for (unsigned vc = 0; vc < 4; ++vc) {
    fx.push_head(s, Port::kLocal, vc, 4, 2, vc);
  }
  const Grants g = compute_grants(s, fx.env);
  int grants = 0;
  for (std::size_t o = 0; o < kPorts; ++o) {
    if (g.granted[o] >= 0) ++grants;
  }
  EXPECT_EQ(grants, 1);  // all four compete for the east port
}

TEST(RouterLogic, DistinctOutputsGrantInParallel) {
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 0, 4, 2, 0);   // east
  fx.push_head(s, Port::kNorth, 1, 0, 2, 1);   // west (2 hops)
  fx.push_head(s, Port::kEast, 2, 2, 4, 2);    // south
  const Grants g = compute_grants(s, fx.env);
  EXPECT_GE(g.granted[static_cast<std::size_t>(Port::kEast)], 0);
  EXPECT_GE(g.granted[static_cast<std::size_t>(Port::kWest)], 0);
  EXPECT_GE(g.granted[static_cast<std::size_t>(Port::kSouth)], 0);
}

TEST(RouterLogic, IncomingFlitIsQueued) {
  Fixture fx;
  RouterState s(fx.net.router);
  RouterInputs in;
  in.fwd_in[static_cast<std::size_t>(Port::kWest)] =
      LinkForward{true, 3, Flit{FlitType::kHead, make_head_payload(2, 2, 3, 9)}};
  const RouterState s1 = compute_next_state(s, in, fx.env);
  const auto& q = s1.queues[RouterState::index(fx.net.router, Port::kWest, 3)];
  EXPECT_EQ(q.fifo.size(), 1u);
  EXPECT_EQ(q.fifo.front().type, FlitType::kHead);
}

TEST(RouterLogic, CreditReturnIncrementsCounter) {
  Fixture fx;
  RouterState s(fx.net.router);
  auto& ovc = s.out_vcs[RouterState::index(fx.net.router, Port::kSouth, 2)];
  ovc.credits = 1;
  RouterInputs in;
  in.credit_in[static_cast<std::size_t>(Port::kSouth)].set(2);
  const RouterState s1 = compute_next_state(s, in, fx.env);
  EXPECT_EQ(s1.out_vcs[RouterState::index(fx.net.router, Port::kSouth, 2)]
                .credits,
            2u);
}

TEST(RouterLogic, TransientCreditOverflowWrapsLikeHardware) {
  // Under the dynamic schedule a stale credit wire can arrive while the
  // counter is already full; the counter must wrap at its register width
  // (the resulting state is discarded on re-evaluation, §4.2) rather than
  // abort the simulation.
  Fixture fx;
  RouterState s(fx.net.router);  // credits already at queue_depth (4)
  RouterInputs in;
  in.credit_in[static_cast<std::size_t>(Port::kSouth)].set(0);
  const RouterState s1 = compute_next_state(s, in, fx.env);
  EXPECT_EQ(s1.out_vcs[RouterState::index(fx.net.router, Port::kSouth, 0)]
                .credits,
            5u);  // 3-bit counter: 4+1 = 5, no trap
}

TEST(RouterLogic, TransientQueueOverflowOverwritesLikeHardware) {
  // Same reasoning for a stale forward link replaying a flit into a full
  // queue: the FIFO pointers advance as synthesized hardware would.
  Fixture fx;
  RouterState s(fx.net.router);
  auto& q = s.queues[RouterState::index(fx.net.router, Port::kWest, 0)];
  for (std::size_t i = 0; i < fx.net.router.queue_depth; ++i) {
    q.fifo.push(Flit{FlitType::kBody, static_cast<std::uint16_t>(i)});
  }
  q.locked = true;
  q.out_port = Port::kEast;
  s.out_vcs[RouterState::index(fx.net.router, Port::kEast, 0)].credits = 0;
  RouterInputs in;
  in.fwd_in[static_cast<std::size_t>(Port::kWest)] =
      LinkForward{true, 0, Flit{FlitType::kBody, 99}};
  const RouterState s1 = compute_next_state(s, in, fx.env);
  const auto& q1 = s1.queues[RouterState::index(fx.net.router, Port::kWest, 0)];
  EXPECT_TRUE(q1.fifo.full());
  EXPECT_EQ(q1.fifo.front(), (Flit{FlitType::kBody, 1}));  // oldest dropped
  EXPECT_EQ(q1.fifo.at(fx.net.router.queue_depth - 1),
            (Flit{FlitType::kBody, 99}));
}

TEST(RouterLogic, OutputsDependOnlyOnRegisteredState) {
  // The §4.2 convergence argument rests on G being a function of state
  // alone: inputs must not alter the same cycle's outputs.
  Fixture fx;
  RouterState s(fx.net.router);
  fx.push_head(s, Port::kLocal, 0, 4, 2);
  s.out_vcs[RouterState::index(fx.net.router, Port::kEast, 3)].credits = 1;
  RouterInputs busy_in;
  busy_in.fwd_in[static_cast<std::size_t>(Port::kNorth)] =
      LinkForward{true, 1, Flit{FlitType::kHead, make_head_payload(0, 0, 1, 5)}};
  busy_in.credit_in[static_cast<std::size_t>(Port::kEast)].set(3);
  const RouterOutputs a = compute_outputs(s, fx.env);
  // compute_outputs has no input parameter at all — this asserts the
  // next-state function with different inputs leaves outputs (recomputed
  // from the same old state) unchanged.
  const RouterOutputs b = compute_outputs(s, fx.env);
  EXPECT_EQ(a, b);
  (void)compute_next_state(s, busy_in, fx.env);
  EXPECT_EQ(compute_outputs(s, fx.env), a);
}

}  // namespace
}  // namespace tmsim::noc
