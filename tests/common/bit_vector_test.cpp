#include "common/bit_vector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tmsim {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.width(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) {
    EXPECT_FALSE(v.get_bit(i));
  }
}

TEST(BitVector, SetAndGetSingleBits) {
  BitVector v(70);
  v.set_bit(0, true);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(69, true);
  EXPECT_TRUE(v.get_bit(0));
  EXPECT_TRUE(v.get_bit(63));
  EXPECT_TRUE(v.get_bit(64));
  EXPECT_TRUE(v.get_bit(69));
  EXPECT_FALSE(v.get_bit(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set_bit(63, false);
  EXPECT_FALSE(v.get_bit(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, FieldRoundTripWithinWord) {
  BitVector v(64);
  v.set_field(3, 11, 0x5a5u);
  EXPECT_EQ(v.get_field(3, 11), 0x5a5u);
  EXPECT_EQ(v.get_field(0, 3), 0u);
  EXPECT_EQ(v.get_field(14, 8), 0u);
}

TEST(BitVector, FieldSpanningWordBoundary) {
  BitVector v(128);
  v.set_field(60, 10, 0x2ffu);
  EXPECT_EQ(v.get_field(60, 10), 0x2ffu);
  // Neighbouring bits untouched.
  EXPECT_EQ(v.get_field(50, 10), 0u);
  EXPECT_EQ(v.get_field(70, 10), 0u);
  // Overwrite across the boundary.
  v.set_field(60, 10, 0x155u);
  EXPECT_EQ(v.get_field(60, 10), 0x155u);
}

TEST(BitVector, FullWidth64Field) {
  BitVector v(200);
  const std::uint64_t pattern = 0xdeadbeefcafebabeull;
  v.set_field(64, 64, pattern);
  EXPECT_EQ(v.get_field(64, 64), pattern);
  v.set_field(1, 64, pattern);
  EXPECT_EQ(v.get_field(1, 64), pattern);
}

TEST(BitVector, RejectsOutOfRangeAccess) {
  BitVector v(20);
  EXPECT_THROW(v.get_bit(20), Error);
  EXPECT_THROW(v.set_bit(20, true), Error);
  EXPECT_THROW(v.get_field(15, 6), Error);
  EXPECT_THROW(v.set_field(15, 6, 0), Error);
  EXPECT_THROW(v.get_field(0, 0), Error);
  EXPECT_THROW((void)v.get_field(0, 65), Error);
}

TEST(BitVector, RejectsValueWiderThanField) {
  BitVector v(32);
  EXPECT_THROW(v.set_field(0, 4, 0x10u), Error);
  v.set_field(0, 4, 0xfu);  // max value fits
  EXPECT_EQ(v.get_field(0, 4), 0xfu);
}

TEST(BitVector, EqualityComparesWidthAndBits) {
  BitVector a(65);
  BitVector b(65);
  EXPECT_EQ(a, b);
  b.set_bit(64, true);
  EXPECT_NE(a, b);
  EXPECT_NE(BitVector(64), BitVector(65));
}

TEST(BitVector, CopyBitsMovesArbitraryRanges) {
  BitVector src(100);
  src.set_field(10, 30, 0x2aaaaaaau);
  BitVector dst(100);
  dst.copy_bits(50, src, 10, 30);
  EXPECT_EQ(dst.get_field(50, 30), 0x2aaaaaaau);
  EXPECT_EQ(dst.get_field(0, 50), 0u);
}

TEST(BitVector, ClearZeroesEverything) {
  BitVector v(90);
  v.set_field(80, 10, 0x3ffu);
  v.clear();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, HexString) {
  BitVector v(12);
  v.set_field(0, 12, 0xabcu);
  EXPECT_EQ(v.to_hex(), "abc");
  EXPECT_EQ(BitVector(8).to_hex(), "00");
  EXPECT_EQ(BitVector(0).to_hex(), "0");
}

TEST(BitVector, RandomizedFieldRoundTrip) {
  // Property: any (offset, width, value) written is read back exactly and
  // never clobbers other bits (checked via a shadow model).
  SplitMix64 rng(42);
  BitVector v(300);
  std::vector<bool> shadow(300, false);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t width = 1 + rng.next_below(64);
    const std::size_t offset = rng.next_below(300 - width + 1);
    std::uint64_t value = rng.next();
    if (width < 64) value &= (1ull << width) - 1;
    v.set_field(offset, width, value);
    for (std::size_t i = 0; i < width; ++i) {
      shadow[offset + i] = (value >> i) & 1;
    }
    EXPECT_EQ(v.get_field(offset, width), value);
    if (iter % 100 == 0) {
      for (std::size_t i = 0; i < 300; ++i) {
        ASSERT_EQ(v.get_bit(i), shadow[i]) << "bit " << i;
      }
    }
  }
}

TEST(BitVector, MakeBitVectorHelper) {
  const BitVector v = make_bit_vector(10, 0x2ffu);
  EXPECT_EQ(v.get_field(0, 10), 0x2ffu);
  EXPECT_THROW(make_bit_vector(4, 0x1fu), Error);
}

}  // namespace
}  // namespace tmsim
