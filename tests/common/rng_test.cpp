#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace tmsim {
namespace {

TEST(Lfsr32, ZeroSeedIsRemapped) {
  Lfsr32 a(0);
  Lfsr32 b;  // default seed
  EXPECT_EQ(a.state(), b.state());
  EXPECT_NE(a.state(), 0u);
}

TEST(Lfsr32, NeverReachesZeroState) {
  Lfsr32 rng(1);
  for (int i = 0; i < 100000; ++i) {
    rng.step();
    ASSERT_NE(rng.state(), 0u);
  }
}

TEST(Lfsr32, DeterministicSequence) {
  Lfsr32 a(0xcafe);
  Lfsr32 b(0xcafe);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Lfsr32, NoShortCycleInFirstMillionSteps) {
  // A maximal-length 32-bit LFSR has period 2^32 - 1; revisiting the seed
  // state within 10^6 single-bit steps would reveal a wrong tap choice.
  Lfsr32 rng(0x1234abcd);
  const std::uint32_t seed_state = rng.state();
  for (int i = 0; i < 1000000; ++i) {
    rng.step();
    ASSERT_NE(rng.state(), seed_state) << "period " << (i + 1);
  }
}

TEST(Lfsr32, ReasonableBitBalance) {
  Lfsr32 rng(0xdead);
  std::size_t ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcount(rng.next()));
  }
  const double frac = static_cast<double>(ones) / (32.0 * n);
  EXPECT_GT(frac, 0.48);
  EXPECT_LT(frac, 0.52);
}

TEST(SplitMix64, DistinctStreamsForDistinctSeeds) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, NextBelowStaysInRange) {
  SplitMix64 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace tmsim
