#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.h"

namespace tmsim {
namespace {

TEST(RingBuffer, BasicFifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  rb.push(5);
  rb.push(6);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_EQ(rb.pop(), 6);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, OverflowAndUnderflowThrow) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), Error);
  EXPECT_THROW(rb.front(), Error);
  rb.push(1);
  rb.push(2);
  EXPECT_THROW(rb.push(3), Error);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), Error);
}

TEST(RingBuffer, AtIndexesFromFront) {
  RingBuffer<int> rb(3);
  rb.push(10);
  rb.push(20);
  rb.pop();
  rb.push(30);
  rb.push(40);  // wraps physically
  EXPECT_EQ(rb.at(0), 20);
  EXPECT_EQ(rb.at(1), 30);
  EXPECT_EQ(rb.at(2), 40);
  EXPECT_THROW(rb.at(3), Error);
}

TEST(RingBuffer, RestoreReconstructsPointerState) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  rb.pop();
  const std::size_t rd = rb.read_pos();
  const std::size_t wr = rb.write_pos();
  const std::size_t sz = rb.size();

  RingBuffer<int> copy(4);
  for (std::size_t i = 0; i < 4; ++i) {
    copy.slot(i) = rb.slot(i);
  }
  copy.restore(rd, wr, sz);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.pop(), 2);
  EXPECT_EQ(copy.pop(), 3);
}

TEST(RingBuffer, RestoreRejectsInconsistentPointers) {
  RingBuffer<int> rb(4);
  EXPECT_THROW(rb.restore(0, 2, 1), Error);   // rd+size != wr
  EXPECT_THROW(rb.restore(4, 0, 0), Error);   // rd out of range
  EXPECT_THROW(rb.restore(0, 0, 5), Error);   // size > capacity
  rb.restore(1, 3, 2);                        // consistent
  EXPECT_EQ(rb.size(), 2u);
  rb.restore(2, 2, 4);                        // full, rd == wr
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, MatchesDequeUnderRandomOps) {
  SplitMix64 rng(7);
  RingBuffer<int> rb(5);
  std::deque<int> model;
  for (int iter = 0; iter < 5000; ++iter) {
    if (!rb.full() && (model.empty() || rng.next_below(2) == 0)) {
      const int v = static_cast<int>(rng.next_below(1000));
      rb.push(v);
      model.push_back(v);
    } else {
      ASSERT_EQ(rb.pop(), model.front());
      model.pop_front();
    }
    ASSERT_EQ(rb.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(rb.front(), model.front());
    }
  }
}

}  // namespace
}  // namespace tmsim
