// Concurrency stress for the sharded farm hot path (DESIGN.md §14):
// the seq-ticket AdmissionQueue and the sharded ResultStore under many
// producers and consumers, batched pops, backoff-stamped retries, and
// drain-after-stop. These run under TSan via the `stress` ctest label
// (tsan preset), which turns the sharding disciplines — ticket-ordered
// shard deques, the missed-wakeup protocol, the capacity reservation,
// the per-shard result publication — into checked properties.
//
// Every test's core invariant is exactly-once: whatever the
// interleaving, each accepted job is popped exactly once and each
// published result is observed exactly once.
#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "farm/admission.h"
#include "farm/result_store.h"

namespace tmsim::farm {
namespace {

JobSpec tiny_spec(const std::string& name, Priority p, std::uint64_t seed) {
  JobSpec spec;
  spec.name = name;
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = noc::Topology::kMesh;
  spec.priority = p;
  spec.seed = seed;
  spec.cycles = 100;
  return spec;
}

TEST(FarmStress, ManyProducersManyConsumersPopExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 300;
  AdmissionQueue queue(kProducers * kPerProducer, 1'000'000, {},
                       /*num_shards=*/4);

  std::mutex mu;
  std::set<std::uint64_t> accepted;
  std::vector<std::uint64_t> popped;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto prio = static_cast<Priority>((p + i) % kNumPriorities);
        const SubmitOutcome out = queue.submit(
            tiny_spec("s" + std::to_string(p) + "-" + std::to_string(i), prio,
                      p * 1000 + i),
            static_cast<double>(i));
        ASSERT_TRUE(out.accepted) << out.detail;
        std::lock_guard<std::mutex> lock(mu);
        accepted.insert(out.job_id);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::uint64_t> mine;
      while (std::optional<QueuedJob> job = queue.pop_blocking()) {
        mine.push_back(job->job_id);
      }
      std::lock_guard<std::mutex> lock(mu);
      popped.insert(popped.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.stop();
  for (auto& t : consumers) {
    t.join();
  }

  EXPECT_EQ(accepted.size(), kProducers * kPerProducer);
  EXPECT_EQ(popped.size(), accepted.size());
  const std::set<std::uint64_t> unique(popped.begin(), popped.end());
  EXPECT_EQ(unique.size(), popped.size()) << "a job was popped twice";
  EXPECT_EQ(unique, accepted);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.jobs_submitted(), kProducers * kPerProducer);
}

TEST(FarmStress, BatchPopsAreHomogeneousAndExactlyOnce) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 200;
  // Three batch-compatibility classes, keyed off the seed.
  const AdmissionQueue::BatchKeyFn key_fn = [](const JobSpec& spec) {
    return 1 + (spec.seed % 3);
  };
  AdmissionQueue queue(kProducers * kPerProducer, 1'000'000, {},
                       /*num_shards=*/4, key_fn);

  std::mutex mu;
  std::set<std::uint64_t> accepted;
  std::vector<std::vector<QueuedJob>> batches;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto prio = static_cast<Priority>(i % kNumPriorities);
        const SubmitOutcome out = queue.submit(
            tiny_spec("b" + std::to_string(p) + "-" + std::to_string(i), prio,
                      p * 7919 + i),
            0.0);
        ASSERT_TRUE(out.accepted) << out.detail;
        std::lock_guard<std::mutex> lock(mu);
        accepted.insert(out.job_id);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        std::vector<QueuedJob> batch = queue.pop_batch_blocking(4);
        if (batch.empty()) {
          return;
        }
        std::lock_guard<std::mutex> lock(mu);
        batches.push_back(std::move(batch));
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.stop();
  for (auto& t : consumers) {
    t.join();
  }

  std::size_t total = 0;
  std::set<std::uint64_t> seen;
  for (const auto& batch : batches) {
    ASSERT_FALSE(batch.empty());
    ASSERT_LE(batch.size(), 4u);
    total += batch.size();
    for (const QueuedJob& job : batch) {
      EXPECT_TRUE(seen.insert(job.job_id).second) << "job popped twice";
      // Homogeneity: every member shares the head's class and batch key.
      EXPECT_EQ(job.spec.priority, batch.front().spec.priority);
      EXPECT_EQ(job.batch_key, batch.front().batch_key);
      EXPECT_EQ(job.batch_key, key_fn(job.spec));
    }
    // Ticket order within the batch: batching never reorders.
    for (std::size_t i = 1; i < batch.size(); ++i) {
      EXPECT_LT(batch[i - 1].seq, batch[i].seq);
    }
  }
  EXPECT_EQ(total, accepted.size());
  EXPECT_EQ(seen, accepted);
}

TEST(FarmStress, SequentialBatchesPreserveFifoOrder) {
  const AdmissionQueue::BatchKeyFn key_fn = [](const JobSpec& spec) {
    return 1 + (spec.seed % 2);
  };
  AdmissionQueue queue(100, 1'000'000, {}, /*num_shards=*/4, key_fn);
  std::vector<std::uint64_t> submitted;
  for (std::size_t i = 0; i < 60; ++i) {
    // Key pattern A A B A B B ... — batches must break exactly at key
    // changes, never skipping ahead to a compatible later job.
    const SubmitOutcome out =
        queue.submit(tiny_spec("f" + std::to_string(i), Priority::kNormal,
                               (i * i) % 7),
                     0.0);
    ASSERT_TRUE(out.accepted);
    submitted.push_back(out.job_id);
  }
  queue.stop();
  std::vector<std::uint64_t> popped;
  for (;;) {
    const std::vector<QueuedJob> batch = queue.pop_batch_blocking(4);
    if (batch.empty()) {
      break;
    }
    for (const QueuedJob& job : batch) {
      popped.push_back(job.job_id);
    }
  }
  // Concatenated batch order == submission order: batching is pure
  // dispatch amortization, invisible to FIFO semantics.
  EXPECT_EQ(popped, submitted);
}

TEST(FarmStress, BackoffStampedJobsDrainAfterStopUnderConcurrency) {
  AdmissionQueue queue(64, 1'000'000, {}, /*num_shards=*/4);
  std::vector<QueuedJob> held;
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(queue
                    .submit(tiny_spec("r" + std::to_string(i),
                                      Priority::kNormal, i),
                            0.0)
                    .accepted);
    std::optional<QueuedJob> job = queue.pop_blocking();
    ASSERT_TRUE(job.has_value());
    held.push_back(std::move(*job));
  }
  // Requeue all with a real (steady-clock) backoff in the near future,
  // from multiple threads, then stop — the backlog must still drain.
  const double now = []() {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count()) *
           1e-3;
  }();
  std::vector<std::thread> requeuers;
  std::mutex mu;
  std::size_t next = 0;
  for (std::size_t t = 0; t < 3; ++t) {
    requeuers.emplace_back([&] {
      for (;;) {
        QueuedJob job;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (next >= held.size()) {
            return;
          }
          job = std::move(held[next++]);
        }
        job.not_before_us = now + 5'000.0 + 1'000.0 * (job.job_id % 5);
        queue.requeue(std::move(job), now, RequeuePosition::kBack);
      }
    });
  }
  for (auto& t : requeuers) {
    t.join();
  }
  queue.stop();
  std::mutex pmu;
  std::vector<std::uint64_t> drained;
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<QueuedJob> job = queue.pop_blocking()) {
        std::lock_guard<std::mutex> lock(pmu);
        drained.push_back(job->job_id);
      }
    });
  }
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(drained.size(), 12u);
  const std::set<std::uint64_t> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(), 12u);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(FarmStress, HasHigherThanProbeRunsRaceFreeAgainstChurn) {
  AdmissionQueue queue(5000, 1'000'000, {}, /*num_shards=*/4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sightings{0};
  // The preemption probe, hammered from two threads while a producer
  // churns interactive jobs through a consumer — TSan checks the
  // lock-free fast path against enqueue/pop mutation.
  std::vector<std::thread> probes;
  for (std::size_t t = 0; t < 2; ++t) {
    probes.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (queue.has_higher_than(Priority::kBatch)) {
          sightings.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread consumer([&] {
    while (queue.pop_blocking()) {
    }
  });
  for (std::size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        queue
            .submit(tiny_spec("h" + std::to_string(i),
                              i % 2 == 0 ? Priority::kInteractive
                                         : Priority::kNormal,
                              i),
                    0.0)
            .accepted);
  }
  queue.stop();
  consumer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : probes) {
    t.join();
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_GT(sightings.load(), 0u);  // the probe did see eligible work
}

TEST(FarmStress, ResultStorePutStormKeepsEveryResultAndFeedAccounting) {
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kPerWriter = 300;
  ResultStore store(/*completion_feed_depth=*/64, /*num_shards=*/8);

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        JobResult r;
        r.job_id = t * kPerWriter + i + 1;
        r.status = JobStatus::kDone;
        r.state_digest = r.job_id * 0x9e3779b97f4a7c15ull;
        store.put(std::move(r));
      }
    });
  }
  // Concurrent readers: each blocks on a result its writer publishes
  // mid-storm, then point-reads others.
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    readers.emplace_back([&, t] {
      const std::uint64_t id = t * kPerWriter + kPerWriter / 2 + 1;
      const JobResult r = store.wait(id);
      EXPECT_EQ(r.job_id, id);
      EXPECT_EQ(r.state_digest, id * 0x9e3779b97f4a7c15ull);
    });
  }
  // And a drainer emptying the bounded completion feed while puts race.
  std::size_t drained = 0;
  std::thread drainer([&] {
    for (std::size_t i = 0; i < 50; ++i) {
      drained += store.drain_completions().size();
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) {
    t.join();
  }
  for (auto& t : readers) {
    t.join();
  }
  drainer.join();
  drained += store.drain_completions().size();

  EXPECT_EQ(store.size(), kWriters * kPerWriter);
  const std::vector<JobResult> all = store.all();
  EXPECT_EQ(all.size(), kWriters * kPerWriter);
  std::set<std::uint64_t> ids;
  for (const JobResult& r : all) {
    EXPECT_TRUE(ids.insert(r.job_id).second);
    EXPECT_EQ(r.state_digest, r.job_id * 0x9e3779b97f4a7c15ull);
    EXPECT_TRUE(store.get(r.job_id).has_value());
  }
  // Drop-oldest accounting: every completion was either drained or
  // counted dropped — none vanished.
  EXPECT_EQ(drained + store.completions_dropped(), kWriters * kPerWriter);
}

}  // namespace
}  // namespace tmsim::farm
