// Trace invariants of the farm (DESIGN.md §15), including under chaos:
//   - a traced job's life renders as ONE connected span tree (validated
//     by obs::trace_validate) with the expected stations: farm.submit,
//     admission.enqueue/dequeue, farm.exec (+ attach/slice children),
//     farm.publish, under the farm.job root;
//   - retry attempts hang off the root as their own child chains
//     (attempt-k spans never parent to a sibling attempt);
//   - a job reclaimed from a killed worker keeps a single connected
//     trace, with the reclaim edge recorded;
//   - failures carry a non-empty flight-recorder dump;
//   - and the whole apparatus is *invisible in the results*: a 40-spec
//     differential run with full-rate tracing + flight recorder +
//     introspection against a dark farm is bit-identical per spec.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/session.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"

namespace tmsim::farm {
namespace {

JobSpec tiny_spec(std::uint64_t index, SystemCycle cycles = 120) {
  JobSpec spec;
  spec.name = "trace-" + std::to_string(index);
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = noc::Topology::kMesh;
  spec.seed = 0x7ace + index;
  spec.cycles = cycles;
  spec.workload.be_load = 0.10;
  traffic::GtStream s;
  s.src = 0;
  s.dst = 3;
  s.period = 40;
  spec.workload.gt_streams.push_back(s);
  return spec;
}

std::string spans_jsonl(const obs::Tracer& tracer) {
  std::ostringstream os;
  tracer.write_jsonl(os);
  return os.str();
}

std::size_t count_name(const std::string& log, const std::string& name) {
  const std::string needle = "\"name\": \"" + name + "\"";
  std::size_t n = 0;
  for (std::size_t pos = log.find(needle); pos != std::string::npos;
       pos = log.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(FarmTrace, LifecycleRendersAsOneConnectedTree) {
  obs::Tracer tracer;  // sample_every = 1: trace everything
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 32;  // several slices per job
  opt.tracer = &tracer;
  constexpr std::size_t kJobs = 6;
  {
    SimFarm farm(opt);
    for (std::size_t i = 0; i < kJobs; ++i) {
      ASSERT_TRUE(farm.submit(tiny_spec(i)).accepted);
    }
    farm.drain();
    farm.shutdown();
  }
  EXPECT_EQ(tracer.traces_started(), kJobs);
  const std::string log = spans_jsonl(tracer);
  std::istringstream is(log);
  EXPECT_EQ(obs::trace_validate(is), std::nullopt) << log;
  // Every station of a clean job's life, once per job.
  EXPECT_EQ(count_name(log, "farm.job"), kJobs);
  EXPECT_EQ(count_name(log, "farm.submit"), kJobs);
  EXPECT_EQ(count_name(log, "admission.enqueue"), kJobs);
  EXPECT_EQ(count_name(log, "admission.dequeue"), kJobs);
  EXPECT_EQ(count_name(log, "farm.publish"), kJobs);
  EXPECT_GE(count_name(log, "farm.exec"), kJobs);
  EXPECT_GE(count_name(log, "farm.attach"), kJobs);
  EXPECT_GE(count_name(log, "farm.slice"), kJobs);
  // Every exec segment closed with an outcome.
  EXPECT_EQ(count_name(log, "farm.exec"),
            [&] {
              std::size_t n = 0;
              for (std::size_t pos = log.find("\"outcome\"");
                   pos != std::string::npos;
                   pos = log.find("\"outcome\"", pos + 1)) {
                ++n;
              }
              return n;
            }());
  // And the export draws without unbalanced braces.
  obs::ChromeTrace chrome;
  tracer.export_chrome(chrome);
  std::ostringstream os;
  chrome.write_json(os);
  const std::string json = os.str();
  std::size_t open = 0, close = 0;
  for (const char c : json) {
    open += c == '{';
    close += c == '}';
  }
  EXPECT_EQ(open, close);
}

TEST(FarmTrace, RetryAttemptsGetTheirOwnChildChains) {
  obs::Tracer tracer;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 32;
  opt.retry_backoff_base_us = 20.0;
  opt.tracer = &tracer;
  opt.flight_recorder_depth = 64;
  opt.chaos = [](const ChaosEvent& ev) {
    // First attempt of every job dies one slice in; the retry runs clean.
    return (ev.attempt == 1 && ev.slice == 1) ? ChaosAction::kThrowTransient
                                              : ChaosAction::kNone;
  };
  std::uint64_t id = 0;
  {
    SimFarm farm(opt);
    JobSpec spec = tiny_spec(0);
    spec.max_retries = 2;
    const SubmitOutcome out = farm.submit(spec);
    ASSERT_TRUE(out.accepted);
    id = out.job_id;
    const JobResult r = farm.wait(id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    farm.shutdown();
  }
  const std::string log = spans_jsonl(tracer);
  std::istringstream is(log);
  EXPECT_EQ(obs::trace_validate(is), std::nullopt) << log;
  // The retry edge and both attempts' exec segments are in the tree:
  // attempt 1 closed "retry", attempt 2 closed "done".
  EXPECT_EQ(count_name(log, "farm.retry"), 1u);
  EXPECT_EQ(count_name(log, "farm.exec"), 2u);
  EXPECT_NE(log.find("\"outcome\": \"retry\""), std::string::npos);
  EXPECT_NE(log.find("\"outcome\": \"done\""), std::string::npos);
  EXPECT_NE(log.find("\"attempt\": 2"), std::string::npos);
}

TEST(FarmTrace, ReclaimedJobsKeepOneConnectedTrace) {
  obs::Tracer tracer;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 32;
  opt.supervisor_interval_ms = 2.0;
  opt.tracer = &tracer;
  std::atomic<bool> tripped{false};
  opt.chaos = [&](const ChaosEvent& ev) {
    return (ev.slice == 1 && !tripped.exchange(true))
               ? ChaosAction::kKillWorker
               : ChaosAction::kNone;
  };
  {
    SimFarm farm(opt);
    const SubmitOutcome out = farm.submit(tiny_spec(0, /*cycles=*/200));
    ASSERT_TRUE(out.accepted);
    const JobResult r = farm.wait(out.job_id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    farm.shutdown();
  }
  const std::string log = spans_jsonl(tracer);
  std::istringstream is(log);
  EXPECT_EQ(obs::trace_validate(is), std::nullopt) << log;
  // The kill closed the first exec segment, the supervisor recorded the
  // reclaim edge, and a second dispatch finished the job — all one tree.
  EXPECT_EQ(count_name(log, "farm.reclaim"), 1u);
  EXPECT_NE(log.find("\"outcome\": \"killed\""), std::string::npos);
  EXPECT_NE(log.find("\"outcome\": \"done\""), std::string::npos);
  EXPECT_GE(count_name(log, "farm.exec"), 2u);
  EXPECT_EQ(count_name(log, "farm.job"), 1u);
}

TEST(FarmTrace, FailedJobsCarryAFlightRecordingThatValidates) {
  obs::Tracer tracer;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 32;
  opt.tracer = &tracer;
  opt.flight_recorder_depth = 128;
  opt.chaos = [](const ChaosEvent& ev) {
    return ev.slice == 1 ? ChaosAction::kThrowPermanent : ChaosAction::kNone;
  };
  std::uint64_t id = 0;
  {
    SimFarm farm(opt);
    const SubmitOutcome out = farm.submit(tiny_spec(0));
    ASSERT_TRUE(out.accepted);
    id = out.job_id;
    const JobResult r = farm.wait(id);
    ASSERT_EQ(r.status, JobStatus::kFailed);
    // The black box: non-empty, the job's own story, publish included.
    ASSERT_FALSE(r.failure.flight_recording.empty());
    EXPECT_NE(r.failure.flight_recording.find("\"event\": \"dispatch\""),
              std::string::npos);
    EXPECT_NE(r.failure.flight_recording.find("\"event\": \"slice\""),
              std::string::npos);
    EXPECT_NE(r.failure.flight_recording.find("\"event\": \"publish\""),
              std::string::npos);
    EXPECT_NE(r.failure.flight_recording.find(
                  "\"job\": " + std::to_string(id)),
              std::string::npos);
    farm.shutdown();
  }
  // The failed attempt's span chain still validates as a closed tree.
  const std::string log = spans_jsonl(tracer);
  std::istringstream is(log);
  EXPECT_EQ(obs::trace_validate(is), std::nullopt) << log;
  EXPECT_NE(log.find("\"outcome\": \"failed\""), std::string::npos);
}

TEST(FarmTrace, FullObservabilityIsInvisibleInResults) {
  // The differential proof behind "provably free when off": 40 specs
  // through a dark farm vs. a fully-lit one (full-rate tracing, flight
  // recorder, periodic introspection) — bit-identical result surfaces.
  constexpr std::size_t kSpecs = 40;
  std::vector<JobSpec> specs;
  specs.reserve(kSpecs);
  for (std::size_t i = 0; i < kSpecs; ++i) {
    JobSpec spec = tiny_spec(i, 60 + 20 * (i % 5));
    spec.workload.be_load = 0.05 * static_cast<double>(i % 4);
    specs.push_back(std::move(spec));
  }

  const auto run = [&](FarmOptions opt) {
    opt.num_workers = 4;
    opt.queue_capacity = kSpecs;
    opt.preempt_quantum = 32;
    opt.force_preempt = true;  // maximum churn on the traced paths
    SimFarm farm(opt);
    std::vector<std::uint64_t> ids;
    ids.reserve(kSpecs);
    for (const JobSpec& spec : specs) {
      const SubmitOutcome out = farm.submit(spec);
      EXPECT_TRUE(out.accepted) << out.detail;
      ids.push_back(out.job_id);
    }
    farm.drain();
    std::vector<JobResult> results;
    results.reserve(kSpecs);
    for (const std::uint64_t id : ids) {
      results.push_back(farm.wait(id));
    }
    farm.shutdown();
    return results;
  };

  const std::vector<JobResult> dark = run(FarmOptions{});

  obs::Tracer tracer;
  const std::string snap_path =
      testing::TempDir() + "farm_trace_introspect.json";
  FarmOptions lit;
  lit.tracer = &tracer;
  lit.flight_recorder_depth = 64;
  lit.introspect_interval_ms = 1.0;
  lit.introspect_path = snap_path;
  const std::vector<JobResult> full = run(lit);

  ASSERT_EQ(dark.size(), full.size());
  for (std::size_t i = 0; i < kSpecs; ++i) {
    ASSERT_EQ(dark[i].status, JobStatus::kDone) << dark[i].error;
    std::string why;
    EXPECT_TRUE(results_equivalent(dark[i], full[i], &why))
        << specs[i].name << ": " << why;
  }
  // The lit run actually traced (this test must not pass vacuously)…
  EXPECT_EQ(tracer.traces_started(), kSpecs);
  EXPECT_GT(tracer.spans_recorded(), 0u);
  const std::string log = spans_jsonl(tracer);
  std::istringstream is(log);
  EXPECT_EQ(obs::trace_validate(is), std::nullopt);
  // …and the shutdown snapshot landed on disk.
  std::ifstream snap(snap_path);
  ASSERT_TRUE(snap.good());
  std::stringstream buf;
  buf << snap.rdbuf();
  EXPECT_NE(buf.str().find("\"workers\""), std::string::npos);
  std::remove(snap_path.c_str());
}

TEST(FarmTrace, IntrospectSnapshotIsLiveAndBalanced) {
  obs::Tracer tracer;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.tracer = &tracer;
  opt.flight_recorder_depth = 32;
  SimFarm farm(opt);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(farm.submit(tiny_spec(i)).accepted);
  }
  // Callable mid-flight from a foreign thread (this one), repeatedly.
  const std::string live = farm.introspect();
  farm.drain();
  const std::string settled = farm.introspect();
  farm.shutdown();
  for (const std::string* s : {&live, &settled}) {
    std::size_t open = 0, close = 0;
    for (const char c : *s) {
      open += c == '{';
      close += c == '}';
    }
    EXPECT_EQ(open, close) << *s;
    for (const char* key :
         {"\"ts_us\"", "\"inflight\"", "\"queue\"", "\"classes\"",
          "\"shards\"", "\"oldest_age_us\"", "\"workers\"", "\"state\"",
          "\"results\"", "\"feed_fill\"", "\"feed_capacity\"", "\"memo\"",
          "\"trace\"", "\"flight\"", "\"counters\""}) {
      EXPECT_NE(s->find(key), std::string::npos) << key << " in " << *s;
    }
  }
  EXPECT_NE(settled.find("\"inflight\": 0"), std::string::npos);
  EXPECT_NE(settled.find("\"published\": 4"), std::string::npos);
}

}  // namespace
}  // namespace tmsim::farm
