// The farm's fault-tolerance pillars, one at a time (the combined chaos
// proof lives in farm_chaos_test.cpp):
//
//   - cancellation: cancel() races, deadlines at slice boundaries and
//     from the supervisor, structured CancelCause on every kCancelled;
//   - containment: exceptions become structured JobFailures with a
//     replay tuple, workers keep serving;
//   - retry: transient classes retried with deterministic backoff,
//     restarted from scratch, bit-identical to an unfailed run; poison
//     jobs quarantined after exhausting their budget;
//   - fault-report escalation: an aborting hosted stack is a kFaultAbort
//     failure with full finalized statistics, equal to standalone;
//   - supervision: killed workers are joined, their jobs reclaimed and
//     completed bit-identically, the pool healed by respawns; stuck
//     workers are escalated cooperatively;
//   - accounting: busy_us bills slices of jobs that later fail.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "farm/farm.h"
#include "farm/session.h"
#include "obs/metrics.h"

namespace tmsim::farm {
namespace {

JobSpec core_spec(const std::string& name, SystemCycle cycles,
                  std::uint64_t seed = 1) {
  JobSpec s;
  s.name = name;
  s.net.width = 2;
  s.net.height = 2;
  s.cycles = cycles;
  s.seed = seed;
  s.workload.be_load = 0.1;
  return s;
}

/// Hosted spec whose hardened ArmHost deterministically gives up: 20%
/// fault rates are far beyond the recoverable envelope (the host rides
/// out 10% — see fault_injection_test), so the run ends in a graceful
/// abort with a FaultReport, not a crash.
JobSpec aborting_hosted_spec() {
  JobSpec s = core_spec("abort-hosted", 200, 7);
  s.kind = JobKind::kHostedFpga;
  s.faults.read_flip = 0.2;
  s.faults.stuck_busy = 0.2;
  s.faults.dropped_write = 0.2;
  return s;
}

TEST(FarmFaultTolerance, CancelResolvesQueuedJobAndRaces) {
  FarmOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 8;
  opt.preempt_quantum = 64;
  opt.supervisor_interval_ms = 0.0;
  SimFarm farm(opt);

  // Occupy the single worker so the victim stays queued.
  const auto blocker = farm.submit(core_spec("blocker", 20'000));
  ASSERT_TRUE(blocker.accepted);
  const auto victim = farm.submit(core_spec("victim", 1'000));
  ASSERT_TRUE(victim.accepted);

  EXPECT_EQ(farm.cancel(victim.job_id), CancelResult::kRequested);
  EXPECT_EQ(farm.cancel(9999), CancelResult::kUnknownJob);

  const JobResult r = farm.wait(victim.job_id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.cancel_cause, CancelCause::kUser);
  EXPECT_NE(r.error.find("cancelled"), std::string::npos);
  // Exactly one terminal state: cancelling again is a no-op, not a race.
  EXPECT_EQ(farm.cancel(victim.job_id), CancelResult::kAlreadyFinished);

  // The blocker is untouched by its neighbour's cancellation.
  EXPECT_EQ(farm.wait(blocker.job_id).status, JobStatus::kDone);
  EXPECT_EQ(farm.cancel(blocker.job_id), CancelResult::kAlreadyFinished);
}

TEST(FarmFaultTolerance, DeadlineExpiresAtASliceBoundary) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.preempt_quantum = 64;  // frequent boundaries → tight enforcement
  opt.supervisor_interval_ms = 0.0;  // prove the worker-side check alone
  opt.metrics = &metrics;
  SimFarm farm(opt);

  JobSpec spec = core_spec("deadline", 2'000'000);
  spec.deadline_ms = 1;  // a 2M-cycle job cannot finish in 1ms
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.cancel_cause, CancelCause::kDeadline);
  EXPECT_LT(r.cycles_simulated, spec.cycles);
  farm.shutdown();
  EXPECT_EQ(metrics.counter_value("farm.jobs.cancelled"), 1u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.cancelled", "cause=deadline"),
            1u);
}

TEST(FarmFaultTolerance, SupervisorEnforcesDeadlineOfQueuedJobs) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.preempt_quantum = 256;
  opt.supervisor_interval_ms = 1.0;
  opt.metrics = &metrics;
  SimFarm farm(opt);

  // The blocker holds the only worker well past the victim's deadline,
  // so by the time the victim is popped its token is already flipped —
  // it resolves without simulating a single cycle.
  ASSERT_TRUE(farm.submit(core_spec("blocker", 60'000)).accepted);
  JobSpec spec = core_spec("starved", 1'000);
  spec.deadline_ms = 1;
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.cancel_cause, CancelCause::kDeadline);
  farm.shutdown();
  EXPECT_GE(metrics.counter_value("farm.supervisor.deadlines_enforced"), 1u);
  EXPECT_GE(metrics.counter_value("farm.supervisor.scans"), 1u);
}

TEST(FarmFaultTolerance, TransientFailureRetriedToBitIdenticalSuccess) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.queue_capacity = 16;
  opt.retry_backoff_base_us = 50.0;  // keep the test snappy
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  // Every first attempt dies mid-job; every retry runs clean.
  opt.chaos = [](const ChaosEvent& ev) {
    return (ev.attempt == 1 && ev.slice == 1) ? ChaosAction::kThrowTransient
                                              : ChaosAction::kNone;
  };
  SimFarm farm(opt);

  constexpr int kJobs = 6;
  std::uint64_t ids[kJobs];
  JobSpec specs[kJobs];
  for (int i = 0; i < kJobs; ++i) {
    specs[i] = core_spec("flaky-" + std::to_string(i), 400,
                         static_cast<std::uint64_t>(i + 1));
    specs[i].max_retries = 2;
    const auto out = farm.submit(specs[i]);
    ASSERT_TRUE(out.accepted);
    ids[i] = out.job_id;
  }
  farm.drain();
  for (int i = 0; i < kJobs; ++i) {
    const JobResult farm_r = farm.results().get(ids[i]).value();
    EXPECT_EQ(farm_r.status, JobStatus::kDone) << farm_r.error;
    EXPECT_EQ(farm_r.failure.kind, FailureKind::kNone);
    // The retry restarted from scratch on a clean session: the result
    // is indistinguishable from a run that never failed.
    std::string why;
    EXPECT_TRUE(results_equivalent(run_job_standalone(specs[i]), farm_r, &why))
        << specs[i].name << ": " << why;
  }
  farm.shutdown();
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled"), kJobs);
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled", "kind=transient"),
            kJobs);
  EXPECT_EQ(metrics.counter_value("farm.retries.exhausted"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed"), kJobs);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed"), 0u);
}

TEST(FarmFaultTolerance, PoisonJobQuarantinedAfterExhaustingRetries) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.retry_backoff_base_us = 50.0;
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  opt.chaos = [](const ChaosEvent& ev) {
    // Poison: fails on *every* attempt.
    return ev.slice == ev.attempt - 1 ? ChaosAction::kThrowTransient
                                      : ChaosAction::kNone;
  };
  SimFarm farm(opt);

  JobSpec spec = core_spec("poison", 400);
  spec.max_retries = 2;
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.failure.kind, FailureKind::kTransient);
  EXPECT_TRUE(r.failure.quarantined);
  EXPECT_EQ(r.failure.attempts, 3u);  // 1 + max_retries, all failed
  EXPECT_EQ(r.failure.replay, spec.serialize());

  const auto records = farm.quarantined();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].job_id, out.job_id);
  EXPECT_EQ(records[0].kind, FailureKind::kTransient);
  EXPECT_EQ(records[0].attempts, 3u);
  EXPECT_EQ(records[0].replay, spec.serialize());

  farm.shutdown();
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled"), 2u);
  EXPECT_EQ(metrics.counter_value("farm.retries.exhausted"), 1u);
  EXPECT_EQ(metrics.counter_value("farm.failures.quarantined"), 1u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed", "reason=transient"),
            1u);
}

TEST(FarmFaultTolerance, PermanentFailureIsNeverRetried) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  opt.chaos = [](const ChaosEvent& ev) {
    return ev.slice == 1 ? ChaosAction::kThrowPermanent : ChaosAction::kNone;
  };
  SimFarm farm(opt);

  JobSpec spec = core_spec("doomed", 400);
  spec.max_retries = 5;  // budget present — must not be consumed
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.failure.kind, FailureKind::kEngineError);
  EXPECT_EQ(r.failure.attempts, 1u);
  EXPECT_FALSE(r.failure.quarantined);
  EXPECT_FALSE(r.failure.replay.empty());
  EXPECT_TRUE(farm.quarantined().empty());
  farm.shutdown();
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed", "reason=engine_error"),
            1u);
}

TEST(FarmFaultTolerance, FaultAbortEscalatesWithFinalizedStatsAndQuarantines) {
  const JobSpec spec = [&] {
    JobSpec s = aborting_hosted_spec();
    s.max_retries = 1;
    return s;
  }();
  // The reference: standalone classifies the graceful abort identically.
  const JobResult standalone = run_job_standalone(spec);
  ASSERT_EQ(standalone.status, JobStatus::kFailed);
  ASSERT_EQ(standalone.failure.kind, FailureKind::kFaultAbort);
  ASSERT_TRUE(standalone.fault_report.aborted);
  ASSERT_FALSE(standalone.error.empty());

  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.retry_backoff_base_us = 50.0;
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  SimFarm farm(opt);
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.failure.kind, FailureKind::kFaultAbort);
  // The abort is deterministic in simulation, so the retry reproduced it
  // and the job is quarantined — the designed poison path.
  EXPECT_EQ(r.failure.attempts, 2u);
  EXPECT_TRUE(r.failure.quarantined);
  EXPECT_EQ(r.error, standalone.error);
  // Graceful abort = consistent statistics, finalized on both paths.
  std::string why;
  EXPECT_TRUE(results_equivalent(standalone, r, &why)) << why;
  EXPECT_EQ(farm.quarantined().size(), 1u);
  farm.shutdown();
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled",
                                  "kind=fault_abort"),
            1u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed", "reason=fault_abort"),
            1u);
}

TEST(FarmFaultTolerance, KilledWorkerIsReclaimedAndJobCompletesIdentically) {
  for (const bool lose_session : {false, true}) {
    SCOPED_TRACE(lose_session ? "hard kill (session lost)"
                              : "graceful kill (checkpoint survives)");
    obs::MetricsRegistry metrics;
    FarmOptions opt;
    opt.num_workers = 2;
    opt.preempt_quantum = 64;
    opt.supervisor_interval_ms = 1.0;
    opt.metrics = &metrics;
    std::atomic<bool> killed{false};
    opt.chaos = [&](const ChaosEvent& ev) {
      if (ev.slice == 2 && !killed.exchange(true)) {
        return lose_session ? ChaosAction::kKillWorkerLoseSession
                            : ChaosAction::kKillWorker;
      }
      return ChaosAction::kNone;
    };
    SimFarm farm(opt);
    const JobSpec spec = core_spec("survivor", 1'000, 5);
    const auto out = farm.submit(spec);
    ASSERT_TRUE(out.accepted);
    const JobResult r = farm.wait(out.job_id);
    ASSERT_TRUE(killed.load());
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    // Whether resumed from the detach-time checkpoint or restarted from
    // scratch, the result is bit-identical to an undisturbed run.
    std::string why;
    EXPECT_TRUE(results_equivalent(run_job_standalone(spec), r, &why)) << why;
    farm.shutdown();
    EXPECT_GE(metrics.counter_value("farm.supervisor.workers_lost"), 1u);
    EXPECT_GE(metrics.counter_value("farm.supervisor.jobs_reclaimed"), 1u);
    EXPECT_GE(metrics.counter_value("farm.supervisor.respawns"), 1u);
  }
}

TEST(FarmFaultTolerance, StuckWorkerEscalatedBySupervisor) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.supervisor_interval_ms = 2.0;
  opt.supervisor_miss_threshold = 3;
  opt.supervisor_escalate_stuck = true;
  opt.metrics = &metrics;
  opt.chaos = [](const ChaosEvent& ev) {
    if (ev.slice >= 1) {
      // Wedge the worker between heartbeats, well past the threshold.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return ChaosAction::kNone;
  };
  SimFarm farm(opt);
  const auto out = farm.submit(core_spec("wedged", 1'000'000));
  ASSERT_TRUE(out.accepted);
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(r.cancel_cause, CancelCause::kSupervisor);
  farm.shutdown();
  EXPECT_GE(metrics.counter_value("farm.supervisor.stuck"), 1u);
}

TEST(FarmFaultTolerance, BusyTimeBillsSlicesOfFailedJobs) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.preempt_quantum = 20'000;  // one fat slice, then the failure
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  opt.chaos = [](const ChaosEvent& ev) {
    return ev.slice == 1 ? ChaosAction::kThrowPermanent : ChaosAction::kNone;
  };
  {
    SimFarm farm(opt);
    const auto out = farm.submit(core_spec("billed", 100'000));
    ASSERT_TRUE(out.accepted);
    const JobResult r = farm.wait(out.job_id);
    EXPECT_EQ(r.status, JobStatus::kFailed);
    EXPECT_GT(r.exec_seconds, 0.0);  // the executed slice is on the bill
  }  // shutdown() via destructor exports the per-worker counters
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed"), 0u);
  EXPECT_GT(metrics.counter_value("farm.worker.busy_us", "worker=0"), 0u);
}

}  // namespace
}  // namespace tmsim::farm
