// SimFarm service-level tests: end-to-end job execution (core and
// hosted), backpressure under flood without ever blocking a submitter
// (run under TSan via the tsan preset's farm label), forced
// preemption/resume accounting, the farm.* metrics surface, and the
// completion feed.
#include "farm/farm.h"

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"

namespace tmsim::farm {
namespace {

JobSpec small_job(const std::string& name, std::uint64_t seed,
                  Priority p = Priority::kNormal) {
  JobSpec spec;
  spec.name = name;
  spec.net.width = 3;
  spec.net.height = 3;
  spec.net.topology = noc::Topology::kMesh;
  spec.workload.be_load = 0.1;
  spec.priority = p;
  spec.seed = seed;
  spec.cycles = 200;
  return spec;
}

TEST(SimFarm, RunsCoreJobsToCompletion) {
  FarmOptions opt;
  opt.num_workers = 2;
  SimFarm farm(opt);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const auto out = farm.submit(small_job("core-" + std::to_string(i),
                                           100 + static_cast<unsigned>(i)));
    ASSERT_TRUE(out.accepted) << out.detail;
    ids.push_back(out.job_id);
  }
  farm.drain();
  for (const auto id : ids) {
    const JobResult r = farm.results().wait(id);
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_EQ(r.cycles_simulated, 200u);
    EXPECT_GT(r.flits_injected, 0u);
    EXPECT_NE(r.state_digest, 0u);
    EXPECT_GE(r.slices, 1u);
  }
}

TEST(SimFarm, RunsHostedJobsWithFaultyBus) {
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 128;
  opt.force_preempt = true;  // hosted preemption = slicing ArmHost::run()
  SimFarm farm(opt);

  JobSpec spec = small_job("hosted", 7);
  spec.kind = JobKind::kHostedFpga;
  spec.net.width = 4;
  spec.net.height = 4;
  spec.workload.be_load = 0.05;
  spec.cycles = 600;
  spec.faults.read_flip = 2e-3;
  const auto out = farm.submit(spec);
  ASSERT_TRUE(out.accepted) << out.detail;
  const JobResult r = farm.wait(out.job_id);
  EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
  // ArmHost runs whole simulation periods, so the budget is a floor.
  EXPECT_GE(r.cycles_simulated, 600u);
  EXPECT_FALSE(r.fault_report.aborted);
  EXPECT_GT(r.preemptions, 0u);
}

TEST(SimFarm, BackpressureRejectsWithoutBlockingSubmitters) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 2;  // tiny: floods must bounce
  opt.metrics = &metrics;
  SimFarm farm(opt);

  // Four submitter threads flood the farm; every submit returns
  // immediately (accepted or structured reject), so total progress is
  // bounded by loop counts — a blocked submitter would hang the join.
  constexpr int kPerThread = 40;
  std::atomic<int> accepted{0}, rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto out = farm.submit(small_job(
            "flood-" + std::to_string(t) + "-" + std::to_string(i),
            static_cast<std::uint64_t>(t * 1000 + i + 1)));
        if (out.accepted) {
          ++accepted;
        } else {
          ++rejected;
          EXPECT_EQ(out.reason, RejectReason::kQueueFull);
          EXPECT_FALSE(out.detail.empty());
        }
      }
    });
  }
  for (auto& th : submitters) {
    th.join();
  }
  farm.drain();

  EXPECT_EQ(accepted + rejected, 4 * kPerThread);
  EXPECT_GT(rejected.load(), 0) << "flood never hit backpressure";
  EXPECT_EQ(farm.results().size(), static_cast<std::size_t>(accepted.load()));

  // The rejects are visible on the metrics surface, per reason.
  EXPECT_EQ(metrics.counter_value("farm.admission.rejected"),
            static_cast<std::uint64_t>(rejected.load()));
  EXPECT_EQ(metrics.counter_value("farm.admission.rejected",
                                  "reason=queue_full"),
            static_cast<std::uint64_t>(rejected.load()));
  EXPECT_EQ(metrics.counter_value("farm.admission.submitted"),
            static_cast<std::uint64_t>(4 * kPerThread));
}

TEST(SimFarm, ForcedPreemptionIsAccountedAndInvisibleInResults) {
  obs::MetricsRegistry metrics;
  obs::ChromeTrace timeline;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.preempt_quantum = 32;  // 200-cycle jobs → ~6 slices each
  opt.force_preempt = true;
  opt.paranoid_resume = true;
  opt.metrics = &metrics;
  opt.timeline = &timeline;
  SimFarm farm(opt);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto out =
        farm.submit(small_job("pre-" + std::to_string(i),
                              static_cast<std::uint64_t>(31 + i)));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.job_id);
  }
  farm.drain();
  for (const auto id : ids) {
    const JobResult r = farm.results().get(id).value();
    EXPECT_EQ(r.status, JobStatus::kDone) << r.error;
    EXPECT_GT(r.preemptions, 0u);
    EXPECT_GT(r.slices, r.preemptions);
  }
  farm.shutdown();

  EXPECT_GT(metrics.counter_value("farm.preemptions"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.preemptions"),
            metrics.counter_value("farm.checkpoints"));
  EXPECT_EQ(metrics.counter_value("farm.resumes"),
            metrics.counter_value("farm.preemptions"));
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed"), 6u);
  EXPECT_GT(timeline.size(), 0u);  // farm.slice spans + farm.preempt instants
}

TEST(SimFarm, WaitingInteractiveWorkPreemptsRunningBatchJob) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;  // the batch job holds the only worker
  opt.preempt_quantum = 64;
  opt.metrics = &metrics;
  SimFarm farm(opt);

  JobSpec batch = small_job("long-batch", 5, Priority::kBatch);
  batch.cycles = 60'000;  // long enough to still be running when the
                          // interactive job arrives
  const auto b = farm.submit(batch);
  ASSERT_TRUE(b.accepted);
  // Give the worker time to pick the batch job up and enter its slices.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto i = farm.submit(small_job("urgent", 6, Priority::kInteractive));
  ASSERT_TRUE(i.accepted);
  farm.drain();

  const JobResult br = farm.results().get(b.job_id).value();
  const JobResult ir = farm.results().get(i.job_id).value();
  EXPECT_EQ(br.status, JobStatus::kDone) << br.error;
  EXPECT_EQ(ir.status, JobStatus::kDone) << ir.error;
  // The batch job was checkpointed for the interactive one (natural
  // preemption, no force_preempt involved).
  EXPECT_GE(br.preemptions, 1u);
  EXPECT_EQ(ir.preemptions, 0u);
  EXPECT_GE(metrics.counter_value("farm.preemptions"), 1u);
}

TEST(SimFarm, InvalidAndOversizedSpecsBounceAtSubmit) {
  FarmOptions opt;
  opt.num_workers = 1;
  opt.max_job_cycles = 500;
  SimFarm farm(opt);

  JobSpec bad = small_job("bad", 1);
  bad.cycles = 0;
  const auto invalid = farm.submit(bad);
  EXPECT_FALSE(invalid.accepted);
  EXPECT_EQ(invalid.reason, RejectReason::kInvalidSpec);

  JobSpec big = small_job("big", 1);
  big.cycles = 501;
  const auto too_large = farm.submit(big);
  EXPECT_FALSE(too_large.accepted);
  EXPECT_EQ(too_large.reason, RejectReason::kTooLarge);

  farm.shutdown();
  const auto stopped = farm.submit(small_job("late", 1));
  EXPECT_FALSE(stopped.accepted);
  EXPECT_EQ(stopped.reason, RejectReason::kStopped);
}

TEST(SimFarm, CompletionFeedDeliversIdsAndCountsDrops) {
  FarmOptions opt;
  opt.num_workers = 2;
  opt.completion_feed_depth = 4;  // force drops: 10 completions, depth 4
  SimFarm farm(opt);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto out = farm.submit(
        small_job("feed-" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));
    ASSERT_TRUE(out.accepted);
    ids.insert(out.job_id);
  }
  farm.drain();

  const auto completed = farm.results().drain_completions();
  EXPECT_LE(completed.size(), 4u);
  for (const auto id : completed) {
    EXPECT_TRUE(ids.count(id));
  }
  EXPECT_EQ(completed.size() + farm.results().completions_dropped(), 10u);
  // Dropped notifications lose nothing: every result is still retrievable.
  for (const auto id : ids) {
    EXPECT_TRUE(farm.results().get(id).has_value());
  }
  EXPECT_TRUE(farm.results().drain_completions().empty());
}

TEST(SimFarm, ShutdownIsIdempotentAndDrains) {
  FarmOptions opt;
  opt.num_workers = 2;
  SimFarm farm(opt);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto out = farm.submit(
        small_job("sd-" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.job_id);
  }
  farm.shutdown();
  farm.shutdown();  // idempotent
  // Every accepted job has a published result even though we never
  // called drain(): shutdown finishes admitted work.
  for (const auto id : ids) {
    ASSERT_TRUE(farm.results().get(id).has_value());
    EXPECT_EQ(farm.results().get(id)->status, JobStatus::kDone);
  }
}

}  // namespace
}  // namespace tmsim::farm
