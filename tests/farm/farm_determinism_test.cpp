// The farm's headline guarantee, enforced over randomized specs: a job
// returns bit-identical results whether it runs
//   (a) standalone on this thread,
//   (b) on a 1-worker farm, or
//   (c) on a multi-worker farm under forced preemption — checkpointed
//       after *every* quantum, requeued, and resumed on whichever worker
//       (and whichever cached engine) picks it up next, with paranoid
//       digest re-verification on every resume.
//
// Because farm workers run engines with the canonical schedule seed
// while standalone runs derive one from the job seed, every comparison
// here is also an empirical proof that evaluation order never leaks
// into results (the engine contract of DESIGN.md §4).
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "farm/farm.h"
#include "farm/session.h"

namespace tmsim::farm {
namespace {

/// Randomized small spec: 2x2..3x3 meshes, 60..200 cycles, mixed BE/GT
/// workloads, 1-2 shards, ~1 in 4 hosted (some with a faulty bus).
JobSpec random_spec(std::uint64_t index) {
  SplitMix64 rng(0xfa4111ull + index);
  JobSpec spec;
  spec.name = "rand-" + std::to_string(index);
  spec.net.width = 2 + rng.next_below(2);
  spec.net.height = 2 + rng.next_below(2);
  spec.net.topology = noc::Topology::kMesh;
  spec.net.router.queue_depth = 2 + rng.next_below(2);
  spec.priority = static_cast<Priority>(rng.next_below(kNumPriorities));
  spec.seed = rng.next();
  spec.cycles = 60 + rng.next_below(141);
  spec.engine.num_shards = 1 + rng.next_below(2);
  spec.engine.seed = rng.next();  // advisory; must never matter
  spec.workload.be_load = 0.05 * static_cast<double>(rng.next_below(5));

  const bool hosted = rng.next_below(4) == 0;
  if (hosted) {
    spec.kind = JobKind::kHostedFpga;
    if (rng.next_below(2) == 0) {
      spec.faults.read_flip = 1e-3;
      spec.faults.stuck_busy = 1e-3;
    }
  } else {
    spec.workload.verify_payload = rng.next_below(2) == 0;
    spec.workload.warmup_cycles = rng.next_below(2) == 0 ? 20 : 0;
  }
  // Explicit GT streams on distinct VCs (fig1_gt needs width >= 4, these
  // nets are 2-3 wide). Distinct VCs can never violate the one-stream-
  // per-VC link rule, whatever the endpoints.
  const std::size_t routers = spec.net.width * spec.net.height;
  const std::uint64_t num_gt = rng.next_below(3);
  for (std::uint64_t g = 0; g < num_gt; ++g) {
    traffic::GtStream s;
    s.src = rng.next_below(routers);
    s.dst = (s.src + 1 + rng.next_below(routers - 1)) % routers;
    s.vc = static_cast<unsigned>(g);
    s.period = 40 + 10 * rng.next_below(4);
    s.phase = rng.next_below(20);
    spec.workload.gt_streams.push_back(s);
  }
  return spec;
}

std::vector<JobResult> run_on_farm(const std::vector<JobSpec>& specs,
                                   std::size_t workers, bool force_preempt,
                                   SystemCycle quantum) {
  FarmOptions opt;
  opt.num_workers = workers;
  opt.queue_capacity = specs.size();
  opt.preempt_quantum = quantum;
  opt.force_preempt = force_preempt;
  opt.paranoid_resume = true;
  opt.engine_cache_per_worker = 2;  // < distinct topologies → cache churn
  SimFarm farm(opt);
  std::vector<std::uint64_t> ids;
  ids.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    const SubmitOutcome out = farm.submit(spec);
    EXPECT_TRUE(out.accepted) << spec.name << ": " << out.detail;
    ids.push_back(out.job_id);
  }
  farm.drain();
  std::vector<JobResult> results;
  results.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    results.push_back(farm.results().get(id).value());
  }
  return results;
}

TEST(FarmDeterminism, StandaloneVsFarmVsPreemptedFarmBitIdentical) {
  constexpr std::size_t kSpecs = 100;
  std::vector<JobSpec> specs;
  specs.reserve(kSpecs);
  for (std::size_t i = 0; i < kSpecs; ++i) {
    specs.push_back(random_spec(i));
    ASSERT_NO_THROW(specs.back().validate()) << specs.back().serialize();
  }

  // (a) the reference: each spec start-to-finish, no farm.
  std::vector<JobResult> standalone;
  standalone.reserve(kSpecs);
  for (const JobSpec& spec : specs) {
    standalone.push_back(run_job_standalone(spec));
    ASSERT_EQ(standalone.back().status, JobStatus::kDone)
        << spec.name << ": " << standalone.back().error;
  }

  // (b) 1 worker, no preemption: pure serialization through the queue.
  const auto farm1 = run_on_farm(specs, 1, /*force_preempt=*/false, 256);
  // (c) 4 workers, forced preemption every 17 cycles: maximal
  // checkpoint/restore/migrate churn.
  const auto farmN = run_on_farm(specs, 4, /*force_preempt=*/true, 17);

  ASSERT_EQ(farm1.size(), kSpecs);
  ASSERT_EQ(farmN.size(), kSpecs);
  std::size_t total_preemptions = 0;
  for (std::size_t i = 0; i < kSpecs; ++i) {
    std::string why;
    EXPECT_TRUE(results_equivalent(standalone[i], farm1[i], &why))
        << specs[i].name << " (standalone vs 1-worker): " << why << "\n"
        << specs[i].serialize();
    EXPECT_TRUE(results_equivalent(standalone[i], farmN[i], &why))
        << specs[i].name << " (standalone vs preempted): " << why << "\n"
        << specs[i].serialize();
    total_preemptions += farmN[i].preemptions;
  }
  // The (c) runs must actually have exercised the resume path, hard.
  EXPECT_GT(total_preemptions, kSpecs);
}

}  // namespace
}  // namespace tmsim::farm
