// AdmissionQueue semantics: strict priority with FIFO inside a class,
// reject-with-reason backpressure (never blocking), and the requeue path
// preempted jobs ride — front of class, capacity-exempt, alive even
// after stop().
#include "farm/admission.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tmsim::farm {
namespace {

JobSpec spec_with(Priority p, const std::string& name = "j",
                  SystemCycle cycles = 100) {
  JobSpec s;
  s.name = name;
  s.priority = p;
  s.cycles = cycles;
  return s;
}

TEST(AdmissionQueue, StrictPriorityThenFifoWithinClass) {
  AdmissionQueue q(16, 1'000'000);
  // Interleave submissions across classes.
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kInteractive, "i0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b1"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kInteractive, "i1"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n1"), 0).accepted);

  EXPECT_TRUE(q.has_higher_than(Priority::kBatch));
  EXPECT_TRUE(q.has_higher_than(Priority::kNormal));
  EXPECT_FALSE(q.has_higher_than(Priority::kInteractive));

  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    auto job = q.pop_blocking();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->spec.name);
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"i0", "i1", "n0", "n1", "b0", "b1"}));
}

TEST(AdmissionQueue, RejectsWithStructuredReasons) {
  AdmissionQueue q(2, 1000);

  // kTooLarge: cycle budget above the ceiling.
  const auto too_large = q.submit(spec_with(Priority::kNormal, "big", 1001), 0);
  EXPECT_FALSE(too_large.accepted);
  EXPECT_EQ(too_large.reason, RejectReason::kTooLarge);
  EXPECT_NE(too_large.detail.find("1001"), std::string::npos);

  // kInvalidSpec: validation failure, detail carries the why.
  JobSpec bad = spec_with(Priority::kNormal);
  bad.cycles = 0;
  const auto invalid = q.submit(bad, 0);
  EXPECT_FALSE(invalid.accepted);
  EXPECT_EQ(invalid.reason, RejectReason::kInvalidSpec);
  EXPECT_FALSE(invalid.detail.empty());

  // kQueueFull: capacity is 2.
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);
  const auto full = q.submit(spec_with(Priority::kNormal), 0);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);

  // Popping frees capacity again.
  ASSERT_TRUE(q.pop_blocking().has_value());
  EXPECT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);

  // kStopped after stop().
  q.stop();
  const auto stopped = q.submit(spec_with(Priority::kNormal), 0);
  EXPECT_FALSE(stopped.accepted);
  EXPECT_EQ(stopped.reason, RejectReason::kStopped);

  EXPECT_EQ(q.jobs_submitted(), 3u);
  EXPECT_EQ(q.jobs_rejected(), 4u);
}

TEST(AdmissionQueue, RequeueGoesToFrontAndIgnoresCapacity) {
  AdmissionQueue q(2, 1'000'000);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n1"), 0).accepted);

  auto running = q.pop_blocking();  // n0 leaves the queue
  ASSERT_TRUE(running.has_value());
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n2"), 0).accepted);

  // Queue is at fresh capacity again (n1, n2) — requeue must still work,
  // and the preempted job must overtake same-class fresh work.
  EXPECT_TRUE(q.requeue(std::move(*running), 1));
  EXPECT_EQ(q.depth(Priority::kNormal), 3u);
  const auto fresh = q.submit(spec_with(Priority::kNormal, "n3"), 1);
  EXPECT_FALSE(fresh.accepted);  // fresh capacity still enforced

  auto next = q.pop_blocking();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->spec.name, "n0");
  EXPECT_EQ(next->preemptions, 1u);
}

TEST(AdmissionQueue, RequeueAfterStopDrainsBeforeShutdown) {
  AdmissionQueue q(4, 1'000'000);
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b0"), 0).accepted);
  auto running = q.pop_blocking();
  ASSERT_TRUE(running.has_value());

  q.stop();
  // Admitted work must always be able to come back, even mid-shutdown.
  EXPECT_TRUE(q.requeue(std::move(*running), 1));
  auto back = q.pop_blocking();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec.name, "b0");
  // Backlog drained → nullopt, forever after.
  EXPECT_FALSE(q.pop_blocking().has_value());
  EXPECT_FALSE(q.pop_blocking().has_value());
}

TEST(AdmissionQueue, StopWakesBlockedPoppers) {
  AdmissionQueue q(4, 1'000'000);
  std::thread popper([&] {
    // Blocks on the empty queue until stop() wakes it with nullopt.
    EXPECT_FALSE(q.pop_blocking().has_value());
  });
  q.stop();
  popper.join();  // would hang forever if stop() failed to wake the waiter
}

}  // namespace
}  // namespace tmsim::farm
