// AdmissionQueue semantics: strict priority with FIFO inside a class,
// reject-with-reason backpressure (never blocking), and the requeue path
// preempted jobs ride — front of class, capacity-exempt, alive even
// after stop().
#include "farm/admission.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tmsim::farm {
namespace {

JobSpec spec_with(Priority p, const std::string& name = "j",
                  SystemCycle cycles = 100) {
  JobSpec s;
  s.name = name;
  s.priority = p;
  s.cycles = cycles;
  return s;
}

TEST(AdmissionQueue, StrictPriorityThenFifoWithinClass) {
  AdmissionQueue q(16, 1'000'000);
  // Interleave submissions across classes.
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kInteractive, "i0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b1"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kInteractive, "i1"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n1"), 0).accepted);

  EXPECT_TRUE(q.has_higher_than(Priority::kBatch));
  EXPECT_TRUE(q.has_higher_than(Priority::kNormal));
  EXPECT_FALSE(q.has_higher_than(Priority::kInteractive));

  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    auto job = q.pop_blocking();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->spec.name);
  }
  EXPECT_EQ(order,
            (std::vector<std::string>{"i0", "i1", "n0", "n1", "b0", "b1"}));
}

TEST(AdmissionQueue, RejectsWithStructuredReasons) {
  AdmissionQueue q(2, 1000);

  // kTooLarge: cycle budget above the ceiling.
  const auto too_large = q.submit(spec_with(Priority::kNormal, "big", 1001), 0);
  EXPECT_FALSE(too_large.accepted);
  EXPECT_EQ(too_large.reason, RejectReason::kTooLarge);
  EXPECT_NE(too_large.detail.find("1001"), std::string::npos);

  // kInvalidSpec: validation failure, detail carries the why.
  JobSpec bad = spec_with(Priority::kNormal);
  bad.cycles = 0;
  const auto invalid = q.submit(bad, 0);
  EXPECT_FALSE(invalid.accepted);
  EXPECT_EQ(invalid.reason, RejectReason::kInvalidSpec);
  EXPECT_FALSE(invalid.detail.empty());

  // kQueueFull: capacity is 2.
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);
  const auto full = q.submit(spec_with(Priority::kNormal), 0);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);

  // Popping frees capacity again.
  ASSERT_TRUE(q.pop_blocking().has_value());
  EXPECT_TRUE(q.submit(spec_with(Priority::kNormal), 0).accepted);

  // kStopped after stop().
  q.stop();
  const auto stopped = q.submit(spec_with(Priority::kNormal), 0);
  EXPECT_FALSE(stopped.accepted);
  EXPECT_EQ(stopped.reason, RejectReason::kStopped);

  EXPECT_EQ(q.jobs_submitted(), 3u);
  EXPECT_EQ(q.jobs_rejected(), 4u);
}

TEST(AdmissionQueue, RequeueGoesToFrontAndIgnoresCapacity) {
  AdmissionQueue q(2, 1'000'000);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n1"), 0).accepted);

  auto running = q.pop_blocking();  // n0 leaves the queue
  ASSERT_TRUE(running.has_value());
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n2"), 0).accepted);

  // Queue is at fresh capacity again (n1, n2) — requeue must still work,
  // and the preempted job must overtake same-class fresh work.
  EXPECT_TRUE(q.requeue(std::move(*running), 1));
  EXPECT_EQ(q.depth(Priority::kNormal), 3u);
  const auto fresh = q.submit(spec_with(Priority::kNormal, "n3"), 1);
  EXPECT_FALSE(fresh.accepted);  // fresh capacity still enforced

  auto next = q.pop_blocking();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->spec.name, "n0");
  // requeue() no longer edits scheduling counters — the farm accounts
  // for *why* a job came back (preemption vs retry vs reclaim).
  EXPECT_EQ(next->preemptions, 0u);
  EXPECT_FALSE(next->fresh);
}

TEST(AdmissionQueue, QueueFullCarriesDeterministicBackpressureHint) {
  AdmissionQueue q(3, 1'000'000);
  for (int i = 0; i < 3; ++i) {
    const auto out = q.submit(spec_with(Priority::kNormal), 0);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.queue_capacity, 3u);
    EXPECT_EQ(out.queue_depth, static_cast<std::size_t>(i + 1));
    EXPECT_EQ(out.retry_after_us, 0.0);  // hint is kQueueFull-only
  }
  const auto full = q.submit(spec_with(Priority::kNormal), 0);
  ASSERT_FALSE(full.accepted);
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);
  EXPECT_EQ(full.queue_depth, 3u);
  EXPECT_EQ(full.queue_capacity, 3u);
  // The hint is a pure function of queue state: slope × fresh backlog.
  EXPECT_EQ(full.retry_after_us, kRetryAfterUsPerJob * 3.0);
  EXPECT_NE(full.detail.find("suggest retrying"), std::string::npos);
  // Identical rejection state → identical hint (replayable load tests).
  const auto again = q.submit(spec_with(Priority::kNormal), 123.0);
  ASSERT_FALSE(again.accepted);
  EXPECT_EQ(again.retry_after_us, full.retry_after_us);
}

TEST(AdmissionQueue, RequeueBackYieldsToFreshSameClassWork) {
  AdmissionQueue q(8, 1'000'000);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n0"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "n1"), 0).accepted);
  auto flaky = q.pop_blocking();  // n0
  ASSERT_TRUE(flaky.has_value());
  // A retry goes to the *back* of its class: it must not starve n1.
  EXPECT_TRUE(q.requeue(std::move(*flaky), 1, RequeuePosition::kBack));
  auto first = q.pop_blocking();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->spec.name, "n1");
  auto second = q.pop_blocking();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->spec.name, "n0");
}

TEST(AdmissionQueue, BackoffHidesJobsUntilTheInjectedClockReachesThem) {
  // Injected clock: eligibility becomes a pure function of test state.
  double fake_now = 0.0;
  AdmissionQueue q(8, 1'000'000, [&] { return fake_now; });
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "flaky"), 0).accepted);
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "patient"), 0).accepted);
  auto flaky = q.pop_blocking();
  ASSERT_TRUE(flaky.has_value());
  ASSERT_EQ(flaky->spec.name, "flaky");

  // Requeue the higher-class job with a 5ms backoff. Until the clock
  // gets there it is invisible: not to has_higher_than (a backoff'd job
  // must not trigger preemptions)…
  flaky->not_before_us = 5'000.0;
  EXPECT_TRUE(q.requeue(std::move(*flaky), 0, RequeuePosition::kBack));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_FALSE(q.has_higher_than(Priority::kBatch));

  // …and not to pop_blocking: the lower-priority-but-eligible job wins.
  auto first = q.pop_blocking();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->spec.name, "patient");

  // Once the clock passes the stamp the job is served normally.
  fake_now = 5'000.0;
  auto second = q.pop_blocking();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->spec.name, "flaky");
}

TEST(AdmissionQueue, PopSleepsOutBackoffAndStopStillDrainsIt) {
  // Real steady clock (the default): share its epoch via a twin lambda.
  const auto clock = [] {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count()) *
           1e-3;
  };
  AdmissionQueue q(8, 1'000'000, clock);
  ASSERT_TRUE(q.submit(spec_with(Priority::kNormal, "retry"), 0).accepted);
  auto job = q.pop_blocking();
  ASSERT_TRUE(job.has_value());
  job->not_before_us = clock() + 2'000.0;  // 2ms from now
  EXPECT_TRUE(q.requeue(std::move(*job), clock(), RequeuePosition::kBack));
  q.stop();
  // Admitted work always resolves: pop_blocking sleeps the backoff out
  // even though the queue is stopped (hanging here = the bug).
  auto drained = q.pop_blocking();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->spec.name, "retry");
  EXPECT_FALSE(q.pop_blocking().has_value());
}

TEST(AdmissionQueue, RequeueAfterStopDrainsBeforeShutdown) {
  AdmissionQueue q(4, 1'000'000);
  ASSERT_TRUE(q.submit(spec_with(Priority::kBatch, "b0"), 0).accepted);
  auto running = q.pop_blocking();
  ASSERT_TRUE(running.has_value());

  q.stop();
  // Admitted work must always be able to come back, even mid-shutdown.
  EXPECT_TRUE(q.requeue(std::move(*running), 1));
  auto back = q.pop_blocking();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec.name, "b0");
  // Backlog drained → nullopt, forever after.
  EXPECT_FALSE(q.pop_blocking().has_value());
  EXPECT_FALSE(q.pop_blocking().has_value());
}

TEST(AdmissionQueue, StopWakesBlockedPoppers) {
  AdmissionQueue q(4, 1'000'000);
  std::thread popper([&] {
    // Blocks on the empty queue until stop() wakes it with nullopt.
    EXPECT_FALSE(q.pop_blocking().has_value());
  });
  q.stop();
  popper.join();  // would hang forever if stop() failed to wake the waiter
}

}  // namespace
}  // namespace tmsim::farm
