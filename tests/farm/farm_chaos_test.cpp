// The no-job-left-behind proof (DESIGN.md §13): a farm driven through
// injected transient faults, permanent faults, and worker kills — both
// the graceful flavor (checkpoint survives, job resumes) and the hard
// one (session lost, job restarts from scratch) — over 100+ randomized
// specs still resolves *every* accepted job to exactly one terminal
// result, and every job that completes is bit-identical to an
// undisturbed standalone run. Runs under TSan via the `chaos` ctest
// label (tsan preset), which makes the supervisor's join-before-touch
// reclaim discipline a checked property, not a comment.
//
// Chaos-group membership is a pure function of the job id, so the
// injected faults are as reproducible as the simulations they disturb.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "farm/farm.h"
#include "farm/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmsim::farm {
namespace {

/// Same family as farm_determinism_test: 2x2..3x3 meshes, 60..200
/// cycles, mixed BE/GT, ~1 in 4 hosted (some with a recoverable-rate
/// faulty bus), plus a retry budget for the chaos to spend.
JobSpec random_spec(std::uint64_t index) {
  SplitMix64 rng(0xc4a05ull + index);
  JobSpec spec;
  spec.name = "chaos-" + std::to_string(index);
  spec.net.width = 2 + rng.next_below(2);
  spec.net.height = 2 + rng.next_below(2);
  spec.net.topology = noc::Topology::kMesh;
  spec.net.router.queue_depth = 2 + rng.next_below(2);
  spec.priority = static_cast<Priority>(rng.next_below(kNumPriorities));
  spec.seed = rng.next();
  spec.cycles = 60 + rng.next_below(141);
  spec.engine.num_shards = 1 + rng.next_below(2);
  spec.engine.scheduler =
      static_cast<core::SchedulerKind>(rng.next_below(3));
  spec.workload.be_load = 0.05 * static_cast<double>(rng.next_below(5));
  spec.max_retries = 2;
  if (rng.next_below(4) == 0) {
    spec.kind = JobKind::kHostedFpga;
    if (rng.next_below(2) == 0) {
      spec.faults.read_flip = 1e-3;  // recoverable rate: never aborts
      spec.faults.stuck_busy = 1e-3;
    }
  } else {
    spec.workload.verify_payload = rng.next_below(2) == 0;
  }
  const std::size_t routers = spec.net.width * spec.net.height;
  const std::uint64_t num_gt = rng.next_below(3);
  for (std::uint64_t g = 0; g < num_gt; ++g) {
    traffic::GtStream s;
    s.src = rng.next_below(routers);
    s.dst = (s.src + 1 + rng.next_below(routers - 1)) % routers;
    s.vc = static_cast<unsigned>(g);
    s.period = 40 + 10 * rng.next_below(4);
    s.phase = rng.next_below(20);
    spec.workload.gt_streams.push_back(s);
  }
  return spec;
}

/// Which misfortune a job is assigned, as a pure function of its id.
enum class Group { kClean, kTransient, kKillGraceful, kKillHard, kPermanent };

Group group_of(std::uint64_t job_id) {
  const std::uint64_t h = (job_id * 0x9e3779b97f4a7c15ull) >> 33;
  switch (h % 8) {
    case 0:
    case 1:
      return Group::kTransient;
    case 2:
      return Group::kKillGraceful;
    case 3:
      return Group::kKillHard;
    case 4:
      return Group::kPermanent;
    default:
      return Group::kClean;
  }
}

TEST(FarmChaos, NoJobLeftBehindUnderInjectedFaultsAndWorkerKills) {
  constexpr std::size_t kSpecs = 120;
  std::vector<JobSpec> specs;
  specs.reserve(kSpecs);
  for (std::size_t i = 0; i < kSpecs; ++i) {
    specs.push_back(random_spec(i));
    ASSERT_NO_THROW(specs.back().validate()) << specs.back().serialize();
  }

  // The reference truth: every spec, undisturbed, on this thread.
  std::vector<JobResult> standalone;
  standalone.reserve(kSpecs);
  for (const JobSpec& spec : specs) {
    standalone.push_back(run_job_standalone(spec));
    ASSERT_EQ(standalone.back().status, JobStatus::kDone)
        << spec.name << ": " << standalone.back().error;
  }

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;  // full-rate: every chaos victim leaves a trace
  FarmOptions opt;
  opt.num_workers = 4;
  opt.queue_capacity = kSpecs;
  opt.preempt_quantum = 24;  // 3..9 slices per job: boundaries everywhere
  opt.retry_backoff_base_us = 50.0;
  opt.supervisor_interval_ms = 2.0;  // aggressive reclaim/respawn cadence
  opt.metrics = &metrics;
  opt.tracer = &tracer;
  opt.flight_recorder_depth = 256;

  // Kill actions must fire once per *job*, not once per (job, slice):
  // reclaim preserves the slice counter, so a slice-keyed kill would
  // re-fire on the replacement worker forever (the kill loop). Job ids
  // are assigned 1..kSpecs in submission order.
  std::vector<std::atomic<bool>> tripped(kSpecs + 1);
  opt.chaos = [&](const ChaosEvent& ev) {
    switch (group_of(ev.job_id)) {
      case Group::kTransient:
        // First attempt dies one slice in; the retry runs clean.
        return (ev.attempt == 1 && ev.slice == 1)
                   ? ChaosAction::kThrowTransient
                   : ChaosAction::kNone;
      case Group::kKillGraceful:
        return (ev.slice == 1 && !tripped[ev.job_id].exchange(true))
                   ? ChaosAction::kKillWorker
                   : ChaosAction::kNone;
      case Group::kKillHard:
        return (ev.slice == 1 && !tripped[ev.job_id].exchange(true))
                   ? ChaosAction::kKillWorkerLoseSession
                   : ChaosAction::kNone;
      case Group::kPermanent:
        return ev.slice == 1 ? ChaosAction::kThrowPermanent
                             : ChaosAction::kNone;
      case Group::kClean:
        break;
    }
    return ChaosAction::kNone;
  };

  std::size_t n_transient = 0, n_kill = 0, n_permanent = 0;
  SimFarm farm(opt);
  std::vector<std::uint64_t> ids;
  ids.reserve(kSpecs);
  for (const JobSpec& spec : specs) {
    const SubmitOutcome out = farm.submit(spec);
    ASSERT_TRUE(out.accepted) << spec.name << ": " << out.detail;
    ids.push_back(out.job_id);
    switch (group_of(out.job_id)) {
      case Group::kTransient: ++n_transient; break;
      case Group::kKillGraceful:
      case Group::kKillHard: ++n_kill; break;
      case Group::kPermanent: ++n_permanent; break;
      case Group::kClean: break;
    }
  }
  farm.drain();

  // (a) Exactly one terminal result per accepted spec…
  ASSERT_EQ(farm.results().size(), kSpecs);
  std::size_t done = 0, failed = 0;
  for (std::size_t i = 0; i < kSpecs; ++i) {
    const auto r = farm.results().get(ids[i]);
    ASSERT_TRUE(r.has_value()) << specs[i].name << " left behind";
    if (group_of(ids[i]) == Group::kPermanent) {
      // …with the designed failure where chaos was permanent: contained,
      // structured, never retried, replay tuple attached.
      EXPECT_EQ(r->status, JobStatus::kFailed) << specs[i].name;
      EXPECT_EQ(r->failure.kind, FailureKind::kEngineError);
      EXPECT_EQ(r->failure.attempts, 1u);
      EXPECT_EQ(r->failure.replay, specs[i].serialize());
      // Every surfaced failure ships its black box (DESIGN.md §15): the
      // failing worker's recent events for this job, next to the replay.
      EXPECT_FALSE(r->failure.flight_recording.empty()) << specs[i].name;
      EXPECT_NE(r->failure.flight_recording.find("\"event\": \"publish\""),
                std::string::npos);
      ++failed;
      continue;
    }
    // (b) …and everything that completed is bit-identical to standalone,
    // whether it was retried from scratch, resumed from a reclaimed
    // checkpoint, or restarted after its session died with its worker.
    EXPECT_EQ(r->status, JobStatus::kDone)
        << specs[i].name << ": " << r->error;
    std::string why;
    EXPECT_TRUE(results_equivalent(standalone[i], *r, &why))
        << specs[i].name << ": " << why << "\n" << specs[i].serialize();
    ++done;
  }
  farm.shutdown();

  // The ledger balances: every job in exactly one terminal bucket, no
  // job in two (terminal-race arbitration), none cancelled here.
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed"), done);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed"), failed);
  EXPECT_EQ(metrics.counter_value("farm.jobs.cancelled"), 0u);
  EXPECT_EQ(done + failed, kSpecs);

  // And the chaos actually happened — this test must never pass because
  // the injection quietly stopped injecting.
  ASSERT_GT(n_transient, 0u);
  ASSERT_GT(n_kill, 0u);
  ASSERT_GT(n_permanent, 0u);
  EXPECT_EQ(metrics.counter_value("farm.retries.scheduled"), n_transient);
  EXPECT_EQ(metrics.counter_value("farm.retries.exhausted"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.supervisor.workers_lost"), n_kill);
  EXPECT_EQ(metrics.counter_value("farm.supervisor.jobs_reclaimed"), n_kill);
  EXPECT_EQ(metrics.counter_value("farm.supervisor.respawns"), n_kill);
  EXPECT_EQ(metrics.counter_value("farm.jobs.failed", "reason=engine_error"),
            n_permanent);
  EXPECT_TRUE(farm.quarantined().empty());

  // Whatever the chaos did — retries, kills, reclaims, hard restarts —
  // every job's span chain is still one valid connected tree per trace.
  EXPECT_EQ(tracer.traces_started(), kSpecs);
  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream is(os.str());
  const auto verdict = obs::trace_validate(is);
  EXPECT_EQ(verdict, std::nullopt) << *verdict;
}

}  // namespace
}  // namespace tmsim::farm
