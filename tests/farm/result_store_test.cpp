// ResultStore completion-feed semantics, pinned: the feed is bounded,
// overflow drops the *oldest* notification (never the newest, never the
// producer), drops are counted and surfaced (farm.results.feed_dropped),
// and dropped notifications lose nothing — the results stay retrievable
// through get(). The §5.2 monitor-buffer discipline applied to job
// completions: a slow consumer must not stall a worker.
#include "farm/result_store.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "farm/farm.h"
#include "obs/metrics.h"

namespace tmsim::farm {
namespace {

JobResult result_with_id(std::uint64_t id) {
  JobResult r;
  r.job_id = id;
  r.status = JobStatus::kDone;
  return r;
}

TEST(ResultStore, FeedOverflowDropsOldestAndCounts) {
  ResultStore store(/*completion_feed_depth=*/4);
  // put() reports exactly which publishes displaced a notification.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_FALSE(store.put(result_with_id(id))) << "id " << id;
  }
  for (std::uint64_t id = 5; id <= 7; ++id) {
    EXPECT_TRUE(store.put(result_with_id(id))) << "id " << id;
  }
  EXPECT_EQ(store.completions_dropped(), 3u);

  // Drop-oldest: the feed holds the *newest* 4 completions, in order.
  EXPECT_EQ(store.drain_completions(),
            (std::vector<std::uint64_t>{4, 5, 6, 7}));

  // Nothing was lost, only the notification: every result — including
  // the dropped ids 1..3 — is still retrievable point-wise.
  for (std::uint64_t id = 1; id <= 7; ++id) {
    ASSERT_TRUE(store.get(id).has_value()) << "id " << id;
    EXPECT_EQ(store.get(id)->job_id, id);
  }
  EXPECT_EQ(store.size(), 7u);

  // After a drain the feed is empty and fills again without drops.
  EXPECT_FALSE(store.put(result_with_id(8)));
  EXPECT_EQ(store.drain_completions(), (std::vector<std::uint64_t>{8}));
  EXPECT_EQ(store.completions_dropped(), 3u);  // unchanged
}

TEST(ResultStore, NextBatchBlocksUntilCompletionOrDeadline) {
  using namespace std::chrono_literals;
  ResultStore store(/*completion_feed_depth=*/8);

  // Empty feed: the deadline-bounded wait returns empty, not never.
  EXPECT_TRUE(store.next_batch(0, 1ms).empty());

  // Ready notifications return immediately, FIFO, bounded by max_ids.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    store.put(result_with_id(id));
  }
  EXPECT_EQ(store.next_batch(3, 0us), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(store.next_batch(0, 0us), (std::vector<std::uint64_t>{4, 5}));
  EXPECT_TRUE(store.next_batch(0, 0us).empty());

  // A put() from another thread wakes a blocked next_batch before its
  // deadline — this is what lets the farmd result pump sleep instead of
  // polling.
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    store.put(result_with_id(42));
  });
  const std::vector<std::uint64_t> woke = store.next_batch(0, 10s);
  producer.join();
  EXPECT_EQ(woke, (std::vector<std::uint64_t>{42}));

  // Drop-oldest accounting is unchanged by the blocking API: overflow
  // past the feed depth still counts, and get() still has everything.
  for (std::uint64_t id = 100; id < 112; ++id) {
    store.put(result_with_id(id));
  }
  EXPECT_EQ(store.completions_dropped(), 4u);
  const std::vector<std::uint64_t> tail = store.next_batch(0, 0us);
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front(), 104u);
  EXPECT_EQ(tail.back(), 111u);
  for (std::uint64_t id = 100; id < 112; ++id) {
    EXPECT_TRUE(store.get(id).has_value()) << id;
  }
}

TEST(ResultStore, FarmSurfacesFeedDropsAsMetric) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 8;
  opt.completion_feed_depth = 2;
  opt.supervisor_interval_ms = 0.0;
  opt.metrics = &metrics;
  {
    SimFarm farm(opt);
    JobSpec spec;
    spec.name = "feed";
    spec.net.width = 2;
    spec.net.height = 2;
    spec.cycles = 40;
    for (int i = 0; i < 5; ++i) {
      spec.seed = static_cast<std::uint64_t>(i + 1);
      ASSERT_TRUE(farm.submit(spec).accepted);
    }
    farm.drain();
    // 5 completions through a depth-2 feed nobody drained: 3 dropped.
    EXPECT_EQ(farm.results().completions_dropped(), 3u);
    EXPECT_EQ(farm.results().drain_completions().size(), 2u);
  }
  EXPECT_EQ(metrics.counter_value("farm.results.feed_dropped"), 3u);
}

}  // namespace
}  // namespace tmsim::farm
