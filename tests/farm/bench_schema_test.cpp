// Sanity checker for the committed BENCH_*.json artifacts (DESIGN.md
// §14). The benches emit machine-readable records that CI and the
// README's numbers stand on; this test pins their schema so a bench
// refactor cannot silently rename a metric or emit malformed JSON, and
// pins the headline scaling claim recorded in BENCH_farm_throughput.json:
// paced w4 throughput ≥ 2× w1.
//
// The checker is a deliberately small string-level scanner (the repo
// has no JSON parser dependency): it verifies the envelope keys, brace
// balance, and extracts {"name": ..., "value": ...} metric pairs.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef TMSIM_SOURCE_DIR
#error "bench_schema_test needs -DTMSIM_SOURCE_DIR=<repo root>"
#endif

namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Extracts every {"name": "<n>", "value": <v>, ...} metric row.
std::map<std::string, double> parse_metrics(const std::string& text) {
  std::map<std::string, double> out;
  const std::string name_key = "\"name\": \"";
  const std::string value_key = "\"value\": ";
  std::size_t pos = 0;
  while ((pos = text.find(name_key, pos)) != std::string::npos) {
    pos += name_key.size();
    const std::size_t name_end = text.find('"', pos);
    if (name_end == std::string::npos) {
      break;
    }
    const std::string name = text.substr(pos, name_end - pos);
    const std::size_t vpos = text.find(value_key, name_end);
    if (vpos == std::string::npos) {
      break;
    }
    out[name] = std::stod(text.substr(vpos + value_key.size()));
    pos = name_end;
  }
  return out;
}

void check_envelope(const std::filesystem::path& path,
                    const std::string& text) {
  SCOPED_TRACE(path.string());
  // Envelope keys every bench record carries.
  EXPECT_NE(text.find("\"bench\": \""), std::string::npos);
  EXPECT_NE(text.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(text.find("\"config\": {"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\": ["), std::string::npos);
  // Brace/bracket balance — the cheap well-formedness proxy.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '"' && (i == 0 || text[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string) {
      braces += (c == '{') - (c == '}');
      brackets += (c == '[') - (c == ']');
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // The bench name in the envelope must match the filename.
  const std::string stem = path.stem().string();  // BENCH_<name>
  ASSERT_EQ(stem.rfind("BENCH_", 0), 0u);
  EXPECT_NE(text.find("\"bench\": \"" + stem.substr(6) + "\""),
            std::string::npos);
  // Every metric row carries a unit.
  const std::size_t rows = parse_metrics(text).size();
  EXPECT_GT(rows, 0u) << "no metrics";
  std::size_t units = 0;
  for (std::size_t p = 0; (p = text.find("\"unit\": \"", p)) !=
                          std::string::npos;
       p += 9) {
    ++units;
  }
  EXPECT_EQ(units, rows);
}

TEST(BenchSchema, EveryCommittedBenchRecordIsWellFormed) {
  const std::filesystem::path root(TMSIM_SOURCE_DIR);
  std::size_t found = 0;
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") {
      continue;
    }
    ++found;
    check_envelope(entry.path(), slurp(entry.path()));
  }
  EXPECT_GE(found, 5u) << "expected the committed bench records under "
                       << root;
}

TEST(BenchSchema, CompiledSpeedupRecordBeatsTheWorklist) {
  const std::filesystem::path path =
      std::filesystem::path(TMSIM_SOURCE_DIR) / "BENCH_compiled_speedup.json";
  ASSERT_TRUE(std::filesystem::exists(path))
      << "run build/bench/sched_speedup from the repo root";
  const auto metrics = parse_metrics(slurp(path));
  for (const std::string m :
       {"compiled.table3_cps.round_robin", "compiled.table3_cps.worklist",
        "compiled.table3_cps.compiled", "compiled.speedup.table3_cps",
        "compiled.evals_per_cycle.worklist",
        "compiled.evals_per_cycle.compiled"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  // The DESIGN.md §17 headline: on an acyclic-region-dominated config
  // the build-time schedule beats the run-time worklist >= 3x in
  // simulated cycles per second, because it does the fixed point in one
  // topological pass instead of chasing the change wavefront.
  EXPECT_GE(metrics.at("compiled.speedup.table3_cps"), 3.0);
  EXPECT_GE(metrics.at("compiled.table3_cps.compiled"),
            3.0 * metrics.at("compiled.table3_cps.worklist"));
  EXPECT_GT(metrics.at("compiled.evals_per_cycle.worklist"),
            metrics.at("compiled.evals_per_cycle.compiled"));
  // And the NoC rows are present: the compiled schedule holds its own on
  // the real router workload, not just the synthetic chain.
  for (const std::string m :
       {"compiled.noc_cps.worklist.idle", "compiled.noc_cps.compiled.idle",
        "compiled.noc_cps.worklist.sparse",
        "compiled.noc_cps.compiled.sparse"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
    EXPECT_GT(metrics.at(m), 0.0) << m;
  }
}

TEST(BenchSchema, FarmThroughputRecordCarriesTheScalingSweeps) {
  const std::filesystem::path path =
      std::filesystem::path(TMSIM_SOURCE_DIR) / "BENCH_farm_throughput.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto metrics = parse_metrics(slurp(path));
  // Capacity sweep: every (workers, queue) point with latency quantiles,
  // rejects, and the per-stage pipeline breakdown.
  for (const std::string w : {"w1", "w2", "w4"}) {
    for (const std::string q : {"q4", "q64"}) {
      const std::string tag = w + "_" + q;
      for (const std::string prefix :
           {"jobs_per_sec_", "p50_latency_", "p99_latency_", "rejects_",
            "stage_queue_wait_us_", "stage_attach_us_", "stage_run_us_",
            "stage_publish_us_"}) {
        EXPECT_TRUE(metrics.count(prefix + tag)) << prefix + tag;
      }
      EXPECT_GT(metrics.at("jobs_per_sec_" + tag), 0.0) << tag;
    }
  }
  // Paced scaling sweep — the farm-internal concurrency proof. The
  // committed record must show w4 ≥ 2× w1 (the scaling wall; ideal 4).
  for (const std::string m :
       {"paced_jobs_per_sec_w1", "paced_jobs_per_sec_w2",
        "paced_jobs_per_sec_w4", "paced_scaling_w4_over_w1"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  EXPECT_GE(metrics.at("paced_scaling_w4_over_w1"), 2.0);
  EXPECT_GE(metrics.at("paced_jobs_per_sec_w4"),
            2.0 * metrics.at("paced_jobs_per_sec_w1"));
  // Memoization sweep: duplicate-heavy stream must show a real speedup.
  for (const std::string m : {"memo_off_jobs_per_sec", "memo_on_jobs_per_sec",
                              "memo_speedup", "memo_hits"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  EXPECT_GT(metrics.at("memo_speedup"), 1.0);
  EXPECT_GT(metrics.at("memo_hits"), 0.0);
}

TEST(BenchSchema, ObsOverheadRecordKeepsSamplingCheap) {
  const std::filesystem::path path =
      std::filesystem::path(TMSIM_SOURCE_DIR) / "BENCH_obs_overhead.json";
  ASSERT_TRUE(std::filesystem::exists(path))
      << "run build/bench/obs_overhead from the repo root";
  const auto metrics = parse_metrics(slurp(path));
  for (const std::string m :
       {"jobs_per_sec_off", "jobs_per_sec_sampled", "jobs_per_sec_full",
        "overhead_sampled_pct", "overhead_full_pct", "traces_sampled",
        "traces_full", "spans_full", "spans_dropped_full"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  for (const std::string m :
       {"jobs_per_sec_off", "jobs_per_sec_sampled", "jobs_per_sec_full"}) {
    EXPECT_GT(metrics.at(m), 0.0) << m;
  }
  // The §15 headline: 1-in-64 head sampling is cheap enough to leave on.
  EXPECT_LT(metrics.at("overhead_sampled_pct"), 5.0);
  // And the lit runs genuinely traced — the overhead numbers would be
  // meaningless if sampling had quietly recorded nothing.
  EXPECT_GT(metrics.at("traces_sampled"), 0.0);
  EXPECT_GT(metrics.at("traces_full"), metrics.at("traces_sampled"));
  EXPECT_GT(metrics.at("spans_full"), metrics.at("traces_full"));
  EXPECT_EQ(metrics.at("spans_dropped_full"), 0.0);
}

TEST(BenchSchema, FarmNetgenRecordProvesMultiProcessIngest) {
  const std::filesystem::path path =
      std::filesystem::path(TMSIM_SOURCE_DIR) / "BENCH_farm_netgen.json";
  ASSERT_TRUE(std::filesystem::exists(path))
      << "run build/bench/farm_netgen from the repo root";
  const auto metrics = parse_metrics(slurp(path));
  for (const std::string m :
       {"submits_per_sec", "results_per_sec", "p50_e2e", "p99_e2e", "jobs",
        "clients", "spilled", "rejects", "outbox_dropped", "ledger_ok"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  // The §16 headline: separate client *processes* fed one daemon over
  // TCP, every submit landed (spill absorbed the overflow instead of
  // rejecting), and every result streamed back.
  EXPECT_GE(metrics.at("clients"), 2.0);
  EXPECT_GT(metrics.at("submits_per_sec"), 0.0);
  EXPECT_GT(metrics.at("results_per_sec"), 0.0);
  EXPECT_GT(metrics.at("p99_e2e"), 0.0);
  EXPECT_EQ(metrics.at("rejects"), 0.0);
  EXPECT_EQ(metrics.at("outbox_dropped"), 0.0);
  EXPECT_EQ(metrics.at("ledger_ok"), 1.0);
}

TEST(BenchSchema, FarmLoadgenRecordShowsADeepSustainedBacklog) {
  const std::filesystem::path path =
      std::filesystem::path(TMSIM_SOURCE_DIR) / "BENCH_farm_loadgen.json";
  ASSERT_TRUE(std::filesystem::exists(path))
      << "run build/bench/farm_loadgen from the repo root";
  const auto metrics = parse_metrics(slurp(path));
  for (const std::string m :
       {"jobs_per_sec", "submits_per_sec", "peak_queue_depth",
        "p50_turnaround", "p99_turnaround", "memo_hits", "rejects"}) {
    ASSERT_TRUE(metrics.count(m)) << m;
  }
  // The whole point of the load generator: the admission queue really
  // held a backlog in the thousands while submitters ran.
  EXPECT_GE(metrics.at("peak_queue_depth"), 5000.0);
  EXPECT_GT(metrics.at("jobs_per_sec"), 0.0);
  EXPECT_GT(metrics.at("memo_hits"), 0.0);
  EXPECT_EQ(metrics.at("rejects"), 0.0);
}

}  // namespace
