// Spec-fingerprint memoization proofs (DESIGN.md §14).
//
// The memo's soundness argument has two legs, and each gets a property
// test here:
//   1. *bit-identity*: a memo-served result equals a fresh simulation
//      exactly (digest, latency accumulators, flit counts, fault
//      report), because every simulation-visible output is a pure
//      function of the spec and the fingerprint covers the spec's
//      entire canonical serialization. Proven over 50+ randomized
//      specs against run_job_standalone references.
//   2. *collision safety*: specs differing ONLY in seed, deadline,
//      priority, retry budget, or name must never share a memo entry —
//      all of those fields are serialized, hence fingerprinted.
// Plus the operational contract: LRU bound + farm.memo.* accounting,
// and memo-off-by-default (so determinism/chaos suites are untouched).
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "farm/farm.h"
#include "farm/session.h"
#include "obs/metrics.h"

namespace tmsim::farm {
namespace {

/// Small, fast, heterogeneous core-traffic specs: 2x2..3x3 meshes,
/// 40..160 cycles, mixed BE load, occasional GT streams and payload
/// verification — every knob that feeds the result surface.
JobSpec random_spec(std::uint64_t index) {
  SplitMix64 rng(0x3e30ull + index);
  JobSpec spec;
  spec.name = "memo-" + std::to_string(index);
  spec.net.width = 2 + rng.next_below(2);
  spec.net.height = 2 + rng.next_below(2);
  spec.net.topology = noc::Topology::kMesh;
  spec.net.router.queue_depth = 2 + rng.next_below(2);
  spec.priority = static_cast<Priority>(rng.next_below(kNumPriorities));
  spec.seed = rng.next();
  spec.cycles = 40 + rng.next_below(121);
  spec.workload.be_load = 0.05 * static_cast<double>(rng.next_below(5));
  spec.workload.verify_payload = rng.next_below(2) == 0;
  const std::size_t routers = spec.net.width * spec.net.height;
  if (rng.next_below(2) == 0) {
    traffic::GtStream s;
    s.src = rng.next_below(routers);
    s.dst = (s.src + 1 + rng.next_below(routers - 1)) % routers;
    s.vc = 0;
    s.period = 40 + 10 * rng.next_below(4);
    s.phase = rng.next_below(20);
    spec.workload.gt_streams.push_back(s);
  }
  return spec;
}

TEST(FarmMemo, HitsAreBitIdenticalToFreshRunsAcross50RandomizedSpecs) {
  constexpr std::size_t kSpecs = 52;
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.queue_capacity = 2 * kSpecs;
  opt.memo_capacity = 2 * kSpecs;
  opt.metrics = &metrics;

  std::vector<JobSpec> specs;
  specs.reserve(kSpecs);
  for (std::uint64_t i = 0; i < kSpecs; ++i) {
    specs.push_back(random_spec(i));
  }

  std::vector<std::uint64_t> first_ids(kSpecs), second_ids(kSpecs);
  {
    SimFarm farm(opt);
    // Wave 1 populates the memo...
    for (std::size_t i = 0; i < kSpecs; ++i) {
      const SubmitOutcome out = farm.submit(specs[i]);
      ASSERT_TRUE(out.accepted) << out.detail;
      first_ids[i] = out.job_id;
    }
    farm.drain();
    // ...wave 2 resubmits the identical specs and must be served from it.
    for (std::size_t i = 0; i < kSpecs; ++i) {
      const SubmitOutcome out = farm.submit(specs[i]);
      ASSERT_TRUE(out.accepted) << out.detail;
      second_ids[i] = out.job_id;
    }
    farm.drain();

    for (std::size_t i = 0; i < kSpecs; ++i) {
      const JobResult fresh = farm.results().get(first_ids[i]).value();
      const JobResult served = farm.results().get(second_ids[i]).value();
      ASSERT_EQ(fresh.status, JobStatus::kDone) << specs[i].name;
      ASSERT_EQ(served.status, JobStatus::kDone) << specs[i].name;
      EXPECT_FALSE(fresh.memo_hit) << specs[i].name;
      EXPECT_TRUE(served.memo_hit) << specs[i].name;
      // The served result must be bit-identical both to the farm's own
      // fresh run and to an undisturbed standalone execution.
      std::string why;
      EXPECT_TRUE(results_equivalent(served, fresh, &why))
          << specs[i].name << ": " << why;
      const JobResult standalone = run_job_standalone(specs[i]);
      EXPECT_TRUE(results_equivalent(served, standalone, &why))
          << specs[i].name << " vs standalone: " << why;
      // Served results carry their own scheduling record, not the
      // original run's.
      EXPECT_EQ(served.slices, 0u) << specs[i].name;
      EXPECT_EQ(served.job_id, second_ids[i]);
    }
    farm.shutdown();
  }
  // Every wave-2 job hit; every wave-1 job missed and was inserted.
  EXPECT_EQ(metrics.counter_value("farm.memo.hits"), kSpecs);
  EXPECT_EQ(metrics.counter_value("farm.memo.misses"), kSpecs);
  EXPECT_EQ(metrics.counter_value("farm.memo.inserts"), kSpecs);
  EXPECT_EQ(metrics.counter_value("farm.memo.evictions"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed"), 2 * kSpecs);
  EXPECT_EQ(metrics.counter_value("farm.jobs.completed", "memo=hit"), kSpecs);
}

TEST(FarmMemo, SpecsDifferingOnlyInSchedulingFieldsNeverShareAnEntry) {
  const JobSpec base = random_spec(1000);

  JobSpec seed_variant = base;
  seed_variant.seed ^= 1;
  JobSpec deadline_variant = base;
  deadline_variant.deadline_ms = 60'000;
  JobSpec priority_variant = base;
  priority_variant.priority =
      base.priority == Priority::kBatch ? Priority::kNormal : Priority::kBatch;
  JobSpec retries_variant = base;
  retries_variant.max_retries = base.max_retries + 3;
  JobSpec name_variant = base;
  name_variant.name += "-renamed";

  // All six fingerprints must be distinct — the memo key covers the
  // entire canonical serialization, scheduling fields included.
  const std::vector<const JobSpec*> all = {&base,             &seed_variant,
                                           &deadline_variant, &priority_variant,
                                           &retries_variant,  &name_variant};
  std::unordered_set<std::uint64_t> fps;
  for (const JobSpec* s : all) {
    fps.insert(s->fingerprint());
  }
  EXPECT_EQ(fps.size(), all.size());

  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.memo_capacity = 16;
  opt.metrics = &metrics;
  {
    SimFarm farm(opt);
    const SubmitOutcome b = farm.submit(base);
    ASSERT_TRUE(b.accepted);
    farm.drain();  // base now memoized
    std::vector<std::uint64_t> ids;
    for (const JobSpec* s : all) {
      if (s == &base) {
        continue;
      }
      const SubmitOutcome out = farm.submit(*s);
      ASSERT_TRUE(out.accepted) << out.detail;
      ids.push_back(out.job_id);
    }
    farm.drain();
    for (const std::uint64_t id : ids) {
      const JobResult r = farm.results().get(id).value();
      EXPECT_EQ(r.status, JobStatus::kDone);
      // None of the variants may be served from base's entry.
      EXPECT_FALSE(r.memo_hit) << r.name;
    }
    // The seed variant must also *differ* in simulation surface from the
    // base run — collision here would be result corruption, not just a
    // stale timestamp.
    const JobResult base_r = farm.results().get(b.job_id).value();
    JobSpec seed_rerun = seed_variant;
    const JobResult seed_r = run_job_standalone(seed_rerun);
    EXPECT_NE(base_r.state_digest, seed_r.state_digest);
    farm.shutdown();
  }
  EXPECT_EQ(metrics.counter_value("farm.memo.hits"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.memo.inserts"), 6u);
}

TEST(FarmMemo, LruBoundEvictsOldestAndKeepsAccounting) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kSpecs = 9;
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.memo_capacity = kCapacity;
  opt.metrics = &metrics;
  {
    SimFarm farm(opt);
    for (std::uint64_t i = 0; i < kSpecs; ++i) {
      ASSERT_TRUE(farm.submit(random_spec(2000 + i)).accepted);
      farm.drain();  // sequential, so insertion order is the spec order
    }
    // The oldest spec fell out of the LRU: resubmitting it misses (and
    // re-inserts, evicting the then-oldest).
    const SubmitOutcome again = farm.submit(random_spec(2000));
    ASSERT_TRUE(again.accepted);
    farm.drain();
    EXPECT_FALSE(farm.results().get(again.job_id).value().memo_hit);
    // The newest spec is still resident: resubmitting it hits.
    const SubmitOutcome hit = farm.submit(random_spec(2000 + kSpecs - 1));
    ASSERT_TRUE(hit.accepted);
    farm.drain();
    EXPECT_TRUE(farm.results().get(hit.job_id).value().memo_hit);
    farm.shutdown();
  }
  EXPECT_EQ(metrics.counter_value("farm.memo.inserts"), kSpecs + 1);
  EXPECT_EQ(metrics.counter_value("farm.memo.evictions"),
            kSpecs + 1 - kCapacity);
  EXPECT_EQ(metrics.counter_value("farm.memo.hits"), 1u);
  EXPECT_EQ(metrics.gauge_value("farm.memo.size"),
            static_cast<double>(kCapacity));
}

TEST(FarmMemo, OffByDefaultSoEveryRunSimulates) {
  obs::MetricsRegistry metrics;
  FarmOptions opt;
  opt.num_workers = 1;
  opt.metrics = &metrics;
  ASSERT_EQ(opt.memo_capacity, 0u);  // the default, pinned
  const JobSpec spec = random_spec(3000);
  {
    SimFarm farm(opt);
    const SubmitOutcome a = farm.submit(spec);
    ASSERT_TRUE(a.accepted);
    farm.drain();
    const SubmitOutcome b = farm.submit(spec);
    ASSERT_TRUE(b.accepted);
    farm.drain();
    EXPECT_FALSE(farm.results().get(a.job_id).value().memo_hit);
    EXPECT_FALSE(farm.results().get(b.job_id).value().memo_hit);
    // Identical simulations either way — the memo is an optimization,
    // never a semantic.
    std::string why;
    EXPECT_TRUE(results_equivalent(farm.results().get(a.job_id).value(),
                                   farm.results().get(b.job_id).value(), &why))
        << why;
    farm.shutdown();
  }
  EXPECT_EQ(metrics.counter_value("farm.memo.hits"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.memo.misses"), 0u);
  EXPECT_EQ(metrics.counter_value("farm.memo.inserts"), 0u);
}

}  // namespace
}  // namespace tmsim::farm
