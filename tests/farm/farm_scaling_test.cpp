// Scaling proofs for the sharded farm hot path (DESIGN.md §14).
//
// Honesty note, pinned in DESIGN.md: a cycle-accurate simulation job is
// pure CPU, so on a single-core host w4 can never beat w1 no matter how
// good the farm's locking is — the scaling wall these tests guard is
// *farm-internal serialization* (queue/store/control contention), not
// the host's core count. So the primary proof uses a *paced* workload:
// a chaos hook that sleeps a fixed wall interval at every slice
// boundary and returns kNone. Sleeps overlap across workers even on one
// core, so throughput scales with worker count iff the farm's hot path
// (pop → attach → run → publish) is actually concurrent; any global
// mutex on that path collapses the ratio toward 1. A CPU-bound variant
// runs only on hosts with ≥ 4 hardware threads.
//
// Pinned bound: paced w4 throughput ≥ 2.0 × w1 (ideal ≈ 4, generous
// margin for scheduler noise). Skipped under TSan/ASan, whose runtime
// serializes and slows execution enough to drown the signal.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "farm/farm.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TMSIM_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TMSIM_UNDER_SANITIZER 1
#endif
#endif
#ifndef TMSIM_UNDER_SANITIZER
#define TMSIM_UNDER_SANITIZER 0
#endif

namespace tmsim::farm {
namespace {

JobSpec paced_spec(std::uint64_t index, SystemCycle cycles, Priority p) {
  JobSpec spec;
  spec.name = "scale-" + std::to_string(index);
  spec.net.width = 2;
  spec.net.height = 2;
  spec.net.topology = noc::Topology::kMesh;
  spec.priority = p;
  spec.seed = 0x5ca1eull + index;
  spec.cycles = cycles;
  spec.workload.be_load = 0.05;
  return spec;
}

/// Runs `num_jobs` paced jobs (kSliceSleep of wall time per slice) on a
/// farm with `workers` workers and returns jobs per wall second.
double paced_throughput(std::size_t workers, std::size_t num_jobs) {
  // Pacing must dominate the job's own CPU (a few ms of session build +
  // simulation, which cannot parallelize on a single-core host) or the
  // CPU floor eats the margin: ratio ≈ 4·(S+C)⁻¹ · min(C⁻¹, …) — with
  // S = 16 ms of sleep per job vs C ≈ 5 ms of CPU the ideal is ~3.9×.
  constexpr auto kSliceSleep = std::chrono::microseconds(8000);
  FarmOptions opt;
  opt.num_workers = workers;
  opt.queue_capacity = num_jobs;
  opt.preempt_quantum = 256;
  opt.supervisor_interval_ms = 0.0;  // nothing to supervise; less noise
  opt.chaos = [kSliceSleep](const ChaosEvent&) {
    std::this_thread::sleep_for(kSliceSleep);
    return ChaosAction::kNone;
  };
  SimFarm farm(opt);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < num_jobs; ++i) {
    // 2 slices per job => 2 paced sleeps per job.
    const SubmitOutcome out = farm.submit(
        paced_spec(i, 2 * opt.preempt_quantum, Priority::kNormal));
    EXPECT_TRUE(out.accepted) << out.detail;
  }
  farm.drain();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  for (const JobResult& r : farm.results().all()) {
    EXPECT_EQ(r.status, JobStatus::kDone) << r.name;
  }
  farm.shutdown();
  return static_cast<double>(num_jobs) / wall.count();
}

TEST(FarmScaling, PacedThroughputScalesAcrossWorkers) {
  if (TMSIM_UNDER_SANITIZER) {
    GTEST_SKIP() << "sanitizer runtime distorts wall-clock pacing";
  }
  constexpr std::size_t kJobs = 48;
  const double w1 = paced_throughput(1, kJobs);
  const double w4 = paced_throughput(4, kJobs);
  RecordProperty("paced_jobs_per_sec_w1", std::to_string(w1));
  RecordProperty("paced_jobs_per_sec_w4", std::to_string(w4));
  RecordProperty("paced_scaling_w4_over_w1", std::to_string(w4 / w1));
  // Ideal is ~4.0; ≥ 2.0 is the generous-margin wall. A global mutex
  // anywhere on pop → attach → run → publish drags this toward 1.0.
  EXPECT_GE(w4, 2.0 * w1)
      << "w1=" << w1 << " jobs/s, w4=" << w4
      << " jobs/s — the farm hot path is serializing";
}

TEST(FarmScaling, InteractiveTailStaysBoundedUnderOverload) {
  if (TMSIM_UNDER_SANITIZER) {
    GTEST_SKIP() << "sanitizer runtime distorts wall-clock pacing";
  }
  // Overload 2 workers with a deep batch backlog, then drop in
  // interactive work: strict priority + slice-boundary preemption must
  // keep the interactive tail far below the batch median — the p99
  // bound that makes "interactive" mean something under load.
  constexpr std::size_t kBatchJobs = 40;
  constexpr std::size_t kInteractiveJobs = 6;
  FarmOptions opt;
  opt.num_workers = 2;
  opt.queue_capacity = kBatchJobs + kInteractiveJobs;
  opt.preempt_quantum = 256;
  opt.supervisor_interval_ms = 0.0;
  opt.chaos = [](const ChaosEvent&) {
    std::this_thread::sleep_for(std::chrono::microseconds(1500));
    return ChaosAction::kNone;
  };
  SimFarm farm(opt);
  std::vector<std::uint64_t> batch_ids, interactive_ids;
  for (std::size_t i = 0; i < kBatchJobs; ++i) {
    const SubmitOutcome out = farm.submit(
        paced_spec(100 + i, 2 * opt.preempt_quantum, Priority::kBatch));
    ASSERT_TRUE(out.accepted) << out.detail;
    batch_ids.push_back(out.job_id);
  }
  for (std::size_t i = 0; i < kInteractiveJobs; ++i) {
    const SubmitOutcome out = farm.submit(paced_spec(
        200 + i, 2 * opt.preempt_quantum, Priority::kInteractive));
    ASSERT_TRUE(out.accepted) << out.detail;
    interactive_ids.push_back(out.job_id);
  }
  farm.drain();
  std::vector<double> batch_turn, interactive_turn;
  for (const std::uint64_t id : batch_ids) {
    batch_turn.push_back(farm.results().get(id).value().turnaround_seconds);
  }
  for (const std::uint64_t id : interactive_ids) {
    const JobResult r = farm.results().get(id).value();
    EXPECT_EQ(r.status, JobStatus::kDone) << r.name;
    interactive_turn.push_back(r.turnaround_seconds);
  }
  farm.shutdown();
  std::sort(batch_turn.begin(), batch_turn.end());
  const double batch_median = batch_turn[batch_turn.size() / 2];
  const double interactive_worst =
      *std::max_element(interactive_turn.begin(), interactive_turn.end());
  RecordProperty("interactive_worst_s", std::to_string(interactive_worst));
  RecordProperty("batch_median_s", std::to_string(batch_median));
  // The worst interactive turnaround (its p99, with 6 samples) must beat
  // the *median* batch turnaround — interactive work jumped the backlog.
  EXPECT_LT(interactive_worst, batch_median);
  // And an absolute ceiling: ~4 paced jobs' worth of wall time, not the
  // backlog's. Generous (≈ 10× the expected value) to survive CI noise.
  EXPECT_LT(interactive_worst, 1.0);
}

TEST(FarmScaling, CpuBoundThroughputScalesOnManyCoreHosts) {
  if (TMSIM_UNDER_SANITIZER) {
    GTEST_SKIP() << "sanitizer runtime serializes execution";
  }
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads (have "
                 << std::thread::hardware_concurrency()
                 << "); CPU-bound simulation cannot scale past the core "
                    "count — see DESIGN.md §14";
  }
  constexpr std::size_t kJobs = 32;
  const auto run = [](std::size_t workers) {
    FarmOptions opt;
    opt.num_workers = workers;
    opt.queue_capacity = kJobs;
    opt.supervisor_interval_ms = 0.0;
    SimFarm farm(opt);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kJobs; ++i) {
      EXPECT_TRUE(
          farm.submit(paced_spec(300 + i, 2048, Priority::kNormal)).accepted);
    }
    farm.drain();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    farm.shutdown();
    return static_cast<double>(kJobs) / wall.count();
  };
  const double w1 = run(1);
  const double w4 = run(4);
  RecordProperty("cpu_jobs_per_sec_w1", std::to_string(w1));
  RecordProperty("cpu_jobs_per_sec_w4", std::to_string(w4));
  EXPECT_GE(w4, 2.0 * w1) << "w1=" << w1 << " w4=" << w4;
}

}  // namespace
}  // namespace tmsim::farm
