// JobSpec contract tests: canonical serialization round-trips exactly,
// fingerprints identify the request (and nothing else), malformed text
// never enters the queue, and derive_seed keeps every random consumer on
// its own stream.
#include "farm/job_spec.h"

#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tmsim::farm {
namespace {

JobSpec rich_spec() {
  JobSpec spec;
  spec.name = "rt.job-1_x";
  spec.kind = JobKind::kHostedFpga;
  spec.priority = Priority::kBatch;
  spec.net.width = 5;
  spec.net.height = 3;
  spec.net.topology = noc::Topology::kMesh;
  spec.net.router.num_vcs = 4;
  spec.net.router.queue_depth = 3;
  spec.workload.be_load = 0.12345678901234567;
  spec.workload.be_vcs = {3};
  spec.workload.be_bytes = 18;
  traffic::GtStream s;
  s.src = 1;
  s.dst = 7;
  s.vc = 0;
  s.period = 640;
  s.phase = 3;
  s.bytes = 256;
  spec.workload.gt_streams.push_back(s);
  spec.workload.stop_on_overload = false;
  spec.workload.overload_threshold = 4096;
  spec.engine.num_shards = 2;
  spec.seed = 0xdeadbeefcafeull;
  spec.cycles = 4242;
  spec.faults.read_flip = 0.25;
  spec.faults.stuck_busy = 0.125;
  spec.faults.stuck_busy_reads = 5;
  return spec;
}

TEST(JobSpec, SerializeRoundTripsExactly) {
  const JobSpec spec = rich_spec();
  const JobSpec back = JobSpec::deserialize(spec.serialize());
  EXPECT_EQ(back, spec);
  // And the round-trip is a fixed point of serialization itself.
  EXPECT_EQ(back.serialize(), spec.serialize());
}

TEST(JobSpec, DefaultSpecRoundTrips) {
  const JobSpec spec;
  EXPECT_EQ(JobSpec::deserialize(spec.serialize()), spec);
}

TEST(JobSpec, FingerprintIsStableAndSensitive) {
  const JobSpec a = rich_spec();
  JobSpec b = rich_spec();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Identity survives a serialization round trip — queue, log, resubmit.
  EXPECT_EQ(JobSpec::deserialize(a.serialize()).fingerprint(),
            a.fingerprint());
  // Any field change moves the fingerprint.
  b.seed ^= 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = rich_spec();
  b.workload.be_load += 1e-9;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = rich_spec();
  b.priority = Priority::kInteractive;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(JobSpec, FormatVersionLeadsTheSerializedFormAndGates) {
  // The stable form is self-versioned: `v=<kSpecFormatVersion>` is the
  // first token, so a decoder can gate before parsing anything else.
  const JobSpec spec = rich_spec();
  const std::string text = spec.serialize();
  EXPECT_EQ(text.rfind("v=" + std::to_string(kSpecFormatVersion), 0), 0u)
      << text;
  EXPECT_EQ(JobSpec::deserialize(text), spec);

  // A missing `v` token is the pre-versioning format — version 1, still
  // accepted (old queue dumps and replay tuples keep working).
  JobSpec named;
  named.name = "legacy";
  const std::string legacy = "name=legacy";
  EXPECT_EQ(JobSpec::deserialize(legacy).name, named.name);

  // Any other version is rejected outright — never half-parsed.
  EXPECT_THROW(JobSpec::deserialize("v=2 name=future"), std::exception);
  EXPECT_THROW(JobSpec::deserialize("v=0 name=ancient"), std::exception);
  EXPECT_THROW(JobSpec::deserialize("v=junk name=x"), std::exception);
}

TEST(JobSpec, DeserializeFuzzNeverCrashes) {
  // Deterministic mutation fuzz over the serialized form: any corrupted
  // spec text either round-trips to a valid spec or throws — the parser
  // must never crash or accept garbage silently.
  const std::string good = rich_spec().serialize();
  SplitMix64 rng(0x5bec);
  int threw = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string bad = good;
    const std::size_t edits = 1 + rng.next_below(3);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t off = rng.next_below(bad.size());
      bad[off] = static_cast<char>(32 + rng.next_below(95));
    }
    try {
      const JobSpec parsed = JobSpec::deserialize(bad);
      // If it parsed, its canonical form must itself round-trip.
      EXPECT_EQ(JobSpec::deserialize(parsed.serialize()), parsed);
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0) << "the fuzz stopped fuzzing";
}

TEST(JobSpec, DeserializeRejectsUnknownKeysAndGarbage) {
  EXPECT_THROW(JobSpec::deserialize("bogus_key=1"), std::exception);
  EXPECT_THROW(JobSpec::deserialize("cycles=12junk"), std::exception);
  EXPECT_THROW(JobSpec::deserialize("be_load=notanumber"), std::exception);
  EXPECT_THROW(JobSpec::deserialize("kind=3"), std::exception);
}

TEST(JobSpec, ValidateCatchesUnsatisfiableSpecs) {
  {
    JobSpec s;
    s.name = "spaces are bad";
    EXPECT_THROW(s.validate(), std::exception);
  }
  {
    JobSpec s;
    s.cycles = 0;
    EXPECT_THROW(s.validate(), std::exception);
  }
  {
    JobSpec s;  // fig1_gt and explicit streams are mutually exclusive
    s.workload.fig1_gt = true;
    s.workload.gt_streams.resize(1);
    EXPECT_THROW(s.validate(), std::exception);
  }
  {
    JobSpec s;  // the hosted stack has no warmup support
    s.kind = JobKind::kHostedFpga;
    s.workload.warmup_cycles = 10;
    EXPECT_THROW(s.validate(), std::exception);
  }
  {
    JobSpec s;  // fault injection needs the bus — core jobs have none
    s.faults.read_flip = 0.1;
    EXPECT_THROW(s.validate(), std::exception);
  }
  {
    JobSpec s;
    s.workload.be_load = 1.5;
    EXPECT_THROW(s.validate(), std::exception);
  }
  EXPECT_NO_THROW(rich_spec().validate());
  EXPECT_NO_THROW(JobSpec{}.validate());
}

TEST(JobSpec, DeriveSeedSeparatesDomains) {
  const std::uint64_t base = 42;
  std::set<std::uint64_t> seeds;
  for (const char* domain : {"stimuli", "host-rng", "faults", "schedule"}) {
    const std::uint64_t s = derive_seed(base, domain);
    EXPECT_NE(s, 0u) << domain;       // 0 means "unseeded" to some sinks
    EXPECT_NE(s, base) << domain;
    EXPECT_TRUE(seeds.insert(s).second) << "collision on " << domain;
    // Deterministic: same (base, domain) → same sub-seed.
    EXPECT_EQ(derive_seed(base, domain), s);
    // And base-sensitive.
    EXPECT_NE(derive_seed(base + 1, domain), s);
  }
}

}  // namespace
}  // namespace tmsim::farm
