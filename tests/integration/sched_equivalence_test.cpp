// Differential proof of the worklist scheduler (DESIGN.md §12): for any
// topology, workload, seed, engine (sequential or sharded) and shard
// count, SchedulerKind::kWorklist must produce results bit-identical to
// the reference round-robin sweep — every local output, every credit
// wire, every register bit, every cycle (LockstepNocSimulation throws
// on the first divergence), every link value at the end.
//
// Also here: the quiescence fast-path accounting, the degenerate-
// topology rejections (combinational self-loops, external links with no
// readers), the ConvergenceReport parity between engines, a saturated-
// worklist stress (runs under the tsan preset via the `sched` label),
// and the engine.sched.* metrics rows.
//
// Every randomized case derives its whole configuration from one index,
// printed as a replay tuple via SCOPED_TRACE on failure: rerun with
//   --gtest_filter='*Randomized*/<index>'
// to reproduce a failing case exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/example_blocks.h"
#include "core/noc_block.h"
#include "core/sharded_simulator.h"
#include "noc/lockstep.h"
#include "obs/engine_sinks.h"
#include "traffic/harness.h"

namespace tmsim {
namespace {

using core::EngineOptions;
using core::PartitionPolicy;
using core::SchedulePolicy;
using core::SchedulerKind;
using core::SeqNocSimulation;
using noc::NetworkConfig;
using noc::Topology;

struct RandomConfig {
  std::size_t width;
  std::size_t height;
  Topology topology;
  std::size_t queue_depth;
  double be_load;
  std::uint64_t traffic_seed;
  std::size_t cycles;
  std::size_t num_shards;
  PartitionPolicy partition;

  std::string replay_tuple(std::uint64_t index) const {
    return "replay{index=" + std::to_string(index) + ", net=" +
           std::to_string(width) + "x" + std::to_string(height) +
           (topology == Topology::kTorus ? " torus" : " mesh") +
           ", queue_depth=" + std::to_string(queue_depth) +
           ", be_load=" + std::to_string(be_load) +
           ", traffic_seed=" + std::to_string(traffic_seed) +
           ", cycles=" + std::to_string(cycles) +
           ", num_shards=" + std::to_string(num_shards) + ", partition=" +
           core::partition_policy_name(partition) + "}";
  }
};

/// The whole configuration space is a pure function of the case index.
/// Loads span idle-ish (where the fast path skips nearly everything) to
/// saturated (where the worklist is constantly full) — the scheduler
/// must be invisible in results across the entire range.
RandomConfig derive_config(std::uint64_t index) {
  SplitMix64 rng(0x5c4ed5eed ^ (index * 0x9e3779b97f4a7c15ull));
  RandomConfig c;
  static constexpr struct {
    std::size_t w, h;
  } kShapes[] = {{1, 2}, {2, 2}, {2, 3}, {3, 3}, {4, 2},
                 {4, 3}, {4, 4}, {5, 3}, {3, 5}, {6, 2}};
  const auto& shape = kShapes[rng.next_below(std::size(kShapes))];
  c.width = shape.w;
  c.height = shape.h;
  c.topology = rng.next_below(2) ? Topology::kTorus : Topology::kMesh;
  c.queue_depth = 1 + rng.next_below(4);
  static constexpr double kLoads[] = {0.0, 0.02, 0.05, 0.1, 0.25, 0.5};
  c.be_load = kLoads[rng.next_below(std::size(kLoads))];
  c.traffic_seed = rng.next() | 1;
  c.cycles = 100 + 40 * rng.next_below(3);
  const std::size_t routers = c.width * c.height;
  c.num_shards = 2 + rng.next_below(5);  // 2..6, clamped by the engine
  if (c.num_shards > routers) {
    c.num_shards = routers;
  }
  static constexpr PartitionPolicy kPolicies[] = {
      PartitionPolicy::kRoundRobin, PartitionPolicy::kContiguous,
      PartitionPolicy::kMinCutGreedy};
  c.partition = kPolicies[rng.next_below(3)];
  return c;
}

NetworkConfig make_net(const RandomConfig& c) {
  NetworkConfig net;
  net.width = c.width;
  net.height = c.height;
  net.topology = c.topology;
  net.router.queue_depth = c.queue_depth;
  return net;
}

EngineOptions make_opts(const RandomConfig& c, std::size_t shards,
                        SchedulerKind sched) {
  EngineOptions o;
  o.policy = SchedulePolicy::kDynamic;
  o.num_shards = shards;
  o.partition = c.partition;
  o.scheduler = sched;
  return o;
}

class SchedRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedRandomized, SchedulersBitIdenticalAcrossEngines) {
  const std::uint64_t index = GetParam();
  const RandomConfig cfg = derive_config(index);
  SCOPED_TRACE(cfg.replay_tuple(index));
  const NetworkConfig net = make_net(cfg);

  // {round_robin, worklist, compiled} × {sequential, sharded}, all in
  // lockstep: the round-robin sequential engine is the reference every
  // other combination must match cycle for cycle.
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  std::vector<const SeqNocSimulation*> raw;
  for (const std::size_t shards : {std::size_t{1}, cfg.num_shards}) {
    for (const SchedulerKind sched :
         {SchedulerKind::kRoundRobin, SchedulerKind::kWorklist,
          SchedulerKind::kCompiled}) {
      auto sim = std::make_unique<SeqNocSimulation>(
          net, make_opts(cfg, shards, sched));
      raw.push_back(sim.get());
      sims.push_back(std::move(sim));
    }
  }
  noc::LockstepNocSimulation lockstep(std::move(sims));

  traffic::TrafficHarness::Options opts;
  opts.seed = cfg.traffic_seed;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  h.set_be_load(cfg.be_load, {0, 1, 2, 3});
  h.run(cfg.cycles);  // lockstep throws on any per-cycle divergence
  h.set_be_load(0.0);
  h.run(60);  // drain: the idle tail exercises the quiescence fast path
  noc::check_credit_invariant(lockstep);

  // Final link-state sweep: every link of the model, not just the
  // externally visible ones the lockstep compares.
  const core::Engine& ref = raw[0]->engine();
  for (std::size_t s = 1; s < raw.size(); ++s) {
    const core::Engine& eng = raw[s]->engine();
    ASSERT_EQ(ref.model().num_links(), eng.model().num_links());
    for (core::LinkId l = 0; l < ref.model().num_links(); ++l) {
      ASSERT_EQ(ref.link_value(l), eng.link_value(l))
          << "sim " << s << " link " << l << " ("
          << ref.model().link(l).name << ")";
    }
  }
}

// 120 randomized configurations, each a distinct point in the space.
INSTANTIATE_TEST_SUITE_P(Configs, SchedRandomized,
                         ::testing::Range<std::uint64_t>(0, 120));

TEST(SchedQuiescence, IdleNocIsSkippedEntirelyByBothEngines) {
  // A NoC with no traffic settles to a fixed point within a few warmup
  // cycles (idle routers stop rotating their arbiter pointers); from
  // then on the worklist scheduler must evaluate nothing at all while
  // the round-robin reference still pays one pass per cycle.
  NetworkConfig net;
  net.width = 4;
  net.height = 4;
  net.topology = Topology::kMesh;
  const std::size_t n = net.num_routers();

  auto idle_stats = [&](std::size_t shards, SchedulerKind sched) {
    SeqNocSimulation sim(net, make_opts(derive_config(0), shards, sched));
    for (int i = 0; i < 6; ++i) {
      sim.step();  // warmup: reset transients settle
    }
    sim.step();
    return sim.last_step_stats();
  };

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const core::StepStats rr =
        idle_stats(shards, SchedulerKind::kRoundRobin);
    EXPECT_EQ(rr.delta_cycles, n) << "shards=" << shards;
    EXPECT_EQ(rr.skipped_blocks, 0u) << "shards=" << shards;
    const core::StepStats wl = idle_stats(shards, SchedulerKind::kWorklist);
    EXPECT_EQ(wl.delta_cycles, 0u) << "shards=" << shards;
    EXPECT_EQ(wl.skipped_blocks, n) << "shards=" << shards;
    EXPECT_EQ(wl.worklist_high_water, 0u) << "shards=" << shards;
  }
}

TEST(SchedMetrics, WorklistCountersReachTheRegistry) {
  NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = Topology::kMesh;
  obs::MetricsRegistry registry;
  obs::EngineMetricsSink sink(registry);
  SeqNocSimulation sim(
      net, make_opts(derive_config(1), 1, SchedulerKind::kWorklist));
  sim.set_observer(&sink);
  for (int i = 0; i < 10; ++i) {
    sim.step();
  }
  EXPECT_GT(registry.counter("engine.sched.delta_evals").value(), 0u);
  EXPECT_GT(registry.counter("engine.sched.skipped_blocks").value(), 0u);
  // The first cycle queues all nine routers at once.
  EXPECT_GE(registry.gauge("engine.sched.worklist_high_water").value(), 9.0);
  EXPECT_EQ(registry.counter("engine.sched.delta_evals").value(),
            registry.counter("engine.delta_cycles").value());
}

// ---------------------------------------------------------------------------
// Degenerate-topology rejection (structured errors instead of a hang)
// ---------------------------------------------------------------------------

core::SystemModel self_loop_model() {
  core::SystemModel m;
  const core::BlockId a =
      m.add_block(std::make_shared<core::examples::NotBlock>(), "a");
  const core::LinkId aa =
      m.add_link("aa", 1, core::LinkKind::kCombinational);
  m.bind_output(a, 0, aa);
  m.bind_input(a, 0, aa);
  m.finalize();
  return m;
}

TEST(SchedDegenerate, CombinationalSelfLoopRejectedAtConstruction) {
  const core::SystemModel m = self_loop_model();
  // Round-robin keeps the legacy behaviour: constructs, then reports
  // the oscillation at step() time via the eval budget.
  core::SequentialSimulator rr(m, SchedulePolicy::kDynamic, 16);
  EXPECT_THROW(rr.step(), core::ConvergenceError);
  // The worklist scheduler refuses the topology up front, structurally.
  try {
    core::SequentialSimulator wl(m, SchedulePolicy::kDynamic, 16, 1,
                                 SchedulerKind::kWorklist);
    FAIL() << "worklist scheduler accepted a combinational self-loop";
  } catch (const ContextualError& e) {
    EXPECT_EQ(e.context_value("scheduler"), "worklist");
    EXPECT_EQ(e.context_value("name"), "aa");
  }
  core::ShardedConfig cfg;
  cfg.num_shards = 1;
  cfg.scheduler = SchedulerKind::kWorklist;
  EXPECT_THROW(core::ShardedSimulator(m, cfg), ContextualError);
}

TEST(SchedDegenerate, ExternalLinkWithNoReadersRejected) {
  core::SystemModel m;
  const core::BlockId a =
      m.add_block(std::make_shared<core::examples::CombAdderBlock>(8, 1), "a");
  const core::LinkId in = m.add_link("in", 8, core::LinkKind::kCombinational);
  const core::LinkId out =
      m.add_link("out", 8, core::LinkKind::kCombinational);
  // An external link nobody reads: an event source wired to nothing.
  m.add_link("dangle", 8, core::LinkKind::kCombinational);
  m.bind_input(a, 0, in);
  m.bind_output(a, 0, out);
  m.finalize();
  core::SequentialSimulator rr(m, SchedulePolicy::kDynamic);  // legacy: fine
  rr.step();
  try {
    core::SequentialSimulator wl(m, SchedulePolicy::kDynamic, 64, 1,
                                 SchedulerKind::kWorklist);
    FAIL() << "worklist scheduler accepted a reader-less external link";
  } catch (const ContextualError& e) {
    EXPECT_EQ(e.context_value("scheduler"), "worklist");
    EXPECT_EQ(e.context_value("name"), "dangle");
  }
  core::ShardedConfig cfg;
  cfg.num_shards = 1;
  cfg.scheduler = SchedulerKind::kWorklist;
  EXPECT_THROW(core::ShardedSimulator(m, cfg), ContextualError);
}

// ---------------------------------------------------------------------------
// ConvergenceReport parity (the sharded engine must diagnose like the
// sequential one, deterministically)
// ---------------------------------------------------------------------------

core::SystemModel not_ring(std::size_t n) {
  core::SystemModel m;
  auto inv = std::make_shared<core::examples::NotBlock>();
  std::vector<core::BlockId> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    blocks.push_back(m.add_block(inv, "not" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const core::LinkId l = m.add_link("l" + std::to_string(i), 1,
                                      core::LinkKind::kCombinational);
    m.bind_output(blocks[i], 0, l);
    m.bind_input(blocks[(i + 1) % n], 0, l);
  }
  m.finalize();
  return m;
}

core::ConvergenceReport trip(core::Engine& eng) {
  try {
    eng.step();
  } catch (const core::ConvergenceError& e) {
    return e.report();
  }
  ADD_FAILURE() << "engine settled an odd NOT ring";
  return core::ConvergenceReport{};
}

TEST(SchedConvergence, ReportParityBetweenEnginesAndSchedulers) {
  const core::SystemModel m = not_ring(5);

  core::SequentialSimulator seq_rr(m, SchedulePolicy::kDynamic, 16);
  core::SequentialSimulator seq_wl(m, SchedulePolicy::kDynamic, 16, 1,
                                   SchedulerKind::kWorklist);
  // Compiled: the whole ring condenses into one SCC whose scoped settle
  // trips the same per-SCC budget (sequential), or — split one inverter
  // per shard — a cut loop that ping-pongs to the superstep cap.
  core::SequentialSimulator seq_cp(m, SchedulePolicy::kDynamic, 16, 1,
                                   SchedulerKind::kCompiled);
  core::ShardedConfig cfg;
  cfg.num_shards = 5;  // one inverter per shard: purely cross-shard loop
  cfg.max_evals_per_block = 16;
  cfg.scheduler = SchedulerKind::kWorklist;
  core::ShardedSimulator sh_wl(m, cfg);
  core::ShardedConfig cp_cfg = cfg;
  cp_cfg.scheduler = SchedulerKind::kCompiled;
  core::ShardedSimulator sh_cp(m, cp_cfg);

  const core::ConvergenceReport a = trip(seq_rr);
  const core::ConvergenceReport b = trip(seq_wl);
  const core::ConvergenceReport c = trip(sh_wl);
  const core::ConvergenceReport d = trip(seq_cp);
  const core::ConvergenceReport e = trip(sh_cp);

  // Size/limit fields agree across all engine/scheduler combinations.
  for (const core::ConvergenceReport* r : {&a, &b, &c, &d, &e}) {
    EXPECT_EQ(r->num_blocks, m.num_blocks());
    EXPECT_EQ(r->limit, 16u * m.num_blocks());
    ASSERT_FALSE(r->oscillating_blocks.empty());
    ASSERT_FALSE(r->last_changed_links.empty());
    EXPECT_LE(r->last_changed_links.size(), 8u);
    for (const core::BlockId blk : r->oscillating_blocks) {
      EXPECT_LT(blk, m.num_blocks());
    }
    for (const core::LinkId l : r->last_changed_links) {
      EXPECT_LT(l, m.num_links());
    }
  }
  // The sharded report must cover the blocks the sequential engine
  // flags (the engines trip at different points of the loop, so the
  // sharded set covers rather than equals).
  for (const core::BlockId blk : a.oscillating_blocks) {
    EXPECT_TRUE(std::find(c.oscillating_blocks.begin(),
                          c.oscillating_blocks.end(),
                          blk) != c.oscillating_blocks.end())
        << "sequential flagged block " << blk
        << " but the sharded report missed it";
  }
  // No duplicates in the merged changed-link history.
  std::vector<core::LinkId> links = c.last_changed_links;
  std::sort(links.begin(), links.end());
  EXPECT_TRUE(std::adjacent_find(links.begin(), links.end()) == links.end());
}

TEST(SchedConvergence, MergedShardedReportIsDeterministic) {
  const core::SystemModel m = not_ring(5);
  auto report = [&] {
    core::ShardedConfig cfg;
    cfg.num_shards = 3;
    cfg.max_evals_per_block = 16;
    cfg.scheduler = SchedulerKind::kWorklist;
    core::ShardedSimulator sim(m, cfg);
    return trip(sim);
  };
  const core::ConvergenceReport a = report();
  const core::ConvergenceReport b = report();
  EXPECT_EQ(a.oscillating_blocks, b.oscillating_blocks);
  EXPECT_EQ(a.last_changed_links, b.last_changed_links);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.limit, b.limit);
}

// ---------------------------------------------------------------------------
// Saturated-worklist stress — high load keeps every shard's FIFO busy
// while results stay bit-identical. Runs under the tsan preset (the
// `sched` label is in its filter), making this the data-race check for
// the worklist fields on the shard structs.
// ---------------------------------------------------------------------------

TEST(SchedStress, SaturatedWorklistStaysBitIdenticalUnderLoad) {
  NetworkConfig net;
  net.width = 4;
  net.height = 4;
  net.topology = Topology::kTorus;
  const RandomConfig cfg = derive_config(3);

  auto seq = std::make_unique<SeqNocSimulation>(
      net, make_opts(cfg, 1, SchedulerKind::kWorklist));
  auto sharded = std::make_unique<SeqNocSimulation>(
      net, make_opts(cfg, 4, SchedulerKind::kWorklist));
  const SeqNocSimulation* sharded_ptr = sharded.get();

  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::move(seq));
  sims.push_back(std::move(sharded));
  noc::LockstepNocSimulation lockstep(std::move(sims));

  traffic::TrafficHarness::Options opts;
  opts.seed = 0xfeedu;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  h.set_be_load(0.9, {0, 1, 2, 3});  // saturating injection
  h.run(250);
  h.set_be_load(0.0);
  h.run(80);
  noc::check_credit_invariant(lockstep);

  // Under saturation the FIFO really was exercised: the high-water mark
  // is a per-cycle stat, so probe it mid-load on a fresh run.
  SeqNocSimulation probe(net, make_opts(cfg, 4, SchedulerKind::kWorklist));
  traffic::TrafficHarness hp(probe, opts);
  hp.set_be_load(0.9, {0, 1, 2, 3});
  hp.run(50);
  EXPECT_GT(probe.last_step_stats().worklist_high_water, 0u);
  (void)sharded_ptr;
}

}  // namespace
}  // namespace tmsim
