// Randomized differential proof of the sharded engine (the PR's
// headline instrument): for any topology, workload, seed, shard count
// and partition policy, the sharded bulk-synchronous engine must be
// bit-identical to the sequential §4 engine — every local output, every
// credit wire, every register bit, every cycle (LockstepNocSimulation
// throws on the first divergence), every link value at the end, and the
// full monitor statistics of a dual-harness run.
//
// Every case derives its whole configuration from one index, printed as
// a replay tuple via SCOPED_TRACE on failure: rerun with
//   --gtest_filter='*Randomized*/<index>'
// to reproduce a failing case exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/example_blocks.h"
#include "core/noc_block.h"
#include "core/sharded_simulator.h"
#include "noc/lockstep.h"
#include "traffic/harness.h"

namespace tmsim {
namespace {

using core::EngineOptions;
using core::PartitionPolicy;
using core::SchedulePolicy;
using core::SeqNocSimulation;
using noc::NetworkConfig;
using noc::Topology;

struct RandomConfig {
  std::size_t width;
  std::size_t height;
  Topology topology;
  std::size_t queue_depth;
  double be_load;
  std::uint64_t traffic_seed;
  std::size_t cycles;
  std::size_t num_shards;
  PartitionPolicy partition;
  SchedulePolicy schedule;

  std::string replay_tuple(std::uint64_t index) const {
    return "replay{index=" + std::to_string(index) + ", net=" +
           std::to_string(width) + "x" + std::to_string(height) +
           (topology == Topology::kTorus ? " torus" : " mesh") +
           ", queue_depth=" + std::to_string(queue_depth) +
           ", be_load=" + std::to_string(be_load) +
           ", traffic_seed=" + std::to_string(traffic_seed) +
           ", cycles=" + std::to_string(cycles) +
           ", num_shards=" + std::to_string(num_shards) + ", partition=" +
           core::partition_policy_name(partition) + ", schedule=" +
           (schedule == SchedulePolicy::kDynamic ? "dynamic" : "two_phase") +
           "}";
  }
};

/// The whole configuration space is a pure function of the case index —
/// that is what makes a failure replayable from the tuple alone.
RandomConfig derive_config(std::uint64_t index) {
  SplitMix64 rng(0x5eed5eed ^ (index * 0x9e3779b97f4a7c15ull));
  RandomConfig c;
  static constexpr struct {
    std::size_t w, h;
  } kShapes[] = {{1, 2}, {2, 2}, {2, 3}, {3, 3}, {4, 2}, {4, 3},
                 {4, 4}, {5, 3}, {5, 4}, {3, 5}, {6, 2}, {8, 2}};
  const auto& shape = kShapes[rng.next_below(std::size(kShapes))];
  c.width = shape.w;
  c.height = shape.h;
  c.topology = rng.next_below(2) ? Topology::kTorus : Topology::kMesh;
  c.queue_depth = 1 + rng.next_below(4);
  c.be_load = 0.05 + 0.05 * static_cast<double>(rng.next_below(5));
  c.traffic_seed = rng.next() | 1;
  c.cycles = 120 + 40 * rng.next_below(3);
  const std::size_t routers = c.width * c.height;
  c.num_shards = 2 + rng.next_below(7);  // 2..8, clamped by the engine
  if (c.num_shards > routers) {
    c.num_shards = routers;
  }
  static constexpr PartitionPolicy kPolicies[] = {
      PartitionPolicy::kRoundRobin, PartitionPolicy::kContiguous,
      PartitionPolicy::kMinCutGreedy};
  c.partition = kPolicies[rng.next_below(3)];
  // Mostly the production dynamic schedule; the two-phase oracle rides
  // along to prove the engine is schedule-agnostic.
  c.schedule = rng.next_below(6) == 0 ? SchedulePolicy::kTwoPhaseOracle
                                      : SchedulePolicy::kDynamic;
  return c;
}

NetworkConfig make_net(const RandomConfig& c) {
  NetworkConfig net;
  net.width = c.width;
  net.height = c.height;
  net.topology = c.topology;
  net.router.queue_depth = c.queue_depth;
  return net;
}

EngineOptions sharded_opts(const RandomConfig& c) {
  EngineOptions o;
  o.policy = c.schedule;
  o.num_shards = c.num_shards;
  o.partition = c.partition;
  return o;
}

class ShardedRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedRandomized, BitIdenticalToSequential) {
  const std::uint64_t index = GetParam();
  const RandomConfig cfg = derive_config(index);
  SCOPED_TRACE(cfg.replay_tuple(index));
  const NetworkConfig net = make_net(cfg);

  auto seq = std::make_unique<SeqNocSimulation>(
      net, EngineOptions{cfg.schedule, 1, cfg.partition});
  auto sharded = std::make_unique<SeqNocSimulation>(net, sharded_opts(cfg));
  const SeqNocSimulation* seq_ptr = seq.get();
  const SeqNocSimulation* sharded_ptr = sharded.get();

  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::move(seq));
  sims.push_back(std::move(sharded));
  noc::LockstepNocSimulation lockstep(std::move(sims));

  traffic::TrafficHarness::Options opts;
  opts.seed = cfg.traffic_seed;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  h.set_be_load(cfg.be_load, {0, 1, 2, 3});
  h.run(cfg.cycles);  // lockstep throws on any per-cycle divergence
  h.set_be_load(0.0);
  h.run(60);  // drain
  noc::check_credit_invariant(lockstep);

  // Final link-state sweep: every link of the model, not just the
  // externally visible ones the lockstep compares.
  const core::Engine& seq_eng = seq_ptr->engine();
  const core::Engine& sh_eng = sharded_ptr->engine();
  ASSERT_EQ(seq_eng.model().num_links(), sh_eng.model().num_links());
  for (core::LinkId l = 0; l < seq_eng.model().num_links(); ++l) {
    ASSERT_EQ(seq_eng.link_value(l), sh_eng.link_value(l))
        << "link " << l << " (" << seq_eng.model().link(l).name << ")";
  }
}

// 210 randomized configurations, each a distinct point in the space.
INSTANTIATE_TEST_SUITE_P(Configs, ShardedRandomized,
                         ::testing::Range<std::uint64_t>(0, 210));

// Monitor statistics must be bitwise identical too: run the same
// workload through two *independent* harnesses (one per engine) and
// compare everything the harness measures. A subset of the index space
// keeps the suite's runtime bounded.
class ShardedStats : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedStats, MonitorStatisticsMatchSequential) {
  const std::uint64_t index = GetParam();
  const RandomConfig cfg = derive_config(index);
  SCOPED_TRACE(cfg.replay_tuple(index));
  const NetworkConfig net = make_net(cfg);

  auto run = [&](const EngineOptions& eopts) {
    SeqNocSimulation sim(net, eopts);
    traffic::TrafficHarness::Options opts;
    opts.seed = cfg.traffic_seed;
    opts.verify_payload = true;
    traffic::TrafficHarness h(sim, opts);
    h.set_be_load(cfg.be_load, {0, 1, 2, 3});
    h.run(cfg.cycles);
    h.set_be_load(0.0);
    h.run(60);
    struct Result {
      std::size_t injected, delivered;
      traffic::LatencySummary be;
    } r{h.flits_injected(), h.flits_delivered(),
        h.summarize(traffic::PacketClass::kBestEffort)};
    return r;
  };

  const auto a = run(EngineOptions{cfg.schedule, 1, cfg.partition});
  const auto b = run(sharded_opts(cfg));
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.be.delivered, b.be.delivered);
  EXPECT_EQ(a.be.network.mean(), b.be.network.mean());
  EXPECT_EQ(a.be.network.min(), b.be.network.min());
  EXPECT_EQ(a.be.network.max(), b.be.network.max());
  EXPECT_EQ(a.be.access.mean(), b.be.access.mean());
}

INSTANTIATE_TEST_SUITE_P(Configs, ShardedStats,
                         ::testing::Range<std::uint64_t>(0, 210, 14));

TEST(ShardedReplay, SameConfigTwiceIsDeterministic) {
  // The replay tuple is only useful if a rerun reproduces the run bit
  // for bit — thread scheduling must not leak into results.
  const RandomConfig cfg = derive_config(7);
  const NetworkConfig net = make_net(cfg);
  auto digest = [&] {
    SeqNocSimulation sim(net, sharded_opts(cfg));
    traffic::TrafficHarness::Options opts;
    opts.seed = cfg.traffic_seed;
    traffic::TrafficHarness h(sim, opts);
    h.set_be_load(cfg.be_load, {0, 1, 2, 3});
    h.run(cfg.cycles);
    std::vector<BitVector> words;
    for (std::size_t r = 0; r < net.num_routers(); ++r) {
      words.push_back(sim.router_state_word(r));
    }
    return std::make_pair(words, sim.engine().total_delta_cycles());
  };
  const auto a = digest();
  const auto b = digest();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(ShardedClamp, MoreShardsThanBlocksClampsAndStaysExact) {
  NetworkConfig net;
  net.width = 2;
  net.height = 2;
  net.topology = Topology::kMesh;
  EngineOptions o;
  o.num_shards = 64;  // > 4 routers
  traffic::TrafficHarness::Options opts;
  opts.seed = 99;
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<SeqNocSimulation>(net,
                                                    SchedulePolicy::kDynamic));
  sims.push_back(std::make_unique<SeqNocSimulation>(net, o));
  noc::LockstepNocSimulation lockstep(std::move(sims));
  traffic::TrafficHarness h(lockstep, opts);
  h.set_be_load(0.2, {0, 1, 2, 3});
  h.run(200);
}

// A combinational oscillator split across shards must be detected like
// the sequential engine detects it: ConvergenceError, with a report
// that points at the oscillating blocks. The engines trip at different
// points of the loop (sequential flags whichever reader was pending at
// its eval budget; the sharded engine flags every reader of a pending
// cut-link change), so the sharded set must *cover* the sequential one
// rather than equal it.
TEST(ShardedConvergence, CrossShardOscillatorThrowsLikeSequential) {
  core::SystemModel m;
  auto inv = std::make_shared<core::examples::NotBlock>();
  const core::BlockId b0 = m.add_block(inv, "not0");
  const core::BlockId b1 = m.add_block(inv, "not1");
  const core::BlockId b2 = m.add_block(inv, "not2");
  const core::LinkId l01 =
      m.add_link("l01", 1, core::LinkKind::kCombinational);
  const core::LinkId l12 =
      m.add_link("l12", 1, core::LinkKind::kCombinational);
  const core::LinkId l20 =
      m.add_link("l20", 1, core::LinkKind::kCombinational);
  m.bind_output(b0, 0, l01);
  m.bind_input(b1, 0, l01);
  m.bind_output(b1, 0, l12);
  m.bind_input(b2, 0, l12);
  m.bind_output(b2, 0, l20);
  m.bind_input(b0, 0, l20);
  m.finalize();

  auto oscillating_blocks = [](core::Engine& eng) {
    try {
      eng.step();
    } catch (const core::ConvergenceError& e) {
      return e.report().oscillating_blocks;
    }
    ADD_FAILURE() << "engine settled an odd NOT ring";
    return std::vector<core::BlockId>{};
  };

  core::SequentialSimulator seq(m, SchedulePolicy::kDynamic, 16);
  core::ShardedConfig cfg;
  cfg.num_shards = 3;  // one inverter per shard: purely cross-shard loop
  cfg.max_evals_per_block = 16;
  core::ShardedSimulator sharded(m, cfg);

  const auto a = oscillating_blocks(seq);
  const auto b = oscillating_blocks(sharded);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  for (const core::BlockId blk : a) {
    EXPECT_TRUE(std::find(b.begin(), b.end(), blk) != b.end())
        << "sequential flagged block " << blk
        << " but the sharded report missed it";
  }
  for (const core::BlockId blk : b) {
    EXPECT_LT(blk, m.num_blocks());
  }
}

// The static §4.1 schedule on a registered-boundary model: the sharded
// engine must agree with the sequential engine there too (the NoC can't
// exercise static — its inter-router links are combinational).
TEST(ShardedStatic, RegisteredPipelineMatchesSequential) {
  core::SystemModel m;
  std::vector<core::BlockId> blocks;
  for (int i = 0; i < 7; ++i) {
    blocks.push_back(m.add_block(
        std::make_shared<core::examples::RegAdderBlock>(16, 10 + i),
        "add" + std::to_string(i)));
  }
  const core::LinkId ext =
      m.add_link("ext", 16, core::LinkKind::kCombinational);
  m.bind_input(blocks[0], 0, ext);
  for (int i = 0; i < 7; ++i) {
    const core::LinkId l = m.add_link("q" + std::to_string(i), 16,
                                      core::LinkKind::kRegistered);
    m.bind_output(blocks[i], 0, l);
    if (i + 1 < 7) {
      m.bind_input(blocks[i + 1], 0, l);
    }
  }
  m.finalize();

  core::SequentialSimulator seq(m, SchedulePolicy::kStatic);
  core::ShardedConfig cfg;
  cfg.num_shards = 3;
  cfg.schedule = SchedulePolicy::kStatic;
  cfg.partition = PartitionPolicy::kRoundRobin;  // worst case: all links cut
  core::ShardedSimulator sharded(m, cfg);

  SplitMix64 rng(123);
  for (int cycle = 0; cycle < 50; ++cycle) {
    const std::uint64_t v = rng.next_below(1u << 16);
    seq.set_external_input(ext, make_bit_vector(16, v));
    sharded.set_external_input(ext, make_bit_vector(16, v));
    seq.step();
    sharded.step();
    for (core::LinkId l = 0; l < m.num_links(); ++l) {
      ASSERT_EQ(seq.link_value(l), sharded.link_value(l))
          << "cycle " << cycle << " link " << m.link(l).name;
    }
  }
}

}  // namespace
}  // namespace tmsim
