// Wormhole deadlock characterization.
//
// The case-study router keeps a packet's VC fixed end-to-end (§2.1), so
// dateline VC switching — the textbook cure for torus deadlock — is not
// available. Consequences, pinned down here as properties of the design
// rather than bugs of any engine:
//
//  - on a MESH, XY routing orders the channel dependency graph (X before
//    Y, no wrap links), so the network is deadlock-free: every submitted
//    packet is eventually delivered once injection stops;
//  - on a TORUS, shortest-wrap XY routing closes channel-dependency
//    cycles around each ring; under single-VC pressure the network
//    suffers sustained throughput collapse (circular waits among
//    output-VC locks that keep reforming while injection continues —
//    they only untangle once the sources stop offering traffic).
//
// All engines agree bit-exactly on the deadlocked state too — a deadlock
// is simulated accurately, not masked (that is exactly the kind of
// behaviour the paper built the simulator to find before tape-out).
#include <gtest/gtest.h>

#include "core/noc_block.h"
#include "traffic/harness.h"
#include "noc/lockstep.h"
#include "traffic/workloads.h"

namespace tmsim {
namespace {

noc::NetworkConfig grid(noc::Topology topo) {
  noc::NetworkConfig net;
  net.width = 6;
  net.height = 6;
  net.topology = topo;
  net.router.queue_depth = 2;
  return net;
}

/// Pressure workload: the Fig. 1 GT population plus single-VC BE traffic.
void apply_pressure(noc::NocSimulation& sim, traffic::TrafficHarness& h,
                    std::size_t load_cycles) {
  for (const auto& s : traffic::fig1_gt_streams(sim.config(), 1290)) {
    h.add_gt_stream(s);
  }
  h.set_be_load(0.10, {3});
  h.run(load_cycles);
}

void stop_and_drain(traffic::TrafficHarness& h, std::size_t drain_cycles) {
  h.set_be_load(0.0);
  h.clear_gt_streams();
  h.run(drain_cycles);
}

TEST(Deadlock, MeshDrainsCompletelyAndKeepsUp) {
  const auto net = grid(noc::Topology::kMesh);
  core::SeqNocSimulation sim(net);
  traffic::TrafficHarness::Options opts;
  opts.seed = 1;
  traffic::TrafficHarness h(sim, opts);
  apply_pressure(sim, h, 4000);
  // Mesh keeps up with the offered load: the source backlog stays small
  // (a few packets in flight per node at most).
  EXPECT_LT(h.source_backlog(), 2000u);
  stop_and_drain(h, 6000);
  std::size_t undelivered = 0;
  for (const auto& r : h.records()) {
    if (!r.delivered) ++undelivered;
  }
  EXPECT_EQ(undelivered, 0u) << "mesh+XY must be deadlock-free";
  EXPECT_EQ(h.source_backlog(), 0u);
}

/// Row-ring workload: every node sends 6-flit packets three hops east on
/// VC 3. On the torus, every row is a unidirectional ring whose channel
/// dependencies form a cycle; packets spanning three routers with 2-flit
/// buffers close the circular wait — the textbook wormhole ring deadlock.
void add_ring_traffic(traffic::TrafficHarness& h,
                      const noc::NetworkConfig& net) {
  h.add_generator([&net](SystemCycle cycle, traffic::TrafficHarness& th) {
    if (cycle % 8 != 0) {
      return;
    }
    for (std::size_t y = 0; y < net.height; ++y) {
      for (std::size_t x = 0; x < net.width; ++x) {
        const std::size_t src = router_index(net, noc::Coord{x, y});
        const std::size_t dst =
            router_index(net, noc::Coord{(x + 3) % net.width, y});
        th.submit_packet(traffic::PacketClass::kBestEffort, src, dst, 3, 5);
      }
    }
  });
}

TEST(Deadlock, TorusRingTrafficDeadlocksPermanently) {
  // Deterministic reproduction of the circular wait. If a future change
  // makes this drain, the design gained deadlock freedom — revisit the
  // documentation rather than the test.
  const auto net = grid(noc::Topology::kTorus);
  core::SeqNocSimulation sim(net);
  traffic::TrafficHarness::Options opts;
  opts.seed = 1;
  traffic::TrafficHarness h(sim, opts);
  add_ring_traffic(h, net);
  h.run(2000);
  // Stop injecting and give generous drain time: a true deadlock never
  // resolves.
  h.clear_generators();
  h.run(4000);
  std::size_t undelivered = 0;
  for (const auto& r : h.records()) {
    if (r.injected && !r.delivered) ++undelivered;
  }
  EXPECT_GT(undelivered, 0u)
      << "expected the documented torus wormhole deadlock";
  // The wedged state is still credit-consistent — stuck, not corrupt.
  noc::check_credit_invariant(sim);
}

TEST(Deadlock, SameRingTrafficIsHarmlessOnTheMesh) {
  // The identical pattern without wrap links (dst clamped on-grid)
  // drains fully on the mesh.
  const auto net = grid(noc::Topology::kMesh);
  core::SeqNocSimulation sim(net);
  traffic::TrafficHarness::Options opts;
  opts.seed = 1;
  traffic::TrafficHarness h(sim, opts);
  h.add_generator([&net](SystemCycle cycle, traffic::TrafficHarness& th) {
    if (cycle % 8 != 0 || cycle >= 2000) {
      return;
    }
    for (std::size_t y = 0; y < net.height; ++y) {
      for (std::size_t x = 0; x < net.width; ++x) {
        const std::size_t src = router_index(net, noc::Coord{x, y});
        const std::size_t dx = (x + 3) % net.width;
        if (dx == x) continue;
        th.submit_packet(traffic::PacketClass::kBestEffort, src,
                         router_index(net, noc::Coord{dx, y}), 3, 5);
      }
    }
  });
  h.run(2000);
  h.run(4000);
  std::size_t undelivered = 0;
  for (const auto& r : h.records()) {
    if (!r.delivered) ++undelivered;
  }
  EXPECT_EQ(undelivered, 0u);
}

TEST(Deadlock, CollapsedStateIsBitExactAcrossEngines) {
  // Even the collapsed state must be simulated identically by the golden
  // reference and the time-multiplexed engine.
  const auto net = grid(noc::Topology::kTorus);
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<noc::DirectNocSimulation>(net));
  sims.push_back(std::make_unique<core::SeqNocSimulation>(net));
  noc::LockstepNocSimulation lockstep(std::move(sims));
  traffic::TrafficHarness::Options opts;
  opts.seed = 1;
  traffic::TrafficHarness h(lockstep, opts);
  apply_pressure(lockstep, h, 1500);  // lockstep throws on divergence
  stop_and_drain(h, 500);
  SUCCEED();
}

}  // namespace
}  // namespace tmsim
