// Four-engine lockstep: golden reference, sequential time-multiplexed
// simulator (the paper's method), the coarse SystemC-substitute model and
// the signal-level "VHDL" model must agree bit-for-bit, cycle-for-cycle —
// the paper's central accuracy claim across its three simulation options
// (§3, §8).
#include <gtest/gtest.h>

#include <memory>

#include "core/noc_block.h"
#include "noc/lockstep.h"
#include "rtlsim/rtl_noc.h"
#include "sysc/sysc_noc.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

namespace tmsim {
namespace {

using noc::NetworkConfig;
using noc::Topology;

struct Scenario {
  std::size_t width;
  std::size_t height;
  Topology topology;
  std::size_t queue_depth;
  double be_load;
  std::uint64_t seed;
  std::size_t cycles;
  std::size_t num_vcs = 4;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return std::to_string(s.width) + "x" + std::to_string(s.height) +
         (s.topology == Topology::kTorus ? "torus" : "mesh") + "_d" +
         std::to_string(s.queue_depth) + "_v" + std::to_string(s.num_vcs) +
         "_seed" + std::to_string(s.seed);
}

class AllEngines : public ::testing::TestWithParam<Scenario> {};

TEST_P(AllEngines, BitAndCycleExactAcrossAllFourEngines) {
  const Scenario& sc = GetParam();
  NetworkConfig net;
  net.width = sc.width;
  net.height = sc.height;
  net.topology = sc.topology;
  net.router.queue_depth = sc.queue_depth;
  net.router.num_vcs = sc.num_vcs;

  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<noc::DirectNocSimulation>(net));
  sims.push_back(std::make_unique<core::SeqNocSimulation>(
      net, core::SchedulePolicy::kDynamic));
  sims.push_back(std::make_unique<sysc::SyscNocSimulation>(net));
  sims.push_back(std::make_unique<rtlsim::RtlNocSimulation>(net));
  noc::LockstepNocSimulation lockstep(std::move(sims));

  traffic::TrafficHarness::Options opts;
  opts.seed = sc.seed;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  std::vector<unsigned> vcs;
  for (unsigned v = 0; v < sc.num_vcs; ++v) {
    vcs.push_back(v);
  }
  h.set_be_load(sc.be_load, vcs);
  for (std::size_t chunk = 0; chunk < sc.cycles; chunk += 100) {
    h.run(100);  // lockstep throws on the first diverging bit
    noc::check_credit_invariant(lockstep);
  }
  h.set_be_load(0.0, vcs);
  h.run(150);  // drain
  EXPECT_GT(h.flits_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, AllEngines,
    ::testing::Values(
        Scenario{1, 2, Topology::kTorus, 4, 0.25, 21, 250},
        Scenario{2, 2, Topology::kTorus, 4, 0.20, 22, 250},
        Scenario{3, 3, Topology::kTorus, 4, 0.12, 23, 250},
        Scenario{3, 3, Topology::kMesh, 2, 0.12, 24, 250},
        Scenario{4, 4, Topology::kTorus, 2, 0.10, 25, 250},
        Scenario{4, 4, Topology::kMesh, 4, 0.25, 26, 250},
        Scenario{5, 3, Topology::kTorus, 1, 0.08, 27, 200},
        Scenario{6, 6, Topology::kTorus, 2, 0.06, 28, 200},
        // Reduced-VC builds (§7.1's configurability at synthesis time).
        Scenario{3, 3, Topology::kMesh, 4, 0.10, 29, 250, 1},
        Scenario{3, 3, Topology::kTorus, 2, 0.10, 30, 250, 2},
        Scenario{4, 4, Topology::kMesh, 4, 0.15, 31, 250, 3}),
    scenario_name);

TEST(AllEnginesGt, GtPlusBeWorkloadStaysExact) {
  NetworkConfig net;
  net.width = 4;
  net.height = 4;
  net.topology = Topology::kTorus;
  net.router.queue_depth = 2;
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<noc::DirectNocSimulation>(net));
  sims.push_back(std::make_unique<core::SeqNocSimulation>(
      net, core::SchedulePolicy::kDynamic));
  sims.push_back(std::make_unique<sysc::SyscNocSimulation>(net));
  sims.push_back(std::make_unique<rtlsim::RtlNocSimulation>(net));
  noc::LockstepNocSimulation lockstep(std::move(sims));
  traffic::TrafficHarness::Options opts;
  opts.seed = 99;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  for (const auto& s : traffic::fig1_gt_streams(net, 800)) {
    h.add_gt_stream(s);
  }
  h.set_be_load(0.05);
  h.run(900);
  EXPECT_GT(h.summarize(traffic::PacketClass::kGuaranteedThroughput).delivered,
            5u);
  noc::check_credit_invariant(lockstep);
}

}  // namespace
}  // namespace tmsim
