// Cross-engine bit-exactness (§1/§8: "without compromising the cycle and
// bit level accuracy"): the sequential time-multiplexed simulator must
// match the golden two-phase reference on every register bit and every
// link value, every cycle, across sizes, topologies, queue depths,
// schedules and traffic loads.
#include <gtest/gtest.h>

#include <memory>

#include "core/noc_block.h"
#include "noc/lockstep.h"
#include "traffic/harness.h"
#include "traffic/workloads.h"

namespace tmsim {
namespace {

using core::SchedulePolicy;
using core::SeqNocSimulation;
using noc::DirectNocSimulation;
using noc::LockstepNocSimulation;
using noc::NetworkConfig;
using noc::Topology;

struct Scenario {
  std::size_t width;
  std::size_t height;
  Topology topology;
  std::size_t queue_depth;
  double be_load;
  std::uint64_t seed;
  std::size_t cycles;
};

std::string scenario_name(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  return std::to_string(s.width) + "x" + std::to_string(s.height) +
         (s.topology == Topology::kTorus ? "torus" : "mesh") + "_d" +
         std::to_string(s.queue_depth) + "_seed" + std::to_string(s.seed);
}

class SeqEquivalence : public ::testing::TestWithParam<Scenario> {};

NetworkConfig make_net(const Scenario& s) {
  NetworkConfig net;
  net.width = s.width;
  net.height = s.height;
  net.topology = s.topology;
  net.router.queue_depth = s.queue_depth;
  return net;
}

TEST_P(SeqEquivalence, DynamicScheduleMatchesGoldenReference) {
  const Scenario& sc = GetParam();
  const NetworkConfig net = make_net(sc);
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<DirectNocSimulation>(net));
  sims.push_back(
      std::make_unique<SeqNocSimulation>(net, SchedulePolicy::kDynamic));
  sims.push_back(
      std::make_unique<SeqNocSimulation>(net, SchedulePolicy::kTwoPhaseOracle));
  LockstepNocSimulation lockstep(std::move(sims));

  traffic::TrafficHarness::Options opts;
  opts.seed = sc.seed;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  h.set_be_load(sc.be_load, {0, 1, 2, 3});
  for (std::size_t chunk = 0; chunk < sc.cycles; chunk += 100) {
    h.run(100);  // lockstep throws on any divergence
    noc::check_credit_invariant(lockstep);
  }
  h.set_be_load(0.0);
  h.run(200);  // drain
  noc::check_credit_invariant(lockstep);
  EXPECT_GT(h.flits_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, SeqEquivalence,
    ::testing::Values(
        Scenario{1, 2, Topology::kTorus, 4, 0.20, 1, 400},   // paper's min
        Scenario{2, 2, Topology::kTorus, 4, 0.15, 2, 400},
        Scenario{3, 3, Topology::kTorus, 4, 0.10, 3, 400},
        Scenario{3, 3, Topology::kMesh, 4, 0.10, 4, 400},
        Scenario{4, 3, Topology::kTorus, 2, 0.10, 5, 400},   // Fig.1 depth
        Scenario{4, 3, Topology::kMesh, 2, 0.10, 6, 400},
        Scenario{5, 4, Topology::kTorus, 1, 0.05, 7, 300},   // minimal depth
        Scenario{6, 6, Topology::kTorus, 4, 0.08, 8, 300},   // paper's 6×6
        Scenario{6, 6, Topology::kMesh, 3, 0.30, 9, 300},    // heavy load
        Scenario{8, 2, Topology::kTorus, 4, 0.12, 10, 300}), // asymmetric
    scenario_name);

TEST(SeqEquivalenceGt, MixedGtBeTrafficStaysBitExact) {
  NetworkConfig net;
  net.width = 6;
  net.height = 6;
  net.topology = Topology::kTorus;
  net.router.queue_depth = 2;
  std::vector<std::unique_ptr<noc::NocSimulation>> sims;
  sims.push_back(std::make_unique<DirectNocSimulation>(net));
  sims.push_back(
      std::make_unique<SeqNocSimulation>(net, SchedulePolicy::kDynamic));
  LockstepNocSimulation lockstep(std::move(sims));
  traffic::TrafficHarness::Options opts;
  opts.seed = 42;
  opts.verify_payload = true;
  traffic::TrafficHarness h(lockstep, opts);
  for (const auto& s : traffic::fig1_gt_streams(net, 1300)) {
    h.add_gt_stream(s);
  }
  h.set_be_load(0.06);
  h.run(1500);
  EXPECT_GT(h.summarize(traffic::PacketClass::kGuaranteedThroughput).delivered,
            10u);
}

TEST(SeqDeltaCycles, MinimumIsOneDeltaPerRouterPerCycle) {
  // §6: "The minimum number of delta cycles per system cycle is equal to
  // the number of routers of the NoC."
  NetworkConfig net;
  net.width = 4;
  net.height = 4;
  SeqNocSimulation sim(net, SchedulePolicy::kDynamic);
  sim.step();  // idle network
  EXPECT_EQ(sim.last_step_stats().delta_cycles, 16u);
  EXPECT_EQ(sim.last_step_stats().re_evaluations, 0u);
}

TEST(SeqDeltaCycles, ReEvaluationsScaleWithTraffic) {
  NetworkConfig net;
  net.width = 4;
  net.height = 4;
  SeqNocSimulation sim(net, SchedulePolicy::kDynamic);
  traffic::TrafficHarness h(sim);
  h.set_be_load(0.2, {0, 1, 2, 3});
  h.run(300);
  const auto& eng = sim.engine();
  // More than the idle minimum, far less than the two-per-block oracle
  // bound (§6 reports 1.5–2× the input load as *extra* delta cycles).
  EXPECT_GT(eng.total_delta_cycles(), 300u * 16);
  EXPECT_LT(eng.total_delta_cycles(), 2u * 300 * 16);
}

}  // namespace
}  // namespace tmsim
