// Differential proof that SchedulerKind::kCompiled honours the engine
// contract on the topologies the static schedule treats specially:
//
//  * a true combinational cycle (an OR latch), where the compiled
//    schedule runs its scoped kSettle fallback — sequential — and its
//    per-shard Jacobi supersteps when a partition cuts the cycle;
//  * a non-settling cycle (a NOT self-loop), where compiled must fail
//    with the same structured ConvergenceError as the reference
//    scheduler, while the worklist scheduler rejects the shape at
//    construction time.
//
// OR is monotone and every settled cycle ends with the latch halves
// equal, so the per-cycle fixed point is evaluation-order independent:
// every engine/scheduler pair must produce bit-identical link values and
// block states, cycle by cycle.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/example_blocks.h"
#include "core/sequential_simulator.h"
#include "core/sharded_simulator.h"
#include "core/system_model.h"

namespace tmsim::core {
namespace {

using examples::CombAdderBlock;
using examples::NotBlock;
using examples::Or2Block;
using examples::PipeBlock;

BitVector val(std::size_t width, std::uint64_t v) {
  BitVector bv(width);
  bv.set_field(0, width, v);
  return bv;
}

/// Two Or2 blocks latched head-to-tail (a true combinational SCC), each
/// seeded through a PipeBlock from an external input, with a CombAdder
/// hanging off the latch so the settled value must also flow onward.
struct OrLatchModel {
  OrLatchModel() {
    p0 = model.add_block(std::make_shared<PipeBlock>(16, 0), "p0");
    p1 = model.add_block(std::make_shared<PipeBlock>(16, 0), "p1");
    a = model.add_block(std::make_shared<Or2Block>(16), "a");
    b = model.add_block(std::make_shared<Or2Block>(16), "b");
    c = model.add_block(std::make_shared<CombAdderBlock>(16, 5), "c");
    ext0 = model.add_link("ext0", 16, LinkKind::kCombinational);
    ext1 = model.add_link("ext1", 16, LinkKind::kCombinational);
    pa = model.add_link("pa", 16, LinkKind::kCombinational);
    pb = model.add_link("pb", 16, LinkKind::kCombinational);
    lab = model.add_link("lab", 16, LinkKind::kCombinational);
    lba = model.add_link("lba", 16, LinkKind::kCombinational);
    la1 = model.add_link("la1", 16, LinkKind::kCombinational);
    lc = model.add_link("lc", 16, LinkKind::kCombinational);
    lb1 = model.add_link("lb1", 16, LinkKind::kCombinational);
    model.bind_input(p0, 0, ext0);
    model.bind_output(p0, 0, pa);
    model.bind_input(p1, 0, ext1);
    model.bind_output(p1, 0, pb);
    model.bind_input(a, 0, lba);
    model.bind_input(a, 1, pa);
    model.bind_output(a, 0, lab);
    model.bind_output(a, 1, la1);
    model.bind_input(b, 0, lab);
    model.bind_input(b, 1, pb);
    model.bind_output(b, 0, lba);
    model.bind_output(b, 1, lb1);
    model.bind_input(c, 0, la1);
    model.bind_output(c, 0, lc);
    model.finalize();
  }
  SystemModel model;
  BlockId p0 = 0, p1 = 0, a = 0, b = 0, c = 0;
  LinkId ext0 = 0, ext1 = 0, pa = 0, pb = 0;
  LinkId lab = 0, lba = 0, la1 = 0, lc = 0, lb1 = 0;
};

TEST(CompiledEquivalence, OrLatchSccIsBitIdenticalAcrossAllEngines) {
  OrLatchModel m;

  SequentialSimulator ref(m.model, SchedulePolicy::kDynamic);
  SequentialSimulator cp(m.model, SchedulePolicy::kDynamic, 64, 1,
                         SchedulerKind::kCompiled);

  // The compiled build must actually have seen the cycle.
  ASSERT_NE(cp.compiled_schedule(), nullptr);
  EXPECT_FALSE(cp.compiled_schedule()->acyclic());
  ASSERT_EQ(cp.compiled_schedule()->sccs.size(), 1u);
  EXPECT_EQ(cp.compiled_schedule()->sccs[0].blocks,
            (std::vector<BlockId>{m.a, m.b}));

  // Sharded compiled, both with a cut-friendly partition and with a
  // round-robin partition that forces the SCC's two blocks into
  // *different* shards: the cycle then runs as cross-shard Jacobi
  // supersteps instead of a local settle, and must still agree.
  ShardedConfig cut_cfg;
  cut_cfg.num_shards = 2;
  cut_cfg.scheduler = SchedulerKind::kCompiled;
  ShardedSimulator sh_cut(m.model, cut_cfg);

  ShardedConfig split_cfg;
  split_cfg.num_shards = 2;
  split_cfg.partition = PartitionPolicy::kRoundRobin;
  split_cfg.scheduler = SchedulerKind::kCompiled;
  ShardedSimulator sh_split(m.model, split_cfg);

  std::vector<Engine*> engines = {&ref, &cp, &sh_cut, &sh_split};

  SplitMix64 rng(0xbeef);
  for (int cycle = 0; cycle < 30; ++cycle) {
    const std::uint64_t s0 = rng.next() & 0xffff;
    const std::uint64_t s1 = rng.next() & 0xffff;
    for (Engine* e : engines) {
      e->set_external_input(m.ext0, val(16, s0));
      e->set_external_input(m.ext1, val(16, s1));
      e->step();
    }
    for (LinkId l = 0; l < m.model.num_links(); ++l) {
      for (Engine* e : engines) {
        EXPECT_EQ(e->link_value(l), ref.link_value(l))
            << "cycle " << cycle << " link " << m.model.link(l).name;
      }
    }
    for (Engine* e : engines) {
      EXPECT_EQ(engine_state_digest(*e), engine_state_digest(ref))
          << "cycle " << cycle;
    }
  }
}

TEST(CompiledEquivalence, OrSelfLoopSettlesUnderCompiled) {
  // A monotone self-loop: or2 a with out0 looped back to in0. The
  // worklist scheduler rejects this shape outright; compiled confines it
  // to a one-block settle region and converges (x = x | ext is a fixed
  // point after one round).
  SystemModel model;
  const BlockId a = model.add_block(std::make_shared<Or2Block>(8), "a");
  const LinkId loop = model.add_link("loop", 8, LinkKind::kCombinational);
  const LinkId ext = model.add_link("ext", 8, LinkKind::kCombinational);
  const LinkId out = model.add_link("out", 8, LinkKind::kCombinational);
  model.bind_output(a, 0, loop);
  model.bind_input(a, 0, loop);
  model.bind_input(a, 1, ext);
  model.bind_output(a, 1, out);
  model.finalize();

  SequentialSimulator cp(model, SchedulePolicy::kDynamic, 64, 1,
                         SchedulerKind::kCompiled);
  SequentialSimulator rr(model, SchedulePolicy::kDynamic);
  cp.set_external_input(ext, val(8, 0x21));
  rr.set_external_input(ext, val(8, 0x21));
  cp.step();
  rr.step();
  EXPECT_EQ(cp.link_value(out), val(8, 0x21));
  EXPECT_EQ(cp.link_value(out), rr.link_value(out));

  EXPECT_THROW(SequentialSimulator(model, SchedulePolicy::kDynamic, 64, 1,
                                   SchedulerKind::kWorklist),
               ContextualError);
}

TEST(CompiledEquivalence, NonSettlingLoopFailsStructurallyUnderCompiled) {
  // NOT self-loop: oscillates forever. The reference scheduler and the
  // compiled settle fallback must both convert the spin into the same
  // structured report; the worklist scheduler refuses the topology at
  // construction time (rejection parity is the *same defect surfaced at
  // a different phase*, never a hang).
  SystemModel model;
  const BlockId a = model.add_block(std::make_shared<NotBlock>(), "a");
  const LinkId aa = model.add_link("aa", 1, LinkKind::kCombinational);
  model.bind_output(a, 0, aa);
  model.bind_input(a, 0, aa);
  model.finalize();

  auto trip = [](Engine& eng) {
    try {
      eng.step();
    } catch (const ConvergenceError& e) {
      return e.report();
    }
    ADD_FAILURE() << "oscillating loop did not trip";
    return ConvergenceReport{};
  };

  SequentialSimulator rr(model, SchedulePolicy::kDynamic, 16);
  SequentialSimulator cp(model, SchedulePolicy::kDynamic, 16, 1,
                         SchedulerKind::kCompiled);
  const ConvergenceReport r1 = trip(rr);
  const ConvergenceReport r2 = trip(cp);
  EXPECT_EQ(r1.cycle, r2.cycle);
  EXPECT_EQ(r1.limit, r2.limit);
  EXPECT_EQ(r1.num_blocks, r2.num_blocks);
  EXPECT_EQ(r1.oscillating_blocks, r2.oscillating_blocks);
  ASSERT_FALSE(r2.oscillating_blocks.empty());
  EXPECT_EQ(r2.oscillating_blocks[0], a);

  EXPECT_THROW(SequentialSimulator(model, SchedulePolicy::kDynamic, 16, 1,
                                   SchedulerKind::kWorklist),
               ContextualError);
}

}  // namespace
}  // namespace tmsim::core
