// Direct unit tests of the two baseline engines (beyond the lockstep
// suites): reset state, event accounting, and the granularity difference
// that makes them the paper's Table 3 rows.
#include <gtest/gtest.h>

#include "noc/network.h"
#include "noc/router_state.h"
#include "rtlsim/rtl_noc.h"
#include "rtlsim/std_logic.h"
#include "sysc/sysc_noc.h"

namespace tmsim {
namespace {

noc::NetworkConfig net3() {
  noc::NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = noc::Topology::kMesh;
  return net;
}

TEST(SyscEngine, ResetStateMatchesCodecResetWord) {
  const auto net = net3();
  sysc::SyscNocSimulation sim(net);
  const noc::RouterStateCodec codec(net.router);
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    EXPECT_EQ(sim.router_state_word(r), codec.reset_word());
  }
}

TEST(RtlEngine, ResetStateMatchesCodecResetWord) {
  const auto net = net3();
  rtlsim::RtlNocSimulation sim(net);
  const noc::RouterStateCodec codec(net.router);
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    EXPECT_EQ(sim.router_state_word(r), codec.reset_word());
  }
}

TEST(SyscEngine, IdleStepsAreQuiet) {
  const auto net = net3();
  sysc::SyscNocSimulation sim(net);
  const auto init = sim.kernel_stats();
  for (int i = 0; i < 10; ++i) {
    sim.step();
  }
  const auto& st = sim.kernel_stats();
  EXPECT_EQ(st.ticks, init.ticks + 10);
  // Idle network: every clocked process still fires per tick (2 per
  // router in the coarse model: 9 routers → 9 seq procs... one clocked
  // per router), but no signal changes, so no comb re-evaluations.
  EXPECT_GE(st.process_activations, init.process_activations + 10 * 9);
  EXPECT_EQ(st.signal_commits, init.signal_commits);
}

TEST(RtlEngine, ActivationCountReflectsGranularity) {
  // The structural model activates an order of magnitude more processes
  // per cycle than the coarse model — the measured reason VHDL-level
  // simulation is slow (§3, Table 3).
  const auto net = net3();
  sysc::SyscNocSimulation coarse(net);
  rtlsim::RtlNocSimulation fine(net);
  const auto c0 = coarse.kernel_stats().process_activations;
  const auto f0 = fine.kernel_stats().process_activations;
  for (int i = 0; i < 20; ++i) {
    coarse.step();
    fine.step();
  }
  const auto c = coarse.kernel_stats().process_activations - c0;
  const auto f = fine.kernel_stats().process_activations - f0;
  EXPECT_GT(f, 10 * c);
}

TEST(BaselineEngines, SingleFlitTraversalMatchesEachOther) {
  const auto net = net3();
  sysc::SyscNocSimulation a(net);
  rtlsim::RtlNocSimulation b(net);
  const noc::LinkForward head{
      true, 1,
      noc::Flit{noc::FlitType::kHead, noc::make_head_payload(1, 0, 1, 4)}};
  const noc::LinkForward tail{true, 1,
                              noc::Flit{noc::FlitType::kTail, 0x1212}};
  a.set_local_input(0, head);
  b.set_local_input(0, head);
  a.step();
  b.step();
  a.set_local_input(0, tail);
  b.set_local_input(0, tail);
  for (int i = 0; i < 8; ++i) {
    a.step();
    b.step();
    ASSERT_EQ(a.local_output(1), b.local_output(1)) << "cycle " << i;
    for (std::size_t r = 0; r < net.num_routers(); ++r) {
      ASSERT_EQ(a.router_state_word(r), b.router_state_word(r));
    }
  }
}

TEST(RtlEngine, StdLogicConversionRoundTrips) {
  using rtlsim::from_std_logic;
  using rtlsim::to_std_logic;
  for (std::uint64_t v : {0ull, 1ull, 0x15555ull, 0x1ffffull}) {
    EXPECT_EQ(from_std_logic(to_std_logic(v, 17)), v);
  }
  // Metavalues must be rejected when read as integers.
  rtlsim::StdLogicVector x;
  x.bits = {rtlsim::StdLogic::kX};
  EXPECT_THROW(from_std_logic(x), Error);
  x.bits = {rtlsim::StdLogic::kU};
  EXPECT_THROW(from_std_logic(x), Error);
}

TEST(RtlEngine, ResolutionTableBasics) {
  using rtlsim::resolve;
  using enum rtlsim::StdLogic;
  EXPECT_EQ(resolve(k0, k0), k0);
  EXPECT_EQ(resolve(k1, k1), k1);
  EXPECT_EQ(resolve(k0, k1), kX);  // driver conflict
  EXPECT_EQ(resolve(kZ, k1), k1);  // high-Z yields
  EXPECT_EQ(resolve(kZ, kL), kL);
  EXPECT_EQ(resolve(kU, k1), kU);  // uninitialized dominates
}

}  // namespace
}  // namespace tmsim
