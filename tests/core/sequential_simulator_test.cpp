#include "core/sequential_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/example_blocks.h"

namespace tmsim::core {
namespace {

using examples::CombAdderBlock;
using examples::NotBlock;
using examples::PipeBlock;
using examples::RegAdderBlock;

BitVector val(std::size_t width, std::uint64_t v) {
  BitVector b(width);
  b.set_field(0, width, v);
  return b;
}

/// Fig. 2/3 system: three registered blocks in a ring. R_{i} links hold
/// the boundary registers; block i computes R_i' = R_{i-1} + addend_i.
struct RegRing {
  RegRing(std::uint64_t a1, std::uint64_t a2, std::uint64_t a3) {
    const BlockId b1 = model.add_block(std::make_shared<RegAdderBlock>(16, a1),
                                       "F1");
    const BlockId b2 = model.add_block(std::make_shared<RegAdderBlock>(16, a2),
                                       "F2");
    const BlockId b3 = model.add_block(std::make_shared<RegAdderBlock>(16, a3),
                                       "F3");
    r1 = model.add_link("R1", 16, LinkKind::kRegistered);
    r2 = model.add_link("R2", 16, LinkKind::kRegistered);
    r3 = model.add_link("R3", 16, LinkKind::kRegistered);
    // F1: R3 → R1, F2: R1 → R2, F3: R2 → R3 (a cyclic system, like the
    // paper's example in Fig. 2a).
    model.bind_input(b1, 0, r3);
    model.bind_output(b1, 0, r1);
    model.bind_input(b2, 0, r1);
    model.bind_output(b2, 0, r2);
    model.bind_input(b3, 0, r2);
    model.bind_output(b3, 0, r3);
    model.finalize();
  }
  SystemModel model;
  LinkId r1 = 0, r2 = 0, r3 = 0;
};

TEST(StaticSchedule, RegisteredRingMatchesHandComputedValues) {
  RegRing ring(1, 10, 100);
  SequentialSimulator sim(ring.model, SchedulePolicy::kStatic);
  // Reference model: r1' = r3+1, r2' = r1+10, r3' = r2+100, all in
  // parallel from the previous cycle's values.
  std::uint64_t r1 = 0, r2 = 0, r3 = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    const StepStats st = sim.step();
    EXPECT_EQ(st.delta_cycles, 3u);
    EXPECT_EQ(st.re_evaluations, 0u);
    const std::uint64_t n1 = (r3 + 1) & 0xffff;
    const std::uint64_t n2 = (r1 + 10) & 0xffff;
    const std::uint64_t n3 = (r2 + 100) & 0xffff;
    r1 = n1;
    r2 = n2;
    r3 = n3;
    ASSERT_EQ(sim.link_value(ring.r1).get_field(0, 16), r1) << cycle;
    ASSERT_EQ(sim.link_value(ring.r2).get_field(0, 16), r2) << cycle;
    ASSERT_EQ(sim.link_value(ring.r3).get_field(0, 16), r3) << cycle;
  }
}

TEST(StaticSchedule, DynamicPolicyGivesIdenticalResultsOnRegisteredRing) {
  // §4.1 order-independence: the dynamic engine on a registered design
  // must produce the same trajectory with the same delta-cycle count
  // (no boundary can change after being read).
  RegRing a(3, 5, 7), b(3, 5, 7);
  SequentialSimulator s_static(a.model, SchedulePolicy::kStatic);
  SequentialSimulator s_dyn(b.model, SchedulePolicy::kDynamic);
  for (int cycle = 0; cycle < 50; ++cycle) {
    s_static.step();
    const StepStats st = s_dyn.step();
    EXPECT_EQ(st.re_evaluations, 0u);
    for (LinkId l : {a.r1, a.r2, a.r3}) {
      ASSERT_EQ(s_static.link_value(l), s_dyn.link_value(l)) << cycle;
    }
  }
}

TEST(StaticSchedule, RejectsCombinationalBoundaries) {
  SystemModel m;
  auto blk = std::make_shared<CombAdderBlock>(8, 1);
  const BlockId a = m.add_block(blk, "a");
  const BlockId b = m.add_block(blk, "b");
  const LinkId in = m.add_link("in", 8, LinkKind::kCombinational);
  const LinkId mid = m.add_link("mid", 8, LinkKind::kCombinational);
  const LinkId out = m.add_link("out", 8, LinkKind::kCombinational);
  m.bind_input(a, 0, in);
  m.bind_output(a, 0, mid);
  m.bind_input(b, 0, mid);
  m.bind_output(b, 0, out);
  m.finalize();
  EXPECT_THROW(SequentialSimulator(m, SchedulePolicy::kStatic), Error);
  SequentialSimulator ok(m, SchedulePolicy::kDynamic);  // fine
}

/// Fig. 4/5 system: ring of three PipeBlocks over combinational links.
struct PipeRing {
  explicit PipeRing(std::vector<std::uint64_t> resets) {
    for (std::size_t i = 0; i < 3; ++i) {
      blocks.push_back(model.add_block(
          std::make_shared<PipeBlock>(16, 1, resets[i]),
          "P" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < 3; ++i) {
      links.push_back(model.add_link("L" + std::to_string(i), 16,
                                     LinkKind::kCombinational));
    }
    // Block i drives link i; block (i+1)%3 reads link i.
    for (std::size_t i = 0; i < 3; ++i) {
      model.bind_output(blocks[i], 0, links[i]);
      model.bind_input(blocks[(i + 1) % 3], 0, links[i]);
    }
    model.finalize();
  }
  SystemModel model;
  std::vector<BlockId> blocks;
  std::vector<LinkId> links;
};

TEST(DynamicSchedule, CombinationalRingMatchesReference) {
  PipeRing ring({5, 20, 90});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  // Reference: out_i = s_i + 1 (combinational, current cycle);
  // s_i(t+1) = out_{i-1}(t).
  std::uint64_t s[3] = {5, 20, 90};
  for (int cycle = 0; cycle < 30; ++cycle) {
    sim.step();
    std::uint64_t out[3];
    for (int i = 0; i < 3; ++i) out[i] = (s[i] + 1) & 0xffff;
    for (int i = 0; i < 3; ++i) s[i] = out[(i + 2) % 3];
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(sim.link_value(ring.links[i]).get_field(0, 16), out[i])
          << "cycle " << cycle << " link " << i;
      ASSERT_EQ(sim.block_state(ring.blocks[i]).get_field(0, 16), s[i])
          << "cycle " << cycle << " block " << i;
    }
  }
}

TEST(DynamicSchedule, StateOnlyOutputsNeedAtMostOneReEvalPerBlock) {
  PipeRing ring({1, 2, 3});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  for (int cycle = 0; cycle < 30; ++cycle) {
    const StepStats st = sim.step();
    EXPECT_GE(st.delta_cycles, 3u);
    EXPECT_LE(st.delta_cycles, 6u);
  }
}

TEST(DynamicSchedule, EveryBlockEvaluatedAtLeastOncePerCycle) {
  // "it is guaranteed that all routers are evaluated at least once" —
  // even a completely idle system pays one delta cycle per block.
  PipeRing ring({0, 0, 0});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  std::vector<int> evals(3, 0);
  sim.set_trace_hook([&](SystemCycle, DeltaCycle, BlockId b) { ++evals[b]; });
  sim.step();
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(evals[i], 1);
  }
}

TEST(DynamicSchedule, CombChainPropagatesWithinOneSystemCycle) {
  // in → +1 → +2 → +3 → out, blocks deliberately evaluated in the worst
  // order (the chain tail first, due to round-robin from block 0).
  SystemModel m;
  const BlockId c = m.add_block(std::make_shared<CombAdderBlock>(8, 3), "c");
  const BlockId b = m.add_block(std::make_shared<CombAdderBlock>(8, 2), "b");
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(8, 1), "a");
  const LinkId in = m.add_link("in", 8, LinkKind::kCombinational);
  const LinkId ab = m.add_link("ab", 8, LinkKind::kCombinational);
  const LinkId bc = m.add_link("bc", 8, LinkKind::kCombinational);
  const LinkId out = m.add_link("out", 8, LinkKind::kCombinational);
  m.bind_input(a, 0, in);
  m.bind_output(a, 0, ab);
  m.bind_input(b, 0, ab);
  m.bind_output(b, 0, bc);
  m.bind_input(c, 0, bc);
  m.bind_output(c, 0, out);
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic);
  sim.set_external_input(in, val(8, 10));
  StepStats st = sim.step();
  EXPECT_EQ(sim.link_value(out).get_field(0, 8), 16u);
  // Worst-case order c,b,a needs re-evaluations to converge.
  EXPECT_GE(st.delta_cycles, 3u);
  // A second cycle with the same input settles with no value changes on
  // the chain's internal links.
  st = sim.step();
  EXPECT_EQ(sim.link_value(out).get_field(0, 8), 16u);
  EXPECT_EQ(st.link_changes, 0u);
}

TEST(DynamicSchedule, TwoInverterRingSettlesToALatchState) {
  // Two cross-coupled inverters form a latch with two stable fixpoints,
  // not an oscillator — the engine must settle, not flag it.
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<NotBlock>(), "a");
  const BlockId b = m.add_block(std::make_shared<NotBlock>(), "b");
  const LinkId ab = m.add_link("ab", 1, LinkKind::kCombinational);
  const LinkId ba = m.add_link("ba", 1, LinkKind::kCombinational);
  m.bind_output(a, 0, ab);
  m.bind_input(b, 0, ab);
  m.bind_output(b, 0, ba);
  m.bind_input(a, 0, ba);
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic, /*max_evals=*/16);
  sim.step();
  EXPECT_NE(sim.link_value(ab).get_field(0, 1),
            sim.link_value(ba).get_field(0, 1));
}

TEST(DynamicSchedule, DetectsOscillatingRingOfThreeInverters) {
  // An odd inverter ring has no stable assignment: the HBR machinery
  // would re-evaluate forever; the engine must detect and report it.
  SystemModel m;
  std::vector<BlockId> blocks;
  std::vector<LinkId> links;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(
        m.add_block(std::make_shared<NotBlock>(), "n" + std::to_string(i)));
    links.push_back(m.add_link("l" + std::to_string(i), 1,
                               LinkKind::kCombinational));
  }
  for (int i = 0; i < 3; ++i) {
    m.bind_output(blocks[i], 0, links[i]);
    m.bind_input(blocks[(i + 1) % 3], 0, links[i]);
  }
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic, /*max_evals=*/16);
  EXPECT_THROW(sim.step(), Error);
}

TEST(DynamicSchedule, ConvergenceErrorCarriesAStructuredReport) {
  // The abort is not just a message: the thrown error exposes which
  // blocks were still unstable and which links changed last, so a host
  // can surface a diagnostic instead of an opaque limit trip.
  SystemModel m;
  std::vector<BlockId> blocks;
  std::vector<LinkId> links;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(
        m.add_block(std::make_shared<NotBlock>(), "n" + std::to_string(i)));
    links.push_back(m.add_link("l" + std::to_string(i), 1,
                               LinkKind::kCombinational));
  }
  for (int i = 0; i < 3; ++i) {
    m.bind_output(blocks[i], 0, links[i]);
    m.bind_input(blocks[(i + 1) % 3], 0, links[i]);
  }
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic, /*max_evals=*/16);
  try {
    sim.step();
    FAIL() << "oscillating ring must not settle";
  } catch (const ConvergenceError& e) {
    const ConvergenceReport& r = e.report();
    EXPECT_EQ(r.limit, 16u * 3u);
    EXPECT_GT(r.delta_cycles, r.limit);
    EXPECT_EQ(r.num_blocks, 3u);
    // In a ring the instability travels, so at the moment the budget ran
    // out at least one ring block is pending — and nothing else exists.
    ASSERT_FALSE(r.oscillating_blocks.empty());
    for (const BlockId b : r.oscillating_blocks) {
      EXPECT_TRUE(std::find(blocks.begin(), blocks.end(), b) !=
                  blocks.end());
    }
    // The recent-change ring saw the ring's links, newest first.
    ASSERT_FALSE(r.last_changed_links.empty());
    for (const LinkId l : r.last_changed_links) {
      EXPECT_TRUE(std::find(links.begin(), links.end(), l) != links.end());
    }
    // Key/value context and summary mention the essentials.
    EXPECT_FALSE(e.context_value("delta_cycles").empty());
    EXPECT_NE(r.summary().find("blocks"), std::string::npos);
    // Still a tmsim::Error for callers that catch coarsely.
    const Error& base = e;
    EXPECT_NE(std::string(base.what()).find("settle"), std::string::npos);
  }
}

TEST(DynamicSchedule, DetectsOscillatingSelfLoop) {
  // A block inverting its own output exercises the self-destabilization
  // path (a writer clearing the HBR bit of its own input link).
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<NotBlock>(), "a");
  const LinkId aa = m.add_link("aa", 1, LinkKind::kCombinational);
  m.bind_output(a, 0, aa);
  m.bind_input(a, 0, aa);
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic, /*max_evals=*/16);
  EXPECT_THROW(sim.step(), Error);
}

TEST(DynamicSchedule, SettlingCombinationalLoopConverges) {
  // A ring of two +0 adders is a combinational loop that *does* settle
  // (identity): the engine must terminate, not flag it.
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(4, 0), "a");
  const BlockId b = m.add_block(std::make_shared<CombAdderBlock>(4, 0), "b");
  const LinkId ab = m.add_link("ab", 4, LinkKind::kCombinational);
  const LinkId ba = m.add_link("ba", 4, LinkKind::kCombinational);
  m.bind_output(a, 0, ab);
  m.bind_input(b, 0, ab);
  m.bind_output(b, 0, ba);
  m.bind_input(a, 0, ba);
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic);
  const StepStats st = sim.step();
  EXPECT_LE(st.delta_cycles, 4u);
}

/// in → +1 → +2 → +3 → out over combinational links; stateless blocks,
/// so a constant input makes the whole network idle after one settling
/// cycle. Shared by the bookkeeping-audit tests below.
struct CombChain {
  CombChain() {
    const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(8, 1), "a");
    const BlockId b = m.add_block(std::make_shared<CombAdderBlock>(8, 2), "b");
    const BlockId c = m.add_block(std::make_shared<CombAdderBlock>(8, 3), "c");
    in = m.add_link("in", 8, LinkKind::kCombinational);
    const LinkId ab = m.add_link("ab", 8, LinkKind::kCombinational);
    const LinkId bc = m.add_link("bc", 8, LinkKind::kCombinational);
    out = m.add_link("out", 8, LinkKind::kCombinational);
    m.bind_input(a, 0, in);
    m.bind_output(a, 0, ab);
    m.bind_input(b, 0, ab);
    m.bind_output(b, 0, bc);
    m.bind_input(c, 0, bc);
    m.bind_output(c, 0, out);
    m.finalize();
  }
  SystemModel m;
  LinkId in = 0, out = 0;
};

TEST(DynamicSchedule, IdleNetworkCostsExactlyOnePassPerCycle) {
  // Audit of the unstable_count_ bookkeeping on the write-unchanged-
  // value path: once the network is idle, every cycle re-evaluates each
  // block exactly once (the §4.2 "at least once" floor) and the
  // unchanged rewrites of every link must not destabilize the readers —
  // one pass total, never one pass per reader.
  CombChain chain;
  SequentialSimulator sim(chain.m, SchedulePolicy::kDynamic);
  sim.set_external_input(chain.in, val(8, 10));
  sim.step();  // settling cycle: re-evaluations allowed
  for (int cycle = 0; cycle < 5; ++cycle) {
    const StepStats st = sim.step();
    EXPECT_EQ(st.delta_cycles, 3u) << "cycle " << cycle;
    EXPECT_EQ(st.re_evaluations, 0u) << "cycle " << cycle;
    EXPECT_EQ(st.link_changes, 0u) << "cycle " << cycle;
    EXPECT_EQ(sim.link_value(chain.out).get_field(0, 8), 16u);
  }
}

TEST(DynamicSchedule, WorklistSkipsAnIdleNetworkEntirely) {
  // The worklist scheduler's quiescence fast path goes one step
  // further: with every block at a state fixed point and no pending
  // input activity, an idle cycle evaluates *nothing*.
  CombChain chain;
  SequentialSimulator sim(chain.m, SchedulePolicy::kDynamic,
                          /*max_evals_per_block=*/64, /*schedule_seed=*/1,
                          SchedulerKind::kWorklist);
  sim.set_external_input(chain.in, val(8, 10));
  sim.step();  // settling cycle
  sim.step();  // pending flags from the settling cycle's changes drain
  for (int cycle = 0; cycle < 5; ++cycle) {
    const StepStats st = sim.step();
    EXPECT_EQ(st.delta_cycles, 0u) << "cycle " << cycle;
    EXPECT_EQ(st.skipped_blocks, 3u) << "cycle " << cycle;
    EXPECT_EQ(sim.link_value(chain.out).get_field(0, 8), 16u);
  }
  // Fresh stimulus wakes exactly the affected readers again.
  sim.set_external_input(chain.in, val(8, 20));
  const StepStats st = sim.step();
  EXPECT_GE(st.delta_cycles, 3u);
  EXPECT_EQ(sim.link_value(chain.out).get_field(0, 8), 26u);
}

TEST(TwoPhaseOracle, MatchesDynamicOnStateOnlyDesign) {
  PipeRing a({9, 8, 7}), b({9, 8, 7});
  SequentialSimulator dyn(a.model, SchedulePolicy::kDynamic);
  SequentialSimulator oracle(b.model, SchedulePolicy::kTwoPhaseOracle);
  for (int cycle = 0; cycle < 25; ++cycle) {
    dyn.step();
    const StepStats st = oracle.step();
    EXPECT_EQ(st.delta_cycles, 6u);  // always exactly 2N
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(dyn.block_state(a.blocks[i]), oracle.block_state(b.blocks[i]))
          << cycle;
      ASSERT_EQ(dyn.link_value(a.links[i]), oracle.link_value(b.links[i]))
          << cycle;
    }
  }
}

TEST(Engine, ExternalInputValidation) {
  PipeRing ring({0, 0, 0});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  EXPECT_THROW(sim.set_external_input(ring.links[0], val(16, 1)), Error);
}

TEST(Engine, ExternalInputWithNoReadersIsRejected) {
  // Driving a link no block reads used to be accepted and silently
  // dropped — the stimulus influenced nothing and no one noticed. It is
  // now a ContextualError naming the link.
  SystemModel m;
  const BlockId b = m.add_block(std::make_shared<CombAdderBlock>(8, 1), "a");
  const LinkId in = m.add_link("in", 8, LinkKind::kCombinational);
  const LinkId dangling =
      m.add_link("dangling", 8, LinkKind::kCombinational);
  const LinkId out = m.add_link("out", 8, LinkKind::kCombinational);
  m.bind_input(b, 0, in);
  m.bind_output(b, 0, out);
  m.finalize();
  SequentialSimulator sim(m, SchedulePolicy::kDynamic);
  sim.set_external_input(in, val(8, 3));  // has a reader: accepted
  try {
    sim.set_external_input(dangling, val(8, 1));
    FAIL() << "dangling external input accepted";
  } catch (const ContextualError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no readers"), std::string::npos) << what;
    EXPECT_NE(what.find("dangling"), std::string::npos) << what;
  }
  // Block-driven links are still rejected as before.
  EXPECT_THROW(sim.set_external_input(out, val(8, 1)), ContextualError);
}

TEST(Engine, TraceHookSeesFigFiveStyleSchedule) {
  PipeRing ring({1, 0, 0});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  std::vector<std::pair<SystemCycle, BlockId>> trace;
  sim.set_trace_hook([&](SystemCycle c, DeltaCycle, BlockId b) {
    trace.emplace_back(c, b);
  });
  sim.step();
  sim.step();
  // All first-cycle entries precede second-cycle entries, and each cycle
  // starts with the full round 0,1,2 (round-robin from the persistent
  // pointer position).
  ASSERT_GE(trace.size(), 6u);
  EXPECT_EQ(trace[0].first, 0u);
  EXPECT_EQ(trace[0].second, 0u);
  EXPECT_EQ(trace[1].second, 1u);
  EXPECT_EQ(trace[2].second, 2u);
}

TEST(Engine, DeltaCycleTotalsAccumulate) {
  PipeRing ring({1, 2, 3});
  SequentialSimulator sim(ring.model, SchedulePolicy::kDynamic);
  DeltaCycle total = 0;
  for (int i = 0; i < 10; ++i) {
    total += sim.step().delta_cycles;
  }
  EXPECT_EQ(sim.total_delta_cycles(), total);
  EXPECT_EQ(sim.cycle(), 10u);
}

}  // namespace

/// White-box peer: reaches the round-robin scheduler's private bitmap so
/// a test can force the unstable_count/bitmap desync that the bounded
/// cursor scan turns into a structured failure (it used to spin forever).
class SequentialSimulatorTestPeer {
 public:
  static void zero_unstable_bitmap(SequentialSimulator& sim) {
    std::fill(sim.unstable_.begin(), sim.unstable_.end(), 0);
  }
  static std::size_t unstable_count(const SequentialSimulator& sim) {
    return sim.unstable_count_;
  }
};

namespace {

/// Pass-through block that, when armed, zeroes the scheduler's unstable
/// bitmap from inside its own evaluation — the count stays nonzero, so
/// the round-robin cursor has nothing left to find.
class SaboteurBlock : public SimBlock {
 public:
  void arm(SequentialSimulator* victim) { victim_ = victim; }

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return 1; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    outputs[0].set_field(0, 1, inputs[0].get_field(0, 1));
    if (victim_ != nullptr) {
      SequentialSimulatorTestPeer::zero_unstable_bitmap(*victim_);
    }
  }
  std::string type_name() const override { return "saboteur"; }

 private:
  SequentialSimulator* victim_ = nullptr;
};

TEST(DynamicSchedule, DesyncedRoundRobinFailsStructurallyInsteadOfHanging) {
  SystemModel model;
  auto saboteur = std::make_shared<SaboteurBlock>();
  const BlockId s = model.add_block(saboteur, "S");
  const BlockId c =
      model.add_block(std::make_shared<CombAdderBlock>(1, 0), "C");
  const LinkId ext = model.add_link("ext", 1, LinkKind::kCombinational);
  const LinkId mid = model.add_link("mid", 1, LinkKind::kCombinational);
  const LinkId out = model.add_link("out", 1, LinkKind::kCombinational);
  model.bind_input(s, 0, ext);
  model.bind_output(s, 0, mid);
  model.bind_input(c, 0, mid);
  model.bind_output(c, 0, out);
  model.finalize();

  SequentialSimulator sim(model, SchedulePolicy::kDynamic, 8);
  saboteur->arm(&sim);
  // Block S (id 0) evaluates first, clears block C's unstable bit behind
  // the scheduler's back, and writes an unchanged output (no
  // re-destabilization). unstable_count stays 1 with an all-zero bitmap:
  // before the bounded scan this spun forever on the cursor.
  try {
    sim.step();
    FAIL() << "desynced scheduler did not fail";
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.report().cycle, 0u);
    EXPECT_EQ(e.report().num_blocks, 2u);
  }
  EXPECT_EQ(SequentialSimulatorTestPeer::unstable_count(sim), 1u);
}

// ---------------------------------------------------------------------------
// Re-evaluation accounting (explicit first-eval counting): pinned
// per-scheduler on a chain whose block ids run *against* the dataflow —
// the shape that separates the three schedulers most sharply.
// ---------------------------------------------------------------------------

/// b0 reads b1's output, b1 reads b2's, b2 reads the external input: the
/// round-robin sweep evaluates in id order and pays re-evaluations to
/// push values upstream; the compiled schedule evaluates in topological
/// order (b2, b1, b0) and pays none.
struct ReverseChain {
  ReverseChain() {
    const BlockId b0 =
        model.add_block(std::make_shared<CombAdderBlock>(8, 1), "b0");
    const BlockId b1 =
        model.add_block(std::make_shared<CombAdderBlock>(8, 2), "b1");
    const BlockId b2 =
        model.add_block(std::make_shared<CombAdderBlock>(8, 3), "b2");
    ext = model.add_link("ext", 8, LinkKind::kCombinational);
    l2 = model.add_link("l2", 8, LinkKind::kCombinational);
    l1 = model.add_link("l1", 8, LinkKind::kCombinational);
    out = model.add_link("out", 8, LinkKind::kCombinational);
    model.bind_input(b2, 0, ext);
    model.bind_output(b2, 0, l2);
    model.bind_input(b1, 0, l2);
    model.bind_output(b1, 0, l1);
    model.bind_input(b0, 0, l1);
    model.bind_output(b0, 0, out);
    model.finalize();
  }
  SystemModel model;
  LinkId ext = 0, l2 = 0, l1 = 0, out = 0;
};

TEST(SchedulerStats, ReEvaluationsPinnedPerSchedulerOnReverseChain) {
  ReverseChain chain;
  // Round-robin, cycle 1 (reset transient): id-order sweep needs three
  // extra delta cycles to push the reset values downstream.
  SequentialSimulator rr(chain.model, SchedulePolicy::kDynamic);
  StepStats st = rr.step();
  EXPECT_EQ(st.delta_cycles, 6u);
  EXPECT_EQ(st.re_evaluations, 3u);
  st = rr.step();  // settled: one pass, nothing changes
  EXPECT_EQ(st.delta_cycles, 3u);
  EXPECT_EQ(st.re_evaluations, 0u);

  // Worklist: same first-cycle work, then the quiescence fast path
  // skips the whole chain.
  SequentialSimulator wl(chain.model, SchedulePolicy::kDynamic, 64, 1,
                         SchedulerKind::kWorklist);
  st = wl.step();
  EXPECT_EQ(st.delta_cycles, 6u);
  EXPECT_EQ(st.re_evaluations, 3u);
  st = wl.step();
  EXPECT_EQ(st.delta_cycles, 0u);
  EXPECT_EQ(st.re_evaluations, 0u);
  EXPECT_EQ(st.skipped_blocks, 3u);

  // Compiled: topological order, every cycle — no re-evaluations ever.
  SequentialSimulator cp(chain.model, SchedulePolicy::kDynamic, 64, 1,
                         SchedulerKind::kCompiled);
  for (int i = 0; i < 3; ++i) {
    st = cp.step();
    EXPECT_EQ(st.delta_cycles, 3u) << "cycle " << i;
    EXPECT_EQ(st.re_evaluations, 0u) << "cycle " << i;
  }

  // All three reach the same fixed point, naturally.
  for (const LinkId l : {chain.l2, chain.l1, chain.out}) {
    EXPECT_EQ(rr.link_value(l), wl.link_value(l));
    EXPECT_EQ(rr.link_value(l), cp.link_value(l));
  }

  // Two-phase oracle: exactly two passes, so exactly one re-evaluation
  // per block, every cycle.
  SequentialSimulator tp(chain.model, SchedulePolicy::kTwoPhaseOracle);
  st = tp.step();
  EXPECT_EQ(st.delta_cycles, 6u);
  EXPECT_EQ(st.re_evaluations, 3u);
}

}  // namespace
}  // namespace tmsim::core
