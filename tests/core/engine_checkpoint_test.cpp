// Engine checkpoint/restore/reset — the machinery SimSession preemption
// stands on (DESIGN.md §11): continue-vs-restore bit identity across
// engine *instances*, digest verification, the registered-internal-link
// restriction, power-on reset for engine reuse, and the canonical
// schedule_rr_offset behaviour the farm's engine cache relies on.
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/example_blocks.h"
#include "core/sequential_simulator.h"
#include "core/sharded_simulator.h"
#include "core/system_model.h"

namespace tmsim::core {
namespace {

using examples::PipeBlock;
using examples::RegAdderBlock;

BitVector val(std::size_t width, std::uint64_t v) {
  BitVector b(width);
  b.set_field(0, width, v);
  return b;
}

/// Checkpointable shape: stateful blocks joined by *combinational* links
/// (the NoC-model shape — the fixed point is a pure function of the
/// committed states and external inputs), fed by one external input.
struct PipeChain {
  PipeChain() {
    const BlockId p1 =
        model.add_block(std::make_shared<PipeBlock>(16, 1), "P1");
    const BlockId p2 =
        model.add_block(std::make_shared<PipeBlock>(16, 10), "P2");
    const BlockId p3 =
        model.add_block(std::make_shared<PipeBlock>(16, 100), "P3");
    x = model.add_link("X", 16, LinkKind::kCombinational);
    l1 = model.add_link("L1", 16, LinkKind::kCombinational);
    l2 = model.add_link("L2", 16, LinkKind::kCombinational);
    l3 = model.add_link("L3", 16, LinkKind::kCombinational);
    model.bind_input(p1, 0, x);
    model.bind_output(p1, 0, l1);
    model.bind_input(p2, 0, l1);
    model.bind_output(p2, 0, l2);
    model.bind_input(p3, 0, l2);
    model.bind_output(p3, 0, l3);
    model.finalize();
  }
  SystemModel model;
  LinkId x = 0, l1 = 0, l2 = 0, l3 = 0;
};

/// The deterministic stimulus both halves of every test replay.
std::uint64_t stimulus(SystemCycle cycle) { return (7 * cycle + 3) & 0xffff; }

void drive(SequentialSimulator& sim, const PipeChain& chain,
           SystemCycle cycles) {
  for (SystemCycle i = 0; i < cycles; ++i) {
    sim.set_external_input(chain.x, val(16, stimulus(sim.cycle())));
    sim.step();
  }
}

TEST(EngineCheckpoint, ContinueVsRestoreIntoFreshEngineBitIdentical) {
  PipeChain a_chain;
  SequentialSimulator a(a_chain.model, SchedulePolicy::kDynamic);
  drive(a, a_chain, 10);
  const EngineCheckpoint ck = save_checkpoint(a);
  EXPECT_EQ(ck.cycle, 10u);
  EXPECT_FALSE(ck.empty());
  EXPECT_EQ(ck.digest, engine_state_digest(a));

  drive(a, a_chain, 15);  // the uninterrupted reference

  // A *different* engine instance over its own (identical) model, with a
  // different schedule seed — evaluation order must not matter.
  PipeChain b_chain;
  SequentialSimulator b(b_chain.model, SchedulePolicy::kDynamic,
                        /*max_evals_per_block=*/64, /*schedule_seed=*/99);
  restore_checkpoint(b, ck);
  EXPECT_EQ(b.cycle(), 10u);
  EXPECT_EQ(engine_state_digest(b), ck.digest);
  drive(b, b_chain, 15);

  EXPECT_EQ(b.cycle(), a.cycle());
  EXPECT_EQ(engine_state_digest(b), engine_state_digest(a));
  for (const LinkId link : {b_chain.l1, b_chain.l2, b_chain.l3}) {
    EXPECT_EQ(b.link_value(link), a.link_value(link));
  }
}

TEST(EngineCheckpoint, TamperedCheckpointIsRejected) {
  PipeChain chain;
  SequentialSimulator sim(chain.model, SchedulePolicy::kDynamic);
  drive(sim, chain, 5);
  {
    EngineCheckpoint ck = save_checkpoint(sim);
    ck.digest ^= 1;  // stale/corrupted digest
    EXPECT_THROW(restore_checkpoint(sim, ck), std::exception);
  }
  {
    EngineCheckpoint ck = save_checkpoint(sim);
    ck.block_states[1] = val(16, 0xbad);  // states mutated after capture
    EXPECT_THROW(restore_checkpoint(sim, ck), std::exception);
  }
}

TEST(EngineCheckpoint, RegisteredInternalLinksAreNotCheckpointable) {
  // Registered links carry state the block-state snapshot does not
  // cover, so save_checkpoint must refuse rather than silently lose it.
  SystemModel model;
  const BlockId b1 =
      model.add_block(std::make_shared<RegAdderBlock>(16, 1), "F1");
  const BlockId b2 =
      model.add_block(std::make_shared<RegAdderBlock>(16, 2), "F2");
  const LinkId r1 = model.add_link("R1", 16, LinkKind::kRegistered);
  const LinkId r2 = model.add_link("R2", 16, LinkKind::kRegistered);
  model.bind_input(b1, 0, r2);
  model.bind_output(b1, 0, r1);
  model.bind_input(b2, 0, r1);
  model.bind_output(b2, 0, r2);
  model.finalize();
  SequentialSimulator sim(model, SchedulePolicy::kStatic);
  sim.step();
  EXPECT_THROW(save_checkpoint(sim), std::exception);
}

TEST(EngineCheckpoint, ResetEngineReturnsToPowerOn) {
  PipeChain chain;
  SequentialSimulator sim(chain.model, SchedulePolicy::kDynamic);
  const std::uint64_t power_on = engine_state_digest(sim);
  drive(sim, chain, 12);
  ASSERT_NE(engine_state_digest(sim), power_on);

  reset_engine(sim);
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(engine_state_digest(sim), power_on);

  // The reused engine replays the original trajectory exactly.
  PipeChain fresh_chain;
  SequentialSimulator fresh(fresh_chain.model, SchedulePolicy::kDynamic);
  drive(sim, chain, 12);
  drive(fresh, fresh_chain, 12);
  EXPECT_EQ(engine_state_digest(sim), engine_state_digest(fresh));
}

// ---------------------------------------------------------------------------
// Scheduler-state checkpointing (DESIGN.md §17): a farm-preempted
// session resumed on a different engine instance must replay not just
// bit-identical results but the identical *StepStats stream* — cursor
// positions and quiescence flags ride in the checkpoint. The diff below
// is over full per-cycle stats, not digests: digests can agree while the
// schedules did different amounts of work.
// ---------------------------------------------------------------------------

/// A stimulus the pre-restore "other tenant" workload uses; disjoint
/// from stimulus() so the restored engine really starts from foreign
/// scheduler state.
std::uint64_t other_stimulus(SystemCycle cycle) {
  return (13 * cycle + 11) & 0xffff;
}

std::vector<StepStats> drive_recording(Engine& sim, const PipeChain& chain,
                                       SystemCycle cycles,
                                       std::uint64_t (*stim)(SystemCycle)) {
  std::vector<StepStats> out;
  for (SystemCycle i = 0; i < cycles; ++i) {
    sim.set_external_input(chain.x, val(16, stim(sim.cycle())));
    out.push_back(sim.step());
  }
  return out;
}

TEST(SchedulerCheckpoint, SequentialStatsStreamSurvivesPreemption) {
  for (const SchedulerKind kind :
       {SchedulerKind::kRoundRobin, SchedulerKind::kWorklist,
        SchedulerKind::kCompiled}) {
    SCOPED_TRACE(scheduler_kind_name(kind));
    PipeChain a_chain;
    SequentialSimulator a(a_chain.model, SchedulePolicy::kDynamic, 64, 1,
                          kind);
    drive_recording(a, a_chain, 9, stimulus);
    const EngineCheckpoint ck = save_checkpoint(a);
    const std::vector<StepStats> ref =
        drive_recording(a, a_chain, 8, stimulus);

    // The resumed-onto engine first ran a different workload, so its
    // cursor, quiescence flags, and link values are all foreign.
    PipeChain b_chain;
    SequentialSimulator b(b_chain.model, SchedulePolicy::kDynamic, 64, 1,
                          kind);
    drive_recording(b, b_chain, 5, other_stimulus);
    restore_checkpoint(b, ck);
    EXPECT_EQ(engine_state_digest(b), ck.digest);
    const std::vector<StepStats> got =
        drive_recording(b, b_chain, 8, stimulus);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << "cycle " << 9 + i;
    }
    EXPECT_EQ(engine_state_digest(b), engine_state_digest(a));
  }
}

TEST(SchedulerCheckpoint, ShardedStatsStreamSurvivesPreemption) {
  for (const SchedulerKind kind :
       {SchedulerKind::kRoundRobin, SchedulerKind::kWorklist,
        SchedulerKind::kCompiled}) {
    SCOPED_TRACE(scheduler_kind_name(kind));
    ShardedConfig cfg;
    cfg.num_shards = 2;
    cfg.scheduler = kind;
    PipeChain a_chain;
    ShardedSimulator a(a_chain.model, cfg);
    drive_recording(a, a_chain, 9, stimulus);
    const EngineCheckpoint ck = save_checkpoint(a);
    const std::vector<StepStats> ref =
        drive_recording(a, a_chain, 8, stimulus);

    PipeChain b_chain;
    ShardedSimulator b(b_chain.model, cfg);
    drive_recording(b, b_chain, 5, other_stimulus);
    restore_checkpoint(b, ck);
    const std::vector<StepStats> got =
        drive_recording(b, b_chain, 8, stimulus);

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      // barrier_spins is wall-clock noise; every other field is a
      // deterministic function of model, schedule state, and stimulus.
      EXPECT_EQ(got[i].delta_cycles, ref[i].delta_cycles) << "cycle " << i;
      EXPECT_EQ(got[i].re_evaluations, ref[i].re_evaluations)
          << "cycle " << i;
      EXPECT_EQ(got[i].link_changes, ref[i].link_changes) << "cycle " << i;
      EXPECT_EQ(got[i].cut_publishes, ref[i].cut_publishes) << "cycle " << i;
      EXPECT_EQ(got[i].skipped_blocks, ref[i].skipped_blocks)
          << "cycle " << i;
      EXPECT_EQ(got[i].settle_rounds, ref[i].settle_rounds) << "cycle " << i;
      EXPECT_EQ(got[i].worklist_high_water, ref[i].worklist_high_water)
          << "cycle " << i;
    }
    EXPECT_EQ(engine_state_digest(b), engine_state_digest(a));
  }
}

TEST(SchedulerCheckpoint, TamperedLinkSnapshotIsRejected) {
  PipeChain chain;
  SequentialSimulator sim(chain.model, SchedulePolicy::kDynamic, 64, 1,
                          SchedulerKind::kWorklist);
  drive(sim, chain, 5);
  EngineCheckpoint ck = save_checkpoint(sim);
  ASSERT_FALSE(ck.link_ids.empty());
  ck.link_values[0] = val(16, 0xbad);
  EXPECT_THROW(restore_checkpoint(sim, ck), std::exception);
}

TEST(SchedulerCheckpoint, LegacyCheckpointWithoutSnapshotCanonicalizes) {
  // A hand-built checkpoint (no link snapshot, no scheduler state) must
  // restore like a power-on engine at that state: accepted, and the
  // scheduler starts from canonical cursors/flags.
  PipeChain chain;
  SequentialSimulator sim(chain.model, SchedulePolicy::kDynamic, 64, 1,
                          SchedulerKind::kWorklist);
  drive(sim, chain, 6);
  EngineCheckpoint ck = save_checkpoint(sim);
  ck.link_ids.clear();
  ck.link_values.clear();
  ck.link_digest = 0;
  ck.sched = SchedulerCheckpoint{};
  SequentialSimulator fresh(chain.model, SchedulePolicy::kDynamic, 64, 1,
                            SchedulerKind::kWorklist);
  restore_checkpoint(fresh, ck);  // must not throw
  EXPECT_EQ(fresh.cycle(), 6u);
  // Without restored link values the quiescence flags were cleared, so
  // the first resumed cycle re-evaluates everything — and results stay
  // bit-identical to the uninterrupted run.
  drive(sim, chain, 4);
  drive(fresh, chain, 4);
  EXPECT_EQ(engine_state_digest(fresh), engine_state_digest(sim));
}

TEST(EngineCheckpoint, ScheduleRrOffsetCanonicalBehaviour) {
  // Seed 1 is the canonical schedule: offset 0, so default-constructed
  // engines keep their historical evaluation order (and the farm's
  // cached engines all share it).
  for (const std::size_t n : {1u, 5u, 64u}) {
    EXPECT_EQ(schedule_rr_offset(1, n), 0u);
  }
  EXPECT_EQ(schedule_rr_offset(12345, 0), 0u);
  std::set<std::size_t> offsets;
  for (std::uint64_t seed = 2; seed < 40; ++seed) {
    const std::size_t off = schedule_rr_offset(seed, 64);
    EXPECT_LT(off, 64u);
    EXPECT_EQ(schedule_rr_offset(seed, 64), off);  // deterministic
    offsets.insert(off);
  }
  EXPECT_GT(offsets.size(), 8u);  // seeds actually spread the cursor
}

}  // namespace
}  // namespace tmsim::core
