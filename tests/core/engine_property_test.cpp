// Property tests of the sequential engine on randomly generated
// netlists, checked against an independent reference interpreter.
//
// The reference evaluates the same netlist with a naive fixpoint solver
// (recompute every block until nothing changes — no HBR bits, no
// scheduling) each cycle. For any netlist whose combinational parts
// settle, the engine's dynamic schedule must produce identical link
// values and block states every cycle, regardless of evaluation order.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/example_blocks.h"
#include "core/sequential_simulator.h"

namespace tmsim::core {
namespace {

using examples::CombAdderBlock;
using examples::PipeBlock;
using examples::RegAdderBlock;

constexpr std::size_t kWidth = 16;

/// A randomly wired netlist: N blocks of mixed kinds, each with one input
/// and one output link; links are combinational or registered at random.
/// Acyclic *combinational* structure is guaranteed by only allowing a
/// combinational link from block i to block j when i < j (registered
/// links may go anywhere, including backwards — cycles through registers
/// are fine).
struct RandomNetlist {
  SystemModel model;
  std::vector<BlockId> blocks;
  std::vector<LinkId> links;              // output link of block i
  std::vector<int> sources;               // input source block (or -1)
  std::vector<LinkKind> kinds;            // kind of block i's *input* link
  std::vector<std::uint64_t> addends;     // block i's addend
  std::vector<int> block_kind;            // 0 comb, 1 pipe, 2 reg-adder
  std::vector<std::uint64_t> resets;
  LinkId external_in = 0;

  explicit RandomNetlist(std::uint64_t seed, std::size_t n) {
    SplitMix64 rng(seed);
    // Choose block kinds and parameters.
    for (std::size_t i = 0; i < n; ++i) {
      block_kind.push_back(static_cast<int>(rng.next_below(3)));
      addends.push_back(rng.next_below(1000));
      resets.push_back(rng.next_below(1u << kWidth));
      std::shared_ptr<SimBlock> blk;
      switch (block_kind[i]) {
        case 0:
          blk = std::make_shared<CombAdderBlock>(kWidth, addends[i]);
          break;
        case 1:
          blk = std::make_shared<PipeBlock>(kWidth, addends[i], resets[i]);
          break;
        default:
          blk = std::make_shared<RegAdderBlock>(kWidth, addends[i]);
          break;
      }
      blocks.push_back(model.add_block(blk, "b" + std::to_string(i)));
    }
    // Output links: block i drives link i; a comb-output block's link may
    // only feed later blocks (acyclic comb core); a registered link may
    // feed anyone. CombAdder and Pipe blocks have comb outputs; RegAdder
    // drives a registered link.
    external_in =
        model.add_link("ext_in", kWidth, LinkKind::kCombinational);
    for (std::size_t i = 0; i < n; ++i) {
      const LinkKind kind = block_kind[i] == 2 ? LinkKind::kRegistered
                                               : LinkKind::kCombinational;
      links.push_back(model.add_link("l" + std::to_string(i), kWidth, kind));
      model.bind_output(blocks[i], 0, links[i]);
    }
    // Input wiring: block 0 reads the external input; block j > 0 reads
    // either a registered link (any block) or a combinational link of an
    // earlier block that is still unclaimed (single reader).
    std::vector<bool> comb_claimed(n, false);
    model.bind_input(blocks[0], 0, external_in);
    sources.assign(n, -1);
    kinds.assign(n, LinkKind::kCombinational);
    for (std::size_t j = 1; j < n; ++j) {
      // Candidate sources.
      std::vector<std::size_t> cands;
      for (std::size_t i = 0; i < n; ++i) {
        const bool registered = block_kind[i] == 2;
        if (registered || (i < j && !comb_claimed[i])) {
          cands.push_back(i);
        }
      }
      const std::size_t src = cands[rng.next_below(cands.size())];
      if (block_kind[src] != 2) {
        comb_claimed[src] = true;
      }
      sources[j] = static_cast<int>(src);
      kinds[j] = block_kind[src] == 2 ? LinkKind::kRegistered
                                      : LinkKind::kCombinational;
      model.bind_input(blocks[j], 0, links[src]);
    }
    model.finalize();
  }
};

/// Reference interpreter: plain maps, fixpoint per cycle.
struct Reference {
  explicit Reference(const RandomNetlist& net) : net_(net) {
    const std::size_t n = net.blocks.size();
    state.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (net.block_kind[i] == 1) {
        state[i] = net.resets[i];
      }
    }
    link_now.assign(n, 0);   // value a reader sees this cycle
    reg_q.assign(n, 0);      // committed register value (registered links)
  }

  std::uint64_t input_of(std::size_t j, std::uint64_t ext) const {
    if (j == 0) {
      return ext;
    }
    const std::size_t src = static_cast<std::size_t>(net_.sources[j]);
    return net_.kinds[j] == LinkKind::kRegistered ? reg_q[src]
                                                  : link_now[src];
  }

  void step(std::uint64_t ext) {
    const std::size_t n = net_.blocks.size();
    const std::uint64_t mask = (1ull << kWidth) - 1;
    // Fixpoint over combinational outputs (inputs from current values).
    for (int iter = 0; iter < 64; ++iter) {
      bool changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t out;
        if (net_.block_kind[i] == 0) {  // comb adder
          out = (input_of(i, ext) + net_.addends[i]) & mask;
        } else if (net_.block_kind[i] == 1) {  // pipe: G = state + addend
          out = (state[i] + net_.addends[i]) & mask;
        } else {  // registered adder drives D; not part of comb fixpoint
          continue;
        }
        if (link_now[i] != out) {
          link_now[i] = out;
          changed = true;
        }
      }
      if (!changed) {
        break;
      }
      ASSERT_LT(iter, 63) << "reference did not settle";
    }
    // Clock edge: pipes latch inputs, registered links latch D.
    std::vector<std::uint64_t> nstate = state;
    std::vector<std::uint64_t> nreg = reg_q;
    for (std::size_t i = 0; i < n; ++i) {
      if (net_.block_kind[i] == 1) {
        nstate[i] = input_of(i, ext);
      } else if (net_.block_kind[i] == 2) {
        nreg[i] = (input_of(i, ext) + net_.addends[i]) & mask;
      }
    }
    state = nstate;
    reg_q = nreg;
  }

  const RandomNetlist& net_;
  std::vector<std::uint64_t> state;
  std::vector<std::uint64_t> link_now;
  std::vector<std::uint64_t> reg_q;
};

class RandomNetlistProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomNetlistProperty, DynamicScheduleMatchesFixpointReference) {
  const std::uint64_t seed = GetParam();
  SplitMix64 stimuli_rng(seed ^ 0xabcdef);
  RandomNetlist net(seed, 12);
  SequentialSimulator sim(net.model, SchedulePolicy::kDynamic);
  Reference ref(net);

  for (int cycle = 0; cycle < 60; ++cycle) {
    const std::uint64_t ext = stimuli_rng.next_below(1u << kWidth);
    sim.set_external_input(net.external_in, make_bit_vector(kWidth, ext));
    sim.step();
    ref.step(ext);
    for (std::size_t i = 0; i < net.blocks.size(); ++i) {
      // Link values as seen by a reader right now.
      const std::uint64_t got = sim.link_value(net.links[i]).get_field(0, kWidth);
      const std::uint64_t want = net.block_kind[i] == 2 ? ref.reg_q[i]
                                                        : ref.link_now[i];
      ASSERT_EQ(got, want) << "cycle " << cycle << " link " << i << " seed "
                           << seed;
      if (net.block_kind[i] == 1) {
        ASSERT_EQ(sim.block_state(net.blocks[i]).get_field(0, kWidth),
                  ref.state[i])
            << "cycle " << cycle << " block " << i << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(RandomNetlistProperty, DeltaCyclesBoundedByEvalLimit) {
  // Every random netlist must settle well below the safety cap: the comb
  // core is acyclic by construction, so the worst case is one
  // re-evaluation per topological level.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    RandomNetlist net(seed, 12);
    SequentialSimulator sim(net.model, SchedulePolicy::kDynamic);
    for (int cycle = 0; cycle < 20; ++cycle) {
      const StepStats st = sim.step();
      ASSERT_LE(st.delta_cycles, 12u * 12u) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace tmsim::core
