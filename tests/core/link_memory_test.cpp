#include "core/link_memory.h"

#include <gtest/gtest.h>

#include "core/example_blocks.h"

namespace tmsim::core {
namespace {

using examples::CombAdderBlock;
using examples::RegAdderBlock;

/// Model with one comb and one registered link (both external-ish).
SystemModel two_link_model() {
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(8, 0), "a");
  const BlockId b = m.add_block(std::make_shared<RegAdderBlock>(8, 0), "b");
  const LinkId comb_in = m.add_link("comb_in", 8, LinkKind::kCombinational);
  const LinkId comb_out = m.add_link("comb_out", 8, LinkKind::kCombinational);
  const LinkId reg_in = m.add_link("reg_in", 8, LinkKind::kRegistered);
  const LinkId reg_out = m.add_link("reg_out", 8, LinkKind::kRegistered);
  m.bind_input(a, 0, comb_in);
  m.bind_output(a, 0, comb_out);
  m.bind_input(b, 0, reg_in);
  m.bind_output(b, 0, reg_out);
  m.finalize();
  return m;
}

BitVector val8(std::uint64_t v) {
  BitVector b(8);
  b.set_field(0, 8, v);
  return b;
}

TEST(LinkMemory, CombinationalWriteReportsChange) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  EXPECT_FALSE(mem.write(0, val8(0)));   // same as reset value
  EXPECT_TRUE(mem.write(0, val8(5)));    // changed
  EXPECT_FALSE(mem.write(0, val8(5)));   // unchanged
  EXPECT_EQ(mem.read(0).get_field(0, 8), 5u);
}

TEST(LinkMemory, HbrLifecycle) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  EXPECT_FALSE(mem.has_been_read(0));
  mem.mark_read(0);
  EXPECT_TRUE(mem.has_been_read(0));
  mem.clear_hbr(0);
  EXPECT_FALSE(mem.has_been_read(0));
  mem.mark_read(0);
  mem.mark_read(1);
  mem.reset_all_hbr();
  EXPECT_FALSE(mem.has_been_read(0));
  EXPECT_FALSE(mem.has_been_read(1));
}

TEST(LinkMemory, HbrOnlyOnCombinationalLinks) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  EXPECT_THROW(mem.has_been_read(2), Error);
  EXPECT_THROW(mem.mark_read(2), Error);
  EXPECT_THROW(mem.clear_hbr(2), Error);
}

TEST(LinkMemory, RegisteredLinkIsDoubleBanked) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  EXPECT_FALSE(mem.write(2, val8(7)));  // registered never reports change
  // Reader still sees the old bank.
  EXPECT_EQ(mem.read(2).get_field(0, 8), 0u);
  mem.swap_registered_banks();
  EXPECT_EQ(mem.read(2).get_field(0, 8), 7u);
  // Next cycle's write lands in the other bank.
  mem.write(2, val8(9));
  EXPECT_EQ(mem.read(2).get_field(0, 8), 7u);
  mem.swap_registered_banks();
  EXPECT_EQ(mem.read(2).get_field(0, 8), 9u);
}

TEST(LinkMemory, CombinationalLinkUnaffectedByBankSwap) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  mem.write(0, val8(3));
  mem.swap_registered_banks();
  EXPECT_EQ(mem.read(0).get_field(0, 8), 3u);
}

TEST(LinkMemory, WidthMismatchRejected) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  EXPECT_THROW(mem.write(0, BitVector(9)), Error);
}

TEST(LinkMemory, TotalBitsCountsValuesAndHbr) {
  const SystemModel m = two_link_model();
  LinkMemory mem(m);
  // 2 comb links: (8+1) each; 2 registered links: 8*2 each.
  EXPECT_EQ(mem.total_bits(), 2u * 9 + 2u * 16);
}

}  // namespace
}  // namespace tmsim::core
