// Concurrency tests of the sharded engine's synchronization primitives.
// These are the tests meant to run under -DTMSIM_TSAN=ON (and
// -DTMSIM_SANITIZE=ON): they hammer the barrier's reduction agreement
// and the mailbox's publish/poll visibility from real threads.
//
// "No lost HBR-clear" is the property the engine builds on: a consumer
// that polls with its last-seen version can never miss that a value
// changed, because versions only grow and every publish bumps exactly
// one. A missed change would mean a reader block is never destabilized
// — a silently wrong simulation, not a crash — so these tests count
// observations exactly rather than just checking for data races.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/bit_vector.h"
#include "core/shard_mailbox.h"

namespace tmsim::core {
namespace {

TEST(ShardBarrier, SingleParticipantNeverBlocks) {
  ShardBarrier b(1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(b.sync(i), i);
  }
}

TEST(ShardBarrier, EveryParticipantSeesTheSameSumEveryRound) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kRounds = 2000;
  ShardBarrier barrier(kThreads);
  std::vector<std::vector<std::uint64_t>> sums(
      kThreads, std::vector<std::uint64_t>(kRounds));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        // Contribution depends on thread and round so a stale or
        // misattributed sum cannot collide with the expected value.
        sums[t][r] = barrier.sync(r * kThreads + t);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    // sum over t of (r * kThreads + t)
    const std::uint64_t expect =
        r * kThreads * kThreads + kThreads * (kThreads - 1) / 2;
    for (std::size_t t = 0; t < kThreads; ++t) {
      ASSERT_EQ(sums[t][r], expect) << "round " << r << " thread " << t;
    }
  }
}

TEST(ShardBarrier, OrdersWritesAcrossRounds) {
  // Data published before a sync must be visible after it — the engine
  // relies on the barrier alone (not the mailbox versions) for ordering
  // plain writes like the stop_ flag and external-input link stores.
  constexpr std::uint64_t kRounds = 3000;
  ShardBarrier barrier(2);
  std::uint64_t plain = 0;  // written by thread A, read by thread B
  std::thread a([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      plain = r + 1;
      barrier.sync(0);  // publish
      barrier.sync(0);  // B read
    }
  });
  std::uint64_t bad = 0;
  std::thread b([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      barrier.sync(0);
      if (plain != r + 1) {
        ++bad;
      }
      barrier.sync(0);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(bad, 0u);
}

TEST(ShardMailbox, PollSeesExactlyThePublishedSequence) {
  // Single producer / single consumer in barrier-aligned rounds — the
  // engine's actual protocol. The consumer must observe every change
  // exactly once and never a torn value.
  constexpr std::uint64_t kRounds = 4000;
  ShardMailbox mbox(std::vector<std::size_t>{64});
  ShardBarrier barrier(2);
  std::thread producer([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      if (r % 3 != 0) {  // publish on 2 of 3 rounds: polls must miss none
        BitVector v(64);
        v.set_field(0, 64, 0x0101010101010101ull * (r & 0xff) + r);
        mbox.publish(0, v);
      }
      barrier.sync(0);
      barrier.sync(0);  // consumer polls between these two syncs
    }
  });
  std::uint64_t seen = 0;
  std::uint64_t last_value = 0;
  bool torn = false;
  std::thread consumer([&] {
    std::uint64_t last_seen = 0;
    BitVector out(64);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      barrier.sync(0);
      if (mbox.poll(0, last_seen, out)) {
        ++seen;
        last_value = out.get_field(0, 64);
        const std::uint64_t expect = 0x0101010101010101ull * (r & 0xff) + r;
        torn = torn || (last_value != expect);
      }
      barrier.sync(0);
    }
  });
  producer.join();
  consumer.join();
  // Publishes happen strictly before the consumer's poll of the same
  // round, so every published round is seen in that round.
  const std::uint64_t published = kRounds - (kRounds + 2) / 3;
  EXPECT_EQ(seen, published);
  EXPECT_FALSE(torn);
}

TEST(ShardMailbox, NoLostUpdateUnderFreeRunningContention) {
  // Producer publishes as fast as it can with no barrier; a concurrent
  // observer watches the slot's version counter (the only part of a
  // slot that may be touched while the producer runs). Versions must be
  // strictly monotonic — a stuck or decreasing version is exactly the
  // "lost HBR-clear" failure mode — and after join the final poll must
  // surface the last published value.
  constexpr std::uint64_t kPublishes = 20000;
  ShardMailbox mbox(std::vector<std::size_t>{32});
  std::atomic<bool> done{false};
  std::uint64_t regressions = 0;
  std::uint64_t observed_max = 0;
  std::thread observer([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t v = mbox.version(0);
      if (v < last) {
        ++regressions;
      }
      last = std::max(last, v);
    }
    observed_max = last;
  });
  for (std::uint64_t i = 1; i <= kPublishes; ++i) {
    BitVector v(32);
    v.set_field(0, 32, i & 0xffffffffu);
    mbox.publish(0, v);
  }
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(regressions, 0u);
  EXPECT_LE(observed_max, kPublishes);
  // join() synchronized: the producer is quiescent, polling is legal.
  std::uint64_t last_seen = 0;
  BitVector out(32);
  ASSERT_TRUE(mbox.poll(0, last_seen, out));
  EXPECT_EQ(last_seen, kPublishes);
  EXPECT_EQ(out.get_field(0, 32), kPublishes & 0xffffffffu);
  EXPECT_FALSE(mbox.poll(0, last_seen, out));
}

TEST(ShardMailbox, SlotsAreIndependent) {
  ShardMailbox mbox(std::vector<std::size_t>{8, 16});
  BitVector a(8);
  a.set_field(0, 8, 0xab);
  mbox.publish(0, a);
  EXPECT_EQ(mbox.version(0), 1u);
  EXPECT_EQ(mbox.version(1), 0u);
  std::uint64_t seen1 = 0;
  BitVector out(16);
  EXPECT_FALSE(mbox.poll(1, seen1, out));
  std::uint64_t seen0 = 0;
  BitVector out0(8);
  ASSERT_TRUE(mbox.poll(0, seen0, out0));
  EXPECT_EQ(out0.get_field(0, 8), 0xabu);
  EXPECT_FALSE(mbox.poll(0, seen0, out0));
}

TEST(ShardMailbox, RejectsWidthMismatchAndBadSlot) {
  ShardMailbox mbox(std::vector<std::size_t>{8});
  EXPECT_THROW(mbox.publish(0, BitVector(16)), Error);
  EXPECT_THROW(mbox.publish(1, BitVector(8)), Error);
  std::uint64_t seen = 0;
  BitVector out(8);
  EXPECT_THROW(mbox.poll(1, seen, out), Error);
}

}  // namespace
}  // namespace tmsim::core
