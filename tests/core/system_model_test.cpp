#include "core/system_model.h"

#include <gtest/gtest.h>

#include "core/example_blocks.h"

namespace tmsim::core {
namespace {

using examples::CombAdderBlock;
using examples::RegAdderBlock;

TEST(SystemModel, BuildAndFinalize) {
  SystemModel m;
  auto blk = std::make_shared<RegAdderBlock>(8, 1);
  const BlockId a = m.add_block(blk, "a");
  const BlockId b = m.add_block(blk, "b");  // shared logic instance
  const LinkId ab = m.add_link("ab", 8, LinkKind::kRegistered);
  const LinkId ba = m.add_link("ba", 8, LinkKind::kRegistered);
  m.bind_output(a, 0, ab);
  m.bind_input(b, 0, ab);
  m.bind_output(b, 0, ba);
  m.bind_input(a, 0, ba);
  m.finalize();
  EXPECT_TRUE(m.finalized());
  EXPECT_EQ(m.num_blocks(), 2u);
  EXPECT_TRUE(m.all_boundaries_registered());
  EXPECT_FALSE(m.is_external_input(ab));
  EXPECT_FALSE(m.is_external_output(ab));
}

TEST(SystemModel, ExternalLinks) {
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(4, 1), "a");
  const LinkId in = m.add_link("in", 4, LinkKind::kCombinational);
  const LinkId out = m.add_link("out", 4, LinkKind::kCombinational);
  m.bind_input(a, 0, in);
  m.bind_output(a, 0, out);
  m.finalize();
  EXPECT_TRUE(m.is_external_input(in));
  EXPECT_TRUE(m.is_external_output(out));
  // A comb link between blocks would break this, but external ones don't.
  EXPECT_TRUE(m.all_boundaries_registered());
}

TEST(SystemModel, RejectsUnboundPorts) {
  SystemModel m;
  m.add_block(std::make_shared<CombAdderBlock>(4, 1), "a");
  EXPECT_THROW(m.finalize(), Error);
}

TEST(SystemModel, RejectsDoubleWriter) {
  SystemModel m;
  auto blk = std::make_shared<CombAdderBlock>(4, 1);
  const BlockId a = m.add_block(blk, "a");
  const BlockId b = m.add_block(blk, "b");
  const LinkId l = m.add_link("l", 4, LinkKind::kCombinational);
  m.bind_output(a, 0, l);
  EXPECT_THROW(m.bind_output(b, 0, l), Error);
}

TEST(SystemModel, RejectsWidthMismatch) {
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(4, 1), "a");
  const LinkId l = m.add_link("l", 5, LinkKind::kCombinational);
  EXPECT_THROW(m.bind_output(a, 0, l), Error);
  EXPECT_THROW(m.bind_input(a, 0, l), Error);
}

TEST(SystemModel, RejectsSecondReaderOnCombinationalLink) {
  // One HBR bit per link position implies a single reader (§4.2).
  SystemModel m;
  auto blk = std::make_shared<CombAdderBlock>(4, 1);
  const BlockId a = m.add_block(blk, "a");
  const BlockId b = m.add_block(blk, "b");
  const BlockId c = m.add_block(blk, "c");
  const LinkId src = m.add_link("src", 4, LinkKind::kCombinational);
  const LinkId o_b = m.add_link("ob", 4, LinkKind::kCombinational);
  const LinkId o_c = m.add_link("oc", 4, LinkKind::kCombinational);
  m.bind_output(a, 0, src);
  m.bind_input(b, 0, src);
  m.bind_input(c, 0, src);
  m.bind_output(b, 0, o_b);
  m.bind_output(c, 0, o_c);
  const LinkId a_in = m.add_link("ain", 4, LinkKind::kCombinational);
  m.bind_input(a, 0, a_in);
  EXPECT_THROW(m.finalize(), Error);
}

TEST(SystemModel, RegisteredLinkAllowsFanout) {
  SystemModel m;
  auto blk = std::make_shared<RegAdderBlock>(4, 1);
  const BlockId a = m.add_block(blk, "a");
  const BlockId b = m.add_block(blk, "b");
  const BlockId c = m.add_block(blk, "c");
  const LinkId src = m.add_link("src", 4, LinkKind::kRegistered);
  m.bind_output(a, 0, src);
  m.bind_input(b, 0, src);
  m.bind_input(c, 0, src);
  const LinkId a_in = m.add_link("ain", 4, LinkKind::kRegistered);
  const LinkId ob = m.add_link("ob", 4, LinkKind::kRegistered);
  const LinkId oc = m.add_link("oc", 4, LinkKind::kRegistered);
  m.bind_input(a, 0, a_in);
  m.bind_output(b, 0, ob);
  m.bind_output(c, 0, oc);
  m.finalize();
  EXPECT_EQ(m.link(src).readers.size(), 2u);
}

TEST(SystemModel, NoMutationAfterFinalize) {
  SystemModel m;
  const BlockId a = m.add_block(std::make_shared<CombAdderBlock>(4, 1), "a");
  const LinkId in = m.add_link("in", 4, LinkKind::kCombinational);
  const LinkId out = m.add_link("out", 4, LinkKind::kCombinational);
  m.bind_input(a, 0, in);
  m.bind_output(a, 0, out);
  m.finalize();
  EXPECT_THROW(m.add_block(std::make_shared<CombAdderBlock>(4, 1), "b"),
               Error);
  EXPECT_THROW(m.add_link("x", 4, LinkKind::kCombinational), Error);
}

}  // namespace
}  // namespace tmsim::core
