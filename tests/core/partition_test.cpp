// Property tests of the block-graph partitioner: every policy must
// produce a balanced, complete, disjoint cover of the blocks, and the
// min-cut-greedy policy must never cut more links than blind
// round-robin on the structured graphs it is meant for (rings, meshes,
// tori).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/example_blocks.h"
#include "core/noc_block.h"
#include "core/partition.h"

namespace tmsim::core {
namespace {

using examples::PipeBlock;

constexpr PartitionPolicy kAllPolicies[] = {PartitionPolicy::kRoundRobin,
                                            PartitionPolicy::kContiguous,
                                            PartitionPolicy::kMinCutGreedy};

/// n PipeBlocks in a directed combinational ring (output depends on
/// registered state, so the ring settles — and the partitioner only
/// looks at structure anyway).
SystemModel make_ring(std::size_t n) {
  SystemModel m;
  auto blk = std::make_shared<PipeBlock>(8, 1);
  std::vector<BlockId> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    blocks.push_back(m.add_block(blk, "p" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const LinkId l =
        m.add_link("l" + std::to_string(i), 8, LinkKind::kCombinational);
    m.bind_output(blocks[i], 0, l);
    m.bind_input(blocks[(i + 1) % n], 0, l);
  }
  m.finalize();
  return m;
}

void check_cover(const SystemModel& model, const Partition& p,
                 std::size_t num_shards) {
  ASSERT_EQ(p.num_shards(), num_shards);
  ASSERT_EQ(p.shard_of.size(), model.num_blocks());
  // Complete and disjoint: every block appears in exactly one shard, and
  // shard_of agrees with the shard lists.
  std::vector<int> seen(model.num_blocks(), 0);
  for (std::size_t s = 0; s < p.num_shards(); ++s) {
    for (const BlockId b : p.shards[s]) {
      ASSERT_LT(b, model.num_blocks());
      ASSERT_EQ(seen[b], 0) << "block " << b << " assigned twice";
      seen[b] = 1;
      ASSERT_EQ(p.shard_of[b], s);
    }
  }
  ASSERT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<std::ptrdiff_t>(model.num_blocks()));
  // Balanced: floor/ceil of n / num_shards.
  const std::size_t lo = model.num_blocks() / num_shards;
  const std::size_t hi = lo + (model.num_blocks() % num_shards ? 1 : 0);
  for (std::size_t s = 0; s < p.num_shards(); ++s) {
    ASSERT_GE(p.shards[s].size(), lo);
    ASSERT_LE(p.shards[s].size(), hi);
  }
}

void check_all_policies_cover(const SystemModel& m) {
  for (const std::size_t k : {1u, 2u, 3u, 4u, 7u}) {
    if (k > m.num_blocks()) {
      continue;
    }
    for (const PartitionPolicy pol : kAllPolicies) {
      SCOPED_TRACE(std::string(partition_policy_name(pol)) + " k=" +
                   std::to_string(k));
      check_cover(m, partition_blocks(m, k, pol), k);
    }
  }
}

TEST(Partition, EveryPolicyCoversMesh) {
  noc::NetworkConfig net;
  net.width = 4;
  net.height = 4;
  net.topology = noc::Topology::kMesh;
  const NocModel nm = build_noc_model(net);
  check_all_policies_cover(nm.model);
}

TEST(Partition, EveryPolicyCoversAsymmetricTorus) {
  noc::NetworkConfig net;
  net.width = 5;
  net.height = 3;
  net.topology = noc::Topology::kTorus;
  const NocModel nm = build_noc_model(net);
  check_all_policies_cover(nm.model);
}

TEST(Partition, EveryPolicyCoversRing) {
  const SystemModel ring = make_ring(17);
  check_all_policies_cover(ring);
}

TEST(Partition, SingleShardCutsNothing) {
  noc::NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = noc::Topology::kTorus;
  const NocModel nm = build_noc_model(net);
  for (const PartitionPolicy pol : kAllPolicies) {
    const Partition p = partition_blocks(nm.model, 1, pol);
    EXPECT_EQ(count_cut_links(nm.model, p), 0u);
  }
}

TEST(Partition, ExternalLinksNeverCountAsCut) {
  // A NoC model has 3 external links per router (local in/out/credit);
  // with one router per shard every *internal* link is cut, but the
  // externals must not be: they have no writer or no readers, so no
  // shard boundary can run through them.
  noc::NetworkConfig net;
  net.width = 2;
  net.height = 2;
  net.topology = noc::Topology::kMesh;
  const NocModel nm = build_noc_model(net);
  const Partition p =
      partition_blocks(nm.model, 4, PartitionPolicy::kRoundRobin);
  std::size_t internal = 0;
  for (LinkId l = 0; l < nm.model.num_links(); ++l) {
    const LinkInfo& info = nm.model.link(l);
    if (info.writer && !info.readers.empty()) {
      ++internal;
    }
  }
  EXPECT_EQ(count_cut_links(nm.model, p), internal);
}

TEST(Partition, GreedyCutsNoMoreThanRoundRobinOnNocs) {
  struct Spec {
    std::size_t w, h;
    noc::Topology topo;
  };
  const Spec specs[] = {{4, 4, noc::Topology::kMesh},
                        {4, 4, noc::Topology::kTorus},
                        {8, 8, noc::Topology::kMesh}};
  for (const Spec& spec : specs) {
    noc::NetworkConfig net;
    net.width = spec.w;
    net.height = spec.h;
    net.topology = spec.topo;
    const NocModel nm = build_noc_model(net);
    for (const std::size_t k : {2u, 4u, 8u}) {
      const std::size_t rr = count_cut_links(
          nm.model,
          partition_blocks(nm.model, k, PartitionPolicy::kRoundRobin));
      const std::size_t greedy = count_cut_links(
          nm.model,
          partition_blocks(nm.model, k, PartitionPolicy::kMinCutGreedy));
      EXPECT_LE(greedy, rr)
          << spec.w << "x" << spec.h
          << (spec.topo == noc::Topology::kMesh ? " mesh" : " torus")
          << " k=" << k;
    }
  }
}

TEST(Partition, GreedyCutsNoMoreThanRoundRobinOnRing) {
  // On a ring, round-robin cuts *every* link for k >= 2; the greedy
  // grower should keep runs together and cut only ~k of them. This
  // pins the policy actually doing its job, not just tying.
  const SystemModel ring = make_ring(24);
  const std::size_t rr = count_cut_links(
      ring, partition_blocks(ring, 4, PartitionPolicy::kRoundRobin));
  const std::size_t greedy = count_cut_links(
      ring, partition_blocks(ring, 4, PartitionPolicy::kMinCutGreedy));
  EXPECT_EQ(rr, 24u);
  EXPECT_LE(greedy, 8u);
}

TEST(Partition, RejectsBadShardCounts) {
  const SystemModel ring = make_ring(4);
  EXPECT_THROW(partition_blocks(ring, 0, PartitionPolicy::kRoundRobin), Error);
  EXPECT_THROW(partition_blocks(ring, 5, PartitionPolicy::kRoundRobin), Error);
}

}  // namespace
}  // namespace tmsim::core
