#include "core/state_memory.h"

#include <gtest/gtest.h>

namespace tmsim::core {
namespace {

TEST(StateMemory, HoldsPerBlockWidths) {
  StateMemory mem({8, 16, 0});
  EXPECT_EQ(mem.num_blocks(), 3u);
  EXPECT_EQ(mem.word_width(), 16u);
  EXPECT_EQ(mem.read_old(0).width(), 8u);
  EXPECT_EQ(mem.read_old(2).width(), 0u);
  EXPECT_EQ(mem.total_bits(), 2u * (8 + 16 + 0));
}

TEST(StateMemory, WriteGoesToNewBankOnly) {
  StateMemory mem({8});
  BitVector v(8);
  v.set_field(0, 8, 0xab);
  mem.write_new(0, v);
  // Old bank still reset.
  EXPECT_EQ(mem.read_old(0).get_field(0, 8), 0u);
  mem.swap_banks();
  EXPECT_EQ(mem.read_old(0).get_field(0, 8), 0xabu);
}

TEST(StateMemory, BankSwapIsAPointerFlip) {
  // §4.1: "this copy action is performed by switching the offset pointer".
  StateMemory mem({4, 4});
  EXPECT_EQ(mem.old_offset(), 0u);
  mem.swap_banks();
  EXPECT_EQ(mem.old_offset(), 2u);
  mem.swap_banks();
  EXPECT_EQ(mem.old_offset(), 0u);
}

TEST(StateMemory, ReEvaluationOverwritesNewSlotSafely) {
  // The old bank must survive any number of re-writes to the new slot —
  // the §4.2 re-evaluation guarantee.
  StateMemory mem({8});
  BitVector old(8);
  old.set_field(0, 8, 0x11);
  mem.load_old(0, old);
  for (std::uint64_t i = 0; i < 5; ++i) {
    BitVector v(8);
    v.set_field(0, 8, 0x20 + i);
    mem.write_new(0, v);
    EXPECT_EQ(mem.read_old(0).get_field(0, 8), 0x11u);
  }
  mem.swap_banks();
  EXPECT_EQ(mem.read_old(0).get_field(0, 8), 0x24u);  // last write wins
}

TEST(StateMemory, AlternatingBanksKeepIndependentData) {
  StateMemory mem({8});
  for (std::uint64_t cycle = 0; cycle < 6; ++cycle) {
    BitVector v(8);
    v.set_field(0, 8, cycle + 1);
    mem.write_new(0, v);
    mem.swap_banks();
    EXPECT_EQ(mem.read_old(0).get_field(0, 8), cycle + 1);
  }
}

TEST(StateMemory, RejectsBadUsage) {
  StateMemory mem({8});
  EXPECT_THROW(mem.read_old(1), Error);
  EXPECT_THROW(mem.write_new(0, BitVector(9)), Error);
  EXPECT_THROW(mem.load_old(0, BitVector(7)), Error);
  EXPECT_THROW(StateMemory({}), Error);
}

}  // namespace
}  // namespace tmsim::core
