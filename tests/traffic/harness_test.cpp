#include "traffic/harness.h"

#include <gtest/gtest.h>

#include "noc/network.h"
#include "traffic/workloads.h"

namespace tmsim::traffic {
namespace {

noc::NetworkConfig net6(std::size_t depth = 4) {
  noc::NetworkConfig net;
  net.width = 6;
  net.height = 6;
  net.topology = noc::Topology::kTorus;
  net.router.queue_depth = depth;
  return net;
}

noc::NetworkConfig net3() {
  // Mesh: XY routing with packet-fixed VCs is deadlock-free on a mesh,
  // so "everything submitted is eventually delivered" is a theorem here
  // (on a torus it is not — see the torus-deadlock regression test).
  noc::NetworkConfig net;
  net.width = 3;
  net.height = 3;
  net.topology = noc::Topology::kMesh;
  return net;
}

TrafficHarness::Options verify_opts(std::uint64_t seed = 1) {
  TrafficHarness::Options o;
  o.seed = seed;
  o.verify_payload = true;
  return o;
}

TEST(Harness, SinglePacketDeliveredIntact) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts());
  const std::size_t id =
      h.submit_packet(PacketClass::kBestEffort, 0, 4, 1, 5);
  h.run(100);
  const PacketRecord& rec = h.records().at(id);
  EXPECT_TRUE(rec.delivered);
  EXPECT_EQ(rec.flits, 6u);
  EXPECT_GT(rec.network_latency(), 0u);
  EXPECT_EQ(h.flits_injected(), 6u);
  EXPECT_EQ(h.flits_delivered(), 6u);
}

TEST(Harness, ManyRandomBePacketsAllDelivered) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts(77));
  h.set_be_load(0.05);
  h.run(2000);
  h.set_be_load(0.0);
  h.run(500);  // drain
  std::size_t delivered = 0;
  for (const auto& r : h.records()) {
    if (r.delivered) ++delivered;
  }
  EXPECT_GT(h.records().size(), 20u);
  EXPECT_EQ(delivered, h.records().size()) << "packets lost in the network";
  EXPECT_EQ(h.flits_injected(), h.flits_delivered());
  EXPECT_EQ(h.source_backlog(), 0u);
}

TEST(Harness, GtStreamsDeliverPeriodically) {
  const auto net = net6();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts(3));
  GtStream s;
  s.src = 0;
  s.dst = 2;
  s.vc = 0;
  s.period = 400;
  s.bytes = kGtPacketBytes;
  h.add_gt_stream(s);
  h.run(1700);
  const LatencySummary sum = h.summarize(PacketClass::kGuaranteedThroughput);
  EXPECT_GE(sum.delivered, 4u);
  // 129 flits over 2 hops, unloaded: close to serialization latency.
  EXPECT_GE(sum.network.min(), 129.0);
  EXPECT_LT(sum.network.max(), 200.0);
}

TEST(Harness, AccessDelayGrowsWhenVcIsBusy) {
  const auto net = net6();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts(4));
  // Two packets back to back on the same VC: the second waits in the
  // source queue while the first drains at 1 flit/cycle.
  h.submit_packet(PacketClass::kBestEffort, 0, 1, 0, 64);
  h.submit_packet(PacketClass::kBestEffort, 0, 1, 0, 5);
  h.run(300);
  const auto& r1 = h.records()[1];
  ASSERT_TRUE(r1.delivered);
  EXPECT_GE(r1.access_delay(), 60u);
}

TEST(Harness, WormholeKeepsPacketsContiguousPerVc) {
  // verify_payload checks flit-exact reassembly; two sources hammering
  // the same destination VC exercises the output-VC wormhole lock.
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts(5));
  for (int i = 0; i < 8; ++i) {
    h.submit_packet(PacketClass::kBestEffort, 0, 4, 2, 5);
    h.submit_packet(PacketClass::kBestEffort, 8, 4, 2, 5);
    h.submit_packet(PacketClass::kBestEffort, 3, 4, 2, 5);
  }
  h.run(800);
  for (const auto& r : h.records()) {
    EXPECT_TRUE(r.delivered);
  }
}

TEST(Harness, CreditsNeverExceedQueueDepth) {
  // Runs with payload verification on, which also asserts the NI credit
  // invariants internally; this is a smoke test at a load near saturation.
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim, verify_opts(6));
  h.set_be_load(0.3, {0, 1, 2, 3});
  h.run(1500);
  EXPECT_GT(h.flits_delivered(), 500u);
}

TEST(Harness, OverloadFlagTripsUnderExcessLoad) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness::Options opts;
  opts.seed = 9;
  opts.overload_threshold = 200;
  TrafficHarness h(sim, opts);
  h.set_be_load(0.95, {0, 1, 2, 3});
  h.run(3000);
  EXPECT_TRUE(h.overloaded());
}

TEST(Harness, StopOnOverloadHaltsEarly) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness::Options opts;
  opts.seed = 9;
  opts.overload_threshold = 100;
  opts.stop_on_overload = true;
  TrafficHarness h(sim, opts);
  h.set_be_load(0.95, {0, 1, 2, 3});
  h.run(5000);
  EXPECT_TRUE(h.overloaded());
  EXPECT_LT(sim.cycle(), 5000u);
}

TEST(Harness, WarmupExcludesEarlyPackets) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness::Options opts;
  opts.seed = 10;
  opts.warmup_cycles = 1000;
  TrafficHarness h(sim, opts);
  h.submit_packet(PacketClass::kBestEffort, 0, 4, 0, 5);
  h.run(1500);
  EXPECT_EQ(h.summarize(PacketClass::kBestEffort).delivered, 0u);
}

TEST(Harness, RejectsInvalidSubmissions) {
  const auto net = net3();
  noc::DirectNocSimulation sim(net);
  TrafficHarness h(sim);
  EXPECT_THROW(h.submit_packet(PacketClass::kBestEffort, 0, 0, 0, 5),
               tmsim::Error);  // src == dst
  EXPECT_THROW(h.submit_packet(PacketClass::kBestEffort, 0, 99, 0, 5),
               tmsim::Error);
  EXPECT_THROW(h.submit_packet(PacketClass::kBestEffort, 0, 1, 7, 5),
               tmsim::Error);
}

TEST(GtValidation, DisjointStreamsPass) {
  const auto net = net6();
  const auto streams = fig1_gt_streams(net, 1300);
  EXPECT_EQ(streams.size(), 36u);  // one per node
}

TEST(GtValidation, SharedLinkVcRejected) {
  const auto net = net6();
  std::vector<GtStream> streams;
  GtStream a;
  a.src = 0;
  a.dst = 2;
  a.vc = 0;
  a.period = 100;
  GtStream b = a;
  b.src = 1;
  b.dst = 3;  // overlaps link 1→2 east on the same VC
  streams = {a, b};
  EXPECT_THROW(TrafficHarness::validate_gt_streams(net, streams),
               tmsim::Error);
  b.vc = 1;
  streams = {a, b};
  TrafficHarness::validate_gt_streams(net, streams);  // disjoint now
}

TEST(GtGuarantee, BoundFormula) {
  noc::RouterConfig cfg;
  EXPECT_EQ(gt_latency_guarantee(cfg, 129, 2), 5u * 129 + 5 * 2);
}

}  // namespace
}  // namespace tmsim::traffic
