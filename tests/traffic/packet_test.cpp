#include "traffic/packet.h"

#include <gtest/gtest.h>

namespace tmsim::traffic {
namespace {

TEST(Packet, PayloadFlitsForPaperSizes) {
  EXPECT_EQ(payload_flits_for_bytes(kGtPacketBytes), 128u);
  EXPECT_EQ(payload_flits_for_bytes(kBePacketBytes), 5u);
  EXPECT_EQ(payload_flits_for_bytes(1), 1u);
  EXPECT_EQ(payload_flits_for_bytes(3), 2u);
}

TEST(Packet, GtPacketIs129Flits) {
  const auto flits =
      build_packet(1, 2, 0, 7, payload_flits_for_bytes(kGtPacketBytes), 0);
  EXPECT_EQ(flits.size(), 129u);
  EXPECT_EQ(flits.front().type, noc::FlitType::kHead);
  EXPECT_EQ(flits.back().type, noc::FlitType::kTail);
  for (std::size_t i = 1; i + 1 < flits.size(); ++i) {
    EXPECT_EQ(flits[i].type, noc::FlitType::kBody);
  }
}

TEST(Packet, BePacketIs6Flits) {
  const auto flits =
      build_packet(0, 0, 3, 1, payload_flits_for_bytes(kBePacketBytes), 0);
  EXPECT_EQ(flits.size(), 6u);
}

TEST(Packet, HeadEncodesRoutingFields) {
  const auto flits = build_packet(4, 5, 2, 33, 1, 0);
  const noc::HeadFields h = noc::decode_head(flits[0].payload);
  EXPECT_EQ(h.dest_x, 4u);
  EXPECT_EQ(h.dest_y, 5u);
  EXPECT_EQ(h.vc, 2u);
  EXPECT_EQ(h.seq, 33u);
}

TEST(Packet, PayloadIsPositionDependent) {
  const auto flits = build_packet(0, 0, 0, 0, 4, 0x1111);
  EXPECT_NE(flits[1].payload, flits[2].payload);
  EXPECT_NE(flits[2].payload, flits[3].payload);
  // Same fill reproduces the same packet.
  EXPECT_EQ(build_packet(0, 0, 0, 0, 4, 0x1111), flits);
}

TEST(Packet, MinimumPacketIsHeadPlusTail) {
  const auto flits = build_packet(0, 0, 0, 0, 1, 0);
  EXPECT_EQ(flits.size(), 2u);
  EXPECT_EQ(flits[1].type, noc::FlitType::kTail);
  EXPECT_THROW(build_packet(0, 0, 0, 0, 0, 0), tmsim::Error);
}

TEST(PacketRecord, LatencyArithmetic) {
  PacketRecord r;
  r.created = 10;
  r.injected_head = 25;
  r.delivered_tail = 100;
  EXPECT_EQ(r.access_delay(), 15u);
  EXPECT_EQ(r.network_latency(), 75u);
  EXPECT_EQ(r.total_latency(), 90u);
}

}  // namespace
}  // namespace tmsim::traffic
