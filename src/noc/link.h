// Link signals: the unbuffered wires between routers (§4.2).
//
// Each physical channel between two routers carries two independent signal
// groups, modeled as two directed links because each has a single writer:
//
//  - the FORWARD group (upstream router → downstream router):
//      [20] valid, [19:18] vc, [17:0] flit            — 21 bits
//  - the CREDIT group (downstream router → upstream router):
//      one wire per VC, set for one cycle when the downstream router pops a
//      flit from that VC's input queue                — num_vcs (≤4) bits
//
// Both groups are *combinational* outputs of the writer (functions of its
// registered state only): the forward flit is whatever the crossbar grants
// this cycle, the credit wire is the pop decision of the downstream
// arbiter. This is exactly the paper's "combinatorial boundary": no fully
// registered cross-section exists between routers.
//
// Encoding discipline: when valid==0 the vc and flit fields are forced to
// zero. The HBR mechanism detects changed link values by bit comparison,
// so every simulator must produce identical encodings, not just logically
// equivalent ones.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "noc/config.h"
#include "noc/flit.h"

namespace tmsim::noc {

/// Forward link group width in bits.
inline constexpr std::size_t kForwardBits = 1 + 2 + kFlitBits;  // 21

struct LinkForward {
  bool valid = false;
  std::uint8_t vc = 0;
  Flit flit;

  friend bool operator==(const LinkForward&, const LinkForward&) = default;
};

/// Canonical idle value (all wires low).
inline LinkForward idle_forward() { return LinkForward{}; }

inline std::uint32_t encode_forward(const LinkForward& f) {
  if (!f.valid) {
    TMSIM_CHECK_MSG(f.vc == 0 && f.flit == Flit{},
                    "invalid forward link must be all-zero encoded");
    return 0;
  }
  TMSIM_CHECK_MSG(f.vc < 4, "vc out of range");
  return (std::uint32_t{1} << 20) | (std::uint32_t{f.vc} << kFlitBits) |
         encode_flit(f.flit);
}

inline LinkForward decode_forward(std::uint32_t bits) {
  TMSIM_CHECK_MSG((bits >> kForwardBits) == 0, "forward link encoding too wide");
  LinkForward f;
  f.valid = (bits >> 20) & 1u;
  f.vc = static_cast<std::uint8_t>((bits >> kFlitBits) & 0x3u);
  f.flit = decode_flit(bits & ((1u << kFlitBits) - 1));
  return f;
}

/// Credit wires: bit v set == one credit returned on VC v this cycle.
struct CreditWires {
  std::uint8_t mask = 0;

  bool get(std::size_t vc) const { return (mask >> vc) & 1u; }
  void set(std::size_t vc) { mask = static_cast<std::uint8_t>(mask | (1u << vc)); }

  friend bool operator==(const CreditWires&, const CreditWires&) = default;
};

inline std::uint32_t encode_credit(const CreditWires& c) { return c.mask; }

inline CreditWires decode_credit(std::uint32_t bits, std::size_t num_vcs) {
  TMSIM_CHECK_MSG((bits >> num_vcs) == 0, "credit encoding too wide");
  return CreditWires{static_cast<std::uint8_t>(bits)};
}

}  // namespace tmsim::noc
