#include "noc/router_state.h"

#include <string>

namespace tmsim::noc {

namespace {
constexpr const char* kCatQueues = "input queues";
constexpr const char* kCatControl = "control and arbitration";

std::string qname(std::size_t q, const char* what) {
  return "q" + std::to_string(q) + "." + what;
}
}  // namespace

RouterState::RouterState(const RouterConfig& cfg) {
  cfg.validate();
  queues.reserve(cfg.num_queues());
  for (std::size_t q = 0; q < cfg.num_queues(); ++q) {
    queues.emplace_back(cfg.queue_depth);
  }
  out_vcs.resize(cfg.num_queues());
  for (auto& ovc : out_vcs) {
    // All downstream queues start empty: full credit.
    ovc.credits = static_cast<std::uint8_t>(cfg.queue_depth);
  }
  rr_ptr.assign(kPorts, 0);
}

RouterStateCodec::RouterStateCodec(const RouterConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  const std::size_t nq = cfg_.num_queues();

  f_slot_.resize(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    for (std::size_t s = 0; s < cfg_.queue_depth; ++s) {
      f_slot_[q].push_back(layout_.add_field(
          kCatQueues, qname(q, ("slot" + std::to_string(s)).c_str()),
          kFlitBits));
    }
  }
  for (std::size_t q = 0; q < nq; ++q) {
    f_rd_.push_back(layout_.add_field(kCatControl, qname(q, "rd"),
                                      cfg_.ptr_bits()));
    f_wr_.push_back(layout_.add_field(kCatControl, qname(q, "wr"),
                                      cfg_.ptr_bits()));
    f_full_.push_back(layout_.add_field(kCatControl, qname(q, "full"), 1));
    f_locked_.push_back(layout_.add_field(kCatControl, qname(q, "locked"), 1));
    f_outport_.push_back(
        layout_.add_field(kCatControl, qname(q, "out_port"), 3));
  }
  for (std::size_t o = 0; o < nq; ++o) {
    f_busy_.push_back(
        layout_.add_field(kCatControl, "ovc" + std::to_string(o) + ".busy", 1));
    f_owner_.push_back(layout_.add_field(
        kCatControl, "ovc" + std::to_string(o) + ".owner", 3));
    f_credits_.push_back(layout_.add_field(
        kCatControl, "ovc" + std::to_string(o) + ".credits",
        cfg_.credit_bits()));
  }
  for (std::size_t p = 0; p < kPorts; ++p) {
    f_rr_.push_back(layout_.add_field(
        kCatControl, "arb" + std::to_string(p) + ".rr", cfg_.rr_bits()));
  }
}

BitVector RouterStateCodec::serialize(const RouterState& s) const {
  BitVector word(layout_.total_bits());
  serialize_into(s, word);
  return word;
}

void RouterStateCodec::serialize_into(const RouterState& s,
                                      BitVector& word) const {
  const std::size_t nq = cfg_.num_queues();
  TMSIM_CHECK_MSG(s.queues.size() == nq && s.out_vcs.size() == nq &&
                      s.rr_ptr.size() == kPorts,
                  "router state shape mismatch");
  TMSIM_CHECK_MSG(word.width() == layout_.total_bits(),
                  "state word width mismatch");
  for (std::size_t q = 0; q < nq; ++q) {
    const QueueState& qs = s.queues[q];
    TMSIM_CHECK_MSG(qs.fifo.capacity() == cfg_.queue_depth,
                    "queue depth mismatch");
    for (std::size_t slot = 0; slot < cfg_.queue_depth; ++slot) {
      layout_.write(word, f_slot_[q][slot], encode_flit(qs.fifo.slot(slot)));
    }
    layout_.write(word, f_rd_[q], qs.fifo.read_pos());
    layout_.write(word, f_wr_[q], qs.fifo.write_pos());
    layout_.write(word, f_full_[q], qs.fifo.full() ? 1 : 0);
    layout_.write(word, f_locked_[q], qs.locked ? 1 : 0);
    layout_.write(word, f_outport_[q], static_cast<std::uint64_t>(qs.out_port));
  }
  for (std::size_t o = 0; o < nq; ++o) {
    const OutVcState& ovc = s.out_vcs[o];
    layout_.write(word, f_busy_[o], ovc.busy ? 1 : 0);
    layout_.write(word, f_owner_[o], ovc.owner_port);
    layout_.write(word, f_credits_[o], ovc.credits);
  }
  for (std::size_t p = 0; p < kPorts; ++p) {
    layout_.write(word, f_rr_[p], s.rr_ptr[p]);
  }
}

RouterState RouterStateCodec::deserialize(const BitVector& word) const {
  RouterState s(cfg_);
  deserialize_into(word, s);
  return s;
}

void RouterStateCodec::deserialize_into(const BitVector& word,
                                        RouterState& s) const {
  TMSIM_CHECK_MSG(word.width() == layout_.total_bits(),
                  "state word width mismatch");
  const std::size_t nq = cfg_.num_queues();
  TMSIM_CHECK_MSG(s.queues.size() == nq && s.out_vcs.size() == nq,
                  "router state shape mismatch");
  for (std::size_t q = 0; q < nq; ++q) {
    QueueState& qs = s.queues[q];
    for (std::size_t slot = 0; slot < cfg_.queue_depth; ++slot) {
      qs.fifo.slot(slot) = decode_flit(
          static_cast<std::uint32_t>(layout_.read(word, f_slot_[q][slot])));
    }
    const auto rd = static_cast<std::size_t>(layout_.read(word, f_rd_[q]));
    const auto wr = static_cast<std::size_t>(layout_.read(word, f_wr_[q]));
    const bool full = layout_.read(word, f_full_[q]) != 0;
    const std::size_t size =
        full ? cfg_.queue_depth
             : (wr + cfg_.queue_depth - rd) % cfg_.queue_depth;
    qs.fifo.restore(rd, wr, size);
    qs.locked = layout_.read(word, f_locked_[q]) != 0;
    qs.out_port = static_cast<Port>(layout_.read(word, f_outport_[q]));
  }
  for (std::size_t o = 0; o < nq; ++o) {
    OutVcState& ovc = s.out_vcs[o];
    ovc.busy = layout_.read(word, f_busy_[o]) != 0;
    ovc.owner_port = static_cast<std::uint8_t>(layout_.read(word, f_owner_[o]));
    ovc.credits = static_cast<std::uint8_t>(layout_.read(word, f_credits_[o]));
  }
  for (std::size_t p = 0; p < kPorts; ++p) {
    s.rr_ptr[p] = static_cast<std::uint8_t>(layout_.read(word, f_rr_[p]));
  }
}

BitVector RouterStateCodec::reset_word() const {
  return serialize(RouterState(cfg_));
}

bool states_equal(const RouterStateCodec& codec, const RouterState& a,
                  const RouterState& b) {
  return codec.serialize(a) == codec.serialize(b);
}

}  // namespace tmsim::noc
