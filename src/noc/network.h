// Network-level simulation interface and the golden reference simulator.
//
// NocSimulation is the facade every engine implements:
//   - the sequential time-multiplexed simulator (core/seq_noc.h) — the
//     paper's method,
//   - the coarse SystemC-substitute model (sysc/),
//   - the signal-level structural model (rtlsim/) — the VHDL stand-in,
//   - DirectNocSimulation below — a deliberately simple two-phase
//     (all-G-then-all-F) evaluator used as the golden model in tests.
//
// The external surface of the network is the per-router local port: the
// processing element / stimuli interface drives the local input link and
// observes the local output link plus the credits the router returns for
// its local input queues. Everything else is internal wiring.
//
// Local-port NI convention: the network interface consumes delivered flits
// unconditionally (the FPGA's output cyclic buffers always accept, §5.2)
// and returns the credit combinationally, so the router's local output
// credit counters stay topped up. Injection is governed by the per-VC
// credit counters the NI keeps for the router's local *input* queues.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/bit_vector.h"
#include "common/types.h"
#include "noc/config.h"
#include "noc/link.h"
#include "noc/router_logic.h"
#include "noc/router_state.h"
#include "noc/topology.h"

namespace tmsim::noc {

/// Where a router's input port gets its forward signal from.
struct UpstreamPort {
  bool connected = false;   ///< false on mesh boundaries (tied to idle)
  std::size_t router = 0;   ///< driving router index
  Port port = Port::kLocal; ///< driving router's *output* port
};

/// Driver of router `r`'s input port `p` (p != kLocal): the neighbour whose
/// output port faces us, or unconnected on a mesh boundary.
UpstreamPort upstream_of(const NetworkConfig& net, std::size_t r, Port p);

/// Abstract cycle-accurate NoC simulation (one engine instance per run).
class NocSimulation {
 public:
  virtual ~NocSimulation() = default;

  virtual const NetworkConfig& config() const = 0;

  /// Drives router `r`'s local input link for the next step(). Inputs
  /// reset to idle after every step.
  virtual void set_local_input(std::size_t r, const LinkForward& f) = 0;

  /// Advances one system cycle.
  virtual void step() = 0;

  /// Flit delivered on router `r`'s local output during the last step().
  virtual LinkForward local_output(std::size_t r) const = 0;

  /// Credits router `r` returned for its local input queues during the
  /// last step() (the NI adds these back to its injection credit pool).
  virtual CreditWires local_input_credits(std::size_t r) const = 0;

  /// Bit-exact serialized register state of router `r` (for cross-engine
  /// equivalence checks).
  virtual BitVector router_state_word(std::size_t r) const = 0;

  /// System cycles stepped so far.
  virtual SystemCycle cycle() const = 0;
};

/// Validates the credit flow-control invariant on *committed* state: for
/// every connected output VC, credits + downstream queue occupancy ==
/// queue_depth, and every local-port credit counter is full (the NI echo
/// returns credits in-cycle). Transient evaluations inside the dynamic
/// schedule may violate this (and are discarded, §4.2); committed states
/// never may. Throws with a precise location on violation.
void check_credit_invariant(const NocSimulation& sim);

/// Golden reference: computes G for every router, then F for every router,
/// with plain struct state. Trivially correct by construction (no
/// scheduling machinery), used to validate the real engines.
class DirectNocSimulation : public NocSimulation {
 public:
  explicit DirectNocSimulation(const NetworkConfig& net);

  const NetworkConfig& config() const override { return net_; }
  void set_local_input(std::size_t r, const LinkForward& f) override;
  void step() override;
  LinkForward local_output(std::size_t r) const override;
  CreditWires local_input_credits(std::size_t r) const override;
  BitVector router_state_word(std::size_t r) const override;
  SystemCycle cycle() const override { return cycle_; }

  /// Direct state access for white-box tests.
  const RouterState& state(std::size_t r) const { return states_.at(r); }

 private:
  NetworkConfig net_;
  RouterStateCodec codec_;
  std::vector<RouterState> states_;
  std::vector<RouterEnv> envs_;
  std::vector<UpstreamPort> upstream_;  // [router * kPorts + port]
  std::vector<LinkForward> local_in_;
  std::vector<LinkForward> local_out_;
  std::vector<CreditWires> local_credits_;
  // Per-step scratch, reused to keep the golden reference allocation-free
  // in steady state.
  std::vector<RouterOutputs> outs_scratch_;
  std::vector<Grants> grants_scratch_;
  std::vector<RouterState> next_scratch_;
  SystemCycle cycle_ = 0;
};

}  // namespace tmsim::noc
