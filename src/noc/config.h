// Static configuration of the router and the network.
//
// The paper's simulator is parameterized in software over network size
// (1×2 up to 16×16 = 256 routers) and topology (torus or mesh, §7.1), and
// the authors explicitly want to re-run Fig. 1 with different queue depths
// (§3: "redo the simulation of Figure 1 with different buffer sizes").
// Everything below is therefore a runtime parameter, not a template knob.
#pragma once

#include <cstddef>

#include "common/error.h"
#include "common/types.h"

namespace tmsim::noc {

/// The router has five ports: one local (to the processing element) and
/// four directions of the 2-D grid.
inline constexpr std::size_t kPorts = 5;

enum class Port : std::uint8_t {
  kLocal = 0,
  kNorth = 1,
  kEast = 2,
  kSouth = 3,
  kWest = 4,
};

inline const char* port_name(Port p) {
  switch (p) {
    case Port::kLocal: return "local";
    case Port::kNorth: return "north";
    case Port::kEast: return "east";
    case Port::kSouth: return "south";
    case Port::kWest: return "west";
  }
  return "?";
}

enum class Topology : std::uint8_t { kTorus = 0, kMesh = 1 };

/// Per-router microarchitecture parameters.
struct RouterConfig {
  /// Virtual channels per port (paper: 4).
  std::size_t num_vcs = 4;
  /// Flit slots per VC input queue (paper: 4 in the FPGA build; Fig. 1 was
  /// produced with depth 2).
  std::size_t queue_depth = 4;

  std::size_t num_queues() const { return kPorts * num_vcs; }
  /// Width of a queue read/write pointer register.
  std::size_t ptr_bits() const { return tmsim::bits_for(queue_depth); }
  /// Width of a downstream-credit counter register (counts 0..queue_depth).
  std::size_t credit_bits() const { return tmsim::bits_for(queue_depth + 1); }
  /// Width of a round-robin arbiter pointer (indexes the 20 queues).
  std::size_t rr_bits() const { return tmsim::bits_for(num_queues()); }

  void validate() const {
    TMSIM_CHECK_MSG(num_vcs >= 1 && num_vcs <= 4, "num_vcs must be 1..4");
    TMSIM_CHECK_MSG(queue_depth >= 1 && queue_depth <= 15,
                    "queue_depth must be 1..15");
  }

  friend bool operator==(const RouterConfig&, const RouterConfig&) = default;
};

/// Whole-network parameters.
struct NetworkConfig {
  std::size_t width = 6;   ///< routers in x
  std::size_t height = 6;  ///< routers in y
  Topology topology = Topology::kTorus;
  RouterConfig router;

  std::size_t num_routers() const { return width * height; }

  void validate() const {
    router.validate();
    TMSIM_CHECK_MSG(width >= 1 && width <= 16, "width must be 1..16");
    TMSIM_CHECK_MSG(height >= 1 && height <= 16, "height must be 1..16");
    TMSIM_CHECK_MSG(num_routers() >= 2 && num_routers() <= 256,
                    "network must have 2..256 routers (paper's range)");
  }

  /// Structural equality — what "same topology" means for the farm's
  /// engine cache and for TrafficHarness::rebind validation.
  friend bool operator==(const NetworkConfig&, const NetworkConfig&) = default;
};

}  // namespace tmsim::noc
