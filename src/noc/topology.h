// Grid topology: coordinates, neighbour relations, and XY routing.
//
// The paper's simulator supports torus and mesh topologies, selected by
// software ("The topology of a network can either be a torus or a mesh,
// which is determined by software", §7.1). Routing is deterministic
// dimension-order (X first), with shortest-direction wrap on the torus.
#pragma once

#include <cstddef>
#include <optional>

#include "noc/config.h"

namespace tmsim::noc {

/// Router coordinate in the 2-D grid; (0,0) is the north-west corner,
/// x grows east, y grows south.
struct Coord {
  std::size_t x = 0;
  std::size_t y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Router index in row-major order.
inline std::size_t router_index(const NetworkConfig& net, Coord c) {
  return c.y * net.width + c.x;
}

inline Coord router_coord(const NetworkConfig& net, std::size_t index) {
  return Coord{index % net.width, index / net.width};
}

/// Opposite direction port (North↔South, East↔West). Local has no opposite.
Port opposite(Port p);

/// Neighbour of router `c` through output port `p`, or nullopt when the
/// port is unconnected (mesh boundary). `p` must not be kLocal.
std::optional<Coord> neighbour(const NetworkConfig& net, Coord c, Port p);

/// Deterministic XY routing: the output port a HEAD flit at router `here`
/// takes towards `dest`. Returns kLocal when dest == here. On a torus the
/// shorter wrap direction is chosen; exact ties go east/south.
Port route_xy(const NetworkConfig& net, Coord here, Coord dest);

/// Number of hops (routers traversed minus one... i.e. links crossed)
/// that XY routing takes from `src` to `dst`.
std::size_t route_hops(const NetworkConfig& net, Coord src, Coord dst);

}  // namespace tmsim::noc
