// LockstepNocSimulation: runs several engines side by side on identical
// stimuli and asserts bit-identical behaviour after every system cycle.
//
// This is the reproduction's instrument for the paper's central claim —
// "without compromising the cycle and bit level accuracy" (§1/§8): the
// sequential time-multiplexed simulator, the SystemC-substitute model and
// the signal-level structural model must agree on every link value and
// every register bit, every cycle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/network.h"

namespace tmsim::noc {

class LockstepNocSimulation : public NocSimulation {
 public:
  /// Takes ownership of at least one engine; all must share one config.
  explicit LockstepNocSimulation(
      std::vector<std::unique_ptr<NocSimulation>> sims)
      : sims_(std::move(sims)) {
    TMSIM_CHECK_MSG(!sims_.empty(), "lockstep needs at least one engine");
    for (const auto& s : sims_) {
      TMSIM_CHECK_MSG(s != nullptr, "null engine");
      TMSIM_CHECK_MSG(s->config().num_routers() ==
                          sims_[0]->config().num_routers(),
                      "engines simulate different networks");
    }
  }

  const NetworkConfig& config() const override { return sims_[0]->config(); }

  void set_local_input(std::size_t r, const LinkForward& f) override {
    for (auto& s : sims_) {
      s->set_local_input(r, f);
    }
  }

  void step() override {
    for (auto& s : sims_) {
      s->step();
    }
    compare();
  }

  LinkForward local_output(std::size_t r) const override {
    return sims_[0]->local_output(r);
  }
  CreditWires local_input_credits(std::size_t r) const override {
    return sims_[0]->local_input_credits(r);
  }
  BitVector router_state_word(std::size_t r) const override {
    return sims_[0]->router_state_word(r);
  }
  SystemCycle cycle() const override { return sims_[0]->cycle(); }

  NocSimulation& engine(std::size_t i) { return *sims_.at(i); }
  std::size_t num_engines() const { return sims_.size(); }

 private:
  void compare() const {
    const std::size_t n = config().num_routers();
    for (std::size_t i = 1; i < sims_.size(); ++i) {
      for (std::size_t r = 0; r < n; ++r) {
        TMSIM_CHECK_MSG(
            sims_[i]->local_output(r) == sims_[0]->local_output(r),
            "engine " + std::to_string(i) + " local output differs at router " +
                std::to_string(r) + ", cycle " +
                std::to_string(sims_[0]->cycle()));
        TMSIM_CHECK_MSG(
            sims_[i]->local_input_credits(r) ==
                sims_[0]->local_input_credits(r),
            "engine " + std::to_string(i) + " local credits differ at router " +
                std::to_string(r) + ", cycle " +
                std::to_string(sims_[0]->cycle()));
        TMSIM_CHECK_MSG(
            sims_[i]->router_state_word(r) == sims_[0]->router_state_word(r),
            "engine " + std::to_string(i) +
                " register state differs at router " + std::to_string(r) +
                ", cycle " + std::to_string(sims_[0]->cycle()) +
                " (bit-accuracy violation)");
      }
    }
  }

  std::vector<std::unique_ptr<NocSimulation>> sims_;
};

}  // namespace tmsim::noc
