// StateLayout: the paper's "register extraction" (§4, §5.2).
//
// "The only modification is the extraction of all registers in the design
//  and their mapping on a memory position."
//
// A StateLayout assigns every register of a block a named (offset, width)
// slot in the block's state-memory word, grouped into categories so that
// bench/table1 can regenerate the paper's Table 1 (register bits per
// router, per category) directly from the implementation instead of
// quoting it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"

namespace tmsim::noc {

/// One named register slot inside a state word.
struct FieldSlot {
  std::string name;
  std::string category;
  std::size_t offset = 0;
  std::size_t width = 0;
};

/// Append-only builder of a block's register file layout.
class StateLayout {
 public:
  /// Reserves `width` bits for register `name` in `category`; returns the
  /// field index used with read/write below.
  std::size_t add_field(std::string category, std::string name,
                        std::size_t width) {
    TMSIM_CHECK_MSG(width >= 1 && width <= 64, "field width must be 1..64");
    FieldSlot slot{std::move(name), std::move(category), total_bits_, width};
    total_bits_ += width;
    fields_.push_back(std::move(slot));
    return fields_.size() - 1;
  }

  std::size_t total_bits() const { return total_bits_; }
  const std::vector<FieldSlot>& fields() const { return fields_; }

  const FieldSlot& field(std::size_t index) const { return fields_.at(index); }

  std::uint64_t read(const BitVector& word, std::size_t index) const {
    const FieldSlot& f = fields_.at(index);
    return word.get_field(f.offset, f.width);
  }

  void write(BitVector& word, std::size_t index, std::uint64_t value) const {
    const FieldSlot& f = fields_.at(index);
    word.set_field(f.offset, f.width, value);
  }

  /// Total register bits per category — the rows of the paper's Table 1.
  std::map<std::string, std::size_t> bits_by_category() const {
    std::map<std::string, std::size_t> out;
    for (const auto& f : fields_) {
      out[f.category] += f.width;
    }
    return out;
  }

 private:
  std::vector<FieldSlot> fields_;
  std::size_t total_bits_ = 0;
};

}  // namespace tmsim::noc
