// The Kavaldjiev router's combinational logic as pure functions.
//
// This is the reproduction's single source of truth for router behaviour.
// All three simulation engines — the sequential time-multiplexed simulator
// (core/), the coarse-grained SystemC-substitute model (sysc/) and the
// signal-level structural model (rtlsim/) — call these functions, which
// mirrors the paper's premise that the *same RTL* runs under different
// simulation harnesses ("almost unmodified VHDL sources", §4).
//
// Timing model of the router (one system cycle):
//   G(state):  outputs — crossbar grants, forwarded flits, credit returns —
//              are combinational functions of the *registered* state only
//              (queue contents, route locks, credit counters, round-robin
//              pointers). They are stable for the whole system cycle.
//   F(state, inputs): the next registered state consumes the *current*
//              cycle's link values driven by the neighbouring routers'
//              G — the combinational boundary of §4.2.
//
// Microarchitecture (§2.1):
//  - 5 ports × num_vcs input queues; the 20 queue outputs connect directly
//    to a 20×5 asymmetric crossbar (no per-port multiplexing).
//  - 5 round-robin arbiters, one per crossbar output.
//  - wormhole routing: a HEAD flit locks (queue → output port) and
//    (output VC → owner queue) until its TAIL passes.
//  - VC flow control: per-output-VC credit counters track free slots in
//    the downstream queue; invariant: credits + downstream occupancy ==
//    queue depth, every cycle.
#pragma once

#include <array>
#include <optional>

#include "noc/config.h"
#include "noc/link.h"
#include "noc/router_state.h"
#include "noc/topology.h"

namespace tmsim::noc {

/// Per-router constants: where this router sits and in which network.
struct RouterEnv {
  const NetworkConfig* net = nullptr;
  Coord coord;
};

/// Link values arriving at the router this cycle.
struct RouterInputs {
  /// Forward group per *input* port (flit coming in from that direction).
  std::array<LinkForward, kPorts> fwd_in{};
  /// Credit group per *output* port (credits returned by the downstream
  /// router reached through that port).
  std::array<CreditWires, kPorts> credit_in{};

  friend bool operator==(const RouterInputs&, const RouterInputs&) = default;
};

/// Link values the router drives this cycle (all combinational).
struct RouterOutputs {
  /// Forward group per *output* port.
  std::array<LinkForward, kPorts> fwd_out{};
  /// Credit group per *input* port (returned to the upstream router).
  std::array<CreditWires, kPorts> credit_out{};

  friend bool operator==(const RouterOutputs&, const RouterOutputs&) = default;
};

/// Crossbar grant per output port: granted queue index, or -1.
struct Grants {
  std::array<int, kPorts> granted;

  Grants() { granted.fill(-1); }
  friend bool operator==(const Grants&, const Grants&) = default;
};

/// Output port requested by queue `q`'s head flit: the locked route while a
/// packet is in flight, otherwise the XY route of the HEAD flit. nullopt
/// when the queue is empty.
std::optional<Port> queue_request(const RouterState& s, std::size_t q,
                                  const RouterEnv& env);

/// True when queue `q` may send this cycle: it has a flit, the requested
/// output VC has a credit, and the wormhole lock allows it (free VC for a
/// HEAD, owned VC for BODY/TAIL).
bool queue_eligible(const RouterState& s, std::size_t q, const RouterEnv& env);

/// Round-robin arbitration for output port `o` over all queues.
int arbiter_grant(const RouterState& s, Port o, const RouterEnv& env);

/// All five arbiters.
Grants compute_grants(const RouterState& s, const RouterEnv& env);

/// G(state): the link values driven by the router, given `grants`
/// (pass the result of compute_grants; split so the structural model can
/// evaluate arbiters and muxes as separate processes).
RouterOutputs compute_outputs(const RouterState& s, const Grants& grants,
                              const RouterEnv& env);

/// Convenience: compute_outputs(compute_grants(s)).
RouterOutputs compute_outputs(const RouterState& s, const RouterEnv& env);

/// F(state, inputs): the registered state after the clock edge.
RouterState compute_next_state(const RouterState& s, const RouterInputs& in,
                               const RouterEnv& env);

/// F with precomputed grants (shared with compute_outputs in engines that
/// evaluate G and F together, as the FPGA does in one delta cycle).
RouterState compute_next_state(const RouterState& s, const Grants& grants,
                               const RouterInputs& in, const RouterEnv& env);

/// Allocation-free F for the simulation hot path: assigns `next = s` and
/// mutates in place (`next` must have the same shape; its buffers are
/// reused across calls).
void compute_next_state_into(const RouterState& s, const Grants& grants,
                             const RouterInputs& in, const RouterEnv& env,
                             RouterState& next);

}  // namespace tmsim::noc
