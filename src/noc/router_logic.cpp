#include "noc/router_logic.h"

namespace tmsim::noc {

namespace {

std::size_t in_port_of(std::size_t q, const RouterConfig& cfg) {
  return q / cfg.num_vcs;
}

std::size_t vc_of(std::size_t q, const RouterConfig& cfg) {
  return q % cfg.num_vcs;
}

}  // namespace

std::optional<Port> queue_request(const RouterState& s, std::size_t q,
                                  const RouterEnv& env) {
  const QueueState& qs = s.queues[q];
  if (qs.fifo.empty()) {
    return std::nullopt;
  }
  const Flit& head = qs.fifo.front();
  if (qs.locked) {
    // Mid-packet: the route is held until the TAIL passes.
    TMSIM_CHECK_MSG(head.type == FlitType::kBody || head.type == FlitType::kTail,
                    "locked queue must hold BODY/TAIL at its head");
    return qs.out_port;
  }
  TMSIM_CHECK_MSG(head.type == FlitType::kHead,
                  "unlocked queue must hold a HEAD at its head");
  const HeadFields h = decode_head(head.payload);
  return route_xy(*env.net, env.coord, Coord{h.dest_x, h.dest_y});
}

bool queue_eligible(const RouterState& s, std::size_t q,
                    const RouterEnv& env) {
  const std::optional<Port> req = queue_request(s, q, env);
  if (!req.has_value()) {
    return false;
  }
  const RouterConfig& cfg = env.net->router;
  const std::size_t v = vc_of(q, cfg);
  const OutVcState& ovc = s.out_vcs[RouterState::index(cfg, *req, v)];
  if (ovc.credits == 0) {
    return false;
  }
  if (s.queues[q].locked) {
    // Mid-packet flits flow only while this queue owns the output VC.
    return ovc.busy && ovc.owner_port == in_port_of(q, cfg);
  }
  // A HEAD may only claim a free output VC.
  return !ovc.busy;
}

int arbiter_grant(const RouterState& s, Port o, const RouterEnv& env) {
  const RouterConfig& cfg = env.net->router;
  const std::size_t nq = cfg.num_queues();
  const std::size_t start = s.rr_ptr[static_cast<std::size_t>(o)];
  for (std::size_t i = 0; i < nq; ++i) {
    const std::size_t q = (start + i) % nq;
    if (queue_eligible(s, q, env) && *queue_request(s, q, env) == o) {
      return static_cast<int>(q);
    }
  }
  return -1;
}

Grants compute_grants(const RouterState& s, const RouterEnv& env) {
  Grants g;
  for (std::size_t o = 0; o < kPorts; ++o) {
    g.granted[o] = arbiter_grant(s, static_cast<Port>(o), env);
  }
  return g;
}

RouterOutputs compute_outputs(const RouterState& s, const Grants& grants,
                              const RouterEnv& env) {
  const RouterConfig& cfg = env.net->router;
  RouterOutputs out;
  for (std::size_t o = 0; o < kPorts; ++o) {
    const int g = grants.granted[o];
    if (g < 0) {
      continue;
    }
    const std::size_t q = static_cast<std::size_t>(g);
    out.fwd_out[o] = LinkForward{
        /*valid=*/true,
        static_cast<std::uint8_t>(vc_of(q, cfg)),
        s.queues[q].fifo.front(),
    };
    out.credit_out[in_port_of(q, cfg)].set(vc_of(q, cfg));
  }
  return out;
}

RouterOutputs compute_outputs(const RouterState& s, const RouterEnv& env) {
  return compute_outputs(s, compute_grants(s, env), env);
}

RouterState compute_next_state(const RouterState& s, const RouterInputs& in,
                               const RouterEnv& env) {
  return compute_next_state(s, compute_grants(s, env), in, env);
}

RouterState compute_next_state(const RouterState& s, const Grants& grants,
                               const RouterInputs& in, const RouterEnv& env) {
  RouterState next = s;
  compute_next_state_into(s, grants, in, env, next);
  return next;
}

void compute_next_state_into(const RouterState& s, const Grants& grants,
                             const RouterInputs& in, const RouterEnv& env,
                             RouterState& next) {
  const RouterConfig& cfg = env.net->router;
  next = s;

  // 1. Pops: one granted queue per output port forwards its head flit.
  for (std::size_t o = 0; o < kPorts; ++o) {
    const int g = grants.granted[o];
    if (g < 0) {
      continue;
    }
    const std::size_t q = static_cast<std::size_t>(g);
    const std::size_t v = vc_of(q, cfg);
    const std::size_t ovc_idx = RouterState::index(cfg, static_cast<Port>(o), v);
    const Flit flit = next.queues[q].fifo.pop();

    if (flit.type == FlitType::kHead) {
      next.queues[q].locked = true;
      next.queues[q].out_port = static_cast<Port>(o);
      next.out_vcs[ovc_idx].busy = true;
      next.out_vcs[ovc_idx].owner_port =
          static_cast<std::uint8_t>(in_port_of(q, cfg));
    } else if (flit.type == FlitType::kTail) {
      next.queues[q].locked = false;
      next.out_vcs[ovc_idx].busy = false;
    }
    TMSIM_CHECK_MSG(next.out_vcs[ovc_idx].credits > 0,
                    "flit forwarded without a credit");
    --next.out_vcs[ovc_idx].credits;
    next.rr_ptr[o] =
        static_cast<std::uint8_t>((q + 1) % cfg.num_queues());
  }

  // 2. Credit returns from downstream routers. The counter wraps at its
  // register width like synthesized hardware: under the dynamic schedule
  // (§4.2) this function can run against stale link values — e.g. last
  // cycle's credit wire still sitting in the link memory because the
  // downstream router has not been evaluated yet this cycle — and the
  // resulting next state is discarded when the block is re-evaluated.
  // Committed states never overflow (checked by check_credit_invariant).
  const std::uint8_t credit_mask =
      static_cast<std::uint8_t>((1u << cfg.credit_bits()) - 1);
  for (std::size_t o = 0; o < kPorts; ++o) {
    for (std::size_t v = 0; v < cfg.num_vcs; ++v) {
      if (in.credit_in[o].get(v)) {
        OutVcState& ovc =
            next.out_vcs[RouterState::index(cfg, static_cast<Port>(o), v)];
        ovc.credits = static_cast<std::uint8_t>((ovc.credits + 1) &
                                                credit_mask);
      }
    }
  }

  // 3. Pushes: flits arriving on the input links land in their VC queue.
  for (std::size_t p = 0; p < kPorts; ++p) {
    const LinkForward& f = in.fwd_in[p];
    if (!f.valid) {
      continue;
    }
    TMSIM_CHECK_MSG(f.flit.type != FlitType::kIdle,
                    "valid link carries an IDLE flit");
    TMSIM_CHECK_MSG(f.vc < cfg.num_vcs, "link vc out of range");
    QueueState& qs =
        next.queues[RouterState::index(cfg, static_cast<Port>(p), f.vc)];
    // push_overwrite, not push: a transient evaluation against a stale
    // forward link can replay last cycle's flit into a queue that is
    // already full; hardware would advance the write pointer regardless,
    // and the re-evaluation discards this state (see the credit comment
    // above). Committed states never overflow.
    qs.fifo.push_overwrite(f.flit);
  }
}

}  // namespace tmsim::noc
