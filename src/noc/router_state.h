// RouterState: every register of the Kavaldjiev virtual-channel router,
// plus its bit-accurate serialization (the "memory word" of §5.2).
//
// The register inventory (defaults: 4 VCs, 4-flit queues):
//   - 20 input queues (5 ports × 4 VCs), each: 4 flit slots of 18 bits,
//     read/write pointers, full flag           → the Table 1 "Input queues"
//   - per queue: wormhole route lock (locked bit + output port)
//   - per output VC: busy bit, owner input port, downstream credit counter
//   - per output port: round-robin arbiter pointer
//                                              → Table 1 "control/arbitration"
//
// RouterStateCodec turns the whole struct into one BitVector and back,
// with an explicit StateLayout so the bit cost of every design parameter
// is inspectable (bench/table1_registers prints it).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_vector.h"
#include "common/ring_buffer.h"
#include "noc/config.h"
#include "noc/flit.h"
#include "noc/state_layout.h"

namespace tmsim::noc {

/// One VC input queue with its wormhole route state.
struct QueueState {
  explicit QueueState(std::size_t depth) : fifo(depth) {}

  RingBuffer<Flit> fifo;
  /// True while a packet (HEAD seen, TAIL not yet forwarded) holds a route.
  bool locked = false;
  /// Output port of the locked route; meaningless when !locked.
  Port out_port = Port::kLocal;
};

/// Per output-port, per-VC state.
struct OutVcState {
  /// True while a packet owns this output VC (wormhole lock).
  bool busy = false;
  /// Input port of the owning queue (the VC index is implied: a packet on
  /// input VC v always requests output VC v).
  std::uint8_t owner_port = 0;
  /// Credits: free flit slots in the downstream router's input queue.
  std::uint8_t credits = 0;

  friend bool operator==(const OutVcState&, const OutVcState&) = default;
};

/// All registers of one router.
struct RouterState {
  explicit RouterState(const RouterConfig& cfg);

  std::vector<QueueState> queues;    ///< kPorts × num_vcs
  std::vector<OutVcState> out_vcs;   ///< kPorts × num_vcs
  std::vector<std::uint8_t> rr_ptr;  ///< per output port, indexes queues

  /// Queue / output-VC index for (port, vc).
  static std::size_t index(const RouterConfig& cfg, Port port,
                           std::size_t vc) {
    return static_cast<std::size_t>(port) * cfg.num_vcs + vc;
  }
};

/// Bit-accurate (de)serializer between RouterState and a state-memory word.
class RouterStateCodec {
 public:
  explicit RouterStateCodec(const RouterConfig& cfg);

  const RouterConfig& config() const { return cfg_; }
  const StateLayout& layout() const { return layout_; }
  std::size_t state_bits() const { return layout_.total_bits(); }

  BitVector serialize(const RouterState& s) const;
  RouterState deserialize(const BitVector& word) const;

  /// Allocation-free variants for the simulation hot path: `out` must
  /// have been constructed for the same RouterConfig (its buffers are
  /// reused). The FPGA reads/writes the state word in place; so do we.
  void serialize_into(const RouterState& s, BitVector& word) const;
  void deserialize_into(const BitVector& word, RouterState& out) const;

  /// Serialized default-constructed (reset) state.
  BitVector reset_word() const;

 private:
  RouterConfig cfg_;
  StateLayout layout_;
  // Field indices, addressed by queue / out-vc / port index.
  std::vector<std::vector<std::size_t>> f_slot_;  // [queue][slot]
  std::vector<std::size_t> f_rd_, f_wr_, f_full_, f_locked_, f_outport_;
  std::vector<std::size_t> f_busy_, f_owner_, f_credits_;
  std::vector<std::size_t> f_rr_;
};

/// Two router states are equal iff their serializations are bit-identical.
bool states_equal(const RouterStateCodec& codec, const RouterState& a,
                  const RouterState& b);

}  // namespace tmsim::noc
