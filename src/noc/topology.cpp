#include "noc/topology.h"

#include "common/error.h"

namespace tmsim::noc {

Port opposite(Port p) {
  switch (p) {
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
    case Port::kLocal: break;
  }
  throw Error("opposite(): local port has no opposite");
}

std::optional<Coord> neighbour(const NetworkConfig& net, Coord c, Port p) {
  TMSIM_CHECK_MSG(p != Port::kLocal, "neighbour(): local port");
  const bool torus = net.topology == Topology::kTorus;
  Coord n = c;
  switch (p) {
    case Port::kNorth:
      if (c.y == 0) {
        if (!torus) return std::nullopt;
        n.y = net.height - 1;
      } else {
        n.y = c.y - 1;
      }
      break;
    case Port::kSouth:
      if (c.y + 1 == net.height) {
        if (!torus) return std::nullopt;
        n.y = 0;
      } else {
        n.y = c.y + 1;
      }
      break;
    case Port::kWest:
      if (c.x == 0) {
        if (!torus) return std::nullopt;
        n.x = net.width - 1;
      } else {
        n.x = c.x - 1;
      }
      break;
    case Port::kEast:
      if (c.x + 1 == net.width) {
        if (!torus) return std::nullopt;
        n.x = 0;
      } else {
        n.x = c.x + 1;
      }
      break;
    case Port::kLocal:
      break;
  }
  // A 1-wide (or 1-high) torus dimension would make a router its own
  // neighbour; treat that dimension as unconnected instead.
  if (n == c) return std::nullopt;
  return n;
}

namespace {

/// Signed steps to take in one dimension (positive = east/south) and the
/// resulting hop count, honouring torus wrap.
struct DimStep {
  int direction;      // -1, 0, +1
  std::size_t hops;
};

DimStep dim_step(std::size_t from, std::size_t to, std::size_t extent,
                 bool torus) {
  if (from == to) return {0, 0};
  const std::size_t fwd = (to + extent - from) % extent;   // east/south hops
  const std::size_t bwd = (from + extent - to) % extent;   // west/north hops
  if (!torus) {
    return to > from ? DimStep{+1, to - from} : DimStep{-1, from - to};
  }
  // Shortest wrap direction; exact tie goes to the positive direction.
  return fwd <= bwd ? DimStep{+1, fwd} : DimStep{-1, bwd};
}

}  // namespace

Port route_xy(const NetworkConfig& net, Coord here, Coord dest) {
  const bool torus = net.topology == Topology::kTorus;
  const DimStep sx = dim_step(here.x, dest.x, net.width, torus);
  if (sx.direction != 0) {
    return sx.direction > 0 ? Port::kEast : Port::kWest;
  }
  const DimStep sy = dim_step(here.y, dest.y, net.height, torus);
  if (sy.direction != 0) {
    return sy.direction > 0 ? Port::kSouth : Port::kNorth;
  }
  return Port::kLocal;
}

std::size_t route_hops(const NetworkConfig& net, Coord src, Coord dst) {
  const bool torus = net.topology == Topology::kTorus;
  return dim_step(src.x, dst.x, net.width, torus).hops +
         dim_step(src.y, dst.y, net.height, torus).hops;
}

}  // namespace tmsim::noc
