#include "noc/network.h"

namespace tmsim::noc {

UpstreamPort upstream_of(const NetworkConfig& net, std::size_t r, Port p) {
  TMSIM_CHECK_MSG(p != Port::kLocal, "local port is externally driven");
  const auto nbr = neighbour(net, router_coord(net, r), p);
  if (!nbr.has_value()) {
    return UpstreamPort{};  // mesh boundary: tied to idle
  }
  // The neighbour reached through our port p drives us through its output
  // port facing back at us: opposite(p).
  return UpstreamPort{true, router_index(net, *nbr), opposite(p)};
}

void check_credit_invariant(const NocSimulation& sim) {
  const NetworkConfig& net = sim.config();
  const RouterConfig& cfg = net.router;
  const RouterStateCodec codec(cfg);
  std::vector<RouterState> states;
  states.reserve(net.num_routers());
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    states.push_back(codec.deserialize(sim.router_state_word(r)));
  }
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    for (std::size_t v = 0; v < cfg.num_vcs; ++v) {
      // Local output port: the NI consumes in-cycle, so the counter must
      // sit at full depth whenever state is committed.
      const OutVcState& local =
          states[r].out_vcs[RouterState::index(cfg, Port::kLocal, v)];
      TMSIM_CHECK_MSG(local.credits == cfg.queue_depth,
                      "local output credit counter not full at router " +
                          std::to_string(r) + " vc " + std::to_string(v));
      for (std::size_t o = 1; o < kPorts; ++o) {
        const UpstreamPort down = upstream_of(net, r, static_cast<Port>(o));
        if (!down.connected) {
          continue;
        }
        const OutVcState& ovc =
            states[r].out_vcs[RouterState::index(cfg, static_cast<Port>(o), v)];
        // Our output port o feeds the neighbour's input port down.port.
        const QueueState& q =
            states[down.router].queues[RouterState::index(cfg, down.port, v)];
        TMSIM_CHECK_MSG(
            ovc.credits + q.fifo.size() == cfg.queue_depth,
            "credit invariant broken: router " + std::to_string(r) + " " +
                port_name(static_cast<Port>(o)) + " vc " + std::to_string(v) +
                ": credits " + std::to_string(ovc.credits) + " + occupancy " +
                std::to_string(q.fifo.size()) + " != depth " +
                std::to_string(cfg.queue_depth));
      }
    }
  }
}

DirectNocSimulation::DirectNocSimulation(const NetworkConfig& net)
    : net_(net), codec_(net.router) {
  net_.validate();
  const std::size_t n = net_.num_routers();
  states_.reserve(n);
  envs_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    states_.emplace_back(net_.router);
    envs_.push_back(RouterEnv{&net_, router_coord(net_, r)});
  }
  upstream_.resize(n * kPorts);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 1; p < kPorts; ++p) {
      upstream_[r * kPorts + p] = upstream_of(net_, r, static_cast<Port>(p));
    }
  }
  local_in_.assign(n, idle_forward());
  local_out_.assign(n, idle_forward());
  local_credits_.assign(n, CreditWires{});
}

void DirectNocSimulation::set_local_input(std::size_t r,
                                          const LinkForward& f) {
  local_in_.at(r) = f;
}

void DirectNocSimulation::step() {
  const std::size_t n = net_.num_routers();

  // Phase 1 — G: all routers' combinational outputs from registered state.
  if (outs_scratch_.size() != n) {
    outs_scratch_.resize(n);
  }
  std::vector<RouterOutputs>& outs = outs_scratch_;
  if (grants_scratch_.size() != n) {
    grants_scratch_.resize(n);
  }
  for (std::size_t r = 0; r < n; ++r) {
    grants_scratch_[r] = compute_grants(states_[r], envs_[r]);
    outs[r] = compute_outputs(states_[r], grants_scratch_[r], envs_[r]);
  }

  // Phase 2 — F: assemble each router's inputs from its neighbours'
  // outputs and commit all next states at the clock edge.
  if (next_scratch_.empty()) {
    next_scratch_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      next_scratch_.emplace_back(net_.router);
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    RouterInputs in;
    in.fwd_in[static_cast<std::size_t>(Port::kLocal)] = local_in_[r];
    for (std::size_t p = 1; p < kPorts; ++p) {
      const UpstreamPort& up = upstream_[r * kPorts + p];
      if (up.connected) {
        in.fwd_in[p] =
            outs[up.router].fwd_out[static_cast<std::size_t>(up.port)];
      }
    }
    // Credits arriving per output port: for grid ports, what the
    // downstream router returned on the facing input port; for the local
    // port, the NI echoes a credit for the flit delivered this cycle.
    for (std::size_t o = 1; o < kPorts; ++o) {
      const UpstreamPort& down = upstream_[r * kPorts + o];
      if (down.connected) {
        // The router downstream through output port o receives us on its
        // input port `down.port` (== opposite(o) geometry-wise) and
        // returns credits on that input port's credit group.
        in.credit_in[o] =
            outs[down.router].credit_out[static_cast<std::size_t>(down.port)];
      }
    }
    const LinkForward& delivered =
        outs[r].fwd_out[static_cast<std::size_t>(Port::kLocal)];
    if (delivered.valid) {
      CreditWires echo;
      echo.set(delivered.vc);
      in.credit_in[static_cast<std::size_t>(Port::kLocal)] = echo;
    }
    compute_next_state_into(states_[r], grants_scratch_[r], in, envs_[r],
                            next_scratch_[r]);
    local_out_[r] = delivered;
    local_credits_[r] =
        outs[r].credit_out[static_cast<std::size_t>(Port::kLocal)];
  }
  states_.swap(next_scratch_);
  local_in_.assign(n, idle_forward());
  ++cycle_;
}

LinkForward DirectNocSimulation::local_output(std::size_t r) const {
  return local_out_.at(r);
}

CreditWires DirectNocSimulation::local_input_credits(std::size_t r) const {
  return local_credits_.at(r);
}

BitVector DirectNocSimulation::router_state_word(std::size_t r) const {
  return codec_.serialize(states_.at(r));
}

}  // namespace tmsim::noc
