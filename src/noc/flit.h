// Flit: the atomic transfer unit of the packet-switched NoC (§2.1).
//
// A flit is 18 bits as stored in the router's input queues (the paper's
// Table 1: 20 queues × 4 flits × 18 bits = 1440 bits):
//
//   [17:16] type   — HEAD / BODY / TAIL / IDLE
//   [15:0]  payload
//
// HEAD flits carry the routing information in their payload:
//
//   [15:12] dest_x   [11:8] dest_y   [7:6] vc   [5:0] seq
//
// `vc` repeats the virtual channel the packet travels on (the VC is fixed
// end-to-end in the Kavaldjiev router: input VC v requests output VC v).
// `seq` is a small sequence tag used by the measurement harness to match
// packet arrivals to injections; the hardware ignores it.
#pragma once

#include <cstdint>

#include "common/error.h"

namespace tmsim::noc {

enum class FlitType : std::uint8_t {
  kIdle = 0,
  kHead = 1,
  kBody = 2,
  kTail = 3,
};

/// Bits of a flit as stored in a queue slot.
inline constexpr std::size_t kFlitBits = 18;
/// Bits of flit payload.
inline constexpr std::size_t kPayloadBits = 16;

struct Flit {
  FlitType type = FlitType::kIdle;
  std::uint16_t payload = 0;

  friend bool operator==(const Flit&, const Flit&) = default;
};

/// Packs a flit into its 18-bit queue-slot encoding.
inline std::uint32_t encode_flit(const Flit& f) {
  return (static_cast<std::uint32_t>(f.type) << kPayloadBits) | f.payload;
}

/// Unpacks an 18-bit queue-slot encoding.
inline Flit decode_flit(std::uint32_t bits) {
  TMSIM_CHECK_MSG((bits >> kFlitBits) == 0, "flit encoding wider than 18 bits");
  return Flit{static_cast<FlitType>(bits >> kPayloadBits),
              static_cast<std::uint16_t>(bits & 0xffffu)};
}

/// Builds the payload of a HEAD flit.
inline std::uint16_t make_head_payload(unsigned dest_x, unsigned dest_y,
                                       unsigned vc, unsigned seq) {
  TMSIM_CHECK_MSG(dest_x < 16 && dest_y < 16, "destination out of 4-bit range");
  TMSIM_CHECK_MSG(vc < 4, "vc out of 2-bit range");
  TMSIM_CHECK_MSG(seq < 64, "seq out of 6-bit range");
  return static_cast<std::uint16_t>((dest_x << 12) | (dest_y << 8) |
                                    (vc << 6) | seq);
}

/// Fields of a HEAD flit payload.
struct HeadFields {
  unsigned dest_x;
  unsigned dest_y;
  unsigned vc;
  unsigned seq;
};

inline HeadFields decode_head(std::uint16_t payload) {
  return HeadFields{
      static_cast<unsigned>((payload >> 12) & 0xf),
      static_cast<unsigned>((payload >> 8) & 0xf),
      static_cast<unsigned>((payload >> 6) & 0x3),
      static_cast<unsigned>(payload & 0x3f),
  };
}

}  // namespace tmsim::noc
