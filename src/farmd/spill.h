// SpillQueue: tmsim-farmd's disk-backed admission overflow (DESIGN.md
// §16). When the farm's bounded admission queue rejects with
// kQueueFull, the daemon does not push the shedding decision to remote
// clients — it appends the spec to an append-only per-class segment
// file and a refill thread readmits spilled work FIFO-per-class as
// capacity frees up. Millions of queued specs then cost disk, not RAM,
// and admission (not completion) is what the SubmitReply guarantees.
//
// Record format (one per spilled submission, length-prefixed and
// CRC-guarded like wire frames):
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload: u64 remote_id | str client | u64 trace_id | u64 span_id |
//            str spec_text          (wire.h primitives, little-endian)
//
// One segment file per priority class (`spill-<class>.seg`) keeps the
// per-class FIFO trivially: the file *is* the queue. take() reads at
// the class's read offset; the offset only moves forward; when a class
// fully drains, its segment is truncated back to zero bytes so long-
// running daemons never grow files without bound. On construction any
// existing segments are scanned and their records recovered as pending
// (at-least-once across a daemon restart: a record is only truncated
// away after its whole class drained).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>

#include "farm/job_spec.h"

namespace tmsim::farmd {

struct SpillRecord {
  std::uint64_t remote_id = 0;
  std::string client;          ///< owning client name (result routing)
  std::uint64_t trace_id = 0;  ///< client-side trace link
  std::uint64_t span_id = 0;
  std::string spec_text;       ///< JobSpec::serialize()
};

class SpillQueue {
 public:
  /// Opens (creating if needed) the spill directory and recovers any
  /// records left in existing segments.
  explicit SpillQueue(std::string dir);
  ~SpillQueue();
  SpillQueue(const SpillQueue&) = delete;
  SpillQueue& operator=(const SpillQueue&) = delete;

  /// Appends one record to its class segment (durable before return:
  /// the stream is flushed). Wakes take_highest() waiters.
  void append(farm::Priority cls, const SpillRecord& rec);

  /// Oldest record of the highest-priority non-empty class; nullopt
  /// when everything is drained. FIFO within a class is the file order.
  std::optional<SpillRecord> take_highest();

  /// Oldest record of one class (nullopt if its segment is drained).
  std::optional<SpillRecord> take(farm::Priority cls);

  /// Records spilled and not yet taken for one class. Reads under the
  /// class segment mutex, so it is ordered against concurrent takes.
  std::uint64_t pending(farm::Priority cls) const;

  /// Blocks until a record is pending, `stop()` was called, or the
  /// timeout elapses. Returns pending-ness at wakeup.
  bool wait_pending(std::chrono::microseconds timeout);
  void stop();

  bool empty() const;

  /// Largest remote_id among the records recovered at construction (0
  /// when nothing was recovered). The daemon seeds fresh remote ids
  /// above this so a new submission can never collide with — and steal
  /// the result routing of — a recovered job. Set once in the
  /// constructor; immutable after.
  std::uint64_t max_recovered_remote_id() const {
    return max_recovered_remote_id_;
  }

  struct Stats {
    std::uint64_t pending = 0;    ///< records spilled, not yet taken
    std::uint64_t bytes = 0;      ///< pending payload bytes on disk
    std::uint64_t appended = 0;   ///< lifetime appends (incl. recovered)
    std::uint64_t readmitted = 0; ///< lifetime takes
    std::uint64_t segments = 0;   ///< segment files with pending records
  };
  Stats stats() const;

 private:
  struct Segment {
    mutable std::mutex mu;
    std::fstream file;
    std::string path;
    std::uint64_t read_off = 0;
    std::uint64_t write_off = 0;
    std::uint64_t pending = 0;
  };

  void open_segment(Segment& seg, const std::string& path);
  std::optional<SpillRecord> take_from(Segment& seg);

  std::string dir_;
  Segment segments_[farm::kNumPriorities];
  std::uint64_t max_recovered_remote_id_ = 0;

  mutable std::mutex wait_mu_;
  std::condition_variable cv_;
  std::uint64_t pending_total_ = 0;  ///< guarded by wait_mu_
  bool stopped_ = false;
  std::uint64_t appended_ = 0;
  std::uint64_t readmitted_ = 0;
};

}  // namespace tmsim::farmd
