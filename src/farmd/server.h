// FarmdServer: the tmsim-farmd daemon core — one SimFarm behind a TCP
// listener, multiplexing N client connections onto the wire protocol
// (net/wire.h) with spill-to-disk admission overflow (farmd/spill.h).
//
// ## Thread model
//
//   - accept thread     — owns the Listener; spawns one reader per
//                         connection.
//   - per-conn reader   — parses frames, answers submit/cancel/fetch/
//                         introspect inline (all are short), flips the
//                         subscribe flag.
//   - per-client writer — drains the client's bounded outbox of
//                         terminal remote ids into Result frames on the
//                         client's *current* connection. One per client
//                         name (not per connection): the outbox — and
//                         therefore the result stream — survives
//                         disconnect/reconnect.
//   - result pump       — blocks on ResultStore::next_batch, routes
//                         farm completions to the owning client's
//                         outbox; reconciles completion-feed drops by
//                         sweeping the live-job set, so a slow pump can
//                         lose a *notification* but never a result.
//   - spill refill      — readmits spilled records FIFO-per-class into
//                         the farm as admission capacity frees up.
//
// ## Identity and ordering
//
// Clients are identified by the durable name in their Hello — a second
// connection with the same name takes the session over (the old socket
// is shut down) and inherits the undelivered outbox. Jobs get a
// server-scoped `remote_id` (what clients see; results are rewritten to
// carry it) mapped to the farm's job id once admitted. A class whose
// spill segment is non-empty routes *all* new submissions of that class
// through the segment, so spilled work is never overtaken by later
// same-class submissions (the per-class FIFO the admission queue
// guarantees in RAM, extended to disk).
//
// ## Backpressure
//
// kQueueFull never reaches a remote client as a reject: the spec spills
// and the SubmitReply says accepted+spilled (with the farm's depth/
// capacity/retry-after hint attached as advisory load information).
// Every other farm reject (invalid spec, too large, stopped) passes
// through verbatim. The bounded per-client outbox drops *oldest* on
// overflow (counted in net.outbox.dropped); a dropped notification is
// recoverable through Fetch, because the farm's ResultStore keeps every
// result.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "farm/farm.h"
#include "farmd/spill.h"
#include "net/socket.h"
#include "net/wire.h"

namespace tmsim::farmd {

struct FarmdOptions {
  /// Listener port on 127.0.0.1 (0 = ephemeral; see FarmdServer::port).
  std::uint16_t port = 0;
  /// The farm the daemon fronts. `metrics` (when set) also receives the
  /// daemon's net.* counters; introspect() gains a "net" section.
  farm::FarmOptions farm;
  /// Directory for spill segment files (created if missing).
  std::string spill_dir = "farmd_spill";
  /// Per-client outbox bound (drop-oldest beyond it).
  std::size_t outbox_capacity = 4096;
  /// Result-pump batch size per ResultStore::next_batch call.
  std::size_t pump_batch = 256;
};

class FarmdServer {
 public:
  explicit FarmdServer(FarmdOptions opt);
  /// Graceful drain: stop intake, readmit the whole spill backlog, wait
  /// for every accepted job's result, flush connected subscribers'
  /// outboxes, then close.
  ~FarmdServer();
  FarmdServer(const FarmdServer&) = delete;
  FarmdServer& operator=(const FarmdServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  farm::SimFarm& farm() { return farm_; }
  const SpillQueue& spill() const { return spill_; }

  /// The destructor's drain, callable early. Idempotent.
  void shutdown();

  /// The daemon's ingress snapshot (also installed as the farm's
  /// introspect "net" section): listener, per-client connection/outbox
  /// state, spill segment stats, lifetime counters.
  std::string ingress_json() const;

 private:
  struct ClientState;

  /// One live TCP connection. `client` is set by Hello; `dead` flips on
  /// any send/recv failure or takeover, after which the writer must not
  /// touch the socket.
  struct Conn {
    net::Socket sock;
    std::mutex send_mu;
    std::shared_ptr<ClientState> client;
    std::atomic<bool> dead{false};
    std::uint64_t ordinal = 0;
  };

  struct ClientState {
    std::string name;
    std::mutex mu;
    std::condition_variable cv;
    /// Terminal remote ids awaiting streaming, FIFO, bounded by
    /// outbox_capacity (drop-oldest, counted).
    std::deque<std::uint64_t> outbox;
    std::uint64_t outbox_dropped = 0;
    std::uint64_t results_streamed = 0;
    bool subscribed = false;  ///< reset on every new connection
    std::shared_ptr<Conn> active;
    std::thread writer;
  };

  /// Server-side record of one remote submission.
  struct RemoteJob {
    std::shared_ptr<ClientState> owner;
    farm::Priority cls = farm::Priority::kNormal;
    std::uint64_t farm_id = 0;  ///< 0 while spilled
    bool spilled = false;
    bool cancel_requested = false;
    bool terminal = false;
  };

  void accept_main();
  void conn_main(std::shared_ptr<Conn> conn);
  void writer_main(std::shared_ptr<ClientState> client);
  void pump_main();
  void refill_main();

  /// Looks up (or creates, spawning its writer thread) the ClientState
  /// for a durable client name. Used by Hello and by the refill thread
  /// when a recovered spill record names a client with no state yet.
  std::shared_ptr<ClientState> client_for_name(const std::string& name,
                                               bool* resumed);
  /// Joins reader threads whose conn_main already returned (they park
  /// their ids in finished_conn_ids_ on the way out), so a long-running
  /// daemon does not accumulate one unjoined thread per connection.
  void reap_finished_readers();

  bool handle_hello(Conn& conn, const net::Frame& frame);
  void handle_submit(Conn& conn, const net::Frame& frame);
  void handle_cancel(Conn& conn, const net::Frame& frame);
  void handle_fetch(Conn& conn, const net::Frame& frame);
  void handle_subscribe(Conn& conn, const net::Frame& frame);
  void handle_introspect(Conn& conn, const net::Frame& frame);
  void send_error(Conn& conn, std::uint64_t req_id, net::WireErrorCode code,
                  const std::string& detail);
  void send_frame(Conn& conn, net::FrameType type,
                  const std::vector<std::uint8_t>& payload);

  /// Routes one farm completion into its owner's outbox (exactly once).
  void route_farm_result(std::uint64_t farm_id);
  /// Completion-feed drop recovery: checks every live farm id against
  /// the result store directly.
  void reconcile_live_jobs();
  void push_outbox(const std::shared_ptr<ClientState>& client,
                   std::uint64_t remote_id);
  /// Readmits one spill record into the farm (retrying on kQueueFull
  /// until admitted or hard-stopped).
  void readmit(const SpillRecord& rec, farm::Priority cls);
  void bump(const char* counter, std::uint64_t n = 1);

  FarmdOptions opt_;
  farm::SimFarm farm_;
  SpillQueue spill_;
  net::Listener listener_;

  // Remote-job table. One mutex: every touch is a handful of map ops.
  mutable std::mutex jobs_mu_;
  std::unordered_map<std::uint64_t, RemoteJob> jobs_;
  std::unordered_map<std::uint64_t, std::uint64_t> farm_to_remote_;
  /// Farm ids whose completion arrived before the submit path published
  /// the mapping (the admit/complete race) — resolved at mapping insert.
  std::unordered_set<std::uint64_t> unrouted_farm_;
  /// Admitted farm ids with no routed result yet (reconcile sweep set).
  std::unordered_set<std::uint64_t> live_farm_;
  std::atomic<std::uint64_t> next_remote_{1};

  mutable std::mutex clients_mu_;
  std::map<std::string, std::shared_ptr<ClientState>> clients_;
  std::uint64_t next_ordinal_ = 1;

  /// Per-class flag: the refill thread holds a taken-but-unadmitted
  /// record of this class, so same-class submissions must keep routing
  /// through the spill segment to preserve FIFO.
  std::atomic<bool> refill_holding_[farm::kNumPriorities] = {};

  // Lifetime counters (leaf mutex; also mirrored to farm metrics).
  mutable std::mutex net_mu_;
  std::uint64_t conns_accepted_ = 0;
  std::uint64_t conns_closed_ = 0;
  std::uint64_t submits_accepted_ = 0;
  std::uint64_t submits_spilled_ = 0;
  std::uint64_t submits_rejected_ = 0;
  std::uint64_t results_streamed_ = 0;
  std::uint64_t wire_errors_ = 0;

  /// Submit handlers currently between their stopping_ check and their
  /// reply (seq_cst-paired with shutdown()'s stopping_ store, so the
  /// drain can wait out any submit that might still spill a record).
  std::atomic<std::uint64_t> submits_inflight_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> refill_stop_{false};
  std::atomic<bool> pump_stop_{false};
  std::atomic<bool> writers_stop_{false};
  std::atomic<bool> shut_down_{false};

  std::thread accept_thread_;
  std::thread pump_thread_;
  std::thread refill_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::shared_ptr<Conn>> conns_;
  /// Thread ids of readers that finished (guarded by conns_mu_); the
  /// accept loop joins and drops them via reap_finished_readers().
  std::vector<std::thread::id> finished_conn_ids_;
};

}  // namespace tmsim::farmd
