#include "farmd/spill.h"

#include <filesystem>
#include <vector>

#include "common/error.h"
#include "net/wire.h"

namespace tmsim::farmd {

namespace {

std::vector<std::uint8_t> encode_record(const SpillRecord& rec) {
  net::WireWriter w;
  w.u64(rec.remote_id);
  w.str(rec.client);
  w.u64(rec.trace_id);
  w.u64(rec.span_id);
  w.str(rec.spec_text);
  return w.take();
}

SpillRecord decode_record(const std::vector<std::uint8_t>& payload) {
  net::WireReader r(payload);
  SpillRecord rec;
  rec.remote_id = r.u64();
  rec.client = r.str();
  rec.trace_id = r.u64();
  rec.span_id = r.u64();
  rec.spec_text = r.str();
  r.expect_end();
  return rec;
}

}  // namespace

SpillQueue::SpillQueue(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  for (std::size_t c = 0; c < farm::kNumPriorities; ++c) {
    const std::string path =
        dir_ + "/spill-" +
        farm::priority_name(static_cast<farm::Priority>(c)) + ".seg";
    open_segment(segments_[c], path);
    std::lock_guard<std::mutex> lock(wait_mu_);
    pending_total_ += segments_[c].pending;
    appended_ += segments_[c].pending;  // recovered records count as appends
  }
}

SpillQueue::~SpillQueue() { stop(); }

void SpillQueue::open_segment(Segment& seg, const std::string& path) {
  seg.path = path;
  if (!std::filesystem::exists(path)) {
    std::ofstream create(path, std::ios::binary);
    TMSIM_CHECK_MSG(create.good(), "cannot create spill segment");
  }
  seg.file.open(path, std::ios::in | std::ios::out | std::ios::binary);
  TMSIM_CHECK_MSG(seg.file.good(), "cannot open spill segment");
  // Recovery scan: walk length-prefixed records from the start, stop at
  // the first torn/corrupt one and truncate it away — everything before
  // it is pending again (at-least-once across restarts).
  std::uint64_t off = 0;
  std::uint64_t count = 0;
  const std::uint64_t size = std::filesystem::file_size(path);
  while (off + 8 <= size) {
    std::uint8_t head[8];
    seg.file.seekg(static_cast<std::streamoff>(off));
    seg.file.read(reinterpret_cast<char*>(head), sizeof head);
    if (!seg.file.good()) {
      break;
    }
    net::WireReader hr(head, sizeof head);
    const std::uint32_t len = hr.u32();
    const std::uint32_t crc = hr.u32();
    if (len > net::kMaxPayload || off + 8 + len > size) {
      break;  // torn tail
    }
    std::vector<std::uint8_t> payload(len);
    seg.file.read(reinterpret_cast<char*>(payload.data()),
                  static_cast<std::streamsize>(len));
    if (!seg.file.good() || net::crc32(payload.data(), len) != crc) {
      break;
    }
    try {
      // Recovered ids feed the daemon's remote-id seeding; a CRC-valid
      // record that still fails to decode is treated as the torn tail.
      const SpillRecord rec = decode_record(payload);
      if (rec.remote_id > max_recovered_remote_id_) {
        max_recovered_remote_id_ = rec.remote_id;
      }
    } catch (const std::exception&) {
      break;
    }
    off += 8 + len;
    ++count;
  }
  seg.file.clear();
  if (off < size) {
    seg.file.close();
    std::filesystem::resize_file(path, off);
    seg.file.open(path, std::ios::in | std::ios::out | std::ios::binary);
    TMSIM_CHECK_MSG(seg.file.good(), "cannot reopen spill segment");
  }
  seg.read_off = 0;
  seg.write_off = off;
  seg.pending = count;
}

void SpillQueue::append(farm::Priority cls, const SpillRecord& rec) {
  Segment& seg = segments_[static_cast<std::size_t>(cls)];
  const std::vector<std::uint8_t> payload = encode_record(rec);
  net::WireWriter head;
  head.u32(static_cast<std::uint32_t>(payload.size()));
  head.u32(net::crc32(payload.data(), payload.size()));
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    seg.file.clear();
    seg.file.seekp(static_cast<std::streamoff>(seg.write_off));
    seg.file.write(reinterpret_cast<const char*>(head.bytes().data()),
                   static_cast<std::streamsize>(head.bytes().size()));
    seg.file.write(reinterpret_cast<const char*>(payload.data()),
                   static_cast<std::streamsize>(payload.size()));
    seg.file.flush();
    TMSIM_CHECK_MSG(seg.file.good(), "spill segment write failed");
    seg.write_off += 8 + payload.size();
    ++seg.pending;
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    ++pending_total_;
    ++appended_;
  }
  cv_.notify_all();
}

std::optional<SpillRecord> SpillQueue::take_from(Segment& seg) {
  std::lock_guard<std::mutex> lock(seg.mu);
  if (seg.pending == 0) {
    return std::nullopt;
  }
  seg.file.clear();
  seg.file.seekg(static_cast<std::streamoff>(seg.read_off));
  std::uint8_t head[8];
  seg.file.read(reinterpret_cast<char*>(head), sizeof head);
  TMSIM_CHECK_MSG(seg.file.good(), "spill segment read failed");
  net::WireReader hr(head, sizeof head);
  const std::uint32_t len = hr.u32();
  const std::uint32_t crc = hr.u32();
  std::vector<std::uint8_t> payload(len);
  seg.file.read(reinterpret_cast<char*>(payload.data()),
                static_cast<std::streamsize>(len));
  TMSIM_CHECK_MSG(seg.file.good(), "spill segment read failed");
  TMSIM_CHECK_MSG(net::crc32(payload.data(), len) == crc,
                  "spill record CRC mismatch");
  seg.read_off += 8 + len;
  --seg.pending;
  if (seg.pending == 0 && seg.read_off == seg.write_off &&
      seg.write_off > 0) {
    // Fully drained: shrink the segment back to zero so the file never
    // grows without bound across spill waves.
    seg.file.close();
    std::filesystem::resize_file(seg.path, 0);
    seg.file.open(seg.path,
                  std::ios::in | std::ios::out | std::ios::binary);
    TMSIM_CHECK_MSG(seg.file.good(), "cannot reopen spill segment");
    seg.read_off = 0;
    seg.write_off = 0;
  }
  return decode_record(payload);
}

std::optional<SpillRecord> SpillQueue::take_highest() {
  for (std::size_t c = 0; c < farm::kNumPriorities; ++c) {
    std::optional<SpillRecord> rec = take_from(segments_[c]);
    if (rec.has_value()) {
      std::lock_guard<std::mutex> lock(wait_mu_);
      --pending_total_;
      ++readmitted_;
      return rec;
    }
  }
  return std::nullopt;
}

std::optional<SpillRecord> SpillQueue::take(farm::Priority cls) {
  std::optional<SpillRecord> rec =
      take_from(segments_[static_cast<std::size_t>(cls)]);
  if (rec.has_value()) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    --pending_total_;
    ++readmitted_;
  }
  return rec;
}

std::uint64_t SpillQueue::pending(farm::Priority cls) const {
  const Segment& seg = segments_[static_cast<std::size_t>(cls)];
  std::lock_guard<std::mutex> lock(seg.mu);
  return seg.pending;
}

bool SpillQueue::wait_pending(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  cv_.wait_for(lock, timeout,
               [&] { return pending_total_ > 0 || stopped_; });
  return pending_total_ > 0;
}

void SpillQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

bool SpillQueue::empty() const {
  std::lock_guard<std::mutex> lock(wait_mu_);
  return pending_total_ == 0;
}

SpillQueue::Stats SpillQueue::stats() const {
  Stats s;
  for (const Segment& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg.mu);
    s.pending += seg.pending;
    if (seg.pending > 0) {
      ++s.segments;
      s.bytes += seg.write_off - seg.read_off;
    }
  }
  std::lock_guard<std::mutex> lock(wait_mu_);
  s.appended = appended_;
  s.readmitted = readmitted_;
  return s;
}

}  // namespace tmsim::farmd
