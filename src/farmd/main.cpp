// tmsim-farmd: the networked front-end to one simulation farm. Binds a
// loopback listener, serves the wire protocol (DESIGN.md §16), and
// drains gracefully on SIGINT/SIGTERM — every accepted job resolves and
// connected subscribers receive their remaining results before exit.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <semaphore>
#include <string>

#include "farmd/server.h"
#include "obs/metrics.h"

namespace {

// Signal → main-thread handoff. A semaphore is async-signal-safe enough
// for this use (release is a futex post on Linux).
std::binary_semaphore g_stop{0};

void on_signal(int) { g_stop.release(); }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--workers N] [--queue N] "
               "[--spill-dir PATH]\n"
               "  --port N       listen port on 127.0.0.1 (default 0 = "
               "ephemeral)\n"
               "  --workers N    farm worker threads (default 2)\n"
               "  --queue N      admission queue capacity (default 64)\n"
               "  --spill-dir P  spill segment directory (default "
               "farmd_spill)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  tmsim::farmd::FarmdOptions opt;
  opt.farm.num_workers = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_val = i + 1 < argc;
    if (arg == "--port" && has_val) {
      opt.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && has_val) {
      opt.farm.num_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--queue" && has_val) {
      opt.farm.queue_capacity =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--spill-dir" && has_val) {
      opt.spill_dir = argv[++i];
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  tmsim::obs::MetricsRegistry metrics;
  opt.farm.metrics = &metrics;
  try {
    tmsim::farmd::FarmdServer server(opt);
    std::printf("tmsim-farmd listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    g_stop.acquire();

    std::printf("tmsim-farmd draining...\n");
    std::fflush(stdout);
    server.shutdown();
    std::printf("tmsim-farmd stopped\n%s\n", server.ingress_json().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmsim-farmd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
