#include "farmd/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace tmsim::farmd {

using namespace std::chrono_literals;

FarmdServer::FarmdServer(FarmdOptions opt)
    : opt_(std::move(opt)),
      farm_(opt_.farm),
      spill_(opt_.spill_dir),
      listener_(opt_.port) {
  // Recovered spill records keep the remote ids the previous daemon
  // run assigned; fresh ids must start above them, or a new submission
  // could collide with a recovered job and readmit() would rewire that
  // job's result routing to the wrong client.
  next_remote_.store(spill_.max_recovered_remote_id() + 1,
                     std::memory_order_relaxed);
  farm_.set_ingress_provider([this] { return ingress_json(); });
  pump_thread_ = std::thread([this] { pump_main(); });
  refill_thread_ = std::thread([this] { refill_main(); });
  accept_thread_ = std::thread([this] { accept_main(); });
}

FarmdServer::~FarmdServer() { shutdown(); }

void FarmdServer::bump(const char* counter, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(net_mu_);
  if (opt_.farm.metrics != nullptr) {
    opt_.farm.metrics->counter(counter).add(n);
  }
}

// --- accept / connection lifecycle -----------------------------------------

void FarmdServer::reap_finished_readers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (finished_conn_ids_.empty()) {
      return;
    }
    for (auto it = conn_threads_.begin(); it != conn_threads_.end();) {
      const auto fit = std::find(finished_conn_ids_.begin(),
                                 finished_conn_ids_.end(), it->get_id());
      if (fit != finished_conn_ids_.end()) {
        finished_conn_ids_.erase(fit);
        done.push_back(std::move(*it));
        it = conn_threads_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside conns_mu_: the exiting reader parks its id as its very
  // last action, so these joins only wait for a function return.
  for (std::thread& t : done) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void FarmdServer::accept_main() {
  for (;;) {
    std::optional<net::Socket> sock = listener_.accept_next();
    reap_finished_readers();
    if (!sock.has_value()) {
      return;  // listener shut down
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return;  // stop racing accepts during shutdown
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(*sock);
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      ++conns_accepted_;
    }
    bump("net.connections.accepted");
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { conn_main(conn); });
  }
}

std::shared_ptr<FarmdServer::ClientState> FarmdServer::client_for_name(
    const std::string& name, bool* resumed) {
  std::lock_guard<std::mutex> lock(clients_mu_);
  auto it = clients_.find(name);
  if (it != clients_.end()) {
    if (resumed != nullptr) {
      *resumed = true;
    }
    return it->second;
  }
  auto client = std::make_shared<ClientState>();
  client->name = name;
  clients_.emplace(name, client);
  client->writer = std::thread([this, client] { writer_main(client); });
  if (resumed != nullptr) {
    *resumed = false;
  }
  return client;
}

bool FarmdServer::handle_hello(Conn& conn, const net::Frame& frame) {
  const net::HelloMsg hello = net::HelloMsg::decode(frame.payload);
  TMSIM_CHECK_MSG(!hello.client_name.empty(), "client name must not be empty");
  if (stopping_.load(std::memory_order_acquire)) {
    // Draining: a session created now could slip past shutdown()'s
    // writer-join passes and leak an unjoinable thread. Refuse with a
    // Goodbye (the client's handshake throws); the re-join pass after
    // readers are joined covers the narrow race where stopping_ flips
    // right after this check.
    net::GoodbyeMsg bye;
    bye.reason = "server draining";
    send_frame(conn, net::FrameType::kGoodbye, bye.encode());
    return false;
  }
  bool resumed = false;
  std::shared_ptr<ClientState> client =
      client_for_name(hello.client_name, &resumed);
  std::uint64_t ordinal = 0;
  std::shared_ptr<Conn> displaced;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    ordinal = next_ordinal_++;
  }
  // Takeover: the name is the session. A new connection for an active
  // name displaces the old one (its reader sees the shutdown as EOF);
  // the outbox — undelivered results included — carries over.
  {
    std::lock_guard<std::mutex> lock(client->mu);
    displaced = client->active;
    // `conn` is owned by conn_main's shared_ptr; find it in conns_ is
    // unnecessary — the caller passes the same object.
    client->active = nullptr;  // set below once the ack went out
    client->subscribed = false;
  }
  if (displaced) {
    displaced->dead.store(true, std::memory_order_release);
    displaced->sock.shutdown_both();
  }
  conn.client = client;
  conn.ordinal = ordinal;
  net::HelloAckMsg ack;
  ack.session_ordinal = ordinal;
  ack.resumed = resumed ? 1 : 0;
  send_frame(conn, net::FrameType::kHelloAck, ack.encode());
  return true;
}

void FarmdServer::conn_main(std::shared_ptr<Conn> conn) {
  try {
    // First frame must be Hello.
    std::optional<net::Frame> first = conn->sock.recv_frame();
    if (first.has_value()) {
      if (first->type != net::FrameType::kHello) {
        send_error(*conn, 0, net::WireErrorCode::kProtocol,
                   "expected hello, got " +
                       std::string(net::frame_type_name(first->type)));
      } else if (handle_hello(*conn, *first)) {
        // Publish the connection as the client's active one only after
        // the ack — the writer never races the handshake.
        {
          std::lock_guard<std::mutex> lock(conn->client->mu);
          conn->client->active = conn;
        }
        conn->client->cv.notify_all();
        for (;;) {
          std::optional<net::Frame> frame = conn->sock.recv_frame();
          if (!frame.has_value()) {
            break;  // clean EOF
          }
          bool goodbye = false;
          try {
            switch (frame->type) {
              case net::FrameType::kSubmit:
                handle_submit(*conn, *frame);
                break;
              case net::FrameType::kCancel:
                handle_cancel(*conn, *frame);
                break;
              case net::FrameType::kFetch:
                handle_fetch(*conn, *frame);
                break;
              case net::FrameType::kSubscribe:
                handle_subscribe(*conn, *frame);
                break;
              case net::FrameType::kIntrospect:
                handle_introspect(*conn, *frame);
                break;
              case net::FrameType::kGoodbye:
                goodbye = true;
                break;
              default:
                send_error(*conn, 0, net::WireErrorCode::kUnknownType,
                           std::string("server does not accept ") +
                               net::frame_type_name(frame->type));
                break;
            }
          } catch (const std::exception& e) {
            // A known frame type whose payload failed to decode: tell
            // the client and keep the connection — the framing layer
            // (CRC) already proved the bytes arrived as sent, so this
            // is a client bug, not line noise.
            {
              std::lock_guard<std::mutex> lock(net_mu_);
              ++wire_errors_;
            }
            // The error send happens outside net_mu_: a client that
            // stops reading (full send buffer) while triggering decode
            // errors must block only its own connection, not every
            // submit counter and introspection snapshot in the daemon.
            try {
              net::ErrorMsg err;
              err.code =
                  static_cast<std::uint8_t>(net::WireErrorCode::kMalformedFrame);
              err.detail = e.what();
              std::lock_guard<std::mutex> slock(conn->send_mu);
              conn->sock.send_frame(net::FrameType::kError, err.encode());
            } catch (const std::exception&) {
              break;
            }
          }
          if (goodbye) {
            break;
          }
        }
      }
    }
  } catch (const std::exception&) {
    // recv/send failure or a torn/corrupt frame: drop the connection.
    std::lock_guard<std::mutex> lock(net_mu_);
    ++wire_errors_;
  }
  conn->dead.store(true, std::memory_order_release);
  if (conn->client) {
    std::shared_ptr<ClientState> client = conn->client;
    {
      std::lock_guard<std::mutex> lock(client->mu);
      if (client->active == conn) {
        client->active = nullptr;
        client->subscribed = false;
      }
    }
    client->cv.notify_all();
  }
  // Wake the peer's recv, but do NOT close here: a writer, a takeover,
  // or shutdown() may still hold this Conn and call shutdown_both() on
  // it — the fd must stay reserved until the last reference drops (a
  // closed fd number can be recycled by the kernel immediately).
  // Removing the conn from conns_ makes the Socket destructor, at last
  // shared_ptr release, the single closer.
  conn->sock.shutdown_both();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
  }
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    ++conns_closed_;
  }
  bump("net.connections.closed");
  // Park this thread's id for the accept loop to reap — without this a
  // long-running daemon accumulates one exited-but-unjoined thread per
  // connection ever accepted. Must be the very last action: the reaper
  // may join this thread the moment the id is visible.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished_conn_ids_.push_back(std::this_thread::get_id());
  }
}

void FarmdServer::send_frame(Conn& conn,
                             net::FrameType type,
                             const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(conn.send_mu);
  conn.sock.send_frame(type, payload);
}

void FarmdServer::send_error(Conn& conn, std::uint64_t req_id,
                             net::WireErrorCode code,
                             const std::string& detail) {
  net::ErrorMsg err;
  err.req_id = req_id;
  err.code = static_cast<std::uint8_t>(code);
  err.detail = detail;
  send_frame(conn, net::FrameType::kError, err.encode());
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    ++wire_errors_;
  }
}

// --- request handlers ------------------------------------------------------

void FarmdServer::handle_submit(Conn& conn, const net::Frame& frame) {
  // In-flight accounting pairs with shutdown(): the increment is
  // seq_cst-ordered before the stopping_ load, and shutdown() stores
  // stopping_ before waiting for the count to drain — so every submit
  // either sees stopping_ and refuses, or finishes (spill append
  // included) before shutdown checks spill emptiness. Without this, a
  // submit racing shutdown could append a record *after* the drain
  // check and be answered accepted=1 yet never run.
  submits_inflight_.fetch_add(1, std::memory_order_seq_cst);
  struct InflightGuard {
    std::atomic<std::uint64_t>& count;
    ~InflightGuard() { count.fetch_sub(1, std::memory_order_seq_cst); }
  } inflight{submits_inflight_};
  const net::SubmitMsg m = net::SubmitMsg::decode(frame.payload);
  net::SubmitReplyMsg reply;
  reply.req_id = m.req_id;
  if (stopping_.load(std::memory_order_seq_cst)) {
    reply.accepted = 0;
    reply.reason = static_cast<std::uint8_t>(farm::RejectReason::kStopped);
    reply.detail = "server draining";
    send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
    bump("net.submits.rejected");
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      ++submits_rejected_;
    }
    return;
  }
  farm::JobSpec spec;
  try {
    spec = farm::JobSpec::deserialize(m.spec_text);
    spec.validate();
  } catch (const std::exception& e) {
    reply.accepted = 0;
    reply.reason =
        static_cast<std::uint8_t>(farm::RejectReason::kInvalidSpec);
    reply.detail = e.what();
    send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
    bump("net.submits.rejected");
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      ++submits_rejected_;
    }
    return;
  }
  if (spec.cycles > farm_.options().max_job_cycles) {
    // Checked here (not only farm-side) because the spill path must
    // never durably accept a spec the farm will later refuse.
    reply.accepted = 0;
    reply.reason = static_cast<std::uint8_t>(farm::RejectReason::kTooLarge);
    reply.detail = "cycle budget exceeds the farm ceiling";
    send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
    bump("net.submits.rejected");
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      ++submits_rejected_;
    }
    return;
  }

  const farm::Priority cls = spec.priority;
  const auto cls_idx = static_cast<std::size_t>(cls);
  const std::uint64_t remote_id =
      next_remote_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceContext remote_ctx;
  remote_ctx.trace_id = m.client_trace_id;
  remote_ctx.span_id = m.client_span_id;

  // FIFO-per-class across RAM and disk: while this class has spilled
  // records (or the refill thread holds one mid-readmit), new work of
  // the class must queue *behind* them in the segment. The pending
  // check is ordered after any refill take by the segment mutex, and
  // refill_holding_ is raised before the take — so the window where
  // both read false is exactly when the class truly has nothing ahead.
  bool to_spill =
      spill_.pending(cls) > 0 ||
      refill_holding_[cls_idx].load(std::memory_order_seq_cst);
  farm::SubmitOutcome out;
  if (!to_spill) {
    out = farm_.submit(spec,
                       m.client_trace_id != 0 ? &remote_ctx : nullptr);
    if (out.accepted) {
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        RemoteJob job;
        job.owner = conn.client;
        job.cls = cls;
        job.farm_id = out.job_id;
        jobs_.emplace(remote_id, job);
        farm_to_remote_.emplace(out.job_id, remote_id);
        live_farm_.insert(out.job_id);
      }
      // The job may already have completed (and been seen by the pump)
      // before the mapping existed; resolve the race now.
      bool was_unrouted = false;
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        was_unrouted = unrouted_farm_.erase(out.job_id) > 0;
      }
      if (was_unrouted) {
        route_farm_result(out.job_id);
      }
      reply.accepted = 1;
      reply.remote_id = remote_id;
      reply.queue_depth = out.queue_depth;
      reply.queue_capacity = out.queue_capacity;
      reply.server_trace_id = out.trace.trace_id;
      send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
      bump("net.submits.accepted");
      {
        std::lock_guard<std::mutex> lock(net_mu_);
        ++submits_accepted_;
      }
      return;
    }
    if (out.reason != farm::RejectReason::kQueueFull) {
      reply.accepted = 0;
      reply.reason = static_cast<std::uint8_t>(out.reason);
      reply.detail = out.detail;
      reply.queue_depth = out.queue_depth;
      reply.queue_capacity = out.queue_capacity;
      send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
      bump("net.submits.rejected");
      {
        std::lock_guard<std::mutex> lock(net_mu_);
        ++submits_rejected_;
      }
      return;
    }
    to_spill = true;  // kQueueFull: overflow to disk, never reject
  }

  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    RemoteJob job;
    job.owner = conn.client;
    job.cls = cls;
    job.spilled = true;
    jobs_.emplace(remote_id, job);
  }
  SpillRecord rec;
  rec.remote_id = remote_id;
  rec.client = conn.client->name;
  rec.trace_id = m.client_trace_id;
  rec.span_id = m.client_span_id;
  rec.spec_text = m.spec_text;
  spill_.append(cls, rec);
  reply.accepted = 1;
  reply.spilled = 1;
  reply.remote_id = remote_id;
  // Advisory load info for well-behaved clients (admission is already
  // guaranteed; this only says "expect latency").
  reply.queue_depth = out.queue_depth;
  reply.queue_capacity = out.queue_capacity;
  reply.retry_after_us = out.retry_after_us;
  send_frame(conn, net::FrameType::kSubmitReply, reply.encode());
  bump("net.submits.spilled");
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    ++submits_spilled_;
  }
}

void FarmdServer::handle_cancel(Conn& conn, const net::Frame& frame) {
  const net::CancelMsg m = net::CancelMsg::decode(frame.payload);
  net::CancelReplyMsg reply;
  reply.req_id = m.req_id;
  std::uint64_t farm_id = 0;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(m.remote_id);
    if (it != jobs_.end() && it->second.owner == conn.client) {
      known = true;
      if (it->second.farm_id != 0) {
        farm_id = it->second.farm_id;
      } else {
        // Still spilled: remember the intent; the refill thread cancels
        // the job the moment it is admitted, so exactly-one-result
        // holds (the farm publishes the kCancelled result).
        it->second.cancel_requested = true;
      }
    }
  }
  if (!known) {
    reply.outcome =
        static_cast<std::uint8_t>(farm::CancelResult::kUnknownJob);
  } else if (farm_id != 0) {
    reply.outcome = static_cast<std::uint8_t>(farm_.cancel(farm_id));
  } else {
    reply.outcome =
        static_cast<std::uint8_t>(farm::CancelResult::kRequested);
  }
  send_frame(conn, net::FrameType::kCancelReply, reply.encode());
}

void FarmdServer::handle_fetch(Conn& conn, const net::Frame& frame) {
  const net::FetchMsg m = net::FetchMsg::decode(frame.payload);
  net::FetchReplyMsg reply;
  reply.req_id = m.req_id;
  std::uint64_t farm_id = 0;
  bool known = false;
  bool spilled = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(m.remote_id);
    if (it != jobs_.end() && it->second.owner == conn.client) {
      known = true;
      farm_id = it->second.farm_id;
      spilled = it->second.farm_id == 0 && it->second.spilled;
    }
  }
  if (!known) {
    reply.state = static_cast<std::uint8_t>(net::RemoteJobState::kUnknown);
  } else if (spilled) {
    reply.state = static_cast<std::uint8_t>(net::RemoteJobState::kSpilled);
  } else {
    std::optional<farm::JobResult> res = farm_.results().get(farm_id);
    if (res.has_value()) {
      res->job_id = m.remote_id;  // clients think in remote ids
      reply.state =
          static_cast<std::uint8_t>(net::RemoteJobState::kTerminal);
      reply.result = std::move(res);
    } else {
      reply.state = static_cast<std::uint8_t>(net::RemoteJobState::kQueued);
    }
  }
  send_frame(conn, net::FrameType::kFetchReply, reply.encode());
}

void FarmdServer::handle_subscribe(Conn& conn, const net::Frame& frame) {
  net::SubscribeMsg::decode(frame.payload);  // validates shape
  std::shared_ptr<ClientState> client = conn.client;
  {
    std::lock_guard<std::mutex> lock(client->mu);
    client->subscribed = true;
  }
  client->cv.notify_all();
}

void FarmdServer::handle_introspect(Conn& conn, const net::Frame& frame) {
  const net::IntrospectMsg m = net::IntrospectMsg::decode(frame.payload);
  net::IntrospectReplyMsg reply;
  reply.req_id = m.req_id;
  reply.json = farm_.introspect();
  send_frame(conn, net::FrameType::kIntrospectReply, reply.encode());
}

// --- result routing --------------------------------------------------------

void FarmdServer::push_outbox(const std::shared_ptr<ClientState>& client,
                              std::uint64_t remote_id) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(client->mu);
    if (client->outbox.size() >= opt_.outbox_capacity) {
      client->outbox.pop_front();  // drop-oldest; recoverable via fetch
      ++client->outbox_dropped;
      dropped = true;
    }
    client->outbox.push_back(remote_id);
  }
  client->cv.notify_all();
  if (dropped) {
    bump("net.outbox.dropped");
  }
}

void FarmdServer::route_farm_result(std::uint64_t farm_id) {
  std::shared_ptr<ClientState> owner;
  std::uint64_t remote_id = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto mapped = farm_to_remote_.find(farm_id);
    if (mapped == farm_to_remote_.end()) {
      // Completion raced the submit path's mapping insert; the submit
      // path checks this set right after inserting.
      unrouted_farm_.insert(farm_id);
      return;
    }
    remote_id = mapped->second;
    auto it = jobs_.find(remote_id);
    if (it == jobs_.end() || it->second.terminal) {
      return;  // already routed (feed duplicate / reconcile overlap)
    }
    it->second.terminal = true;
    owner = it->second.owner;
    live_farm_.erase(farm_id);
  }
  push_outbox(owner, remote_id);
}

void FarmdServer::reconcile_live_jobs() {
  // The completion feed dropped notifications (or we want a final
  // sweep): check every admitted-but-unrouted farm id directly against
  // the result store. Nothing is ever lost — the store keeps every
  // result; only the *notification* is best-effort.
  std::vector<std::uint64_t> candidates;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    candidates.assign(live_farm_.begin(), live_farm_.end());
  }
  for (const std::uint64_t farm_id : candidates) {
    if (farm_.results().get(farm_id).has_value()) {
      route_farm_result(farm_id);
    }
  }
}

void FarmdServer::pump_main() {
  std::uint64_t drops_seen = 0;
  while (!pump_stop_.load(std::memory_order_acquire)) {
    const std::vector<std::uint64_t> ids =
        farm_.results().next_batch(opt_.pump_batch, 100ms);
    for (const std::uint64_t id : ids) {
      route_farm_result(id);
    }
    const std::uint64_t drops = farm_.results().completions_dropped();
    if (drops != drops_seen) {
      drops_seen = drops;
      reconcile_live_jobs();
    }
  }
  // Final sweep: everything published by the time the pump was asked to
  // stop (shutdown drains the farm first) gets routed.
  for (const std::uint64_t id : farm_.results().next_batch(0, 0ms)) {
    route_farm_result(id);
  }
  reconcile_live_jobs();
}

// --- spill refill ----------------------------------------------------------

void FarmdServer::readmit(const SpillRecord& rec, farm::Priority cls) {
  // The spec was validated before it was spilled; deserialize cannot
  // fail short of disk corruption (which the record CRC already
  // excludes).
  const farm::JobSpec spec = farm::JobSpec::deserialize(rec.spec_text);
  // A record recovered from a previous daemon run has no jobs_ entry —
  // the table died with the process. Rebuild the routing state from the
  // record itself: resolve (or create) the owning client from the
  // stored name, so the result reaches a client that reconnects under
  // it exactly like a live submission's would. Live submissions always
  // have an entry (handle_submit creates it before the append), so this
  // only fires for recovered work.
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    known = jobs_.find(rec.remote_id) != jobs_.end();
  }
  if (!known) {
    std::shared_ptr<ClientState> owner = client_for_name(rec.client, nullptr);
    std::lock_guard<std::mutex> lock(jobs_mu_);
    RemoteJob job;
    job.owner = std::move(owner);
    job.cls = cls;
    job.spilled = true;
    jobs_.emplace(rec.remote_id, job);
  }
  obs::TraceContext remote_ctx;
  remote_ctx.trace_id = rec.trace_id;
  remote_ctx.span_id = rec.span_id;
  for (;;) {
    const farm::SubmitOutcome out =
        farm_.submit(spec, rec.trace_id != 0 ? &remote_ctx : nullptr);
    if (out.accepted) {
      bool cancel_now = false;
      bool was_unrouted = false;
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        auto it = jobs_.find(rec.remote_id);
        if (it != jobs_.end()) {
          it->second.farm_id = out.job_id;
          it->second.spilled = false;
          cancel_now = it->second.cancel_requested;
        }
        farm_to_remote_.emplace(out.job_id, rec.remote_id);
        live_farm_.insert(out.job_id);
        was_unrouted = unrouted_farm_.erase(out.job_id) > 0;
      }
      if (cancel_now) {
        // Cancel arrived while the job sat on disk: flip the token the
        // moment the farm knows the job, so it resolves kCancelled
        // without burning simulation cycles.
        farm_.cancel(out.job_id);
      }
      if (was_unrouted) {
        route_farm_result(out.job_id);
      }
      bump("net.spill.readmitted");
      return;
    }
    if (out.reason == farm::RejectReason::kQueueFull) {
      std::this_thread::sleep_for(200us);
      continue;
    }
    // kStopped (hard shutdown before the backlog drained): the record
    // stays accounted as a known remote job; synthesize nothing — the
    // graceful path drains the spill before stopping the farm, so this
    // only happens when the process is going down anyway.
    return;
  }
}

void FarmdServer::refill_main() {
  while (!refill_stop_.load(std::memory_order_acquire)) {
    bool any = false;
    for (std::size_t c = 0; c < farm::kNumPriorities; ++c) {
      const auto cls = static_cast<farm::Priority>(c);
      if (spill_.pending(cls) == 0) {
        continue;
      }
      any = true;
      // Raise the holding flag *before* the take: submitters order
      // their pending-check after our take (segment mutex), so they
      // can never observe pending==0 && holding==false while this
      // record is in flight.
      refill_holding_[c].store(true, std::memory_order_seq_cst);
      std::optional<SpillRecord> rec = spill_.take(cls);
      if (rec.has_value()) {
        readmit(*rec, cls);
      }
      refill_holding_[c].store(false, std::memory_order_seq_cst);
      break;  // re-check from the highest class: strict priority
    }
    if (!any) {
      spill_.wait_pending(50ms);
    }
  }
}

// --- introspection ---------------------------------------------------------

std::string FarmdServer::ingress_json() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"listening_port\": " << listener_.port();
  std::vector<std::shared_ptr<ClientState>> clients;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (const auto& [name, c] : clients_) {
      clients.push_back(c);
    }
  }
  std::size_t connected = 0;
  os << ", \"clients\": [";
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ClientState& c = *clients[i];
    std::lock_guard<std::mutex> lock(c.mu);
    const bool live = c.active != nullptr;
    connected += live ? 1 : 0;
    os << (i > 0 ? ", " : "") << "{\"name\": \"" << obs::json_escape(c.name)
       << "\", \"connected\": " << (live ? "true" : "false")
       << ", \"subscribed\": " << (c.subscribed ? "true" : "false")
       << ", \"outbox_depth\": " << c.outbox.size()
       << ", \"outbox_dropped\": " << c.outbox_dropped
       << ", \"results_streamed\": " << c.results_streamed << "}";
  }
  os << "], \"connections\": " << connected;
  const SpillQueue::Stats sp = spill_.stats();
  os << ", \"spill\": {\"pending\": " << sp.pending
     << ", \"bytes\": " << sp.bytes << ", \"segments\": " << sp.segments
     << ", \"appended\": " << sp.appended
     << ", \"readmitted\": " << sp.readmitted << "}";
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    os << ", \"counters\": {\"conns_accepted\": " << conns_accepted_
       << ", \"conns_closed\": " << conns_closed_
       << ", \"submits_accepted\": " << submits_accepted_
       << ", \"submits_spilled\": " << submits_spilled_
       << ", \"submits_rejected\": " << submits_rejected_
       << ", \"results_streamed\": " << results_streamed_
       << ", \"wire_errors\": " << wire_errors_ << "}";
  }
  os << "}";
  return os.str();
}

// --- streaming writer ------------------------------------------------------

void FarmdServer::writer_main(std::shared_ptr<ClientState> client) {
  for (;;) {
    std::uint64_t remote_id = 0;
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(client->mu);
      client->cv.wait(lock, [&] {
        const bool deliverable = !client->outbox.empty() &&
                                 client->subscribed &&
                                 client->active != nullptr &&
                                 !client->active->dead.load(
                                     std::memory_order_acquire);
        return deliverable ||
               writers_stop_.load(std::memory_order_acquire);
      });
      const bool deliverable =
          !client->outbox.empty() && client->subscribed &&
          client->active != nullptr &&
          !client->active->dead.load(std::memory_order_acquire);
      if (!deliverable) {
        if (writers_stop_.load(std::memory_order_acquire)) {
          return;  // nothing deliverable will appear anymore
        }
        continue;
      }
      remote_id = client->outbox.front();
      client->outbox.pop_front();
      conn = client->active;
    }
    // Build the Result frame outside the client lock (the result fetch
    // takes a result-store shard lock, the encode is pure CPU).
    std::uint64_t farm_id = 0;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      auto it = jobs_.find(remote_id);
      if (it != jobs_.end()) {
        farm_id = it->second.farm_id;
      }
    }
    std::optional<farm::JobResult> res =
        farm_id != 0 ? farm_.results().get(farm_id) : std::nullopt;
    if (!res.has_value()) {
      continue;  // routed id without a stored result: nothing to send
    }
    net::ResultMsg msg;
    msg.remote_id = remote_id;
    msg.result = std::move(*res);
    msg.result.job_id = remote_id;  // remote ids are the client's view
    try {
      std::lock_guard<std::mutex> lock(conn->send_mu);
      conn->sock.send_frame(net::FrameType::kResult, msg.encode());
    } catch (const std::exception&) {
      // The connection died mid-stream: the result goes back to the
      // *front* of the outbox (stream order is preserved for the
      // reconnected session) and the reader's cleanup handles state.
      conn->dead.store(true, std::memory_order_release);
      conn->sock.shutdown_both();
      std::lock_guard<std::mutex> lock(client->mu);
      client->outbox.push_front(remote_id);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(client->mu);
      ++client->results_streamed;
    }
    {
      std::lock_guard<std::mutex> lock(net_mu_);
      ++results_streamed_;
    }
    bump("net.results.streamed");
  }
}

// --- shutdown --------------------------------------------------------------

void FarmdServer::shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  stopping_.store(true, std::memory_order_seq_cst);
  // 1. No new connections, sessions, or submits (Hellos and Submits
  //    that arrive from here on are refused — Goodbye and kStopped
  //    respectively; cancel/fetch/introspect keep working until the
  //    connections close at the end).
  listener_.shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // 2. Wait out submits already past their stopping_ check — they may
  //    still append spill records, and a record that lands after the
  //    emptiness check below would be answered accepted=1 yet never
  //    readmitted this run. Bounded: a client that wedges a reply send
  //    can stall its handler, and then the record is simply left on
  //    disk for restart recovery (which rebuilds its routing state).
  const auto submit_deadline = std::chrono::steady_clock::now() + 5s;
  while (submits_inflight_.load(std::memory_order_seq_cst) != 0 &&
         std::chrono::steady_clock::now() < submit_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  //    Drain the spill backlog through the refill thread: every
  //    accepted-and-spilled spec gets admitted before the farm stops.
  for (;;) {
    bool holding = false;
    for (const auto& h : refill_holding_) {
      holding |= h.load(std::memory_order_acquire);
    }
    if (spill_.empty() && !holding) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  refill_stop_.store(true, std::memory_order_release);
  spill_.stop();
  if (refill_thread_.joinable()) {
    refill_thread_.join();
  }
  // 3. Every admitted job resolves (the farm's drain contract), then
  //    the pump routes the last completions on its way out.
  farm_.drain();
  pump_stop_.store(true, std::memory_order_release);
  if (pump_thread_.joinable()) {
    pump_thread_.join();
  }
  // 4. Give connected subscribers a bounded window to take delivery of
  //    what their outboxes still hold.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    bool undelivered = false;
    {
      std::lock_guard<std::mutex> lock(clients_mu_);
      for (const auto& [name, c] : clients_) {
        std::lock_guard<std::mutex> clock(c->mu);
        if (!c->outbox.empty() && c->subscribed && c->active != nullptr &&
            !c->active->dead.load(std::memory_order_acquire)) {
          undelivered = true;
          break;
        }
      }
    }
    if (!undelivered || std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  writers_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (const auto& [name, c] : clients_) {
      c->cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (const auto& [name, c] : clients_) {
      if (c->writer.joinable()) {
        c->writer.join();
      }
    }
  }
  // 5. Orderly goodbyes, then close every connection and join readers.
  // Snapshot under the lock, act outside it: an exiting reader removes
  // itself from conns_ under conns_mu_, so joining while holding the
  // mutex would deadlock. The shared_ptr copies keep every Conn (and
  // its fd) alive across the shutdown_both calls.
  std::vector<std::shared_ptr<Conn>> live;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    live = conns_;
    readers.swap(conn_threads_);
  }
  for (const auto& conn : live) {
    if (!conn->dead.load(std::memory_order_acquire)) {
      try {
        net::GoodbyeMsg bye;
        bye.reason = "server draining";
        std::lock_guard<std::mutex> slock(conn->send_mu);
        conn->sock.send_frame(net::FrameType::kGoodbye, bye.encode());
      } catch (const std::exception&) {
      }
    }
    conn->sock.shutdown_both();
  }
  for (std::thread& t : readers) {
    if (t.joinable()) {
      t.join();
    }
  }
  live.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
    finished_conn_ids_.clear();
  }
  // A Hello that raced the stopping_ flag may have created a client —
  // and its writer thread — after step 4's join pass. Every reader is
  // joined now, so the client map is final: join any straggler writer
  // (writers_stop_ is already set, so it exits on its first predicate
  // check). Without this pass, ~ClientState would destroy a joinable
  // std::thread and terminate the process.
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    for (const auto& [name, c] : clients_) {
      if (c->writer.joinable()) {
        c->writer.join();
      }
    }
  }
  farm_.set_ingress_provider({});
  farm_.shutdown();
}

}  // namespace tmsim::farmd
