#include "rtlsim/rtl_noc.h"

#include <array>
#include <string>

#include "rtlsim/std_logic.h"

namespace tmsim::rtlsim {

using noc::CreditWires;
using noc::Flit;
using noc::FlitType;
using noc::kPorts;
using noc::LinkForward;
using noc::Port;

namespace {

/// One input queue's registers as a signal value: flit slots carried as
/// 9-value std_logic vectors, the way a VHDL simulator stores them.
struct QueueRegs {
  std::vector<StdLogicVector> slots;  // encoded flits, 18 std_logic each
  std::uint8_t rd = 0;
  std::uint8_t wr = 0;
  bool full = false;
  bool locked = false;
  std::uint8_t out_port = 0;

  friend bool operator==(const QueueRegs&, const QueueRegs&) = default;
};

/// One output port's four VC state registers.
struct OvcGroupRegs {
  std::array<noc::OutVcState, 4> vc{};

  friend bool operator==(const OvcGroupRegs&, const OvcGroupRegs&) = default;
};

QueueRegs to_regs(const noc::QueueState& q, std::size_t depth) {
  QueueRegs r;
  r.slots.resize(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    r.slots[i] = to_std_logic(encode_flit(q.fifo.slot(i)), noc::kFlitBits);
  }
  r.rd = static_cast<std::uint8_t>(q.fifo.read_pos());
  r.wr = static_cast<std::uint8_t>(q.fifo.write_pos());
  r.full = q.fifo.full();
  r.locked = q.locked;
  r.out_port = static_cast<std::uint8_t>(q.out_port);
  return r;
}

noc::QueueState to_state(const QueueRegs& r, std::size_t depth) {
  noc::QueueState q(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    q.fifo.slot(i) = noc::decode_flit(
        static_cast<std::uint32_t>(from_std_logic(r.slots[i])));
  }
  const std::size_t size =
      r.full ? depth : (r.wr + depth - r.rd) % depth;
  q.fifo.restore(r.rd, r.wr, size);
  q.locked = r.locked;
  q.out_port = static_cast<Port>(r.out_port);
  return q;
}

}  // namespace

/// All signals of one router instance.
struct RtlNocSimulation::RouterNode {
  noc::RouterEnv env;
  std::vector<std::unique_ptr<des::Signal<QueueRegs>>> queue;   // 20
  std::vector<std::unique_ptr<des::Signal<OvcGroupRegs>>> ovc;  // 5
  std::vector<std::unique_ptr<des::Signal<std::uint8_t>>> rr;   // 5
  std::vector<std::unique_ptr<des::Signal<int>>> grant;         // 5
  std::vector<std::unique_ptr<des::Signal<StdLogicVector>>> fwd_out;    // 5
  std::vector<std::unique_ptr<des::Signal<StdLogicVector>>> credit_out; // 5
  std::unique_ptr<des::Signal<StdLogicVector>> local_in;
  std::vector<des::Signal<StdLogicVector>*> fwd_in;      // 5 (aliases)
  std::vector<des::Signal<StdLogicVector>*> credit_in;   // 5 (aliases)

  /// Assembles the registered state from the individual signals.
  noc::RouterState assemble(const noc::RouterConfig& cfg) const {
    noc::RouterState s(cfg);
    for (std::size_t q = 0; q < cfg.num_queues(); ++q) {
      s.queues[q] = to_state(queue[q]->read(), cfg.queue_depth);
    }
    for (std::size_t o = 0; o < kPorts; ++o) {
      const OvcGroupRegs& g = ovc[o]->read();
      for (std::size_t v = 0; v < cfg.num_vcs; ++v) {
        s.out_vcs[o * cfg.num_vcs + v] = g.vc[v];
      }
      s.rr_ptr[o] = rr[o]->read();
    }
    return s;
  }
};

RtlNocSimulation::RtlNocSimulation(const noc::NetworkConfig& net)
    : net_(net), codec_(net.router) {
  net_.validate();
  const std::size_t n = net_.num_routers();
  const noc::RouterConfig& cfg = net_.router;
  const std::size_t num_vcs = cfg.num_vcs;
  const std::size_t nq = cfg.num_queues();
  const std::uint8_t credit_mask =
      static_cast<std::uint8_t>((1u << cfg.credit_bits()) - 1);

  // Elaborate signals.
  const noc::RouterState reset(cfg);
  routers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto node = std::make_unique<RouterNode>();
    node->env = noc::RouterEnv{&net_, router_coord(net_, r)};
    const std::string base = "r" + std::to_string(r);
    for (std::size_t q = 0; q < nq; ++q) {
      node->queue.push_back(std::make_unique<des::Signal<QueueRegs>>(
          kernel_, base + ".q" + std::to_string(q),
          to_regs(reset.queues[q], cfg.queue_depth)));
    }
    for (std::size_t o = 0; o < kPorts; ++o) {
      OvcGroupRegs g;
      for (std::size_t v = 0; v < num_vcs; ++v) {
        g.vc[v] = reset.out_vcs[o * num_vcs + v];
      }
      node->ovc.push_back(std::make_unique<des::Signal<OvcGroupRegs>>(
          kernel_, base + ".ovc" + std::to_string(o), g));
      node->rr.push_back(std::make_unique<des::Signal<std::uint8_t>>(
          kernel_, base + ".rr" + std::to_string(o), 0));
      node->grant.push_back(std::make_unique<des::Signal<int>>(
          kernel_, base + ".grant" + std::to_string(o), -1));
      node->fwd_out.push_back(std::make_unique<des::Signal<StdLogicVector>>(
          kernel_, base + ".fwd" + std::to_string(o),
          to_std_logic(0, noc::kForwardBits)));
      node->credit_out.push_back(
          std::make_unique<des::Signal<StdLogicVector>>(
              kernel_, base + ".cr" + std::to_string(o),
              to_std_logic(0, num_vcs)));
    }
    node->local_in = std::make_unique<des::Signal<StdLogicVector>>(
        kernel_, base + ".local_in", to_std_logic(0, noc::kForwardBits));
    routers_.push_back(std::move(node));
  }

  // Wiring: alias input pointers at the drivers' output signals.
  for (std::size_t r = 0; r < n; ++r) {
    RouterNode& node = *routers_[r];
    node.fwd_in.assign(kPorts, nullptr);
    node.credit_in.assign(kPorts, nullptr);
    node.fwd_in[static_cast<std::size_t>(Port::kLocal)] = node.local_in.get();
    for (std::size_t p = 1; p < kPorts; ++p) {
      const noc::UpstreamPort up = upstream_of(net_, r, static_cast<Port>(p));
      if (up.connected) {
        node.fwd_in[p] =
            routers_[up.router]->fwd_out[static_cast<std::size_t>(up.port)]
                .get();
        node.credit_in[p] =
            routers_[up.router]->credit_out[static_cast<std::size_t>(up.port)]
                .get();
      }
    }
  }

  // Processes.
  for (std::size_t r = 0; r < n; ++r) {
    RouterNode* node = routers_[r].get();
    const std::string base = "r" + std::to_string(r);

    // Combinational crossbar / arbitration network: grants, forwarded
    // flits and credit returns from the registered state (shared logic).
    const std::size_t comb = kernel_.add_process(
        [this, node] {
          const noc::RouterState s = node->assemble(net_.router);
          const noc::Grants g = compute_grants(s, node->env);
          const noc::RouterOutputs out = compute_outputs(s, g, node->env);
          for (std::size_t o = 0; o < kPorts; ++o) {
            node->grant[o]->write(g.granted[o]);
            // Signal assignments go through the 1164 resolution per bit.
            StdLogicVector fwd;
            drive(fwd, to_std_logic(encode_forward(out.fwd_out[o]),
                                    noc::kForwardBits));
            node->fwd_out[o]->write(fwd);
            StdLogicVector cr;
            drive(cr, to_std_logic(encode_credit(out.credit_out[o]),
                                   net_.router.num_vcs));
            node->credit_out[o]->write(cr);
          }
        },
        base + ".xbar");
    for (std::size_t q = 0; q < nq; ++q) {
      kernel_.make_sensitive(comb, *node->queue[q]);
    }
    for (std::size_t o = 0; o < kPorts; ++o) {
      kernel_.make_sensitive(comb, *node->ovc[o]);
      kernel_.make_sensitive(comb, *node->rr[o]);
    }

    // One clocked process per input queue: push from the input link, pop
    // on grant, wormhole lock bookkeeping.
    for (std::size_t q = 0; q < nq; ++q) {
      kernel_.add_clocked_process(
          [this, node, q, num_vcs] {
            const std::size_t depth = net_.router.queue_depth;
            noc::QueueState qs = to_state(node->queue[q]->read(), depth);
            // Pop: did any output arbiter grant this queue?
            for (std::size_t o = 0; o < kPorts; ++o) {
              if (node->grant[o]->read() == static_cast<int>(q)) {
                const Flit f = qs.fifo.pop();
                if (f.type == FlitType::kHead) {
                  qs.locked = true;
                  qs.out_port = static_cast<Port>(o);
                } else if (f.type == FlitType::kTail) {
                  qs.locked = false;
                }
                break;
              }
            }
            // Push: flit arriving on this queue's port and VC.
            const std::size_t p = q / num_vcs;
            const std::size_t v = q % num_vcs;
            if (node->fwd_in[p] != nullptr) {
              const LinkForward f = noc::decode_forward(
                  static_cast<std::uint32_t>(
                      from_std_logic(node->fwd_in[p]->read())));
              if (f.valid && f.vc == v) {
                qs.fifo.push_overwrite(f.flit);
              }
            }
            node->queue[q]->write(to_regs(qs, depth));
          },
          base + ".q" + std::to_string(q) + ".seq");
    }

    // One clocked process per output port's VC state group: wormhole
    // locks on the output side and the credit counters (with register
    // wrap, identical to the shared next-state function).
    for (std::size_t o = 0; o < kPorts; ++o) {
      kernel_.add_clocked_process(
          [this, node, o, num_vcs, credit_mask] {
            OvcGroupRegs g = node->ovc[o]->read();
            const int granted = node->grant[o]->read();
            if (granted >= 0) {
              const auto q = static_cast<std::size_t>(granted);
              const std::size_t v = q % num_vcs;
              const QueueRegs& regs = node->queue[q]->read();
              const Flit f = noc::decode_flit(static_cast<std::uint32_t>(
                  from_std_logic(regs.slots[regs.rd])));
              if (f.type == FlitType::kHead) {
                g.vc[v].busy = true;
                g.vc[v].owner_port = static_cast<std::uint8_t>(q / num_vcs);
              } else if (f.type == FlitType::kTail) {
                g.vc[v].busy = false;
              }
              TMSIM_CHECK_MSG(g.vc[v].credits > 0,
                              "flit forwarded without a credit");
              --g.vc[v].credits;
            }
            // Credit returns: downstream wires, or the NI echo on the
            // local port (consume-and-credit in the same cycle).
            CreditWires cr;
            if (o == static_cast<std::size_t>(Port::kLocal)) {
              if (granted >= 0) {
                cr.set(static_cast<std::size_t>(granted) % num_vcs);
              }
            } else if (node->credit_in[o] != nullptr) {
              cr = noc::decode_credit(
                  static_cast<std::uint32_t>(
                      from_std_logic(node->credit_in[o]->read())),
                  num_vcs);
            }
            for (std::size_t v = 0; v < num_vcs; ++v) {
              if (cr.get(v)) {
                g.vc[v].credits = static_cast<std::uint8_t>(
                    (g.vc[v].credits + 1) & credit_mask);
              }
            }
            node->ovc[o]->write(g);
          },
          base + ".ovc" + std::to_string(o) + ".seq");
    }

    // One clocked process per round-robin pointer.
    for (std::size_t o = 0; o < kPorts; ++o) {
      kernel_.add_clocked_process(
          [node, o, nq] {
            const int granted = node->grant[o]->read();
            if (granted >= 0) {
              node->rr[o]->write(static_cast<std::uint8_t>(
                  (static_cast<std::size_t>(granted) + 1) % nq));
            }
          },
          base + ".rr" + std::to_string(o) + ".seq");
    }
  }

  captured_out_.assign(n, LinkForward{});
  captured_credits_.assign(n, CreditWires{});
  kernel_.initialize();
}

RtlNocSimulation::~RtlNocSimulation() = default;

void RtlNocSimulation::set_local_input(std::size_t r, const LinkForward& f) {
  StdLogicVector v;
  drive(v, to_std_logic(encode_forward(f), noc::kForwardBits));
  routers_.at(r)->local_in->write(v);
}

void RtlNocSimulation::step() {
  kernel_.settle();
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    captured_out_[r] = noc::decode_forward(static_cast<std::uint32_t>(
        from_std_logic(routers_[r]
                           ->fwd_out[static_cast<std::size_t>(Port::kLocal)]
                           ->read())));
    captured_credits_[r] = noc::decode_credit(
        static_cast<std::uint32_t>(from_std_logic(
            routers_[r]
                ->credit_out[static_cast<std::size_t>(Port::kLocal)]
                ->read())),
        net_.router.num_vcs);
  }
  kernel_.tick();
  for (auto& node : routers_) {
    node->local_in->write(to_std_logic(0, noc::kForwardBits));
  }
  ++cycle_;
}

LinkForward RtlNocSimulation::local_output(std::size_t r) const {
  return captured_out_.at(r);
}

CreditWires RtlNocSimulation::local_input_credits(std::size_t r) const {
  return captured_credits_.at(r);
}

BitVector RtlNocSimulation::router_state_word(std::size_t r) const {
  return codec_.serialize(routers_.at(r)->assemble(net_.router));
}

}  // namespace tmsim::rtlsim
