// RtlNocSimulation: the "VHDL baseline" of Table 3 — the router modeled
// at the granularity a VHDL simulator sees it: one process per register
// group (every input queue, every output-VC state group, every arbiter
// pointer) plus the combinational crossbar/arbitration network, all
// communicating through individual signals with per-signal value-change
// detection. ~31 processes and ~45 signals per router, against 2
// processes per router in the sysc model and zero event machinery in the
// sequential simulator — the event amplification is what makes RTL-level
// simulation slow (§3/§6), and this engine measures it honestly.
//
// Bit-exactness: the combinational network calls the shared
// noc/router_logic.h functions; the per-register clocked processes
// reimplement exactly their slice of compute_next_state (pop/lock, credit
// arithmetic with register wrap, push_overwrite) and the cross-engine
// lockstep suite verifies every register bit every cycle.
#pragma once

#include <memory>
#include <vector>

#include "des/kernel.h"
#include "noc/network.h"

namespace tmsim::rtlsim {

class RtlNocSimulation : public noc::NocSimulation {
 public:
  explicit RtlNocSimulation(const noc::NetworkConfig& net);
  ~RtlNocSimulation() override;

  const noc::NetworkConfig& config() const override { return net_; }
  void set_local_input(std::size_t r, const noc::LinkForward& f) override;
  void step() override;
  noc::LinkForward local_output(std::size_t r) const override;
  noc::CreditWires local_input_credits(std::size_t r) const override;
  BitVector router_state_word(std::size_t r) const override;
  SystemCycle cycle() const override { return cycle_; }

  const des::KernelStats& kernel_stats() const { return kernel_.stats(); }

 private:
  struct RouterNode;

  noc::NetworkConfig net_;
  noc::RouterStateCodec codec_;
  des::Kernel kernel_;
  std::vector<std::unique_ptr<RouterNode>> routers_;
  std::vector<noc::LinkForward> captured_out_;
  std::vector<noc::CreditWires> captured_credits_;
  SystemCycle cycle_ = 0;
};

}  // namespace tmsim::rtlsim
