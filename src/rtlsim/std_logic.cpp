#include "rtlsim/std_logic.h"

namespace tmsim::rtlsim {

namespace {
// IEEE 1164 resolution table (std_logic_1164 body), indexed [a][b].
constexpr StdLogic U = StdLogic::kU;
constexpr StdLogic X = StdLogic::kX;
constexpr StdLogic O = StdLogic::k0;
constexpr StdLogic I = StdLogic::k1;
constexpr StdLogic Z = StdLogic::kZ;
constexpr StdLogic W = StdLogic::kW;
constexpr StdLogic L = StdLogic::kL;
constexpr StdLogic H = StdLogic::kH;
constexpr StdLogic D = StdLogic::kDash;

constexpr StdLogic kTable[9][9] = {
    // U  X  0  1  Z  W  L  H  -
    {U, U, U, U, U, U, U, U, U},  // U
    {U, X, X, X, X, X, X, X, X},  // X
    {U, X, O, X, O, O, O, O, X},  // 0
    {U, X, X, I, I, I, I, I, X},  // 1
    {U, X, O, I, Z, W, L, H, X},  // Z
    {U, X, O, I, W, W, W, W, X},  // W
    {U, X, O, I, L, W, L, W, X},  // L
    {U, X, O, I, H, W, W, H, X},  // H
    {U, X, X, X, X, X, X, X, X},  // -
};
}  // namespace

StdLogic resolve(StdLogic a, StdLogic b) {
  return kTable[static_cast<int>(a)][static_cast<int>(b)];
}

StdLogicVector to_std_logic(std::uint64_t value, std::size_t width) {
  StdLogicVector v;
  v.bits.resize(width);
  for (std::size_t i = 0; i < width; ++i) {
    v.bits[i] = ((value >> i) & 1u) ? StdLogic::k1 : StdLogic::k0;
  }
  return v;
}

std::uint64_t from_std_logic(const StdLogicVector& v) {
  TMSIM_CHECK_MSG(v.bits.size() <= 64, "std_logic vector wider than 64");
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < v.bits.size(); ++i) {
    switch (v.bits[i]) {
      case StdLogic::k1:
        out |= std::uint64_t{1} << i;
        break;
      case StdLogic::k0:
        break;
      default:
        throw Error("metavalue ('U'/'X'/'Z'/...) read as an integer");
    }
  }
  return out;
}

void drive(StdLogicVector& target, const StdLogicVector& next) {
  if (target.bits.size() != next.bits.size()) {
    target.bits.assign(next.bits.size(), StdLogic::kU);
  }
  for (std::size_t i = 0; i < next.bits.size(); ++i) {
    // Single driver: the resolution collapses to the driven value, but a
    // VHDL kernel still walks the table per bit.
    target.bits[i] = resolve(next.bits[i], next.bits[i]);
  }
}

}  // namespace tmsim::rtlsim
