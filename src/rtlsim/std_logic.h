// IEEE 1164 9-value logic, byte per bit — the signal representation a
// VHDL simulator actually maintains at RTL, and a large part of why VHDL
// simulation is slow (Table 3's 10–17 Hz): every signal assignment runs
// the per-bit resolution table and every reader converts back to the
// two-value world of the logic being evaluated.
//
// The rtlsim engine carries all link and queue-slot values in this form;
// integer values convert at each process boundary. Only '0'/'1' ever
// appear in a correct run — 'U'/'X' leaking into a conversion is reported
// as the modeling error it would be in a VHDL testbench.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace tmsim::rtlsim {

enum class StdLogic : std::uint8_t {
  kU = 0,  // uninitialized
  kX = 1,  // forcing unknown
  k0 = 2,
  k1 = 3,
  kZ = 4,  // high impedance
  kW = 5,  // weak unknown
  kL = 6,  // weak 0
  kH = 7,  // weak 1
  kDash = 8,  // don't care
};

/// IEEE 1164 resolution for two drivers (symmetric table).
StdLogic resolve(StdLogic a, StdLogic b);

struct StdLogicVector {
  std::vector<StdLogic> bits;  // LSB first

  friend bool operator==(const StdLogicVector&, const StdLogicVector&) =
      default;
};

/// Encodes the low `width` bits of `value`.
StdLogicVector to_std_logic(std::uint64_t value, std::size_t width);

/// Decodes to an integer; throws if any bit is not '0'/'1'.
std::uint64_t from_std_logic(const StdLogicVector& v);

/// Drives `next` onto `target` through the resolution function, as a VHDL
/// signal assignment with a single driver does (resolve against the
/// driver's previous value models the per-bit table lookup cost).
void drive(StdLogicVector& target, const StdLogicVector& next);

}  // namespace tmsim::rtlsim
