// SyscNocSimulation: the "SystemC baseline" of Table 3 — the NoC modeled
// the way the authors' cycle/bit-accurate SystemC description was (§3):
// per router one combinational method (crossbar, arbitration, credit
// return) and one clocked method (queues, locks, counters), communicating
// through sc_signal-style channels carrying bit-vector values.
//
// The router *logic* is the shared noc/router_logic.h spec, so results
// are bit-identical to every other engine; what differs — and what this
// engine measures — is the simulation machinery: event-driven scheduling,
// per-signal value-change detection, and state carried as signals of
// serialized bit vectors (the RT-level SystemC idiom of sc_lv registers).
#pragma once

#include <memory>
#include <vector>

#include "des/kernel.h"
#include "noc/network.h"

namespace tmsim::sysc {

class SyscNocSimulation : public noc::NocSimulation {
 public:
  explicit SyscNocSimulation(const noc::NetworkConfig& net);
  ~SyscNocSimulation() override;

  const noc::NetworkConfig& config() const override { return net_; }
  void set_local_input(std::size_t r, const noc::LinkForward& f) override;
  void step() override;
  noc::LinkForward local_output(std::size_t r) const override;
  noc::CreditWires local_input_credits(std::size_t r) const override;
  BitVector router_state_word(std::size_t r) const override;
  SystemCycle cycle() const override { return cycle_; }

  /// Kernel statistics (process activations, deltas, commits) — the cost
  /// drivers of the SystemC baseline row in Table 3.
  const des::KernelStats& kernel_stats() const { return kernel_.stats(); }

 private:
  struct RouterNode;

  noc::NetworkConfig net_;
  noc::RouterStateCodec codec_;
  des::Kernel kernel_;
  std::vector<std::unique_ptr<RouterNode>> routers_;
  // Captured link values: what was on the local wires *during* the cycle
  // just stepped (the settle after the edge already shows next-cycle
  // values).
  std::vector<noc::LinkForward> captured_out_;
  std::vector<noc::CreditWires> captured_credits_;
  SystemCycle cycle_ = 0;
};

}  // namespace tmsim::sysc
