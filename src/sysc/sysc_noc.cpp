#include "sysc/sysc_noc.h"

#include <string>

namespace tmsim::sysc {

using noc::CreditWires;
using noc::kPorts;
using noc::LinkForward;
using noc::Port;

/// Per-router signals and processes.
struct SyscNocSimulation::RouterNode {
  RouterNode(des::Kernel& k, std::size_t index, const noc::RouterStateCodec& c)
      : state(k, "r" + std::to_string(index) + ".state", c.reset_word()) {
    const std::string base = "r" + std::to_string(index);
    fwd_out.reserve(kPorts);
    credit_out.reserve(kPorts);
    fwd_in.assign(kPorts, nullptr);
    credit_in.assign(kPorts, nullptr);
    for (std::size_t p = 0; p < kPorts; ++p) {
      fwd_out.push_back(std::make_unique<des::Signal<std::uint32_t>>(
          k, base + ".fwd" + std::to_string(p), 0));
      credit_out.push_back(std::make_unique<des::Signal<std::uint32_t>>(
          k, base + ".cr" + std::to_string(p), 0));
    }
  }

  /// The registered state as an sc_lv-style bit vector signal.
  des::Signal<BitVector> state;
  /// Combinational outputs the router drives (G).
  std::vector<std::unique_ptr<des::Signal<std::uint32_t>>> fwd_out;
  std::vector<std::unique_ptr<des::Signal<std::uint32_t>>> credit_out;
  /// Input wiring: pointers at the driving routers' output signals (or at
  /// the external local-input signal).
  std::vector<des::Signal<std::uint32_t>*> fwd_in;
  std::vector<des::Signal<std::uint32_t>*> credit_in;
  /// External local input (testbench-driven).
  std::unique_ptr<des::Signal<std::uint32_t>> local_in;
  noc::RouterEnv env;
};

SyscNocSimulation::SyscNocSimulation(const noc::NetworkConfig& net)
    : net_(net), codec_(net.router) {
  net_.validate();
  const std::size_t n = net_.num_routers();
  const std::size_t num_vcs = net_.router.num_vcs;

  routers_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    routers_.push_back(std::make_unique<RouterNode>(kernel_, r, codec_));
    routers_[r]->env = noc::RouterEnv{&net_, router_coord(net_, r)};
    routers_[r]->local_in = std::make_unique<des::Signal<std::uint32_t>>(
        kernel_, "r" + std::to_string(r) + ".local_in", 0);
  }

  // Wiring: input pointers alias the neighbours' output signals.
  for (std::size_t r = 0; r < n; ++r) {
    RouterNode& node = *routers_[r];
    node.fwd_in[static_cast<std::size_t>(Port::kLocal)] = node.local_in.get();
    for (std::size_t p = 1; p < kPorts; ++p) {
      const noc::UpstreamPort up = upstream_of(net_, r, static_cast<Port>(p));
      if (up.connected) {
        node.fwd_in[p] =
            routers_[up.router]->fwd_out[static_cast<std::size_t>(up.port)]
                .get();
        // Credits for our output port p come back from the neighbour's
        // credit_out on its input port facing us (same port index).
        node.credit_in[p] =
            routers_[up.router]->credit_out[static_cast<std::size_t>(up.port)]
                .get();
      }
    }
  }

  // Processes: one combinational (G) and one clocked (F) per router.
  for (std::size_t r = 0; r < n; ++r) {
    RouterNode* node = routers_[r].get();
    const std::size_t comb = kernel_.add_process(
        [this, node] {
          const noc::RouterState s = codec_.deserialize(node->state.read());
          const noc::RouterOutputs out = compute_outputs(s, node->env);
          for (std::size_t p = 0; p < kPorts; ++p) {
            node->fwd_out[p]->write(encode_forward(out.fwd_out[p]));
            node->credit_out[p]->write(encode_credit(out.credit_out[p]));
          }
        },
        "r" + std::to_string(r) + ".comb");
    kernel_.make_sensitive(comb, node->state);

    kernel_.add_clocked_process(
        [this, node, num_vcs] {
          const noc::RouterState s = codec_.deserialize(node->state.read());
          noc::RouterInputs in;
          for (std::size_t p = 0; p < kPorts; ++p) {
            if (node->fwd_in[p] != nullptr) {
              in.fwd_in[p] = noc::decode_forward(node->fwd_in[p]->read());
            }
            if (node->credit_in[p] != nullptr) {
              in.credit_in[p] =
                  noc::decode_credit(node->credit_in[p]->read(), num_vcs);
            }
          }
          // Local NI echo: consume-and-credit in the same cycle.
          const LinkForward delivered = noc::decode_forward(
              node->fwd_out[static_cast<std::size_t>(Port::kLocal)]->read());
          if (delivered.valid) {
            in.credit_in[static_cast<std::size_t>(Port::kLocal)].set(
                delivered.vc);
          }
          node->state.write(
              codec_.serialize(compute_next_state(s, in, node->env)));
        },
        "r" + std::to_string(r) + ".seq");
  }

  captured_out_.assign(n, LinkForward{});
  captured_credits_.assign(n, CreditWires{});
  kernel_.initialize();
}

SyscNocSimulation::~SyscNocSimulation() = default;

void SyscNocSimulation::set_local_input(std::size_t r, const LinkForward& f) {
  routers_.at(r)->local_in->write(encode_forward(f));
}

void SyscNocSimulation::step() {
  // Commit testbench pokes (no comb process watches the inputs, but the
  // write still needs its update phase).
  kernel_.settle();
  // Capture what is on the wires *during* this cycle, pre-edge.
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    captured_out_[r] = noc::decode_forward(
        routers_[r]->fwd_out[static_cast<std::size_t>(Port::kLocal)]->read());
    captured_credits_[r] = noc::decode_credit(
        routers_[r]
            ->credit_out[static_cast<std::size_t>(Port::kLocal)]
            ->read(),
        net_.router.num_vcs);
  }
  kernel_.tick();
  // Inputs are per-cycle pulses.
  for (auto& node : routers_) {
    node->local_in->write(0);
  }
  ++cycle_;
}

LinkForward SyscNocSimulation::local_output(std::size_t r) const {
  return captured_out_.at(r);
}

CreditWires SyscNocSimulation::local_input_credits(std::size_t r) const {
  return captured_credits_.at(r);
}

BitVector SyscNocSimulation::router_state_word(std::size_t r) const {
  return routers_.at(r)->state.read();
}

}  // namespace tmsim::sysc
