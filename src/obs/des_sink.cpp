#include "obs/des_sink.h"

#include "obs/metrics.h"

namespace tmsim::obs {

void export_kernel_stats(const des::KernelStats& stats,
                         MetricsRegistry& registry,
                         const std::string& labels) {
  registry.counter("des.ticks", labels).set(stats.ticks);
  registry.counter("des.delta_cycles", labels).set(stats.delta_cycles);
  registry.counter("des.process_activations", labels)
      .set(stats.process_activations);
  registry.counter("des.signal_commits", labels).set(stats.signal_commits);
}

}  // namespace tmsim::obs
