#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <unordered_map>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"  // json_escape

namespace tmsim::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer — cheap, well-distributed id mixing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

std::string hex16(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Tracer::Tracer(Options opt) : opt_(opt), epoch_ns_(steady_ns()) {}

double Tracer::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) / 1000.0;
}

bool Tracer::should_sample() {
  if (opt_.sample_every == 0) {
    ticket_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
  return t % opt_.sample_every == 0;
}

TraceContext Tracer::start_trace(std::uint64_t key) {
  const std::uint64_t nonce = traces_.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_id = mix64(key ^ mix64(nonce));
  if (ctx.trace_id == 0) {
    ctx.trace_id = 1;  // 0 is the "unsampled" sentinel
  }
  ctx.span_id = alloc_span_id();
  ctx.parent_span_id = 0;
  return ctx;
}

std::uint64_t Tracer::alloc_span_id() {
  return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Tracer::span(
    const TraceContext& ctx, std::uint64_t span_id,
    std::uint64_t parent_span_id, std::string_view name, std::uint32_t attempt,
    std::uint32_t tid, double start_us, double end_us,
    std::initializer_list<std::pair<std::string_view, std::string>> args) {
  if (!ctx.sampled()) {
    return;
  }
  if (recorded_.fetch_add(1, std::memory_order_relaxed) >= opt_.max_spans) {
    recorded_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = span_id;
  rec.parent_span_id = parent_span_id;
  rec.attempt = attempt;
  rec.tid = tid;
  rec.start_us = start_us;
  rec.end_us = end_us;
  rec.name.assign(name.data(), name.size());
  if (args.size() != 0) {
    std::string a = "{";
    bool first = true;
    for (const auto& [k, v] : args) {
      if (!first) {
        a += ", ";
      }
      first = false;
      a += '"';
      a += json_escape(std::string(k));
      a += "\": \"";
      a += json_escape(v);
      a += '"';
    }
    a += "}";
    rec.args_json = std::move(a);
  }
  Shard& shard = shards_[span_id % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.spans.push_back(std::move(rec));
}

std::uint64_t Tracer::traces_started() const {
  return traces_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::samples_seen() const {
  return ticket_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::spans_recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::spans_dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  }
  // Deterministic order for logs and diffs: by trace, then time.
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) {
                return a.trace_id < b.trace_id;
              }
              if (a.start_us != b.start_us) {
                return a.start_us < b.start_us;
              }
              return a.span_id < b.span_id;
            });
  return out;
}

void Tracer::write_jsonl(std::ostream& os) const {
  for (const SpanRecord& s : snapshot()) {
    os << "{\"trace\": \"" << hex16(s.trace_id) << "\", \"span\": " << s.span_id
       << ", \"parent\": " << s.parent_span_id << ", \"name\": \""
       << json_escape(s.name) << "\", \"attempt\": " << s.attempt
       << ", \"tid\": " << s.tid << ", \"ts\": " << fmt_us(s.start_us)
       << ", \"dur\": " << fmt_us(s.end_us - s.start_us);
    if (!s.args_json.empty()) {
      os << ", \"args\": " << s.args_json;
    }
    os << "}\n";
  }
}

void Tracer::export_chrome(ChromeTrace& trace) const {
  const std::vector<SpanRecord> spans = snapshot();  // trace-then-time order
  for (const SpanRecord& s : spans) {
    trace.span(s.name, s.start_us, s.end_us - s.start_us, s.tid,
               {{"trace", hex16(s.trace_id)},
                {"span", std::to_string(s.span_id)},
                {"parent", std::to_string(s.parent_span_id)},
                {"attempt", std::to_string(s.attempt)}});
  }
  // One flow chain + one async bracket per trace: the arrows and the
  // umbrella lane that make a job's life legible across worker tracks.
  std::size_t i = 0;
  while (i < spans.size()) {
    std::size_t j = i;
    while (j < spans.size() && spans[j].trace_id == spans[i].trace_id) {
      ++j;
    }
    const SpanRecord& first = spans[i];
    double end_us = first.end_us;
    for (std::size_t k = i; k < j; ++k) {
      end_us = std::max(end_us, spans[k].end_us);
    }
    trace.async_begin("farm.job", "trace", first.trace_id, first.start_us,
                      first.tid);
    trace.async_end("farm.job", "trace", first.trace_id, end_us, first.tid);
    for (std::size_t k = i; k < j; ++k) {
      const char* step = k == i ? "s" : (k + 1 == j ? "f" : "t");
      trace.flow(step[0], spans[k].name, spans[k].trace_id,
                 spans[k].start_us, spans[k].tid);
    }
    i = j;
  }
}

namespace {

/// Minimal field extraction from one JSONL line. Keys are written by
/// write_jsonl, so the format is fully under our control.
bool find_number(const std::string& line, const std::string& key,
                 double* out) {
  const std::string pat = "\"" + key + "\": ";
  const std::size_t pos = line.find(pat);
  if (pos == std::string::npos) {
    return false;
  }
  try {
    *out = std::stod(line.substr(pos + pat.size()));
  } catch (...) {
    return false;
  }
  return true;
}

bool find_string(const std::string& line, const std::string& key,
                 std::string* out) {
  const std::string pat = "\"" + key + "\": \"";
  const std::size_t pos = line.find(pat);
  if (pos == std::string::npos) {
    return false;
  }
  const std::size_t start = pos + pat.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start);
  return true;
}

struct ParsedSpan {
  std::size_t line_no = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;
  std::uint32_t attempt = 0;
  double ts = 0.0;
  double dur = 0.0;
};

}  // namespace

std::optional<std::string> trace_validate(std::istream& is) {
  std::map<std::string, std::vector<ParsedSpan>> traces;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string trace_id;
    std::string name;
    ParsedSpan s;
    s.line_no = line_no;
    double span_d = 0.0;
    double parent_d = 0.0;
    double attempt_d = 0.0;
    if (!find_string(line, "trace", &trace_id) ||
        !find_string(line, "name", &name) ||
        !find_number(line, "span", &span_d) ||
        !find_number(line, "parent", &parent_d) ||
        !find_number(line, "attempt", &attempt_d) ||
        !find_number(line, "ts", &s.ts) || !find_number(line, "dur", &s.dur)) {
      return "line " + std::to_string(line_no) + ": missing required field";
    }
    if (s.dur < 0.0) {
      return "line " + std::to_string(line_no) + ": span not closed (dur < 0)";
    }
    s.span_id = static_cast<std::uint64_t>(span_d);
    s.parent = static_cast<std::uint64_t>(parent_d);
    s.attempt = static_cast<std::uint32_t>(attempt_d);
    if (s.span_id == 0) {
      return "line " + std::to_string(line_no) + ": span id 0";
    }
    traces[trace_id].push_back(s);
  }
  for (const auto& [trace_id, spans] : traces) {
    std::unordered_map<std::uint64_t, const ParsedSpan*> by_id;
    const ParsedSpan* root = nullptr;
    for (const ParsedSpan& s : spans) {
      if (!by_id.emplace(s.span_id, &s).second) {
        return "trace " + trace_id + " line " + std::to_string(s.line_no) +
               ": duplicate span id " + std::to_string(s.span_id);
      }
      if (s.parent == 0) {
        if (root != nullptr) {
          return "trace " + trace_id + " line " + std::to_string(s.line_no) +
                 ": second root span";
        }
        root = &s;
      }
    }
    if (root == nullptr) {
      return "trace " + trace_id + ": no root span";
    }
    std::unordered_map<std::uint64_t, std::vector<const ParsedSpan*>> children;
    for (const ParsedSpan& s : spans) {
      if (s.parent == 0) {
        continue;
      }
      const auto it = by_id.find(s.parent);
      if (it == by_id.end()) {
        return "trace " + trace_id + " line " + std::to_string(s.line_no) +
               ": parent span " + std::to_string(s.parent) + " missing";
      }
      const ParsedSpan& p = *it->second;
      if (p.ts > s.ts) {
        return "trace " + trace_id + " line " + std::to_string(s.line_no) +
               ": child starts before its parent";
      }
      // Retry chains: an attempt-k span hangs off the root/queue side
      // (attempt 0) or its own attempt's segment — never a sibling
      // attempt, so each retry is its own child chain.
      if (s.attempt != 0 && p.attempt != 0 && p.attempt != s.attempt) {
        return "trace " + trace_id + " line " + std::to_string(s.line_no) +
               ": attempt " + std::to_string(s.attempt) +
               " span parented to attempt " + std::to_string(p.attempt);
      }
      children[s.parent].push_back(&s);
    }
    // One connected tree: everything reachable from the root.
    std::vector<const ParsedSpan*> stack = {root};
    std::size_t visited = 0;
    while (!stack.empty()) {
      const ParsedSpan* s = stack.back();
      stack.pop_back();
      ++visited;
      const auto it = children.find(s->span_id);
      if (it != children.end()) {
        for (const ParsedSpan* c : it->second) {
          stack.push_back(c);
        }
      }
    }
    if (visited != spans.size()) {
      return "trace " + trace_id + ": disconnected (" +
             std::to_string(visited) + " of " + std::to_string(spans.size()) +
             " spans reachable from the root)";
    }
  }
  return std::nullopt;
}

}  // namespace tmsim::obs
