#include "obs/chrome_trace.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"  // json_escape

namespace tmsim::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

ChromeTrace::ChromeTrace() : epoch_ns_(steady_ns()) {}

double ChromeTrace::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) / 1000.0;
}

std::string ChromeTrace::render_args(
    const std::vector<std::pair<std::string, std::string>>& args) {
  if (args.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\": \"";
    out += json_escape(v);
    out += '"';
  }
  out += "}";
  return out;
}

void ChromeTrace::span(
    const std::string& name, double ts_us, double dur_us, std::uint32_t tid,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'X', ts_us, dur_us, tid, render_args(args)});
}

void ChromeTrace::instant(
    const std::string& name, double ts_us, std::uint32_t tid,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'i', ts_us, 0.0, tid, render_args(args)});
}

void ChromeTrace::async_begin(const std::string& name, const std::string& cat,
                              std::uint64_t id, double ts_us,
                              std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'b', ts_us, 0.0, tid, "", cat, id});
}

void ChromeTrace::async_end(const std::string& name, const std::string& cat,
                            std::uint64_t id, double ts_us,
                            std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'e', ts_us, 0.0, tid, "", cat, id});
}

void ChromeTrace::flow(char phase, const std::string& name, std::uint64_t id,
                       double ts_us, std::uint32_t tid) {
  if (phase != 's' && phase != 't' && phase != 'f') {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, phase, ts_us, 0.0, tid, "", "flow", id});
}

void ChromeTrace::name_thread(std::uint32_t tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'M', 0.0, 0.0, tid, ""});
}

std::size_t ChromeTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTrace::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    if (e.phase == 'M') {
      os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
            "\"tid\": "
         << e.tid << ", \"args\": {\"name\": \"" << json_escape(e.name)
         << "\"}}";
      continue;
    }
    os << "  {\"name\": \"" << json_escape(e.name) << "\", \"ph\": \""
       << e.phase << "\", \"ts\": " << fmt_us(e.ts_us);
    if (e.phase == 'X') {
      os << ", \"dur\": " << fmt_us(e.dur_us);
    } else if (e.phase == 'i') {
      os << ", \"s\": \"t\"";
    }
    if (!e.cat.empty()) {
      os << ", \"cat\": \"" << json_escape(e.cat) << "\"";
    }
    if (e.phase == 'b' || e.phase == 'e' || e.phase == 's' || e.phase == 't' ||
        e.phase == 'f') {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "%llx",
                    static_cast<unsigned long long>(e.id));
      os << ", \"id\": \"" << idbuf << "\"";
      if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        // Bind flow arrows to the enclosing slice rather than the next one.
        os << ", \"bp\": \"e\"";
      }
    }
    os << ", \"pid\": 0, \"tid\": " << e.tid;
    if (!e.args_json.empty()) {
      os << ", \"args\": " << e.args_json;
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace tmsim::obs
