// SimObserver implementations that connect the core engines to the
// three observability pillars (DESIGN.md §10):
//
//   EngineMetricsSink — harvests StepStats into a MetricsRegistry
//                       (counters + per-cycle histograms, per-shard
//                       superstep rows);
//   VcdTracer         — samples selected links / block state at every
//                       bank-swap commit point into a VCD waveform,
//                       either streaming or as a last-N-cycles ring
//                       that is flushed automatically on a
//                       ConvergenceReport abort;
//   TimelineSink      — turns per-worker supersteps into Chrome-trace
//                       spans (one track per shard);
//   MultiObserver     — fan-out, since Engine holds one observer slot.
//
// All of these are passive: attach with Engine::set_observer() (or
// SeqNocSimulation::set_observer / FpgaDesign::set_engine_observer) and
// detach by attaching nullptr. With nothing attached the engines skip
// every hook behind a null check — tests/obs/obs_off_test.cpp pins the
// resulting bit-identical behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/vcd.h"

namespace tmsim::obs {

class ChromeTrace;

/// Registry rows written (names under `engine.`):
///   counters   engine.cycles, engine.delta_cycles,
///              engine.re_evaluations, engine.link_changes,
///              engine.cut_publishes, engine.barrier_spins,
///              engine.supersteps, engine.convergence_failures,
///              engine.sched.delta_evals, engine.sched.skipped_blocks
///   gauges     engine.sched.worklist_high_water (running max over the
///              attached engine's cycles; stays 0 under round_robin)
///   histograms engine.deltas_per_cycle, engine.settle_rounds
///   per shard  engine.shard.supersteps / .settle_ns / .barrier_ns
///              with labels "shard=<i>"
class EngineMetricsSink : public core::SimObserver {
 public:
  explicit EngineMetricsSink(MetricsRegistry& registry);

  void on_cycle_commit(const core::Engine& eng,
                       const core::StepStats& stats) override;
  void on_superstep(std::size_t shard, std::uint64_t superstep,
                    std::uint64_t settle_ns,
                    std::uint64_t barrier_ns) override;
  void on_convergence_failure(const core::Engine& eng,
                              const core::ConvergenceReport& report) override;

 private:
  MetricsRegistry& registry_;
  Counter& cycles_;
  Counter& delta_cycles_;
  Counter& re_evaluations_;
  Counter& link_changes_;
  Counter& cut_publishes_;
  Counter& barrier_spins_;
  Counter& supersteps_;
  Counter& convergence_failures_;
  Counter& sched_delta_evals_;
  Counter& sched_skipped_blocks_;
  Gauge& sched_worklist_high_water_;
  std::uint64_t worklist_high_water_max_ = 0;
  HistogramMetric& deltas_per_cycle_;
  HistogramMetric& settle_rounds_;

  struct ShardRow {
    Counter* supersteps = nullptr;
    Counter* settle_ns = nullptr;
    Counter* barrier_ns = nullptr;
  };
  std::mutex mu_;  // guards shards_ (on_superstep is concurrent)
  std::vector<ShardRow> shards_;
};

struct VcdTracerOptions {
  /// Links whose names match are dumped (glob per obs::glob_match).
  std::string link_glob = "*";
  /// Blocks whose names match get a `<name>.state` signal with the full
  /// serialized state word. Empty = no block-state signals.
  std::string block_glob = "";
  /// 0 streams every cycle to the output as it happens. N > 0 buffers
  /// the last N cycles in memory instead and writes them only on
  /// flush() — or automatically when the engine reports a convergence
  /// failure, so the window leading into an oscillation is captured
  /// with zero steady-state output.
  std::size_t ring_cycles = 0;
};

class VcdTracer : public core::SimObserver {
 public:
  /// Signal selection happens here, against `model`; the engine
  /// attached later must run this same model. `os` must outlive the
  /// tracer. In streaming mode the header is written immediately.
  VcdTracer(const core::SystemModel& model, std::ostream& os,
            VcdTracerOptions options = {});

  void on_cycle_commit(const core::Engine& eng,
                       const core::StepStats& stats) override;
  void on_convergence_failure(const core::Engine& eng,
                              const core::ConvergenceReport& report) override;

  /// Ring mode: writes header + buffered window now (idempotent; the
  /// convergence-failure path calls this). Streaming mode: no-op.
  void flush();

  std::size_t num_signals() const { return num_signals_; }
  std::size_t ring_size() const { return ring_.size(); }

 private:
  struct Sample {
    std::uint64_t cycle;
    std::vector<BitVector> values;  // aligned with selection order
    std::uint64_t delta_cycles;
    std::uint64_t settle_rounds;
  };

  void sample(const core::Engine& eng, const core::StepStats& stats,
              std::uint64_t cycle);
  void write_sample_stream(const Sample& s);
  void declare_signals();

  const core::SystemModel& model_;
  std::ostream& os_;
  VcdTracerOptions options_;
  std::vector<core::LinkId> links_;    // selected links
  std::vector<core::BlockId> blocks_;  // selected blocks (state_width > 0)
  std::size_t num_signals_ = 0;
  std::unique_ptr<VcdWriter> writer_;
  std::vector<VcdWriter::SignalId> signal_ids_;
  VcdWriter::SignalId delta_sig_ = 0;
  VcdWriter::SignalId rounds_sig_ = 0;
  std::deque<Sample> ring_;
  bool flushed_ = false;
};

/// Chrome-trace spans per sharded worker: `shard.superstep` (whole
/// superstep) with a nested `shard.barrier` tail, on track tid=shard+1
/// (tid 0 is the host). Emits an instant on convergence failure.
class TimelineSink : public core::SimObserver {
 public:
  explicit TimelineSink(ChromeTrace& trace);

  void on_superstep(std::size_t shard, std::uint64_t superstep,
                    std::uint64_t settle_ns,
                    std::uint64_t barrier_ns) override;
  void on_convergence_failure(const core::Engine& eng,
                              const core::ConvergenceReport& report) override;

 private:
  ChromeTrace& trace_;
  std::mutex mu_;
  std::vector<char> named_;  // tids already given a thread_name
};

/// Fans one Engine observer slot out to several sinks, in order.
class MultiObserver : public core::SimObserver {
 public:
  void add(core::SimObserver* obs);

  void on_cycle_commit(const core::Engine& eng,
                       const core::StepStats& stats) override;
  void on_superstep(std::size_t shard, std::uint64_t superstep,
                    std::uint64_t settle_ns,
                    std::uint64_t barrier_ns) override;
  void on_convergence_failure(const core::Engine& eng,
                              const core::ConvergenceReport& report) override;

 private:
  std::vector<core::SimObserver*> sinks_;
};

}  // namespace tmsim::obs
