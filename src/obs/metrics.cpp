#include "obs/metrics.h"

#include <utility>

#include "analysis/table.h"

namespace tmsim::obs {

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative matcher with star backtracking (greedy `*`, O(n*m) worst
  // case — patterns and names here are short).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    const std::string& labels,
                                                    Kind kind) const {
  for (const Entry& e : entries_) {
    if (e.kind == kind && e.name == name && e.labels == labels) {
      return &e;
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* e = find(name, labels, Kind::kCounter)) {
    return counters_[e->index];
  }
  counters_.emplace_back();
  entries_.push_back(Entry{name, labels, Kind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* e = find(name, labels, Kind::kGauge)) {
    return gauges_[e->index];
  }
  gauges_.emplace_back();
  entries_.push_back(Entry{name, labels, Kind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double bin_width,
                                            std::size_t num_bins,
                                            const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Entry* e = find(name, labels, Kind::kHistogram)) {
    return histograms_[e->index];
  }
  histograms_.emplace_back(bin_width, num_bins);
  entries_.push_back(
      Entry{name, labels, Kind::kHistogram, histograms_.size() - 1});
  return histograms_.back();
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(name, labels, Kind::kCounter);
  return e ? &counters_[e->index] : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(name, labels, Kind::kGauge);
  return e ? &gauges_[e->index] : nullptr;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name, const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(name, labels, Kind::kHistogram);
  return e ? &histograms_[e->index] : nullptr;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const std::string& labels) const {
  const Counter* c = find_counter(name, labels);
  return c ? c->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    const std::string& labels,
                                    double fallback) const {
  const Gauge* g = find_gauge(name, labels);
  return g ? g->value() : fallback;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::write_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& extra) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n";
  for (const auto& [k, v] : extra) {
    os << "  \"" << json_escape(k) << "\": \"" << json_escape(v) << "\",\n";
  }
  os << "  \"metrics\": [";
  bool first = true;
  char buf[32];
  for (const Entry& e : entries_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"type\": ";
    switch (e.kind) {
      case Kind::kCounter:
        os << "\"counter\", \"name\": \"" << json_escape(e.name)
           << "\", \"labels\": \"" << json_escape(e.labels)
           << "\", \"value\": " << counters_[e.index].value() << "}";
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf, "%.17g", gauges_[e.index].value());
        os << "\"gauge\", \"name\": \"" << json_escape(e.name)
           << "\", \"labels\": \"" << json_escape(e.labels)
           << "\", \"value\": " << buf << "}";
        break;
      case Kind::kHistogram: {
        const analysis::Histogram& h = histograms_[e.index].histogram();
        std::snprintf(buf, sizeof buf, "%.17g", h.bin_width());
        os << "\"histogram\", \"name\": \"" << json_escape(e.name)
           << "\", \"labels\": \"" << json_escape(e.labels)
           << "\", \"bin_width\": " << buf << ", \"count\": " << h.count()
           << ", \"bins\": [";
        for (std::size_t b = 0; b < h.bins().size(); ++b) {
          os << (b ? ", " : "") << h.bins()[b];
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n  ]\n}\n";
}

void MetricsRegistry::write_table(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  analysis::TablePrinter table({"metric", "labels", "type", "value"});
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        table.add_row({e.name, e.labels, "counter",
                       std::to_string(counters_[e.index].value())});
        break;
      case Kind::kGauge:
        table.add_row({e.name, e.labels, "gauge",
                       analysis::fmt("%.6g", gauges_[e.index].value())});
        break;
      case Kind::kHistogram: {
        const analysis::Histogram& h = histograms_[e.index].histogram();
        table.add_row({e.name, e.labels, "histogram",
                       "n=" + std::to_string(h.count()) +
                           " p50=" + analysis::fmt("%.4g", h.quantile(0.5)) +
                           " p99=" + analysis::fmt("%.4g", h.quantile(0.99))});
        break;
      }
    }
  }
  table.print(os);
}

std::vector<std::string> MetricsRegistry::names_matching(
    const std::string& glob) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    const std::string full =
        e.labels.empty() ? e.name : e.name + "{" + e.labels + "}";
    if (glob_match(glob, full)) {
      out.push_back(full);
    }
  }
  return out;
}

}  // namespace tmsim::obs
