#include "obs/engine_sinks.h"

#include <algorithm>

#include "obs/chrome_trace.h"

namespace tmsim::obs {

// ---------------------------------------------------------------------------
// EngineMetricsSink
// ---------------------------------------------------------------------------

EngineMetricsSink::EngineMetricsSink(MetricsRegistry& registry)
    : registry_(registry),
      cycles_(registry.counter("engine.cycles")),
      delta_cycles_(registry.counter("engine.delta_cycles")),
      re_evaluations_(registry.counter("engine.re_evaluations")),
      link_changes_(registry.counter("engine.link_changes")),
      cut_publishes_(registry.counter("engine.cut_publishes")),
      barrier_spins_(registry.counter("engine.barrier_spins")),
      supersteps_(registry.counter("engine.supersteps")),
      convergence_failures_(registry.counter("engine.convergence_failures")),
      // Worklist-scheduler rows (DESIGN.md §12). delta_evals mirrors
      // engine.delta_cycles under a scheduler-specific name so sched
      // dashboards read evals vs skips side by side.
      sched_delta_evals_(registry.counter("engine.sched.delta_evals")),
      sched_skipped_blocks_(registry.counter("engine.sched.skipped_blocks")),
      sched_worklist_high_water_(
          registry.gauge("engine.sched.worklist_high_water")),
      // Per-cycle delta cycles: bins of 1, up to 256 per cycle before
      // the overflow bin — generous for §6-scale workloads.
      deltas_per_cycle_(registry.histogram("engine.deltas_per_cycle", 1.0, 256)),
      settle_rounds_(registry.histogram("engine.settle_rounds", 1.0, 64)) {}

void EngineMetricsSink::on_cycle_commit(const core::Engine& eng,
                                        const core::StepStats& stats) {
  (void)eng;
  cycles_.add(1);
  delta_cycles_.add(stats.delta_cycles);
  re_evaluations_.add(stats.re_evaluations);
  link_changes_.add(stats.link_changes);
  cut_publishes_.add(stats.cut_publishes);
  barrier_spins_.add(stats.barrier_spins);
  supersteps_.add(stats.settle_rounds);
  sched_delta_evals_.add(stats.delta_cycles);
  sched_skipped_blocks_.add(stats.skipped_blocks);
  if (stats.worklist_high_water > worklist_high_water_max_) {
    worklist_high_water_max_ = stats.worklist_high_water;
    sched_worklist_high_water_.set(
        static_cast<double>(worklist_high_water_max_));
  }
  deltas_per_cycle_.observe(static_cast<double>(stats.delta_cycles));
  settle_rounds_.observe(static_cast<double>(stats.settle_rounds));
}

void EngineMetricsSink::on_superstep(std::size_t shard, std::uint64_t superstep,
                                     std::uint64_t settle_ns,
                                     std::uint64_t barrier_ns) {
  (void)superstep;
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) {
    shards_.resize(shard + 1);
  }
  ShardRow& row = shards_[shard];
  if (!row.supersteps) {
    const std::string label = "shard=" + std::to_string(shard);
    row.supersteps = &registry_.counter("engine.shard.supersteps", label);
    row.settle_ns = &registry_.counter("engine.shard.settle_ns", label);
    row.barrier_ns = &registry_.counter("engine.shard.barrier_ns", label);
  }
  row.supersteps->add(1);
  row.settle_ns->add(settle_ns);
  row.barrier_ns->add(barrier_ns);
}

void EngineMetricsSink::on_convergence_failure(
    const core::Engine& eng, const core::ConvergenceReport& report) {
  (void)eng;
  (void)report;
  convergence_failures_.add(1);
}

// ---------------------------------------------------------------------------
// VcdTracer
// ---------------------------------------------------------------------------

VcdTracer::VcdTracer(const core::SystemModel& model, std::ostream& os,
                     VcdTracerOptions options)
    : model_(model), os_(os), options_(std::move(options)) {
  for (core::LinkId l = 0; l < model.num_links(); ++l) {
    const core::LinkInfo& info = model.link(l);
    if (info.width >= 1 && glob_match(options_.link_glob, info.name)) {
      links_.push_back(l);
    }
  }
  if (!options_.block_glob.empty()) {
    for (core::BlockId b = 0; b < model.num_blocks(); ++b) {
      const core::BlockInstance& blk = model.block(b);
      if (blk.logic->state_width() >= 1 &&
          glob_match(options_.block_glob, blk.name)) {
        blocks_.push_back(b);
      }
    }
  }
  num_signals_ = links_.size() + blocks_.size();
  if (options_.ring_cycles == 0) {
    declare_signals();  // streaming: header up front
  }
}

void VcdTracer::declare_signals() {
  writer_ = std::make_unique<VcdWriter>(os_);
  signal_ids_.clear();
  signal_ids_.reserve(num_signals_);
  for (const core::LinkId l : links_) {
    signal_ids_.push_back(
        writer_->add_signal(model_.link(l).name, model_.link(l).width));
  }
  for (const core::BlockId b : blocks_) {
    signal_ids_.push_back(writer_->add_signal(
        model_.block(b).name + ".state", model_.block(b).logic->state_width()));
  }
  // Sub-timescale bookkeeping: how much settling work the cycle took.
  delta_sig_ = writer_->add_signal("sim.delta_cycles", 32);
  rounds_sig_ = writer_->add_signal("sim.settle_rounds", 16);
  writer_->write_header();
}

void VcdTracer::write_sample_stream(const Sample& s) {
  writer_->begin_time(s.cycle);
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    writer_->change(signal_ids_[i], s.values[i]);
  }
  writer_->change_u64(delta_sig_,
                      std::min<std::uint64_t>(s.delta_cycles, 0xffffffffull));
  writer_->change_u64(rounds_sig_,
                      std::min<std::uint64_t>(s.settle_rounds, 0xffffull));
}

void VcdTracer::sample(const core::Engine& eng, const core::StepStats& stats,
                       std::uint64_t cycle) {
  Sample s;
  s.cycle = cycle;
  s.delta_cycles = stats.delta_cycles;
  s.settle_rounds = stats.settle_rounds;
  s.values.reserve(num_signals_);
  for (const core::LinkId l : links_) {
    s.values.push_back(eng.link_value(l));
  }
  for (const core::BlockId b : blocks_) {
    s.values.push_back(eng.block_state(b));
  }
  if (options_.ring_cycles == 0) {
    write_sample_stream(s);
    return;
  }
  ring_.push_back(std::move(s));
  while (ring_.size() > options_.ring_cycles) {
    ring_.pop_front();
  }
}

void VcdTracer::on_cycle_commit(const core::Engine& eng,
                                const core::StepStats& stats) {
  // cycle() has already advanced past the committed cycle; timestamp
  // the sample with the cycle that just finished.
  sample(eng, stats, eng.cycle() == 0 ? 0 : eng.cycle() - 1);
}

void VcdTracer::on_convergence_failure(const core::Engine& eng,
                                       const core::ConvergenceReport& report) {
  if (options_.ring_cycles == 0) {
    return;  // streaming dump already holds the history
  }
  // Capture the unsettled in-flight values as one final sample past the
  // ring — the oscillating links are visibly toggling right up to the
  // abort point.
  core::StepStats stats;
  stats.delta_cycles = report.delta_cycles;
  stats.settle_rounds = 0;
  sample(eng, stats, report.cycle);
  flush();
}

void VcdTracer::flush() {
  if (options_.ring_cycles == 0 || flushed_) {
    return;
  }
  flushed_ = true;
  declare_signals();
  for (const Sample& s : ring_) {
    write_sample_stream(s);
  }
  os_.flush();
}

// ---------------------------------------------------------------------------
// TimelineSink
// ---------------------------------------------------------------------------

TimelineSink::TimelineSink(ChromeTrace& trace) : trace_(trace) {}

void TimelineSink::on_superstep(std::size_t shard, std::uint64_t superstep,
                                std::uint64_t settle_ns,
                                std::uint64_t barrier_ns) {
  const std::uint32_t tid = static_cast<std::uint32_t>(shard + 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (named_.size() <= shard) {
      named_.resize(shard + 1, 0);
    }
    if (!named_[shard]) {
      named_[shard] = 1;
      trace_.name_thread(tid, "shard " + std::to_string(shard));
    }
  }
  const double end_us = trace_.now_us();
  const double settle_us = static_cast<double>(settle_ns) / 1000.0;
  const double barrier_us = static_cast<double>(barrier_ns) / 1000.0;
  const double start_us = end_us - settle_us - barrier_us;
  trace_.span("shard.superstep", start_us, settle_us + barrier_us, tid,
              {{"superstep", std::to_string(superstep)}});
  trace_.span("shard.barrier", end_us - barrier_us, barrier_us, tid);
}

void TimelineSink::on_convergence_failure(
    const core::Engine& eng, const core::ConvergenceReport& report) {
  (void)eng;
  trace_.instant("engine.convergence_failure", trace_.now_us(), 0,
                 {{"cycle", std::to_string(report.cycle)},
                  {"unstable_blocks",
                   std::to_string(report.oscillating_blocks.size())}});
}

// ---------------------------------------------------------------------------
// MultiObserver
// ---------------------------------------------------------------------------

void MultiObserver::add(core::SimObserver* obs) {
  if (obs) {
    sinks_.push_back(obs);
  }
}

void MultiObserver::on_cycle_commit(const core::Engine& eng,
                                    const core::StepStats& stats) {
  for (core::SimObserver* s : sinks_) {
    s->on_cycle_commit(eng, stats);
  }
}

void MultiObserver::on_superstep(std::size_t shard, std::uint64_t superstep,
                                 std::uint64_t settle_ns,
                                 std::uint64_t barrier_ns) {
  for (core::SimObserver* s : sinks_) {
    s->on_superstep(shard, superstep, settle_ns, barrier_ns);
  }
}

void MultiObserver::on_convergence_failure(
    const core::Engine& eng, const core::ConvergenceReport& report) {
  for (core::SimObserver* s : sinks_) {
    s->on_convergence_failure(eng, report);
  }
}

}  // namespace tmsim::obs
