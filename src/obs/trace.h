// Distributed tracing for the farm hot path (DESIGN.md §15).
//
// A `Tracer` records *completed* spans — fixed time intervals with a
// trace id, span id, and parent span id — into sharded in-memory
// buffers. The farm opens one trace per sampled job at submit and
// threads its `TraceContext` through the admission queue, dispatch,
// retries, supervisor reclaims, and publish, so a job's whole life
// across workers renders as one connected tree:
//
//   farm.job (root, submit → publish)
//   ├── admission.enqueue / farm.submit        (queue side, tid 90)
//   ├── admission.dequeue                      (queue-wait span)
//   ├── farm.exec (one segment per dispatch, attempt k)
//   │   ├── farm.attach
//   │   └── farm.slice …                       (per preemption slice)
//   ├── farm.retry / farm.reclaim              (failure-path edges)
//   └── farm.publish
//
// Design constraints, in order:
//   - Free when off. The farm guards every site with `if (tracer)`;
//     a null tracer is the default and costs one branch.
//   - Lock-cheap when on. Sampling and span-id allocation are single
//     atomic ops; recording locks one of 16 shard mutexes.
//   - Sampling-capable. `should_sample()` is a head-based 1-in-N
//     ticket taken *before* the expensive fingerprint hash, so
//     unsampled jobs skip all tracing work, not just the storage.
//   - Bounded. `max_spans` caps memory; overflow increments a dropped
//     counter instead of growing.
//
// Export targets: a compact JSONL span log (one JSON object per line,
// checked by `trace_validate`) and the Chrome trace viewer via
// `export_chrome` (spans as 'X' slices plus a flow-event chain per
// trace, so Perfetto draws the arrows between workers).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmsim::obs {

class ChromeTrace;

/// Per-job trace identity, carried by value through the admission
/// queue and control blocks. `trace_id == 0` means "not sampled" and
/// makes every recording call a no-op.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;         ///< the trace's root span
  std::uint64_t parent_span_id = 0;  ///< 0 at the root
  bool sampled() const { return trace_id != 0; }
};

/// One completed span as stored by the tracer.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint32_t attempt = 0;  ///< job attempt the span belongs to (0 = pre-exec)
  std::uint32_t tid = 0;      ///< display track (worker id + 100, queue 90, …)
  double start_us = 0.0;
  double end_us = 0.0;
  std::string name;
  std::string args_json;  ///< pre-rendered {"k": "v", …} or ""
};

class Tracer {
 public:
  struct Options {
    /// Head sampling rate: 1 traces everything, N traces 1-in-N,
    /// 0 traces nothing (tracer present but idle).
    std::uint64_t sample_every = 1;
    /// Hard bound on stored spans; past it spans are counted dropped.
    std::size_t max_spans = std::size_t{1} << 20;
  };

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options opt);

  /// Microseconds since construction (steady clock) — a convenience
  /// for standalone users; the farm stamps spans with its own clock so
  /// all spans of a trace share one timebase.
  double now_us() const;

  /// Head sampling decision: one atomic ticket, no allocation. Call
  /// before computing anything expensive (the job fingerprint).
  bool should_sample();

  /// Opens a new trace keyed on `key` (the job fingerprint): derives a
  /// nonzero trace id (mixed with a nonce so duplicate specs get
  /// distinct traces) and allocates its root span id. The root span
  /// itself is recorded later, by whoever closes the trace.
  TraceContext start_trace(std::uint64_t key);

  /// Allocates a fresh span id (unique within this tracer).
  std::uint64_t alloc_span_id();

  /// Records a completed span. No-op when `ctx` is unsampled.
  void span(const TraceContext& ctx, std::uint64_t span_id,
            std::uint64_t parent_span_id, std::string_view name,
            std::uint32_t attempt, std::uint32_t tid, double start_us,
            double end_us,
            std::initializer_list<std::pair<std::string_view, std::string>>
                args = {});

  std::uint64_t traces_started() const;
  std::uint64_t samples_seen() const;  ///< should_sample() calls
  std::uint64_t spans_recorded() const;
  std::uint64_t spans_dropped() const;

  /// All spans recorded so far, in no particular order.
  std::vector<SpanRecord> snapshot() const;

  /// Compact JSONL span log: one object per line with keys
  /// trace (hex string), span, parent, name, attempt, tid, ts, dur,
  /// and optional args. This is the format `trace_validate` checks.
  void write_jsonl(std::ostream& os) const;

  /// Exports every span as a Chrome 'X' slice and stitches each trace
  /// with a flow-event chain (ph s/t/f, id = trace id) plus an async
  /// span bracketing the whole trace, so one job draws as a single
  /// connected lane across worker tracks.
  void export_chrome(ChromeTrace& trace) const;

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;
  };

  Options opt_;
  std::uint64_t epoch_ns_ = 0;
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<std::uint64_t> next_span_{0};
  std::atomic<std::uint64_t> traces_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<Shard, kShards> shards_;
};

/// Validates a JSONL span log (the `Tracer::write_jsonl` format), the
/// trace sibling of `vcd_validate`: every line parses and carries a
/// closed interval (dur >= 0), span ids are unique within a trace,
/// each trace has exactly one root whose children all start no earlier
/// than their parent ("parent precedes child"), every span is
/// reachable from the root (one connected tree), and a span of retry
/// attempt k > 0 hangs off attempt 0 or attempt k — so each retry is
/// its own child chain. Returns std::nullopt if valid, else a
/// diagnostic naming the first offending line.
std::optional<std::string> trace_validate(std::istream& is);

}  // namespace tmsim::obs
