// MetricsRegistry: the single home for every performance counter in the
// simulator (DESIGN.md §10).
//
// The paper's evaluation is built on counted events — Table 4's phase
// profile, §6's delta-cycle overhead, the two monitor buffers — and the
// engines, the FPGA model and the hardened host all accumulate such
// counts. This registry gives them one naming scheme and one export
// path instead of ad-hoc struct fields per layer:
//
//   - *Counters* are monotonically increasing u64 event counts
//     ("engine.delta_cycles", "fpga.monitor.link_probe.samples").
//   - *Gauges* are point-in-time doubles ("host.share.generate").
//   - *Histograms* are fixed-bucket distributions over doubles
//     ("engine.deltas_per_cycle"), backed by analysis::Histogram.
//
// Naming scheme: dot-separated lowercase path, most-general component
// first (`layer.subsystem.event`), with instance labels kept out of the
// name and in the `labels` string ("shard=3"). Registration returns a
// stable reference; the hot path touches one u64 — no lookup, no lock.
//
// Instruments are attached, not ambient: a component holds a null
// registry/sink pointer by default and skips all bookkeeping, so a run
// with no sink attached is bit-identical to (and as fast as) a build
// without this subsystem. tests/obs/obs_off_test.cpp enforces that.
//
// Thread model: registration is mutex-guarded and may happen from any
// thread; each Counter/Gauge/Histogram instance must be written by one
// thread at a time (the sharded engine labels per-shard instruments so
// every worker owns its own row). Snapshots (write_json/write_table)
// must run while writers are quiescent — between steps or after run().
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/stats.h"

namespace tmsim::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class HistogramMetric {
 public:
  HistogramMetric(double bin_width, std::size_t num_bins)
      : hist_(bin_width, num_bins) {}

  void observe(double x) { hist_.add(x); }
  const analysis::Histogram& histogram() const { return hist_; }

 private:
  analysis::Histogram hist_;
};

class MetricsRegistry {
 public:
  /// Registers (or re-finds) an instrument. The returned reference is
  /// stable for the registry's lifetime. `labels` distinguishes
  /// instances of the same metric ("shard=0"); the empty string is the
  /// unlabelled instance.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  /// Re-finding an existing histogram ignores the bucket arguments.
  HistogramMetric& histogram(const std::string& name, double bin_width,
                             std::size_t num_bins,
                             const std::string& labels = "");

  /// Lookup without registration; null when absent.
  const Counter* find_counter(const std::string& name,
                              const std::string& labels = "") const;
  const Gauge* find_gauge(const std::string& name,
                          const std::string& labels = "") const;
  const HistogramMetric* find_histogram(const std::string& name,
                                        const std::string& labels = "") const;

  /// Counter value or 0 / gauge value or fallback — for report code that
  /// should not care whether an instrument was ever touched.
  std::uint64_t counter_value(const std::string& name,
                              const std::string& labels = "") const;
  double gauge_value(const std::string& name, const std::string& labels = "",
                     double fallback = 0.0) const;

  std::size_t size() const;

  /// JSON snapshot: {"metrics":[{"type","name","labels","value"...},...]}.
  /// `extra` key/value pairs (git sha, config) are emitted at the top
  /// level. Deterministic: rows appear in registration order.
  void write_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::string>>& extra = {}) const;

  /// The existing analysis/table fixed-width format (diffable, like the
  /// bench output).
  void write_table(std::ostream& os) const;

  /// Metric names (with labels) matching a glob, registration order.
  std::vector<std::string> names_matching(const std::string& glob) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    std::size_t index;  // into the matching deque
  };

  const Entry* find(const std::string& name, const std::string& labels,
                    Kind kind) const;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
};

/// Minimal JSON string escaping for names/labels/extra values.
std::string json_escape(const std::string& s);

/// Glob match with `*` (any run, including empty) and `?` (any one
/// char); everything else literal. Used for VCD signal selection and
/// metric filtering.
bool glob_match(const std::string& pattern, const std::string& text);

}  // namespace tmsim::obs
