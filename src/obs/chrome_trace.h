// Chrome-trace-format event timeline (DESIGN.md §10).
//
// The third pillar of the observability layer: wall-clock spans from
// the ArmHost 5-phase loop (generate/load/simulate/retrieve/analyze —
// Table 4 as a timeline instead of a table), per-worker supersteps from
// the sharded engine, and fault/retry episodes from the PR-1 bus layer,
// all in the JSON the `chrome://tracing` / Perfetto UI loads directly:
//
//   {"traceEvents":[{"name":"simulate","ph":"X","ts":12.0,"dur":340.5,
//                    "pid":0,"tid":0,"args":{...}}, ...]}
//
// Span taxonomy (the `name` field):
//   host.generate / host.load / host.simulate / host.retrieve /
//   host.analyze                 — one span per system-cycle batch, tid 0
//   shard.superstep              — one span per superstep, tid = shard+1
//   shard.barrier                — barrier-wait tail of a superstep
//   fault.<kind>                 — instant events ("i") for retry /
//                                  replay / watchdog episodes
//
// Timestamps are microseconds of wall-clock time since the trace was
// constructed (Chrome's native unit). Events may be recorded from any
// thread; a mutex serializes the append. Buffered in memory; write()
// emits the whole array.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tmsim::obs {

class ChromeTrace {
 public:
  ChromeTrace();

  /// Microseconds since this trace was constructed (monotonic clock).
  double now_us() const;

  /// Complete span ("ph":"X"): [ts_us, ts_us+dur_us) on track `tid`.
  /// `args` become the span's args object (numbers passed as strings
  /// are quoted; use arg pairs sparingly — one object per event).
  void span(const std::string& name, double ts_us, double dur_us,
            std::uint32_t tid,
            const std::vector<std::pair<std::string, std::string>>& args = {});

  /// Instant event ("ph":"i", scope thread).
  void instant(
      const std::string& name, double ts_us, std::uint32_t tid,
      const std::vector<std::pair<std::string, std::string>>& args = {});

  /// Async span half ("ph":"b"/"e"): an interval that may start and end
  /// on different threads. The viewer matches begin/end on (cat, id,
  /// name), so all three must agree across the pair.
  void async_begin(const std::string& name, const std::string& cat,
                   std::uint64_t id, double ts_us, std::uint32_t tid);
  void async_end(const std::string& name, const std::string& cat,
                 std::uint64_t id, double ts_us, std::uint32_t tid);

  /// Flow event ("ph":"s"/"t"/"f" for start/step/finish): draws an
  /// arrow chain between the slices enclosing each event, keyed on
  /// `id`. `phase` must be 's', 't', or 'f'.
  void flow(char phase, const std::string& name, std::uint64_t id,
            double ts_us, std::uint32_t tid);

  /// Names track `tid` in the viewer (emits a thread_name metadata event).
  void name_thread(std::uint32_t tid, const std::string& name);

  std::size_t size() const;

  /// Emits {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    char phase;  // 'X', 'i', 'M', async 'b'/'e', flow 's'/'t'/'f'
    double ts_us;
    double dur_us;
    std::uint32_t tid;
    std::string args_json;  // pre-rendered {"k":"v",...} or ""
    std::string cat;        // async/flow category ("" elsewhere)
    std::uint64_t id = 0;   // async/flow correlation id
  };

  static std::string render_args(
      const std::vector<std::pair<std::string, std::string>>& args);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace tmsim::obs
