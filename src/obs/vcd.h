// VCD (Value Change Dump, IEEE 1364 §18) support for the simulator —
// the waveform half of the observability layer (DESIGN.md §10).
//
// The FPGA of the paper exposes exactly two windows into a run (the
// link-probe and access-delay monitor buffers, §5.2); the host-side
// engines can do better: any link or register bank the SystemModel
// names can be dumped, bit-accurately, as a standard VCD file viewable
// in GTKWave.
//
// Conventions:
//   - one VCD time unit == one *system* cycle (timescale 1 ns is
//     nominal — simulated time has no wall-clock meaning);
//   - delta/settle activity inside a cycle does not advance VCD time;
//     instead the per-cycle `delta_cycles` and `settle_rounds`
//     bookkeeping signals (scope `sim`) carry the sub-timescale view:
//     how many block evaluations and exchange rounds that cycle took;
//   - values are sampled at the bank-swap / superstep-commit point, so
//     a dump from any engine over the same model is identical — the
//     basis of vcd_diff()-based differential testing.
//
// This header also carries the two consumers the test suite and the
// differential harness need: a syntax checker (vcd_validate) and a
// first-divergence differ (vcd_diff).
#pragma once

#include <cstdint>
#include <deque>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/bit_vector.h"

namespace tmsim::obs {

/// Low-level VCD file writer. Declare signals, write the header once,
/// then feed monotonically increasing timesteps; per-signal change
/// detection keeps the file minimal.
class VcdWriter {
 public:
  using SignalId = std::size_t;

  explicit VcdWriter(std::ostream& os);

  /// Declares a signal; only legal before write_header(). Whitespace in
  /// `name` is replaced with '_' (VCD identifiers cannot contain it).
  SignalId add_signal(const std::string& name, std::size_t width);

  std::size_t num_signals() const { return signals_.size(); }

  /// $date/$timescale/$scope/$var preamble plus a $dumpvars section
  /// initializing every signal to x.
  void write_header();

  /// Opens timestep `t` (strictly greater than the previous one).
  void begin_time(std::uint64_t t);

  /// Records a value for the current timestep; emits only on change.
  void change(SignalId s, const BitVector& v);
  void change_u64(SignalId s, std::uint64_t v);

 private:
  struct Signal {
    std::string name;
    std::size_t width;
    std::string code;      // VCD identifier code
    std::string last;      // last emitted value bits, msb first
  };

  static std::string id_code(std::size_t index);
  void emit(Signal& sig, const std::string& bits);

  std::ostream& os_;
  std::vector<Signal> signals_;
  bool header_written_ = false;
  bool have_time_ = false;
  std::uint64_t time_ = 0;
};

/// Syntax check for a VCD stream: header structure, declared-before-use
/// identifiers, strictly increasing timesteps, legal value characters,
/// vector widths no wider than declared. Returns std::nullopt when the
/// stream is valid, else a one-line diagnosis.
std::optional<std::string> vcd_validate(std::istream& is);

/// Result of diffing two VCD streams.
struct VcdDivergence {
  bool diverged = false;
  std::uint64_t time = 0;     ///< first timestep where a signal differs
  std::string signal;         ///< name of the first divergent signal
  std::string value_a;
  std::string value_b;
  /// Signals present in only one file (compared set is the
  /// intersection; a non-empty mismatch list is reported but does not
  /// by itself count as divergence).
  std::vector<std::string> only_in_a;
  std::vector<std::string> only_in_b;

  std::string summary() const;
};

/// Replays both dumps over the union of their timesteps and names the
/// first (time, signal) where the two disagree — the differential
/// harness's "which wire broke first" mode.
VcdDivergence vcd_diff(std::istream& a, std::istream& b);

}  // namespace tmsim::obs
