// des.* metrics export: publishes a DES kernel's KernelStats through the
// MetricsRegistry so the baseline engines (DESIGN.md §9) report through
// the same pipeline as the paper engines' engine.* rows — one naming
// scheme, one JSON/table export, directly comparable counter for counter
// (des.delta_cycles vs engine.delta_cycles is §6's overhead argument).
#pragma once

#include <string>

#include "des/kernel.h"

namespace tmsim::obs {

class MetricsRegistry;

/// Writes the four KernelStats counts as des.{ticks,delta_cycles,
/// process_activations,signal_commits} counters under `labels`.
/// Counter semantics: KernelStats is itself cumulative, so the counters
/// are *set* to the current totals — call again after more ticks to
/// refresh. Single-writer rule: one thread per (labels) instance.
void export_kernel_stats(const des::KernelStats& stats,
                         MetricsRegistry& registry,
                         const std::string& labels = "");

}  // namespace tmsim::obs
