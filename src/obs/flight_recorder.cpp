#include "obs/flight_recorder.h"

#include <cstdio>

namespace tmsim::obs {

const char* flight_event_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kDispatch:
      return "dispatch";
    case FlightEventKind::kAttach:
      return "attach";
    case FlightEventKind::kSlice:
      return "slice";
    case FlightEventKind::kPreempt:
      return "preempt";
    case FlightEventKind::kRetry:
      return "retry";
    case FlightEventKind::kKill:
      return "kill";
    case FlightEventKind::kReclaim:
      return "reclaim";
    case FlightEventKind::kPublish:
      return "publish";
    case FlightEventKind::kCancel:
      return "cancel";
    case FlightEventKind::kMetric:
      return "metric";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t num_rings, std::size_t depth)
    : depth_(depth == 0 ? 1 : depth) {
  rings_.reserve(num_rings == 0 ? 1 : num_rings);
  for (std::size_t i = 0; i < (num_rings == 0 ? 1 : num_rings); ++i) {
    rings_.push_back(std::make_unique<Ring>());
    rings_.back()->buf.reserve(depth_);
  }
}

void FlightRecorder::record(std::size_t ring_idx, const FlightEvent& event) {
  if (ring_idx >= rings_.size()) {
    ring_idx = rings_.size() - 1;
  }
  Ring& ring = *rings_[ring_idx];
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.buf.size() < depth_) {
    ring.buf.push_back(event);
  } else {
    ring.buf[ring.next] = event;
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  }
  ring.next = (ring.next + 1) % depth_;
  ++ring.total;
}

std::vector<FlightEvent> FlightRecorder::snapshot(std::size_t ring_idx) const {
  if (ring_idx >= rings_.size()) {
    return {};
  }
  const Ring& ring = *rings_[ring_idx];
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<FlightEvent> out;
  out.reserve(ring.buf.size());
  if (ring.buf.size() < depth_) {
    out = ring.buf;  // not yet wrapped: insertion order is time order
  } else {
    for (std::size_t i = 0; i < depth_; ++i) {
      out.push_back(ring.buf[(ring.next + i) % depth_]);
    }
  }
  return out;
}

std::string FlightRecorder::dump_jsonl(std::size_t ring_idx,
                                       std::uint64_t job_filter) const {
  std::string out;
  for (const FlightEvent& e : snapshot(ring_idx)) {
    if (job_filter != 0 && e.job_id != 0 && e.job_id != job_filter) {
      continue;
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"ts\": %.3f, \"event\": \"%s\", \"job\": %llu, "
                  "\"trace\": \"%016llx\", \"span\": %llu, \"attempt\": %u, "
                  "\"a\": %llu, \"b\": %llu}\n",
                  e.ts_us, flight_event_name(e.kind),
                  static_cast<unsigned long long>(e.job_id),
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id), e.attempt,
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += buf;
  }
  return out;
}

std::uint64_t FlightRecorder::events_recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::events_overwritten() const {
  return overwritten_.load(std::memory_order_relaxed);
}

}  // namespace tmsim::obs
