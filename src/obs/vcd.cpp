#include "obs/vcd.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"

namespace tmsim::obs {

namespace {

// Bits of a BitVector as a VCD vector string, MSB first.
std::string to_bits(const BitVector& v) {
  std::string out(v.width(), '0');
  for (std::size_t i = 0; i < v.width(); ++i) {
    if (v.get_bit(i)) {
      out[v.width() - 1 - i] = '1';
    }
  }
  return out;
}

std::string u64_bits(std::uint64_t v, std::size_t width) {
  std::string out(width, '0');
  for (std::size_t i = 0; i < width; ++i) {
    if ((v >> i) & 1u) {
      out[width - 1 - i] = '1';
    }
  }
  return out;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os) : os_(os) {}

std::string VcdWriter::id_code(std::size_t index) {
  // Printable ASCII '!'..'~' (94 symbols), little-endian base-94 — the
  // conventional VCD identifier alphabet.
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

VcdWriter::SignalId VcdWriter::add_signal(const std::string& name,
                                          std::size_t width) {
  TMSIM_CHECK_MSG(!header_written_, "add_signal after write_header");
  TMSIM_CHECK_MSG(width >= 1, "VCD signal width must be >= 1");
  std::string clean = name;
  for (char& c : clean) {
    if (c == ' ' || c == '\t') {
      c = '_';
    }
  }
  signals_.push_back(Signal{clean, width, id_code(signals_.size()), ""});
  return signals_.size() - 1;
}

void VcdWriter::write_header() {
  TMSIM_CHECK_MSG(!header_written_, "write_header called twice");
  header_written_ = true;
  os_ << "$date\n    tmsim run\n$end\n";
  os_ << "$version\n    tmsim VcdWriter\n$end\n";
  os_ << "$timescale 1 ns $end\n";
  os_ << "$scope module tmsim $end\n";
  for (const Signal& s : signals_) {
    os_ << "$var wire " << s.width << " " << s.code << " " << s.name
        << " $end\n";
  }
  os_ << "$upscope $end\n";
  os_ << "$enddefinitions $end\n";
  // Initial snapshot: everything unknown until the first sample.
  os_ << "$dumpvars\n";
  for (Signal& s : signals_) {
    s.last.assign(s.width, 'x');
    if (s.width == 1) {
      os_ << "x" << s.code << "\n";
    } else {
      os_ << "b" << s.last << " " << s.code << "\n";
    }
  }
  os_ << "$end\n";
}

void VcdWriter::begin_time(std::uint64_t t) {
  TMSIM_CHECK_MSG(header_written_, "begin_time before write_header");
  TMSIM_CHECK_MSG(!have_time_ || t > time_,
                  "VCD timesteps must strictly increase");
  have_time_ = true;
  time_ = t;
  os_ << "#" << t << "\n";
}

void VcdWriter::emit(Signal& sig, const std::string& bits) {
  TMSIM_CHECK_MSG(have_time_, "value change before any begin_time");
  if (bits == sig.last) {
    return;
  }
  sig.last = bits;
  if (sig.width == 1) {
    os_ << bits << sig.code << "\n";
  } else {
    // Leading zeros may be dropped per the spec; keep full width for
    // trivially diffable output.
    os_ << "b" << bits << " " << sig.code << "\n";
  }
}

void VcdWriter::change(SignalId s, const BitVector& v) {
  TMSIM_CHECK_MSG(s < signals_.size(), "unknown VCD signal");
  TMSIM_CHECK_MSG(v.width() == signals_[s].width, "VCD signal width mismatch");
  emit(signals_[s], to_bits(v));
}

void VcdWriter::change_u64(SignalId s, std::uint64_t v) {
  TMSIM_CHECK_MSG(s < signals_.size(), "unknown VCD signal");
  const std::size_t width = signals_[s].width;
  if (width < 64) {
    TMSIM_CHECK_MSG((v >> width) == 0, "value wider than VCD signal");
  }
  emit(signals_[s], u64_bits(v, width));
}

// ---------------------------------------------------------------------------
// Parsing (shared by vcd_validate and vcd_diff)
// ---------------------------------------------------------------------------

namespace {

struct ParsedVcd {
  struct Var {
    std::string name;
    std::size_t width = 0;
  };
  // id code -> declaration
  std::map<std::string, Var> vars;
  // ordered (time, id code, value-bits) stream, post-$enddefinitions
  struct Change {
    std::uint64_t time;
    std::string code;
    std::string bits;
  };
  std::vector<Change> changes;
  std::vector<std::uint64_t> times;  // distinct, in order
};

bool is_value_char(char c) {
  switch (c) {
    case '0': case '1': case 'x': case 'X': case 'z': case 'Z':
      return true;
    default:
      return false;
  }
}

/// Parses (and thereby validates) a VCD stream. Returns an error string
/// or fills `out`.
std::optional<std::string> parse_vcd(std::istream& is, ParsedVcd& out) {
  std::vector<std::string> tokens;
  {
    std::string tok;
    while (is >> tok) {
      tokens.push_back(tok);
    }
  }
  if (tokens.empty()) {
    return "empty VCD stream";
  }

  std::size_t i = 0;
  bool definitions_done = false;
  std::size_t scope_depth = 0;
  bool in_dump_block = false;
  bool have_time = false;
  std::uint64_t time = 0;

  auto skip_to_end = [&](const std::string& what) -> std::optional<std::string> {
    while (i < tokens.size() && tokens[i] != "$end") {
      ++i;
    }
    if (i == tokens.size()) {
      return what + " not terminated by $end";
    }
    ++i;  // consume $end
    return std::nullopt;
  };

  while (i < tokens.size()) {
    const std::string& t = tokens[i];
    if (!definitions_done) {
      if (t == "$date" || t == "$version" || t == "$comment" ||
          t == "$timescale") {
        ++i;
        if (auto err = skip_to_end(t)) {
          return err;
        }
      } else if (t == "$scope") {
        ++i;
        ++scope_depth;
        if (auto err = skip_to_end("$scope")) {
          return err;
        }
      } else if (t == "$upscope") {
        if (scope_depth == 0) {
          return "$upscope without matching $scope";
        }
        --scope_depth;
        ++i;
        if (auto err = skip_to_end("$upscope")) {
          return err;
        }
      } else if (t == "$var") {
        // $var <type> <width> <code> <name...> $end
        if (scope_depth == 0) {
          return "$var outside any $scope";
        }
        if (i + 4 >= tokens.size()) {
          return "truncated $var declaration";
        }
        const std::string& width_tok = tokens[i + 2];
        char* end = nullptr;
        const unsigned long long w = std::strtoull(width_tok.c_str(), &end, 10);
        if (end == width_tok.c_str() || *end != '\0' || w == 0) {
          return "bad $var width '" + width_tok + "'";
        }
        const std::string& code = tokens[i + 3];
        std::string name = tokens[i + 4];
        i += 5;
        // Names may span tokens (e.g. "sig [7:0]"); absorb until $end.
        while (i < tokens.size() && tokens[i] != "$end") {
          name += " " + tokens[i];
          ++i;
        }
        if (i == tokens.size()) {
          return "$var not terminated by $end";
        }
        ++i;
        if (out.vars.count(code)) {
          return "duplicate identifier code '" + code + "'";
        }
        out.vars[code] =
            ParsedVcd::Var{name, static_cast<std::size_t>(w)};
      } else if (t == "$enddefinitions") {
        ++i;
        if (auto err = skip_to_end("$enddefinitions")) {
          return err;
        }
        if (scope_depth != 0) {
          return "$enddefinitions with unclosed $scope";
        }
        definitions_done = true;
      } else {
        return "unexpected token '" + t + "' in declaration section";
      }
      continue;
    }

    // Value-change section.
    if (t == "$dumpvars" || t == "$dumpall" || t == "$dumpon" ||
        t == "$dumpoff") {
      in_dump_block = true;
      ++i;
    } else if (t == "$end") {
      if (!in_dump_block) {
        return "stray $end in value-change section";
      }
      in_dump_block = false;
      ++i;
    } else if (t == "$comment") {
      ++i;
      if (auto err = skip_to_end("$comment")) {
        return err;
      }
    } else if (t[0] == '#') {
      char* end = nullptr;
      const unsigned long long ts = std::strtoull(t.c_str() + 1, &end, 10);
      if (end == t.c_str() + 1 || *end != '\0') {
        return "bad timestep '" + t + "'";
      }
      if (have_time && ts <= time) {
        return "timesteps not strictly increasing at '" + t + "'";
      }
      have_time = true;
      time = ts;
      out.times.push_back(ts);
      ++i;
    } else if (t[0] == 'b' || t[0] == 'B') {
      // Vector change: b<bits> <code>
      const std::string bits = t.substr(1);
      if (bits.empty()) {
        return "vector change with no value";
      }
      for (char c : bits) {
        if (!is_value_char(c)) {
          return "illegal value character in '" + t + "'";
        }
      }
      if (i + 1 >= tokens.size()) {
        return "vector change '" + t + "' missing identifier";
      }
      const std::string& code = tokens[i + 1];
      auto it = out.vars.find(code);
      if (it == out.vars.end()) {
        return "value change for undeclared identifier '" + code + "'";
      }
      if (bits.size() > it->second.width) {
        return "vector value wider than declared for '" + it->second.name +
               "'";
      }
      if (!have_time && !in_dump_block) {
        return "value change before the first timestep";
      }
      out.changes.push_back(
          ParsedVcd::Change{have_time ? time : 0, code, bits});
      i += 2;
    } else if (is_value_char(t[0])) {
      // Scalar change: <value><code>, no whitespace.
      if (t.size() < 2) {
        return "scalar change '" + t + "' missing identifier";
      }
      const std::string code = t.substr(1);
      auto it = out.vars.find(code);
      if (it == out.vars.end()) {
        return "value change for undeclared identifier '" + code + "'";
      }
      if (it->second.width != 1) {
        return "scalar change for vector signal '" + it->second.name + "'";
      }
      if (!have_time && !in_dump_block) {
        return "value change before the first timestep";
      }
      out.changes.push_back(
          ParsedVcd::Change{have_time ? time : 0, code, t.substr(0, 1)});
      ++i;
    } else {
      return "unexpected token '" + t + "' in value-change section";
    }
  }

  if (!definitions_done) {
    return "no $enddefinitions section";
  }
  if (out.vars.empty()) {
    return "no $var declarations";
  }
  return std::nullopt;
}

// Zero-extends and lowercases a bit string for comparison so "b0101" and
// "b101" compare equal at width 4.
std::string normalize_bits(const std::string& bits, std::size_t width) {
  std::string out(width, '0');
  // Left-extension per the VCD spec: pad with '0' unless the msb is
  // x/z, which extends itself.
  char pad = '0';
  if (!bits.empty()) {
    char msb = static_cast<char>(std::tolower(bits[0]));
    if (msb == 'x' || msb == 'z') {
      pad = msb;
    }
  }
  std::fill(out.begin(), out.end(), pad);
  const std::size_t n = std::min(bits.size(), width);
  for (std::size_t k = 0; k < n; ++k) {
    out[width - 1 - k] =
        static_cast<char>(std::tolower(bits[bits.size() - 1 - k]));
  }
  return out;
}

}  // namespace

std::optional<std::string> vcd_validate(std::istream& is) {
  ParsedVcd parsed;
  return parse_vcd(is, parsed);
}

std::string VcdDivergence::summary() const {
  std::ostringstream os;
  if (!diverged) {
    os << "VCDs agree on all shared signals";
  } else {
    os << "first divergence at #" << time << " on '" << signal
       << "': a=" << value_a << " b=" << value_b;
  }
  if (!only_in_a.empty() || !only_in_b.empty()) {
    os << " (signals only in a: " << only_in_a.size()
       << ", only in b: " << only_in_b.size() << ")";
  }
  return os.str();
}

VcdDivergence vcd_diff(std::istream& a, std::istream& b) {
  VcdDivergence d;
  ParsedVcd pa, pb;
  if (auto err = parse_vcd(a, pa)) {
    d.diverged = true;
    d.signal = "<stream a invalid: " + *err + ">";
    return d;
  }
  if (auto err = parse_vcd(b, pb)) {
    d.diverged = true;
    d.signal = "<stream b invalid: " + *err + ">";
    return d;
  }

  // Match signals by *name*; id codes are writer-internal.
  std::map<std::string, std::string> name_to_code_a, name_to_code_b;
  for (const auto& [code, var] : pa.vars) {
    name_to_code_a[var.name] = code;
  }
  for (const auto& [code, var] : pb.vars) {
    name_to_code_b[var.name] = code;
  }
  std::vector<std::string> shared;
  for (const auto& [name, code] : name_to_code_a) {
    if (name_to_code_b.count(name)) {
      shared.push_back(name);
    } else {
      d.only_in_a.push_back(name);
    }
  }
  for (const auto& [name, code] : name_to_code_b) {
    if (!name_to_code_a.count(name)) {
      d.only_in_b.push_back(name);
    }
  }

  // Replay both change streams over the union of timesteps, comparing
  // the post-timestep state of every shared signal.
  std::map<std::string, std::string> state_a, state_b;  // name -> bits
  auto width_of = [&](const ParsedVcd& p, const std::string& code) {
    return p.vars.at(code).width;
  };

  std::set<std::uint64_t> all_times(pa.times.begin(), pa.times.end());
  all_times.insert(pb.times.begin(), pb.times.end());

  std::size_t ia = 0, ib = 0;
  auto apply_until = [&](const ParsedVcd& p, std::size_t& idx,
                         std::uint64_t t,
                         std::map<std::string, std::string>& state) {
    while (idx < p.changes.size() && p.changes[idx].time <= t) {
      const auto& c = p.changes[idx];
      const auto& var = p.vars.at(c.code);
      state[var.name] = normalize_bits(c.bits, var.width);
      ++idx;
    }
  };

  for (std::uint64_t t : all_times) {
    apply_until(pa, ia, t, state_a);
    apply_until(pb, ib, t, state_b);
    for (const std::string& name : shared) {
      const std::size_t wa = width_of(pa, name_to_code_a[name]);
      const std::size_t wb = width_of(pb, name_to_code_b[name]);
      auto sa = state_a.find(name);
      auto sb = state_b.find(name);
      const std::string va =
          sa == state_a.end() ? std::string(wa, 'x') : sa->second;
      const std::string vb =
          sb == state_b.end() ? std::string(wb, 'x') : sb->second;
      if (wa != wb || va != vb) {
        d.diverged = true;
        d.time = t;
        d.signal = name;
        d.value_a = va;
        d.value_b = vb;
        return d;
      }
    }
  }
  return d;
}

}  // namespace tmsim::obs
