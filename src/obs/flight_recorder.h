// Black-box flight recorder (DESIGN.md §15).
//
// A set of bounded rings of fixed-size structured events, one ring per
// writer (the farm gives each worker its own, plus one shared ring for
// the supervisor/shutdown paths). Writers append span edges and key
// metric samples as they work; the rings silently overwrite the oldest
// events, so the recorder costs O(depth) memory forever. When a job
// fails, the farm dumps the failing worker's ring — filtered to that
// job — into `JobFailure::flight_recording` next to the replay tuple:
// the crash site ships its own black box.
//
// Each ring has its own mutex; with one writer per ring it is
// uncontended on the hot path and only fought over at dump time.
// Recording is independent of trace sampling — unsampled jobs still
// leave flight events (with trace/span ids 0), so a failure always has
// a story even at 1-in-N sampling.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tmsim::obs {

enum class FlightEventKind : std::uint8_t {
  kDispatch = 1,  ///< worker popped the job; a = slices so far, b = attempt
  kAttach,        ///< session attached; a = resumed (0/1), b = cache hits
  kSlice,         ///< run slice done; a = cycles advanced, b = delta cycles
  kPreempt,       ///< preempted + requeued; a = cycles done, b = cycles total
  kRetry,         ///< transient failure requeued; a = new attempt, b = kind
  kKill,          ///< chaos/worker kill observed; a = lose_session (0/1)
  kReclaim,       ///< supervisor reclaimed the job from a dead worker; a = worker
  kPublish,       ///< terminal result published; a = status code
  kCancel,        ///< cancel/deadline observed; a = cause code
  kMetric,        ///< free-form sample; a/b meaning given by context
};

const char* flight_event_name(FlightEventKind kind);

struct FlightEvent {
  double ts_us = 0.0;
  std::uint64_t job_id = 0;
  std::uint64_t trace_id = 0;  ///< 0 when the job is unsampled
  std::uint64_t span_id = 0;   ///< innermost open span at record time
  std::uint32_t attempt = 0;
  FlightEventKind kind = FlightEventKind::kMetric;
  std::uint64_t a = 0;  ///< kind-specific payload (see enum comments)
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `num_rings` independent rings of `depth` events each.
  FlightRecorder(std::size_t num_rings, std::size_t depth);

  std::size_t num_rings() const { return rings_.size(); }
  std::size_t depth() const { return depth_; }

  void record(std::size_t ring, const FlightEvent& event);

  /// The ring's events, oldest first.
  std::vector<FlightEvent> snapshot(std::size_t ring) const;

  /// JSONL render of the ring (oldest first). `job_filter != 0` keeps
  /// only that job's events plus ring-wide markers (job_id 0).
  std::string dump_jsonl(std::size_t ring, std::uint64_t job_filter = 0) const;

  std::uint64_t events_recorded() const;
  std::uint64_t events_overwritten() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<FlightEvent> buf;  // capacity == depth, wraps at next
    std::size_t next = 0;
    std::uint64_t total = 0;
  };

  std::size_t depth_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

}  // namespace tmsim::obs
