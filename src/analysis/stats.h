// Streaming statistics used by the measurement harness and the benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace tmsim::analysis {

/// Streaming min/mean/max accumulator (sum-based; the sample counts here
/// are far below the 2^53 range where double precision would degrade).
class StatAccumulator {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Rebuilds an accumulator from its observable surface (count/sum/
  /// min/max) — the wire codec needs this to round-trip JobResults
  /// bit-exactly. An empty accumulator (count == 0) restores to the
  /// pristine sentinel state regardless of the min/max arguments, so
  /// restore(a.count(), a.sum(), a.min(), a.max()) == a for any `a`.
  static StatAccumulator restore(std::size_t count, double sum, double min,
                                 double max) {
    StatAccumulator a;
    if (count > 0) {
      a.count_ = count;
      a.sum_ = sum;
      a.min_ = min;
      a.max_ = max;
    }
    return a;
  }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [0, bin_width * num_bins); overflow clamps to
/// the last bin. Used for latency distributions.
class Histogram {
 public:
  /// Degenerate shapes are clamped (0 bins → 1 bin, non-positive width →
  /// 1.0) so add()/quantile() stay well-defined for any constructor args.
  Histogram(double bin_width, std::size_t num_bins)
      : bin_width_(bin_width > 0.0 ? bin_width : 1.0),
        bins_(num_bins == 0 ? 1 : num_bins, 0) {}

  void add(double x) {
    std::size_t b = x < 0 ? 0 : static_cast<std::size_t>(x / bin_width_);
    b = std::min(b, bins_.size() - 1);
    ++bins_[b];
    ++count_;
  }

  std::size_t count() const { return count_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_width() const { return bin_width_; }

  /// Value below which `q` (0..1) of the samples fall, estimated from the
  /// bin boundaries (upper edge of the bin containing the quantile).
  /// Edge cases: an empty histogram reports 0, `q` is clamped to [0, 1],
  /// and the rank is at least 1 so a single sample (or any all-equal
  /// sample set) reports the upper edge of its own bin for every q.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double want = q * static_cast<double>(count_);
    auto rank = static_cast<std::uint64_t>(want);
    if (static_cast<double>(rank) < want) ++rank;  // ceil
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < bins_.size(); ++b) {
      seen += bins_[b];
      if (seen >= rank) {
        return static_cast<double>(b + 1) * bin_width_;
      }
    }
    return static_cast<double>(bins_.size()) * bin_width_;
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::size_t count_ = 0;
};

}  // namespace tmsim::analysis
