// Minimal fixed-width table printer for the bench binaries, so every
// reproduced table/figure prints in a uniform, diffable format.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace tmsim::analysis {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(os, headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) rule += '+';
    }
    os << rule << '\n';
    for (const auto& row : rows_) {
      print_row(os, row, width);
    }
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting without stringstream noise.
inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace tmsim::analysis
