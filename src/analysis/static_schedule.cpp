#include "analysis/static_schedule.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/error.h"

namespace tmsim::analysis {

using core::BlockId;
using core::LinkId;
using core::LinkInfo;
using core::LinkKind;
using core::SystemModel;

namespace {

constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

/// Everything the emission pass needs about the pruned link graph.
struct LinkGraph {
  std::vector<char> included;            // per block
  std::vector<std::uint32_t> node_of;    // per link; kNoNode if untracked
  std::vector<LinkId> link_of;           // per node
  std::vector<std::vector<std::uint32_t>> adj;  // pruned edges, per node
  std::vector<char> self_edge;           // per node
  std::size_t included_blocks = 0;
};

LinkGraph build_link_graph(const SystemModel& model,
                           const StaticScheduleOptions& options) {
  LinkGraph g;
  const std::size_t n = model.num_blocks();
  g.included.assign(n, 1);
  if (options.include_blocks != nullptr) {
    TMSIM_CHECK_MSG(options.include_blocks->size() == n,
                    "include_blocks filter does not match the model");
    g.included = *options.include_blocks;
  }
  for (BlockId b = 0; b < n; ++b) {
    g.included_blocks += g.included[b] != 0;
  }
  // Tracked links: combinational, block-driven, block-read, and wholly
  // inside the included set. Everything else — registered links,
  // external links, mailbox cut links — is final at cycle start.
  g.node_of.assign(model.num_links(), kNoNode);
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    if (info.kind != LinkKind::kCombinational || !info.writer.has_value() ||
        info.readers.empty()) {
      continue;
    }
    if (!g.included[info.writer->block] ||
        !g.included[info.readers.front().block]) {
      continue;
    }
    g.node_of[l] = static_cast<std::uint32_t>(g.link_of.size());
    g.link_of.push_back(l);
  }
  g.adj.assign(g.link_of.size(), {});
  g.self_edge.assign(g.link_of.size(), 0);
  // Pruned edges: li→lo when a block reads li on port p, writes lo on
  // port q, and the block's dependency metadata keeps (q, p).
  for (BlockId b = 0; b < n; ++b) {
    if (!g.included[b]) {
      continue;
    }
    const core::BlockInstance& inst = model.block(b);
    for (std::size_t p = 0; p < inst.input_links.size(); ++p) {
      const std::uint32_t src = g.node_of[inst.input_links[p]];
      if (src == kNoNode) {
        continue;
      }
      for (std::size_t q = 0; q < inst.output_links.size(); ++q) {
        const std::uint32_t dst = g.node_of[inst.output_links[q]];
        if (dst == kNoNode) {
          continue;
        }
        if (!inst.logic->output_depends_on_input(q, p)) {
          continue;
        }
        g.adj[src].push_back(dst);
        if (src == dst) {
          g.self_edge[src] = 1;
        }
      }
    }
  }
  return g;
}

/// Iterative Tarjan over the link graph; returns the node list of every
/// *cyclic* SCC (size > 1, or a single node with a self-edge).
std::vector<std::vector<std::uint32_t>> cyclic_sccs(const LinkGraph& g) {
  const std::size_t nn = g.link_of.size();
  std::vector<std::int64_t> idx(nn, -1);
  std::vector<std::int64_t> low(nn, 0);
  std::vector<char> on_stack(nn, 0);
  std::vector<std::uint32_t> stk;
  std::vector<std::vector<std::uint32_t>> out;
  std::int64_t next_index = 0;
  struct Frame {
    std::uint32_t node;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (std::uint32_t root = 0; root < nn; ++root) {
    if (idx[root] >= 0) {
      continue;
    }
    idx[root] = low[root] = next_index++;
    stk.push_back(root);
    on_stack[root] = 1;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      const std::uint32_t v = frames.back().node;
      if (frames.back().edge < g.adj[v].size()) {
        const std::uint32_t w = g.adj[v][frames.back().edge++];
        if (idx[w] < 0) {
          idx[w] = low[w] = next_index++;
          stk.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], idx[w]);
        }
        continue;
      }
      if (low[v] == idx[v]) {
        std::vector<std::uint32_t> comp;
        while (true) {
          const std::uint32_t w = stk.back();
          stk.pop_back();
          on_stack[w] = 0;
          comp.push_back(w);
          if (w == v) {
            break;
          }
        }
        if (comp.size() > 1 || g.self_edge[v]) {
          out.push_back(std::move(comp));
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::uint32_t parent = frames.back().node;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  // Deterministic presentation order: by smallest member link id.
  std::sort(out.begin(), out.end(),
            [&](const auto& a, const auto& b) {
              const LinkId la =
                  g.link_of[*std::min_element(a.begin(), a.end())];
              const LinkId lb =
                  g.link_of[*std::min_element(b.begin(), b.end())];
              return la < lb;
            });
  return out;
}

/// Greedy drive plan: the complement of a maximal block set whose
/// induced read-graph (writer→reader over tracked acyclic links) stays
/// acyclic. Blocks outside that set are the preferred kDrive targets —
/// driving them early is what lets everything else commit in one pass.
/// Processing blocks in ascending id keeps the plan deterministic; on a
/// torus this picks a checkerboard-like feedback set (≈ half the
/// routers), giving ~1.5 evaluations per block per cycle instead of 2.
std::vector<BlockId> drive_plan(const SystemModel& model, const LinkGraph& g,
                                const std::vector<std::uint32_t>& scc_of_link) {
  const std::size_t n = model.num_blocks();
  std::vector<std::vector<BlockId>> succ(n);
  std::vector<char> has_edges(n, 0);
  for (std::uint32_t node = 0; node < g.link_of.size(); ++node) {
    const LinkId l = g.link_of[node];
    if (scc_of_link[l] != 0) {
      continue;  // settle regions handle their own ordering
    }
    const LinkInfo& info = model.link(l);
    const BlockId w = info.writer->block;
    const BlockId r = info.readers.front().block;
    if (w == r) {
      continue;
    }
    succ[w].push_back(r);
    has_edges[w] = has_edges[r] = 1;
  }
  std::vector<char> kept(n, 0);
  std::vector<BlockId> plan;
  std::vector<BlockId> dfs;
  std::vector<char> seen(n, 0);
  for (BlockId b = 0; b < n; ++b) {
    if (!g.included[b]) {
      continue;
    }
    if (!has_edges[b]) {
      kept[b] = 1;  // isolated in the read graph: can never close a cycle
      continue;
    }
    // Would adding b close a cycle through the kept set? DFS from b's
    // successors, restricted to kept ∪ {b}, looking for b.
    bool cycle = false;
    dfs.clear();
    std::vector<BlockId> touched;
    for (BlockId s : succ[b]) {
      if (kept[s] && !seen[s]) {
        seen[s] = 1;
        touched.push_back(s);
        dfs.push_back(s);
      }
    }
    while (!dfs.empty() && !cycle) {
      const BlockId v = dfs.back();
      dfs.pop_back();
      for (BlockId s : succ[v]) {
        if (s == b) {
          cycle = true;
          break;
        }
        if (kept[s] && !seen[s]) {
          seen[s] = 1;
          touched.push_back(s);
          dfs.push_back(s);
        }
      }
    }
    for (BlockId t : touched) {
      seen[t] = 0;
    }
    if (cycle) {
      plan.push_back(b);
    } else {
      kept[b] = 1;
    }
  }
  return plan;
}

}  // namespace

CompiledSchedule build_compiled_schedule(const SystemModel& model,
                                         const StaticScheduleOptions& options) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  const LinkGraph g = build_link_graph(model, options);
  const std::size_t n = model.num_blocks();

  CompiledSchedule sched;
  sched.num_blocks = g.included_blocks;
  sched.scc_of_link.assign(model.num_links(), 0);

  const std::vector<std::vector<std::uint32_t>> comps = cyclic_sccs(g);
  sched.sccs.reserve(comps.size());
  for (const auto& comp : comps) {
    CompiledScc scc;
    scc.links.reserve(comp.size());
    for (std::uint32_t node : comp) {
      scc.links.push_back(g.link_of[node]);
    }
    std::sort(scc.links.begin(), scc.links.end());
    for (LinkId l : scc.links) {
      sched.scc_of_link[l] = static_cast<std::uint32_t>(sched.sccs.size()) + 1;
      const LinkInfo& info = model.link(l);
      scc.blocks.push_back(info.writer->block);
      scc.blocks.push_back(info.readers.front().block);
    }
    std::sort(scc.blocks.begin(), scc.blocks.end());
    scc.blocks.erase(std::unique(scc.blocks.begin(), scc.blocks.end()),
                     scc.blocks.end());
    sched.sccs.push_back(std::move(scc));
  }

  // --- Emission bookkeeping -------------------------------------------
  std::vector<char> final_link(model.num_links(), 0);
  std::vector<std::size_t> deps_pending(model.num_links(), 0);
  std::vector<std::size_t> inputs_pending(n, 0);
  std::vector<std::size_t> scc_ext_pending(sched.sccs.size(), 0);
  std::vector<char> committed(n, 0);

  for (std::uint32_t node = 0; node < g.link_of.size(); ++node) {
    for (std::uint32_t dst : g.adj[node]) {
      ++deps_pending[g.link_of[dst]];
      const std::uint32_t s_src = sched.scc_of_link[g.link_of[node]];
      const std::uint32_t s_dst = sched.scc_of_link[g.link_of[dst]];
      if (s_dst != 0 && s_src != s_dst) {
        ++scc_ext_pending[s_dst - 1];
      }
    }
  }
  for (BlockId b = 0; b < n; ++b) {
    if (!g.included[b]) {
      continue;
    }
    for (LinkId li : model.block(b).input_links) {
      if (g.node_of[li] != kNoNode) {
        ++inputs_pending[b];
      }
    }
  }

  std::priority_queue<BlockId, std::vector<BlockId>, std::greater<>> ready;
  for (BlockId b = 0; b < n; ++b) {
    if (g.included[b] && inputs_pending[b] == 0) {
      ready.push(b);
    }
  }

  // Finalizing a link unblocks its reader, its dependent links, and any
  // SCC waiting on it.
  const auto finalize = [&](LinkId l) {
    final_link[l] = 1;
    const LinkInfo& info = model.link(l);
    const BlockId r = info.readers.front().block;
    if (--inputs_pending[r] == 0 && !committed[r]) {
      ready.push(r);
    }
    const std::uint32_t s_src = sched.scc_of_link[l];
    for (std::uint32_t dst : g.adj[g.node_of[l]]) {
      const LinkId lo = g.link_of[dst];
      --deps_pending[lo];
      const std::uint32_t s_dst = sched.scc_of_link[lo];
      if (s_dst != 0 && s_src != s_dst) {
        --scc_ext_pending[s_dst - 1];
      }
    }
  };

  // Finalize every tracked, not-yet-final output of `b` whose pruned
  // dependencies are all final. At commit time that is *all* of them.
  const auto finalize_ready_outputs = [&](BlockId b, bool acyclic_only) {
    bool any = false;
    for (LinkId lo : model.block(b).output_links) {
      if (g.node_of[lo] == kNoNode || final_link[lo] ||
          deps_pending[lo] != 0) {
        continue;
      }
      if (acyclic_only && sched.scc_of_link[lo] != 0) {
        continue;
      }
      finalize(lo);
      any = true;
    }
    return any;
  };

  const auto has_driveable_output = [&](BlockId b) {
    for (LinkId lo : model.block(b).output_links) {
      if (g.node_of[lo] != kNoNode && !final_link[lo] &&
          deps_pending[lo] == 0 && sched.scc_of_link[lo] == 0) {
        return true;
      }
    }
    return false;
  };

  const std::vector<BlockId> plan = drive_plan(model, g, sched.scc_of_link);
  std::vector<char> settled(sched.sccs.size(), 0);
  std::size_t remaining = g.included_blocks;

  while (remaining > 0) {
    // 1. Commit every ready block, lowest id first.
    if (!ready.empty()) {
      const BlockId b = ready.top();
      ready.pop();
      if (committed[b]) {
        continue;  // stale entry
      }
      sched.ops.push_back({CompiledOpKind::kEval, b, 0});
      ++sched.num_evals;
      committed[b] = 1;
      --remaining;
      finalize_ready_outputs(b, /*acyclic_only=*/false);
      continue;
    }
    // 2. Settle any SCC whose external dependencies are final.
    bool progressed = false;
    for (std::size_t s = 0; s < sched.sccs.size(); ++s) {
      if (settled[s] || scc_ext_pending[s] != 0) {
        continue;
      }
      settled[s] = 1;
      sched.ops.push_back(
          {CompiledOpKind::kSettle, 0, static_cast<std::uint32_t>(s)});
      for (LinkId l : sched.sccs[s].links) {
        finalize(l);
      }
      // Members whose inputs are now all final were committed by the
      // settle's own fixed-point evaluations — no separate kEval.
      for (BlockId b : sched.sccs[s].blocks) {
        if (!committed[b] && inputs_pending[b] == 0) {
          committed[b] = 1;
          --remaining;
          sched.sccs[s].committed_blocks.push_back(b);
          finalize_ready_outputs(b, /*acyclic_only=*/false);
        }
      }
      progressed = true;
      break;
    }
    if (progressed) {
      continue;
    }
    // 3. Drive: an early evaluation that finalizes outputs whose pruned
    // dependencies are already final. Prefer the precomputed plan.
    BlockId drive = n;
    for (BlockId b : plan) {
      if (!committed[b] && has_driveable_output(b)) {
        drive = b;
        break;
      }
    }
    if (drive == n) {
      for (BlockId b = 0; b < n && drive == n; ++b) {
        if (g.included[b] && !committed[b] && has_driveable_output(b)) {
          drive = b;
        }
      }
    }
    if (drive == n) {
      // Unreachable for a well-formed model: the SCC condensation is
      // acyclic, so something is always ready, settleable, or driveable.
      throw ContextualError(
          "static schedule emission made no progress (internal error)",
          {{"remaining_blocks", std::to_string(remaining)}});
    }
    sched.ops.push_back({CompiledOpKind::kDrive, drive, 0});
    ++sched.num_drives;
    finalize_ready_outputs(drive, /*acyclic_only=*/true);
  }
  return sched;
}

}  // namespace tmsim::analysis
