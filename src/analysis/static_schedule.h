// Static-schedule analysis (DESIGN.md §17): the build-time pass behind
// SchedulerKind::kCompiled.
//
// The paper's §4.2 dynamic schedule discovers the evaluation order at
// run time, every system cycle, by chasing an unstable set to a fixed
// point. But the combinational link graph is a *build-time* artifact:
// which link can invalidate which block never changes after
// SystemModel::finalize(). The modern descendants of the paper
// (Manticore's static bulk-synchronous scheduling, GSIM's partitioned
// compiled RTL — PAPERS.md) therefore compile the schedule once:
//
//   1. Build the dependency graph over *tracked* combinational links
//      (internal links whose writer and reader are both inside the
//      scheduled block set). An edge li→lo exists when some block reads
//      li on input port p, writes lo on output port q, and
//      SimBlock::output_depends_on_input(q, p) says the value actually
//      flows through. Router-shaped blocks (outputs = G(state)) cut all
//      such edges, which is what turns the NoC's apparent cycles into
//      an acyclic graph.
//   2. Condense strongly-connected components (iterative Tarjan).
//      Links in a nontrivial SCC — or with a self-edge — are true
//      combinational cycles and become CompiledScc fallback regions.
//   3. Topologically order the condensation and emit a CompiledOp list:
//        kEval   — the block's single committing evaluation; every
//                  tracked input is final when it runs.
//        kDrive  — an early extra evaluation of a block whose
//                  not-yet-final inputs provably do not feed the
//                  outputs being finalized (the state write it also
//                  performs is harmlessly overwritten by the later
//                  kEval — StateMemory's new bank is write-overwrite).
//        kSettle — run the scoped worklist fallback on one SCC until
//                  its links reach a fixed point (or the convergence
//                  budget trips). Blocks whose inputs are all final
//                  after the settle are committed by it and get no
//                  separate kEval.
//
// The emitted order is a pure function of the model (all tie-breaks are
// lowest-id), so two builds of the same model — on different workers,
// in different processes — produce byte-identical schedules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/system_model.h"

namespace tmsim::analysis {

enum class CompiledOpKind : std::uint8_t {
  kEval = 0,
  kDrive = 1,
  kSettle = 2,
};

struct CompiledOp {
  CompiledOpKind kind = CompiledOpKind::kEval;
  /// Block to evaluate (kEval/kDrive); unused for kSettle.
  core::BlockId block = 0;
  /// Index into CompiledSchedule::sccs (kSettle only).
  std::uint32_t scc = 0;
};

/// One true combinational cycle: the scoped fallback region.
struct CompiledScc {
  /// Member blocks, ascending. Every reader of an SCC link writes an
  /// SCC link (single-reader links make the cycle pass through each
  /// member), so this is both the writer and the reader set.
  std::vector<core::BlockId> blocks;
  /// The SCC's internal tracked links, ascending.
  std::vector<core::LinkId> links;
  /// Members whose every tracked input is final once the SCC settles;
  /// the settle commits them and the schedule emits no separate kEval.
  std::vector<core::BlockId> committed_blocks;
};

struct CompiledSchedule {
  std::vector<CompiledOp> ops;
  std::vector<CompiledScc> sccs;
  /// Per link: index into sccs + 1, or 0 when the link is not part of a
  /// cyclic SCC. Sized num_links.
  std::vector<std::uint32_t> scc_of_link;
  std::size_t num_blocks = 0;  ///< blocks included in the schedule
  std::size_t num_evals = 0;   ///< kEval ops
  std::size_t num_drives = 0;  ///< kDrive ops

  bool acyclic() const { return sccs.empty(); }
};

struct StaticScheduleOptions {
  /// Per-block include filter (sized num_blocks); null schedules every
  /// block. The sharded engine passes its shard's membership here —
  /// links crossing the filter boundary (mailbox cut links) are treated
  /// like registered edges: final at cycle start, never tracked.
  const std::vector<char>* include_blocks = nullptr;
};

/// Builds the compiled schedule for `model` (which must be finalized).
/// Deterministic: same model + options → identical schedule.
CompiledSchedule build_compiled_schedule(
    const core::SystemModel& model, const StaticScheduleOptions& options = {});

}  // namespace tmsim::analysis
