#include "net/wire.h"

#include <cstring>

#include "common/error.h"

namespace tmsim::net {

namespace {

/// CRC-32 table for poly 0xEDB88320, built once.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint64_t f64_bits(double v) {
  std::uint64_t u;
  static_assert(sizeof u == sizeof v);
  std::memcpy(&u, &v, sizeof u);
  return u;
}

double bits_f64(std::uint64_t u) {
  double v;
  std::memcpy(&v, &u, sizeof v);
  return v;
}

void encode_accumulator(WireWriter& w, const analysis::StatAccumulator& a) {
  w.u64(a.count());
  w.f64(a.sum());
  w.f64(a.min());
  w.f64(a.max());
}

analysis::StatAccumulator decode_accumulator(WireReader& r) {
  const std::uint64_t count = r.u64();
  const double sum = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  return analysis::StatAccumulator::restore(count, sum, min, max);
}

void encode_class(WireWriter& w, const farm::ClassResult& c) {
  w.u64(c.delivered);
  encode_accumulator(w, c.network);
  encode_accumulator(w, c.access);
  encode_accumulator(w, c.total);
}

farm::ClassResult decode_class(WireReader& r) {
  farm::ClassResult c;
  c.delivered = r.u64();
  c.network = decode_accumulator(r);
  c.access = decode_accumulator(r);
  c.total = decode_accumulator(r);
  return c;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const std::uint32_t* t = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kSubmit: return "submit";
    case FrameType::kSubmitReply: return "submit_reply";
    case FrameType::kCancel: return "cancel";
    case FrameType::kCancelReply: return "cancel_reply";
    case FrameType::kFetch: return "fetch";
    case FrameType::kFetchReply: return "fetch_reply";
    case FrameType::kSubscribe: return "subscribe";
    case FrameType::kResult: return "result";
    case FrameType::kIntrospect: return "introspect";
    case FrameType::kIntrospectReply: return "introspect_reply";
    case FrameType::kError: return "error";
    case FrameType::kGoodbye: return "goodbye";
  }
  return "?";
}

// --- primitives ------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f64(double v) { u64(f64_bits(v)); }

void WireWriter::str(const std::string& s) {
  TMSIM_CHECK_MSG(s.size() < kMaxPayload, "string exceeds the frame bound");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t WireReader::u8() {
  TMSIM_CHECK_MSG(pos_ + 1 <= len_, "wire decode: truncated u8");
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  TMSIM_CHECK_MSG(pos_ + 2 <= len_, "wire decode: truncated u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint32_t WireReader::u32() {
  TMSIM_CHECK_MSG(pos_ + 4 <= len_, "wire decode: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t WireReader::u64() {
  TMSIM_CHECK_MSG(pos_ + 8 <= len_, "wire decode: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double WireReader::f64() { return bits_f64(u64()); }

std::string WireReader::str() {
  const std::uint32_t n = u32();
  TMSIM_CHECK_MSG(n <= remaining(), "wire decode: truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void WireReader::expect_end() const {
  TMSIM_CHECK_MSG(pos_ == len_, "wire decode: trailing bytes in payload");
}

// --- framing ---------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  TMSIM_CHECK_MSG(payload.size() <= kMaxPayload,
                  "frame payload exceeds kMaxPayload");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  WireWriter w;
  w.u32(kMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // flags, reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC covers everything after the magic: version, type, flags, length,
  // payload — so a corrupt header field is as fatal as corrupt payload.
  const std::uint32_t crc = crc32(out.data() + 4, out.size() - 4);
  WireWriter cw;
  cw.u32(crc);
  const auto& cb = cw.bytes();
  out.insert(out.end(), cb.begin(), cb.end());
  return out;
}

std::uint32_t decode_header(const std::uint8_t header[kHeaderBytes]) {
  WireReader r(header, kHeaderBytes);
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw ContextualError("wire: bad frame magic",
                          {{"magic", std::to_string(magic)}});
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw ContextualError(
        "wire: unsupported protocol version",
        {{"got", std::to_string(version)},
         {"want", std::to_string(kWireVersion)}});
  }
  r.u8();   // type — validated by the message decoder
  r.u16();  // flags
  const std::uint32_t len = r.u32();
  if (len > kMaxPayload) {
    throw ContextualError("wire: frame payload over bound",
                          {{"len", std::to_string(len)}});
  }
  return len;
}

Frame decode_frame(const std::uint8_t* data, std::size_t len) {
  TMSIM_CHECK_MSG(len >= kHeaderBytes + kCrcBytes,
                  "wire: frame shorter than header+crc");
  const std::uint32_t payload_len = decode_header(data);
  TMSIM_CHECK_MSG(len == kHeaderBytes + payload_len + kCrcBytes,
                  "wire: frame length mismatch");
  const std::uint32_t want =
      crc32(data + 4, kHeaderBytes - 4 + payload_len);
  WireReader cr(data + kHeaderBytes + payload_len, kCrcBytes);
  const std::uint32_t got = cr.u32();
  if (want != got) {
    throw ContextualError("wire: frame CRC mismatch",
                          {{"want", std::to_string(want)},
                           {"got", std::to_string(got)}});
  }
  Frame f;
  f.type = static_cast<FrameType>(data[5]);
  f.payload.assign(data + kHeaderBytes,
                   data + kHeaderBytes + payload_len);
  return f;
}

// --- messages --------------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  WireWriter w;
  w.str(client_name);
  return w.take();
}

HelloMsg HelloMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloMsg m;
  m.client_name = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
  WireWriter w;
  w.u64(session_ordinal);
  w.u64(resumed);
  return w.take();
}

HelloAckMsg HelloAckMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloAckMsg m;
  m.session_ordinal = r.u64();
  m.resumed = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SubmitMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u64(client_trace_id);
  w.u64(client_span_id);
  w.str(spec_text);
  return w.take();
}

SubmitMsg SubmitMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  SubmitMsg m;
  m.req_id = r.u64();
  m.client_trace_id = r.u64();
  m.client_span_id = r.u64();
  m.spec_text = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SubmitReplyMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u8(accepted);
  w.u8(spilled);
  w.u64(remote_id);
  w.u8(reason);
  w.str(detail);
  w.u64(queue_depth);
  w.u64(queue_capacity);
  w.f64(retry_after_us);
  w.u64(server_trace_id);
  return w.take();
}

SubmitReplyMsg SubmitReplyMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  SubmitReplyMsg m;
  m.req_id = r.u64();
  m.accepted = r.u8();
  m.spilled = r.u8();
  m.remote_id = r.u64();
  m.reason = r.u8();
  m.detail = r.str();
  m.queue_depth = r.u64();
  m.queue_capacity = r.u64();
  m.retry_after_us = r.f64();
  m.server_trace_id = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> CancelMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u64(remote_id);
  return w.take();
}

CancelMsg CancelMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  CancelMsg m;
  m.req_id = r.u64();
  m.remote_id = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> CancelReplyMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u8(outcome);
  return w.take();
}

CancelReplyMsg CancelReplyMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  CancelReplyMsg m;
  m.req_id = r.u64();
  m.outcome = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> FetchMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u64(remote_id);
  return w.take();
}

FetchMsg FetchMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  FetchMsg m;
  m.req_id = r.u64();
  m.remote_id = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> FetchReplyMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u8(state);
  w.u8(result.has_value() ? 1 : 0);
  if (result.has_value()) {
    encode_result(w, *result);
  }
  return w.take();
}

FetchReplyMsg FetchReplyMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  FetchReplyMsg m;
  m.req_id = r.u64();
  m.state = r.u8();
  if (r.u8() != 0) {
    m.result = decode_result(r);
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> SubscribeMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  return w.take();
}

SubscribeMsg SubscribeMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  SubscribeMsg m;
  m.req_id = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> ResultMsg::encode() const {
  WireWriter w;
  w.u64(remote_id);
  encode_result(w, result);
  return w.take();
}

ResultMsg ResultMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  ResultMsg m;
  m.remote_id = r.u64();
  m.result = decode_result(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> IntrospectMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  return w.take();
}

IntrospectMsg IntrospectMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  IntrospectMsg m;
  m.req_id = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> IntrospectReplyMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.str(json);
  return w.take();
}

IntrospectReplyMsg IntrospectReplyMsg::decode(
    const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  IntrospectReplyMsg m;
  m.req_id = r.u64();
  m.json = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> ErrorMsg::encode() const {
  WireWriter w;
  w.u64(req_id);
  w.u8(code);
  w.str(detail);
  return w.take();
}

ErrorMsg ErrorMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  ErrorMsg m;
  m.req_id = r.u64();
  m.code = r.u8();
  m.detail = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> GoodbyeMsg::encode() const {
  WireWriter w;
  w.str(reason);
  return w.take();
}

GoodbyeMsg GoodbyeMsg::decode(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  GoodbyeMsg m;
  m.reason = r.str();
  r.expect_end();
  return m;
}

// --- JobResult codec -------------------------------------------------------

void encode_result(WireWriter& w, const farm::JobResult& r) {
  w.u64(r.job_id);
  w.u64(r.spec_fingerprint);
  w.str(r.name);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.str(r.error);
  w.u64(r.cycles_simulated);
  encode_class(w, r.gt);
  encode_class(w, r.be);
  w.u64(r.flits_injected);
  w.u64(r.flits_delivered);
  w.u8(r.overloaded ? 1 : 0);
  const fpga::FaultReport& fr = r.fault_report;
  w.u64(fr.rng_mirror_fixes);
  w.u64(fr.config_retries);
  w.u64(fr.ctrl_retries);
  w.u64(fr.load_replays);
  w.u64(fr.load_words_resynced);
  w.u64(fr.hw_rejected_words);
  w.u64(fr.retrieve_retries);
  w.u64(fr.reacks);
  w.u64(fr.read_disagreements);
  w.u64(fr.spurious_overruns_ignored);
  w.u64(fr.status_clears);
  w.u64(fr.busy_polls);
  w.u64(fr.watchdog_trips);
  w.u8(fr.aborted ? 1 : 0);
  w.str(fr.abort_reason);
  encode_accumulator(w, r.access_delay);
  w.u64(r.state_digest);
  const farm::JobFailure& f = r.failure;
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.str(f.message);
  w.u64(f.at_cycle);
  w.u64(f.last_checkpoint_cycle);
  w.u64(f.last_checkpoint_digest);
  w.u64(f.attempts);
  w.str(f.replay);
  w.u8(f.quarantined ? 1 : 0);
  w.str(f.flight_recording);
  w.u8(static_cast<std::uint8_t>(r.cancel_cause));
  w.u8(r.memo_hit ? 1 : 0);
  w.u64(r.preemptions);
  w.u64(r.slices);
  w.u64(r.last_worker);
  w.f64(r.queue_seconds);
  w.f64(r.exec_seconds);
  w.f64(r.turnaround_seconds);
}

farm::JobResult decode_result(WireReader& r) {
  farm::JobResult out;
  out.job_id = r.u64();
  out.spec_fingerprint = r.u64();
  out.name = r.str();
  out.status = static_cast<farm::JobStatus>(r.u8());
  out.error = r.str();
  out.cycles_simulated = r.u64();
  out.gt = decode_class(r);
  out.be = decode_class(r);
  out.flits_injected = r.u64();
  out.flits_delivered = r.u64();
  out.overloaded = r.u8() != 0;
  fpga::FaultReport& fr = out.fault_report;
  fr.rng_mirror_fixes = r.u64();
  fr.config_retries = r.u64();
  fr.ctrl_retries = r.u64();
  fr.load_replays = r.u64();
  fr.load_words_resynced = r.u64();
  fr.hw_rejected_words = r.u64();
  fr.retrieve_retries = r.u64();
  fr.reacks = r.u64();
  fr.read_disagreements = r.u64();
  fr.spurious_overruns_ignored = r.u64();
  fr.status_clears = r.u64();
  fr.busy_polls = r.u64();
  fr.watchdog_trips = r.u64();
  fr.aborted = r.u8() != 0;
  fr.abort_reason = r.str();
  out.access_delay = decode_accumulator(r);
  out.state_digest = r.u64();
  farm::JobFailure& f = out.failure;
  f.kind = static_cast<farm::FailureKind>(r.u8());
  f.message = r.str();
  f.at_cycle = r.u64();
  f.last_checkpoint_cycle = r.u64();
  f.last_checkpoint_digest = r.u64();
  f.attempts = r.u64();
  f.replay = r.str();
  f.quarantined = r.u8() != 0;
  f.flight_recording = r.str();
  out.cancel_cause = static_cast<farm::CancelCause>(r.u8());
  out.memo_hit = r.u8() != 0;
  out.preemptions = r.u64();
  out.slices = r.u64();
  out.last_worker = r.u64();
  out.queue_seconds = r.f64();
  out.exec_seconds = r.f64();
  out.turnaround_seconds = r.f64();
  return out;
}

}  // namespace tmsim::net
