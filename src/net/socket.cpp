#include "net/socket.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace tmsim::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw ContextualError(what, {{"errno", std::to_string(errno)},
                               {"msg", std::strerror(errno)}});
}

sockaddr_in local_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
  }
  return *this;
}

Socket Socket::connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket() failed");
  }
  Socket s(fd);
  const sockaddr_in addr = local_addr(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("connect() to 127.0.0.1 failed");
  }
  // Frames are small and latency-sensitive (submit/reply round trips);
  // never wait for Nagle coalescing on loopback.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

void Socket::send_all(const void* data, std::size_t len) {
  const int fd = this->fd();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::send_frame(FrameType type,
                        const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  send_all(bytes.data(), bytes.size());
}

bool Socket::recv_exact(void* data, std::size_t len) {
  const int fd = this->fd();
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("recv() failed");
    }
    if (n == 0) {
      if (got == 0) {
        return false;  // clean EOF at a message boundary
      }
      throw Error("peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Frame> Socket::recv_frame() {
  std::uint8_t header[kHeaderBytes];
  if (!recv_exact(header, sizeof header)) {
    return std::nullopt;
  }
  const std::uint32_t payload_len = decode_header(header);
  std::vector<std::uint8_t> whole(kHeaderBytes + payload_len + kCrcBytes);
  std::memcpy(whole.data(), header, sizeof header);
  if (payload_len + kCrcBytes > 0 &&
      !recv_exact(whole.data() + kHeaderBytes, payload_len + kCrcBytes)) {
    throw Error("peer closed mid-frame");
  }
  return decode_frame(whole.data(), whole.size());
}

void Socket::shutdown_both() noexcept {
  const int fd = this->fd();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void Socket::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::close(fd);
  }
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = local_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    errno = e;
    throw_errno("bind() to 127.0.0.1 failed");
  }
  if (::listen(fd_, 64) != 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    errno = e;
    throw_errno("listen() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() {
  shutdown();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept_next() {
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(cfd);
    }
    if (errno == EINTR) {
      continue;
    }
    // EBADF / EINVAL after shutdown(): the orderly stop signal.
    return std::nullopt;
  }
}

void Listener::shutdown() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

}  // namespace tmsim::net
