// Thin RAII wrappers over POSIX TCP sockets (loopback-oriented): a
// Socket that sends/receives exactly-N bytes with EINTR handling and a
// framed read built on the wire header, and a Listener bound to
// 127.0.0.1 (port 0 → ephemeral, the tests' and benches' default) whose
// shutdown() wakes a blocked accept() so server threads can be joined.
//
// Errors are reported as common Error exceptions; a cleanly closed peer
// surfaces as an empty optional from recv_frame(), never as an
// exception — disconnects are a normal event in the farmd lifecycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"

namespace tmsim::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to 127.0.0.1:port. Throws on failure.
  static Socket connect_local(std::uint16_t port);

  bool valid() const { return fd() >= 0; }
  int fd() const { return fd_.load(std::memory_order_acquire); }

  /// Sends all `len` bytes (EINTR-safe, MSG_NOSIGNAL). Throws when the
  /// peer is gone — the caller owns disconnect handling.
  void send_all(const void* data, std::size_t len);
  void send_frame(FrameType type, const std::vector<std::uint8_t>& payload);

  /// Receives exactly `len` bytes. Returns false on clean EOF *before
  /// the first byte*; throws on EOF mid-buffer or any socket error.
  bool recv_exact(void* data, std::size_t len);

  /// Reads one complete frame (header + payload + CRC) and decodes it.
  /// nullopt on clean EOF at a frame boundary; throws on a torn frame,
  /// bad magic/version/CRC, or socket error.
  std::optional<Frame> recv_frame();

  /// shutdown(SHUT_RDWR): wakes any thread blocked in recv on this
  /// socket (used to stop reader threads), keeps the fd for close().
  /// Safe to call from a thread other than the reader — but only while
  /// the caller holds a reference that keeps close() from running (a
  /// closed fd number may be recycled by the kernel at any time).
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  /// Atomic so a cross-thread shutdown_both() never races the owner's
  /// close(); the fd is loaded once per I/O call.
  std::atomic<int> fd_{-1};
};

class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Throws on
  /// failure; port() reports the actual bound port.
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. nullopt when the listener was shut
  /// down (the accept loop's exit signal).
  std::optional<Socket> accept_next();

  /// Wakes a blocked accept_next() and makes all future accepts fail.
  void shutdown() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace tmsim::net
