#include "net/client.h"

#include "common/error.h"

namespace tmsim::net {

FarmClient::FarmClient(std::uint16_t port, std::string client_name)
    : name_(std::move(client_name)),
      sock_(Socket::connect_local(port)) {
  // Handshake runs synchronously on the caller's thread, before the
  // reader exists — the first frame on the wire is always Hello, the
  // first frame back always HelloAck (or Error, which throws here).
  HelloMsg hello;
  hello.client_name = name_;
  sock_.send_frame(FrameType::kHello, hello.encode());
  std::optional<Frame> ack = sock_.recv_frame();
  if (!ack.has_value()) {
    throw Error("server closed the connection during the handshake");
  }
  if (ack->type == FrameType::kError) {
    const ErrorMsg err = ErrorMsg::decode(ack->payload);
    throw ContextualError("server rejected the handshake",
                          {{"detail", err.detail}});
  }
  TMSIM_CHECK_MSG(ack->type == FrameType::kHelloAck,
                  "handshake: expected HelloAck");
  const HelloAckMsg m = HelloAckMsg::decode(ack->payload);
  resumed_ = m.resumed != 0;
  reader_ = std::thread([this] { reader_main(); });
}

FarmClient::~FarmClient() { close(); }

void FarmClient::reader_main() {
  std::string reason = "connection closed";
  try {
    for (;;) {
      std::optional<Frame> frame = sock_.recv_frame();
      if (!frame.has_value()) {
        break;  // clean EOF
      }
      switch (frame->type) {
        case FrameType::kResult: {
          ResultMsg m = ResultMsg::decode(frame->payload);
          {
            std::lock_guard<std::mutex> lock(mu_);
            results_.push_back(std::move(m));
          }
          cv_.notify_all();
          break;
        }
        case FrameType::kGoodbye:
          reason = "server said goodbye: " +
                   GoodbyeMsg::decode(frame->payload).reason;
          goto done;
        default: {
          // Every other frame is a reply carrying a leading req_id —
          // including Error frames, which resolve (and fail) the
          // matching waiter instead of killing the connection.
          WireReader r(frame->payload);
          const std::uint64_t req_id = r.u64();
          std::lock_guard<std::mutex> lock(mu_);
          const auto it = pending_.find(req_id);
          if (it != pending_.end()) {
            it->second = std::move(*frame);
            cv_.notify_all();
          }
          // A reply nobody waits for is dropped — the waiter may have
          // given up; the protocol has no request it must not lose.
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    reason = e.what();
  }
done:
  {
    std::lock_guard<std::mutex> lock(mu_);
    death_reason_ = reason;
  }
  dead_.store(true, std::memory_order_release);
  cv_.notify_all();
}

std::uint64_t FarmClient::send_request(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  // The req_id is already inside `payload`; the caller registered it.
  std::lock_guard<std::mutex> lock(send_mu_);
  sock_.send_frame(type, payload);
  return 0;
}

Frame FarmClient::wait_reply(std::uint64_t req_id) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return pending_.at(req_id).has_value() ||
           dead_.load(std::memory_order_acquire);
  });
  auto node = pending_.extract(req_id);
  if (!node.mapped().has_value()) {
    throw ContextualError("connection died while waiting for a reply",
                          {{"reason", death_reason_}});
  }
  return std::move(*node.mapped());
}

std::uint64_t FarmClient::submit_async(const farm::JobSpec& spec,
                                       const obs::TraceContext* trace) {
  SubmitMsg m;
  m.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  if (trace != nullptr) {
    m.client_trace_id = trace->trace_id;
    m.client_span_id = trace->span_id;
  }
  m.spec_text = spec.serialize();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(m.req_id, std::nullopt);
  }
  send_request(FrameType::kSubmit, m.encode());
  return m.req_id;
}

SubmitReplyMsg FarmClient::wait_submit_reply(std::uint64_t req_id) {
  const Frame f = wait_reply(req_id);
  if (f.type == FrameType::kError) {
    const ErrorMsg err = ErrorMsg::decode(f.payload);
    throw ContextualError("submit failed",
                          {{"code", std::to_string(err.code)},
                           {"detail", err.detail}});
  }
  TMSIM_CHECK_MSG(f.type == FrameType::kSubmitReply,
                  "unexpected reply type to submit");
  return SubmitReplyMsg::decode(f.payload);
}

SubmitReplyMsg FarmClient::submit(const farm::JobSpec& spec,
                                  const obs::TraceContext* trace) {
  return wait_submit_reply(submit_async(spec, trace));
}

void FarmClient::subscribe() {
  SubscribeMsg m;
  m.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  send_request(FrameType::kSubscribe, m.encode());
}

std::optional<ResultMsg> FarmClient::next_result(
    std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] {
    return !results_.empty() || dead_.load(std::memory_order_acquire);
  });
  if (!results_.empty()) {
    ResultMsg m = std::move(results_.front());
    results_.pop_front();
    return m;
  }
  if (dead_.load(std::memory_order_acquire)) {
    throw ContextualError("connection died with no queued results",
                          {{"reason", death_reason_}});
  }
  return std::nullopt;
}

CancelReplyMsg FarmClient::cancel(std::uint64_t remote_id) {
  CancelMsg m;
  m.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  m.remote_id = remote_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(m.req_id, std::nullopt);
  }
  send_request(FrameType::kCancel, m.encode());
  const Frame f = wait_reply(m.req_id);
  TMSIM_CHECK_MSG(f.type == FrameType::kCancelReply,
                  "unexpected reply type to cancel");
  return CancelReplyMsg::decode(f.payload);
}

FetchReplyMsg FarmClient::fetch(std::uint64_t remote_id) {
  FetchMsg m;
  m.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  m.remote_id = remote_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(m.req_id, std::nullopt);
  }
  send_request(FrameType::kFetch, m.encode());
  const Frame f = wait_reply(m.req_id);
  TMSIM_CHECK_MSG(f.type == FrameType::kFetchReply,
                  "unexpected reply type to fetch");
  return FetchReplyMsg::decode(f.payload);
}

std::string FarmClient::introspect() {
  IntrospectMsg m;
  m.req_id = next_req_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(m.req_id, std::nullopt);
  }
  send_request(FrameType::kIntrospect, m.encode());
  const Frame f = wait_reply(m.req_id);
  TMSIM_CHECK_MSG(f.type == FrameType::kIntrospectReply,
                  "unexpected reply type to introspect");
  return IntrospectReplyMsg::decode(f.payload).json;
}

void FarmClient::close() {
  if (closed_.exchange(true)) {
    if (reader_.joinable()) {
      reader_.join();
    }
    return;
  }
  if (!dead_.load(std::memory_order_acquire)) {
    try {
      GoodbyeMsg bye;
      bye.reason = "client closing";
      std::lock_guard<std::mutex> lock(send_mu_);
      sock_.send_frame(FrameType::kGoodbye, bye.encode());
    } catch (const std::exception&) {
      // Best-effort: the peer may already be gone.
    }
  }
  sock_.shutdown_both();
  if (reader_.joinable()) {
    reader_.join();
  }
  sock_.close();
}

}  // namespace tmsim::net
