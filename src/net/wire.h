// tmsim wire protocol (DESIGN.md §16): the versioned, length-prefixed,
// CRC-guarded binary framing that lets many client processes feed one
// simulation farm over a byte stream.
//
// ## Framing
//
// Every frame is:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//   0       4     magic "TMSF" (0x54 0x4d 0x53 0x46 on the wire)
//   4       1     wire version (kWireVersion; mismatch → structured
//                 error + connection close, never a best-effort parse)
//   5       1     frame type (FrameType)
//   6       2     flags (reserved, 0; u16 little-endian)
//   8       4     payload length N (u32 LE; bounded by kMaxPayload)
//   12      N     payload (typed fields, see the message structs)
//   12+N    4     CRC-32 (poly 0xEDB88320, LE) over bytes [4, 12+N) —
//                 everything after the magic, before the CRC
//
// All integers are little-endian fixed-width. Doubles travel as their
// IEEE-754 bit pattern in a u64 — the differential proof demands
// *bit-identical* results across the socket, so no decimal round trip
// is ever allowed on the result path. Strings are u32 length + raw
// bytes (no terminator).
//
// ## Conversation
//
// Client connects, sends Hello, receives HelloAck (which echoes the
// negotiated wire version and assigns a session ordinal). After that
// the client sends requests (Submit / Cancel / Fetch / Subscribe /
// Introspect / Goodbye), each carrying a client-chosen `req_id`;
// every reply echoes the req_id so one connection can have many
// requests in flight. Result frames (pushed after Subscribe) carry no
// req_id — they are a stream, routed by remote job id. Error frames
// answer anything malformed that still had a parsable req_id; frames
// too broken to trust (bad magic / version / CRC) kill the connection.
//
// JobSpecs travel as their stable text serialization (which carries
// its own `v=` format version — two independent version gates, wire
// and spec). JobResults travel as a full binary codec over the entire
// result struct; decode(encode(r)) compares equivalent AND equal on
// every scheduling field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "farm/admission.h"
#include "farm/job_result.h"
#include "obs/trace.h"

namespace tmsim::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint32_t kMagic = 0x46534d54u;  // "TMSF" little-endian
/// Frame payload bound: large enough for any JobResult (flight
/// recordings included), small enough that a corrupt length field can
/// never make a reader allocate unbounded memory.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
inline constexpr std::size_t kHeaderBytes = 12;  ///< magic..length
inline constexpr std::size_t kCrcBytes = 4;

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), the guard on every frame.
std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kSubmit = 3,
  kSubmitReply = 4,
  kCancel = 5,
  kCancelReply = 6,
  kFetch = 7,       ///< STATUS: poll one remote job
  kFetchReply = 8,
  kSubscribe = 9,   ///< STREAM_RESULTS: push Result frames from now on
  kResult = 10,     ///< server → client stream (no req_id)
  kIntrospect = 11,
  kIntrospectReply = 12,
  kError = 13,      ///< structured error (parse failures, bad requests)
  kGoodbye = 14,    ///< either side: orderly close after in-flight work
};

const char* frame_type_name(FrameType t);

// ---------------------------------------------------------------------------
// Encode/decode primitives. WireWriter appends little-endian fields to a
// byte buffer; WireReader consumes them and *throws Error* on any
// truncation or bound violation — a frame that decodes at all decodes
// completely.

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern in a u64 — bit-exact, no decimal round trip.
  void f64(double v);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit WireReader(const std::vector<std::uint8_t>& v)
      : WireReader(v.data(), v.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  std::size_t remaining() const { return len_ - pos_; }
  /// Throws unless the payload was consumed exactly — a decoder that
  /// leaves trailing bytes mis-parsed something.
  void expect_end() const;

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Frame assembly / parsing.

/// One parsed frame: type + raw payload (message structs decode from it).
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Serializes a complete frame (header + payload + CRC), wire-ready.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload);

/// Parses one complete frame from `data` (which must hold exactly
/// header+payload+crc as returned by a framed read). Throws Error on bad
/// magic, wrong wire version, oversized length, or CRC mismatch.
Frame decode_frame(const std::uint8_t* data, std::size_t len);

/// Header pre-parse for streaming readers: validates magic/version and
/// the length bound, returns the payload length so the caller knows how
/// many more bytes to read (payload + 4 CRC bytes follow the header).
std::uint32_t decode_header(const std::uint8_t header[kHeaderBytes]);

// ---------------------------------------------------------------------------
// Messages. Each struct has encode() → payload bytes and a static
// decode(payload) that throws Error on malformed input.

struct HelloMsg {
  std::string client_name;
  std::vector<std::uint8_t> encode() const;
  static HelloMsg decode(const std::vector<std::uint8_t>& p);
};

struct HelloAckMsg {
  std::uint64_t session_ordinal = 0;  ///< server-assigned, for logs
  std::uint64_t resumed = 0;          ///< 1 when the name had prior state
  std::vector<std::uint8_t> encode() const;
  static HelloAckMsg decode(const std::vector<std::uint8_t>& p);
};

struct SubmitMsg {
  std::uint64_t req_id = 0;
  /// Client-side trace identity (0s = untraced). Carried across the
  /// wire so the server-side trace records the link.
  std::uint64_t client_trace_id = 0;
  std::uint64_t client_span_id = 0;
  std::string spec_text;  ///< JobSpec::serialize() (self-versioned)
  std::vector<std::uint8_t> encode() const;
  static SubmitMsg decode(const std::vector<std::uint8_t>& p);
};

struct SubmitReplyMsg {
  std::uint64_t req_id = 0;
  std::uint8_t accepted = 0;
  /// 1 when the farm queue was full and the spec went to the spill
  /// segment instead (still accepted=1: admission is guaranteed, only
  /// delayed). Mirrors the backpressure contract without pushing the
  /// shedding decision to every remote client.
  std::uint8_t spilled = 0;
  std::uint64_t remote_id = 0;  ///< server-scoped job handle
  std::uint8_t reason = 0;      ///< farm::RejectReason on rejects
  std::string detail;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  double retry_after_us = 0.0;
  std::uint64_t server_trace_id = 0;  ///< server-side trace (0 = unsampled)
  std::vector<std::uint8_t> encode() const;
  static SubmitReplyMsg decode(const std::vector<std::uint8_t>& p);
};

struct CancelMsg {
  std::uint64_t req_id = 0;
  std::uint64_t remote_id = 0;
  std::vector<std::uint8_t> encode() const;
  static CancelMsg decode(const std::vector<std::uint8_t>& p);
};

struct CancelReplyMsg {
  std::uint64_t req_id = 0;
  std::uint8_t outcome = 0;  ///< farm::CancelResult
  std::vector<std::uint8_t> encode() const;
  static CancelReplyMsg decode(const std::vector<std::uint8_t>& p);
};

enum class RemoteJobState : std::uint8_t {
  kUnknown = 0,   ///< not a job of this client
  kQueued = 1,    ///< admitted to the farm, not yet terminal
  kSpilled = 2,   ///< waiting in the spill segment
  kTerminal = 3,  ///< result available (carried in the reply)
};

struct FetchMsg {
  std::uint64_t req_id = 0;
  std::uint64_t remote_id = 0;
  std::vector<std::uint8_t> encode() const;
  static FetchMsg decode(const std::vector<std::uint8_t>& p);
};

struct FetchReplyMsg {
  std::uint64_t req_id = 0;
  std::uint8_t state = 0;  ///< RemoteJobState
  /// Present iff state == kTerminal.
  std::optional<farm::JobResult> result;
  std::vector<std::uint8_t> encode() const;
  static FetchReplyMsg decode(const std::vector<std::uint8_t>& p);
};

struct SubscribeMsg {
  std::uint64_t req_id = 0;
  std::vector<std::uint8_t> encode() const;
  static SubscribeMsg decode(const std::vector<std::uint8_t>& p);
};

struct ResultMsg {
  std::uint64_t remote_id = 0;
  farm::JobResult result;
  std::vector<std::uint8_t> encode() const;
  static ResultMsg decode(const std::vector<std::uint8_t>& p);
};

struct IntrospectMsg {
  std::uint64_t req_id = 0;
  std::vector<std::uint8_t> encode() const;
  static IntrospectMsg decode(const std::vector<std::uint8_t>& p);
};

struct IntrospectReplyMsg {
  std::uint64_t req_id = 0;
  std::string json;
  std::vector<std::uint8_t> encode() const;
  static IntrospectReplyMsg decode(const std::vector<std::uint8_t>& p);
};

enum class WireErrorCode : std::uint8_t {
  kNone = 0,
  kMalformedFrame = 1,   ///< payload did not decode
  kUnknownType = 2,      ///< frame type this server does not speak
  kBadSpec = 3,          ///< JobSpec text failed to parse/validate
  kNotSubscribed = 4,
  kProtocol = 5,         ///< out-of-order conversation (e.g. no Hello)
};

struct ErrorMsg {
  std::uint64_t req_id = 0;  ///< 0 when the offending frame had none
  std::uint8_t code = 0;     ///< WireErrorCode
  std::string detail;
  std::vector<std::uint8_t> encode() const;
  static ErrorMsg decode(const std::vector<std::uint8_t>& p);
};

struct GoodbyeMsg {
  std::string reason;
  std::vector<std::uint8_t> encode() const;
  static GoodbyeMsg decode(const std::vector<std::uint8_t>& p);
};

// ---------------------------------------------------------------------------
// JobResult binary codec — the full struct, scheduling record included,
// doubles as bit patterns. encode_result/decode_result are also used by
// the Fetch path and by tests to prove bit-exact round trips.

void encode_result(WireWriter& w, const farm::JobResult& r);
farm::JobResult decode_result(WireReader& r);

}  // namespace tmsim::net
