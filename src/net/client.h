// FarmClient: the client half of the tmsim wire protocol — one TCP
// connection to a tmsim-farmd, a background reader thread that demuxes
// replies (by req_id) from streamed Result frames, and a small blocking
// API on top:
//
//   FarmClient c(port, "loadgen-0");
//   c.subscribe();
//   auto r = c.submit(spec);                 // blocking submit
//   std::uint64_t req = c.submit_async(spec);  // pipelined submit
//   auto reply = c.wait_submit_reply(req);
//   while (auto res = c.next_result(1s)) { ... }  // streaming iterator
//
// Thread model: any number of caller threads may submit/fetch/cancel
// concurrently (frame writes serialize on a send mutex; replies demux by
// req_id), plus the internal reader thread. next_result() may be called
// from one consumer thread at a time.
//
// Disconnect semantics (DESIGN.md §16): when the connection dies, every
// blocked wait throws Error and alive() turns false. Accepted jobs are
// *not* lost — the server keeps their results; a new FarmClient with
// the same client name resumes the stream (undelivered results are
// re-pushed on subscribe) and fetch() recovers anything else.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "farm/job_spec.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace tmsim::net {

class FarmClient {
 public:
  /// Connects to 127.0.0.1:port, performs the Hello/HelloAck handshake
  /// (blocking), and starts the reader thread. `client_name` is the
  /// durable identity results are routed by — reconnecting with the
  /// same name resumes the previous session's result stream.
  FarmClient(std::uint16_t port, std::string client_name);
  ~FarmClient();
  FarmClient(const FarmClient&) = delete;
  FarmClient& operator=(const FarmClient&) = delete;

  const std::string& name() const { return name_; }
  /// True from the HelloAck: the server still had state for this name.
  bool resumed_session() const { return resumed_; }
  bool alive() const { return !dead_.load(std::memory_order_acquire); }

  /// Blocking submit: sends the spec, waits for the reply. `trace` (may
  /// be null) is the client-side trace context to link server-side.
  SubmitReplyMsg submit(const farm::JobSpec& spec,
                        const obs::TraceContext* trace = nullptr);

  /// Pipelined submit: returns the req_id immediately; pair with
  /// wait_submit_reply(). Thousands may be in flight at once — this is
  /// what lets one client saturate the admission path over one socket.
  std::uint64_t submit_async(const farm::JobSpec& spec,
                             const obs::TraceContext* trace = nullptr);
  SubmitReplyMsg wait_submit_reply(std::uint64_t req_id);

  /// Asks the server to stream Result frames for this client's jobs
  /// (including any undelivered backlog from a previous session with
  /// this name). Fire-and-forget.
  void subscribe();

  /// Next streamed result, FIFO, waiting up to `timeout`. nullopt on
  /// timeout; throws when the connection died with nothing queued.
  std::optional<ResultMsg> next_result(std::chrono::microseconds timeout);

  CancelReplyMsg cancel(std::uint64_t remote_id);
  FetchReplyMsg fetch(std::uint64_t remote_id);
  /// Server snapshot: SimFarm::introspect() with the daemon's net state.
  std::string introspect();

  /// Orderly close: Goodbye (best-effort), socket shutdown, reader
  /// join. Idempotent; the destructor calls it.
  void close();

 private:
  void reader_main();
  std::uint64_t send_request(FrameType type,
                             const std::vector<std::uint8_t>& payload);
  Frame wait_reply(std::uint64_t req_id);

  std::string name_;
  Socket sock_;
  bool resumed_ = false;

  std::mutex send_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::optional<Frame>> pending_;
  std::deque<ResultMsg> results_;
  std::string death_reason_;

  std::atomic<std::uint64_t> next_req_{1};
  std::atomic<bool> dead_{false};
  std::atomic<bool> closed_{false};
  std::thread reader_;
};

}  // namespace tmsim::net
