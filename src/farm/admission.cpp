#include "farm/admission.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace tmsim::farm {

namespace {

double steady_now_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         1e-3;
}

/// Display track for queue-side spans (workers live on 100 + w).
constexpr std::uint32_t kQueueTid = 90;

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kStopped: return "stopped";
    case RejectReason::kInvalidSpec: return "invalid_spec";
    case RejectReason::kTooLarge: return "too_large";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(std::size_t capacity,
                               SystemCycle max_job_cycles,
                               std::function<double()> now_fn,
                               std::size_t num_shards,
                               BatchKeyFn batch_key_fn, obs::Tracer* tracer)
    : capacity_(capacity),
      max_job_cycles_(max_job_cycles),
      now_fn_(now_fn ? std::move(now_fn) : steady_now_us),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      batch_key_fn_(std::move(batch_key_fn)),
      tracer_(tracer) {
  TMSIM_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
  for (ClassQueue& cls : classes_) {
    for (std::size_t s = 0; s < num_shards_; ++s) {
      cls.shards.push_back(std::make_unique<Shard>());
    }
  }
}

void AdmissionQueue::signal_enqueue() {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    enq_ticket_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
}

void AdmissionQueue::enqueue(QueuedJob job, RequeuePosition pos) {
  job.seq = pos == RequeuePosition::kFront
                ? front_seq_.fetch_sub(1, std::memory_order_relaxed)
                : back_seq_.fetch_add(1, std::memory_order_relaxed);
  if (batch_key_fn_) {
    job.batch_key = batch_key_fn_(job.spec);
  }
  ClassQueue& cls = classes_[static_cast<std::size_t>(job.spec.priority)];
  const std::size_t shard_idx =
      cls.rr.fetch_add(1, std::memory_order_relaxed) % num_shards_;
  Shard& shard = *cls.shards[shard_idx];
  job.enqueue_shard = shard_idx;
  // Copy what the span needs before the move; record after the unlock.
  const obs::TraceContext trace = job.trace;
  const auto attempt = static_cast<std::uint32_t>(job.attempts);
  const double queued_us = job.queued_us;
  const Priority prio = job.spec.priority;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Keep the shard deque ticket-sorted. Back tickets arrive roughly in
    // order (a racing pair can invert), front tickets belong near the
    // front — a short scan from the matching end finds the slot.
    if (shard.jobs.empty() || shard.jobs.back().seq < job.seq) {
      shard.jobs.push_back(std::move(job));
    } else if (shard.jobs.front().seq > job.seq) {
      shard.jobs.push_front(std::move(job));
    } else {
      auto it = shard.jobs.end();
      while (it != shard.jobs.begin() && std::prev(it)->seq > job.seq) {
        --it;
      }
      shard.jobs.insert(it, std::move(job));
    }
  }
  cls.count.fetch_add(1, std::memory_order_release);
  total_count_.fetch_add(1, std::memory_order_release);
  if (tracer_ != nullptr && trace.sampled()) {
    tracer_->span(trace, tracer_->alloc_span_id(), trace.span_id,
                  "admission.enqueue", attempt, kQueueTid, queued_us,
                  queued_us,
                  {{"shard", std::to_string(shard_idx)},
                   {"class", priority_name(prio)},
                   {"pos", pos == RequeuePosition::kFront ? "front" : "back"}});
  }
  signal_enqueue();
}

SubmitOutcome AdmissionQueue::submit(JobSpec spec, double now_us,
                                     const AcceptHook& on_accept,
                                     const obs::TraceContext* remote) {
  SubmitOutcome out;
  out.queue_capacity = capacity_;
  // Validate outside any lock: validation walks GT stream paths and must
  // not serialize submitters against each other.
  try {
    spec.validate();
  } catch (const std::exception& e) {
    out.reason = RejectReason::kInvalidSpec;
    out.detail = e.what();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  if (spec.cycles > max_job_cycles_) {
    out.reason = RejectReason::kTooLarge;
    out.detail = "cycle budget " + std::to_string(spec.cycles) +
                 " exceeds the farm ceiling " +
                 std::to_string(max_job_cycles_);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  if (stopped_.load(std::memory_order_acquire)) {
    out.reason = RejectReason::kStopped;
    out.detail = "farm is shutting down";
    out.queue_depth = total_count_.load(std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  // Capacity is a lock-free reservation: claim a fresh slot, give it
  // back on overflow. The bound stays strict under concurrent submits.
  const std::size_t fresh_before =
      fresh_queued_.fetch_add(1, std::memory_order_acq_rel);
  if (fresh_before >= capacity_) {
    fresh_queued_.fetch_sub(1, std::memory_order_acq_rel);
    out.reason = RejectReason::kQueueFull;
    out.queue_depth = total_count_.load(std::memory_order_relaxed);
    // Deterministic backpressure hint: a pure function of the fresh
    // backlog, so identical rejection states yield identical hints (see
    // the header's backpressure contract).
    out.retry_after_us =
        kRetryAfterUsPerJob * static_cast<double>(fresh_before);
    out.detail = "admission queue full: " + std::to_string(fresh_before) +
                 "/" + std::to_string(capacity_) + " fresh jobs queued (" +
                 std::to_string(out.queue_depth) +
                 " total); suggest retrying in " +
                 std::to_string(
                     static_cast<std::uint64_t>(out.retry_after_us)) +
                 "us";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  QueuedJob job;
  job.job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.spec = std::move(spec);
  job.submitted_us = now_us;
  job.queued_us = now_us;
  // Head-sample *before* the fingerprint hash: unsampled jobs (the
  // common case at 1-in-N) skip all tracing work, not just storage.
  // Remote submissions carrying a client trace are always sampled —
  // the client already opened its half of the trace.
  const bool remote_traced = remote != nullptr && remote->trace_id != 0;
  if (tracer_ != nullptr && (remote_traced || tracer_->should_sample())) {
    job.trace = tracer_->start_trace(job.spec.fingerprint());
    if (remote_traced) {
      // Span *links*, not parentage: the client's trace is a separate
      // tree (trace_validate wants exactly one root per trace), so the
      // wire crossing is recorded as link attributes on the submit span.
      tracer_->span(job.trace, tracer_->alloc_span_id(), job.trace.span_id,
                    "farm.submit", 0, kQueueTid, now_us, now_us,
                    {{"job", std::to_string(job.job_id)},
                     {"name", job.spec.name},
                     {"link.client_trace", std::to_string(remote->trace_id)},
                     {"link.client_span", std::to_string(remote->span_id)}});
    } else {
      tracer_->span(job.trace, tracer_->alloc_span_id(), job.trace.span_id,
                    "farm.submit", 0, kQueueTid, now_us, now_us,
                    {{"job", std::to_string(job.job_id)},
                     {"name", job.spec.name}});
    }
  }
  if (job.spec.deadline_ms > 0) {
    job.deadline_at_us =
        now_us + static_cast<double>(job.spec.deadline_ms) * 1e3;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  out.accepted = true;
  out.job_id = job.job_id;
  out.trace = job.trace;
  // The accept hook runs before the job is visible to any popper (and
  // with no queue locks held), closing the submit/pop TOCTOU without a
  // queue-wide mutex.
  if (on_accept) {
    on_accept(job.job_id, job.spec);
  }
  enqueue(std::move(job), RequeuePosition::kBack);
  out.queue_depth = total_count_.load(std::memory_order_relaxed);
  return out;
}

bool AdmissionQueue::requeue(QueuedJob job, double now_us,
                             RequeuePosition pos) {
  // Deliberately allowed after stop(): admitted work must always be able
  // to come back (returning false would strand the session), and
  // shutdown drains the backlog through pop_blocking() anyway.
  job.queued_us = now_us;
  job.fresh = false;
  enqueue(std::move(job), pos);
  return true;
}

std::optional<QueuedJob> AdmissionQueue::take_min_eligible(
    ClassQueue& cls, double now, double& next_eligible,
    std::uint64_t require_key, bool key_constrained) {
  // All shard locks of this class are taken in index order (the single
  // lock-order used everywhere), so the min-ticket choice is atomic
  // against concurrent pops; submitters still only contend on the one
  // shard they insert into.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(cls.shards.size());
  for (auto& shard : cls.shards) {
    locks.emplace_back(shard->mu);
  }
  Shard* best_shard = nullptr;
  std::size_t best_idx = 0;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (auto& shard : cls.shards) {
    for (std::size_t i = 0; i < shard->jobs.size(); ++i) {
      const QueuedJob& job = shard->jobs[i];
      if (job.not_before_us > now) {
        next_eligible = std::min(next_eligible, job.not_before_us);
        continue;  // backoff not expired; FIFO among *eligible* jobs
      }
      if (job.seq < best_seq) {
        best_seq = job.seq;
        best_shard = shard.get();
        best_idx = i;
      }
      break;  // shard is ticket-sorted: first eligible is its minimum
    }
  }
  if (best_shard == nullptr) {
    return std::nullopt;
  }
  if (key_constrained && best_shard->jobs[best_idx].batch_key != require_key) {
    return std::nullopt;  // next-in-order job is incompatible: stop batch
  }
  QueuedJob job = std::move(best_shard->jobs[best_idx]);
  best_shard->jobs.erase(best_shard->jobs.begin() +
                         static_cast<std::ptrdiff_t>(best_idx));
  cls.count.fetch_sub(1, std::memory_order_release);
  total_count_.fetch_sub(1, std::memory_order_release);
  if (job.fresh) {
    fresh_queued_.fetch_sub(1, std::memory_order_acq_rel);
    job.fresh = false;
  }
  return job;
}

std::vector<QueuedJob> AdmissionQueue::pop_batch_blocking(
    std::size_t max_batch) {
  TMSIM_CHECK_MSG(max_batch >= 1, "batch size must be positive");
  std::vector<QueuedJob> batch;
  for (;;) {
    const std::uint64_t ticket = enq_ticket_.load(std::memory_order_acquire);
    const double now = now_fn_();
    double next_eligible = std::numeric_limits<double>::infinity();
    for (ClassQueue& cls : classes_) {
      if (cls.count.load(std::memory_order_acquire) == 0) {
        continue;
      }
      std::optional<QueuedJob> head = take_min_eligible(
          cls, now, next_eligible, /*require_key=*/0,
          /*key_constrained=*/false);
      if (!head) {
        continue;
      }
      const std::uint64_t key = head->batch_key;
      batch.push_back(std::move(*head));
      // Batch growth never skips or overtakes: it only extends while the
      // very next eligible job (in ticket order) of the same class
      // shares the head's compatibility key.
      while (batch.size() < max_batch && batch_key_fn_ && key != 0) {
        double ignored = std::numeric_limits<double>::infinity();
        std::optional<QueuedJob> next = take_min_eligible(
            cls, now, ignored, key, /*key_constrained=*/true);
        if (!next) {
          break;
        }
        batch.push_back(std::move(*next));
      }
      if (tracer_ != nullptr) {
        const double end = now_fn_();
        for (const QueuedJob& j : batch) {
          if (!j.trace.sampled()) {
            continue;
          }
          // The queue-wait span: last (re)enqueue → this dequeue.
          tracer_->span(j.trace, tracer_->alloc_span_id(), j.trace.span_id,
                        "admission.dequeue",
                        static_cast<std::uint32_t>(j.attempts), kQueueTid,
                        j.queued_us, end,
                        {{"shard", std::to_string(j.enqueue_shard)},
                         {"batch", std::to_string(batch.size())}});
        }
      }
      return batch;
    }
    if (next_eligible < std::numeric_limits<double>::infinity()) {
      // Only backoff'd jobs remain (stopped or not — admitted work is
      // drained either way). Sleep until the earliest becomes eligible
      // or a new enqueue changes the picture.
      std::unique_lock<std::mutex> lock(wait_mu_);
      if (enq_ticket_.load(std::memory_order_acquire) != ticket) {
        continue;
      }
      const auto wake_us = static_cast<std::int64_t>(
          std::max(1.0, next_eligible - now));
      cv_.wait_for(lock, std::chrono::microseconds(wake_us), [&] {
        return enq_ticket_.load(std::memory_order_acquire) != ticket;
      });
      continue;
    }
    std::unique_lock<std::mutex> lock(wait_mu_);
    if (enq_ticket_.load(std::memory_order_acquire) != ticket) {
      continue;  // an enqueue raced the scan; rescan instead of sleeping
    }
    if (stopped_.load(std::memory_order_acquire) &&
        total_count_.load(std::memory_order_acquire) == 0) {
      return batch;  // empty: stopped and drained
    }
    cv_.wait(lock, [&] {
      return enq_ticket_.load(std::memory_order_acquire) != ticket;
    });
  }
}

std::optional<QueuedJob> AdmissionQueue::pop_blocking() {
  std::vector<QueuedJob> batch = pop_batch_blocking(1);
  if (batch.empty()) {
    return std::nullopt;
  }
  return std::move(batch.front());
}

bool AdmissionQueue::has_higher_than(Priority p) const {
  const double now = now_fn_();
  for (std::size_t c = 0; c < static_cast<std::size_t>(p); ++c) {
    const ClassQueue& cls = classes_[c];
    if (cls.count.load(std::memory_order_acquire) == 0) {
      continue;  // lock-free fast path: class empty
    }
    for (const auto& shard : cls.shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const QueuedJob& job : shard->jobs) {
        if (job.not_before_us <= now) {
          return true;
        }
      }
    }
  }
  return false;
}

void AdmissionQueue::stop() {
  stopped_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    enq_ticket_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
}

bool AdmissionQueue::stopped() const {
  return stopped_.load(std::memory_order_acquire);
}

std::size_t AdmissionQueue::depth() const {
  return total_count_.load(std::memory_order_acquire);
}

std::size_t AdmissionQueue::depth(Priority p) const {
  return classes_[static_cast<std::size_t>(p)].count.load(
      std::memory_order_acquire);
}

std::uint64_t AdmissionQueue::jobs_submitted() const {
  return submitted_.load(std::memory_order_relaxed);
}

std::uint64_t AdmissionQueue::jobs_rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

std::vector<std::vector<AdmissionQueue::ShardDepth>>
AdmissionQueue::introspect_shards() const {
  std::vector<std::vector<ShardDepth>> out(kNumPriorities);
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    out[c].reserve(num_shards_);
    for (const auto& shard : classes_[c].shards) {
      ShardDepth d;
      std::lock_guard<std::mutex> lock(shard->mu);
      d.depth = shard->jobs.size();
      if (!d.depth) {
        out[c].push_back(d);
        continue;
      }
      // The deque is ticket-sorted, so the front is the oldest ticket —
      // but its *queued_us* is what ages (a front requeue resets it).
      d.oldest_queued_us = shard->jobs.front().queued_us;
      for (const QueuedJob& j : shard->jobs) {
        d.oldest_queued_us = std::min(d.oldest_queued_us, j.queued_us);
      }
      out[c].push_back(d);
    }
  }
  return out;
}

}  // namespace tmsim::farm
