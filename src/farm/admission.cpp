#include "farm/admission.h"

namespace tmsim::farm {

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kStopped: return "stopped";
    case RejectReason::kInvalidSpec: return "invalid_spec";
    case RejectReason::kTooLarge: return "too_large";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(std::size_t capacity,
                               SystemCycle max_job_cycles)
    : capacity_(capacity), max_job_cycles_(max_job_cycles) {
  TMSIM_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
}

SubmitOutcome AdmissionQueue::submit(JobSpec spec, double now_us) {
  SubmitOutcome out;
  // Validate outside the lock: validation walks GT stream paths and must
  // not serialize submitters against each other.
  try {
    spec.validate();
  } catch (const std::exception& e) {
    out.reason = RejectReason::kInvalidSpec;
    out.detail = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return out;
  }
  if (spec.cycles > max_job_cycles_) {
    out.reason = RejectReason::kTooLarge;
    out.detail = "cycle budget " + std::to_string(spec.cycles) +
                 " exceeds the farm ceiling " +
                 std::to_string(max_job_cycles_);
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return out;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    out.reason = RejectReason::kStopped;
    out.detail = "farm is shutting down";
    ++rejected_;
    return out;
  }
  if (fresh_queued_ >= capacity_) {
    out.reason = RejectReason::kQueueFull;
    out.detail = "admission queue is at capacity (" +
                 std::to_string(capacity_) + "); backpressure — retry later";
    ++rejected_;
    return out;
  }
  QueuedJob job;
  job.job_id = next_job_id_++;
  job.spec = std::move(spec);
  job.submitted_us = now_us;
  job.queued_us = now_us;
  const auto cls = static_cast<std::size_t>(job.spec.priority);
  classes_[cls].push_back(std::move(job));
  ++fresh_queued_;
  ++submitted_;
  out.accepted = true;
  out.job_id = classes_[cls].back().job_id;
  cv_.notify_one();
  return out;
}

bool AdmissionQueue::requeue(QueuedJob job, double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  // Deliberately allowed after stop(): admitted work must always be able
  // to come back (returning false would strand the session), and
  // shutdown drains the backlog through pop_blocking() anyway.
  job.queued_us = now_us;
  ++job.preemptions;
  const auto cls = static_cast<std::size_t>(job.spec.priority);
  classes_[cls].push_front(std::move(job));
  cv_.notify_one();
  return true;
}

std::optional<QueuedJob> AdmissionQueue::pop_blocking() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (auto& cls : classes_) {
      if (!cls.empty()) {
        QueuedJob job = std::move(cls.front());
        cls.pop_front();
        if (job.preemptions == 0) {
          --fresh_queued_;
        }
        return job;
      }
    }
    if (stopped_) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

bool AdmissionQueue::has_higher_than(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t c = 0; c < static_cast<std::size_t>(p); ++c) {
    if (!classes_[c].empty()) {
      return true;
    }
  }
  return false;
}

void AdmissionQueue::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

bool AdmissionQueue::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& cls : classes_) {
    total += cls.size();
  }
  return total;
}

std::size_t AdmissionQueue::depth(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[static_cast<std::size_t>(p)].size();
}

std::uint64_t AdmissionQueue::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t AdmissionQueue::jobs_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace tmsim::farm
