#include "farm/admission.h"

#include <chrono>
#include <limits>

namespace tmsim::farm {

namespace {

double steady_now_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) *
         1e-3;
}

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kStopped: return "stopped";
    case RejectReason::kInvalidSpec: return "invalid_spec";
    case RejectReason::kTooLarge: return "too_large";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(std::size_t capacity,
                               SystemCycle max_job_cycles,
                               std::function<double()> now_fn)
    : capacity_(capacity),
      max_job_cycles_(max_job_cycles),
      now_fn_(now_fn ? std::move(now_fn) : steady_now_us) {
  TMSIM_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
}

SubmitOutcome AdmissionQueue::submit(JobSpec spec, double now_us) {
  SubmitOutcome out;
  out.queue_capacity = capacity_;
  // Validate outside the lock: validation walks GT stream paths and must
  // not serialize submitters against each other.
  try {
    spec.validate();
  } catch (const std::exception& e) {
    out.reason = RejectReason::kInvalidSpec;
    out.detail = e.what();
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return out;
  }
  if (spec.cycles > max_job_cycles_) {
    out.reason = RejectReason::kTooLarge;
    out.detail = "cycle budget " + std::to_string(spec.cycles) +
                 " exceeds the farm ceiling " +
                 std::to_string(max_job_cycles_);
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return out;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& cls : classes_) {
    total += cls.size();
  }
  if (stopped_) {
    out.reason = RejectReason::kStopped;
    out.detail = "farm is shutting down";
    out.queue_depth = total;
    ++rejected_;
    return out;
  }
  if (fresh_queued_ >= capacity_) {
    out.reason = RejectReason::kQueueFull;
    out.queue_depth = total;
    // Deterministic backpressure hint: a pure function of the fresh
    // backlog, so identical rejection states yield identical hints (see
    // the header's backpressure contract).
    out.retry_after_us =
        kRetryAfterUsPerJob * static_cast<double>(fresh_queued_);
    out.detail = "admission queue full: " +
                 std::to_string(fresh_queued_) + "/" +
                 std::to_string(capacity_) + " fresh jobs queued (" +
                 std::to_string(total) + " total); suggest retrying in " +
                 std::to_string(static_cast<std::uint64_t>(out.retry_after_us)) +
                 "us";
    ++rejected_;
    return out;
  }
  QueuedJob job;
  job.job_id = next_job_id_++;
  job.spec = std::move(spec);
  job.submitted_us = now_us;
  job.queued_us = now_us;
  if (job.spec.deadline_ms > 0) {
    job.deadline_at_us =
        now_us + static_cast<double>(job.spec.deadline_ms) * 1e3;
  }
  const auto cls = static_cast<std::size_t>(job.spec.priority);
  classes_[cls].push_back(std::move(job));
  ++fresh_queued_;
  ++submitted_;
  out.accepted = true;
  out.job_id = classes_[cls].back().job_id;
  out.queue_depth = total + 1;
  cv_.notify_one();
  return out;
}

bool AdmissionQueue::requeue(QueuedJob job, double now_us,
                             RequeuePosition pos) {
  std::lock_guard<std::mutex> lock(mu_);
  // Deliberately allowed after stop(): admitted work must always be able
  // to come back (returning false would strand the session), and
  // shutdown drains the backlog through pop_blocking() anyway.
  job.queued_us = now_us;
  job.fresh = false;
  const auto cls = static_cast<std::size_t>(job.spec.priority);
  if (pos == RequeuePosition::kFront) {
    classes_[cls].push_front(std::move(job));
  } else {
    classes_[cls].push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

std::optional<QueuedJob> AdmissionQueue::pop_blocking() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const double now = now_fn_();
    double next_eligible = std::numeric_limits<double>::infinity();
    for (auto& cls : classes_) {
      for (auto it = cls.begin(); it != cls.end(); ++it) {
        if (it->not_before_us > now) {
          next_eligible = std::min(next_eligible, it->not_before_us);
          continue;  // backoff not expired; FIFO among *eligible* jobs
        }
        QueuedJob job = std::move(*it);
        cls.erase(it);
        if (job.fresh) {
          --fresh_queued_;
          job.fresh = false;
        }
        return job;
      }
    }
    if (next_eligible < std::numeric_limits<double>::infinity()) {
      // Only backoff'd jobs remain (stopped or not — admitted work is
      // drained either way). Sleep until the earliest becomes eligible.
      const auto wake_us = static_cast<std::int64_t>(
          std::max(1.0, next_eligible - now));
      cv_.wait_for(lock, std::chrono::microseconds(wake_us));
      continue;
    }
    if (stopped_) {
      return std::nullopt;
    }
    cv_.wait(lock);
  }
}

bool AdmissionQueue::has_higher_than(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_fn_();
  for (std::size_t c = 0; c < static_cast<std::size_t>(p); ++c) {
    for (const QueuedJob& job : classes_[c]) {
      if (job.not_before_us <= now) {
        return true;
      }
    }
  }
  return false;
}

void AdmissionQueue::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

bool AdmissionQueue::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& cls : classes_) {
    total += cls.size();
  }
  return total;
}

std::size_t AdmissionQueue::depth(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[static_cast<std::size_t>(p)].size();
}

std::uint64_t AdmissionQueue::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t AdmissionQueue::jobs_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace tmsim::farm
