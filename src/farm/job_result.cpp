#include "farm/job_result.h"

#include <sstream>

#include "core/engine.h"

namespace tmsim::farm {

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kTransient: return "transient";
    case FailureKind::kConvergence: return "convergence";
    case FailureKind::kFaultAbort: return "fault_abort";
    case FailureKind::kEngineError: return "engine_error";
  }
  return "?";
}

bool failure_is_transient(FailureKind k) {
  return k == FailureKind::kTransient || k == FailureKind::kFaultAbort;
}

const char* cancel_cause_name(CancelCause c) {
  switch (c) {
    case CancelCause::kNone: return "none";
    case CancelCause::kUser: return "user";
    case CancelCause::kDeadline: return "deadline";
    case CancelCause::kSupervisor: return "supervisor";
  }
  return "?";
}

FailureKind classify_failure(const std::exception& e) {
  if (dynamic_cast<const TransientError*>(&e) != nullptr) {
    return FailureKind::kTransient;
  }
  if (dynamic_cast<const core::ConvergenceError*>(&e) != nullptr) {
    return FailureKind::kConvergence;
  }
  return FailureKind::kEngineError;
}

namespace {

bool acc_equal(const analysis::StatAccumulator& a,
               const analysis::StatAccumulator& b, const char* what,
               std::string* why) {
  if (a.count() != b.count() || a.sum() != b.sum() || a.min() != b.min() ||
      a.max() != b.max()) {
    if (why) {
      std::ostringstream os;
      os << what << " differs: count " << a.count() << "/" << b.count()
         << " sum " << a.sum() << "/" << b.sum() << " min " << a.min() << "/"
         << b.min() << " max " << a.max() << "/" << b.max();
      *why = os.str();
    }
    return false;
  }
  return true;
}

bool class_equal(const ClassResult& a, const ClassResult& b, const char* cls,
                 std::string* why) {
  if (a.delivered != b.delivered) {
    if (why) {
      *why = std::string(cls) + " delivered differs: " +
             std::to_string(a.delivered) + " vs " + std::to_string(b.delivered);
    }
    return false;
  }
  const std::string base(cls);
  return acc_equal(a.network, b.network, (base + ".network").c_str(), why) &&
         acc_equal(a.access, b.access, (base + ".access").c_str(), why) &&
         acc_equal(a.total, b.total, (base + ".total").c_str(), why);
}

}  // namespace

bool results_equivalent(const JobResult& a, const JobResult& b,
                        std::string* why) {
  const auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (a.spec_fingerprint != b.spec_fingerprint) {
    return fail("spec fingerprints differ (not the same job at all)");
  }
  if (a.status != b.status) {
    return fail(std::string("status differs: ") + job_status_name(a.status) +
                " vs " + job_status_name(b.status));
  }
  // Failure *classification* is part of the deterministic surface (the
  // same spec must fail the same way); attempts / checkpoint fields /
  // messages are scheduling-scoped and deliberately ignored.
  if (a.failure.kind != b.failure.kind) {
    return fail(std::string("failure kind differs: ") +
                failure_kind_name(a.failure.kind) + " vs " +
                failure_kind_name(b.failure.kind));
  }
  if (a.cycles_simulated != b.cycles_simulated) {
    return fail("cycles_simulated differs: " +
                std::to_string(a.cycles_simulated) + " vs " +
                std::to_string(b.cycles_simulated));
  }
  if (!class_equal(a.gt, b.gt, "gt", why) ||
      !class_equal(a.be, b.be, "be", why)) {
    return false;
  }
  if (a.flits_injected != b.flits_injected) {
    return fail("flits_injected differs: " + std::to_string(a.flits_injected) +
                " vs " + std::to_string(b.flits_injected));
  }
  if (a.flits_delivered != b.flits_delivered) {
    return fail("flits_delivered differs: " +
                std::to_string(a.flits_delivered) + " vs " +
                std::to_string(b.flits_delivered));
  }
  if (a.overloaded != b.overloaded) {
    return fail("overloaded flag differs");
  }
  if (a.state_digest != b.state_digest) {
    std::ostringstream os;
    os << "final state digest differs: " << std::hex << a.state_digest
       << " vs " << b.state_digest;
    return fail(os.str());
  }
  if (!acc_equal(a.access_delay, b.access_delay, "access_delay", why)) {
    return false;
  }
  const fpga::FaultReport& fa = a.fault_report;
  const fpga::FaultReport& fb = b.fault_report;
  if (fa.aborted != fb.aborted || fa.abort_reason != fb.abort_reason ||
      fa.total_recovered() != fb.total_recovered() ||
      fa.load_replays != fb.load_replays ||
      fa.watchdog_trips != fb.watchdog_trips) {
    return fail("fault reports differ: [" + fa.to_string() + "] vs [" +
                fb.to_string() + "]");
  }
  return true;
}

}  // namespace tmsim::farm
