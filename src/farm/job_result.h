// JobResult: what the farm hands back for one job — the same latency
// summaries, fault report, and state digest the job would produce run
// standalone, plus a scheduling record (how the farm happened to place
// and slice it) that is explicitly *excluded* from result equivalence.
//
// results_equivalent() is the farm's determinism oracle: two results are
// equivalent iff every simulation-visible field matches exactly —
// StatAccumulator sums compared as exact doubles, which is sound because
// accumulation order is fixed by packet-record submission order, itself
// a pure function of the spec.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/stats.h"
#include "common/error.h"
#include "common/types.h"
#include "fpga/fault_report.h"

namespace tmsim::farm {

enum class JobStatus : std::uint8_t {
  kPending = 0,    ///< accepted, not yet finished
  kDone = 1,       ///< ran to its cycle budget (or clean overload stop)
  kFailed = 2,     ///< threw (convergence failure, invariant violation, …)
  kCancelled = 3,  ///< terminated by cancel(), deadline, or supervisor
};

const char* job_status_name(JobStatus s);

/// Structured classification of why a job failed (DESIGN.md §13). The
/// farm never loses the distinction between a deterministic model bug
/// (convergence, engine invariant) and a transient condition worth
/// retrying (injected chaos, bus-fault escalation).
enum class FailureKind : std::uint8_t {
  kNone = 0,
  /// Transient by construction (TransientError): chaos injection,
  /// engine-cache contention — retry up to JobSpec::max_retries.
  kTransient = 1,
  /// core::ConvergenceError: the model did not settle. Deterministic,
  /// never retried.
  kConvergence = 2,
  /// The hosted stack's hardened ArmHost aborted with a FaultReport
  /// (bus faults above the recoverable envelope). Classified transient:
  /// on real hardware the fault process is environmental; in simulation
  /// the abort is deterministic, so a retried fault-abort exhausts its
  /// budget and lands in quarantine with its replay tuple.
  kFaultAbort = 3,
  /// Any other engine/model exception. Deterministic, never retried.
  kEngineError = 4,
};

const char* failure_kind_name(FailureKind k);

/// True for failure classes the farm retries (kTransient, kFaultAbort).
bool failure_is_transient(FailureKind k);

/// Why a job ended kCancelled.
enum class CancelCause : std::uint8_t {
  kNone = 0,
  kUser = 1,        ///< SimFarm::cancel()
  kDeadline = 2,    ///< JobSpec::deadline_ms expired
  kSupervisor = 3,  ///< supervisor escalated a stuck worker
};

const char* cancel_cause_name(CancelCause c);

/// Exception class for failures that are transient by construction —
/// the chaos harness and contention paths throw this; classify_failure()
/// maps it to FailureKind::kTransient so the retry machinery engages.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// Maps an in-flight exception to its FailureKind (TransientError →
/// kTransient, core::ConvergenceError → kConvergence, anything else →
/// kEngineError). Fault-report escalation is not an exception and is
/// classified kFaultAbort by the caller.
FailureKind classify_failure(const std::exception& e);

/// Everything a post-mortem needs about a failed job: the class of
/// failure, where it happened, the last good checkpoint the job could be
/// resumed from, and the replay tuple (the spec's canonical serialized
/// form — rerunning it reproduces the failure bit-for-bit).
struct JobFailure {
  FailureKind kind = FailureKind::kNone;
  std::string message;
  SystemCycle at_cycle = 0;              ///< cycles done when it failed
  SystemCycle last_checkpoint_cycle = 0;
  std::uint64_t last_checkpoint_digest = 0;
  std::size_t attempts = 1;              ///< executions incl. the failed one
  std::string replay;                    ///< JobSpec::serialize()
  /// True when a transient failure class exhausted max_retries: the job
  /// is poison — quarantined with its replay tuple instead of
  /// crash-looping through the pool.
  bool quarantined = false;
  /// Black-box dump (DESIGN.md §15): the failing worker's recent
  /// flight-recorder events (JSONL, oldest first, filtered to this
  /// job), filled next to the replay tuple when the farm runs with a
  /// flight recorder. Empty when the recorder is off. Like `message`
  /// and `replay`, diagnostic only — never part of the equivalence
  /// surface results_equivalent() compares.
  std::string flight_recording;
};

/// Latency summary for one packet class (mirrors traffic::LatencySummary
/// but lives here so hosted results use the same shape).
struct ClassResult {
  std::size_t delivered = 0;
  analysis::StatAccumulator network;  ///< head-injection → tail-delivery
  analysis::StatAccumulator access;   ///< creation → head-injection
  analysis::StatAccumulator total;    ///< creation → tail-delivery
};

struct JobResult {
  // Identity.
  std::uint64_t job_id = 0;            ///< farm-assigned, scheduling-scoped
  std::uint64_t spec_fingerprint = 0;  ///< JobSpec::fingerprint()
  std::string name;

  // Simulation-visible outcome (the equivalence surface).
  JobStatus status = JobStatus::kPending;
  std::string error;                   ///< set when status == kFailed
  SystemCycle cycles_simulated = 0;
  ClassResult gt;
  ClassResult be;
  std::size_t flits_injected = 0;
  std::size_t flits_delivered = 0;
  bool overloaded = false;
  /// Hosted jobs: the hardened host's recovery ledger. Core jobs: zeros.
  fpga::FaultReport fault_report;
  /// Hosted jobs: access-delay samples from the FPGA monitor buffer.
  analysis::StatAccumulator access_delay;
  /// FNV-1a over every committed block state at the end of the run — the
  /// bit-identity witness.
  std::uint64_t state_digest = 0;

  /// Populated when status == kFailed (kind, checkpoint, replay tuple).
  /// attempts and checkpoint fields are scheduling-scoped and excluded
  /// from equivalence; kind and message must match a standalone rerun.
  JobFailure failure;
  /// Populated when status == kCancelled.
  CancelCause cancel_cause = CancelCause::kNone;

  // Scheduling record (NOT part of equivalence).
  /// True when this result was served from the farm's spec-fingerprint
  /// memo cache instead of a fresh simulation. The memoized surface is
  /// bit-identical to a fresh run by construction (the fingerprint
  /// covers the spec's entire canonical serialization), so this flag is
  /// scheduling-scoped — results_equivalent() ignores it.
  bool memo_hit = false;
  std::size_t preemptions = 0;  ///< checkpoint-and-requeue events
  std::size_t slices = 0;       ///< quanta executed (≥ 1 when done)
  std::size_t last_worker = 0;  ///< worker that finished the job
  double queue_seconds = 0.0;   ///< submit → first execution
  double exec_seconds = 0.0;    ///< time actually spent simulating
  double turnaround_seconds = 0.0;  ///< submit → completion
};

/// Exact equality of the simulation-visible surface. On mismatch returns
/// false and, when `why` is non-null, describes the first differing
/// field. job_id, preemptions, slices, workers, and wall-clock fields
/// are deliberately ignored: the farm's scheduling freedom must never
/// show up in results.
bool results_equivalent(const JobResult& a, const JobResult& b,
                        std::string* why = nullptr);

}  // namespace tmsim::farm
