// JobResult: what the farm hands back for one job — the same latency
// summaries, fault report, and state digest the job would produce run
// standalone, plus a scheduling record (how the farm happened to place
// and slice it) that is explicitly *excluded* from result equivalence.
//
// results_equivalent() is the farm's determinism oracle: two results are
// equivalent iff every simulation-visible field matches exactly —
// StatAccumulator sums compared as exact doubles, which is sound because
// accumulation order is fixed by packet-record submission order, itself
// a pure function of the spec.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/stats.h"
#include "common/types.h"
#include "fpga/fault_report.h"

namespace tmsim::farm {

enum class JobStatus : std::uint8_t {
  kPending = 0,   ///< accepted, not yet finished
  kDone = 1,      ///< ran to its cycle budget (or clean overload stop)
  kFailed = 2,    ///< threw (convergence failure, invariant violation, …)
};

const char* job_status_name(JobStatus s);

/// Latency summary for one packet class (mirrors traffic::LatencySummary
/// but lives here so hosted results use the same shape).
struct ClassResult {
  std::size_t delivered = 0;
  analysis::StatAccumulator network;  ///< head-injection → tail-delivery
  analysis::StatAccumulator access;   ///< creation → head-injection
  analysis::StatAccumulator total;    ///< creation → tail-delivery
};

struct JobResult {
  // Identity.
  std::uint64_t job_id = 0;            ///< farm-assigned, scheduling-scoped
  std::uint64_t spec_fingerprint = 0;  ///< JobSpec::fingerprint()
  std::string name;

  // Simulation-visible outcome (the equivalence surface).
  JobStatus status = JobStatus::kPending;
  std::string error;                   ///< set when status == kFailed
  SystemCycle cycles_simulated = 0;
  ClassResult gt;
  ClassResult be;
  std::size_t flits_injected = 0;
  std::size_t flits_delivered = 0;
  bool overloaded = false;
  /// Hosted jobs: the hardened host's recovery ledger. Core jobs: zeros.
  fpga::FaultReport fault_report;
  /// Hosted jobs: access-delay samples from the FPGA monitor buffer.
  analysis::StatAccumulator access_delay;
  /// FNV-1a over every committed block state at the end of the run — the
  /// bit-identity witness.
  std::uint64_t state_digest = 0;

  // Scheduling record (NOT part of equivalence).
  std::size_t preemptions = 0;  ///< checkpoint-and-requeue events
  std::size_t slices = 0;       ///< quanta executed (≥ 1 when done)
  std::size_t last_worker = 0;  ///< worker that finished the job
  double queue_seconds = 0.0;   ///< submit → first execution
  double exec_seconds = 0.0;    ///< time actually spent simulating
  double turnaround_seconds = 0.0;  ///< submit → completion
};

/// Exact equality of the simulation-visible surface. On mismatch returns
/// false and, when `why` is non-null, describes the first differing
/// field. job_id, preemptions, slices, workers, and wall-clock fields
/// are deliberately ignored: the farm's scheduling freedom must never
/// show up in results.
bool results_equivalent(const JobResult& a, const JobResult& b,
                        std::string* why = nullptr);

}  // namespace tmsim::farm
