// SimSession: one job's resumable execution state. The farm's whole
// preemption story reduces to this class honouring a single contract:
//
//     advance(a); detach(); attach(other_sim); advance(b)
//   ≡ advance(a + b)
//
// bit-for-bit, where `other_sim` may be a different engine instance on a
// different worker thread (over an equal NetworkConfig). The mechanism
// is PR 1's commit-counter style made general (DESIGN.md §11):
//
//   - core-traffic jobs own a TrafficHarness (all software-side state:
//     source queues, credits, packet records, RNG position) and borrow
//     an engine from the worker's cache. detach() snapshots the engine
//     into an EngineCheckpoint (committed block states + cycle counters,
//     digest-verified); attach() restores it into the next engine and
//     rebinds the harness. The restore is sound because every internal
//     link of a NoC model is combinational — the fixed point is a pure
//     function of committed states and external inputs.
//
//   - hosted-FPGA jobs own the whole stack (FpgaDesign, optional
//     FaultyBus, ArmHost) and are naturally resumable: ArmHost::run() is
//     incremental, and its PR-1 commit-counter mirrors persist across
//     calls, so preemption is simply slicing run() into smaller targets.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "farm/job_result.h"
#include "farm/job_spec.h"

namespace tmsim::fpga {
class ArmHost;
class FaultyBus;
class FpgaDesign;
}  // namespace tmsim::fpga

namespace tmsim::farm {

/// The engine options a job actually runs with. When `canonical_seed` is
/// true the schedule seed is forced to 1 — what farm workers use, so
/// cached engines are reusable across jobs regardless of job seeds. When
/// false (standalone runs) the seed derives from the job seed, which
/// perturbs the evaluation order; the differential tests comparing the
/// two paths are therefore also an empirical proof that schedule seeds
/// never leak into results.
core::EngineOptions effective_engine_options(const JobSpec& spec,
                                             bool canonical_seed);

/// Canonical engine-cache identity of a job: two jobs with equal keys can
/// run on the same cached engine instance (equal topology/sizing and
/// engine options under the canonical schedule seed). This is also the
/// farm's *batch compatibility* rule — a worker only runs jobs
/// back-to-back without re-attach when their keys match.
std::string engine_cache_key(const JobSpec& spec);

/// FNV-1a hash of engine_cache_key(), never 0 (0 marks "unbatchable" in
/// the AdmissionQueue) — the BatchKeyFn the farm installs.
std::uint64_t engine_cache_key_hash(const JobSpec& spec);

class SimSession {
 public:
  /// Validates the spec (throws ContextualError on an unsatisfiable
  /// one). Hosted sessions build and configure their stack here; core
  /// sessions stay engine-less until the first attach().
  explicit SimSession(const JobSpec& spec);
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  const JobSpec& spec() const { return spec_; }

  /// Core-traffic jobs borrow an engine-backed simulation; hosted jobs
  /// carry their own stack.
  bool needs_engine() const {
    return spec_.kind == JobKind::kCoreTraffic;
  }

  /// Binds the session to `sim` (core jobs only; `sim` must simulate an
  /// equal NetworkConfig). First attach resets `sim` to power-on state
  /// and builds the harness; later attaches restore the detach-time
  /// checkpoint (digest-verified) and rebind the harness. `paranoid`
  /// adds a belt-and-braces recheck that the restored engine's cycle and
  /// state digest match the checkpoint exactly.
  void attach(core::SeqNocSimulation& sim, bool paranoid = false);

  /// Snapshots the engine state and unbinds (core jobs only). The engine
  /// is the caller's to reuse afterwards.
  void detach();

  bool attached() const { return sim_ != nullptr; }

  /// Runs up to `quantum` more system cycles (never past the spec's
  /// budget; stops early on overload/abort/cancellation). Returns cycles
  /// advanced.
  SystemCycle advance(SystemCycle quantum);

  /// Binds a cancellation token (DESIGN.md §13). Core sessions check it
  /// before each advance(); hosted sessions additionally wire it into
  /// ArmHost so a multi-period quantum stops at the next period
  /// boundary. Cancellation is cooperative and never corrupts state:
  /// every early stop lands on a slice/period boundary, exactly where
  /// preemption already proves the state consistent.
  void bind_cancel(std::shared_ptr<const std::atomic<bool>> token);

  bool done() const;
  SystemCycle cycles_done() const { return cycles_done_; }

  /// Delta cycles burned by the most recent advance() — the engine's
  /// convergence cost for that slice, surfaced so the farm can attach
  /// it to slice trace spans and flight-recorder samples (DESIGN.md
  /// §15). 0 before the first advance and for hosted jobs whose design
  /// is not yet configured.
  DeltaCycle last_slice_deltas() const { return last_slice_deltas_; }

  /// Hosted jobs: true when the hardened host gave up with a structured
  /// FaultReport — the farm escalates this to FailureKind::kFaultAbort.
  /// Core jobs: always false.
  bool aborted() const;
  /// The abort reason when aborted(), else empty.
  std::string abort_reason() const;

  /// Last durable checkpoint (detach-time snapshot). Cycle 0 / digest 0
  /// when the session never checkpointed (fresh jobs, hosted jobs).
  SystemCycle last_checkpoint_cycle() const { return checkpoint_.cycle; }
  std::uint64_t last_checkpoint_digest() const { return checkpoint_.digest; }

  /// Fills the simulation-visible fields of `out` (latency summaries,
  /// fault report, state digest, flit counts). Callable attached or
  /// detached.
  void finalize(JobResult& out) const;

 private:
  void attach_first(core::SeqNocSimulation& sim);

  JobSpec spec_;
  SystemCycle cycles_done_ = 0;
  DeltaCycle last_slice_deltas_ = 0;
  std::shared_ptr<const std::atomic<bool>> cancel_;

  // Core-traffic state.
  core::SeqNocSimulation* sim_ = nullptr;  // borrowed, nullable
  std::unique_ptr<traffic::TrafficHarness> harness_;
  core::EngineCheckpoint checkpoint_;
  bool started_ = false;

  // Hosted-FPGA state (owned).
  std::unique_ptr<fpga::FpgaDesign> design_;
  std::unique_ptr<fpga::FaultyBus> faulty_bus_;
  std::unique_ptr<fpga::ArmHost> host_;
  bool hw_synced_ = false;  ///< end-of-job counter sync done once
};

/// Runs one job start-to-finish on this thread with no farm involved —
/// the reference execution the differential tests compare farm results
/// against. Exceptions become status == kFailed.
JobResult run_job_standalone(const JobSpec& spec);

}  // namespace tmsim::farm
