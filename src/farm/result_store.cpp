#include "farm/result_store.h"

#include <algorithm>

#include "common/error.h"

namespace tmsim::farm {

ResultStore::ResultStore(std::size_t completion_feed_depth,
                         std::size_t num_shards)
    : feed_(completion_feed_depth == 0 ? 1 : completion_feed_depth) {
  if (num_shards == 0) {
    num_shards = 1;
  }
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultStore::put(JobResult result) {
  const std::uint64_t id = result.job_id;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    TMSIM_CHECK_MSG(!shard.results.contains(id),
                    "duplicate result for a job id");
    shard.results.emplace(id, Stored{seq, std::move(result)});
  }
  size_.fetch_add(1, std::memory_order_release);
  shard.cv.notify_all();
  // Completion feed: drop-oldest on overflow (the §5.2 monitor-buffer
  // discipline — a slow consumer must not stall the producer). Job ids
  // are sequential from 1, far below the word's 32-bit range.
  bool dropped_one = false;
  {
    std::lock_guard<std::mutex> lock(feed_mu_);
    if (feed_.full()) {
      feed_.pop();
      ++dropped_;
      dropped_one = true;
    }
    feed_.push(fpga::TimedWord{seq, static_cast<std::uint32_t>(id)});
  }
  feed_cv_.notify_all();
  return dropped_one;
}

std::optional<JobResult> ResultStore::get(std::uint64_t job_id) const {
  const Shard& shard = shard_for(job_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.results.find(job_id);
  if (it == shard.results.end()) {
    return std::nullopt;
  }
  return it->second.result;
}

JobResult ResultStore::wait(std::uint64_t job_id) const {
  const Shard& shard = shard_for(job_id);
  std::unique_lock<std::mutex> lock(shard.mu);
  shard.cv.wait(lock, [&] { return shard.results.contains(job_id); });
  return shard.results.at(job_id).result;
}

std::vector<JobResult> ResultStore::all() const {
  std::vector<Stored> gathered;
  gathered.reserve(size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, stored] : shard->results) {
      gathered.push_back(stored);
    }
  }
  std::sort(gathered.begin(), gathered.end(),
            [](const Stored& a, const Stored& b) { return a.seq < b.seq; });
  std::vector<JobResult> out;
  out.reserve(gathered.size());
  for (auto& stored : gathered) {
    out.push_back(std::move(stored.result));
  }
  return out;
}

std::size_t ResultStore::size() const {
  return size_.load(std::memory_order_acquire);
}

std::vector<std::uint64_t> ResultStore::drain_completions() {
  std::lock_guard<std::mutex> lock(feed_mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(feed_.fill());
  while (!feed_.empty()) {
    ids.push_back(feed_.pop().data);
  }
  return ids;
}

std::vector<std::uint64_t> ResultStore::next_batch(
    std::size_t max_ids, std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(feed_mu_);
  feed_cv_.wait_for(lock, timeout, [&] { return !feed_.empty(); });
  std::vector<std::uint64_t> ids;
  ids.reserve(std::min(feed_.fill(),
                       max_ids == 0 ? feed_.fill() : max_ids));
  while (!feed_.empty() && (max_ids == 0 || ids.size() < max_ids)) {
    ids.push_back(feed_.pop().data);
  }
  return ids;
}

std::uint64_t ResultStore::completions_dropped() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return dropped_;
}

std::size_t ResultStore::feed_fill() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return feed_.fill();
}

std::size_t ResultStore::feed_capacity() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return feed_.capacity();
}

}  // namespace tmsim::farm
