#include "farm/result_store.h"

namespace tmsim::farm {

ResultStore::ResultStore(std::size_t completion_feed_depth)
    : feed_(completion_feed_depth == 0 ? 1 : completion_feed_depth) {}

bool ResultStore::put(JobResult result) {
  bool dropped_one = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = result.job_id;
    TMSIM_CHECK_MSG(!index_.contains(id), "duplicate result for a job id");
    index_.emplace(id, results_.size());
    results_.push_back(std::move(result));
    // Completion feed: drop-oldest on overflow (the §5.2 monitor-buffer
    // discipline — a slow consumer must not stall the producer). Job ids
    // are sequential from 1, far below the word's 32-bit range.
    if (feed_.full()) {
      feed_.pop();
      ++dropped_;
      dropped_one = true;
    }
    feed_.push(fpga::TimedWord{feed_seq_++, static_cast<std::uint32_t>(id)});
  }
  cv_.notify_all();
  return dropped_one;
}

std::optional<JobResult> ResultStore::get(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(job_id);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return results_[it->second];
}

JobResult ResultStore::wait(std::uint64_t job_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return index_.contains(job_id); });
  return results_[index_.at(job_id)];
}

std::vector<JobResult> ResultStore::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

std::vector<std::uint64_t> ResultStore::drain_completions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(feed_.fill());
  while (!feed_.empty()) {
    ids.push_back(feed_.pop().data);
  }
  return ids;
}

std::uint64_t ResultStore::completions_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace tmsim::farm
